#!/bin/sh
# serve_smoke.sh: end-to-end service gate. Boots tm3270d on an
# ephemeral port, drives it with tm3270load (which asserts zero 5xx and
# zero failed requests), then SIGTERMs the daemon and asserts the drain
# completed cleanly with every in-flight response delivered
# (admitted == completed in the final counter flush).
set -eu

GO="${GO:-go}"
PORT="${SMOKE_PORT:-18270}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "serve-smoke: building"
"$GO" build -o "$TMP/tm3270d" ./cmd/tm3270d
"$GO" build -o "$TMP/tm3270load" ./cmd/tm3270load

# A deliberately tiny worker pool and queue so the load test exercises
# live shedding, with a fast retry hint so the campaign stays quick.
"$TMP/tm3270d" -addr "127.0.0.1:${PORT}" -workers 2 -queue 2 \
    -retry-after 50ms -drain-deadline 20s 2> "$TMP/daemon.log" &
DPID=$!

echo "serve-smoke: driving load at $BASE"
"$TMP/tm3270load" -base "$BASE" -sessions 24 -runs 6 -workload mpeg2_a -timeout 3m

echo "serve-smoke: draining daemon (SIGTERM)"
kill -TERM "$DPID"
i=0
while kill -0 "$DPID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "serve-smoke: FAIL — daemon did not exit within 30s of SIGTERM" >&2
        cat "$TMP/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

if ! grep -q "drained cleanly" "$TMP/daemon.log"; then
    echo "serve-smoke: FAIL — daemon log missing clean-drain marker" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi
admitted=$(sed -n 's/.*"service\.runs\.admitted": *\([0-9]*\).*/\1/p' "$TMP/daemon.log" | tail -1)
completed=$(sed -n 's/.*"service\.runs\.completed": *\([0-9]*\).*/\1/p' "$TMP/daemon.log" | tail -1)
if [ -z "$admitted" ] || [ "$admitted" != "$completed" ]; then
    echo "serve-smoke: FAIL — admitted=${admitted:-?} completed=${completed:-?}; runs were dropped" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi
echo "serve-smoke: PASS — zero 5xx, clean drain, admitted=$admitted completed=$completed"
