#!/bin/sh
# serve_smoke.sh: end-to-end service gate. Boots tm3270d on an
# ephemeral port, drives it with tm3270load (which asserts zero 5xx,
# zero failed requests, that every ok reply names the block-cache
# engine and carries its translation counters, and — via -check-metrics
# — that /metrics serves well-formed histograms whose per-stage bucket
# sums equal the admitted-run count and per-engine run counters that
# account for every admitted run), then SIGTERMs the daemon and asserts
# the drain
# completed cleanly with every in-flight response delivered
# (admitted == completed in the final counter flush). The observability
# plumbing is gated too: the exported span trace must hold real span
# events, and a request ID sampled from the trace must join to a
# structured log line in the daemon's stderr.
set -eu

GO="${GO:-go}"
PORT="${SMOKE_PORT:-18270}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "$DPID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "serve-smoke: building"
"$GO" build -o "$TMP/tm3270d" ./cmd/tm3270d
"$GO" build -o "$TMP/tm3270load" ./cmd/tm3270load

# A deliberately tiny worker pool and queue so the load test exercises
# live shedding, with a fast retry hint so the campaign stays quick.
"$TMP/tm3270d" -addr "127.0.0.1:${PORT}" -workers 2 -queue 2 \
    -retry-after 50ms -drain-deadline 20s \
    -trace "$TMP/trace.json" 2> "$TMP/daemon.log" &
DPID=$!

echo "serve-smoke: driving load at $BASE"
"$TMP/tm3270load" -base "$BASE" -sessions 24 -runs 6 -workload mpeg2_a \
    -timeout 3m -check-metrics

echo "serve-smoke: draining daemon (SIGTERM)"
kill -TERM "$DPID"
i=0
while kill -0 "$DPID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "serve-smoke: FAIL — daemon did not exit within 30s of SIGTERM" >&2
        cat "$TMP/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done

if ! grep -q "drained cleanly" "$TMP/daemon.log"; then
    echo "serve-smoke: FAIL — daemon log missing clean-drain marker" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi
admitted=$(sed -n 's/.*"service\.runs\.admitted": *\([0-9]*\).*/\1/p' "$TMP/daemon.log" | tail -1)
completed=$(sed -n 's/.*"service\.runs\.completed": *\([0-9]*\).*/\1/p' "$TMP/daemon.log" | tail -1)
if [ -z "$admitted" ] || [ "$admitted" != "$completed" ]; then
    echo "serve-smoke: FAIL — admitted=${admitted:-?} completed=${completed:-?}; runs were dropped" >&2
    cat "$TMP/daemon.log" >&2
    exit 1
fi

# The exported serving-window trace must be a real span trace: complete
# ("X") events carrying request IDs, written at drain.
if [ ! -s "$TMP/trace.json" ]; then
    echo "serve-smoke: FAIL — daemon wrote no span trace" >&2
    exit 1
fi
if ! grep -q '"ph": *"X"' "$TMP/trace.json"; then
    echo "serve-smoke: FAIL — span trace has no complete events" >&2
    head -c 400 "$TMP/trace.json" >&2
    exit 1
fi
if ! grep -q '"request_id"' "$TMP/trace.json"; then
    echo "serve-smoke: FAIL — span trace events carry no request IDs" >&2
    exit 1
fi

# Logs, spans and metrics must join on the request ID: sample one ID
# out of the trace and find its structured log line.
reqid=$(sed -n 's/.*"request_id": *"\(req-[0-9]*\)".*/\1/p' "$TMP/trace.json" | head -1)
if [ -z "$reqid" ]; then
    echo "serve-smoke: FAIL — no server-minted request ID in the span trace" >&2
    exit 1
fi
if ! grep -q "\"request_id\":\"$reqid\"" "$TMP/daemon.log"; then
    echo "serve-smoke: FAIL — request $reqid traced but never logged" >&2
    grep -c '"request_id"' "$TMP/daemon.log" >&2 || true
    exit 1
fi
logged=$(grep -c '"msg":"request"' "$TMP/daemon.log" || true)

echo "serve-smoke: PASS — zero 5xx, clean drain, admitted=$admitted completed=$completed, $logged requests logged+traced (sample $reqid)"
