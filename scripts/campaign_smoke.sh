#!/bin/sh
# campaign_smoke.sh: end-to-end proof of the campaign engine's
# durability contract. Runs a sharded cosim campaign into a shared
# store, SIGKILLs one shard mid-run, resumes it, merges via a final
# 1/1 pass (which must be a pure cache read), and asserts the merged
# aggregate is byte-identical to an unsharded run of the same matrix.
set -eu

GO="${GO:-go}"
SEEDS="${CAMPAIGN_SMOKE_SEEDS:-40}"
TMP="$(mktemp -d)"
trap 'kill -9 "$SPID" 2>/dev/null || true; rm -rf "$TMP"' EXIT
SPID=""

echo "campaign-smoke: building"
"$GO" build -o "$TMP/tm3270campaign" ./cmd/tm3270campaign
BIN="$TMP/tm3270campaign"
STORE="$TMP/sharded"

echo "campaign-smoke: shard 2/2 to completion"
"$BIN" -kind cosim -seeds "$SEEDS" -store "$STORE" -shards 2/2 > "$TMP/shard2.out"

echo "campaign-smoke: shard 1/2 started, will be SIGKILLed mid-run"
"$BIN" -kind cosim -seeds "$SEEDS" -store "$STORE" -shards 1/2 -resume \
    > "$TMP/shard1a.out" 2>&1 &
SPID=$!
REC="$STORE/records-1of2.jsonl"
i=0
while :; do
    n=$(grep -c '' "$REC" 2>/dev/null || true)
    [ "${n:-0}" -ge 5 ] && break
    if ! kill -0 "$SPID" 2>/dev/null; then
        echo "campaign-smoke: FAIL — shard 1/2 finished before the kill landed; raise CAMPAIGN_SMOKE_SEEDS" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "campaign-smoke: FAIL — shard 1/2 wrote <5 records in 30s" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$SPID"
wait "$SPID" 2>/dev/null || true
SPID=""
survived=$(grep -c '' "$REC" 2>/dev/null || true)
echo "campaign-smoke: killed shard 1/2 with ~$survived records durable"

echo "campaign-smoke: resuming shard 1/2"
"$BIN" -kind cosim -seeds "$SEEDS" -store "$STORE" -shards 1/2 -resume > "$TMP/shard1b.out"
cached=$(sed -n 's|^shard 1/2: .* \([0-9]*\) cached$|\1|p' "$TMP/shard1b.out")
if [ -z "$cached" ] || [ "$cached" -lt 1 ]; then
    echo "campaign-smoke: FAIL — resumed shard reused no records (cached=${cached:-?})" >&2
    cat "$TMP/shard1b.out" >&2
    exit 1
fi

echo "campaign-smoke: merging via final 1/1 pass (must be a pure cache read)"
"$BIN" -kind cosim -seeds "$SEEDS" -store "$STORE" -shards 1/1 -resume \
    -json "$TMP/sharded.json" > "$TMP/merge.out"
if ! grep -q "^shard 1/1: .* 0 executed" "$TMP/merge.out"; then
    echo "campaign-smoke: FAIL — merge pass executed units instead of reading the store" >&2
    cat "$TMP/merge.out" >&2
    exit 1
fi

echo "campaign-smoke: unsharded reference run"
"$BIN" -kind cosim -seeds "$SEEDS" -store "$TMP/unsharded" \
    -json "$TMP/unsharded.json" > "$TMP/ref.out"

if ! cmp -s "$TMP/sharded.json" "$TMP/unsharded.json"; then
    echo "campaign-smoke: FAIL — merged sharded aggregate differs from unsharded run" >&2
    diff "$TMP/sharded.json" "$TMP/unsharded.json" >&2 || true
    exit 1
fi

units=$(sed -n 's|^shard 1/1: \([0-9]*\) units.*|\1|p' "$TMP/merge.out")
echo "campaign-smoke: PASS — $units units; kill/resume reused $cached records; sharded+merged aggregate byte-identical to unsharded"
