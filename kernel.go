package tm3270

import (
	"tm3270/internal/prog"
	"tm3270/internal/workloads"
)

// Builder is the kernel-construction DSL: typed emitters for every
// TM3270 operation over virtual registers, with labels and guarded
// execution. See examples/quickstart for usage.
type Builder = prog.Builder

// Program is a built kernel, ready to compile for a Target.
type Program = prog.Program

// VReg is a virtual register name.
type VReg = prog.VReg

// Zero and One are the hardwired registers (r0 reads 0; r1 reads 1 and
// is the default guard).
const (
	Zero = prog.Zero
	One  = prog.One
)

// NewKernel starts building a kernel program.
func NewKernel(name string) *Builder { return prog.NewBuilder(name) }

// NewWorkload wraps a built program into a runnable workload for Run,
// RunContext or a Batch. init may be nil; check may be nil to skip
// output validation. init reports input-generation failures through
// its error instead of panicking. init and check run once per
// execution against that run's private memory image, so a workload
// whose closures only write the image is safe to run concurrently.
func NewWorkload(name string, p *Program, args map[VReg]uint32,
	init func(*Memory) error, check func(*Memory) error) *Workload {
	return &workloads.Spec{
		Name:  name,
		Prog:  p,
		Args:  args,
		Init:  init,
		Check: check,
	}
}
