package tm3270_test

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation, reporting the simulated-machine metrics (cycles, VLIW
// instructions, instructions-per-bit, relative performance) as custom
// benchmark metrics alongside Go's wall-clock numbers.
//
//	go test -bench=. -benchmem
//
// Full paper-scale regeneration lives in cmd/tm3270bench; benchmarks
// here run at reduced scale so the suite stays minutes-fast, while
// preserving every experimental structure.

import (
	"testing"

	"tm3270"
	"tm3270/internal/config"
	"tm3270/internal/experiments"
	"tm3270/internal/workloads"
)

func benchParams() workloads.Params {
	p := workloads.Small()
	p.MemKB = 32
	p.ImageW, p.ImageH, p.FieldH = 352, 288, 144
	p.Mpeg2W, p.Mpeg2H = 352, 288
	p.Mpeg2Frames = 2
	p.CabacIBits, p.CabacPBits, p.CabacBBits = 20000, 12000, 15000
	p.MP3Granules = 64
	return p
}

// runWorkload executes one workload/config pair per benchmark iteration
// and reports simulated cycles and CPI.
func runWorkload(b *testing.B, w *workloads.Spec, tgt config.Target) {
	b.Helper()
	var cycles, instrs int64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(w, tgt)
		if err != nil {
			b.Fatal(err)
		}
		cycles, instrs = r.Stats.Cycles, r.Stats.Instrs
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
	b.ReportMetric(float64(cycles)/float64(instrs), "CPI")
}

// BenchmarkFigure7 runs every Table 5 workload on each configuration
// A-D (the Figure 7 matrix).
func BenchmarkFigure7(b *testing.B) {
	p := benchParams()
	targets := map[string]config.Target{
		"A": config.ConfigA(), "B": config.ConfigB(),
		"C": config.ConfigC(), "D": config.ConfigD(),
	}
	for _, name := range []string{
		"memset", "memcpy", "filter", "rgb2yuv", "rgb2cmyk", "rgb2yiq",
		"mpeg2_a", "mpeg2_b", "mpeg2_c", "filmdet", "majority_sel",
	} {
		for _, cfg := range []string{"A", "B", "C", "D"} {
			b.Run(name+"/"+cfg, func(b *testing.B) {
				w, err := workloads.ByName(name, p)
				if err != nil {
					b.Fatal(err)
				}
				runWorkload(b, w, targets[cfg])
			})
		}
	}
}

// BenchmarkFigure7Average reports the headline number: mean relative
// performance of configuration D over A (the paper reports 2.29).
func BenchmarkFigure7Average(b *testing.B) {
	p := benchParams()
	var d float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure7(p, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		_, _, d = experiments.Figure7Average(rows)
	}
	b.ReportMetric(d, "rel-perf-D/A")
}

// BenchmarkTable3CABAC measures the CABAC decoding process with and
// without the SUPER_CABAC operations for each field type, reporting
// VLIW instructions per stream bit and the speedup.
func BenchmarkTable3CABAC(b *testing.B) {
	p := benchParams()
	fields := map[string]workloads.FieldType{
		"I": workloads.FieldI(p.CabacIBits),
		"P": workloads.FieldP(p.CabacPBits),
		"B": workloads.FieldB(p.CabacBBits),
	}
	tgt := config.TM3270()
	for _, fname := range []string{"I", "P", "B"} {
		f := fields[fname]
		b.Run(fname, func(b *testing.B) {
			var ref, opt int64
			for i := 0; i < b.N; i++ {
				r1, err := experiments.Run(workloads.CABACRef(f), tgt)
				if err != nil {
					b.Fatal(err)
				}
				r2, err := experiments.Run(workloads.CABACOpt(f), tgt)
				if err != nil {
					b.Fatal(err)
				}
				ref, opt = r1.Stats.Instrs, r2.Stats.Instrs
			}
			bits := float64(workloads.StreamBits(f))
			b.ReportMetric(float64(ref)/bits, "instr-per-bit")
			b.ReportMetric(float64(opt)/bits, "instr-per-bit-opt")
			b.ReportMetric(float64(ref)/float64(opt), "speedup")
		})
	}
}

// BenchmarkTable4Power evaluates the area/power model at the MP3
// operating point (the Table 4 reproduction) and on the measured
// mp3_synth workload.
func BenchmarkTable4Power(b *testing.B) {
	p := benchParams()
	var total float64
	for i := 0; i < b.N; i++ {
		r, err := tm3270.Run(workloads.MP3Synth(p), tm3270.TM3270())
		if err != nil {
			b.Fatal(err)
		}
		pr, err := tm3270.Power(r.Activity(), 1.2)
		if err != nil {
			b.Fatal(err)
		}
		total = pr.Total()
	}
	area := tm3270.Area(tm3270.TM3270())
	b.ReportMetric(area.Total(), "area-mm2")
	b.ReportMetric(total, "mW-per-MHz")
}

// BenchmarkFigure1Encoding measures instruction encoding density
// (template-compressed bytes per VLIW instruction).
func BenchmarkFigure1Encoding(b *testing.B) {
	p := benchParams()
	w, err := workloads.ByName("mpeg2_b", p)
	if err != nil {
		b.Fatal(err)
	}
	var perInstr float64
	for i := 0; i < b.N; i++ {
		art, err := tm3270.Compile(w.Prog, tm3270.TM3270())
		if err != nil {
			b.Fatal(err)
		}
		perInstr = float64(art.CodeBytes()) / float64(art.SchedInstrs())
	}
	b.ReportMetric(perInstr, "bytes-per-instr")
}

// BenchmarkFigure3Prefetch measures the region-prefetch block walk.
func BenchmarkFigure3Prefetch(b *testing.B) {
	p := benchParams()
	tgt := config.TM3270()
	for _, pf := range []bool{false, true} {
		name := "off"
		if pf {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			runWorkload(b, workloads.BlockWalk(p, pf), tgt)
		})
	}
}

// BenchmarkAblationME measures the motion-estimation ablation of
// Section 6 (collapsed loads and prefetching on the TM3270).
func BenchmarkAblationME(b *testing.B) {
	tgt := config.TM3270()
	for _, v := range []struct {
		name string
		mp   workloads.MEParams
	}{
		{"base", workloads.MEParams{W: 176, H: 144}},
		{"frac8", workloads.MEParams{W: 176, H: 144, UseFrac8: true}},
		{"frac8_pf", workloads.MEParams{W: 176, H: 144, UseFrac8: true, Prefetch: true}},
	} {
		b.Run(v.name, func(b *testing.B) {
			runWorkload(b, workloads.MotionEst(v.mp), tgt)
		})
	}
}

// BenchmarkAblationPipeline isolates the pipeline-depth differences of
// Table 6 (jump delay slots, load latency) on a branchy kernel with all
// caches equal.
func BenchmarkAblationPipeline(b *testing.B) {
	p := benchParams()
	shallow := config.TM3270()
	shallow.Name = "shallow"
	shallow.JumpDelaySlots = 3
	shallow.LoadLatency = 3
	deep := config.TM3270()
	deep.Name = "deep"
	for _, v := range []struct {
		name string
		tgt  config.Target
	}{{"3slots-3cyc", shallow}, {"5slots-4cyc", deep}} {
		b.Run(v.name, func(b *testing.B) {
			w, err := workloads.ByName("cabac_ref_i", p)
			if err != nil {
				b.Fatal(err)
			}
			runWorkload(b, w, v.tgt)
		})
	}
}

// BenchmarkSimulatorThroughput reports the host-side speed of the
// machine model itself (simulated instructions per host second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := benchParams()
	w, err := workloads.ByName("rgb2yuv", p)
	if err != nil {
		b.Fatal(err)
	}
	tgt := config.TM3270()
	var instrs int64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(w, tgt)
		if err != nil {
			b.Fatal(err)
		}
		instrs = r.Stats.Instrs
	}
	b.ReportMetric(float64(instrs), "sim-instrs-per-op")
}
