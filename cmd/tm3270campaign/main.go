// Command tm3270campaign runs the large-scale verification campaigns
// on the campaign engine: the differential conformance sweep (pipeline
// model vs reference model over generated programs) and the mutant ×
// machine-seed matrix. Campaigns are deterministic work-unit matrices;
// with -store every completed unit is persisted, so a killed campaign
// resumes exactly where it stopped and a finished one re-reads from
// the store without executing anything.
//
// Sharding: -shards i/n restricts this process to every n'th unit and
// writes records under a shard-specific file name, so n processes
// sharing one store directory run disjoint slices concurrently. After
// all shards finish (or die and are resumed), a final -shards 1/1 run
// over the same store is a pure cache read that emits the aggregate —
// byte-identical to an unsharded run.
//
// Usage:
//
//	tm3270campaign [-kind cosim|mutants] [-store dir] [-resume]
//	               [-shards i/n] [-seeds N] [-ops N] [-engine E]
//	               [-mutants N] [-mseeds N] [-workers N] [-json out]
//	               [-lockstep N] [-progress]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tm3270/internal/campaign"
	"tm3270/internal/cosim"
	"tm3270/internal/faults"
	"tm3270/internal/tmsim"
)

func main() {
	kind := flag.String("kind", "cosim", "campaign kind: cosim or mutants")
	storeDir := flag.String("store", "", "store directory for resumable/sharded runs")
	resume := flag.Bool("resume", false, "allow reusing a store that already holds records")
	shards := flag.String("shards", "1/1", "this process's shard i/n of the unit matrix")
	seeds := flag.Int("seeds", 500, "cosim: generated programs per target")
	ops := flag.Int("ops", 64, "cosim: operation budget per generated program")
	engine := flag.String("engine", "blockcache", "cosim: execution engine (blockcache or interp)")
	lockstep := flag.Int("lockstep", 16, "cosim: run every Nth generated unit in lockstep (<0 disables)")
	mutants := flag.Int("mutants", 64, "mutants: single-bit flips per workload")
	mseeds := flag.Int("mseeds", 5, "mutants: machine seeds per mutant (incl. baseline 0)")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write the deterministic aggregate JSON to this file (- for stdout)")
	progress := flag.Bool("progress", false, "print progress to stderr")
	flag.Parse()

	if err := run(*kind, *storeDir, *resume, *shards, *seeds, *ops, *engine,
		*lockstep, *mutants, *mseeds, *workers, *jsonOut, *progress); err != nil {
		fmt.Fprintln(os.Stderr, "tm3270campaign:", err)
		os.Exit(1)
	}
}

func parseShard(s string) (campaign.Shard, error) {
	var sh campaign.Shard
	if _, err := fmt.Sscanf(s, "%d/%d", &sh.Index, &sh.Count); err != nil {
		return sh, fmt.Errorf("malformed -shards %q (want i/n)", s)
	}
	return sh, sh.Validate()
}

func parseEngine(s string) (tmsim.Engine, error) {
	for _, e := range []tmsim.Engine{tmsim.EngineBlockCache, tmsim.EngineInterp} {
		if e.String() == s {
			return e, nil
		}
	}
	return 0, fmt.Errorf("unknown -engine %q", s)
}

// openStore opens the store when a directory was given, refusing to
// silently reuse prior records unless -resume acknowledges them.
func openStore(dir string, sh campaign.Shard, spec string, resume bool) (*campaign.Store, error) {
	if dir == "" {
		return nil, nil
	}
	st, err := campaign.Open(dir, sh.Label(), spec)
	if err != nil {
		return nil, err
	}
	if st.Len() > 0 && !resume {
		st.Close()
		return nil, fmt.Errorf("store %s already holds %d records; pass -resume to continue it", dir, st.Len())
	}
	return st, nil
}

func progressFn(enabled bool) func(done, total, cached int) {
	if !enabled {
		return nil
	}
	last := -1
	return func(done, total, cached int) {
		pct := done * 100 / total
		if pct == last && done != total {
			return
		}
		last = pct
		fmt.Fprintf(os.Stderr, "\rcampaign: %d/%d units (%d cached) %d%%", done, total, cached, pct)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func run(kind, storeDir string, resume bool, shards string, seeds, ops int,
	engine string, lockstep, mutants, mseeds, workers int, jsonOut string, progress bool) error {
	sh, err := parseShard(shards)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var agg *campaign.Aggregate
	var stats campaign.Stats
	var bad int
	switch kind {
	case "cosim":
		eng, err := parseEngine(engine)
		if err != nil {
			return err
		}
		cfg := cosim.CampaignConfig{
			Seeds:         seeds,
			GenOps:        ops,
			Opts:          cosim.Options{Engine: eng},
			LockstepEvery: lockstep,
			Workers:       workers,
			Shard:         sh,
			Progress:      progressFn(progress),
		}
		st, err := openStore(storeDir, sh, cfg.Spec(), resume)
		if err != nil {
			return err
		}
		if st != nil {
			defer st.Close()
			cfg.Store = st
		}
		camp, err := cosim.RunCampaignContext(ctx, cfg)
		if err != nil {
			return err
		}
		camp.PrintSummary(os.Stdout)
		agg, stats, bad = camp.Aggregate, camp.Stats, len(camp.Divergent)
	case "mutants":
		cfg := faults.MatrixConfig{
			Static:   faults.StaticConfig{Mutants: mutants},
			MSeeds:   mseeds,
			Workers:  workers,
			Shard:    sh,
			Progress: progressFn(progress),
		}
		st, err := openStore(storeDir, sh, cfg.Spec(), resume)
		if err != nil {
			return err
		}
		if st != nil {
			defer st.Close()
			cfg.Store = st
		}
		res, err := faults.RunMatrixCampaignContext(ctx, cfg)
		if err != nil {
			return err
		}
		res.PrintSummary(os.Stdout)
		agg, stats, bad = res.Aggregate, res.Stats, len(res.Silent)
	default:
		return fmt.Errorf("unknown -kind %q (want cosim or mutants)", kind)
	}

	fmt.Printf("shard %s: %d units, %d executed, %d cached\n",
		sh, stats.Total, stats.Executed, stats.Cached)
	if jsonOut != "" {
		b, err := agg.MarshalJSONDeterministic()
		if err != nil {
			return err
		}
		if jsonOut == "-" {
			_, err = os.Stdout.Write(b)
		} else {
			err = os.WriteFile(jsonOut, b, 0o644)
		}
		if err != nil {
			return err
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d bad units (divergent or silent)", bad)
	}
	if sh.Count > 1 {
		fmt.Printf("note: aggregate covers shard %s only; run -shards 1/1 -resume over the store for the full aggregate\n", sh)
	}
	return nil
}
