// Command tm3270bench regenerates the paper's tables and figures from
// the processor model. With no flags it runs the complete evaluation at
// paper scale; individual experiments select via flags, and -quick runs
// reduced sizes. The -json flag writes the versioned machine-readable
// bench result (per-workload cycles, CPI/OPI and the full telemetry
// counter snapshot) — the `BENCH_*.json` trajectory format — and
// schema-checks it after writing.
//
// The matrix experiments (-json, -figure7) execute on the batch
// runner: -parallel N bounds concurrent simulations (default
// GOMAXPROCS, 1 = serial) and a process-wide compile-artifact cache
// stops identical programs from recompiling across experiments. The
// aggregation is job-ordered and every run isolated, so -json output
// is byte-identical for any -parallel value.
//
// Usage:
//
//	tm3270bench [-quick] [-parallel N] [-json out.json] [-table1]
//	            [-table3] [-table4] [-table6] [-figure1] [-figure3]
//	            [-figure7] [-ablation] [-faults] [-cosim]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/cosim"
	"tm3270/internal/experiments"
	"tm3270/internal/faults"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload sizes")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"concurrent simulations for the matrix experiments (1 = serial)")
	t1 := flag.Bool("table1", false, "architecture summary")
	t3 := flag.Bool("table3", false, "CABAC decoding measurements")
	t4 := flag.Bool("table4", false, "area/power breakdown")
	t6 := flag.Bool("table6", false, "TM3260 vs TM3270 characteristics")
	f1 := flag.Bool("figure1", false, "instruction encoding statistics")
	f3 := flag.Bool("figure3", false, "region prefetch block walk")
	f7 := flag.Bool("figure7", false, "relative performance A-D")
	ab := flag.Bool("ablation", false, "motion-estimation ablation")
	sweep := flag.Bool("sweep", false, "cache capacity x line-size design sweep")
	wcet := flag.Bool("wcet", false, "static worst-case cycle bounds vs measured")
	fc := flag.Bool("faults", false, "seeded fault-injection campaign")
	csim := flag.Bool("cosim", false, "differential conformance campaign (pipeline vs reference model)")
	engines := flag.Bool("engine", false, "execution-engine retire-rate comparison (interp vs blockcache per target)")
	jsonOut := flag.String("json", "", "write the machine-readable bench result to this file")
	flag.Parse()

	all := !(*t1 || *t3 || *t4 || *t6 || *f1 || *f3 || *f7 || *ab || *sweep || *wcet || *fc || *csim || *engines || *jsonOut != "")
	p := workloads.Full()
	meW, meH := 352, 288
	if *quick {
		p = workloads.Small()
		p.ImageW, p.ImageH, p.FieldH = 128, 64, 32
		p.Mpeg2W, p.Mpeg2H = 128, 64
		p.CabacIBits, p.CabacPBits, p.CabacBBits = 20000, 12000, 15000
		p.MP3Granules = 32
		meW, meH = 64, 48
	}

	// One artifact cache for the whole invocation: figure7 and the JSON
	// bench compile overlapping (workload, target) pairs.
	cache := runner.NewCache()

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			// Keep the partial campaign timing even on failure.
			fmt.Fprintf(os.Stderr, "%s: %v (failed after %.1fs)\n",
				name, err, time.Since(start).Seconds())
			os.Exit(1)
		}
		fmt.Printf("[%s in %.1fs]\n\n", name, time.Since(start).Seconds())
	}

	if *jsonOut != "" {
		run("bench-json", func() error {
			rep, err := experiments.BenchJSON(p, *quick, *parallel, cache)
			if err != nil {
				return err
			}
			if err := experiments.WriteBenchJSON(*jsonOut, rep); err != nil {
				return err
			}
			// Re-read what landed on disk: the written file is the
			// artifact the trajectory consumes, so schema-check it, not
			// the in-memory copy.
			if _, err := experiments.ReadBenchJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("wrote %s: %d workloads on %s\n", *jsonOut, len(rep.Workloads), rep.Target)
			return nil
		})
	}

	if all || *t1 {
		run("table1", func() error { experiments.Table1(os.Stdout); return nil })
	}
	if all || *t6 {
		run("table6", func() error { experiments.Table6(os.Stdout); return nil })
	}
	if all || *f1 {
		run("figure1", func() error { return experiments.Figure1(os.Stdout, p) })
	}
	if all || *t4 {
		run("table4", func() error { return experiments.Table4(os.Stdout, p) })
	}
	if all || *f3 {
		run("figure3", func() error { return experiments.Figure3(os.Stdout, p) })
	}
	if all || *t3 {
		run("table3", func() error {
			rows, err := experiments.Table3(p)
			if err != nil {
				return err
			}
			experiments.PrintTable3(os.Stdout, rows)
			return nil
		})
	}
	if all || *ab {
		run("ablation", func() error { return experiments.Ablation(os.Stdout, meW, meH) })
	}
	if all || *sweep {
		run("sweep", func() error { return experiments.LineSizeSweep(os.Stdout, p) })
	}
	if all || *wcet {
		run("wcet", func() error { return experiments.WCETTable(os.Stdout, p) })
	}
	if all || *fc {
		run("faults", func() error {
			// Small workload sizes keep the campaign dense: 4 workloads
			// x 4 injectors x 13 seeds = 208 classified runs.
			res, err := faults.RunCampaign(faults.CampaignConfig{}, os.Stdout)
			if err != nil {
				return err
			}
			res.PrintSummary(os.Stdout)
			// The static counterpart: seeded single-bit image flips that
			// still decode must be flagged by binverify before execution.
			fmt.Println()
			sres, err := faults.RunStaticCampaign(faults.StaticConfig{}, nil)
			if err != nil {
				return err
			}
			sres.PrintSummary(os.Stdout)
			// And the combined gate: statically-missed mutants execute on
			// the architectural reference model and diff against the
			// golden run.
			fmt.Println()
			dres, err := faults.RunDifferentialCampaign(faults.StaticConfig{}, nil)
			if err != nil {
				return err
			}
			dres.PrintSummary(os.Stdout)
			// Finally the full matrix: every mutant differentially executed
			// under multiple machine seeds (randomized initial register and
			// memory state), which strips the masking a single fixed
			// initial state offers.
			fmt.Println()
			mres, err := faults.RunMatrixCampaign(faults.MatrixConfig{})
			if err != nil {
				return err
			}
			mres.PrintSummary(os.Stdout)
			return nil
		})
	}
	if all || *csim {
		run("cosim", func() error {
			// Both execution engines run the identical campaign against
			// the architectural reference model. Each must diverge zero
			// times — which transitively proves the fast path and the
			// interpreter agree on every covered program.
			for _, eng := range []tmsim.Engine{tmsim.EngineBlockCache, tmsim.EngineInterp} {
				fmt.Printf("engine %s vs reference model:\n", eng)
				camp, err := cosim.RunCampaign(cosim.CampaignConfig{
					Params: &p,
					Opts:   cosim.Options{Engine: eng},
				})
				if err != nil {
					return err
				}
				camp.PrintSummary(os.Stdout)
				if len(camp.Divergent) > 0 {
					return fmt.Errorf("%d divergent runs on the %s engine", len(camp.Divergent), eng)
				}
			}
			return nil
		})
	}
	if all || *engines {
		run("engine", func() error {
			// The paper's four configurations; A and D are the TM3260 and
			// TM3270 shipping parts.
			targets := []config.Target{
				config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
			}
			rows, err := experiments.EngineComparison(p, targets)
			if err != nil {
				return err
			}
			experiments.PrintEngineComparison(os.Stdout, rows)
			return nil
		})
	}
	if all || *f7 {
		run("figure7", func() error {
			rows, err := experiments.Figure7(p, *parallel, cache)
			if err != nil {
				return err
			}
			experiments.PrintFigure7(os.Stdout, rows)
			return nil
		})
	}
	if cs := cache.Stats(); cs.Hits > 0 {
		fmt.Printf("[artifact cache: %d compiles, %d reused]\n", cs.Misses, cs.Hits)
	}
}
