// Command tm3270sim runs one workload on one processor configuration
// and prints the full execution report: instruction/cycle counts, OPI,
// CPI, stall breakdown, cache and bus statistics, code size, estimated
// wall-clock time and the power-model evaluation.
//
// A trap (unmapped access, MMIO misuse, watchdog, deadline, internal
// fault) prints a structured diagnostic — PC, cycle, register dump and
// the flight-recorder tail — instead of a Go panic trace. The -inject
// flag arms a seeded fault injector (see internal/faults) against the
// run.
//
// Observability: -stats-json dumps the unified counter registry as one
// JSON object of dotted names; -trace-json writes a Chrome trace-event
// file (open it in https://ui.perfetto.dev) with per-slot issue events,
// stall intervals by cause, cache miss/refill/prefetch/CWB events and
// bus occupancy; -profile N prints the top-N per-PC cycle-attribution
// hotspots (execute vs fetch-stall vs jump-penalty vs data-stall
// cycles, the data side split by cause).
//
// The -verify flag gates the run on internal/binverify: the encoded
// image is decoded back and statically verified (latency hazards, slot
// legality, jump targets, ...) before the first cycle executes; any
// error-severity diagnostic refuses the run.
//
// The execution knobs all route through the runner's per-run options
// (WithWatchdog, WithDeadline, WithStrictMem, WithVerify,
// WithTelemetry) — the same API the batch runner and the public
// tm3270.RunContext use.
//
// Usage:
//
//	tm3270sim [-config A|B|C|D|tm3260|tm3270] [-full] [-list] [-verify]
//	          [-cosim] [-inject kind[:rate[:delay]]] [-seed n] [-deadline d]
//	          [-strict] [-watchdog n] [-stats-json file] [-trace-json file]
//	          [-profile n] <workload>
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tm3270/internal/config"
	"tm3270/internal/cosim"
	"tm3270/internal/faults"
	"tm3270/internal/power"
	"tm3270/internal/runner"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

func kindList() string {
	var names []string
	for _, k := range faults.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

func main() {
	cfg := flag.String("config", "D", "target: A, B, C, D, tm3260 or tm3270")
	engine := flag.String("engine", "", "execution engine: blockcache (default) or interp")
	full := flag.Bool("full", false, "paper-scale workload sizes (default: small)")
	list := flag.Bool("list", false, "list workload names")
	traceN := flag.Int64("trace", 0, "print an issue trace of the first N instructions")
	inject := flag.String("inject", "", "fault injector spec kind[:rate[:delay]] (kinds: "+kindList()+")")
	seed := flag.Int64("seed", 1, "fault injector seed")
	deadline := flag.Duration("deadline", 0, "wall-clock execution deadline (0 = none)")
	strict := flag.Bool("strict", false, "trap on unmapped loads and null-page stores")
	watchdog := flag.Int64("watchdog", 0, "instruction-count watchdog (0 = default)")
	verify := flag.Bool("verify", false, "statically verify the decoded binary before running (exit on errors)")
	cosimRun := flag.Bool("cosim", false, "co-simulate against the architectural reference model and diff final state")
	statsJSON := flag.String("stats-json", "", "write the counter registry snapshot as JSON (\"-\" = stdout)")
	traceJSON := flag.String("trace-json", "", "write a Perfetto-loadable trace-event JSON file")
	profileN := flag.Int("profile", 0, "print the top-N cycle-attribution hotspots")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(workloads.Names(), "\n"))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tm3270sim [-config D] [-full] <workload>")
		os.Exit(2)
	}

	var tgt config.Target
	switch strings.ToUpper(*cfg) {
	case "A", "TM3260":
		tgt = config.ConfigA()
	case "B":
		tgt = config.ConfigB()
	case "C":
		tgt = config.ConfigC()
	case "D", "TM3270":
		tgt = config.ConfigD()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *cfg)
		os.Exit(2)
	}

	eng, err := tmsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	p := workloads.Small()
	if *full {
		p = workloads.Full()
	}
	w, err := workloads.ByName(flag.Arg(0), p)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *cosimRun {
		res, err := cosim.RunWorkload(w, tgt, cosim.Options{MaxInstrs: *watchdog, Engine: eng})
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		case res == nil:
			fmt.Printf("cosim: %s does not schedule on %s; skipped\n", w.Name, tgt.Name)
		case res.Div != nil:
			fmt.Fprintf(os.Stderr, "cosim: %s on %s DIVERGED: %s\n", w.Name, tgt.Name, res.Div)
			os.Exit(1)
		default:
			fmt.Printf("cosim: %s on %s agrees over %d instructions\n", w.Name, tgt.Name, res.Instrs)
		}
		return
	}

	art, err := runner.CompileWorkload(w, tgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verify {
		// Pre-run gate: decode the encoded image back and statically
		// verify the machine code the simulator is about to execute.
		rep, err := art.VerifyStatic(&tgt, art.VerifyOptions(w))
		if rep != nil {
			rep.Write(os.Stderr)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v; refusing to run\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "verify: ok (%d instructions, %d warnings)\n",
			art.SchedInstrs(), rep.Warnings())
	}

	var inj *faults.Injector
	if *inject != "" {
		spec, err := faults.ParseSpec(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		inj = faults.New(spec, *seed)
	}

	// The per-run telemetry sink: the run fills the registry snapshot
	// (and the profile, when enabled) even when it traps, so the
	// machine-readable dumps stay available for fault forensics.
	sink := &runner.Telemetry{EnableProfile: *profileN > 0}
	if *traceJSON != "" {
		sink.Trace = telemetry.NewTrace(0)
	}

	res, runErr := runner.RunContext(context.Background(), w, tgt,
		runner.WithArtifact(art),
		runner.WithEngine(eng),
		runner.WithWatchdog(*watchdog),
		runner.WithDeadline(*deadline),
		runner.WithStrictMem(*strict),
		runner.WithTelemetry(sink),
		runner.WithMachineSetup(func(m *tmsim.Machine) {
			if *traceN > 0 {
				m.Trace = os.Stdout
				m.TraceLimit = *traceN
			}
			if inj != nil {
				inj.Arm(m)
			}
		}))
	if res == nil {
		// Failed before a machine existed (init error).
		fmt.Fprintln(os.Stderr, runErr)
		os.Exit(1)
	}

	// When a machine-readable dump targets stdout ("-"), keep stdout
	// pure JSON and divert the human-readable report to stderr.
	out := io.Writer(os.Stdout)
	if *statsJSON == "-" || *traceJSON == "-" {
		out = os.Stderr
	}

	if inj != nil {
		inj.Disarm(res.Machine)
		for _, e := range inj.Events {
			fmt.Fprintf(out, "injected    %s\n", e.Info)
		}
	}
	// The trace and counter dumps are debugging artifacts: emit them
	// even when the run trapped, so the events leading to the fault are
	// inspectable in Perfetto.
	if sink.Trace != nil {
		if err := writeFile(*traceJSON, sink.Trace.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *statsJSON != "" {
		if err := writeFile(*statsJSON, sink.Snapshot.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		var trap *tmsim.TrapError
		if errors.As(runErr, &trap) {
			trap.Dump(os.Stderr)
		} else {
			fmt.Fprintln(os.Stderr, runErr)
		}
		os.Exit(1)
	}
	s := res.Stats
	m := res.Machine

	fmt.Fprintf(out, "workload    %s (%s)\n", w.Name, w.Description)
	fmt.Fprintf(out, "target      %s @ %d MHz\n", tgt.Name, tgt.FreqMHz)
	if bc := m.BlockCacheStats(); res.Engine == tmsim.EngineBlockCache {
		fmt.Fprintf(out, "engine      %s (%d blocks translated, %d hits, %d invalidations)\n",
			res.Engine, bc.Translated, bc.Hits, bc.Invalidations)
	} else {
		fmt.Fprintf(out, "engine      %s\n", res.Engine)
	}
	fmt.Fprintf(out, "code        %d VLIW instructions, %d bytes (%.1f B/instr), %d source ops\n",
		art.SchedInstrs(), art.CodeBytes(),
		float64(art.CodeBytes())/float64(art.SchedInstrs()), art.Code.SrcOps)
	fmt.Fprintf(out, "executed    %d instrs, %d ops (%d guarded off)\n",
		s.Instrs, s.Ops, s.Ops-s.ExecOps)
	fmt.Fprintf(out, "cycles      %d  (CPI %.3f, OPI %.2f)\n", s.Cycles, s.CPI(), s.OPI())
	fmt.Fprintf(out, "stalls      fetch %d, data %d\n", s.FetchStalls, s.DataStalls)
	fmt.Fprintf(out, "jumps       %d executed, %d taken\n", s.Jumps, s.Taken)
	fmt.Fprintf(out, "dcache      %d/%d load hit/miss, %d/%d store hit/miss, %d merges, %d copybacks\n",
		m.DC.Stats.LoadHits, m.DC.Stats.LoadMisses,
		m.DC.Stats.StoreHits, m.DC.Stats.StoreMisses,
		m.DC.Stats.MergeMisses, m.DC.Stats.Copybacks)
	if m.PF != nil {
		ps := m.PF.Stats
		fmt.Fprintf(out, "prefetch    %d triggers, %d issued, %d useful, %d late, %d dropped, %d evicted\n",
			ps.Triggers, ps.Issued, ps.Useful, ps.Late, ps.Dropped, ps.Evicted)
	}
	fmt.Fprintf(out, "icache      %d chunks, %d misses\n", m.IC.Stats.Chunks, m.IC.Stats.Misses)
	fmt.Fprintf(out, "bus         %d reads / %d writes, %d B in / %d B out\n",
		m.BIU.Reads, m.BIU.Writes, m.BIU.BytesRead, m.BIU.BytesWritten)
	fmt.Fprintf(out, "time        %.3f ms at %d MHz\n", res.Seconds()*1e3, tgt.FreqMHz)

	if pr, err := power.Power(res.Activity(), power.NominalVoltage); err == nil {
		fmt.Fprintf(out, "power       %.3f mW/MHz at 1.2V -> %.1f mW at %d MHz\n",
			pr.Total(), pr.MilliWattsAt(float64(tgt.FreqMHz)), tgt.FreqMHz)
	}
	if sink.Profile != nil {
		fmt.Fprintln(out)
		sink.Profile.Report(out, *profileN)
	}
}

// writeFile streams write to the named file, or stdout for "-".
func writeFile(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
