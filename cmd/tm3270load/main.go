// Command tm3270load drives a running tm3270d with a closed-loop,
// shed-aware load: N tenant goroutines each create a session and issue
// runs back-to-back, honoring the server's Retry-After hints with
// jittered backoff instead of hammering through overload. It exits 0
// when the campaign finishes with zero 5xx responses and zero
// transport errors, making it the assertion half of `make serve-smoke`.
//
// Usage:
//
//	tm3270load [-base http://127.0.0.1:8270] [-sessions 16] [-runs 8]
//	           [-workload memcpy] [-target d] [-inject spec] [-deadline 0]
//	           [-timeout 2m] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"tm3270/internal/service"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8270", "server base URL")
	sessions := flag.Int("sessions", 16, "concurrent tenant sessions")
	runs := flag.Int("runs", 8, "runs per session")
	workload := flag.String("workload", "memcpy", "workload every session runs")
	target := flag.String("target", "d", "processor target (a-d, tm3260, tm3270)")
	inject := flag.String("inject", "", "fault spec for every run (kind:rate:delay)")
	deadlineMS := flag.Int64("deadline", 0, "per-run deadline override, ms (0 = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "whole-campaign budget")
	verbose := flag.Bool("v", false, "log every reply")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ready := &service.Client{Base: *base}
	if err := ready.WaitReady(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "tm3270load: server never became ready: %v\n", err)
		os.Exit(1)
	}

	type tally struct{ ok, trap, timeout, canceled, other, failed int }
	var mu sync.Mutex
	var tot tally
	var agg service.ClientStats
	start := time.Now()

	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &service.Client{Base: *base, MaxAttempts: 64}
			var local tally
			defer func() {
				mu.Lock()
				tot.ok += local.ok
				tot.trap += local.trap
				tot.timeout += local.timeout
				tot.canceled += local.canceled
				tot.other += local.other
				tot.failed += local.failed
				agg.Requests.Add(c.Stats.Requests.Load())
				agg.Retries.Add(c.Stats.Retries.Load())
				agg.Shed.Add(c.Stats.Shed.Load())
				agg.FiveXX.Add(c.Stats.FiveXX.Load())
				agg.Errors.Add(c.Stats.Errors.Load())
				mu.Unlock()
			}()

			info, err := c.CreateSession(ctx, service.CreateSessionRequest{
				Workload: *workload, Target: *target,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "tm3270load: tenant %d: create: %v\n", i, err)
				local.failed++
				return
			}
			rng := rand.New(rand.NewSource(int64(i)))
			for r := 0; r < *runs; r++ {
				rep, err := c.Run(ctx, info.ID, service.RunRequest{
					Inject:     *inject,
					Seed:       int64(i**runs + r),
					DeadlineMS: *deadlineMS,
				})
				if err != nil {
					if ae, ok := err.(*service.APIError); ok && ae.Code == http.StatusTooManyRequests {
						// Budget exhausted on sustained overload: back
						// off longer and move on rather than failing.
						time.Sleep(time.Duration(rng.Intn(200)) * time.Millisecond)
						local.other++
						continue
					}
					fmt.Fprintf(os.Stderr, "tm3270load: tenant %d run %d: %v\n", i, r, err)
					local.failed++
					continue
				}
				if *verbose {
					fmt.Printf("tenant %d run %d: %s cycles=%d elapsed=%.1fms\n",
						i, r, rep.Status, rep.Cycles, rep.ElapsedMS)
				}
				switch rep.Status {
				case service.StatusOK:
					local.ok++
				case service.StatusTrap:
					local.trap++
				case service.StatusTimeout:
					local.timeout++
				case service.StatusCanceled:
					local.canceled++
				default:
					local.other++
				}
			}
			c.DeleteSession(ctx, info.ID)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := tot.ok + tot.trap + tot.timeout + tot.canceled + tot.other
	fmt.Printf("tm3270load: %d sessions x %d runs in %s\n", *sessions, *runs, elapsed.Round(time.Millisecond))
	fmt.Printf("  replies:   ok=%d trap=%d timeout=%d canceled=%d other=%d (total %d)\n",
		tot.ok, tot.trap, tot.timeout, tot.canceled, tot.other, total)
	fmt.Printf("  transport: requests=%d retries=%d shed429=%d fivexx=%d errors=%d failed=%d\n",
		agg.Requests.Load(), agg.Retries.Load(), agg.Shed.Load(), agg.FiveXX.Load(),
		agg.Errors.Load(), tot.failed)
	if elapsed > 0 && total > 0 {
		fmt.Printf("  throughput: %.1f runs/s\n", float64(total)/elapsed.Seconds())
	}

	if agg.FiveXX.Load() != 0 || tot.failed != 0 {
		fmt.Fprintln(os.Stderr, "tm3270load: FAIL — 5xx responses or failed requests")
		os.Exit(1)
	}
	fmt.Println("tm3270load: PASS — zero 5xx, zero failed requests")
}
