// Command tm3270load drives a running tm3270d with a closed-loop,
// shed-aware load: N tenant goroutines each create a session and issue
// runs back-to-back, honoring the server's Retry-After hints with
// jittered backoff instead of hammering through overload. It exits 0
// when the campaign finishes with zero 5xx responses and zero
// transport errors, making it the assertion half of `make serve-smoke`.
//
// Beyond the pass/fail verdict it reports client-observed latency:
// every Run round-trip lands in a per-status histogram and the closing
// report prints p50/p95/p99 per status. With -check-metrics it also
// audits the server's /metrics histograms — every histogram must be
// well-formed (bucket counts summing to its count) and every
// service.latency.stage.* histogram must have observed exactly the
// admitted-run count.
//
// Every successful reply must also name the execution engine that ran
// it (-engine, default blockcache) and, for block-cache runs, carry
// the translation-cache counters; a missing or mismatched engine fails
// the campaign. Under -check-metrics the server-side per-engine run
// counters must agree with the admitted total.
//
// Usage:
//
//	tm3270load [-base http://127.0.0.1:8270] [-sessions 16] [-runs 8]
//	           [-workload memcpy] [-target d] [-engine blockcache|interp]
//	           [-inject spec] [-deadline 0]
//	           [-timeout 2m] [-check-metrics] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"tm3270/internal/service"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
)

// latencies histograms client-observed Run round-trip times per reply
// status. Histograms are internally atomic; the map is fixed at
// construction so tenant goroutines share it without locking.
type latencies struct {
	byStatus map[string]*telemetry.Histogram
}

func newLatencies() *latencies {
	l := &latencies{byStatus: make(map[string]*telemetry.Histogram)}
	for _, st := range []string{service.StatusOK, service.StatusTrap, service.StatusTimeout,
		service.StatusCanceled, "shed", "other"} {
		l.byStatus[st] = telemetry.NewHistogram(nil)
	}
	return l
}

func (l *latencies) observe(status string, d time.Duration) {
	h, ok := l.byStatus[status]
	if !ok {
		h = l.byStatus["other"]
	}
	h.Observe(d)
}

func (l *latencies) report() {
	names := make([]string, 0, len(l.byStatus))
	for name := range l.byStatus {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("  client latency p50/p95/p99 ms per status:")
	for _, name := range names {
		h := l.byStatus[name].Snapshot()
		if h.Count == 0 {
			continue
		}
		fmt.Printf("    %-10s %8.2f %8.2f %8.2f  (n=%d)\n",
			name, float64(h.P50US)/1000, float64(h.P95US)/1000, float64(h.P99US)/1000, h.Count)
	}
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8270", "server base URL")
	sessions := flag.Int("sessions", 16, "concurrent tenant sessions")
	runs := flag.Int("runs", 8, "runs per session")
	workload := flag.String("workload", "memcpy", "workload every session runs")
	target := flag.String("target", "d", "processor target (a-d, tm3260, tm3270)")
	engine := flag.String("engine", "", "execution engine for every session: blockcache (default) or interp")
	inject := flag.String("inject", "", "fault spec for every run (kind:rate:delay)")
	deadlineMS := flag.Int64("deadline", 0, "per-run deadline override, ms (0 = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "whole-campaign budget")
	checkMetrics := flag.Bool("check-metrics", false,
		"audit server /metrics histograms after the campaign (well-formed buckets, stage counts == admitted)")
	verbose := flag.Bool("v", false, "log every reply")
	flag.Parse()

	eng, err := tmsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	wantEngine := eng.String()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ready := &service.Client{Base: *base}
	if err := ready.WaitReady(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "tm3270load: server never became ready: %v\n", err)
		os.Exit(1)
	}

	type tally struct{ ok, trap, timeout, canceled, other, failed int }
	var mu sync.Mutex
	var tot tally
	var agg service.ClientStats
	lat := newLatencies()
	start := time.Now()

	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := &service.Client{Base: *base, MaxAttempts: 64}
			var local tally
			defer func() {
				mu.Lock()
				tot.ok += local.ok
				tot.trap += local.trap
				tot.timeout += local.timeout
				tot.canceled += local.canceled
				tot.other += local.other
				tot.failed += local.failed
				agg.Requests.Add(c.Stats.Requests.Load())
				agg.Retries.Add(c.Stats.Retries.Load())
				agg.Shed.Add(c.Stats.Shed.Load())
				agg.FiveXX.Add(c.Stats.FiveXX.Load())
				agg.Errors.Add(c.Stats.Errors.Load())
				mu.Unlock()
			}()

			info, err := c.CreateSession(ctx, service.CreateSessionRequest{
				Workload: *workload, Target: *target,
				Options: service.SessionOptions{Engine: *engine},
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "tm3270load: tenant %d: create: %v\n", i, err)
				local.failed++
				return
			}
			rng := rand.New(rand.NewSource(int64(i)))
			for r := 0; r < *runs; r++ {
				runStart := time.Now()
				rep, err := c.Run(ctx, info.ID, service.RunRequest{
					Inject:     *inject,
					Seed:       int64(i**runs + r),
					DeadlineMS: *deadlineMS,
				})
				rtt := time.Since(runStart)
				if err != nil {
					if ae, ok := err.(*service.APIError); ok && ae.Code == http.StatusTooManyRequests {
						// Budget exhausted on sustained overload: back
						// off longer and move on rather than failing.
						lat.observe("shed", rtt)
						time.Sleep(time.Duration(rng.Intn(200)) * time.Millisecond)
						local.other++
						continue
					}
					fmt.Fprintf(os.Stderr, "tm3270load: tenant %d run %d: %v\n", i, r, err)
					local.failed++
					continue
				}
				lat.observe(rep.Status, rtt)
				if *verbose {
					fmt.Printf("tenant %d run %d: %s request=%s cycles=%d elapsed=%.1fms\n",
						i, r, rep.Status, rep.RequestID, rep.Cycles, rep.ElapsedMS)
				}
				// Every completed run must name the engine that executed
				// it, and block-cache runs must carry cache counters —
				// this is the client half of the engine-telemetry
				// contract.
				if rep.Status == service.StatusOK {
					switch {
					case rep.Engine != wantEngine:
						fmt.Fprintf(os.Stderr, "tm3270load: tenant %d run %d: engine %q, want %q\n",
							i, r, rep.Engine, wantEngine)
						local.failed++
					case rep.Engine == "blockcache" && rep.BlockCache == nil:
						fmt.Fprintf(os.Stderr, "tm3270load: tenant %d run %d: blockcache run without cache counters\n", i, r)
						local.failed++
					case rep.BlockCache != nil && rep.BlockCache.Translated <= 0:
						fmt.Fprintf(os.Stderr, "tm3270load: tenant %d run %d: blockcache run translated %d blocks\n",
							i, r, rep.BlockCache.Translated)
						local.failed++
					}
				}
				switch rep.Status {
				case service.StatusOK:
					local.ok++
				case service.StatusTrap:
					local.trap++
				case service.StatusTimeout:
					local.timeout++
				case service.StatusCanceled:
					local.canceled++
				default:
					local.other++
				}
			}
			c.DeleteSession(ctx, info.ID)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := tot.ok + tot.trap + tot.timeout + tot.canceled + tot.other
	fmt.Printf("tm3270load: %d sessions x %d runs in %s\n", *sessions, *runs, elapsed.Round(time.Millisecond))
	fmt.Printf("  replies:   ok=%d trap=%d timeout=%d canceled=%d other=%d (total %d)\n",
		tot.ok, tot.trap, tot.timeout, tot.canceled, tot.other, total)
	fmt.Printf("  transport: requests=%d retries=%d shed429=%d fivexx=%d errors=%d failed=%d\n",
		agg.Requests.Load(), agg.Retries.Load(), agg.Shed.Load(), agg.FiveXX.Load(),
		agg.Errors.Load(), tot.failed)
	if elapsed > 0 && total > 0 {
		fmt.Printf("  throughput: %.1f runs/s\n", float64(total)/elapsed.Seconds())
	}
	lat.report()

	fail := agg.FiveXX.Load() != 0 || tot.failed != 0
	if *checkMetrics {
		if err := auditMetrics(ctx, ready, wantEngine); err != nil {
			fmt.Fprintf(os.Stderr, "tm3270load: metrics audit: %v\n", err)
			fail = true
		} else {
			fmt.Println("  metrics audit: histograms well-formed, stage and engine counts == admitted")
		}
	}
	if fail {
		fmt.Fprintln(os.Stderr, "tm3270load: FAIL — 5xx responses, failed requests, or metrics audit")
		os.Exit(1)
	}
	fmt.Println("tm3270load: PASS — zero 5xx, zero failed requests")
}

// auditMetrics fetches /metrics and asserts the histogram invariants:
// every histogram's bucket counts sum to its count, every
// service.latency.stage.* histogram observed exactly once per admitted
// run, and the per-engine run counters account for every admitted run
// on the engine this campaign requested. The server observes the
// encode and run stages after the reply bytes hit the wire, so a
// just-finished campaign can race the final observations; retry
// briefly before declaring a mismatch.
func auditMetrics(ctx context.Context, c *service.Client, wantEngine string) error {
	deadline := time.Now().Add(2 * time.Second)
	for {
		m, err := c.Metrics(ctx)
		if err != nil {
			return err
		}
		err = checkMetricsBody(m, wantEngine)
		if err == nil || time.Now().After(deadline) {
			return err
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func checkMetricsBody(m *service.Metrics, wantEngine string) error {
	if len(m.Histograms) == 0 {
		return fmt.Errorf("no histograms in /metrics")
	}
	admitted := m.Counters["service.runs.admitted"]
	stages := 0
	for name, h := range m.Histograms {
		if len(h.Counts) != len(h.BoundsUS)+1 {
			return fmt.Errorf("%s: %d buckets for %d bounds (want bounds+1)",
				name, len(h.Counts), len(h.BoundsUS))
		}
		var sum int64
		for _, c := range h.Counts {
			if c < 0 {
				return fmt.Errorf("%s: negative bucket count %d", name, c)
			}
			sum += c
		}
		if sum != h.Count {
			return fmt.Errorf("%s: bucket counts sum to %d, count says %d", name, sum, h.Count)
		}
		if strings.HasPrefix(name, "service.latency.stage.") {
			stages++
			if h.Count != admitted {
				return fmt.Errorf("%s: observed %d, admitted runs %d", name, h.Count, admitted)
			}
		}
	}
	if stages == 0 {
		return fmt.Errorf("no service.latency.stage.* histograms in /metrics")
	}
	// Engine accounting: every admitted run executed on exactly one
	// engine, and this campaign is the server's only traffic, so the
	// requested engine's counter must carry the whole admitted total.
	bc := m.Counters["service.runs.engine.blockcache"]
	ip := m.Counters["service.runs.engine.interp"]
	if bc+ip != admitted {
		return fmt.Errorf("engine run counters: blockcache %d + interp %d != admitted %d", bc, ip, admitted)
	}
	want := bc
	if wantEngine == "interp" {
		want = ip
	}
	if want != admitted {
		return fmt.Errorf("engine %s ran %d of %d admitted runs (fallbacks: %d)",
			wantEngine, want, admitted, m.Counters["service.blockcache.fallbacks"])
	}
	if translated := m.Counters["service.blockcache.translated"]; bc > 0 && translated < bc {
		// Every block-cache run starts with a cold per-run cache, so it
		// translates at least one block.
		return fmt.Errorf("service.blockcache.translated %d < %d blockcache runs", translated, bc)
	}
	return nil
}
