// Command tm3270lint statically verifies TM3270 binaries: it builds,
// schedules and encodes the named workloads (all of them by default),
// decodes the resulting images back, and runs the internal/binverify
// whole-program analyzer over the decoded machine code. Every finding
// is a structured diagnostic — PC, instruction index, issue slot,
// mnemonic, the analysis that fired and a message:
//
//	error: pc=0x1000038 instr 2 slot 3 asl [slot]: asl (unit shifter) may not issue in slot 3 (legal slots {1,2})
//
// The exit status is 1 if any workload produced an error-severity
// diagnostic (or any diagnostic at all under -strict), so the command
// gates CI and pre-run pipelines.
//
// Usage:
//
//	tm3270lint [-config A|B|C|D|tm3260|tm3270] [-full] [-strict] [-q] [workload ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tm3270/internal/binverify"
	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

func main() {
	cfg := flag.String("config", "D", "target: A, B, C, D, tm3260 or tm3270")
	full := flag.Bool("full", false, "paper-scale workload sizes (default: small)")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	quiet := flag.Bool("q", false, "print only workloads with findings")
	flag.Parse()

	var tgt config.Target
	switch strings.ToUpper(*cfg) {
	case "A", "TM3260":
		tgt = config.ConfigA()
	case "B":
		tgt = config.ConfigB()
	case "C":
		tgt = config.ConfigC()
	case "D", "TM3270":
		tgt = config.ConfigD()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *cfg)
		os.Exit(2)
	}

	p := workloads.Small()
	if *full {
		p = workloads.Full()
	}
	names := flag.Args()
	if len(names) == 0 {
		names = workloads.Names()
	}

	failed := false
	for _, name := range names {
		w, err := workloads.ByName(name, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		code, err := sched.Schedule(w.Prog, tgt)
		if err != nil {
			// Workloads using TM3270-only operations cannot be compiled
			// for earlier targets; that is a property of the target, not a
			// verification finding.
			fmt.Printf("%-16s skipped: %v\n", name, err)
			continue
		}
		rm, err := regalloc.Allocate(w.Prog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: regalloc: %v\n", name, err)
			os.Exit(2)
		}
		enc, err := encode.Encode(code, rm, tmsim.CodeBase)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: encode: %v\n", name, err)
			os.Exit(2)
		}
		dec, err := encode.Decode(enc.Bytes, tmsim.CodeBase, len(code.Instrs))
		if err != nil {
			// A shipped binary that does not decode is itself a finding.
			fmt.Printf("%-16s FAIL: image does not decode: %v\n", name, err)
			failed = true
			continue
		}
		var entry []isa.Reg
		for v := range w.Args {
			entry = append(entry, rm.Reg(v))
		}
		rep := binverify.Verify(dec, &tgt, &binverify.Options{EntryDefined: entry})
		bad := rep.Errors() > 0 || (*strict && !rep.Clean())
		switch {
		case rep.Clean():
			if !*quiet {
				fmt.Printf("%-16s ok: %d instructions, %d bytes\n",
					name, len(dec), enc.TotalBytes())
			}
		default:
			fmt.Printf("%-16s %d error(s), %d warning(s):\n", name, rep.Errors(), rep.Warnings())
			rep.Write(os.Stdout)
		}
		if bad {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
