// Command tm3270lint statically verifies TM3270 binaries: it builds,
// schedules and encodes the named workloads (all of them by default),
// decodes the resulting images back, and runs the internal/binverify
// whole-program analyzer over the decoded machine code. Every finding
// is a structured diagnostic — PC, instruction index, issue slot,
// mnemonic, the analysis that fired and a message:
//
//	error: pc=0x1000038 instr 2 slot 3 asl [slot]: asl (unit shifter) may not issue in slot 3 (legal slots {1,2})
//
// The exit status is 1 if any workload produced an error-severity
// diagnostic (or any diagnostic at all under -strict), so the command
// gates CI and pre-run pipelines.
//
// Workloads verify concurrently (-parallel N, default GOMAXPROCS)
// through the runner's compile-artifact pipeline; reports print in
// workload order regardless of parallelism.
//
// With -json the command instead writes one JSON document to stdout:
// per workload its status, size, and every diagnostic as a structured
// record (check, severity, pc, instruction index, slot, opcode,
// message), so CI annotators and dashboards consume findings without
// scraping the text rendering. Exit codes are unchanged.
//
// With -exec each statically clean workload additionally executes on
// the machine model (engine selectable via -engine) and its outputs
// are checked — the dynamic counterpart of the static gate.
//
// Usage:
//
//	tm3270lint [-config A|B|C|D|tm3260|tm3270] [-full] [-strict] [-q]
//	           [-json] [-parallel N] [-exec [-engine blockcache|interp]]
//	           [workload ...]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"tm3270/internal/binverify"
	"tm3270/internal/config"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// report is one workload's rendered verification outcome.
type report struct {
	text   string
	failed bool
	fatal  error // setup failures (unknown workload, regalloc, encode)
	jw     jsonWorkload
}

// jsonDiag is one finding in the -json rendering.
type jsonDiag struct {
	Check    string `json:"check"`
	Severity string `json:"severity"`
	PC       string `json:"pc"` // hex byte address, "0x..."
	Index    int    `json:"index"`
	Slot     int    `json:"slot,omitempty"` // 1-based; absent for instruction-level findings
	Op       string `json:"op,omitempty"`   // mnemonic, when the finding concerns one operation
	Msg      string `json:"msg"`
}

// jsonWorkload is one workload's entry in the -json rendering.
type jsonWorkload struct {
	Name         string     `json:"name"`
	Status       string     `json:"status"` // "ok", "findings", "skipped" or "fail"
	Reason       string     `json:"reason,omitempty"`
	Instructions int        `json:"instructions,omitempty"`
	Bytes        int        `json:"bytes,omitempty"`
	Errors       int        `json:"errors"`
	Warnings     int        `json:"warnings"`
	Diags        []jsonDiag `json:"diags,omitempty"`
}

func jsonDiags(rep *binverify.Report) []jsonDiag {
	var out []jsonDiag
	for i := range rep.Diags {
		d := &rep.Diags[i]
		out = append(out, jsonDiag{
			Check:    d.Check,
			Severity: d.Severity.String(),
			PC:       fmt.Sprintf("%#x", d.PC),
			Index:    d.Index,
			Slot:     d.Slot,
			Op:       d.Op,
			Msg:      d.Msg,
		})
	}
	return out
}

func main() {
	cfg := flag.String("config", "D", "target: A, B, C, D, tm3260 or tm3270")
	full := flag.Bool("full", false, "paper-scale workload sizes (default: small)")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	quiet := flag.Bool("q", false, "print only workloads with findings")
	jsonOut := flag.Bool("json", false, "write one JSON document instead of text")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent verifications")
	exec := flag.Bool("exec", false, "also execute each verified workload and check its outputs (dynamic gate)")
	engine := flag.String("engine", "", "execution engine for -exec: blockcache (default) or interp")
	flag.Parse()

	eng, err := tmsim.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var tgt config.Target
	switch strings.ToUpper(*cfg) {
	case "A", "TM3260":
		tgt = config.ConfigA()
	case "B":
		tgt = config.ConfigB()
	case "C":
		tgt = config.ConfigC()
	case "D", "TM3270":
		tgt = config.ConfigD()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *cfg)
		os.Exit(2)
	}

	p := workloads.Small()
	if *full {
		p = workloads.Full()
	}
	names := flag.Args()
	if len(names) == 0 {
		names = workloads.Names()
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	reports := make([]report, len(names))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				reports[i] = verifyOne(names[i], p, tgt, *strict, *quiet, *exec, eng)
			}
		}()
	}
	for i := range names {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	failed := false
	doc := struct {
		Config    string         `json:"config"`
		Workloads []jsonWorkload `json:"workloads"`
	}{Config: tgt.Name}
	for _, r := range reports {
		if r.fatal != nil {
			fmt.Fprintln(os.Stderr, r.fatal)
			os.Exit(2)
		}
		if *jsonOut {
			doc.Workloads = append(doc.Workloads, r.jw)
		} else {
			fmt.Print(r.text)
		}
		if r.failed {
			failed = true
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// verifyOne compiles and statically verifies a single workload,
// rendering its report. With exec it also runs the workload on the
// selected engine and checks its outputs (the dynamic gate).
func verifyOne(name string, p workloads.Params, tgt config.Target, strict, quiet bool,
	exec bool, eng tmsim.Engine) report {
	w, err := workloads.ByName(name, p)
	if err != nil {
		return report{fatal: err}
	}
	art, err := runner.Compile(w.Prog, tgt)
	if err != nil {
		// Workloads using TM3270-only operations cannot be compiled
		// for earlier targets; that is a property of the target, not a
		// verification finding. Allocation/encoding failures, by
		// contrast, are build-system faults.
		var serr *runner.ScheduleError
		if errors.As(err, &serr) {
			return report{
				text: fmt.Sprintf("%-16s skipped: %v\n", name, err),
				jw:   jsonWorkload{Name: name, Status: "skipped", Reason: err.Error()},
			}
		}
		return report{fatal: fmt.Errorf("%s: %w", name, err)}
	}
	rep, err := art.VerifyStatic(&tgt, art.VerifyOptions(w))
	if rep == nil {
		// A shipped binary that does not decode is itself a finding.
		return report{
			text:   fmt.Sprintf("%-16s FAIL: %v\n", name, err),
			failed: true,
			jw:     jsonWorkload{Name: name, Status: "fail", Reason: err.Error()},
		}
	}
	jw := jsonWorkload{
		Name: name, Status: "ok",
		Instructions: art.SchedInstrs(), Bytes: art.CodeBytes(),
		Errors: rep.Errors(), Warnings: rep.Warnings(),
		Diags: jsonDiags(rep),
	}
	var b strings.Builder
	bad := rep.Errors() > 0 || (strict && !rep.Clean())
	switch {
	case rep.Clean():
		if !quiet {
			fmt.Fprintf(&b, "%-16s ok: %d instructions, %d bytes\n",
				name, art.SchedInstrs(), art.CodeBytes())
		}
	default:
		jw.Status = "findings"
		fmt.Fprintf(&b, "%-16s %d error(s), %d warning(s):\n", name, rep.Errors(), rep.Warnings())
		rep.Write(&b)
	}
	if exec && !bad {
		res, runErr := runner.RunContext(context.Background(), w, tgt,
			runner.WithArtifact(art), runner.WithEngine(eng))
		if runErr != nil {
			fmt.Fprintf(&b, "%-16s exec FAIL: %v\n", name, runErr)
			jw.Status = "fail"
			jw.Reason = runErr.Error()
			return report{text: b.String(), failed: true, jw: jw}
		}
		if !quiet {
			fmt.Fprintf(&b, "%-16s exec ok: %d instrs, %d cycles [%s]\n",
				name, res.Stats.Instrs, res.Stats.Cycles, res.Engine)
		}
	}
	return report{text: b.String(), failed: bad, jw: jw}
}
