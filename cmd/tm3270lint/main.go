// Command tm3270lint statically verifies TM3270 binaries: it builds,
// schedules and encodes the named workloads (all of them by default),
// decodes the resulting images back, and runs the internal/binverify
// whole-program analyzer over the decoded machine code. Every finding
// is a structured diagnostic — PC, instruction index, issue slot,
// mnemonic, the analysis that fired and a message:
//
//	error: pc=0x1000038 instr 2 slot 3 asl [slot]: asl (unit shifter) may not issue in slot 3 (legal slots {1,2})
//
// The exit status is 1 if any workload produced an error-severity
// diagnostic (or any diagnostic at all under -strict), so the command
// gates CI and pre-run pipelines.
//
// Workloads verify concurrently (-parallel N, default GOMAXPROCS)
// through the runner's compile-artifact pipeline; reports print in
// workload order regardless of parallelism.
//
// Usage:
//
//	tm3270lint [-config A|B|C|D|tm3260|tm3270] [-full] [-strict] [-q]
//	           [-parallel N] [workload ...]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"tm3270/internal/config"
	"tm3270/internal/runner"
	"tm3270/internal/workloads"
)

// report is one workload's rendered verification outcome.
type report struct {
	text   string
	failed bool
	fatal  error // setup failures (unknown workload, regalloc, encode)
}

func main() {
	cfg := flag.String("config", "D", "target: A, B, C, D, tm3260 or tm3270")
	full := flag.Bool("full", false, "paper-scale workload sizes (default: small)")
	strict := flag.Bool("strict", false, "treat warnings as failures")
	quiet := flag.Bool("q", false, "print only workloads with findings")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent verifications")
	flag.Parse()

	var tgt config.Target
	switch strings.ToUpper(*cfg) {
	case "A", "TM3260":
		tgt = config.ConfigA()
	case "B":
		tgt = config.ConfigB()
	case "C":
		tgt = config.ConfigC()
	case "D", "TM3270":
		tgt = config.ConfigD()
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *cfg)
		os.Exit(2)
	}

	p := workloads.Small()
	if *full {
		p = workloads.Full()
	}
	names := flag.Args()
	if len(names) == 0 {
		names = workloads.Names()
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	reports := make([]report, len(names))
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				reports[i] = verifyOne(names[i], p, tgt, *strict, *quiet)
			}
		}()
	}
	for i := range names {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	failed := false
	for _, r := range reports {
		if r.fatal != nil {
			fmt.Fprintln(os.Stderr, r.fatal)
			os.Exit(2)
		}
		fmt.Print(r.text)
		if r.failed {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// verifyOne compiles and statically verifies a single workload,
// rendering its report.
func verifyOne(name string, p workloads.Params, tgt config.Target, strict, quiet bool) report {
	w, err := workloads.ByName(name, p)
	if err != nil {
		return report{fatal: err}
	}
	art, err := runner.Compile(w.Prog, tgt)
	if err != nil {
		// Workloads using TM3270-only operations cannot be compiled
		// for earlier targets; that is a property of the target, not a
		// verification finding. Allocation/encoding failures, by
		// contrast, are build-system faults.
		var serr *runner.ScheduleError
		if errors.As(err, &serr) {
			return report{text: fmt.Sprintf("%-16s skipped: %v\n", name, err)}
		}
		return report{fatal: fmt.Errorf("%s: %w", name, err)}
	}
	rep, err := art.VerifyStatic(&tgt, art.EntryRegs(w.Args))
	if rep == nil {
		// A shipped binary that does not decode is itself a finding.
		return report{text: fmt.Sprintf("%-16s FAIL: %v\n", name, err), failed: true}
	}
	var b strings.Builder
	bad := rep.Errors() > 0 || (strict && !rep.Clean())
	switch {
	case rep.Clean():
		if !quiet {
			fmt.Fprintf(&b, "%-16s ok: %d instructions, %d bytes\n",
				name, art.SchedInstrs(), art.CodeBytes())
		}
	default:
		fmt.Fprintf(&b, "%-16s %d error(s), %d warning(s):\n", name, rep.Errors(), rep.Warnings())
		rep.Write(&b)
	}
	return report{text: b.String(), failed: bad}
}
