// Command covergate enforces per-package coverage floors. It reads
// `go test -cover ./...` output on stdin, parses each package's
// statement coverage, and compares it against the checked-in floors
// file (one `import/path minimum-percent` pair per line, `#` comments).
// Any gated package below its floor — or missing from the input, which
// is how a deleted test suite would present — fails the gate.
//
// The floors are a ratchet, not a target: they sit a few points below
// the measured baseline (see EXPERIMENTS.md) so routine changes pass,
// while a change that guts a tier-1 package's tests fails `make check`.
//
// -ratchet turns the one-way property into an automatic one: any gated
// package measuring at least ratchetSlack points above its floor gets
// its floor raised to measured - ratchetMargin, and the floors file is
// rewritten in place (header comments preserved). Coverage gains are
// thereby locked in as they land rather than waiting for someone to
// remember; the gate still runs and still fails packages below floor.
//
// Usage:
//
//	go test -count=1 -cover ./... | covergate [-floors coverage_floors.txt] [-ratchet]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// coverRe matches `ok <pkg> <time> coverage: <pct>% of statements`.
var coverRe = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

const (
	// ratchetSlack is how far above its floor a package must measure
	// before -ratchet raises the floor — wide enough that run-to-run
	// coverage jitter can't ping-pong the file.
	ratchetSlack = 5
	// ratchetMargin is how far below the measurement the raised floor
	// lands, so routine changes keep passing after a ratchet.
	ratchetMargin = 2
)

func parseFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package floor\", got %q", path, line, text)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("%s:%d: bad floor %q", path, line, fields[1])
		}
		floors[fields[0]] = pct
	}
	return floors, sc.Err()
}

// ratchetFloors raises the floor of every package measuring at least
// ratchetSlack above it to (measured - ratchetMargin), rounded down to
// a whole point. It returns the updated floors and the packages whose
// floors moved, sorted. Floors never go down.
func ratchetFloors(floors, got map[string]float64) (map[string]float64, []string) {
	out := make(map[string]float64, len(floors))
	var raised []string
	for pkg, floor := range floors {
		out[pkg] = floor
		pct, ok := got[pkg]
		if !ok || pct < floor+ratchetSlack {
			continue
		}
		next := math.Floor(pct - ratchetMargin)
		if next > floor {
			out[pkg] = next
			raised = append(raised, pkg)
		}
	}
	sort.Strings(raised)
	return out, raised
}

// writeFloors rewrites the floors file: the original header comment
// block survives, then one sorted `pkg<TAB>floor` line per package.
func writeFloors(path string, floors map[string]float64) error {
	var header []string
	if f, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				header = append(header, sc.Text())
				continue
			}
			break
		}
		f.Close()
	}
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	var b strings.Builder
	for _, h := range header {
		b.WriteString(h)
		b.WriteByte('\n')
	}
	for _, pkg := range pkgs {
		b.WriteString(fmt.Sprintf("%s\t%s\n", pkg, formatFloor(floors[pkg])))
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// formatFloor prints whole floors without a decimal point, matching
// the hand-written file style.
func formatFloor(f float64) string {
	if f == math.Trunc(f) {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'f', 1, 64)
}

func main() {
	floorsPath := flag.String("floors", "coverage_floors.txt", "per-package floors file")
	ratchet := flag.Bool("ratchet", false, "raise floors of packages measuring >= floor+5 and rewrite the floors file")
	flag.Parse()

	floors, err := parseFloors(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		// Echo the test output through so the gate is transparent in CI
		// logs, then harvest coverage lines.
		fmt.Println(sc.Text())
		if m := coverRe.FindStringSubmatch(sc.Text()); m != nil {
			pct, err := strconv.ParseFloat(m[2], 64)
			if err == nil {
				got[m[1]] = pct
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failed := 0
	fmt.Printf("\ncovergate: %d gated packages (floors from %s)\n", len(pkgs), *floorsPath)
	for _, pkg := range pkgs {
		pct, ok := got[pkg]
		switch {
		case !ok:
			fmt.Printf("  FAIL %-36s no coverage reported (floor %.1f%%)\n", pkg, floors[pkg])
			failed++
		case pct < floors[pkg]:
			fmt.Printf("  FAIL %-36s %.1f%% < floor %.1f%%\n", pkg, pct, floors[pkg])
			failed++
		default:
			fmt.Printf("  ok   %-36s %.1f%% >= %.1f%%\n", pkg, pct, floors[pkg])
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "covergate: %d package(s) below their coverage floor\n", failed)
		os.Exit(1)
	}

	if *ratchet {
		next, raised := ratchetFloors(floors, got)
		if len(raised) == 0 {
			fmt.Println("covergate: ratchet: no package holds floor+5; floors unchanged")
			return
		}
		if err := writeFloors(*floorsPath, next); err != nil {
			fmt.Fprintln(os.Stderr, "covergate: ratchet:", err)
			os.Exit(2)
		}
		for _, pkg := range raised {
			fmt.Printf("covergate: ratchet: %-36s %.0f%% -> %.0f%% (measured %.1f%%)\n",
				pkg, floors[pkg], next[pkg], got[pkg])
		}
	}
}
