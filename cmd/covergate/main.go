// Command covergate enforces per-package coverage floors. It reads
// `go test -cover ./...` output on stdin, parses each package's
// statement coverage, and compares it against the checked-in floors
// file (one `import/path minimum-percent` pair per line, `#` comments).
// Any gated package below its floor — or missing from the input, which
// is how a deleted test suite would present — fails the gate.
//
// The floors are a ratchet, not a target: they sit a few points below
// the measured baseline (see EXPERIMENTS.md) so routine changes pass,
// while a change that guts a tier-1 package's tests fails `make check`.
//
// Usage:
//
//	go test -count=1 -cover ./... | covergate [-floors coverage_floors.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// coverRe matches `ok <pkg> <time> coverage: <pct>% of statements`.
var coverRe = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func parseFloors(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	floors := make(map[string]float64)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want \"package floor\", got %q", path, line, text)
		}
		pct, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || pct < 0 || pct > 100 {
			return nil, fmt.Errorf("%s:%d: bad floor %q", path, line, fields[1])
		}
		floors[fields[0]] = pct
	}
	return floors, sc.Err()
}

func main() {
	floorsPath := flag.String("floors", "coverage_floors.txt", "per-package floors file")
	flag.Parse()

	floors, err := parseFloors(*floorsPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	got := make(map[string]float64)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		// Echo the test output through so the gate is transparent in CI
		// logs, then harvest coverage lines.
		fmt.Println(sc.Text())
		if m := coverRe.FindStringSubmatch(sc.Text()); m != nil {
			pct, err := strconv.ParseFloat(m[2], 64)
			if err == nil {
				got[m[1]] = pct
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "covergate:", err)
		os.Exit(2)
	}

	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)

	failed := 0
	fmt.Printf("\ncovergate: %d gated packages (floors from %s)\n", len(pkgs), *floorsPath)
	for _, pkg := range pkgs {
		pct, ok := got[pkg]
		switch {
		case !ok:
			fmt.Printf("  FAIL %-36s no coverage reported (floor %.1f%%)\n", pkg, floors[pkg])
			failed++
		case pct < floors[pkg]:
			fmt.Printf("  FAIL %-36s %.1f%% < floor %.1f%%\n", pkg, pct, floors[pkg])
			failed++
		default:
			fmt.Printf("  ok   %-36s %.1f%% >= %.1f%%\n", pkg, pct, floors[pkg])
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "covergate: %d package(s) below their coverage floor\n", failed)
		os.Exit(1)
	}
}
