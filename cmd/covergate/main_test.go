package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRatchetFloors(t *testing.T) {
	floors := map[string]float64{
		"a": 70, // measured 80: +10 slack, ratchets to 78
		"b": 70, // measured 73: inside the 5-point slack band, stays
		"c": 70, // not measured (test suite gone), stays
		"d": 90, // measured 91.4: stays
		"e": 50, // measured 55.0: exactly at slack, ratchets to 53
	}
	got := map[string]float64{"a": 80, "b": 73, "d": 91.4, "e": 55}

	next, raised := ratchetFloors(floors, got)
	if want := []string{"a", "e"}; len(raised) != 2 || raised[0] != want[0] || raised[1] != want[1] {
		t.Fatalf("raised = %v, want %v", raised, want)
	}
	wantFloors := map[string]float64{"a": 78, "b": 70, "c": 70, "d": 90, "e": 53}
	for pkg, want := range wantFloors {
		if next[pkg] != want {
			t.Errorf("floor[%s] = %v, want %v", pkg, next[pkg], want)
		}
	}
}

func TestRatchetNeverLowers(t *testing.T) {
	// A floor already above measured-margin must not move, whatever the
	// arithmetic says.
	floors := map[string]float64{"a": 96}
	next, raised := ratchetFloors(floors, map[string]float64{"a": 97})
	if len(raised) != 0 || next["a"] != 96 {
		t.Errorf("floor moved: next=%v raised=%v", next, raised)
	}
}

func TestWriteFloorsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "floors.txt")
	orig := "# header line one\n# header line two\npkg/a\t70\npkg/b\t85.5\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}
	floors, err := parseFloors(path)
	if err != nil {
		t.Fatal(err)
	}
	floors["pkg/a"] = 78
	if err := writeFloors(path, floors); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "# header line one\n# header line two\npkg/a\t78\npkg/b\t85.5\n"
	if string(out) != want {
		t.Errorf("rewritten file:\n%s\nwant:\n%s", out, want)
	}
	// And the rewritten file still parses to the same floors.
	back, err := parseFloors(path)
	if err != nil {
		t.Fatal(err)
	}
	if back["pkg/a"] != 78 || back["pkg/b"] != 85.5 {
		t.Errorf("round trip lost floors: %v", back)
	}
}

func TestCoverRe(t *testing.T) {
	line := "ok  \ttm3270/internal/tmsim\t12.3s\tcoverage: 71.2% of statements"
	m := coverRe.FindStringSubmatch(line)
	if m == nil || m[1] != "tm3270/internal/tmsim" || m[2] != "71.2" {
		t.Fatalf("coverRe match = %v", m)
	}
	if coverRe.MatchString("FAIL\ttm3270/internal/tmsim\t0.1s") {
		t.Error("coverRe matched a FAIL line")
	}
	if !strings.HasPrefix(line, "ok") {
		t.Fatal("test line malformed")
	}
}
