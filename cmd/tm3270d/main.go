// Command tm3270d serves the multi-tenant simulation daemon: clients
// create processor sessions over HTTP/JSON (POST /sessions), stream
// run requests in (POST /sessions/{id}/runs) and get structured
// results and telemetry back. Overload sheds with 429 + Retry-After,
// runs are deadline-bounded, panicking sessions are quarantined
// without taking the daemon down, and SIGTERM/SIGINT drains
// gracefully: admission closes, in-flight runs finish (or are canceled
// at the drain deadline with structured responses), the final counter
// snapshot flushes to stderr, then the process exits.
//
// Usage:
//
//	tm3270d [-addr :8270] [-workers N] [-queue 64] [-max-sessions 4096]
//	        [-quota 8] [-run-deadline 30s] [-drain-deadline 30s]
//	        [-retry-after 1s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tm3270/internal/service"
)

func main() {
	addr := flag.String("addr", ":8270", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before shedding")
	maxSessions := flag.Int("max-sessions", 4096, "live session bound")
	quota := flag.Int("quota", 8, "default per-session in-flight run quota")
	runDeadline := flag.Duration("run-deadline", 30*time.Second, "default per-run wall-clock budget")
	drainDeadline := flag.Duration("drain-deadline", 30*time.Second, "shutdown budget for in-flight runs")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint on shed responses")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxSessions:  *maxSessions,
		SessionQuota: *quota,
		RunDeadline:  *runDeadline,
		RetryAfter:   *retryAfter,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tm3270d: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tm3270d: %v: draining (budget %s)\n", s, *drainDeadline)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "tm3270d: serve: %v\n", err)
		os.Exit(1)
	}

	// Drain: stop admitting (new runs shed with 429, /readyz flips to
	// 503), wait for in-flight runs, cancel stragglers at the deadline.
	dctx, cancel := context.WithTimeout(context.Background(), *drainDeadline)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "tm3270d: drain deadline hit, stragglers canceled: %v\n", err)
	}
	// Let the HTTP server flush the drained runs' responses, then stop.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "tm3270d: http shutdown: %v\n", err)
	}
	srv.Close()

	// Flush the final telemetry snapshot so operators can post-mortem a
	// drained instance.
	fmt.Fprintln(os.Stderr, "tm3270d: final counters:")
	srv.Snapshot().WriteJSON(os.Stderr)
	fmt.Fprintln(os.Stderr, "tm3270d: drained cleanly")
}
