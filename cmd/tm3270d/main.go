// Command tm3270d serves the multi-tenant simulation daemon: clients
// create processor sessions over HTTP/JSON (POST /sessions), stream
// run requests in (POST /sessions/{id}/runs) and get structured
// results and telemetry back. Overload sheds with 429 + Retry-After,
// runs are deadline-bounded, panicking sessions are quarantined
// without taking the daemon down, and SIGTERM/SIGINT drains
// gracefully: admission closes, in-flight runs finish (or are canceled
// at the drain deadline with structured responses), the final counter
// snapshot and per-stage latency report flush to stderr, then the
// process exits.
//
// Observability: every request carries a request ID joining one
// structured (slog JSON) log line, the request's span tree and any
// error body; /metrics serves counters plus fixed-bucket latency
// histograms; -trace FILE writes the whole serving window as a
// Perfetto-loadable span trace on exit, sessions as tracks.
//
// Usage:
//
//	tm3270d [-addr :8270] [-workers N] [-queue 64] [-max-sessions 4096]
//	        [-quota 8] [-run-deadline 30s] [-drain-deadline 30s]
//	        [-retry-after 1s] [-trace FILE] [-span-cap N] [-log-json=true]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"tm3270/internal/service"
	"tm3270/internal/tmsim"
)

func main() {
	addr := flag.String("addr", ":8270", "listen address")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission queue depth before shedding")
	maxSessions := flag.Int("max-sessions", 4096, "live session bound")
	quota := flag.Int("quota", 8, "default per-session in-flight run quota")
	runDeadline := flag.Duration("run-deadline", 30*time.Second, "default per-run wall-clock budget")
	drainDeadline := flag.Duration("drain-deadline", 30*time.Second, "shutdown budget for in-flight runs")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff hint on shed responses")
	engine := flag.String("engine", "", "default execution engine for sessions: blockcache (default) or interp")
	tracePath := flag.String("trace", "", "write the serving-window span trace (Chrome trace-event JSON) here on exit")
	spanCap := flag.Int("span-cap", 0, "span recorder bound in request trees (0 = default)")
	logJSON := flag.Bool("log-json", true, "emit one structured JSON log line per request to stderr")
	flag.Parse()

	if _, err := tmsim.ParseEngine(*engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := service.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		MaxSessions:   *maxSessions,
		SessionQuota:  *quota,
		RunDeadline:   *runDeadline,
		RetryAfter:    *retryAfter,
		DefaultEngine: *engine,
		SpanCap:       *spanCap,
	}
	if *logJSON {
		cfg.Log = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := service.New(cfg)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "tm3270d: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tm3270d: %v: draining (budget %s)\n", s, *drainDeadline)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "tm3270d: serve: %v\n", err)
		os.Exit(1)
	}

	// Drain: stop admitting (new runs shed with 429, /readyz flips to
	// 503), wait for in-flight runs, cancel stragglers at the deadline.
	dctx, cancel := context.WithTimeout(context.Background(), *drainDeadline)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "tm3270d: drain deadline hit, stragglers canceled: %v\n", err)
	}
	// Let the HTTP server flush the drained runs' responses, then stop.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "tm3270d: http shutdown: %v\n", err)
	}
	srv.Close()

	if *tracePath != "" {
		if err := writeTrace(srv, *tracePath); err != nil {
			fmt.Fprintf(os.Stderr, "tm3270d: span trace: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "tm3270d: span trace (%d request trees) written to %s\n",
				srv.Spans().Len(), *tracePath)
		}
	}

	// Flush the final telemetry snapshot and latency report so
	// operators can post-mortem a drained instance.
	fmt.Fprintln(os.Stderr, "tm3270d: final counters:")
	srv.Snapshot().WriteJSON(os.Stderr)
	latencyReport(srv)
	fmt.Fprintln(os.Stderr, "tm3270d: drained cleanly")
}

func writeTrace(srv *service.Server, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := srv.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// latencyReport prints every non-empty latency histogram's derived
// quantiles, the human half of the /metrics histograms.
func latencyReport(srv *service.Server) {
	hists := srv.Histograms()
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(os.Stderr, "tm3270d: latency p50/p95/p99 ms:")
	for _, name := range names {
		h := hists[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "  %-40s %8.2f %8.2f %8.2f  (n=%d)\n",
			name, float64(h.P50US)/1000, float64(h.P95US)/1000, float64(h.P99US)/1000, h.Count)
	}
}
