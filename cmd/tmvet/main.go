// Command tmvet runs the repository's custom static analysis passes
// (internal/analyzers) over a source tree: panicfree (no bare panics in
// simulator hot paths) and counternames (telemetry counter names are
// literal dotted lower-case strings). It prints findings in the
// `go vet` style and exits 1 when there are any, so `make lint` gates
// on it.
//
// Usage:
//
//	tmvet [dir ...]   (default: .)
package main

import (
	"flag"
	"fmt"
	"os"

	"tm3270/internal/analyzers"
)

func main() {
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	failed := false
	for _, root := range roots {
		diags, err := analyzers.Run(root, analyzers.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tmvet:", err)
			os.Exit(2)
		}
		for i := range diags {
			fmt.Println(diags[i].String())
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
