// Command tm3270asm compiles a workload kernel for a target and prints
// the scheduled VLIW listing — one line per instruction with its five
// issue slots, byte address and encoding size — plus code-size
// statistics, and optionally verifies the binary encoding by decoding
// it back.
//
// Usage:
//
//	tm3270asm [-config A|B|C|D] [-verify] [-stats] <workload>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

func main() {
	cfg := flag.String("config", "D", "target: A, B, C or D")
	verify := flag.Bool("verify", false, "decode the binary back and verify the round trip")
	statsOnly := flag.Bool("stats", false, "print only code-size statistics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tm3270asm [-config D] [-verify] [-stats] <workload>")
		os.Exit(2)
	}

	var tgt config.Target
	switch strings.ToUpper(*cfg) {
	case "A":
		tgt = config.ConfigA()
	case "B":
		tgt = config.ConfigB()
	case "C":
		tgt = config.ConfigC()
	default:
		tgt = config.ConfigD()
	}

	w, err := workloads.ByName(flag.Arg(0), workloads.Small())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code, err := sched.Schedule(w.Prog, tgt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rm, err := regalloc.Allocate(w.Prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc, err := encode.Encode(code, rm, tmsim.CodeBase)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	labelAt := map[int]string{}
	for l, i := range code.Labels {
		labelAt[i] = l
	}

	if !*statsOnly {
		for i := range code.Instrs {
			if l, ok := labelAt[i]; ok {
				fmt.Printf("%s:\n", l)
			}
			fmt.Printf("%08x %2dB  %s\n", enc.Addr[i], enc.Size[i],
				formatInstr(&code.Instrs[i], rm))
		}
	}

	fmt.Printf("\n%s for %s: %d instructions, %d source ops (OPI %.2f), %d pad instrs, %d bytes (%.1f B/instr)\n",
		w.Name, tgt.Name, len(code.Instrs), code.SrcOps, code.OpsPerInstr(),
		code.PadInstrs, enc.TotalBytes(), float64(enc.TotalBytes())/float64(len(code.Instrs)))
	hist := map[int]int{}
	for _, s := range enc.Size {
		hist[s]++
	}
	for s := 2; s <= 28; s++ {
		if hist[s] > 0 {
			fmt.Printf("  %2d-byte instructions: %d\n", s, hist[s])
		}
	}

	if *verify {
		dec, err := encode.Decode(enc.Bytes, enc.Base, len(code.Instrs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "decode: %v\n", err)
			os.Exit(1)
		}
		for i := range dec {
			if dec[i].Addr != enc.Addr[i] || dec[i].Size != enc.Size[i] {
				fmt.Fprintf(os.Stderr, "round-trip mismatch at instruction %d\n", i)
				os.Exit(1)
			}
		}
		fmt.Printf("round-trip: %d instructions decode to matching addresses and sizes\n", len(dec))
	}
}

// formatInstr renders the five slots with physical registers.
func formatInstr(in *sched.Instr, rm *regalloc.Map) string {
	var parts []string
	for s := 0; s < 5; s++ {
		so := in.Slots[s]
		switch {
		case so.Op == nil:
			parts = append(parts, "-")
		case so.Second:
			parts = append(parts, "^^")
		default:
			parts = append(parts, formatOp(so.Op, rm))
		}
	}
	return strings.Join(parts, " | ")
}

func formatOp(op *prog.Op, rm *regalloc.Map) string {
	info := op.Info()
	s := ""
	if g := rm.Reg(op.Guard); g != 1 {
		s += fmt.Sprintf("if %v ", g)
	}
	s += info.Name
	for i := 0; i < info.NSrc; i++ {
		s += " " + rm.Reg(op.Src[i]).String()
	}
	if info.HasImm {
		if info.IsJump {
			s += " " + op.Target
		} else {
			s += fmt.Sprintf(" #%d", int32(op.Imm))
		}
	}
	if info.NDest > 0 {
		s += " ->"
		for i := 0; i < info.NDest; i++ {
			s += " " + rm.Reg(op.Dest[i]).String()
		}
	}
	return s
}
