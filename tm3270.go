// Package tm3270 is a software model of the Philips TM3270 TriMedia
// media-processor (van de Waerdt et al., "The TM3270 Media-Processor",
// MICRO 2005): a five-issue VLIW with guarded operations, a unified
// 128-entry register file, two-slot super operations, collapsed loads
// with interpolation, CABAC entropy-decoding operations, a 128 KB data
// cache with allocate-on-write-miss byte validity, and memory-region
// hardware prefetching.
//
// The package compiles kernels written in the TriMedia operation DSL
// for a chosen processor configuration (TM3270, its TM3260 predecessor,
// or the intermediate configurations A–D of the paper's evaluation),
// executes them on a cycle-level machine model, and reports performance,
// cache, power and code-size statistics. The paper's entire evaluation
// (Tables 1–6, Figures 1–7) regenerates from these pieces; see
// cmd/tm3270bench.
//
// Execution is context-aware and instance-scoped: RunContext takes
// functional options (deadline, watchdog, strict memory, static
// verification, per-run telemetry), and Batch runs whole workload x
// target matrices concurrently with a compile-artifact cache while
// keeping results byte-identical to a serial run.
package tm3270

import (
	"context"
	"fmt"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/power"
	"tm3270/internal/prog"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Target is a processor configuration (frequency, pipeline, caches,
// ISA-extension availability).
type Target = config.Target

// Predefined targets.
var (
	// TM3270 is the full processor (configuration D of Figure 7).
	TM3270 = config.TM3270
	// TM3260 is the predecessor (configuration A of Figure 7).
	TM3260 = config.TM3260
	// ConfigA..ConfigD are the Figure 7 evaluation points.
	ConfigA = config.ConfigA
	ConfigB = config.ConfigB
	ConfigC = config.ConfigC
	ConfigD = config.ConfigD
)

// Workload is a runnable kernel with inputs and a self-check.
type Workload = workloads.Spec

// Memory is the byte-addressable memory image workloads run against
// (big-endian multi-byte accesses, as on the TM3270).
type Memory = mem.Func

// Params scales the built-in workloads; FullParams matches the paper's
// evaluation sizes, SmallParams keeps experiments fast.
type Params = workloads.Params

// FullParams returns the paper's evaluation sizes.
func FullParams() Params { return workloads.Full() }

// SmallParams returns reduced sizes with identical structure.
func SmallParams() Params { return workloads.Small() }

// Table5 builds the Figure 7 workload set (Table 5 of the paper).
func Table5(p Params) ([]*Workload, error) { return workloads.Table5(p) }

// Stats is the execution report of one run.
type Stats = tmsim.Stats

// Artifact is the build product of Compile: scheduled code, register
// allocation and the encoded image, immutable and shareable across any
// number of concurrent runs (see RunContext's WithArtifact).
type Artifact = runner.Artifact

// Result is the outcome of running a workload on a target. Static code
// properties live on the embedded Artifact (CodeBytes, SchedInstrs,
// OPIStatic are forwarded as methods).
type Result = runner.Result

// Telemetry is the per-run observability sink injected via
// WithTelemetry: the caller arms an event trace and/or the profile,
// the run fills the counter registry and snapshot. Instance-scoped by
// construction, so concurrent runs cannot race on shared telemetry.
type Telemetry = runner.Telemetry

// Engine selects the execution engine of a run. The zero value is
// EngineBlockCache — the predecoded basic-block fast path — which
// falls back to EngineInterp automatically when a run arms features
// the fast path does not support (event traces, profiles). Both
// engines retire identical architectural state and identical cycle
// and stall counters; the cosim gate enforces it.
type Engine = tmsim.Engine

// Execution engines.
const (
	// EngineBlockCache is the predecoded basic-block fast path
	// (default).
	EngineBlockCache = tmsim.EngineBlockCache
	// EngineInterp is the reference slot-walking interpreter.
	EngineInterp = tmsim.EngineInterp
)

// ParseEngine parses an engine name ("blockcache", "interp"; "" means
// the default) as used by the -engine flags and the service API.
func ParseEngine(s string) (Engine, error) { return tmsim.ParseEngine(s) }

// Loaded is a machine-ready execution handle: one compiled Artifact
// loaded against a private memory image with per-run options applied.
// It composes precompiled-artifact execution with engine selection:
//
//	art, _ := tm3270.Compile(p, tgt)
//	ld := tm3270.Load(art, nil, tm3270.WithEngine(tm3270.EngineInterp))
//	err := ld.RunContext(ctx)
type Loaded = runner.Loaded

// Load builds an execution handle for a precompiled artifact. A nil
// image gets a fresh empty one.
func Load(a *Artifact, image *Memory, opts ...RunOption) *Loaded {
	return runner.Load(a, image, opts...)
}

// RunOption is a functional per-run option for RunContext.
type RunOption = runner.Option

// WithDeadline bounds the run to a wall-clock budget (deadline trap).
func WithDeadline(d time.Duration) RunOption { return runner.WithDeadline(d) }

// WithWatchdog bounds the run to n issued instructions (watchdog trap).
func WithWatchdog(n int64) RunOption { return runner.WithWatchdog(n) }

// WithStrictMem traps unmapped loads and null-page stores.
func WithStrictMem(on bool) RunOption { return runner.WithStrictMem(on) }

// WithVerify statically verifies the decoded binary before execution.
func WithVerify(on bool) RunOption { return runner.WithVerify(on) }

// WithTelemetry attaches a per-run observability sink.
func WithTelemetry(t *Telemetry) RunOption { return runner.WithTelemetry(t) }

// WithArtifact runs a precompiled artifact instead of compiling again.
func WithArtifact(a *Artifact) RunOption { return runner.WithArtifact(a) }

// WithEngine selects the execution engine; Result.Engine reports what
// actually executed (the fast path may fall back to the interpreter).
func WithEngine(e Engine) RunOption { return runner.WithEngine(e) }

// Batch is the concurrent workload x target matrix executor: bounded
// parallelism, compile-artifact caching, deterministic job-ordered
// results. See internal/runner for the execution engine.
type Batch = runner.Batch

// BatchJob names one cell of a Batch matrix.
type BatchJob = runner.Job

// BatchResult pairs a BatchJob with its outcome.
type BatchResult = runner.JobResult

// ArtifactCache memoizes Compile by (workload, params, target); share
// one across Batches to stop identical programs from recompiling.
type ArtifactCache = runner.Cache

// NewArtifactCache returns an empty compile-artifact cache.
func NewArtifactCache() *ArtifactCache { return runner.NewCache() }

// BatchMatrix builds the full workload x target cross product in
// row-major order.
func BatchMatrix(names []string, targets []Target) []BatchJob {
	return runner.Matrix(names, targets)
}

// Compile schedules, register-allocates and encodes a program for a
// target, returning the machine-ready artifact.
func Compile(p *prog.Program, t Target) (*Artifact, error) {
	a, err := runner.Compile(p, t)
	if err != nil {
		return nil, fmt.Errorf("tm3270: %w", err)
	}
	return a, nil
}

// Run compiles w for t, executes it on the machine model, validates the
// outputs against the workload's reference check and returns the
// statistics. It is RunContext without cancellation or options.
func Run(w *Workload, t Target) (*Result, error) {
	return RunContext(context.Background(), w, t)
}

// RunContext runs w on t under ctx with per-run options. A canceled or
// expired context aborts the simulation cooperatively with a trap whose
// Cause unwraps to ctx.Err(). On execution failures (trap, failed
// output check) the partial Result is returned alongside the error so
// machine state stays inspectable.
func RunContext(ctx context.Context, w *Workload, t Target, opts ...RunOption) (*Result, error) {
	return runner.RunContext(ctx, w, t, opts...)
}

// Reference executes a workload on the sequential reference interpreter
// (no VLIW packing, no timing) and validates its outputs; used to vet a
// new kernel independent of any schedule.
func Reference(w *Workload) error {
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return fmt.Errorf("%s (reference): init: %w", w.Name, err)
		}
	}
	in := prog.NewInterp(w.Prog, image)
	in.MaxOps = 2_000_000_000
	for v, val := range w.Args {
		in.SetReg(v, val)
	}
	if err := in.Run(); err != nil {
		return fmt.Errorf("%s (reference): %w", w.Name, err)
	}
	if w.Check != nil {
		if err := w.Check(image); err != nil {
			return fmt.Errorf("%s (reference): %w", w.Name, err)
		}
	}
	return nil
}

// Area returns the Table 4 / Figure 6 area breakdown of a target.
func Area(t Target) power.AreaReport { return power.Area(&t) }

// Power evaluates the Table 4 power model at an activity point.
func Power(a power.Activity, voltage float64) (power.PowerReport, error) {
	return power.Power(a, voltage)
}
