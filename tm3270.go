// Package tm3270 is a software model of the Philips TM3270 TriMedia
// media-processor (van de Waerdt et al., "The TM3270 Media-Processor",
// MICRO 2005): a five-issue VLIW with guarded operations, a unified
// 128-entry register file, two-slot super operations, collapsed loads
// with interpolation, CABAC entropy-decoding operations, a 128 KB data
// cache with allocate-on-write-miss byte validity, and memory-region
// hardware prefetching.
//
// The package compiles kernels written in the TriMedia operation DSL
// for a chosen processor configuration (TM3270, its TM3260 predecessor,
// or the intermediate configurations A–D of the paper's evaluation),
// executes them on a cycle-level machine model, and reports performance,
// cache, power and code-size statistics. The paper's entire evaluation
// (Tables 1–6, Figures 1–7) regenerates from these pieces; see
// cmd/tm3270bench.
package tm3270

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/mem"
	"tm3270/internal/power"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Target is a processor configuration (frequency, pipeline, caches,
// ISA-extension availability).
type Target = config.Target

// Predefined targets.
var (
	// TM3270 is the full processor (configuration D of Figure 7).
	TM3270 = config.TM3270
	// TM3260 is the predecessor (configuration A of Figure 7).
	TM3260 = config.TM3260
	// ConfigA..ConfigD are the Figure 7 evaluation points.
	ConfigA = config.ConfigA
	ConfigB = config.ConfigB
	ConfigC = config.ConfigC
	ConfigD = config.ConfigD
)

// Workload is a runnable kernel with inputs and a self-check.
type Workload = workloads.Spec

// Memory is the byte-addressable memory image workloads run against
// (big-endian multi-byte accesses, as on the TM3270).
type Memory = mem.Func

// Params scales the built-in workloads; FullParams matches the paper's
// evaluation sizes, SmallParams keeps experiments fast.
type Params = workloads.Params

// FullParams returns the paper's evaluation sizes.
func FullParams() Params { return workloads.Full() }

// SmallParams returns reduced sizes with identical structure.
func SmallParams() Params { return workloads.Small() }

// Table5 builds the Figure 7 workload set (Table 5 of the paper).
func Table5(p Params) ([]*Workload, error) { return workloads.Table5(p) }

// Stats is the execution report of one run.
type Stats = tmsim.Stats

// Result is the outcome of running a workload on a target.
type Result struct {
	Target  Target
	Stats   Stats
	Machine *tmsim.Machine

	// Static code properties.
	CodeBytes   int
	SchedInstrs int // scheduled VLIW instructions (static)
	OPIStatic   float64
}

// Seconds returns the wall-clock time of the run at the target's
// frequency.
func (r *Result) Seconds() float64 { return r.Stats.Seconds(&r.Target) }

// Activity extracts the power-model operating point of the run.
func (r *Result) Activity() power.Activity {
	s := &r.Stats
	a := power.Activity{}
	if s.Cycles > 0 {
		a.Utilization = float64(s.Instrs) / float64(s.Cycles)
		a.BusBytesPerCyc = float64(r.Machine.BIU.TotalBytes()) / float64(s.Cycles)
	}
	if s.Instrs > 0 {
		a.OPI = s.OPI()
		a.MemOpsPerInstr = float64(s.LoadOps+s.StoreOps) / float64(s.Instrs)
	}
	return a
}

// Compile schedules, register-allocates and encodes a program for a
// target, returning the machine-ready code.
func Compile(p *prog.Program, t Target) (*sched.Code, *regalloc.Map, *encode.Encoded, error) {
	code, err := sched.Schedule(p, t)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tm3270: schedule: %w", err)
	}
	if err := sched.Verify(code); err != nil {
		return nil, nil, nil, fmt.Errorf("tm3270: %w", err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tm3270: %w", err)
	}
	enc, err := encode.Encode(code, rm, tmsim.CodeBase)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tm3270: encode: %w", err)
	}
	return code, rm, enc, nil
}

// Run compiles w for t, executes it on the machine model, validates the
// outputs against the workload's reference check and returns the
// statistics.
func Run(w *Workload, t Target) (*Result, error) {
	code, rm, enc, err := Compile(w.Prog, t)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, t.Name, err)
	}
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return nil, fmt.Errorf("%s on %s: init: %w", w.Name, t.Name, err)
		}
	}
	m, err := tmsim.New(code, rm, image)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, t.Name, err)
	}
	for v, val := range w.Args {
		m.SetReg(v, val)
	}
	if err := m.Run(); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, t.Name, err)
	}
	if w.Check != nil {
		if err := w.Check(image); err != nil {
			return nil, fmt.Errorf("%s on %s: output check failed: %w", w.Name, t.Name, err)
		}
	}
	return &Result{
		Target:      t,
		Stats:       m.Stats,
		Machine:     m,
		CodeBytes:   enc.TotalBytes(),
		SchedInstrs: len(code.Instrs),
		OPIStatic:   code.OpsPerInstr(),
	}, nil
}

// Reference executes a workload on the sequential reference interpreter
// (no VLIW packing, no timing) and validates its outputs; used to vet a
// new kernel independent of any schedule.
func Reference(w *Workload) error {
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return fmt.Errorf("%s (reference): init: %w", w.Name, err)
		}
	}
	in := prog.NewInterp(w.Prog, image)
	in.MaxOps = 2_000_000_000
	for v, val := range w.Args {
		in.SetReg(v, val)
	}
	if err := in.Run(); err != nil {
		return fmt.Errorf("%s (reference): %w", w.Name, err)
	}
	if w.Check != nil {
		if err := w.Check(image); err != nil {
			return fmt.Errorf("%s (reference): %w", w.Name, err)
		}
	}
	return nil
}

// Area returns the Table 4 / Figure 6 area breakdown of a target.
func Area(t Target) power.AreaReport { return power.Area(&t) }

// Power evaluates the Table 4 power model at an activity point.
func Power(a power.Activity, voltage float64) (power.PowerReport, error) {
	return power.Power(a, voltage)
}
