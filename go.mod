module tm3270

go 1.22
