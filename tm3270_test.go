package tm3270_test

import (
	"fmt"
	"testing"

	"tm3270"
)

// TestPublicAPIQuickstart exercises the full public surface: build a
// kernel with the DSL, wrap it in a workload, run it on two targets and
// inspect the statistics.
func TestPublicAPIQuickstart(t *testing.T) {
	b := tm3270.NewKernel("saxpy")
	x, y, n, a := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	i, off, vx, vy, c := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Imm(i, 0)
	b.Label("loop")
	b.AslI(off, i, 2)
	b.Ld32R(vx, x, off).InGroup(1)
	b.Ld32R(vy, y, off).InGroup(2)
	b.Mul(vx, vx, a)
	b.Add(vy, vy, vx)
	b.Add(off, off, y)
	b.St32D(off, 0, vy).InGroup(2)
	b.AddI(i, i, 1)
	b.Les(c, i, n)
	b.JmpT(c, "loop")
	p := b.MustProgram()

	const N = 100
	w := tm3270.NewWorkload("saxpy", p,
		map[tm3270.VReg]uint32{x: 0x1000, y: 0x8000, n: N, a: 3},
		func(m *tm3270.Memory) error {
			for k := 0; k < N; k++ {
				m.Store(0x1000+uint32(4*k), 4, uint64(k))
				m.Store(0x8000+uint32(4*k), 4, uint64(1000+k))
			}
			return nil
		},
		func(m *tm3270.Memory) error {
			for k := 0; k < N; k++ {
				want := uint64(1000 + k + 3*k)
				if got := m.Load(0x8000+uint32(4*k), 4); got != want {
					return fmt.Errorf("y[%d] = %d, want %d", k, got, want)
				}
			}
			return nil
		})

	if err := tm3270.Reference(w); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range []tm3270.Target{tm3270.TM3270(), tm3270.TM3260()} {
		r, err := tm3270.Run(w, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Instrs == 0 || r.Stats.CPI() < 1 {
			t.Errorf("%s: implausible stats", tgt.Name)
		}
		if r.CodeBytes() == 0 || r.SchedInstrs() == 0 {
			t.Errorf("%s: missing code stats", tgt.Name)
		}
		if r.Seconds() <= 0 {
			t.Errorf("%s: non-positive runtime", tgt.Name)
		}
	}
}

// TestBuiltInWorkloads runs the published Table 5 set through the
// public entry points.
func TestBuiltInWorkloads(t *testing.T) {
	p := tm3270.SmallParams()
	set, err := tm3270.Table5(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 11 {
		t.Fatalf("Table 5 has %d workloads, want 11", len(set))
	}
	for _, w := range set[:3] {
		if _, err := tm3270.Run(w, tm3270.ConfigD()); err != nil {
			t.Error(err)
		}
	}
}

// TestPowerAndArea exercises the public power surface.
func TestPowerAndArea(t *testing.T) {
	area := tm3270.Area(tm3270.TM3270())
	if total := area.Total(); total < 8.0 || total > 8.2 {
		t.Errorf("area = %.2f mm², want ~8.08", total)
	}
	set, err := tm3270.Table5(tm3270.SmallParams())
	if err != nil {
		t.Fatal(err)
	}
	r, err := tm3270.Run(set[0], tm3270.ConfigD())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := tm3270.Power(r.Activity(), 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Total() <= 0 || pr.Total() > 1.6 {
		t.Errorf("power rating %.3f mW/MHz out of range", pr.Total())
	}
}

// TestCompileErrorsSurface: compiling a TM3270-only kernel for the
// TM3260 must fail loudly through the public API.
func TestCompileErrorsSurface(t *testing.T) {
	b := tm3270.NewKernel("frac")
	d, addr, f := b.Reg(), b.Reg(), b.Reg()
	b.LdFrac8(d, addr, f)
	p := b.MustProgram()
	if _, err := tm3270.Compile(p, tm3270.TM3260()); err == nil {
		t.Error("TM3260 accepted a collapsed load")
	}
	if _, err := tm3270.Compile(p, tm3270.TM3270()); err != nil {
		t.Errorf("TM3270 rejected a collapsed load: %v", err)
	}
}
