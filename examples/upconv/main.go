// Temporal up-conversion example (paper reference [14]): synthesize an
// intermediate frame between two source frames by motion-compensated
// averaging, with and without hardware prefetch regions covering the
// two source frames. The prefetch variant programs the memory-mapped
// PFn_START/END/STRIDE registers from inside the kernel, exactly as
// TM3270 software does.
//
//	go run ./examples/upconv
package main

import (
	"fmt"
	"log"

	"tm3270"
	"tm3270/internal/workloads"
)

func main() {
	p := tm3270.FullParams() // 720x480 frames
	tgt := tm3270.TM3270()

	off, err := tm3270.Run(workloads.Upconv(p, false), tgt)
	if err != nil {
		log.Fatal(err)
	}
	on, err := tm3270.Run(workloads.Upconv(p, true), tgt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("temporal up-conversion, %dx%d, 8x8 motion-compensated blocks\n\n", p.ImageW, p.ImageH)
	rep := func(name string, r *tm3270.Result) {
		fmt.Printf("%-14s %9d cycles  %8d data stalls  %6d load misses",
			name, r.Stats.Cycles, r.Stats.DataStalls, r.Machine.DC.Stats.LoadMisses)
		if r.Machine.PF != nil && r.Machine.PF.Stats.Issued > 0 {
			fmt.Printf("  %5d prefetches", r.Machine.PF.Stats.Issued)
		}
		fmt.Println()
	}
	rep("no prefetch", off)
	rep("two regions", on)
	fmt.Printf("\nspeedup %.2fx (paper [14]: prefetching buys >20%% on up-conversion)\n",
		float64(off.Stats.Cycles)/float64(on.Stats.Cycles))
	fmt.Println("interpolated frames verified pixel-exact against the Go reference")
}
