// Motion-estimation example: the Section 6 ablation. An exhaustive
// 8x8-block search with fractional refinement runs three ways on the
// TM3270: the portable optimized kernel, the same kernel using LD_FRAC8
// collapsed loads for the fractional stage, and additionally with a
// hardware prefetch region over the reference frame.
//
//	go run ./examples/motionest
package main

import (
	"fmt"
	"log"

	"tm3270"
	"tm3270/internal/workloads"
)

func main() {
	tgt := tm3270.TM3270()
	const w, h = 352, 288 // CIF

	variants := []workloads.MEParams{
		{W: w, H: h},
		{W: w, H: h, UseFrac8: true},
		{W: w, H: h, UseFrac8: true, Prefetch: true},
	}
	var base int64
	fmt.Printf("8x8 motion estimation, +/-4 integer search + 1/16-pel refinement, %dx%d frame\n\n", w, h)
	for _, mp := range variants {
		spec := workloads.MotionEst(mp)
		r, err := tm3270.Run(spec, tgt)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.Stats.Cycles
		}
		fmt.Printf("%-14s %10d instrs  %10d cycles  speedup %.2fx\n",
			spec.Name, r.Stats.Instrs, r.Stats.Cycles,
			float64(base)/float64(r.Stats.Cycles))
	}
	fmt.Println("\nall variants verified against the exhaustive Go reference search")
}
