// CABAC example: the Table 3 experiment in miniature. Decodes the same
// H.264-style entropy-coded field with the plain-ISA kernel and with
// the TM3270's SUPER_CABAC operations, verifying every decoded bin and
// comparing VLIW instruction counts per stream bit.
//
//	go run ./examples/cabac
package main

import (
	"fmt"
	"log"

	"tm3270"
	"tm3270/internal/workloads"
)

func main() {
	field := workloads.FieldI(30000) // an I-field-shaped 30 kbit stream
	bits := workloads.StreamBits(field)
	tgt := tm3270.TM3270()

	ref, err := tm3270.Run(workloads.CABACRef(field), tgt)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := tm3270.Run(workloads.CABACOpt(field), tgt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stream: %d bits (I-field shape), every bin verified on decode\n\n", bits)
	fmt.Printf("%-28s %10s %12s\n", "kernel", "VLIW instr", "instr/bit")
	fmt.Printf("%-28s %10d %12.1f\n", "base ISA (Figure 2 code)", ref.Stats.Instrs,
		float64(ref.Stats.Instrs)/float64(bits))
	fmt.Printf("%-28s %10d %12.1f\n", "SUPER_CABAC_CTX/STR", opt.Stats.Instrs,
		float64(opt.Stats.Instrs)/float64(bits))
	fmt.Printf("\nspeedup %.2fx (paper, Table 3: 1.5x - 1.7x)\n",
		float64(ref.Stats.Instrs)/float64(opt.Stats.Instrs))
}
