// Quickstart: write a kernel in the TM3270 operation DSL, compile it
// for the TM3270 and its TM3260 predecessor, run both on the machine
// model and compare the reports.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tm3270"
)

const (
	srcBase = 0x0001_0000
	dstBase = 0x0008_0000
	n       = 4096
)

func main() {
	// A 4x8-bit SIMD kernel: per pixel, average two video fields with
	// rounding (quadavg is the TriMedia idiom for field blending).
	b := tm3270.NewKernel("blend")
	a, c, out, cnt, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	wa, wb, wo := b.Reg(), b.Reg(), b.Reg()
	b.Label("loop")
	b.Ld32D(wa, a, 0).InGroup(1)
	b.Ld32D(wb, c, 0).InGroup(2)
	b.QuadAvg(wo, wa, wb)
	b.St32D(out, 0, wo).InGroup(3)
	b.AddI(a, a, 4)
	b.AddI(c, c, 4)
	b.AddI(out, out, 4)
	b.AddI(cnt, cnt, -4)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")
	p := b.MustProgram()

	w := tm3270.NewWorkload("blend", p,
		map[tm3270.VReg]uint32{a: srcBase, c: srcBase + n, out: dstBase, cnt: n},
		func(m *tm3270.Memory) error {
			for i := 0; i < 2*n; i++ {
				m.SetByte(srcBase+uint32(i), byte(i*7+13))
			}
			return nil
		},
		func(m *tm3270.Memory) error {
			for i := 0; i < n; i++ {
				x := uint32(m.ByteAt(srcBase + uint32(i)))
				y := uint32(m.ByteAt(srcBase + uint32(n+i)))
				want := byte((x + y + 1) / 2)
				if got := m.ByteAt(dstBase + uint32(i)); got != want {
					return fmt.Errorf("pixel %d: %d, want %d", i, got, want)
				}
			}
			return nil
		})

	// Compile once per target (the Artifact is the complete, reusable
	// build product) and run with per-run options: a wall-clock deadline
	// and the compiled artifact itself. Runs execute on the block-cache
	// fast path by default; WithEngine(tm3270.EngineInterp) selects the
	// reference interpreter — both retire identical state and cycles.
	for _, tgt := range []tm3270.Target{tm3270.TM3260(), tm3270.TM3270()} {
		art, err := tm3270.Compile(p, tgt)
		if err != nil {
			log.Fatal(err)
		}
		r, err := tm3270.RunContext(context.Background(), w, tgt,
			tm3270.WithArtifact(art),
			tm3270.WithDeadline(10*time.Second))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7d instrs  %7d cycles  CPI %.2f  OPI %.2f  %5d B code  %.3f ms  [%s]\n",
			tgt.Name, r.Stats.Instrs, r.Stats.Cycles, r.Stats.CPI(), r.Stats.OPI(),
			r.CodeBytes(), r.Seconds()*1e3, r.Engine)
	}
	fmt.Println("outputs verified against the Go reference on both targets")
}
