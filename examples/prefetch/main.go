// Prefetch example: the Figure 3 scenario. An image is processed in
// 4x4 blocks, left-to-right and top-down. Programming prefetch region 0
// with a stride of one block row makes the next row of blocks stream
// into the data cache while the current one is processed.
//
//	go run ./examples/prefetch
package main

import (
	"fmt"
	"log"

	"tm3270"
	"tm3270/internal/workloads"
)

func main() {
	p := tm3270.FullParams() // 720x480 image
	tgt := tm3270.TM3270()

	off, err := tm3270.Run(workloads.BlockWalk(p, false), tgt)
	if err != nil {
		log.Fatal(err)
	}
	on, err := tm3270.Run(workloads.BlockWalk(p, true), tgt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4x4 block walk over a %dx%d image (Figure 3)\n\n", p.ImageW, p.ImageH)
	report := func(name string, r *tm3270.Result) {
		fmt.Printf("%-16s %8d cycles  %6d data-stall cycles  %5d load misses",
			name, r.Stats.Cycles, r.Stats.DataStalls, r.Machine.DC.Stats.LoadMisses)
		if r.Machine.PF != nil && r.Machine.PF.Stats.Issued > 0 {
			fmt.Printf("  %5d prefetches (%d useful, %d late)",
				r.Machine.PF.Stats.Issued, r.Machine.PF.Stats.Useful, r.Machine.PF.Stats.Late)
		}
		fmt.Println()
	}
	report("no prefetch", off)
	report("region stride", on)
	fmt.Printf("\nspeedup %.2fx; both runs verified the same block checksum\n",
		float64(off.Stats.Cycles)/float64(on.Stats.Cycles))
}
