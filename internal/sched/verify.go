package sched

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/prog"
)

// Verify statically checks that scheduled code honors the exposed-
// pipeline contract the hardware relies on (the TM3270 has no register
// interlocks): every operation sits in an issue slot its functional
// unit is wired to (two-slot operations occupy an adjacent pair, loads
// respect the per-instruction load limit); within every block, no
// operation reads a register whose producing write has not yet
// committed (issue + latency), writes to the same register commit in
// program order, and every result commits by the end of its block (the
// drain rule that makes cross-block dataflow safe on both branch
// outcomes).
//
// Verify re-derives the constraints independently of the scheduler's
// own dependence graph, so it catches scheduler bugs that the
// differential execution tests would only hit probabilistically.
func Verify(c *Code) error {
	t := &c.Target
	for i := range c.Instrs {
		if err := verifySlots(c, i, t); err != nil {
			return err
		}
	}
	for bi, start := range c.BlockStart {
		end := len(c.Instrs)
		if bi+1 < len(c.BlockStart) {
			end = c.BlockStart[bi+1]
		}
		// commit[v] is the instruction index at which v's latest write
		// lands. Block entry assumes everything committed (guaranteed by
		// every predecessor's drain).
		commit := map[prog.VReg]int{}
		for i := start; i < end; i++ {
			// All slots of one instruction read pre-instruction state, so
			// check every read before applying any of the writes (a
			// same-cycle write-after-read is legal).
			for s := 0; s < 5; s++ {
				so := c.Instrs[i].Slots[s]
				if so.Op == nil || so.Second {
					continue
				}
				info := so.Op.Info()
				reads := []prog.VReg{so.Op.Guard}
				for k := 0; k < info.NSrc; k++ {
					reads = append(reads, so.Op.Src[k])
				}
				for _, v := range reads {
					if ct, ok := commit[v]; ok && ct > i {
						return fmt.Errorf("sched verify %s: instr %d reads %v before its write commits at %d (%s)",
							c.Name, i, v, ct, info.Name)
					}
				}
			}
			for s := 0; s < 5; s++ {
				so := c.Instrs[i].Slots[s]
				if so.Op == nil || so.Second {
					continue
				}
				info := so.Op.Info()
				lat := t.OpLatency(so.Op.Opcode)
				for k := 0; k < info.NDest; k++ {
					d := so.Op.Dest[k]
					nc := i + lat
					if ct, ok := commit[d]; ok && ct >= nc {
						return fmt.Errorf("sched verify %s: instr %d write of %v commits at %d, not after earlier commit %d (WAW)",
							c.Name, i, d, nc, ct)
					}
					commit[d] = nc
				}
			}
		}
		for v, ct := range commit {
			if ct > end {
				return fmt.Errorf("sched verify %s: block %d: %v commits at %d after block end %d (drain rule)",
					c.Name, bi, v, ct, end)
			}
		}
	}
	return nil
}

// verifySlots checks unit/slot legality for one instruction: every
// operation sits in a slot its unit class is wired to on the target,
// two-slot operations hold an adjacent (first, Second) pair, and the
// load count stays within the target's per-instruction limit.
func verifySlots(c *Code, i int, t *config.Target) error {
	in := &c.Instrs[i]
	loads := 0
	for s := 0; s < 5; s++ {
		so := in.Slots[s]
		if so.Op == nil {
			continue
		}
		if so.Second {
			if s == 0 || in.Slots[s-1].Op != so.Op || in.Slots[s-1].Second {
				return fmt.Errorf("sched verify %s: instr %d slot %d: second half without matching first half",
					c.Name, i, s+1)
			}
			continue
		}
		info := so.Op.Info()
		mask := slotsFor(so.Op, t)
		if !mask.Has(s + 1) {
			return fmt.Errorf("sched verify %s: instr %d: %s in slot %d, unit allows %v",
				c.Name, i, info.Name, s+1, mask)
		}
		if info.TwoSlot && (s+1 >= 5 || in.Slots[s+1].Op != so.Op || !in.Slots[s+1].Second) {
			return fmt.Errorf("sched verify %s: instr %d slot %d: two-slot %s missing its second half",
				c.Name, i, s+1, info.Name)
		}
		if info.IsLoad {
			loads++
		}
	}
	if loads > t.MaxLoadsPerInstr {
		return fmt.Errorf("sched verify %s: instr %d issues %d loads, target allows %d",
			c.Name, i, loads, t.MaxLoadsPerInstr)
	}
	return nil
}
