// Package sched implements the VLIW scheduler: it packs the guarded
// operations of a kernel into five-slot VLIW instructions for a specific
// target configuration, honoring issue-slot constraints, functional-unit
// placement, exposed operation latencies, the target's jump delay slots
// and its load-issue restrictions.
//
// The TM3270 pipeline has no interlocks apart from memory stalls: the
// schedule itself is the correctness guarantee, exactly as for the
// production TriMedia compiler that this package stands in for.
// "Re-compiling" a kernel for the TM3260 versus the TM3270 is a call to
// Schedule with a different target.
package sched

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
)

// WBPorts is the number of register-file write ports: at most this many
// results may commit in one cycle, and the scheduler spreads commits
// accordingly.
const WBPorts = 5

// SlotOp is the occupant of one issue slot.
type SlotOp struct {
	Op *prog.Op // nil when the slot is empty
	// Second marks the second slot of a two-slot operation; Op then
	// points at the same operation as the preceding slot.
	Second bool
}

// Instr is one VLIW instruction. Slots[0] is issue slot 1.
type Instr struct {
	Slots [5]SlotOp
}

// Empty reports whether the instruction carries no operations.
func (in *Instr) Empty() bool {
	for _, s := range in.Slots {
		if s.Op != nil {
			return false
		}
	}
	return true
}

// OpCount returns the number of operations in the instruction (a
// two-slot operation counts once).
func (in *Instr) OpCount() int {
	n := 0
	for _, s := range in.Slots {
		if s.Op != nil && !s.Second {
			n++
		}
	}
	return n
}

// Code is a scheduled kernel.
type Code struct {
	Name   string
	Target config.Target
	Instrs []Instr
	// Labels maps branch labels to instruction indices.
	Labels map[string]int
	// BlockStart[i] is the first instruction index of source block i.
	BlockStart []int
	// LoopBounds carries the source program's loop-bound annotations
	// (label -> max header entries) through to the binary verifier.
	LoopBounds map[string]int

	// SrcOps is the number of source operations scheduled (excluding
	// padding); PadInstrs counts fully-empty padding instructions.
	SrcOps    int
	PadInstrs int
}

// OpsPerInstr returns the achieved operation density (OPI upper bound).
func (c *Code) OpsPerInstr() float64 {
	if len(c.Instrs) == 0 {
		return 0
	}
	return float64(c.SrcOps) / float64(len(c.Instrs))
}

// Schedule compiles p for the target. It returns an error if the kernel
// uses operations the target does not implement.
func Schedule(p *prog.Program, t config.Target) (*Code, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sched %s: %w", p.Name, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sched: %w", err)
	}
	c := &Code{Name: p.Name, Target: t, Labels: make(map[string]int), LoopBounds: p.LoopBounds}
	for _, b := range p.Blocks {
		start := len(c.Instrs)
		c.BlockStart = append(c.BlockStart, start)
		if b.Label != "" {
			c.Labels[b.Label] = start
		}
		if err := scheduleBlock(c, b, &t); err != nil {
			return nil, fmt.Errorf("sched %s: block %q: %w", p.Name, b.Label, err)
		}
	}
	for i := range c.Instrs {
		if c.Instrs[i].Empty() {
			c.PadInstrs++
		}
	}
	return c, nil
}

// slotsFor returns the issue slots op may use on the target (the first
// slot of the pair for two-slot operations).
func slotsFor(op *prog.Op, t *config.Target) isa.SlotMask {
	info := op.Info()
	if info.Class == isa.UnitLoad {
		return t.LoadSlots
	}
	return isa.DefaultSlots(info.Class)
}

// dep is one scheduling dependence: successor must issue at least
// weight cycles after the predecessor.
type dep struct {
	pred   int
	weight int
}

func scheduleBlock(c *Code, b *prog.Block, t *config.Target) error {
	body := b.Body()
	jump := b.Jump()

	for i := range body {
		if !t.Supports(body[i].Opcode) {
			return fmt.Errorf("operation %s not implemented by target %s",
				body[i].Info().Name, t.Name)
		}
	}

	deps := buildDeps(body, t)

	lat := func(i int) int { return t.OpLatency(body[i].Opcode) }

	// Priority: longest path to any sink, including own latency.
	prio := make([]int, len(body))
	succ := make([][]dep, len(body))
	for i := range body {
		for _, d := range deps[i] {
			succ[d.pred] = append(succ[d.pred], dep{pred: i, weight: d.weight})
		}
	}
	for i := len(body) - 1; i >= 0; i-- {
		prio[i] = lat(i)
		for _, s := range succ[i] {
			if v := s.weight + prio[s.pred]; v > prio[i] {
				prio[i] = v
			}
		}
	}

	issue := make([]int, len(body))
	for i := range issue {
		issue[i] = -1
	}
	var instrs []Instr
	ensure := func(n int) {
		for len(instrs) < n {
			instrs = append(instrs, Instr{})
		}
	}

	// wb counts register results committing per cycle: the register file
	// has WBPorts write ports, so an op whose results would land on a
	// full cycle must issue later. Results of different latencies issued
	// on different cycles can collide on the same commit cycle, which the
	// slot constraints alone do not prevent. (The block drain rule keeps
	// every commit inside the block, so per-block accounting is exact.)
	wb := map[int]int{}

	remaining := len(body)
	for cycle := 0; remaining > 0; cycle++ {
		if cycle > 64*len(body)+1024 {
			return fmt.Errorf("scheduler did not converge")
		}
		ensure(cycle + 1)
		// Candidate ops ready this cycle, highest priority first.
		var ready []int
		for i := range body {
			if issue[i] >= 0 {
				continue
			}
			ok := true
			earliest := 0
			for _, d := range deps[i] {
				if issue[d.pred] < 0 {
					ok = false
					break
				}
				if e := issue[d.pred] + d.weight; e > earliest {
					earliest = e
				}
			}
			if ok && earliest <= cycle {
				ready = append(ready, i)
			}
		}
		sortByPriority(ready, prio)
		for _, i := range ready {
			nd := body[i].Info().NDest
			if nd > 0 && wb[cycle+lat(i)]+nd > WBPorts {
				continue
			}
			if place(&instrs[cycle], &body[i], t) {
				issue[i] = cycle
				remaining--
				wb[cycle+lat(i)] += nd
			}
		}
	}

	// Drain: every result must be committed by the end of the block so
	// that successor blocks (on either path) observe it. The exposed
	// pipeline has no interlocks; this is the compiler's contract.
	drain := 0
	lastIssue := -1
	for i := range body {
		if e := issue[i] + lat(i); e > drain {
			drain = e
		}
		if issue[i] > lastIssue {
			lastIssue = issue[i]
		}
	}

	blockLen := len(instrs)
	if blockLen < drain {
		blockLen = drain
	}

	if jump != nil {
		if !t.Supports(jump.Opcode) {
			return fmt.Errorf("jump op %s unsupported", jump.Info().Name)
		}
		d := t.JumpDelaySlots
		// Guard readiness (RAW on the guard register).
		guardReady := 0
		for i := range body {
			info := body[i].Info()
			for k := 0; k < info.NDest; k++ {
				if body[i].Dest[k] == jump.Guard {
					if e := issue[i] + lat(i); e > guardReady {
						guardReady = e
					}
				}
			}
		}
		jc := guardReady
		if v := lastIssue - d; v > jc {
			jc = v
		}
		if v := drain - d - 1; v > jc {
			jc = v
		}
		// Find a free branch-unit slot (2, 3 or 4) at or after jc.
		for {
			ensure(jc + 1)
			if s := freeSlot(&instrs[jc], isa.DefaultSlots(isa.UnitBranch)); s >= 0 {
				instrs[jc].Slots[s] = SlotOp{Op: jump}
				break
			}
			jc++
		}
		// The block ends exactly one instruction after the last delay
		// slot; jc was chosen so that this covers both the drain
		// requirement and every scheduled operation.
		blockLen = jc + d + 1
	}

	ensureLen := func(n int) {
		for len(instrs) < n {
			instrs = append(instrs, Instr{})
		}
	}
	ensureLen(blockLen)
	instrs = instrs[:blockLen]

	c.Instrs = append(c.Instrs, instrs...)
	c.SrcOps += len(b.Ops)
	return nil
}

// buildDeps constructs the dependence edges of a block body.
func buildDeps(body []prog.Op, t *config.Target) [][]dep {
	deps := make([][]dep, len(body))
	lastDef := map[prog.VReg]int{}
	usesSinceDef := map[prog.VReg][]int{}
	var loads, stores []int

	lat := func(i int) int { return t.OpLatency(body[i].Opcode) }
	add := func(succ, pred, weight int) {
		if succ == pred {
			return // self-edges (rejected by Validate) must never deadlock
		}
		deps[succ] = append(deps[succ], dep{pred: pred, weight: weight})
	}

	for i := range body {
		op := &body[i]
		info := op.Info()

		reads := make([]prog.VReg, 0, 5)
		reads = append(reads, op.Guard)
		for s := 0; s < info.NSrc; s++ {
			reads = append(reads, op.Src[s])
		}
		for _, r := range reads {
			if r.Pinned() {
				continue
			}
			if d, ok := lastDef[r]; ok {
				add(i, d, lat(d)) // RAW
			}
			usesSinceDef[r] = append(usesSinceDef[r], i)
		}
		for k := 0; k < info.NDest; k++ {
			d := op.Dest[k]
			if pd, ok := lastDef[d]; ok {
				w := lat(pd) - lat(i) + 1 // WAW: later def must commit later
				if w < 1 {
					w = 1
				}
				add(i, pd, w)
			}
			for _, u := range usesSinceDef[d] {
				if u != i {
					add(i, u, 0) // WAR: read at issue, write commits later
				}
			}
			// A guarded definition merges with the previous value, so it
			// also counts as a use for subsequent writers.
			lastDef[d] = i
			if op.Guard != prog.One {
				usesSinceDef[d] = []int{i}
			} else {
				usesSinceDef[d] = nil
			}
		}

		switch {
		case info.IsLoad:
			for _, s := range stores {
				if mayAlias(op, &body[s]) {
					add(i, s, 1) // memory RAW
				}
			}
			loads = append(loads, i)
		case info.IsStore:
			for _, l := range loads {
				if mayAlias(op, &body[l]) {
					add(i, l, 0) // memory WAR
				}
			}
			for _, s := range stores {
				if mayAlias(op, &body[s]) {
					add(i, s, 1) // memory WAW
				}
			}
			stores = append(stores, i)
		}
	}
	return deps
}

// mayAlias reports whether two memory operations may touch overlapping
// bytes. Operations in different non-zero MemGroups never alias; with
// the same base register and displacement addressing, disjoint static
// ranges never alias.
func mayAlias(a, b *prog.Op) bool {
	if a.MemGroup != 0 && b.MemGroup != 0 && a.MemGroup != b.MemGroup {
		return false
	}
	ai, bi := a.Info(), b.Info()
	// Displacement forms with a common base register.
	if ai.HasImm && bi.HasImm && a.Src[0] == b.Src[0] {
		alo, ahi := int64(int32(a.Imm)), int64(int32(a.Imm))+int64(ai.MemBytes)
		blo, bhi := int64(int32(b.Imm)), int64(int32(b.Imm))+int64(bi.MemBytes)
		return alo < bhi && blo < ahi
	}
	return true
}

// place tries to put op into the instruction, returning success.
func place(in *Instr, op *prog.Op, t *config.Target) bool {
	info := op.Info()
	if op.Opcode == isa.OpNOP {
		return true // NOPs occupy no slot
	}
	mask := slotsFor(op, t)
	if info.TwoSlot {
		for s := 1; s <= 4; s++ {
			if mask.Has(s) && in.Slots[s-1].Op == nil && in.Slots[s].Op == nil {
				in.Slots[s-1] = SlotOp{Op: op}
				in.Slots[s] = SlotOp{Op: op, Second: true}
				return true
			}
		}
		return false
	}
	if info.IsLoad && countLoads(in) >= t.MaxLoadsPerInstr {
		return false
	}
	if s := freeSlot(in, mask); s >= 0 {
		in.Slots[s] = SlotOp{Op: op}
		return true
	}
	return false
}

func countLoads(in *Instr) int {
	n := 0
	for _, s := range in.Slots {
		if s.Op != nil && !s.Second && s.Op.Info().IsLoad {
			n++
		}
	}
	return n
}

// freeSlot returns the zero-based index of the first free slot in the
// mask, or -1.
func freeSlot(in *Instr, mask isa.SlotMask) int {
	for s := 1; s <= 5; s++ {
		if mask.Has(s) && in.Slots[s-1].Op == nil {
			return s - 1
		}
	}
	return -1
}

func sortByPriority(idx []int, prio []int) {
	// Insertion sort: ready lists are short. Stable on index for
	// determinism (earlier program order wins ties).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0; j-- {
			a, b := idx[j-1], idx[j]
			if prio[b] > prio[a] || (prio[b] == prio[a] && b < a) {
				idx[j-1], idx[j] = b, a
			} else {
				break
			}
		}
	}
}
