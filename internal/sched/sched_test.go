package sched_test

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/sched"
)

func mustSchedule(t *testing.T, p *prog.Program, tgt config.Target) *sched.Code {
	t.Helper()
	c, err := sched.Schedule(p, tgt)
	if err != nil {
		t.Fatalf("schedule %s for %s: %v", p.Name, tgt.Name, err)
	}
	return c
}

// issueOf returns the instruction index and slot (1-based) of the first
// occurrence of opcode oc.
func issueOf(c *sched.Code, oc isa.Opcode) (int, int) {
	for i := range c.Instrs {
		for s := 0; s < 5; s++ {
			so := c.Instrs[i].Slots[s]
			if so.Op != nil && !so.Second && so.Op.Opcode == oc {
				return i, s + 1
			}
		}
	}
	return -1, 0
}

func TestLoadSlotRestriction(t *testing.T) {
	// Two independent loads: the TM3260 (2 loads/instr, slots 4+5) packs
	// them into one instruction; the TM3270 (1 load/instr, slot 5 only)
	// needs two.
	build := func() *prog.Program {
		b := prog.NewBuilder("twoloads")
		base, v1, v2 := b.Reg(), b.Reg(), b.Reg()
		b.Ld32D(v1, base, 0)
		b.Ld32D(v2, base, 4)
		return b.MustProgram()
	}
	c60 := mustSchedule(t, build(), config.TM3260())
	c70 := mustSchedule(t, build(), config.TM3270())

	count := func(c *sched.Code, i int) int {
		n := 0
		for s := 0; s < 5; s++ {
			so := c.Instrs[i].Slots[s]
			if so.Op != nil && !so.Second && so.Op.Info().IsLoad {
				n++
			}
		}
		return n
	}
	if got := count(c60, 0); got != 2 {
		t.Errorf("TM3260 first instr has %d loads, want 2 (Table 6: 2 loads/VLIW)", got)
	}
	if got := count(c70, 0); got != 1 {
		t.Errorf("TM3270 first instr has %d loads, want 1 (Table 6: 1 load/VLIW)", got)
	}
	// TM3270 loads must sit in slot 5.
	for i := range c70.Instrs {
		for s := 0; s < 5; s++ {
			so := c70.Instrs[i].Slots[s]
			if so.Op != nil && !so.Second && so.Op.Info().IsLoad && s+1 != 5 {
				t.Errorf("TM3270 load scheduled in slot %d, must be slot 5", s+1)
			}
		}
	}
}

func TestDualStoresUseSlots4And5(t *testing.T) {
	b := prog.NewBuilder("twostores")
	base, v := b.Reg(), b.Reg()
	b.St32D(base, 0, v)
	b.St32D(base, 4, v)
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	in := c.Instrs[0]
	if in.Slots[3].Op == nil || in.Slots[4].Op == nil {
		t.Fatalf("two independent stores should dual-issue in slots 4 and 5: %+v", in)
	}
	if !in.Slots[3].Op.Info().IsStore || !in.Slots[4].Op.Info().IsStore {
		t.Error("slots 4/5 do not both hold stores")
	}
}

func TestSuperOccupiesSlotPair(t *testing.T) {
	b := prog.NewBuilder("super")
	rs := b.Regs(6)
	b.SuperDualIMix(rs[0], rs[1], rs[2], rs[3], rs[4], rs[5])
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	in := c.Instrs[0]
	if in.Slots[1].Op == nil || in.Slots[2].Op == nil {
		t.Fatal("super op must occupy slots 2 and 3")
	}
	if in.Slots[1].Second || !in.Slots[2].Second {
		t.Error("slot pair halves mislabeled")
	}
	if in.Slots[1].Op != in.Slots[2].Op {
		t.Error("slot pair must reference the same operation")
	}
	if in.OpCount() != 1 {
		t.Errorf("OpCount = %d, want 1", in.OpCount())
	}
}

func TestRAWLatencySpacing(t *testing.T) {
	// A load feeding an add must be separated by the target's load
	// latency: 4 instructions on the TM3270, 3 on the TM3260.
	build := func() *prog.Program {
		b := prog.NewBuilder("raw")
		base, v, r := b.Reg(), b.Reg(), b.Reg()
		b.Ld32D(v, base, 0)
		b.Add(r, v, v)
		return b.MustProgram()
	}
	for _, tc := range []struct {
		tgt  config.Target
		want int
	}{{config.TM3270(), 4}, {config.TM3260(), 3}} {
		c := mustSchedule(t, build(), tc.tgt)
		li, _ := issueOf(c, isa.OpLD32D)
		ai, _ := issueOf(c, isa.OpIADD)
		if ai-li < tc.want {
			t.Errorf("%s: add issued %d instrs after load, want >= %d",
				tc.tgt.Name, ai-li, tc.want)
		}
	}
}

func TestMulLatencySpacing(t *testing.T) {
	b := prog.NewBuilder("mullat")
	x, y, r := b.Reg(), b.Reg(), b.Reg()
	b.Mul(x, y, y)
	b.Add(r, x, x)
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	mi, _ := issueOf(c, isa.OpIMUL)
	ai, _ := issueOf(c, isa.OpIADD)
	if ai-mi < 3 {
		t.Errorf("add %d instrs after mul, want >= 3", ai-mi)
	}
}

func TestJumpDelaySlots(t *testing.T) {
	// A minimal loop: the block must extend delay-slot instructions past
	// the jump, more on the TM3270 (5) than the TM3260 (3).
	build := func() *prog.Program {
		b := prog.NewBuilder("tiny")
		i, c := b.Reg(), b.Reg()
		b.Imm(i, 0)
		b.Label("loop")
		b.AddI(i, i, 1)
		b.LesI(c, i, 10)
		b.JmpT(c, "loop")
		return b.MustProgram()
	}
	for _, tc := range []struct {
		tgt config.Target
	}{{config.TM3270()}, {config.TM3260()}} {
		code := mustSchedule(t, build(), tc.tgt)
		ji, _ := issueOf(code, isa.OpJMPT)
		if ji < 0 {
			t.Fatal("no jump scheduled")
		}
		got := len(code.Instrs) - 1 - ji
		if got != tc.tgt.JumpDelaySlots {
			t.Errorf("%s: %d instructions after the jump, want exactly %d delay slots",
				tc.tgt.Name, got, tc.tgt.JumpDelaySlots)
		}
	}
}

func TestDrainRule(t *testing.T) {
	// A block ending in a long-latency op must be extended so the result
	// commits before any successor block issues.
	b := prog.NewBuilder("drain")
	x, y, z := b.Reg(), b.Reg(), b.Reg()
	b.Label("a")
	b.Mul(x, y, y) // latency 3
	b.Label("b")
	b.Add(z, x, x)
	p := b.MustProgram()
	c := mustSchedule(t, p, config.TM3270())
	// Block "a" holds one mul at cycle 0 with latency 3: it must be 3
	// instructions long so the value commits at block "b" entry.
	bIdx := c.Labels["b"]
	if bIdx < 3 {
		t.Errorf("block b starts at %d, drain rule requires >= 3", bIdx)
	}
}

func TestBranchUnitSlots(t *testing.T) {
	b := prog.NewBuilder("branchslot")
	b.Label("loop")
	g := b.Reg()
	b.NonZero(g, prog.One)
	b.JmpF(g, "loop")
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	_, slot := issueOf(c, isa.OpJMPF)
	if slot < 2 || slot > 4 {
		t.Errorf("jump in slot %d, branch units live in slots 2..4", slot)
	}
}

func TestShifterSlots(t *testing.T) {
	// Three independent shifts need at least two instructions: only two
	// shifter units (slots 1 and 2).
	b := prog.NewBuilder("shifts")
	r := b.Regs(6)
	b.AslI(r[0], r[3], 1)
	b.AslI(r[1], r[4], 2)
	b.AslI(r[2], r[5], 3)
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	inFirst := 0
	for s := 0; s < 5; s++ {
		if op := c.Instrs[0].Slots[s].Op; op != nil {
			if s+1 > 2 {
				t.Errorf("shift scheduled in slot %d, shifters live in slots 1 and 2", s+1)
			}
			inFirst++
		}
	}
	if inFirst > 2 {
		t.Errorf("%d shifts in the first instruction, only 2 shifter units exist", inFirst)
	}
}

func TestMemoryOrderPreserved(t *testing.T) {
	// A store followed by an aliasing load must not be reordered or
	// co-issued.
	b := prog.NewBuilder("st-ld")
	base, v, w := b.Reg(), b.Reg(), b.Reg()
	b.St32D(base, 0, v)
	b.Ld32D(w, base, 0)
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	si, _ := issueOf(c, isa.OpST32D)
	li, _ := issueOf(c, isa.OpLD32D)
	if li <= si {
		t.Errorf("aliasing load at %d not after store at %d", li, si)
	}
	// Disjoint displacements off the same base may co-issue.
	b2 := prog.NewBuilder("st-ld-disjoint")
	base2, v2, w2 := b2.Reg(), b2.Reg(), b2.Reg()
	b2.St32D(base2, 0, v2)
	b2.Ld32D(w2, base2, 64)
	c2 := mustSchedule(t, b2.MustProgram(), config.TM3270())
	si2, _ := issueOf(c2, isa.OpST32D)
	li2, _ := issueOf(c2, isa.OpLD32D)
	if li2 != si2 {
		t.Errorf("disjoint store/load at %d/%d, expected co-issue", si2, li2)
	}
	// Different non-zero MemGroups may co-issue even with unknown bases.
	b3 := prog.NewBuilder("groups")
	s3, d3, v3, w3 := b3.Reg(), b3.Reg(), b3.Reg(), b3.Reg()
	b3.St32D(d3, 0, v3).InGroup(2)
	b3.Ld32R(w3, s3, prog.Zero).InGroup(1)
	c3 := mustSchedule(t, b3.MustProgram(), config.TM3270())
	si3, _ := issueOf(c3, isa.OpST32D)
	li3, _ := issueOf(c3, isa.OpLD32R)
	if si3 != li3 {
		t.Errorf("grouped store/load at %d/%d, expected co-issue", si3, li3)
	}
}

func TestILPPacking(t *testing.T) {
	// Five independent ALU ops must pack into a single instruction.
	b := prog.NewBuilder("ilp")
	r := b.Regs(10)
	for i := 0; i < 5; i++ {
		b.Add(r[i], r[i+5], r[i+5])
	}
	c := mustSchedule(t, b.MustProgram(), config.TM3270())
	if got := c.Instrs[0].OpCount(); got != 5 {
		t.Errorf("first instruction packs %d ops, want 5", got)
	}
	if opi := c.OpsPerInstr(); opi < 4.9 {
		t.Errorf("OPI = %.2f, want ~5", opi)
	}
}

func TestScheduleIsDeterministic(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("det")
		r := b.Regs(8)
		b.Mul(r[0], r[4], r[5])
		b.Add(r[1], r[0], r[6])
		b.Xor(r[2], r[1], r[7])
		b.Ld32D(r[3], r[6], 0)
		return b.MustProgram()
	}
	a := mustSchedule(t, build(), config.TM3270())
	bb := mustSchedule(t, build(), config.TM3270())
	if len(a.Instrs) != len(bb.Instrs) {
		t.Fatalf("nondeterministic length %d vs %d", len(a.Instrs), len(bb.Instrs))
	}
	for i := range a.Instrs {
		for s := 0; s < 5; s++ {
			x, y := a.Instrs[i].Slots[s].Op, bb.Instrs[i].Slots[s].Op
			if (x == nil) != (y == nil) || (x != nil && x.Opcode != y.Opcode) {
				t.Fatalf("instr %d slot %d differs", i, s+1)
			}
		}
	}
}

func TestGuardWAWThroughGuardedDef(t *testing.T) {
	// r = a; if g: r = b; use r  — the use must see the guarded def's
	// merge, so it must be ordered after both defs.
	b := prog.NewBuilder("gwaw")
	g, a2, c2, r, out := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mov(r, a2)
	b.Mov(r, c2).WithGuard(g)
	b.Add(out, r, r)
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	i1, _ := issueOf(code, isa.OpIADD) // first mov is iadd too; find all
	_ = i1
	// Find issue indices in program order by pointer identity instead.
	var issues []int
	for i := range code.Instrs {
		for s := 0; s < 5; s++ {
			so := code.Instrs[i].Slots[s]
			if so.Op != nil && !so.Second {
				issues = append(issues, i)
			}
		}
	}
	if len(issues) != 3 {
		t.Fatalf("expected 3 ops, got %d", len(issues))
	}
}

// TestVerifyAcceptsScheduler: Verify (an independent re-derivation of
// the exposed-pipeline constraints) must accept everything the
// scheduler produces, across targets and kernel shapes.
func TestVerifyAcceptsScheduler(t *testing.T) {
	builds := []func() *prog.Program{
		func() *prog.Program {
			b := prog.NewBuilder("chain")
			r := b.Regs(6)
			base := b.Reg()
			b.Ld32D(r[0], base, 0)
			b.Mul(r[1], r[0], r[0])
			b.Add(r[2], r[1], r[0])
			b.St32D(base, 4, r[2])
			b.FAdd(r[3], r[2], r[1])
			b.FDiv(r[4], r[3], r[1]) // 17-cycle latency stresses the drain
			b.Mov(r[5], r[4])
			return b.MustProgram()
		},
		func() *prog.Program {
			b := prog.NewBuilder("loopy")
			i, c, acc, base, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.Imm(i, 0)
			b.Label("l")
			b.Ld32R(v, base, i)
			b.Add(acc, acc, v)
			b.AddI(i, i, 4)
			b.LesI(c, i, 64)
			b.JmpT(c, "l")
			return b.MustProgram()
		},
	}
	for _, build := range builds {
		for _, tgt := range []config.Target{config.TM3270(), config.TM3260()} {
			code := mustSchedule(t, build(), tgt)
			if err := sched.Verify(code); err != nil {
				t.Errorf("%s: %v", tgt.Name, err)
			}
		}
	}
}

// TestVerifyRejectsBadSchedule: hand-corrupt a schedule and check the
// verifier catches the latency violation.
func TestVerifyRejectsBadSchedule(t *testing.T) {
	b := prog.NewBuilder("bad")
	base, v, r := b.Reg(), b.Reg(), b.Reg()
	b.Ld32D(v, base, 0)
	b.Add(r, v, v)
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	// Move the dependent add right after the load (violating the 4-cycle
	// load latency).
	li, _ := issueOf(code, isa.OpLD32D)
	ai, as := issueOf(code, isa.OpIADD)
	op := code.Instrs[ai].Slots[as-1].Op
	code.Instrs[ai].Slots[as-1] = sched.SlotOp{}
	code.Instrs[li+1].Slots[0] = sched.SlotOp{Op: op}
	if err := sched.Verify(code); err == nil {
		t.Error("verifier accepted a latency-violating schedule")
	}
}

// TestVerifyRejectsSwappedSlot: moving an op into a slot its unit is
// not wired to must be rejected, even though the dataflow stays legal.
func TestVerifyRejectsSwappedSlot(t *testing.T) {
	b := prog.NewBuilder("slotbad")
	x, y := b.Reg(), b.Reg()
	b.AslI(x, y, 3) // shifters live in slots 1 and 2
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	if err := sched.Verify(code); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	i, s := issueOf(code, isa.OpASLI)
	op := code.Instrs[i].Slots[s-1].Op
	code.Instrs[i].Slots[s-1] = sched.SlotOp{}
	code.Instrs[i].Slots[4] = sched.SlotOp{Op: op} // slot 5: no shifter
	if err := sched.Verify(code); err == nil {
		t.Error("verifier accepted a shift in slot 5")
	}
}

// TestVerifyRejectsWAWReorder: pulling a short-latency overwrite ahead
// of a long-latency write to the same register inverts the commit
// order and must be rejected.
func TestVerifyRejectsWAWReorder(t *testing.T) {
	b := prog.NewBuilder("wawbad")
	x, y, z := b.Reg(), b.Reg(), b.Reg()
	b.Mul(x, y, y) // x commits at issue+3
	b.Mov(x, z)    // program-order overwrite, must commit later
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	if err := sched.Verify(code); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	mi, _ := issueOf(code, isa.OpIMUL)
	ai, as := issueOf(code, isa.OpIADD) // Mov lowers to iadd
	op := code.Instrs[ai].Slots[as-1].Op
	code.Instrs[ai].Slots[as-1] = sched.SlotOp{}
	code.Instrs[mi+1].Slots[0] = sched.SlotOp{Op: op} // commits before the mul
	if err := sched.Verify(code); err == nil {
		t.Error("verifier accepted an inverted WAW commit order")
	}
}

// TestVerifyRejectsGuardHazard: guard registers are read operands too —
// a guarded op moved inside its guard producer's latency window must be
// rejected.
func TestVerifyRejectsGuardHazard(t *testing.T) {
	b := prog.NewBuilder("guardbad")
	g, x, y, z := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mul(g, x, x) // guard produced with latency 3
	b.Mov(y, z).WithGuard(g)
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	if err := sched.Verify(code); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	mi, _ := issueOf(code, isa.OpIMUL)
	ai, as := issueOf(code, isa.OpIADD)
	op := code.Instrs[ai].Slots[as-1].Op
	code.Instrs[ai].Slots[as-1] = sched.SlotOp{}
	code.Instrs[mi+1].Slots[0] = sched.SlotOp{Op: op}
	if err := sched.Verify(code); err == nil {
		t.Error("verifier accepted a guard read inside the producer's latency window")
	}
}

// TestVerifyChecksSecondSlotSources: a two-slot operation's extra
// sources (carried by the Second half of the pair) are hazard-checked
// like any other read. The producer feeds the super's fourth source,
// which only the extension half encodes.
func TestVerifyChecksSecondSlotSources(t *testing.T) {
	b := prog.NewBuilder("secondsrc")
	rs := b.Regs(7)
	b.Mul(rs[5], rs[6], rs[6])                                // latency-3 producer
	b.SuperDualIMix(rs[0], rs[1], rs[2], rs[3], rs[4], rs[5]) // rs[5] is Src[3]
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	if err := sched.Verify(code); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	mi, _ := issueOf(code, isa.OpIMUL)
	si, ss := issueOf(code, isa.OpSUPERDUALIMIX)
	if si-mi < 3 {
		t.Fatalf("scheduler placed the super %d instrs after its source producer, want >= 3", si-mi)
	}
	// Move the pair (both halves) inside the mul's latency window.
	op := code.Instrs[si].Slots[ss-1].Op
	code.Instrs[si].Slots[ss-1] = sched.SlotOp{}
	code.Instrs[si].Slots[ss] = sched.SlotOp{}
	code.Instrs[mi+1].Slots[1] = sched.SlotOp{Op: op}
	code.Instrs[mi+1].Slots[2] = sched.SlotOp{Op: op, Second: true}
	if err := sched.Verify(code); err == nil {
		t.Error("verifier accepted an extension-half source read inside the producer's latency window")
	}
}

// TestVerifyRejectsBrokenPair: a two-slot operation stripped of its
// Second half is structurally invalid.
func TestVerifyRejectsBrokenPair(t *testing.T) {
	b := prog.NewBuilder("pairbad")
	rs := b.Regs(6)
	b.SuperDualIMix(rs[0], rs[1], rs[2], rs[3], rs[4], rs[5])
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	si, ss := issueOf(code, isa.OpSUPERDUALIMIX)
	code.Instrs[si].Slots[ss] = sched.SlotOp{} // drop the Second half
	if err := sched.Verify(code); err == nil {
		t.Error("verifier accepted a two-slot op without its second half")
	}
}

// TestVerifyRejectsDrainViolation: a long-latency op moved into the
// last instruction of a block must trip the drain rule.
func TestVerifyRejectsDrainViolation(t *testing.T) {
	b := prog.NewBuilder("drainbad")
	x, y := b.Reg(), b.Reg()
	b.Label("a")
	b.Mul(x, y, y)
	b.Label("b")
	b.Add(y, x, x)
	code := mustSchedule(t, b.MustProgram(), config.TM3270())
	if err := sched.Verify(code); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	// Shrink block a to one instruction: the mul can no longer drain.
	bIdx := code.Labels["b"]
	mulInstr := code.Instrs[0]
	bad := &sched.Code{
		Name:       code.Name,
		Target:     code.Target,
		Instrs:     append([]sched.Instr{mulInstr}, code.Instrs[bIdx:]...),
		Labels:     map[string]int{"a": 0, "b": 1},
		BlockStart: []int{0, 1},
	}
	if err := sched.Verify(bad); err == nil {
		t.Error("verifier accepted a drain violation")
	}
}
