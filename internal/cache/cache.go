// Package cache provides the set-associative cache arrays shared by the
// instruction and data caches: tag lookup, true-LRU replacement and
// optional per-byte validity (the TM3270 data cache tracks byte validity
// to support its allocate-on-write-miss policy).
package cache

import "tm3270/internal/config"

// Line is one cache line's control state.
type Line struct {
	Tag   uint32
	Valid bool
	Dirty bool
	// ReadyAt is the CPU cycle at which an in-flight fill (prefetch or
	// fetch-on-write) delivers data; accesses before it stall.
	ReadyAt int64
	// byteValid tracks per-byte validity, allocated lazily for caches
	// with byte-validity enabled.
	byteValid []uint64
}

// Cache is a set-associative array with true LRU.
type Cache struct {
	cfg        config.CacheConfig
	byteValid  bool
	sets       [][]Line
	lru        [][]uint8 // lru[set] lists ways, most recent first
	offsetBits uint
	indexMask  uint32
}

// New builds the arrays for the given geometry. byteValidity enables
// per-byte valid tracking (TM3270 data cache).
func New(cfg config.CacheConfig, byteValidity bool) *Cache {
	sets := cfg.Sets()
	c := &Cache{cfg: cfg, byteValid: byteValidity}
	c.sets = make([][]Line, sets)
	c.lru = make([][]uint8, sets)
	for i := range c.sets {
		c.sets[i] = make([]Line, cfg.Ways)
		order := make([]uint8, cfg.Ways)
		for w := range order {
			order[w] = uint8(w)
		}
		c.lru[i] = order
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.offsetBits++
	}
	c.indexMask = uint32(sets - 1)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() config.CacheConfig { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint32) uint32 {
	return addr &^ (uint32(c.cfg.LineBytes) - 1)
}

// Index returns the set index of addr.
func (c *Cache) Index(addr uint32) uint32 { return (addr >> c.offsetBits) & c.indexMask }

func (c *Cache) tag(addr uint32) uint32 { return addr >> c.offsetBits >> setBits(c.indexMask) }

func setBits(mask uint32) uint {
	n := uint(0)
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Lookup finds addr's line. It does not update LRU state.
func (c *Cache) Lookup(addr uint32) (*Line, bool) {
	set := c.Index(addr)
	tag := c.tag(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.Valid && l.Tag == tag {
			return l, true
		}
	}
	return nil, false
}

// LookupTouch finds addr's line and, on a hit, marks it most recently
// used — Lookup and Touch fused into one set scan for access paths
// that always promote on a hit.
func (c *Cache) LookupTouch(addr uint32) (*Line, bool) {
	set := c.Index(addr)
	tag := c.tag(addr)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if l.Valid && l.Tag == tag {
			c.promote(set, uint8(w))
			return l, true
		}
	}
	return nil, false
}

// Touch marks addr's line most recently used.
func (c *Cache) Touch(addr uint32) {
	set := c.Index(addr)
	tag := c.tag(addr)
	for w := range c.sets[set] {
		if c.sets[set][w].Valid && c.sets[set][w].Tag == tag {
			c.promote(set, uint8(w))
			return
		}
	}
}

func (c *Cache) promote(set uint32, way uint8) {
	order := c.lru[set]
	for i, w := range order {
		if w == way {
			copy(order[1:i+1], order[:i])
			order[0] = way
			return
		}
	}
}

// Victim selects the line to replace in addr's set: an invalid way if
// one exists, otherwise the least recently used. It returns the line
// for the caller to inspect (copyback) and then overwrite via Fill.
func (c *Cache) Victim(addr uint32) *Line {
	set := c.Index(addr)
	for w := range c.sets[set] {
		if !c.sets[set][w].Valid {
			return &c.sets[set][w]
		}
	}
	order := c.lru[set]
	return &c.sets[set][order[len(order)-1]]
}

// VictimAddr reconstructs the line-aligned address of a valid line given
// any address mapping to the same set.
func (c *Cache) VictimAddr(l *Line, addrInSet uint32) uint32 {
	set := c.Index(addrInSet)
	return l.Tag<<(c.offsetBits+setBits(c.indexMask)) | set<<c.offsetBits
}

// Fill installs addr's line into the given way slot and makes it MRU.
// allValid marks every byte valid (a demand fetch); otherwise the line
// starts with no valid bytes (a write-miss allocation).
func (c *Cache) Fill(l *Line, addr uint32, allValid bool) {
	set := c.Index(addr)
	way := c.wayOf(set, l)
	l.Tag = c.tag(addr)
	l.Valid = true
	l.Dirty = false
	l.ReadyAt = 0
	if c.byteValid {
		words := (c.cfg.LineBytes + 63) / 64
		if l.byteValid == nil {
			l.byteValid = make([]uint64, words)
		}
		fill := uint64(0)
		if allValid {
			fill = ^uint64(0)
		}
		for i := range l.byteValid {
			l.byteValid[i] = fill
		}
	}
	c.promote(set, way)
}

func (c *Cache) wayOf(set uint32, l *Line) uint8 {
	for w := range c.sets[set] {
		if &c.sets[set][w] == l {
			return uint8(w)
		}
	}
	return 0
}

// MarkValid marks [addr, addr+n) valid within its line (stores under
// allocate-on-write-miss).
func (c *Cache) MarkValid(l *Line, addr uint32, n int) {
	if !c.byteValid || l.byteValid == nil {
		return
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	for i := 0; i < n && off+i < c.cfg.LineBytes; i++ {
		b := off + i
		l.byteValid[b>>6] |= 1 << uint(b&63)
	}
}

// BytesValid reports whether all of [addr, addr+n) within the line is
// valid, and the count of valid bytes in the whole line.
func (c *Cache) BytesValid(l *Line, addr uint32, n int) bool {
	if !c.byteValid || l.byteValid == nil {
		return true
	}
	off := int(addr) & (c.cfg.LineBytes - 1)
	for i := 0; i < n && off+i < c.cfg.LineBytes; i++ {
		b := off + i
		if l.byteValid[b>>6]&(1<<uint(b&63)) == 0 {
			return false
		}
	}
	return true
}

// ValidByteCount returns the number of valid bytes in the line (the
// copyback traffic of a victimized line under byte validity).
func (c *Cache) ValidByteCount(l *Line) int {
	if !c.byteValid || l.byteValid == nil {
		return c.cfg.LineBytes
	}
	n := 0
	for i, w := range l.byteValid {
		for b := 0; b < 64 && i*64+b < c.cfg.LineBytes; b++ {
			if w&(1<<uint(b)) != 0 {
				n++
			}
		}
	}
	return n
}

// SetAllValid marks the whole line valid (after a demand fetch merge).
func (c *Cache) SetAllValid(l *Line) {
	if !c.byteValid || l.byteValid == nil {
		return
	}
	for i := range l.byteValid {
		l.byteValid[i] = ^uint64(0)
	}
}

// InvalidateAll resets the cache to cold.
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].Valid = false
			c.sets[s][w].Dirty = false
			c.sets[s][w].ReadyAt = 0
		}
	}
}
