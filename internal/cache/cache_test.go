package cache_test

import (
	"testing"

	"tm3270/internal/cache"
	"tm3270/internal/config"
)

func smallCache(byteValid bool) *cache.Cache {
	return cache.New(config.CacheConfig{SizeBytes: 1024, LineBytes: 64, Ways: 2}, byteValid)
}

func TestLookupAndFill(t *testing.T) {
	c := smallCache(false)
	if _, hit := c.Lookup(0x1000); hit {
		t.Fatal("cold cache hit")
	}
	v := c.Victim(0x1000)
	c.Fill(v, 0x1000, true)
	if l, hit := c.Lookup(0x1000); !hit || l != v {
		t.Fatal("line not found after fill")
	}
	// Same line, different offset.
	if _, hit := c.Lookup(0x103f); !hit {
		t.Error("offset within line must hit")
	}
	// Next line misses.
	if _, hit := c.Lookup(0x1040); hit {
		t.Error("adjacent line must miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallCache(false)
	// 8 sets of 64B lines, 2 ways. Three addresses in the same set.
	a1, a2, a3 := uint32(0x0000), uint32(0x0200), uint32(0x0400)
	for _, a := range []uint32{a1, a2} {
		v := c.Victim(a)
		c.Fill(v, a, true)
	}
	// Touch a1 so a2 becomes LRU.
	c.Touch(a1)
	v := c.Victim(a3)
	if got := c.VictimAddr(v, a3); got != a2 {
		t.Errorf("victim = %#x, want LRU line %#x", got, a2)
	}
	c.Fill(v, a3, true)
	if _, hit := c.Lookup(a2); hit {
		t.Error("evicted line still present")
	}
	for _, a := range []uint32{a1, a3} {
		if _, hit := c.Lookup(a); !hit {
			t.Errorf("line %#x lost", a)
		}
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := smallCache(false)
	v := c.Victim(0)
	c.Fill(v, 0, true)
	v2 := c.Victim(0x200) // same set
	if v2.Valid {
		t.Error("victim should be the invalid way")
	}
}

func TestByteValidity(t *testing.T) {
	c := smallCache(true)
	v := c.Victim(0x40)
	c.Fill(v, 0x40, false) // write-miss allocation: nothing valid
	if c.BytesValid(v, 0x40, 4) {
		t.Error("freshly allocated line must have no valid bytes")
	}
	if got := c.ValidByteCount(v); got != 0 {
		t.Errorf("valid bytes = %d, want 0", got)
	}
	c.MarkValid(v, 0x44, 4)
	if !c.BytesValid(v, 0x44, 4) {
		t.Error("stored bytes must be valid")
	}
	if c.BytesValid(v, 0x42, 4) {
		t.Error("range straddling invalid bytes must report invalid")
	}
	if got := c.ValidByteCount(v); got != 4 {
		t.Errorf("valid bytes = %d, want 4", got)
	}
	c.SetAllValid(v)
	if got := c.ValidByteCount(v); got != 64 {
		t.Errorf("valid bytes = %d, want 64", got)
	}
	// Fill with allValid=true resets to fully valid.
	c.Fill(v, 0x40, true)
	if !c.BytesValid(v, 0x40, 64) {
		t.Error("demand fill must validate the whole line")
	}
}

func TestMarkValidClipsToLine(t *testing.T) {
	c := smallCache(true)
	v := c.Victim(0)
	c.Fill(v, 0, false)
	// Mark a range that extends past the line end: only in-line bytes
	// are tracked here (the second line is a separate access).
	c.MarkValid(v, 62, 4)
	if got := c.ValidByteCount(v); got != 2 {
		t.Errorf("valid bytes = %d, want 2", got)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := smallCache(false)
	v := c.Victim(0)
	c.Fill(v, 0, true)
	c.InvalidateAll()
	if _, hit := c.Lookup(0); hit {
		t.Error("line survived InvalidateAll")
	}
}

func TestLineAddrIndex(t *testing.T) {
	c := smallCache(false)
	if got := c.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr = %#x", got)
	}
	// 8 sets: index bits [8:6], so 0x200 wraps back to set 0.
	if c.Index(0x000) != c.Index(0x200) {
		t.Error("0x0 and 0x200 must map to the same set (index wraps at 8 sets)")
	}
	if c.Index(0x00) == c.Index(0x40) {
		t.Error("adjacent lines must map to different sets")
	}
}
