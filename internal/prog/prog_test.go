package prog_test

import (
	"strings"
	"testing"

	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/prog"
)

// sumKernel builds: sum the n 32-bit words at base into v.
func sumKernel() (*prog.Program, prog.VReg, prog.VReg, prog.VReg) {
	b := prog.NewBuilder("sum")
	base, n, sum := b.Reg(), b.Reg(), b.Reg()
	i, v, cond, off := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Imm(sum, 0)
	b.Imm(i, 0)
	b.Label("loop")
	b.AslI(off, i, 2)
	b.Ld32R(v, base, off)
	b.Add(sum, sum, v)
	b.AddI(i, i, 1)
	b.Les(cond, i, n)
	b.JmpT(cond, "loop")
	return b.MustProgram(), base, n, sum
}

func TestInterpSumLoop(t *testing.T) {
	p, base, n, sum := sumKernel()
	m := mem.NewFunc()
	want := uint32(0)
	for i := 0; i < 10; i++ {
		m.Store(0x1000+uint32(4*i), 4, uint64(i*i))
		want += uint32(i * i)
	}
	in := prog.NewInterp(p, m)
	in.SetReg(base, 0x1000)
	in.SetReg(n, 10)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := in.Reg(sum); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
	if in.Steps == 0 || in.Ops < in.Steps {
		t.Errorf("op accounting broken: ops=%d steps=%d", in.Ops, in.Steps)
	}
}

func TestGuardedExecution(t *testing.T) {
	b := prog.NewBuilder("guards")
	g0, g1, a, c, d := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Imm(g0, 0)
	b.Imm(g1, 1)
	b.Imm(a, 100)
	b.Imm(c, 0)
	b.Imm(d, 0)
	b.AddI(c, a, 1).WithGuard(g1) // executes
	b.AddI(d, a, 1).WithGuard(g0) // suppressed
	p := b.MustProgram()

	in := prog.NewInterp(p, mem.NewFunc())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Reg(c) != 101 {
		t.Errorf("guarded-true op: c = %d, want 101", in.Reg(c))
	}
	if in.Reg(d) != 0 {
		t.Errorf("guarded-false op executed: d = %d, want 0", in.Reg(d))
	}
	// Guard uses only the LSB.
	b2 := prog.NewBuilder("lsb")
	g, e := b2.Reg(), b2.Reg()
	b2.Imm(g, 2) // LSB is 0: false
	b2.Imm(e, 0)
	b2.AddI(e, prog.One, 41).WithGuard(g)
	p2 := b2.MustProgram()
	in2 := prog.NewInterp(p2, mem.NewFunc())
	if err := in2.Run(); err != nil {
		t.Fatal(err)
	}
	if in2.Reg(e) != 0 {
		t.Errorf("guard LSB ignored: e = %d", in2.Reg(e))
	}
}

func TestJmpF(t *testing.T) {
	// jmpf jumps when the guard is false.
	b := prog.NewBuilder("jmpf")
	g, r := b.Reg(), b.Reg()
	b.Imm(g, 0)
	b.Imm(r, 1)
	b.JmpF(g, "skip")
	b.Imm(r, 2) // must be skipped
	b.Label("skip")
	p := b.MustProgram()
	in := prog.NewInterp(p, mem.NewFunc())
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Reg(r) != 1 {
		t.Errorf("r = %d, want 1 (jmpf must jump on false guard)", in.Reg(r))
	}
}

func TestBuilderSplitsBlocksAtBranches(t *testing.T) {
	b := prog.NewBuilder("split")
	x := b.Reg()
	b.Imm(x, 1)
	b.Jmp("end")
	b.Imm(x, 2) // unreachable, in its own anonymous block
	b.Label("end")
	p := b.MustProgram()
	if len(p.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3: %s", len(p.Blocks), p)
	}
	if p.Blocks[0].Jump() == nil {
		t.Error("first block should end in a jump")
	}
	if p.Blocks[1].Jump() != nil {
		t.Error("second block has no jump")
	}
	if len(p.Blocks[0].Body()) != 1 {
		t.Errorf("body ops = %d, want 1", len(p.Blocks[0].Body()))
	}
}

func TestValidateRejectsUndefinedLabel(t *testing.T) {
	b := prog.NewBuilder("bad")
	b.Jmp("nowhere")
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
}

func TestValidateRejectsPinnedWrite(t *testing.T) {
	b := prog.NewBuilder("pinned")
	b.Add(prog.Zero, prog.One, prog.One)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Errorf("expected pinned-write error, got %v", err)
	}
}

func TestValidateRejectsOutOfRangeReg(t *testing.T) {
	b := prog.NewBuilder("range")
	d := b.Reg()
	b.Emit(prog.Op{Opcode: isa.OpIADD, Src: [4]prog.VReg{9999, prog.One}, Dest: [2]prog.VReg{d}})
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected out-of-range error, got %v", err)
	}
}

func TestMaxOpsAbortsRunaway(t *testing.T) {
	b := prog.NewBuilder("forever")
	b.Label("loop")
	b.Nop()
	b.Jmp("loop")
	p := b.MustProgram()
	in := prog.NewInterp(p, mem.NewFunc())
	in.MaxOps = 1000
	if err := in.Run(); err == nil {
		t.Error("runaway loop not detected")
	}
}

func TestProgramString(t *testing.T) {
	p, _, _, _ := sumKernel()
	s := p.String()
	for _, want := range []string{"program sum", "loop:", "ld32r", "jmpt", "iadd"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestStoreLoadThroughMemory(t *testing.T) {
	b := prog.NewBuilder("mem")
	addr, v, back := b.Reg(), b.Reg(), b.Reg()
	b.Imm(addr, 0x5000)
	b.Imm(v, 0xdeadbeef)
	b.St32D(addr, 4, v)
	b.Ld32D(back, addr, 4)
	b.St16D(addr, 8, back)
	b.St8D(addr, 10, back)
	p := b.MustProgram()
	m := mem.NewFunc()
	in := prog.NewInterp(p, m)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if got := in.Reg(back); got != 0xdeadbeef {
		t.Errorf("load back = %#x", got)
	}
	if got := m.Load(0x5008, 2); got != 0xbeef {
		t.Errorf("st16d wrote %#x", got)
	}
	if got := m.Load(0x500a, 1); got != 0xef {
		t.Errorf("st8d wrote %#x", got)
	}
}

func TestValidateRejectsDuplicateDests(t *testing.T) {
	b := prog.NewBuilder("dup")
	d, s := b.Reg(), b.Reg()
	b.SuperDualIMix(d, d, s, s, s, s)
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "same register twice") {
		t.Errorf("duplicate two-slot destinations accepted: %v", err)
	}
}
