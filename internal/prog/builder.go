package prog

import (
	"fmt"

	"tm3270/internal/isa"
)

// Builder constructs a Program incrementally. Operations append to the
// current basic block; Label starts a new one, and any branch closes the
// block it terminates.
type Builder struct {
	prog *Program
	cur  *Block
	next int // next virtual register id
}

// NewBuilder starts an empty program. Virtual registers 0 and 1 are
// pre-reserved for the pinned Zero/One registers.
func NewBuilder(name string) *Builder {
	b := &Builder{
		prog: &Program{Name: name},
		next: 2,
	}
	b.cur = &Block{}
	b.prog.Blocks = append(b.prog.Blocks, b.cur)
	return b
}

// Reg allocates a fresh virtual register.
func (b *Builder) Reg() VReg {
	v := VReg(b.next)
	b.next++
	return v
}

// Regs allocates n fresh virtual registers.
func (b *Builder) Regs(n int) []VReg {
	rs := make([]VReg, n)
	for i := range rs {
		rs[i] = b.Reg()
	}
	return rs
}

// LoopBound annotates the labeled block as a loop header entered at
// most n times per run. Use it when binverify's bound inference cannot
// derive a trip count from the code (data-dependent exits, non-constant
// steps); inferable loops need no annotation.
func (b *Builder) LoopBound(label string, n int) {
	if b.prog.LoopBounds == nil {
		b.prog.LoopBounds = map[string]int{}
	}
	b.prog.LoopBounds[label] = n
}

// Label starts a new basic block with the given label.
func (b *Builder) Label(name string) {
	if b.cur.Label == "" && len(b.cur.Ops) == 0 {
		// Empty unlabeled block: take it over instead of leaving a hole.
		b.cur.Label = name
		return
	}
	b.cur = &Block{Label: name}
	b.prog.Blocks = append(b.prog.Blocks, b.cur)
}

// Emit appends a raw operation and returns a pointer to it so that the
// caller may adjust the guard: b.Add(d, x, y).Guard(g).
func (b *Builder) Emit(op Op) *Op {
	if op.Guard == 0 {
		op.Guard = One
	}
	if op.Info().IsJump {
		b.cur.Ops = append(b.cur.Ops, op)
		emitted := &b.cur.Ops[len(b.cur.Ops)-1]
		// A branch terminates its block; subsequent operations fall into
		// a fresh anonymous block.
		b.cur = &Block{}
		b.prog.Blocks = append(b.prog.Blocks, b.cur)
		return emitted
	}
	b.cur.Ops = append(b.cur.Ops, op)
	return &b.cur.Ops[len(b.cur.Ops)-1]
}

// InGroup sets the memory alias group of the operation and returns it:
// memory operations in different non-zero groups never alias.
func (o *Op) InGroup(g int8) *Op { o.MemGroup = g; return o }

// WithGuard sets the guard register of the operation and returns it,
// enabling b.Add(d, x, y).WithGuard(g). A guard of Zero would never
// execute; Emit treats the zero value as "unguarded" (One).
func (o *Op) WithGuard(g VReg) *Op { o.Guard = g; return o }

// Program finalizes and validates the program.
func (b *Builder) Program() (*Program, error) {
	// Drop a trailing empty anonymous block left behind by a final jump.
	if n := len(b.prog.Blocks); n > 0 {
		last := b.prog.Blocks[n-1]
		if last.Label == "" && len(last.Ops) == 0 {
			b.prog.Blocks = b.prog.Blocks[:n-1]
		}
	}
	b.prog.NumVRegs = b.next
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustProgram is Program, panicking on validation failure. Kernels are
// static, so a failure is a programming error.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(fmt.Sprintf("prog: invalid kernel: %v", err))
	}
	return p
}

// ---- typed emit helpers ----

func (b *Builder) op3(oc isa.Opcode, d, s1, s2 VReg) *Op {
	return b.Emit(Op{Opcode: oc, Src: [4]VReg{s1, s2}, Dest: [2]VReg{d}})
}

func (b *Builder) op2(oc isa.Opcode, d, s VReg) *Op {
	return b.Emit(Op{Opcode: oc, Src: [4]VReg{s}, Dest: [2]VReg{d}})
}

func (b *Builder) op2i(oc isa.Opcode, d, s VReg, imm uint32) *Op {
	return b.Emit(Op{Opcode: oc, Src: [4]VReg{s}, Dest: [2]VReg{d}, Imm: imm})
}

// Nop emits a no-operation.
func (b *Builder) Nop() *Op { return b.Emit(Op{Opcode: isa.OpNOP}) }

// Imm loads a 32-bit constant.
func (b *Builder) Imm(d VReg, v uint32) *Op {
	return b.Emit(Op{Opcode: isa.OpIIMM, Dest: [2]VReg{d}, Imm: v})
}

// ImmReg allocates a register and loads a constant into it.
func (b *Builder) ImmReg(v uint32) VReg {
	d := b.Reg()
	b.Imm(d, v)
	return d
}

// Mov copies s into d (an iadd with the zero register).
func (b *Builder) Mov(d, s VReg) *Op { return b.op3(isa.OpIADD, d, s, Zero) }

func (b *Builder) Add(d, s1, s2 VReg) *Op { return b.op3(isa.OpIADD, d, s1, s2) }
func (b *Builder) Sub(d, s1, s2 VReg) *Op { return b.op3(isa.OpISUB, d, s1, s2) }
func (b *Builder) AddI(d, s VReg, imm int32) *Op {
	return b.op2i(isa.OpIADDI, d, s, uint32(imm))
}
func (b *Builder) Min(d, s1, s2 VReg) *Op        { return b.op3(isa.OpIMIN, d, s1, s2) }
func (b *Builder) Max(d, s1, s2 VReg) *Op        { return b.op3(isa.OpIMAX, d, s1, s2) }
func (b *Builder) AvgOneP(d, s1, s2 VReg) *Op    { return b.op3(isa.OpIAVGONEP, d, s1, s2) }
func (b *Builder) And(d, s1, s2 VReg) *Op        { return b.op3(isa.OpBITAND, d, s1, s2) }
func (b *Builder) Or(d, s1, s2 VReg) *Op         { return b.op3(isa.OpBITOR, d, s1, s2) }
func (b *Builder) Xor(d, s1, s2 VReg) *Op        { return b.op3(isa.OpBITXOR, d, s1, s2) }
func (b *Builder) AndInv(d, s1, s2 VReg) *Op     { return b.op3(isa.OpBITANDINV, d, s1, s2) }
func (b *Builder) Inv(d, s VReg) *Op             { return b.op2(isa.OpBITINV, d, s) }
func (b *Builder) Sex8(d, s VReg) *Op            { return b.op2(isa.OpSEX8, d, s) }
func (b *Builder) Sex16(d, s VReg) *Op           { return b.op2(isa.OpSEX16, d, s) }
func (b *Builder) Zex8(d, s VReg) *Op            { return b.op2(isa.OpZEX8, d, s) }
func (b *Builder) Zex16(d, s VReg) *Op           { return b.op2(isa.OpZEX16, d, s) }
func (b *Builder) Eql(d, s1, s2 VReg) *Op        { return b.op3(isa.OpIEQL, d, s1, s2) }
func (b *Builder) Neq(d, s1, s2 VReg) *Op        { return b.op3(isa.OpINEQ, d, s1, s2) }
func (b *Builder) Gtr(d, s1, s2 VReg) *Op        { return b.op3(isa.OpIGTR, d, s1, s2) }
func (b *Builder) Geq(d, s1, s2 VReg) *Op        { return b.op3(isa.OpIGEQ, d, s1, s2) }
func (b *Builder) Les(d, s1, s2 VReg) *Op        { return b.op3(isa.OpILES, d, s1, s2) }
func (b *Builder) Leq(d, s1, s2 VReg) *Op        { return b.op3(isa.OpILEQ, d, s1, s2) }
func (b *Builder) UGtr(d, s1, s2 VReg) *Op       { return b.op3(isa.OpUGTR, d, s1, s2) }
func (b *Builder) ULes(d, s1, s2 VReg) *Op       { return b.op3(isa.OpULES, d, s1, s2) }
func (b *Builder) UGeq(d, s1, s2 VReg) *Op       { return b.op3(isa.OpUGEQ, d, s1, s2) }
func (b *Builder) ULeq(d, s1, s2 VReg) *Op       { return b.op3(isa.OpULEQ, d, s1, s2) }
func (b *Builder) EqlI(d, s VReg, imm int32) *Op { return b.op2i(isa.OpIEQLI, d, s, uint32(imm)) }
func (b *Builder) NeqI(d, s VReg, imm int32) *Op { return b.op2i(isa.OpINEQI, d, s, uint32(imm)) }
func (b *Builder) GtrI(d, s VReg, imm int32) *Op { return b.op2i(isa.OpIGTRI, d, s, uint32(imm)) }
func (b *Builder) LesI(d, s VReg, imm int32) *Op { return b.op2i(isa.OpILESI, d, s, uint32(imm)) }
func (b *Builder) IsZero(d, s VReg) *Op          { return b.op2(isa.OpIZERO, d, s) }
func (b *Builder) NonZero(d, s VReg) *Op         { return b.op2(isa.OpINONZERO, d, s) }

func (b *Builder) Asl(d, s1, s2 VReg) *Op         { return b.op3(isa.OpASL, d, s1, s2) }
func (b *Builder) Asr(d, s1, s2 VReg) *Op         { return b.op3(isa.OpASR, d, s1, s2) }
func (b *Builder) Lsr(d, s1, s2 VReg) *Op         { return b.op3(isa.OpLSR, d, s1, s2) }
func (b *Builder) AslI(d, s VReg, imm uint32) *Op { return b.op2i(isa.OpASLI, d, s, imm) }
func (b *Builder) AsrI(d, s VReg, imm uint32) *Op { return b.op2i(isa.OpASRI, d, s, imm) }
func (b *Builder) LsrI(d, s VReg, imm uint32) *Op { return b.op2i(isa.OpLSRI, d, s, imm) }
func (b *Builder) Clz(d, s VReg) *Op              { return b.op2(isa.OpICLZ, d, s) }
func (b *Builder) FunShift1(d, s1, s2 VReg) *Op   { return b.op3(isa.OpFUNSHIFT1, d, s1, s2) }
func (b *Builder) FunShift2(d, s1, s2 VReg) *Op   { return b.op3(isa.OpFUNSHIFT2, d, s1, s2) }
func (b *Builder) FunShift3(d, s1, s2 VReg) *Op   { return b.op3(isa.OpFUNSHIFT3, d, s1, s2) }

func (b *Builder) Mul(d, s1, s2 VReg) *Op     { return b.op3(isa.OpIMUL, d, s1, s2) }
func (b *Builder) MulM(d, s1, s2 VReg) *Op    { return b.op3(isa.OpIMULM, d, s1, s2) }
func (b *Builder) UMulM(d, s1, s2 VReg) *Op   { return b.op3(isa.OpUMULM, d, s1, s2) }
func (b *Builder) DspMul(d, s1, s2 VReg) *Op  { return b.op3(isa.OpDSPIMUL, d, s1, s2) }
func (b *Builder) IFir16(d, s1, s2 VReg) *Op  { return b.op3(isa.OpIFIR16, d, s1, s2) }
func (b *Builder) UFir16(d, s1, s2 VReg) *Op  { return b.op3(isa.OpUFIR16, d, s1, s2) }
func (b *Builder) IFir8UI(d, s1, s2 VReg) *Op { return b.op3(isa.OpIFIR8UI, d, s1, s2) }
func (b *Builder) UME8UU(d, s1, s2 VReg) *Op  { return b.op3(isa.OpUME8UU, d, s1, s2) }

func (b *Builder) DspAdd(d, s1, s2 VReg) *Op         { return b.op3(isa.OpDSPIADD, d, s1, s2) }
func (b *Builder) DspSub(d, s1, s2 VReg) *Op         { return b.op3(isa.OpDSPISUB, d, s1, s2) }
func (b *Builder) DspAbs(d, s VReg) *Op              { return b.op2(isa.OpDSPIABS, d, s) }
func (b *Builder) DspDualAdd(d, s1, s2 VReg) *Op     { return b.op3(isa.OpDSPIDUALADD, d, s1, s2) }
func (b *Builder) DspDualSub(d, s1, s2 VReg) *Op     { return b.op3(isa.OpDSPIDUALSUB, d, s1, s2) }
func (b *Builder) DspDualMul(d, s1, s2 VReg) *Op     { return b.op3(isa.OpDSPIDUALMUL, d, s1, s2) }
func (b *Builder) QuadAddUI(d, s1, s2 VReg) *Op      { return b.op3(isa.OpDSPUQUADADDUI, d, s1, s2) }
func (b *Builder) QuadAvg(d, s1, s2 VReg) *Op        { return b.op3(isa.OpQUADAVG, d, s1, s2) }
func (b *Builder) QuadUMin(d, s1, s2 VReg) *Op       { return b.op3(isa.OpQUADUMIN, d, s1, s2) }
func (b *Builder) QuadUMax(d, s1, s2 VReg) *Op       { return b.op3(isa.OpQUADUMAX, d, s1, s2) }
func (b *Builder) ClipI(d, s VReg, bits uint32) *Op  { return b.op2i(isa.OpICLIPI, d, s, bits) }
func (b *Builder) UClipI(d, s VReg, bits uint32) *Op { return b.op2i(isa.OpUCLIPI, d, s, bits) }
func (b *Builder) DualClipI(d, s VReg, bits uint32) *Op {
	return b.op2i(isa.OpDUALICLIPI, d, s, bits)
}
func (b *Builder) DualUClipI(d, s VReg, bits uint32) *Op {
	return b.op2i(isa.OpDUALUCLIPI, d, s, bits)
}
func (b *Builder) PackBytes(d, s1, s2 VReg) *Op { return b.op3(isa.OpPACKBYTES, d, s1, s2) }
func (b *Builder) Pack16LSB(d, s1, s2 VReg) *Op { return b.op3(isa.OpPACK16LSB, d, s1, s2) }
func (b *Builder) Pack16MSB(d, s1, s2 VReg) *Op { return b.op3(isa.OpPACK16MSB, d, s1, s2) }
func (b *Builder) MergeLSB(d, s1, s2 VReg) *Op  { return b.op3(isa.OpMERGELSB, d, s1, s2) }
func (b *Builder) MergeMSB(d, s1, s2 VReg) *Op  { return b.op3(isa.OpMERGEMSB, d, s1, s2) }
func (b *Builder) UByteSel(d, s1, s2 VReg) *Op  { return b.op3(isa.OpUBYTESEL, d, s1, s2) }

func (b *Builder) FAdd(d, s1, s2 VReg) *Op { return b.op3(isa.OpFADD, d, s1, s2) }
func (b *Builder) FSub(d, s1, s2 VReg) *Op { return b.op3(isa.OpFSUB, d, s1, s2) }
func (b *Builder) FMul(d, s1, s2 VReg) *Op { return b.op3(isa.OpFMUL, d, s1, s2) }
func (b *Builder) FDiv(d, s1, s2 VReg) *Op { return b.op3(isa.OpFDIV, d, s1, s2) }
func (b *Builder) IFloat(d, s VReg) *Op    { return b.op2(isa.OpIFLOAT, d, s) }
func (b *Builder) IFix(d, s VReg) *Op      { return b.op2(isa.OpIFIXIEEE, d, s) }

// Loads. Displacement forms take a signed byte offset.
func (b *Builder) Ld32D(d, base VReg, off int32) *Op {
	return b.op2i(isa.OpLD32D, d, base, uint32(off))
}
func (b *Builder) Ld16D(d, base VReg, off int32) *Op {
	return b.op2i(isa.OpLD16D, d, base, uint32(off))
}
func (b *Builder) ULd16D(d, base VReg, off int32) *Op {
	return b.op2i(isa.OpULD16D, d, base, uint32(off))
}
func (b *Builder) Ld8D(d, base VReg, off int32) *Op {
	return b.op2i(isa.OpLD8D, d, base, uint32(off))
}
func (b *Builder) ULd8D(d, base VReg, off int32) *Op {
	return b.op2i(isa.OpULD8D, d, base, uint32(off))
}
func (b *Builder) Ld32R(d, base, idx VReg) *Op  { return b.op3(isa.OpLD32R, d, base, idx) }
func (b *Builder) ULd8R(d, base, idx VReg) *Op  { return b.op3(isa.OpULD8R, d, base, idx) }
func (b *Builder) ULd16R(d, base, idx VReg) *Op { return b.op3(isa.OpULD16R, d, base, idx) }

// Stores: value val to base+off.
func (b *Builder) St32D(base VReg, off int32, val VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpST32D, Src: [4]VReg{base, val}, Imm: uint32(off)})
}
func (b *Builder) St16D(base VReg, off int32, val VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpST16D, Src: [4]VReg{base, val}, Imm: uint32(off)})
}
func (b *Builder) St8D(base VReg, off int32, val VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpST8D, Src: [4]VReg{base, val}, Imm: uint32(off)})
}
func (b *Builder) AllocD(base VReg, off int32) *Op {
	return b.Emit(Op{Opcode: isa.OpALLOCD, Src: [4]VReg{base}, Imm: uint32(off)})
}

// LdFrac8 is the collapsed load with interpolation.
func (b *Builder) LdFrac8(d, addr, frac VReg) *Op {
	return b.op3(isa.OpLDFRAC8, d, addr, frac)
}

// Two-slot operations.
func (b *Builder) SuperDualIMix(d1, d2, s1, s2, s3, s4 VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpSUPERDUALIMIX, Src: [4]VReg{s1, s2, s3, s4}, Dest: [2]VReg{d1, d2}})
}
func (b *Builder) SuperLd32R(d1, d2, base, idx VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpSUPERLD32R, Src: [4]VReg{base, idx}, Dest: [2]VReg{d1, d2}})
}
func (b *Builder) SuperCabacStr(dPos, dBit, valueRange, pos, stateMPS VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpSUPERCABACSTR, Src: [4]VReg{valueRange, pos, Zero, stateMPS}, Dest: [2]VReg{dPos, dBit}})
}
func (b *Builder) SuperCabacCtx(dValueRange, dStateMPS, valueRange, pos, data, stateMPS VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpSUPERCABACCTX, Src: [4]VReg{valueRange, pos, data, stateMPS}, Dest: [2]VReg{dValueRange, dStateMPS}})
}
func (b *Builder) SuperUME8UU(d, s1, s2, s3, s4 VReg) *Op {
	return b.Emit(Op{Opcode: isa.OpSUPERUME8UU, Src: [4]VReg{s1, s2, s3, s4}, Dest: [2]VReg{d}})
}

// Branches.
func (b *Builder) Jmp(label string) *Op {
	return b.Emit(Op{Opcode: isa.OpJMPI, Target: label})
}
func (b *Builder) JmpT(guard VReg, label string) *Op {
	return b.Emit(Op{Opcode: isa.OpJMPT, Guard: guard, Target: label})
}
func (b *Builder) JmpF(guard VReg, label string) *Op {
	return b.Emit(Op{Opcode: isa.OpJMPF, Guard: guard, Target: label})
}
