package prog

import (
	"fmt"

	"tm3270/internal/isa"
)

// Interp executes a program with plain sequential semantics (no VLIW
// packing, no delay slots, no latencies). It is the reference the
// scheduled machine execution is differentially tested against.
type Interp struct {
	prog *Program
	mem  isa.Memory
	regs []uint32

	// Ops counts executed (issued) operations, including guarded-off
	// ones; Steps counts only operations whose guard allowed execution.
	Ops   int64
	Steps int64
	// MaxOps aborts runaway programs; 0 means no limit.
	MaxOps int64
}

// NewInterp prepares an interpreter over the given memory image.
func NewInterp(p *Program, m isa.Memory) *Interp {
	regs := make([]uint32, p.NumVRegs)
	regs[One] = 1
	return &Interp{prog: p, mem: m, regs: regs}
}

// Reg returns the current value of a virtual register.
func (in *Interp) Reg(v VReg) uint32 {
	if v == Zero {
		return 0
	}
	if v == One {
		return 1
	}
	return in.regs[v]
}

// SetReg initializes a virtual register (kernel arguments).
func (in *Interp) SetReg(v VReg, val uint32) {
	if !v.Pinned() {
		in.regs[v] = val
	}
}

// Run executes the program from its first block until control falls off
// the end.
func (in *Interp) Run() error {
	bi := 0
	for bi < len(in.prog.Blocks) {
		blk := in.prog.Blocks[bi]
		jumped := false
		for i := range blk.Ops {
			op := &blk.Ops[i]
			in.Ops++
			if in.MaxOps > 0 && in.Ops > in.MaxOps {
				return fmt.Errorf("prog %s: exceeded %d operations", in.prog.Name, in.MaxOps)
			}
			taken, err := in.exec(op)
			if err != nil {
				return err
			}
			if taken {
				ti, ok := in.prog.BlockIndex(op.Target)
				if !ok {
					return fmt.Errorf("prog %s: jump to unknown label %q", in.prog.Name, op.Target)
				}
				bi = ti
				jumped = true
				break
			}
		}
		if !jumped {
			bi++
		}
	}
	return nil
}

// exec runs a single operation, honoring its guard, and reports whether
// a branch was taken.
func (in *Interp) exec(op *Op) (bool, error) {
	info := op.Info()
	g := in.Reg(op.Guard)&1 == 1
	if info.GuardInverted {
		g = !g
	}
	if !g {
		return false, nil
	}
	in.Steps++
	if op.Opcode == isa.OpNOP {
		return false, nil
	}
	var ctx isa.ExecContext
	ctx.Imm = op.Imm
	ctx.Mem = in.mem
	for i := 0; i < info.NSrc; i++ {
		ctx.Src[i] = in.Reg(op.Src[i])
	}
	info.Exec(&ctx)
	for i := 0; i < info.NDest; i++ {
		in.SetReg(op.Dest[i], ctx.Dest[i])
	}
	return ctx.Taken, nil
}
