// Package prog defines the program intermediate representation the
// kernels are written in: guarded TM3270 operations over virtual
// registers, grouped into basic blocks with labeled control flow. It
// provides a builder DSL, a validator, and a sequential reference
// interpreter used for differential testing of the scheduled machine
// code (the scheduler, register allocator and processor model must
// preserve exactly the semantics this interpreter defines).
package prog

import (
	"fmt"

	"tm3270/internal/isa"
)

// VReg is a virtual register. Two values are pinned: Zero maps to the
// hardwired r0 (reads 0) and One maps to r1 (reads 1, the default guard).
type VReg int32

const (
	// Zero always reads 0.
	Zero VReg = 0
	// One always reads 1; the default guard of unguarded operations.
	One VReg = 1
)

// Pinned reports whether v is one of the two hardwired registers.
func (v VReg) Pinned() bool { return v == Zero || v == One }

func (v VReg) String() string { return fmt.Sprintf("v%d", int32(v)) }

// Op is one guarded operation.
type Op struct {
	Opcode isa.Opcode
	Guard  VReg
	Src    [4]VReg
	Dest   [2]VReg
	Imm    uint32
	Target string // jump target label, for branch operations

	// MemGroup is an alias hint for the scheduler: memory operations in
	// different non-zero groups are guaranteed by the kernel writer to
	// touch disjoint memory (e.g. source and destination buffers).
	// Group 0 means "unknown, may alias anything".
	MemGroup int8
}

// Info returns the static description of the operation.
func (o *Op) Info() *isa.OpInfo { return isa.Info(o.Opcode) }

func (o *Op) String() string {
	info := o.Info()
	s := ""
	if o.Guard != One {
		s += fmt.Sprintf("if %v ", o.Guard)
	}
	s += info.Name
	for i := 0; i < info.NSrc; i++ {
		s += fmt.Sprintf(" %v", o.Src[i])
	}
	if info.HasImm {
		if info.IsJump {
			s += " " + o.Target
		} else {
			s += fmt.Sprintf(" #%d", int32(o.Imm))
		}
	}
	if info.NDest > 0 {
		s += " ->"
		for i := 0; i < info.NDest; i++ {
			s += fmt.Sprintf(" %v", o.Dest[i])
		}
	}
	return s
}

// Block is a basic block: straight-line operations with at most one
// branch, which is always the last operation when present.
type Block struct {
	Label string
	Ops   []Op
}

// Jump returns the block's branch operation, or nil for a pure
// fallthrough block.
func (b *Block) Jump() *Op {
	if n := len(b.Ops); n > 0 && b.Ops[n-1].Info().IsJump {
		return &b.Ops[n-1]
	}
	return nil
}

// Body returns the operations excluding a trailing branch.
func (b *Block) Body() []Op {
	if b.Jump() != nil {
		return b.Ops[:len(b.Ops)-1]
	}
	return b.Ops
}

// Program is a complete kernel.
type Program struct {
	Name   string
	Blocks []*Block
	// NumVRegs is one past the highest virtual register in use.
	NumVRegs int
	// LoopBounds maps a labeled loop-header block to the maximum number
	// of times control may enter it per kernel run: the escape hatch for
	// loops whose trip count the static analyzer (internal/binverify)
	// cannot infer from the code itself. The bound is a promise by the
	// kernel writer; the whole-program worst-case cycle bound is only
	// as trustworthy as these annotations.
	LoopBounds map[string]int
}

// BlockIndex returns the index of the block with the given label.
func (p *Program) BlockIndex(label string) (int, bool) {
	for i, b := range p.Blocks {
		if b.Label == label {
			return i, true
		}
	}
	return 0, false
}

// NumOps returns the total operation count.
func (p *Program) NumOps() int {
	n := 0
	for _, b := range p.Blocks {
		n += len(b.Ops)
	}
	return n
}

// String renders the program as readable pseudo-assembly.
func (p *Program) String() string {
	s := "program " + p.Name + "\n"
	for _, b := range p.Blocks {
		if b.Label != "" {
			s += b.Label + ":\n"
		}
		for i := range b.Ops {
			s += "\t" + b.Ops[i].String() + "\n"
		}
	}
	return s
}

// Validate checks structural well-formedness: operand counts match the
// ISA, registers are in range, branch targets resolve, no writes to the
// pinned registers, and branches only terminate blocks.
func (p *Program) Validate() error {
	labels := map[string]bool{}
	for _, b := range p.Blocks {
		if b.Label != "" {
			if labels[b.Label] {
				return fmt.Errorf("%s: duplicate label %q", p.Name, b.Label)
			}
			labels[b.Label] = true
		}
	}
	for label, bound := range p.LoopBounds {
		if !labels[label] {
			return fmt.Errorf("%s: loop bound on undefined label %q", p.Name, label)
		}
		if bound <= 0 {
			return fmt.Errorf("%s: loop bound on %q must be positive, got %d", p.Name, label, bound)
		}
	}
	check := func(v VReg, what string, op *Op) error {
		if v < 0 || int(v) >= p.NumVRegs {
			return fmt.Errorf("%s: %v: %s register %v out of range", p.Name, op, what, v)
		}
		return nil
	}
	for _, b := range p.Blocks {
		for i := range b.Ops {
			op := &b.Ops[i]
			info := op.Info()
			if err := check(op.Guard, "guard", op); err != nil {
				return err
			}
			for s := 0; s < info.NSrc; s++ {
				if err := check(op.Src[s], "source", op); err != nil {
					return err
				}
			}
			for d := 0; d < info.NDest; d++ {
				if err := check(op.Dest[d], "destination", op); err != nil {
					return err
				}
				if op.Dest[d].Pinned() {
					return fmt.Errorf("%s: %v: writes pinned register", p.Name, op)
				}
			}
			if info.NDest == 2 && op.Dest[0] == op.Dest[1] {
				return fmt.Errorf("%s: %v: two-slot operation writes the same register twice", p.Name, op)
			}
			if info.IsJump {
				if i != len(b.Ops)-1 {
					return fmt.Errorf("%s: block %q: branch %v not at block end", p.Name, b.Label, op)
				}
				if !labels[op.Target] {
					return fmt.Errorf("%s: %v: undefined label %q", p.Name, op, op.Target)
				}
			}
		}
	}
	return nil
}
