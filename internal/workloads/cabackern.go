package workloads

import (
	"fmt"

	"tm3270/internal/cabac"
	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

// CABAC workload memory layout.
const (
	lpsTabBase  = 0x0800_0000 // 64x4 byte LPS range table
	mpsNextBase = 0x0800_0200 // 64-byte MPS transition table
	lpsNextBase = 0x0800_0300 // 64-byte LPS transition table
	cabCtxBase  = 0x0800_1000 // context table: DUAL16(state, mps) words
	cabStream   = 0x0810_0000 // encoded bitstream
	cabSeqBase  = 0x0820_0000 // per-bin context index (1 byte)
	cabBitsBase = 0x0840_0000 // decoded bins (1 byte each)
	cabMaint    = 0x0860_0000 // decoder bookkeeping counters
)

// FieldType describes the CABAC workload shape of one field type of
// Table 3: how many stream bits a field carries and how bursty the
// context usage is. I-fields decode long runs from few contexts with
// little per-element overhead; B-fields switch contexts constantly and
// pay decoder data-structure maintenance every few bins.
type FieldType struct {
	Name    string
	Bits    int // target stream bits (Table 3: average bits/field)
	NCtx    int // active contexts
	Run     int // bins decoded from a context before switching
	ElemLen int // bins per syntax element (maintenance interval)
	POne    float64
}

// Table 3 field types at paper scale (60 fields/s, 4.5 Mbit/s SD).
// I-fields carry dense, barely-compressible residual data (near one bin
// per stream bit, long context runs, little per-element maintenance);
// P- and B-fields carry fewer but more compressible bins with far more
// syntax-element overhead per bit, which is why the paper's VLIW
// instructions *per bit* rise from I to P to B.
func FieldI(bits int) FieldType {
	return FieldType{Name: "I", Bits: bits, NCtx: 24, Run: 14, ElemLen: 28, POne: 0.42}
}
func FieldP(bits int) FieldType {
	return FieldType{Name: "P", Bits: bits, NCtx: 40, Run: 5, ElemLen: 9, POne: 0.32}
}
func FieldB(bits int) FieldType {
	return FieldType{Name: "B", Bits: bits, NCtx: 48, Run: 3, ElemLen: 5, POne: 0.24}
}

// cabacData is the generated stream shared between Init and Check.
type cabacData struct {
	stream []byte
	bits   []uint8
	nBins  int
	nBits  int // actual stream bits produced
}

// generate encodes a synthetic field of the given shape, sized so the
// stream carries roughly f.Bits bits.
func generate(f FieldType) *cabacData {
	rng := video.NewLCG(uint32(0xC0DE + len(f.Name) + f.Bits))
	enc := cabac.NewEncoder()
	ctxs := make([]cabac.Context, f.NCtx)
	d := &cabacData{}
	cur, run := 0, 0
	for enc.NumBits() < f.Bits {
		if run == 0 {
			cur = rng.Intn(f.NCtx)
			run = 1 + rng.Intn(2*f.Run)
		}
		run--
		bit := uint8(0)
		if float64(rng.Intn(1000))/1000 < f.POne {
			bit = 1
		}
		d.bits = append(d.bits, bit)
		enc.EncodeBit(&ctxs[cur], bit)
	}
	d.nBins = len(d.bits)
	d.nBits = enc.NumBits()
	d.stream = enc.Flush()
	return d
}

// seqOf reproduces the context-index sequence of generate (same LCG).
func (f FieldType) install(m *mem.Func, d *cabacData) {
	// Tables.
	for s := uint32(0); s < 64; s++ {
		for q := uint32(0); q < 4; q++ {
			m.SetByte(lpsTabBase+s*4+q, byte(cabac.RangeLPS(s, q)))
		}
		m.SetByte(mpsNextBase+s, byte(cabac.NextMPS(s)))
		m.SetByte(lpsNextBase+s, byte(cabac.NextLPS(s)))
	}
	// Contexts start at state 0, MPS 0.
	for i := 0; i < f.NCtx; i++ {
		m.Store(cabCtxBase+uint32(4*i), 4, 0)
	}
	m.WriteBytes(cabStream, d.stream)
	// Context sequence: regenerate with the same LCG discipline.
	rng := video.NewLCG(uint32(0xC0DE + len(f.Name) + f.Bits))
	cur, run := 0, 0
	for i := 0; i < d.nBins; i++ {
		if run == 0 {
			cur = rng.Intn(f.NCtx)
			run = 1 + rng.Intn(2*f.Run)
		}
		run--
		m.SetByte(cabSeqBase+uint32(i), byte(cur))
		_ = rng.Intn(1000) // keep the LCG in lockstep with generate
	}
}

// CABACRef builds the non-optimized decode workload: the Figure 2
// biari_decode_symbol written with base TriMedia operations (table
// loads, guarded updates, clz-based renormalization), plus per-element
// decoder maintenance. This version re-compiles for the TM3260.
func CABACRef(f FieldType) *Spec {
	d := generate(f)
	b := prog.NewBuilder("cabac_ref_" + f.Name)

	streamPtr, seqPtr, bitsPtr := b.Reg(), b.Reg(), b.Reg()
	lpsBase, mpsnB, lpsnB, ctxB, maintB := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	n := b.Reg()
	c31 := b.ImmReg(31)
	three := b.ImmReg(3)

	window, bitpos, bytePos, value, rng := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	i, cond := b.Reg(), b.Reg()
	ctxIdx, toff, ctxAddr, cw, state, mps := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	q, t2, t3, rlps, tmp, isLPS, isMPS := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	mnext, lnext, bit, ns, state0, flip := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	nr, sa, sb, va, addr2, mnt, maintCnt := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	mc1, mc2 := b.Reg(), b.Reg()

	// Decoder initialization (Figure 2 preamble).
	b.Ld32D(window, streamPtr, 0).InGroup(1)
	b.LsrI(value, window, 23) // first 9 stream bits
	b.Imm(bitpos, 9)
	b.Imm(bytePos, 0)
	b.Imm(rng, 510)
	b.Imm(i, 0)
	b.Imm(maintCnt, int32ToU(int32(f.ElemLen)))
	elemLen := b.ImmReg(uint32(f.ElemLen))

	b.Label("binloop")
	// Guarded window refill first: a decode step consumes at most 8
	// bits, so refilling whenever stream_bit_position reached 16 keeps
	// the 32-bit window sufficient; doing it at the loop top keeps the
	// refill load off the block's critical tail.
	b.GtrI(mnt, bitpos, 15)
	b.AddI(bytePos, bytePos, 2).WithGuard(mnt)
	b.AddI(bitpos, bitpos, -16).WithGuard(mnt)
	b.Ld32R(window, streamPtr, bytePos).WithGuard(mnt).InGroup(1)
	// Context fetch.
	b.ULd8R(ctxIdx, seqPtr, i).InGroup(2)
	b.AslI(toff, ctxIdx, 2)
	b.Add(ctxAddr, ctxB, toff)
	b.Ld32D(cw, ctxAddr, 0).InGroup(3)
	b.LsrI(state, cw, 16)
	b.And(mps, cw, prog.One)
	// LPS range lookup: LpsRangeTable[state][(range>>6)&3].
	b.LsrI(t2, rng, 6)
	b.And(q, t2, three)
	b.AslI(t3, state, 2)
	b.Add(t3, t3, q)
	b.ULd8R(rlps, lpsBase, t3).InGroup(4)
	b.Sub(tmp, rng, rlps)
	b.UGeq(isLPS, value, tmp)
	b.IsZero(isMPS, isLPS)
	// Both transition candidates.
	b.ULd8R(mnext, mpsnB, state).InGroup(4)
	b.ULd8R(lnext, lpsnB, state).InGroup(4)
	// Guarded MPS/LPS resolution.
	b.Sub(value, value, tmp).WithGuard(isLPS)
	b.Mov(rng, tmp).WithGuard(isMPS)
	b.Mov(rng, rlps).WithGuard(isLPS)
	b.Mov(bit, mps).WithGuard(isMPS)
	b.Xor(bit, mps, prog.One).WithGuard(isLPS)
	b.IsZero(state0, state)
	b.And(flip, state0, isLPS)
	b.Xor(mps, mps, flip)
	b.Mov(ns, mnext).WithGuard(isMPS)
	b.Mov(ns, lnext).WithGuard(isLPS)
	// Renormalization via count-leading-zeros: range is 9 bits, so the
	// shift count is clz(range) - 23, at most 7.
	b.Clz(nr, rng)
	b.AddI(nr, nr, -23)
	b.Asl(rng, rng, nr)
	b.Asl(sa, window, bitpos)
	b.Asl(va, value, nr)
	b.LsrI(sb, sa, 1)
	b.Sub(t2, c31, nr)
	b.Lsr(sb, sb, t2)
	b.Or(value, va, sb)
	b.Add(bitpos, bitpos, nr)
	// Write back the adapted context and the decoded bin.
	b.AslI(t3, ns, 16)
	b.Or(cw, t3, mps)
	b.St32D(ctxAddr, 0, cw).InGroup(3)
	b.Add(addr2, bitsPtr, i)
	b.St8D(addr2, 0, bit).InGroup(5)
	// Per-element decoder maintenance, fully predicated so the bin loop
	// stays a single block and the backward jump's delay slots fill with
	// real work ("aggressive predication", Section 3).
	b.AddI(maintCnt, maintCnt, -1)
	b.IsZero(mnt, maintCnt)
	b.Ld32D(mc1, maintB, 0).WithGuard(mnt).InGroup(6)
	b.Ld32D(mc2, maintB, 4).WithGuard(mnt).InGroup(6)
	b.Mov(maintCnt, elemLen).WithGuard(mnt)
	b.Add(mc1, mc1, bit).WithGuard(mnt)
	b.Add(mc2, mc2, state).WithGuard(mnt)
	b.Xor(mc2, mc2, ctxIdx).WithGuard(mnt)
	b.St32D(maintB, 0, mc1).WithGuard(mnt).InGroup(6)
	b.St32D(maintB, 4, mc2).WithGuard(mnt).InGroup(6)
	b.AddI(i, i, 1)
	b.ULes(cond, i, n)
	b.JmpT(cond, "binloop")
	pr := b.MustProgram()

	return &Spec{
		Name:        "cabac_ref_" + f.Name,
		Description: "CABAC decode, base ISA (field type " + f.Name + ")",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			streamPtr: cabStream, seqPtr: cabSeqBase, bitsPtr: cabBitsBase,
			lpsBase: lpsTabBase, mpsnB: mpsNextBase, lpsnB: lpsNextBase,
			ctxB: cabCtxBase, maintB: cabMaint, n: uint32(d.nBins),
		},
		Init:    func(m *mem.Func) error { f.install(m, d); return nil },
		Regions: cabacRegions(f, d),
		Check:   cabacCheck(d),
	}
}

// CABACOpt builds the optimized decode workload using the TM3270
// SUPER_CABAC_STR / SUPER_CABAC_CTX operations (Table 2), with the same
// context discipline and maintenance as CABACRef.
func CABACOpt(f FieldType) *Spec {
	d := generate(f)
	b := prog.NewBuilder("cabac_opt_" + f.Name)

	streamPtr, seqPtr, bitsPtr, ctxB, maintB := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	n := b.Reg()
	window, bitpos, bytePos, vr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	i, cond := b.Reg(), b.Reg()
	ctxIdx, toff, ctxAddr, cw := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	posN, bit, vrN, cwN, addr2, mnt, maintCnt := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	mc1, mc2, t := b.Reg(), b.Reg(), b.Reg()

	b.Ld32D(window, streamPtr, 0).InGroup(1)
	b.LsrI(t, window, 23)
	b.AslI(vr, t, 16)
	b.AddI(vr, vr, 510) // DUAL16(value, range=510)
	b.Imm(bitpos, 9)
	b.Imm(bytePos, 0)
	b.Imm(i, 0)
	b.Imm(maintCnt, int32ToU(int32(f.ElemLen)))
	elemLen := b.ImmReg(uint32(f.ElemLen))

	b.Label("binloop")
	// Guarded window refill at the loop top (see CABACRef).
	b.GtrI(mnt, bitpos, 15)
	b.AddI(bytePos, bytePos, 2).WithGuard(mnt)
	b.AddI(bitpos, bitpos, -16).WithGuard(mnt)
	b.Ld32R(window, streamPtr, bytePos).WithGuard(mnt).InGroup(1)
	b.ULd8R(ctxIdx, seqPtr, i).InGroup(2)
	b.AslI(toff, ctxIdx, 2)
	b.Add(ctxAddr, ctxB, toff)
	b.Ld32D(cw, ctxAddr, 0).InGroup(3)
	// The two-slot CABAC pair (both read the pre-update state).
	b.SuperCabacStr(posN, bit, vr, bitpos, cw)
	b.SuperCabacCtx(vrN, cwN, vr, bitpos, window, cw)
	b.Mov(vr, vrN)
	b.Mov(bitpos, posN)
	b.St32D(ctxAddr, 0, cwN).InGroup(3)
	b.Add(addr2, bitsPtr, i)
	b.St8D(addr2, 0, bit).InGroup(5)
	// Per-element decoder maintenance, predicated as in the reference.
	b.AddI(maintCnt, maintCnt, -1)
	b.IsZero(mnt, maintCnt)
	b.Ld32D(mc1, maintB, 0).WithGuard(mnt).InGroup(6)
	b.Ld32D(mc2, maintB, 4).WithGuard(mnt).InGroup(6)
	b.Mov(maintCnt, elemLen).WithGuard(mnt)
	b.Add(mc1, mc1, bit).WithGuard(mnt)
	b.LsrI(t, cwN, 16)
	b.Add(mc2, mc2, t).WithGuard(mnt)
	b.Xor(mc2, mc2, ctxIdx).WithGuard(mnt)
	b.St32D(maintB, 0, mc1).WithGuard(mnt).InGroup(6)
	b.St32D(maintB, 4, mc2).WithGuard(mnt).InGroup(6)
	b.AddI(i, i, 1)
	b.ULes(cond, i, n)
	b.JmpT(cond, "binloop")
	pr := b.MustProgram()

	return &Spec{
		Name:        "cabac_opt_" + f.Name,
		Description: "CABAC decode, SUPER_CABAC operations (field type " + f.Name + ")",
		Prog:        pr,
		TM3270Only:  true,
		Args: map[prog.VReg]uint32{
			streamPtr: cabStream, seqPtr: cabSeqBase, bitsPtr: cabBitsBase,
			ctxB: cabCtxBase, maintB: cabMaint, n: uint32(d.nBins),
		},
		Init:    func(m *mem.Func) error { f.install(m, d); return nil },
		Regions: cabacRegions(f, d),
		Check:   cabacCheck(d),
	}
}

// cabacRegions is the decoder's memory map: the probability tables, the
// context table, the encoded stream (the refill reads whole words, so
// round up), the context-index sequence, the decoded bins and the
// maintenance counters.
func cabacRegions(f FieldType, d *cabacData) []mem.Region {
	return []mem.Region{
		region("lps-table", lpsTabBase, 256),
		region("mps-next", mpsNextBase, 64),
		region("lps-next", lpsNextBase, 64),
		region("contexts", cabCtxBase, 4*f.NCtx),
		region("stream", cabStream, (len(d.stream)+7)&^3),
		region("sequence", cabSeqBase, d.nBins),
		region("bins", cabBitsBase, d.nBins),
		region("maint", cabMaint, 8),
	}
}

// StreamBits returns the actual stream bits of a field workload built
// with the same parameters (for instructions-per-bit reporting).
func StreamBits(f FieldType) int { return generate(f).nBits }

func cabacCheck(d *cabacData) func(*mem.Func) error {
	return func(m *mem.Func) error {
		for i, want := range d.bits {
			if got := m.ByteAt(cabBitsBase + uint32(i)); got != want {
				return fmt.Errorf("cabac: bin %d = %d, want %d", i, got, want)
			}
		}
		return nil
	}
}

func int32ToU(v int32) uint32 { return uint32(v) }
