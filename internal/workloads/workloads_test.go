package workloads_test

import (
	"context"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// mustBuild unwraps a fallible workload constructor:
// mustBuild(t)(workloads.Mpeg2A(p)).
func mustBuild(t *testing.T) func(*workloads.Spec, error) *workloads.Spec {
	return func(w *workloads.Spec, err error) *workloads.Spec {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
}

// mustTable5 builds the Figure 7 set.
func mustTable5(t *testing.T, p workloads.Params) []*workloads.Spec {
	t.Helper()
	set, err := workloads.Table5(p)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// runOn compiles and executes a workload on the machine model for a
// target and validates its output with the workload's own check.
func runOn(t *testing.T, w *workloads.Spec, tgt config.Target) *tmsim.Machine {
	t.Helper()
	code, err := sched.Schedule(w.Prog, tgt)
	if err != nil {
		t.Fatalf("%s on %s: schedule: %v", w.Name, tgt.Name, err)
	}
	rm, err := regalloc.Allocate(w.Prog)
	if err != nil {
		t.Fatalf("%s: regalloc: %v", w.Name, err)
	}
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			t.Fatalf("%s: init: %v", w.Name, err)
		}
	}
	m, err := tmsim.New(code, rm, image)
	if err != nil {
		t.Fatalf("%s: machine: %v", w.Name, err)
	}
	for v, val := range w.Args {
		m.SetReg(v, val)
	}
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("%s on %s: run: %v", w.Name, tgt.Name, err)
	}
	if err := w.Check(image); err != nil {
		t.Fatalf("%s on %s: %v", w.Name, tgt.Name, err)
	}
	return m
}

// runReference executes a workload on the sequential interpreter.
func runReference(t *testing.T, w *workloads.Spec) {
	t.Helper()
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			t.Fatalf("%s: init: %v", w.Name, err)
		}
	}
	in := prog.NewInterp(w.Prog, image)
	in.MaxOps = 500_000_000
	for v, val := range w.Args {
		in.SetReg(v, val)
	}
	if err := in.Run(); err != nil {
		t.Fatalf("%s reference: %v", w.Name, err)
	}
	if err := w.Check(image); err != nil {
		t.Fatalf("%s reference: %v", w.Name, err)
	}
}

// TestTable5ReferenceSemantics vets every Figure 7 kernel against its
// pure-Go reference under sequential semantics.
func TestTable5ReferenceSemantics(t *testing.T) {
	for _, w := range mustTable5(t, workloads.Small()) {
		w := w
		t.Run(w.Name, func(t *testing.T) { runReference(t, w) })
	}
}

// TestTable5OnAllConfigs runs every Figure 7 kernel on all four
// evaluation configurations of the paper.
func TestTable5OnAllConfigs(t *testing.T) {
	targets := []config.Target{config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD()}
	for _, w := range mustTable5(t, workloads.Small()) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, tgt := range targets {
				m := runOn(t, w, tgt)
				if m.Stats.Instrs == 0 || m.Stats.Cycles < m.Stats.Instrs {
					t.Errorf("%s: implausible stats %+v", tgt.Name, m.Stats)
				}
			}
		})
	}
}

// TestWorkloadsFitRegisterFile: every kernel must allocate within the
// 128-entry register file (the paper's no-spill discipline).
func TestWorkloadsFitRegisterFile(t *testing.T) {
	for _, w := range mustTable5(t, workloads.Small()) {
		if _, err := regalloc.Allocate(w.Prog); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
}

// TestMemcpyTrafficPolicy pins the Section 6 memcpy explanation: under
// fetch-on-write-miss (config A) the destination lines are read from
// memory; under allocate-on-write-miss (config B) they are not, cutting
// off-chip traffic by roughly a third.
func TestMemcpyTrafficPolicy(t *testing.T) {
	p := workloads.Small()
	p.MemKB = 32 // long enough to reach the memory-bound steady state
	a := runOn(t, workloads.Memcpy(p), config.ConfigA())
	b := runOn(t, workloads.Memcpy(p), config.ConfigB())
	bytes := int64(p.MemKB * 1024)

	// A: read src + fetch dst + eventual copyback.
	if a.BIU.BytesRead < 2*bytes*9/10 {
		t.Errorf("config A read %d bytes, want ~%d (src + fetched dst)", a.BIU.BytesRead, 2*bytes)
	}
	// B: read src only.
	if b.BIU.BytesRead > bytes*11/10 {
		t.Errorf("config B read %d bytes, want ~%d (src only)", b.BIU.BytesRead, bytes)
	}
	if b.Stats.Cycles >= a.Stats.Cycles {
		t.Errorf("allocate-on-write memcpy (%d cyc) not faster than fetch-on-write (%d cyc)",
			b.Stats.Cycles, a.Stats.Cycles)
	}
}

// TestMpeg2CacheSensitivity pins the Figure 7 mpeg2 explanation: the
// disruptive stream (a) must miss more than the smooth stream (c) on
// the small-cache configurations.
func TestMpeg2CacheSensitivity(t *testing.T) {
	p := workloads.Small()
	p.Mpeg2W, p.Mpeg2H = 320, 96 // wider than the 16KB cache can hold
	tgt := config.ConfigB()
	ma := runOn(t, mustBuild(t)(workloads.Mpeg2A(p)), tgt)
	mc := runOn(t, mustBuild(t)(workloads.Mpeg2C(p)), tgt)
	missA := ma.DC.Stats.LoadMisses
	missC := mc.DC.Stats.LoadMisses
	if missA <= missC {
		t.Errorf("disruptive stream misses (%d) not above smooth stream (%d)", missA, missC)
	}
}

// TestMemsetStoresBound: memset issues two stores per instruction in
// steady state (both store slots busy).
func TestMemsetStoresBound(t *testing.T) {
	p := workloads.Small()
	m := runOn(t, workloads.Memset(p), config.ConfigD())
	if opi := m.Stats.OPI(); opi < 1.8 {
		t.Errorf("memset OPI = %.2f, expected ~2+ (dual store slots)", opi)
	}
}

// TestCABACKernels validates both Table 3 decode kernels bit-for-bit
// and pins the speedup band of the paper ([1.5, 1.7] on full fields;
// allow a wider band at test scale).
func TestCABACKernels(t *testing.T) {
	f := workloads.FieldI(4000)
	ref := workloads.CABACRef(f)
	opt := workloads.CABACOpt(f)
	runReference(t, ref)
	runReference(t, opt)

	d := config.ConfigD()
	mr := runOn(t, ref, d)
	mo := runOn(t, opt, d)
	speed := float64(mr.Stats.Instrs) / float64(mo.Stats.Instrs)
	if speed < 1.2 || speed > 2.5 {
		t.Errorf("CABAC speedup = %.2f, expected within [1.2, 2.5]", speed)
	}

	// The reference kernel also runs on the TM3260; the optimized one
	// must not schedule there.
	runOn(t, ref, config.ConfigA())
	if _, err := sched.Schedule(opt.Prog, config.ConfigA()); err == nil {
		t.Error("TM3260 accepted SUPER_CABAC operations")
	}
}

// TestCABACFieldOrdering: instructions-per-bit must rise from I to P to
// B fields (more maintenance per stream bit), as in Table 3.
func TestCABACFieldOrdering(t *testing.T) {
	d := config.ConfigD()
	perBit := func(f workloads.FieldType) float64 {
		m := runOn(t, workloads.CABACRef(f), d)
		return float64(m.Stats.Instrs) / float64(workloads.StreamBits(f))
	}
	i := perBit(workloads.FieldI(3000))
	p := perBit(workloads.FieldP(3000))
	bb := perBit(workloads.FieldB(3000))
	if !(i < p && p < bb) {
		t.Errorf("instr/bit I=%.1f P=%.1f B=%.1f, want I < P < B", i, p, bb)
	}
}

// TestMP3Synth validates the Table 4 power workload and its operating
// point (CPI must stay near 1: the working set is cache resident).
func TestMP3Synth(t *testing.T) {
	p := workloads.Small()
	p.MP3Granules = 96 // enough work to amortize the cold caches
	w := workloads.MP3Synth(p)
	runReference(t, w)
	m := runOn(t, w, config.ConfigD())
	if cpi := m.Stats.CPI(); cpi > 1.2 {
		t.Errorf("mp3_synth CPI = %.2f, expected close to 1.0", cpi)
	}
}

// TestMotionEstVariants validates all four ablation variants and pins
// the claim that the TM3270-specific features speed the kernel up.
func TestMotionEstVariants(t *testing.T) {
	mp := workloads.MEParams{W: 48, H: 32}
	d := config.ConfigD()

	ref := workloads.MotionEst(mp)
	runReference(t, ref)
	mref := runOn(t, ref, d)

	mp.UseFrac8 = true
	opt := workloads.MotionEst(mp)
	runReference(t, opt)
	mopt := runOn(t, opt, d)

	if mopt.Stats.Instrs >= mref.Stats.Instrs {
		t.Errorf("LD_FRAC8 variant executed %d instrs, reference %d — no gain",
			mopt.Stats.Instrs, mref.Stats.Instrs)
	}

	mp.Prefetch = true
	pf := workloads.MotionEst(mp)
	mpf := runOn(t, pf, d)
	if mpf.PF == nil || mpf.PF.Stats.Issued == 0 {
		t.Error("prefetch variant issued no prefetches")
	}

	// The base variant must re-compile for the TM3260; the frac8 one
	// must not.
	runOn(t, workloads.MotionEst(workloads.MEParams{W: 48, H: 32}), config.ConfigA())
	if _, err := sched.Schedule(opt.Prog, config.ConfigA()); err == nil {
		t.Error("TM3260 accepted LD_FRAC8")
	}
}

// TestVerifyAllKernels runs the independent schedule verifier over
// every registry workload on every configuration it supports.
func TestVerifyAllKernels(t *testing.T) {
	p := workloads.Small()
	targets := []config.Target{config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD()}
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tgt := range targets {
			if w.TM3270Only && !tgt.HasTM3270Ops {
				continue
			}
			code, err := sched.Schedule(w.Prog, tgt)
			if err != nil {
				t.Errorf("%s on %s: %v", name, tgt.Name, err)
				continue
			}
			if err := sched.Verify(code); err != nil {
				t.Errorf("%s on %s: %v", name, tgt.Name, err)
			}
		}
	}
}

// TestMpeg2SuperIDCT validates the SUPER_DUALIMIX texture-pipeline
// variant bit-for-bit and checks it cuts executed operations on the
// TM3270 (paper reference [13]: new operations improve the 8x8 texture
// pipeline).
func TestMpeg2SuperIDCT(t *testing.T) {
	p := workloads.Small()
	base := runOn(t, mustBuild(t)(workloads.Mpeg2B(p)), config.ConfigD())
	sup := runOn(t, mustBuild(t)(workloads.Mpeg2Super(p)), config.ConfigD())
	if sup.Stats.ExecOps >= base.Stats.ExecOps {
		t.Errorf("super variant executes %d ops, base %d: no reduction",
			sup.Stats.ExecOps, base.Stats.ExecOps)
	}
	// In this memory-staged IDCT the super lengthens the dependence
	// chain (latency 4 + combining add), so the instruction count may
	// rise somewhat even as operations drop — the honest trade-off the
	// ablation documents. Cap the regression.
	if sup.Stats.Instrs > base.Stats.Instrs*5/4 {
		t.Errorf("super variant instruction count regressed too far (%d vs %d)",
			sup.Stats.Instrs, base.Stats.Instrs)
	}
	if _, err := sched.Schedule(mustBuild(t)(workloads.Mpeg2Super(p)).Prog, config.ConfigA()); err == nil {
		t.Error("TM3260 accepted SUPER_DUALIMIX")
	}
}

// TestUpconv validates the temporal up-conversion workload and its
// prefetch benefit on a streaming-sized frame ([14]: prefetching alone
// improves performance by more than 20%... at SD scale; require a
// visible gain here).
func TestUpconv(t *testing.T) {
	p := workloads.Small()
	p.ImageW, p.ImageH = 320, 64
	runReference(t, workloads.Upconv(p, false))
	d := config.ConfigD()
	off := runOn(t, workloads.Upconv(p, false), d)
	on := runOn(t, workloads.Upconv(p, true), d)
	if on.PF == nil || on.PF.Stats.Issued == 0 {
		t.Fatal("prefetch variant issued nothing")
	}
	if on.Stats.Cycles >= off.Stats.Cycles {
		t.Errorf("prefetch did not help: %d vs %d cycles", on.Stats.Cycles, off.Stats.Cycles)
	}
	// The portable variant must also compile for the TM3260.
	runOn(t, workloads.Upconv(p, false), config.ConfigA())
}
