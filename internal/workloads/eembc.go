package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

// Planar image bases of the EEMBC-style kernels.
const (
	// Stream bases are staggered by multiples of 13 cache lines so
	// concurrent planar streams do not collide on the same cache sets
	// (real buffers are not set-aligned either).
	imgRBase = 0x0600_0000
	imgGBase = 0x0610_0680
	imgBBase = 0x0620_0d00
	outYBase = 0x0630_1380
	outUBase = 0x0640_1a00
	outVBase = 0x0650_2080
	grayIn   = 0x0660_0000
	grayOut  = 0x0670_0680
	cmykBase = 0x0680_0d00
)

func initRGB(p Params) func(*mem.Func) error {
	return func(m *mem.Func) error {
		video.FillTestPattern(m, video.NewFrame(imgRBase, p.ImageW, p.ImageH), 101)
		video.FillTestPattern(m, video.NewFrame(imgGBase, p.ImageW, p.ImageH), 202)
		video.FillTestPattern(m, video.NewFrame(imgBBase, p.ImageW, p.ImageH), 303)
		return nil
	}
}

// rgbRegions declares the three input planes of the RGB kernels.
func rgbRegions(p Params) []mem.Region {
	n := p.ImageW * p.ImageH
	return []mem.Region{
		region("r", imgRBase, n),
		region("g", imgGBase, n),
		region("b", imgBBase, n),
	}
}

// planarOutRegions declares the three planar output components.
func planarOutRegions(p Params) []mem.Region {
	n := p.ImageW * p.ImageH
	return []mem.Region{
		region("out0", outYBase, n),
		region("out1", outUBase, n),
		region("out2", outVBase, n),
	}
}

func rgbAt(m *mem.Func, p Params, i int) (int32, int32, int32) {
	return int32(m.ByteAt(imgRBase + uint32(i))),
		int32(m.ByteAt(imgGBase + uint32(i))),
		int32(m.ByteAt(imgBBase + uint32(i)))
}

// Filter is the EEMBC-style 3x3 high-pass (sharpen) gray filter:
// out = clip8(5*c - up - down - left - right) over the image interior.
func Filter(p Params) *Spec {
	b := prog.NewBuilder("filter")
	w := int32(p.ImageW)

	rUp, rCur, rDn, rOut := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rows, xi, cond := b.Reg(), b.Reg(), b.Reg()
	aC, aU, aD, aO := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	cur, up, dn, nxt, prv, lft, rgt := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	hC, lC, hU, lU, hD, lD, hL, lL, hR, lR := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	c5h, c5l, sh, sl, dh, dl, t1, t2, outw := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

	b.Label("rowloop")
	b.Imm(xi, 4)
	b.Label("xloop")
	b.Add(aC, rCur, xi)
	b.Add(aU, rUp, xi)
	b.Add(aD, rDn, xi)
	b.Add(aO, rOut, xi)
	b.Ld32D(cur, aC, 0).InGroup(1)
	b.Ld32D(prv, aC, -4).InGroup(1)
	b.Ld32D(nxt, aC, 4).InGroup(1)
	b.Ld32D(up, aU, 0).InGroup(1)
	b.Ld32D(dn, aD, 0).InGroup(1)
	b.FunShift3(lft, prv, cur)
	b.FunShift1(rgt, cur, nxt)
	// Expand bytes to 2x16 lanes.
	for _, e := range [][3]prog.VReg{{cur, hC, lC}, {up, hU, lU}, {dn, hD, lD}, {lft, hL, lL}, {rgt, hR, lR}} {
		b.MergeMSB(e[1], prog.Zero, e[0])
		b.MergeLSB(e[2], prog.Zero, e[0])
	}
	// 5*c: lanes stay below 2^16, so a whole-word shift is lane-safe.
	b.AslI(c5h, hC, 2)
	b.Add(c5h, c5h, hC)
	b.AslI(c5l, lC, 2)
	b.Add(c5l, c5l, lC)
	b.Add(sh, hU, hD)
	b.Add(t1, hL, hR)
	b.Add(sh, sh, t1)
	b.Add(sl, lU, lD)
	b.Add(t2, lL, lR)
	b.Add(sl, sl, t2)
	// Per-lane signed subtract, then clip to [0,255].
	b.DspDualSub(dh, c5h, sh)
	b.DspDualSub(dl, c5l, sl)
	b.DualUClipI(dh, dh, 8)
	b.DualUClipI(dl, dl, 8)
	// Pack the four lanes back into bytes.
	b.LsrI(t1, dh, 16)
	b.PackBytes(t1, t1, dh)
	b.LsrI(t2, dl, 16)
	b.PackBytes(t2, t2, dl)
	b.Pack16LSB(outw, t1, t2)
	b.St32D(aO, 0, outw).InGroup(2)
	b.AddI(xi, xi, 4)
	b.LesI(cond, xi, w-8)
	b.JmpT(cond, "xloop")
	// Advance row pointers.
	b.AddI(rUp, rUp, w)
	b.AddI(rCur, rCur, w)
	b.AddI(rDn, rDn, w)
	b.AddI(rOut, rOut, w)
	b.AddI(rows, rows, -1)
	b.GtrI(cond, rows, 0)
	b.JmpT(cond, "rowloop")
	pr := b.MustProgram()

	return &Spec{
		Name:        "filter",
		Description: "3x3 high-pass gray filter (EEMBC consumer)",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			rUp:  grayIn,
			rCur: grayIn + uint32(p.ImageW),
			rDn:  grayIn + uint32(2*p.ImageW),
			rOut: grayOut + uint32(p.ImageW),
			rows: uint32(p.ImageH - 2),
		},
		Init: func(m *mem.Func) error {
			video.FillTestPattern(m, video.NewFrame(grayIn, p.ImageW, p.ImageH), 404)
			return nil
		},
		Regions: []mem.Region{
			region("in", grayIn, p.ImageW*p.ImageH),
			region("out", grayOut, p.ImageW*p.ImageH),
		},
		Check: func(m *mem.Func) error {
			at := func(x, y int) int32 { return int32(m.ByteAt(grayIn + uint32(y*p.ImageW+x))) }
			for y := 1; y < p.ImageH-1; y++ {
				for x := 4; x < p.ImageW-8; x++ {
					want := clip8(5*at(x, y) - at(x, y-1) - at(x, y+1) - at(x-1, y) - at(x+1, y))
					got := m.ByteAt(grayOut + uint32(y*p.ImageW+x))
					if got != want {
						return fmt.Errorf("filter: pixel (%d,%d) = %d, want %d", x, y, got, want)
					}
				}
			}
			return nil
		},
	}
}

// colorKernel builds a per-pixel color-space conversion using ifir16
// dot products: comp = clip(((hiCoef·(r,g) + loCoef·(b,1)) >> 8) + off).
type colorComp struct {
	coefRG, coefB1 uint32 // DUAL16 coefficient pairs (rounding in B1.lo)
	offset         int32
	signedOut      bool
	outBase        uint32
}

func buildColorKernel(name string, p Params, comps []colorComp) (*prog.Program, map[prog.VReg]uint32) {
	b := prog.NewBuilder(name)
	rPtr, gPtr, bPtr := b.Reg(), b.Reg(), b.Reg()
	cnt, cond := b.Reg(), b.Reg()
	outPtr := b.Regs(len(comps))
	coefA := make([]prog.VReg, len(comps))
	coefB := make([]prog.VReg, len(comps))
	for i, c := range comps {
		coefA[i] = b.ImmReg(c.coefRG)
		coefB[i] = b.ImmReg(c.coefB1)
	}
	idx := make([]prog.VReg, 4)
	for i := range idx {
		idx[i] = b.ImmReg(uint32(i))
	}
	rW, gW, bW := b.Reg(), b.Reg(), b.Reg()
	rr, gg, bb, prg, pb1, acc, t := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	pix := make([][]prog.VReg, len(comps))
	for i := range pix {
		pix[i] = b.Regs(4)
	}
	t1, t2, outw := b.Reg(), b.Reg(), b.Reg()

	b.Label("loop")
	b.Ld32D(rW, rPtr, 0).InGroup(1)
	b.Ld32D(gW, gPtr, 0).InGroup(1)
	b.Ld32D(bW, bPtr, 0).InGroup(1)
	for px := 0; px < 4; px++ {
		b.UByteSel(rr, rW, idx[3-px]) // byte 0 of the word is index 3
		b.UByteSel(gg, gW, idx[3-px])
		b.UByteSel(bb, bW, idx[3-px])
		b.Pack16LSB(prg, rr, gg)
		b.Pack16LSB(pb1, bb, prog.One)
		for ci, c := range comps {
			b.IFir16(acc, prg, coefA[ci])
			b.IFir16(t, pb1, coefB[ci])
			b.Add(acc, acc, t)
			b.AsrI(acc, acc, 8)
			if c.offset != 0 {
				b.AddI(acc, acc, c.offset)
			}
			if c.signedOut {
				b.ClipI(pix[ci][px], acc, 7)
			} else {
				b.UClipI(pix[ci][px], acc, 8)
			}
		}
	}
	for ci := range comps {
		b.PackBytes(t1, pix[ci][0], pix[ci][1])
		b.PackBytes(t2, pix[ci][2], pix[ci][3])
		b.Pack16LSB(outw, t1, t2)
		b.St32D(outPtr[ci], 0, outw).InGroup(2)
		b.AddI(outPtr[ci], outPtr[ci], 4)
	}
	b.AddI(rPtr, rPtr, 4)
	b.AddI(gPtr, gPtr, 4)
	b.AddI(bPtr, bPtr, 4)
	b.AddI(cnt, cnt, -4)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")

	args := map[prog.VReg]uint32{
		rPtr: imgRBase, gPtr: imgGBase, bPtr: imgBBase,
		cnt: uint32(p.ImageW * p.ImageH),
	}
	for i, c := range comps {
		args[outPtr[i]] = c.outBase
	}
	return b.MustProgram(), args
}

// RGB2YUV converts planar RGB to planar YUV (EEMBC consumer suite).
func RGB2YUV(p Params) *Spec {
	comps := []colorComp{
		{pack16(66, 129), pack16(25, 128), 16, false, outYBase},
		{pack16(-38, -74), pack16(112, 128), 128, false, outUBase},
		{pack16(112, -94), pack16(-18, 128), 128, false, outVBase},
	}
	pr, args := buildColorKernel("rgb2yuv", p, comps)
	n := p.ImageW * p.ImageH
	return &Spec{
		Name:        "rgb2yuv",
		Description: "RGB to YUV color conversion (EEMBC consumer)",
		Prog:        pr,
		Args:        args,
		Init:        initRGB(p),
		Regions:     append(rgbRegions(p), planarOutRegions(p)...),
		Check: func(m *mem.Func) error {
			for i := 0; i < n; i++ {
				r, g, bb := rgbAt(m, p, i)
				wantY := clip8((66*r+129*g+25*bb+128)>>8 + 16)
				wantU := clip8((-38*r-74*g+112*bb+128)>>8 + 128)
				wantV := clip8((112*r-94*g-18*bb+128)>>8 + 128)
				if got := m.ByteAt(outYBase + uint32(i)); got != wantY {
					return fmt.Errorf("rgb2yuv: Y[%d] = %d, want %d", i, got, wantY)
				}
				if got := m.ByteAt(outUBase + uint32(i)); got != wantU {
					return fmt.Errorf("rgb2yuv: U[%d] = %d, want %d", i, got, wantU)
				}
				if got := m.ByteAt(outVBase + uint32(i)); got != wantV {
					return fmt.Errorf("rgb2yuv: V[%d] = %d, want %d", i, got, wantV)
				}
			}
			return nil
		},
	}
}

// RGB2YIQ converts planar RGB to YIQ (EEMBC consumer suite). I and Q
// are signed and clipped to [-128,127].
func RGB2YIQ(p Params) *Spec {
	comps := []colorComp{
		{pack16(77, 150), pack16(29, 128), 0, false, outYBase},
		{pack16(153, -70), pack16(-83, 128), 0, true, outUBase},
		{pack16(54, -134), pack16(80, 128), 0, true, outVBase},
	}
	pr, args := buildColorKernel("rgb2yiq", p, comps)
	n := p.ImageW * p.ImageH
	return &Spec{
		Name:        "rgb2yiq",
		Description: "RGB to YIQ color conversion (EEMBC consumer)",
		Prog:        pr,
		Args:        args,
		Init:        initRGB(p),
		Regions:     append(rgbRegions(p), planarOutRegions(p)...),
		Check: func(m *mem.Func) error {
			for i := 0; i < n; i++ {
				r, g, bb := rgbAt(m, p, i)
				wantY := clip8((77*r + 150*g + 29*bb + 128) >> 8)
				wantI := clipS8((153*r - 70*g - 83*bb + 128) >> 8)
				wantQ := clipS8((54*r - 134*g + 80*bb + 128) >> 8)
				if got := m.ByteAt(outYBase + uint32(i)); got != wantY {
					return fmt.Errorf("rgb2yiq: Y[%d] = %d, want %d", i, got, wantY)
				}
				if got := m.ByteAt(outUBase + uint32(i)); got != wantI {
					return fmt.Errorf("rgb2yiq: I[%d] = %d, want %d", i, int8(got), int8(wantI))
				}
				if got := m.ByteAt(outVBase + uint32(i)); got != wantQ {
					return fmt.Errorf("rgb2yiq: Q[%d] = %d, want %d", i, int8(got), int8(wantQ))
				}
			}
			return nil
		},
	}
}

// RGB2CMYK converts planar RGB to interleaved CMYK (EEMBC consumer
// suite): k = 255 - max(r,g,b); c,m,y = max - r,g,b.
func RGB2CMYK(p Params) *Spec {
	b := prog.NewBuilder("rgb2cmyk")
	rPtr, gPtr, bPtr, oPtr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	cnt, cond, c255 := b.Reg(), b.Reg(), b.ImmReg(255)
	idx := make([]prog.VReg, 4)
	for i := range idx {
		idx[i] = b.ImmReg(uint32(i))
	}
	rW, gW, bW := b.Reg(), b.Reg(), b.Reg()
	rr, gg, bb, mx, kk, cc, mm, yy, t1, t2, outw := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

	b.Label("loop")
	b.Ld32D(rW, rPtr, 0).InGroup(1)
	b.Ld32D(gW, gPtr, 0).InGroup(1)
	b.Ld32D(bW, bPtr, 0).InGroup(1)
	for px := 0; px < 4; px++ {
		b.UByteSel(rr, rW, idx[3-px])
		b.UByteSel(gg, gW, idx[3-px])
		b.UByteSel(bb, bW, idx[3-px])
		b.Max(mx, rr, gg)
		b.Max(mx, mx, bb)
		b.Sub(kk, c255, mx)
		b.Sub(cc, mx, rr)
		b.Sub(mm, mx, gg)
		b.Sub(yy, mx, bb)
		b.PackBytes(t1, cc, mm)
		b.PackBytes(t2, yy, kk)
		b.Pack16LSB(outw, t1, t2)
		b.St32D(oPtr, int32(4*px), outw).InGroup(2)
	}
	b.AddI(rPtr, rPtr, 4)
	b.AddI(gPtr, gPtr, 4)
	b.AddI(bPtr, bPtr, 4)
	b.AddI(oPtr, oPtr, 16)
	b.AddI(cnt, cnt, -4)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")
	pr := b.MustProgram()

	n := p.ImageW * p.ImageH
	return &Spec{
		Name:        "rgb2cmyk",
		Description: "RGB to CMYK color conversion (EEMBC consumer)",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			rPtr: imgRBase, gPtr: imgGBase, bPtr: imgBBase, oPtr: cmykBase,
			cnt: uint32(n),
		},
		Init:    initRGB(p),
		Regions: append(rgbRegions(p), region("cmyk", cmykBase, 4*n)),
		Check: func(m *mem.Func) error {
			for i := 0; i < n; i++ {
				r, g, bb := rgbAt(m, p, i)
				mx := r
				if g > mx {
					mx = g
				}
				if bb > mx {
					mx = bb
				}
				want := []byte{byte(mx - r), byte(mx - g), byte(mx - bb), byte(255 - mx)}
				for j, w := range want {
					if got := m.ByteAt(cmykBase + uint32(4*i+j)); got != w {
						return fmt.Errorf("rgb2cmyk: px %d comp %d = %d, want %d", i, j, got, w)
					}
				}
			}
			return nil
		},
	}
}
