package workloads

import (
	"tm3270/internal/mem"
	"tm3270/internal/prog"
)

const (
	memSrcBase = 0x0200_0000
	memDstBase = 0x0300_0680
)

// Memset sets a memory region to a predefined value (Table 5). The
// inner loop is unrolled to 16 word stores with two stores per
// instruction, the idiom the TriMedia compiler produces for memset, and
// allocates each fully-overwritten cache line with allocd first — the
// classic TriMedia memset optimization that avoids fetching lines that
// are about to be overwritten (the region must be line aligned, which
// the libc entry point guarantees by scalar head/tail handling).
func Memset(p Params) *Spec {
	b := prog.NewBuilder("memset")
	dst, val, cnt, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Label("loop")
	b.AllocD(dst, 0)
	for k := 0; k < 16; k++ {
		b.St32D(dst, int32(4*k), val)
	}
	b.AddI(dst, dst, 64)
	b.AddI(cnt, cnt, -64)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")
	pr := b.MustProgram()

	bytes := p.MemKB * 1024
	const pattern = 0x5a5a5a5a
	return &Spec{
		Name:        "memset",
		Description: "sets a region to a pre-defined value",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			dst: memDstBase, val: pattern, cnt: uint32(bytes),
		},
		Regions: []mem.Region{region("dst", memDstBase, bytes)},
		Check: func(m *mem.Func) error {
			want := make([]byte, bytes)
			for i := range want {
				want[i] = 0x5a
			}
			return checkRegion(m, memDstBase, want, "memset")
		},
	}
}

// Memcpy copies a memory region (Table 5). Eight loads and eight stores
// per iteration; the load-issue width (two per instruction on the
// TM3260, one on the TM3270) and the write-miss policy dominate its
// behaviour — it is memory bound on every configuration (Section 6).
func Memcpy(p Params) *Spec {
	b := prog.NewBuilder("memcpy")
	src, dst, cnt, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	v := b.Regs(8)
	b.Label("loop")
	for k := 0; k < 8; k++ {
		b.Ld32D(v[k], src, int32(4*k)).InGroup(1)
	}
	for k := 0; k < 8; k++ {
		b.St32D(dst, int32(4*k), v[k]).InGroup(2)
	}
	b.AddI(src, src, 32)
	b.AddI(dst, dst, 32)
	b.AddI(cnt, cnt, -32)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")
	pr := b.MustProgram()

	bytes := p.MemKB * 1024
	return &Spec{
		Name:        "memcpy",
		Description: "copies a region",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			src: memSrcBase, dst: memDstBase, cnt: uint32(bytes),
		},
		Regions: []mem.Region{
			region("src", memSrcBase, bytes),
			region("dst", memDstBase, bytes),
		},
		Init: func(m *mem.Func) error {
			for i := 0; i < bytes; i++ {
				m.SetByte(memSrcBase+uint32(i), byte(i*31+7))
			}
			return nil
		},
		Check: func(m *mem.Func) error {
			want := make([]byte, bytes)
			for i := range want {
				want[i] = byte(i*31 + 7)
			}
			return checkRegion(m, memDstBase, want, "memcpy")
		},
	}
}
