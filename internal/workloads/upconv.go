package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

// Temporal up-conversion layout.
const (
	upPrevBase = 0x0d00_0000
	upNextBase = 0x0d40_0680
	upOutBase  = 0x0d80_0d00
	upMVBase   = 0x0dc0_1380
)

// Upconv is the temporal video up-conversion workload of the paper's
// reference [14]: an interpolated frame is synthesized between two
// source frames by motion-compensated averaging — each 8x8 block reads
// a block from the previous frame displaced by +mv/2 and from the next
// frame by -mv/2 and blends them with quadavg. With prefetch enabled,
// two regions cover the source frames with a one-row stride ([14]
// reports prefetching alone buys more than 20%).
func Upconv(p Params, pf bool) *Spec {
	name := "upconv"
	if pf {
		name += "_pf"
	}
	w, h := p.ImageW, p.ImageH
	stride := int32(w)
	blocksX, blocksY := w/8, h/8

	b := prog.NewBuilder(name)
	prevPtr, nextPtr, outPtr, mvPtr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	strideReg := b.ImmReg(uint32(stride))
	rowAdv := b.ImmReg(uint32(7 * stride))
	three := b.ImmReg(3)
	bxCnt, byCnt, cond := b.Reg(), b.Reg(), b.Reg()
	mvw, mvX, mvY, t := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	pRow, nRow, oRow := b.Reg(), b.Reg(), b.Reg()
	wp, wn, wo := b.Reg(), b.Reg(), b.Reg()

	if pf {
		mmio := b.ImmReg(prefetch.MMIOBase)
		for i, base := range []uint32{upPrevBase, upNextBase} {
			off := int32(16 * i)
			b.Imm(t, base)
			b.St32D(mmio, off, t)
			b.Imm(t, base+uint32(w*h))
			b.St32D(mmio, off+4, t)
			b.St32D(mmio, off+8, strideReg)
		}
	}

	b.Imm(byCnt, 0)
	b.Label("byloop")
	b.Imm(bxCnt, 0)
	b.Label("bxloop")
	// Per-block motion vector: the forward displacement is +mv/2 into
	// the previous frame and -mv/2 into the next, both word aligned.
	b.Ld32D(mvw, mvPtr, 0).InGroup(3)
	b.AsrI(mvX, mvw, 16)
	b.AsrI(mvX, mvX, 1)
	b.AndInv(mvX, mvX, three)
	b.Sex16(mvY, mvw)
	b.AsrI(mvY, mvY, 1)
	b.Mul(t, mvY, strideReg)
	b.Add(pRow, prevPtr, t)
	b.Add(pRow, pRow, mvX)
	b.Sub(nRow, nextPtr, t)
	b.Sub(nRow, nRow, mvX)
	b.Mov(oRow, outPtr)
	for r := 0; r < 8; r++ {
		for wd := 0; wd < 2; wd++ {
			b.Ld32D(wp, pRow, int32(4*wd)).InGroup(1)
			b.Ld32D(wn, nRow, int32(4*wd)).InGroup(2)
			b.QuadAvg(wo, wp, wn)
			b.St32D(oRow, int32(4*wd), wo).InGroup(4)
		}
		b.Add(pRow, pRow, strideReg)
		b.Add(nRow, nRow, strideReg)
		b.Add(oRow, oRow, strideReg)
	}
	b.AddI(mvPtr, mvPtr, 4)
	b.AddI(prevPtr, prevPtr, 8)
	b.AddI(nextPtr, nextPtr, 8)
	b.AddI(outPtr, outPtr, 8)
	b.AddI(bxCnt, bxCnt, 1)
	b.LesI(cond, bxCnt, int32(blocksX))
	b.JmpT(cond, "bxloop")
	b.Add(prevPtr, prevPtr, rowAdv)
	b.Add(nextPtr, nextPtr, rowAdv)
	b.Add(outPtr, outPtr, rowAdv)
	b.AddI(byCnt, byCnt, 1)
	b.LesI(cond, byCnt, int32(blocksY))
	b.JmpT(cond, "byloop")
	pr := b.MustProgram()

	// Motion field: one vector per 8x8 block, clamped so both displaced
	// blocks stay inside their frames.
	mvs := video.GenerateMVField(blocksX, blocksY, 0.3, 77)
	clamped := make([][2]int, len(mvs))
	for i, mv := range mvs {
		bx, by := i%blocksX, i/blocksX
		x, y := int(mv.X), int(mv.Y)
		// After halving and alignment, |x/2| <= 8*min(bx, blocksX-1-bx).
		limX := 2 * 8 * minInt(bx, blocksX-1-bx)
		limY := 2 * 8 * minInt(by, blocksY-1-by)
		x = clampI(x, -limX, limX)
		y = clampI(y, -limY, limY)
		clamped[i] = [2]int{x, y}
	}

	return &Spec{
		Name:        name,
		Description: "motion-compensated temporal frame up-conversion ([14])",
		Prog:        pr,
		TM3270Only:  pf,
		Args: map[prog.VReg]uint32{
			prevPtr: upPrevBase, nextPtr: upNextBase,
			outPtr: upOutBase, mvPtr: upMVBase,
		},
		Regions: appendMMIO(pf, []mem.Region{
			region("prev", upPrevBase, w*h),
			region("next", upNextBase, w*h),
			region("out", upOutBase, w*h),
			region("mv", upMVBase, 4*len(mvs)),
		}),
		Init: func(m *mem.Func) error {
			video.FillTestPattern(m, video.NewFrame(upPrevBase, w, h), 61)
			video.FillTestPattern(m, video.NewFrame(upNextBase, w, h), 62)
			for i, mv := range clamped {
				m.Store(upMVBase+uint32(4*i), 2, uint64(uint16(int16(mv[0]))))
				m.Store(upMVBase+uint32(4*i)+2, 2, uint64(uint16(int16(mv[1]))))
			}
			return nil
		},
		Check: func(m *mem.Func) error {
			for i, mv := range clamped {
				bx, by := i%blocksX, i/blocksX
				dx, dy := (mv[0]>>1)&^3, mv[1]>>1
				for r := 0; r < 8; r++ {
					for c := 0; c < 8; c++ {
						px, py := bx*8+c, by*8+r
						pv := uint32(m.ByteAt(upPrevBase + uint32((py+dy)*w+px+dx)))
						nv := uint32(m.ByteAt(upNextBase + uint32((py-dy)*w+px-dx)))
						want := byte((pv + nv + 1) / 2)
						if got := m.ByteAt(upOutBase + uint32(py*w+px)); got != want {
							return fmt.Errorf("upconv: block %d px (%d,%d) = %d, want %d", i, c, r, got, want)
						}
					}
				}
			}
			return nil
		},
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
