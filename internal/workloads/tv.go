package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

const (
	fieldABase  = 0x0700_0000
	fieldBBase  = 0x0710_0680
	fieldCBase  = 0x0720_0d00
	deintBase   = 0x0730_1380
	filmResBase = 0x0740_0000
)

// filmDetThreshold is the per-pixel motion threshold of the film
// detector.
const filmDetThreshold = 24

// FilmDet is the film-detection (3:2 pulldown) algorithm of Table 5:
// it accumulates the sum of absolute differences between two successive
// fields and counts pixels whose difference exceeds a threshold, the two
// statistics a pulldown detector thresholds over a field period.
func FilmDet(p Params) *Spec {
	b := prog.NewBuilder("filmdet")
	aPtr, bPtr, res := b.Reg(), b.Reg(), b.Reg()
	cnt, cond := b.Reg(), b.Reg()
	sad, exceed := b.Reg(), b.Reg()
	wA, wB, mx, mn, d, ex, nz, t := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	thr := b.ImmReg(filmDetThreshold<<24 | filmDetThreshold<<16 | filmDetThreshold<<8 | filmDetThreshold)
	ones := b.ImmReg(0x01010101)

	b.Imm(sad, 0)
	b.Imm(exceed, 0)
	b.Label("loop")
	b.Ld32D(wA, aPtr, 0).InGroup(1)
	b.Ld32D(wB, bPtr, 0).InGroup(2)
	// Byte-wise |a-b| = max(a,b) - min(a,b): per-byte difference never
	// borrows across lanes.
	b.QuadUMax(mx, wA, wB)
	b.QuadUMin(mn, wA, wB)
	b.Sub(d, mx, mn)
	b.UME8UU(t, wA, wB)
	b.Add(sad, sad, t)
	// Per-byte exceed counting: max(d,thr)-thr is zero for bytes within
	// the threshold; clamp to one and sum the lanes with ifir8ui.
	b.QuadUMax(ex, d, thr)
	b.Sub(ex, ex, thr)
	b.QuadUMin(nz, ex, ones)
	b.IFir8UI(t, nz, ones)
	b.Add(exceed, exceed, t)
	b.AddI(aPtr, aPtr, 4)
	b.AddI(bPtr, bPtr, 4)
	b.AddI(cnt, cnt, -4)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")
	b.St32D(res, 0, sad)
	b.St32D(res, 4, exceed)
	pr := b.MustProgram()

	n := p.ImageW * p.FieldH
	return &Spec{
		Name:        "filmdet",
		Description: "film (3:2 pulldown) detection over two fields",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			aPtr: fieldABase, bPtr: fieldBBase, res: filmResBase, cnt: uint32(n),
		},
		Regions: []mem.Region{
			region("fieldA", fieldABase, n),
			region("fieldB", fieldBBase, n),
			region("result", filmResBase, 8),
		},
		Init: func(m *mem.Func) error {
			video.FillTestPattern(m, video.NewFrame(fieldABase, p.ImageW, p.FieldH), 71)
			video.FillTestPattern(m, video.NewFrame(fieldBBase, p.ImageW, p.FieldH), 72)
			return nil
		},
		Check: func(m *mem.Func) error {
			var sad, exceed uint32
			for i := 0; i < n; i++ {
				a := int32(m.ByteAt(fieldABase + uint32(i)))
				bb := int32(m.ByteAt(fieldBBase + uint32(i)))
				d := a - bb
				if d < 0 {
					d = -d
				}
				sad += uint32(d)
				if d > filmDetThreshold {
					exceed++
				}
			}
			if got := uint32(m.Load(filmResBase, 4)); got != sad {
				return fmt.Errorf("filmdet: sad = %d, want %d", got, sad)
			}
			if got := uint32(m.Load(filmResBase+4, 4)); got != exceed {
				return fmt.Errorf("filmdet: exceed = %d, want %d", got, exceed)
			}
			return nil
		},
	}
}

// MajoritySel is the de-interlacer of Table 5: each output pixel is the
// per-byte median of three fields (the majority-select median filter),
// four pixels per iteration via the quad min/max operations.
func MajoritySel(p Params) *Spec {
	b := prog.NewBuilder("majority_sel")
	aPtr, bPtr, cPtr, oPtr := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	cnt, cond := b.Reg(), b.Reg()
	wA, wB, wC, t1, t2, t3, outw := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()

	b.Label("loop")
	b.Ld32D(wA, aPtr, 0).InGroup(1)
	b.Ld32D(wB, bPtr, 0).InGroup(2)
	b.Ld32D(wC, cPtr, 0).InGroup(3)
	// median(a,b,c) = max(min(a,b), min(max(a,b), c))
	b.QuadUMin(t1, wA, wB)
	b.QuadUMax(t2, wA, wB)
	b.QuadUMin(t3, t2, wC)
	b.QuadUMax(outw, t1, t3)
	b.St32D(oPtr, 0, outw).InGroup(4)
	b.AddI(aPtr, aPtr, 4)
	b.AddI(bPtr, bPtr, 4)
	b.AddI(cPtr, cPtr, 4)
	b.AddI(oPtr, oPtr, 4)
	b.AddI(cnt, cnt, -4)
	b.GtrI(cond, cnt, 0)
	b.JmpT(cond, "loop")
	pr := b.MustProgram()

	n := p.ImageW * p.FieldH
	return &Spec{
		Name:        "majority_sel",
		Description: "majority-select de-interlacer over three fields",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			aPtr: fieldABase, bPtr: fieldBBase, cPtr: fieldCBase, oPtr: deintBase,
			cnt: uint32(n),
		},
		Regions: []mem.Region{
			region("fieldA", fieldABase, n),
			region("fieldB", fieldBBase, n),
			region("fieldC", fieldCBase, n),
			region("out", deintBase, n),
		},
		Init: func(m *mem.Func) error {
			video.FillTestPattern(m, video.NewFrame(fieldABase, p.ImageW, p.FieldH), 81)
			video.FillTestPattern(m, video.NewFrame(fieldBBase, p.ImageW, p.FieldH), 82)
			video.FillTestPattern(m, video.NewFrame(fieldCBase, p.ImageW, p.FieldH), 83)
			return nil
		},
		Check: func(m *mem.Func) error {
			for i := 0; i < n; i++ {
				a := m.ByteAt(fieldABase + uint32(i))
				bb := m.ByteAt(fieldBBase + uint32(i))
				c := m.ByteAt(fieldCBase + uint32(i))
				mn, mx := a, a
				if bb < mn {
					mn = bb
				} else {
					mx = bb
				}
				med := c
				if c < mn {
					med = mn
				}
				if c > mx {
					med = mx
				}
				if got := m.ByteAt(deintBase + uint32(i)); got != med {
					return fmt.Errorf("majority_sel: px %d = %d, want %d (a=%d b=%d c=%d)", i, got, med, a, bb, c)
				}
			}
			return nil
		},
	}
}
