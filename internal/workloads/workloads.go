// Package workloads implements the paper's evaluation kernels and
// applications (Table 5) plus the CABAC decoding workloads of Table 3
// and the TM3270-specific ablation kernels, all written in the prog
// DSL against the TriMedia ISA, each with a pure-Go reference that
// validates the simulated output.
package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
)

// Spec is one runnable workload instance.
type Spec struct {
	Name        string
	Description string
	Prog        *prog.Program
	// Init populates the memory image (inputs, tables). It reports
	// input-generation failures instead of panicking.
	Init func(m *mem.Func) error
	// Args are the kernel argument registers.
	Args map[prog.VReg]uint32
	// Check validates the outputs against the Go reference.
	Check func(m *mem.Func) error
	// TM3270Only marks workloads using ISA extensions that the TM3260
	// cannot schedule (Table 3 / ablations).
	TM3270Only bool
	// Regions is the workload's declared memory map: every address the
	// kernel may legally touch lies in one of these. binverify uses it
	// to prove load/store addresses in-bounds; workloads that program
	// the prefetch engine include its MMIO window.
	Regions []mem.Region
}

// region builds one memory-map entry covering [base, base+size).
func region(name string, base uint32, size int) mem.Region {
	return mem.Region{Name: name, Lo: base, Hi: base + uint32(size)}
}

// appendMMIO adds the prefetch-engine register window to a memory map
// when the workload variant programs it.
func appendMMIO(pf bool, rs []mem.Region) []mem.Region {
	if pf {
		rs = append(rs, region("pf-mmio", prefetch.MMIOBase, prefetch.MMIOSize))
	}
	return rs
}

// Params scales the workloads. Full() matches the paper's evaluation
// sizes; Small() keeps unit tests fast.
type Params struct {
	MemKB  int // memset/memcpy region (paper: 64 KB)
	ImageW int // EEMBC and TV kernels (paper: standard definition)
	ImageH int
	FieldH int // TV kernels operate on fields (paper: 720x240)
	Mpeg2W int
	Mpeg2H int
	// Mpeg2Frames chains N decoded frames, each motion compensated from
	// the previous one (steady-state cache behaviour); 0 means 1.
	Mpeg2Frames int
	CabacIBits  int // Table 3 bits per field type
	CabacPBits  int
	CabacBBits  int
	MP3Granules int
}

// Full returns the paper's evaluation sizes.
func Full() Params {
	return Params{
		MemKB:  64,
		ImageW: 720, ImageH: 480,
		FieldH: 240,
		Mpeg2W: 720, Mpeg2H: 480,
		Mpeg2Frames: 3,
		CabacIBits:  215408, CabacPBits: 103544, CabacBBits: 153035,
		MP3Granules: 64,
	}
}

// Small returns fast sizes for tests, preserving all structure.
func Small() Params {
	return Params{
		MemKB:  4,
		ImageW: 64, ImageH: 32,
		FieldH: 16,
		Mpeg2W: 64, Mpeg2H: 48,
		CabacIBits: 4000, CabacPBits: 3000, CabacBBits: 2500,
		MP3Granules: 4,
	}
}

// Table5Names lists the Figure 7 evaluation set in paper order. These
// kernels use only the common TriMedia ISA ("optimized for the TM3260,
// re-compiled for the TM3270 without modification").
func Table5Names() []string {
	return []string{
		"memset", "memcpy", "filter", "rgb2yuv", "rgb2cmyk", "rgb2yiq",
		"mpeg2_a", "mpeg2_b", "mpeg2_c", "filmdet", "majority_sel",
	}
}

// Table5 builds the Figure 7 evaluation set in paper order.
func Table5(p Params) ([]*Spec, error) {
	var set []*Spec
	for _, name := range Table5Names() {
		w, err := ByName(name, p)
		if err != nil {
			return nil, err
		}
		set = append(set, w)
	}
	return set, nil
}

func checkRegion(m *mem.Func, base uint32, want []byte, what string) error {
	for i, w := range want {
		if got := m.ByteAt(base + uint32(i)); got != w {
			return fmt.Errorf("%s: byte %d = %#x, want %#x", what, i, got, w)
		}
	}
	return nil
}

func clip8(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func clipS8(v int32) byte {
	if v < -128 {
		v = -128
	}
	if v > 127 {
		v = 127
	}
	return byte(int8(v))
}

// pack16 packs two signed 16-bit values into the DUAL16 constant form
// used for ifir16 coefficient pairs.
func pack16(hi, lo int16) uint32 {
	return uint32(uint16(hi))<<16 | uint32(uint16(lo))
}

// ByName builds a workload by its registry name. Besides the Table 5
// set, the registry exposes the CABAC fields of Table 3, the MP3-shaped
// power workload, the Figure 3 block walk and the motion-estimation
// ablation variants.
func ByName(name string, p Params) (*Spec, error) {
	switch name {
	case "memset":
		return Memset(p), nil
	case "memcpy":
		return Memcpy(p), nil
	case "filter":
		return Filter(p), nil
	case "rgb2yuv":
		return RGB2YUV(p), nil
	case "rgb2cmyk":
		return RGB2CMYK(p), nil
	case "rgb2yiq":
		return RGB2YIQ(p), nil
	case "mpeg2_a":
		return Mpeg2A(p)
	case "mpeg2_b":
		return Mpeg2B(p)
	case "mpeg2_c":
		return Mpeg2C(p)
	case "mpeg2_super":
		return Mpeg2Super(p)
	case "filmdet":
		return FilmDet(p), nil
	case "majority_sel":
		return MajoritySel(p), nil
	case "mp3_synth":
		return MP3Synth(p), nil
	case "blockwalk":
		return BlockWalk(p, false), nil
	case "blockwalk_pf":
		return BlockWalk(p, true), nil
	case "upconv":
		return Upconv(p, false), nil
	case "upconv_pf":
		return Upconv(p, true), nil
	case "cabac_ref_i":
		return CABACRef(FieldI(p.CabacIBits)), nil
	case "cabac_ref_p":
		return CABACRef(FieldP(p.CabacPBits)), nil
	case "cabac_ref_b":
		return CABACRef(FieldB(p.CabacBBits)), nil
	case "cabac_opt_i":
		return CABACOpt(FieldI(p.CabacIBits)), nil
	case "cabac_opt_p":
		return CABACOpt(FieldP(p.CabacPBits)), nil
	case "cabac_opt_b":
		return CABACOpt(FieldB(p.CabacBBits)), nil
	case "me_ref":
		return MotionEst(MEParams{W: p.ImageW, H: p.ImageH}), nil
	case "me_frac8":
		return MotionEst(MEParams{W: p.ImageW, H: p.ImageH, UseFrac8: true}), nil
	case "me_frac8_pf":
		return MotionEst(MEParams{W: p.ImageW, H: p.ImageH, UseFrac8: true, Prefetch: true}), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (see Names)", name)
}

// Names lists every registry name.
func Names() []string {
	return []string{
		"memset", "memcpy", "filter", "rgb2yuv", "rgb2cmyk", "rgb2yiq",
		"mpeg2_a", "mpeg2_b", "mpeg2_c", "mpeg2_super", "filmdet", "majority_sel",
		"mp3_synth", "blockwalk", "blockwalk_pf", "upconv", "upconv_pf",
		"cabac_ref_i", "cabac_ref_p", "cabac_ref_b",
		"cabac_opt_i", "cabac_opt_p", "cabac_opt_b",
		"me_ref", "me_frac8", "me_frac8_pf",
	}
}
