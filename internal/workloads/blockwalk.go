package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

const walkImgBase = 0x0c00_0000
const walkResBase = 0x0c80_0000

// BlockWalk is the Figure 3 scenario: an image processed at 4x4-block
// granularity, blocks left-to-right and top-down, summing pixel values.
// With prefetch enabled, region 0 covers the image with a stride of
// four image rows, so the next row of blocks streams into the data
// cache while the current one is processed — if processing a block row
// takes longer than prefetching the next, the walk incurs no stalls.
func BlockWalk(p Params, pf bool) *Spec {
	name := "blockwalk"
	if pf {
		name += "_pf"
	}
	w, h := p.ImageW, p.ImageH
	stride := int32(w)

	b := prog.NewBuilder(name)
	imgPtr, resPtr := b.Reg(), b.Reg()
	strideReg := b.ImmReg(uint32(stride))
	ones := b.ImmReg(0x01010101)
	acc, bxCnt, byCnt, cond := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rowPtr, blkPtr, wv, t := b.Reg(), b.Reg(), b.Reg(), b.Reg()

	if pf {
		mmio := b.ImmReg(prefetch.MMIOBase)
		b.Imm(t, walkImgBase)
		b.St32D(mmio, 0, t)
		b.Imm(t, walkImgBase+uint32(w*h))
		b.St32D(mmio, 4, t)
		b.Imm(t, uint32(4*stride)) // one block row ahead
		b.St32D(mmio, 8, t)
	}

	b.Imm(acc, 0)
	b.Imm(byCnt, 0)
	b.Mov(rowPtr, imgPtr)
	b.Label("byloop")
	b.Imm(bxCnt, 0)
	b.Mov(blkPtr, rowPtr)
	b.Label("bxloop")
	for r := 0; r < 4; r++ {
		if r == 0 {
			b.Ld32D(wv, blkPtr, 0).InGroup(1)
		} else {
			b.Ld32R(wv, blkPtr, t).InGroup(1)
		}
		if r < 3 {
			if r == 0 {
				b.Mov(t, strideReg)
			} else {
				b.Add(t, t, strideReg)
			}
		}
		b.IFir8UI(wv, wv, ones) // sum of the four bytes
		b.Add(acc, acc, wv)
	}
	b.AddI(blkPtr, blkPtr, 4)
	b.AddI(bxCnt, bxCnt, 1)
	b.LesI(cond, bxCnt, int32(w/4))
	b.JmpT(cond, "bxloop")
	b.AslI(t, strideReg, 2)
	b.Add(rowPtr, rowPtr, t)
	b.AddI(byCnt, byCnt, 1)
	b.LesI(cond, byCnt, int32(h/4))
	b.JmpT(cond, "byloop")
	b.St32D(resPtr, 0, acc)
	pr := b.MustProgram()

	return &Spec{
		Name:        name,
		Description: "4x4 block-order image walk (Figure 3 prefetch scenario)",
		Prog:        pr,
		TM3270Only:  pf,
		Args:        map[prog.VReg]uint32{imgPtr: walkImgBase, resPtr: walkResBase},
		Regions: appendMMIO(pf, []mem.Region{
			region("img", walkImgBase, w*h),
			region("result", walkResBase, 4),
		}),
		Init: func(m *mem.Func) error {
			video.FillTestPattern(m, video.NewFrame(walkImgBase, w, h), 55)
			return nil
		},
		Check: func(m *mem.Func) error {
			var want uint32
			for i := 0; i < w*h; i++ {
				want += uint32(m.ByteAt(walkImgBase + uint32(i)))
			}
			if got := uint32(m.Load(walkResBase, 4)); got != want {
				return fmt.Errorf("blockwalk: sum = %d, want %d", got, want)
			}
			return nil
		},
	}
}
