package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

// MP3-like workload layout.
const (
	mp3WinBase = 0x0900_0000 // 32 outputs x 16 window coefficients (int16)
	mp3SmpBase = 0x0901_0000 // subband sample history (int16)
	mp3OutBase = 0x0902_0000 // synthesized PCM (int16)
)

const mp3Shift = 15 // window coefficients in Q15

// mp3Ref computes the reference synthesis: one granule produces 32
// samples, sample j being a 16-tap dot product of window row j with
// the sample history starting at granule*32 + j.
func mp3Ref(win, smp []int16, granules int) []int16 {
	out := make([]int16, granules*32)
	for g := 0; g < granules; g++ {
		for j := 0; j < 32; j++ {
			var acc int64
			for k := 0; k < 16; k++ {
				acc += int64(win[j*16+k]) * int64(smp[g*32+j+k])
			}
			v := (acc + 1<<(mp3Shift-1)) >> mp3Shift
			if v > 32767 {
				v = 32767
			}
			if v < -32768 {
				v = -32768
			}
			out[g*32+j] = int16(v)
		}
	}
	return out
}

// MP3Synth is the MP3-decoder-shaped workload behind the Table 4 power
// measurement: the polyphase synthesis filterbank windowing stage, the
// computational core of MP3 decoding. Each pair of output samples
// shares its sample-history loads (the funshift2 trick re-aligns the
// 16-bit pairs), and all dot products run on ifir16 — dense MAC work
// over a cache-resident working set, i.e. a CPI close to 1.0 as the
// paper reports for MP3 decoding.
func MP3Synth(p Params) *Spec {
	granules := p.MP3Granules
	b := prog.NewBuilder("mp3_synth")
	winPtr, smpPtr, outPtr := b.Reg(), b.Reg(), b.Reg()
	gcnt, gcond := b.Reg(), b.Reg()
	round := b.ImmReg(1 << (mp3Shift - 1))
	dp, sp, op := b.Reg(), b.Reg(), b.Reg()
	sv := b.Regs(9) // 8 sample pairs + one extra for the odd alignment
	// Rotating registers for the coefficient loads and FIR results keep
	// the loop free of artificial WAR serialization.
	dw := b.Regs(4)
	fa := b.Regs(4)
	svOdd := b.Regs(2)
	accA, accB, t := b.Reg(), b.Reg(), b.Reg()

	b.Mov(sp, smpPtr)
	b.Mov(op, outPtr)
	b.Label("granule")
	b.Mov(dp, winPtr)
	for j := 0; j < 32; j += 2 {
		// Sample pairs shared by outputs j and j+1. Output j uses pairs
		// at byte offsets 2j + 4k; output j+1 re-aligns them with
		// funshift2. The ninth load covers j+1's last tap.
		for k := 0; k < 9; k++ {
			b.Ld32D(sv[k], sp, int32(2*j+4*k)).InGroup(1)
		}
		b.Imm(accA, 0)
		b.Imm(accB, 0)
		for k := 0; k < 8; k++ {
			d0, d1 := dw[(2*k)%4], dw[(2*k+1)%4]
			f0, f1 := fa[(2*k)%4], fa[(2*k+1)%4]
			so := svOdd[k%2]
			b.Ld32D(d0, dp, int32(32*j+4*k)).InGroup(2)
			b.IFir16(f0, sv[k], d0)
			b.Add(accA, accA, f0)
			b.Ld32D(d1, dp, int32(32*(j+1)+4*k)).InGroup(2)
			b.FunShift2(so, sv[k], sv[k+1])
			b.IFir16(f1, so, d1)
			b.Add(accB, accB, f1)
		}
		for half, acc := range []prog.VReg{accA, accB} {
			b.Add(t, acc, round)
			b.AsrI(t, t, mp3Shift)
			b.ClipI(t, t, 15)
			b.St16D(op, int32(2*(j+half)), t).InGroup(3)
		}
	}
	b.AddI(sp, sp, 64)
	b.AddI(op, op, 64)
	b.AddI(gcnt, gcnt, -1)
	b.GtrI(gcond, gcnt, 0)
	b.JmpT(gcond, "granule")
	pr := b.MustProgram()

	// Deterministic coefficients and samples.
	win := make([]int16, 32*16)
	smp := make([]int16, granules*32+64)
	rng := video.NewLCG(0x333)
	for i := range win {
		win[i] = int16(rng.Intn(3000) - 1500)
	}
	for i := range smp {
		smp[i] = int16(rng.Intn(2400) - 1200)
	}

	return &Spec{
		Name:        "mp3_synth",
		Description: "MP3 polyphase synthesis windowing (Table 4 power workload)",
		Prog:        pr,
		Args: map[prog.VReg]uint32{
			winPtr: mp3WinBase, smpPtr: mp3SmpBase, outPtr: mp3OutBase,
			gcnt: uint32(granules),
		},
		Regions: []mem.Region{
			region("window", mp3WinBase, 2*len(win)),
			region("samples", mp3SmpBase, 2*len(smp)),
			region("pcm", mp3OutBase, 2*32*granules),
		},
		Init: func(m *mem.Func) error {
			for i, v := range win {
				m.Store(mp3WinBase+uint32(2*i), 2, uint64(uint16(v)))
			}
			for i, v := range smp {
				m.Store(mp3SmpBase+uint32(2*i), 2, uint64(uint16(v)))
			}
			return nil
		},
		Check: func(m *mem.Func) error {
			want := mp3Ref(win, smp, granules)
			for i, w := range want {
				got := int16(m.Load(mp3OutBase+uint32(2*i), 2))
				if got != w {
					return fmt.Errorf("mp3_synth: sample %d = %d, want %d", i, got, w)
				}
			}
			return nil
		},
	}
}
