package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
	"tm3270/internal/video"
)

// Motion-estimation workload layout.
const (
	meCurBase = 0x0a00_0000 // current frame
	meRefBase = 0x0a80_0680 // reference frame
	meOutBase = 0x0b00_0000 // per-block (bestSAD, bestIdx) word pairs
)

// MEParams shapes the motion-estimation ablation kernel.
type MEParams struct {
	W, H     int  // frame dimensions (multiples of 8)
	UseFrac8 bool // LD_FRAC8 for the fractional stage (TM3270 extension)
	Prefetch bool // program a region over the reference frame rows
}

// MotionEst builds the motion-estimation kernel of the Section 6
// ablation ([12]): for every 8x8 block of the current frame (excluding
// a 4-pixel border), an exhaustive ±4 integer search (81 candidates)
// followed by eight fractional-x refinements at 1/16-pel resolution
// around the window center.
//
// The integer stage is identical in both variants (aligned loads shared
// across all nine dx candidates, funshift re-alignment, ume8uu SADs —
// TM3260-style optimized code). The variants differ in exactly the
// TM3270 features the paper credits with the additional >2x gain: the
// fractional stage uses LD_FRAC8 collapsed loads instead of a manual
// interpolation sequence, and the reference frame is covered by a
// hardware prefetch region.
func MotionEst(mp MEParams) *Spec {
	name := "me_ref"
	if mp.UseFrac8 {
		name = "me_frac8"
	}
	if mp.Prefetch {
		name += "_pf"
	}
	stride := int32(mp.W)
	blocksX := (mp.W - 8) / 8
	blocksY := (mp.H - 8) / 8

	b := prog.NewBuilder(name)
	curPtr, refPtr, outPtr := b.Reg(), b.Reg(), b.Reg()
	strideReg := b.ImmReg(uint32(stride))
	rowAdv := b.ImmReg(uint32(8*stride - int32(8*blocksX)))
	fracOff := b.ImmReg(uint32(4*stride + 4)) // window center offset
	big := b.ImmReg(1 << 30)
	bxCnt, byCnt, cond := b.Reg(), b.Reg(), b.Reg()

	cur := b.Regs(16) // current 8x8 block, two words per row
	w4 := b.Regs(4)   // shared aligned reference words of one row
	sadAcc := b.Regs(9)
	ra, rb, best, bestIdx, lt, idx := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rr, cc, dyc, dyc16, t, t2 := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	// Fractional-stage temporaries.
	fsad, rp, rp4, fa, fb := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	xh, xl, yh, yl, ph, pl := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	mask := b.ImmReg(0x0fff0fff)
	rnd8 := b.ImmReg(0x00080008)
	fr := b.Reg()

	if mp.Prefetch {
		// Program prefetch region 0 over the reference frame with a
		// one-row stride: while a window row is searched, the next is
		// already on its way (the Figure 3 discipline).
		mmio := b.ImmReg(prefetch.MMIOBase)
		b.Imm(t, meRefBase)
		b.St32D(mmio, 0, t)
		b.Imm(t, meRefBase+uint32(stride)*uint32(mp.H))
		b.St32D(mmio, 4, t)
		b.St32D(mmio, 8, strideReg)
	}

	b.Imm(byCnt, 0)
	b.Label("byloop")
	b.Imm(bxCnt, 0)
	b.Label("bxloop")

	// Load the current block into registers.
	b.Mov(cc, curPtr)
	for r := 0; r < 8; r++ {
		b.Ld32D(cur[2*r], cc, 0).InGroup(1)
		b.Ld32D(cur[2*r+1], cc, 4).InGroup(1)
		b.Add(cc, cc, strideReg)
	}
	b.Mov(best, big)
	b.Imm(bestIdx, 0)

	// Integer search: dy at run time, dx and rows unrolled. Each row's
	// four aligned words serve all nine dx candidates.
	b.Imm(dyc, 0)
	b.Mov(rr, refPtr)
	b.Label("dyloop")
	for dx := 0; dx < 9; dx++ {
		b.Imm(sadAcc[dx], 0)
	}
	b.Mov(cc, rr)
	for r := 0; r < 8; r++ {
		for k := 0; k < 4; k++ {
			b.Ld32D(w4[k], cc, int32(4*k)).InGroup(2)
		}
		for dx := 0; dx < 9; dx++ {
			wi, sh := dx/4, dx%4
			alignPair(b, ra, w4[wi], w4[wi+1], sh)
			// Second word: bytes dx+4..dx+7. For dx == 8 the shift is
			// zero, so the (out-of-range) upper word is never read.
			second := wi + 2
			if second > 3 {
				second = 3
			}
			alignPair(b, rb, w4[wi+1], w4[second], sh)
			b.UME8UU(t, ra, cur[2*r])
			b.Add(sadAcc[dx], sadAcc[dx], t)
			b.UME8UU(t2, rb, cur[2*r+1])
			b.Add(sadAcc[dx], sadAcc[dx], t2)
		}
		b.Add(cc, cc, strideReg)
	}
	b.AslI(dyc16, dyc, 4)
	for dx := 0; dx < 9; dx++ {
		b.ULes(lt, sadAcc[dx], best)
		b.Mov(best, sadAcc[dx]).WithGuard(lt)
		b.AddI(idx, dyc16, int32(dx))
		b.Mov(bestIdx, idx).WithGuard(lt)
	}
	b.Add(rr, rr, strideReg)
	b.AddI(dyc, dyc, 1)
	b.LesI(cond, dyc, 9)
	b.JmpT(cond, "dyloop")

	// Fractional-x refinement at the window center, 8 positions in
	// 1/16-pel steps.
	for f := 1; f < 16; f += 2 {
		b.Imm(fsad, 0)
		b.Add(rp, refPtr, fracOff)
		var k16f, kf prog.VReg
		if mp.UseFrac8 {
			b.Imm(fr, uint32(f))
		} else {
			k16f = b.ImmReg(pack16(int16(16-f), int16(16-f)))
			kf = b.ImmReg(pack16(int16(f), int16(f)))
		}
		for r := 0; r < 8; r++ {
			if mp.UseFrac8 {
				b.LdFrac8(fa, rp, fr).InGroup(2)
				b.AddI(rp4, rp, 4)
				b.LdFrac8(fb, rp4, fr).InGroup(2)
			} else {
				// Manual interpolation: (a*(16-f) + b*f + 8) >> 4 per
				// byte, lane-wise in 16-bit halves.
				b.Ld32D(w4[0], rp, 0).InGroup(2)
				b.Ld32D(w4[1], rp, 4).InGroup(2)
				b.Ld32D(w4[2], rp, 8).InGroup(2)
				interpWord(b, fa, w4[0], w4[1], k16f, kf, rnd8, mask, xh, xl, yh, yl, ph, pl)
				interpWord(b, fb, w4[1], w4[2], k16f, kf, rnd8, mask, xh, xl, yh, yl, ph, pl)
			}
			b.UME8UU(t, fa, cur[2*r])
			b.Add(fsad, fsad, t)
			b.UME8UU(t2, fb, cur[2*r+1])
			b.Add(fsad, fsad, t2)
			b.Add(rp, rp, strideReg)
		}
		b.ULes(lt, fsad, best)
		b.Mov(best, fsad).WithGuard(lt)
		b.Imm(idx, uint32(256+f))
		b.Mov(bestIdx, idx).WithGuard(lt)
	}

	// Store the block result and advance.
	b.St32D(outPtr, 0, best).InGroup(3)
	b.St32D(outPtr, 4, bestIdx).InGroup(3)
	b.AddI(outPtr, outPtr, 8)
	b.AddI(curPtr, curPtr, 8)
	b.AddI(refPtr, refPtr, 8)
	b.AddI(bxCnt, bxCnt, 1)
	b.LesI(cond, bxCnt, int32(blocksX))
	b.JmpT(cond, "bxloop")
	b.Add(curPtr, curPtr, rowAdv)
	b.Add(refPtr, refPtr, rowAdv)
	b.AddI(byCnt, byCnt, 1)
	b.LesI(cond, byCnt, int32(blocksY))
	b.JmpT(cond, "byloop")
	pr := b.MustProgram()

	return &Spec{
		Name:        name,
		Description: "8x8 motion estimation, +/-4 search with fractional refinement",
		Prog:        pr,
		TM3270Only:  mp.UseFrac8 || mp.Prefetch,
		Args: map[prog.VReg]uint32{
			curPtr: meCurBase + uint32(4*stride+4),
			refPtr: meRefBase,
			outPtr: meOutBase,
		},
		Regions: appendMMIO(mp.Prefetch, []mem.Region{
			region("cur", meCurBase, mp.W*mp.H),
			// ld_frac8 reads five bytes; pad the tail for the rightmost
			// fractional window positions.
			region("ref", meRefBase, mp.W*mp.H+8),
			region("out", meOutBase, 8*blocksX*blocksY),
		}),
		Init: func(m *mem.Func) error {
			video.FillTestPattern(m, video.NewFrame(meCurBase, mp.W, mp.H), 90)
			video.FillTestPattern(m, video.NewFrame(meRefBase, mp.W, mp.H), 91)
			return nil
		},
		Check: meCheck(mp, blocksX, blocksY),
	}
}

// alignPair emits dst = the word at byte offset sh within lo:hi.
func alignPair(b *prog.Builder, dst, lo, hi prog.VReg, sh int) {
	switch sh {
	case 0:
		b.Mov(dst, lo)
	case 1:
		b.FunShift1(dst, lo, hi)
	case 2:
		b.FunShift2(dst, lo, hi)
	default:
		b.FunShift3(dst, lo, hi)
	}
}

// interpWord emits dst = per-byte (a*(16-f) + next*f + 8) >> 4, where
// "next" is the word one byte to the right (funshift1 of a:bword).
func interpWord(b *prog.Builder, dst, a, bword, k16f, kf, rnd8, mask,
	xh, xl, yh, yl, ph, pl prog.VReg) {
	b.FunShift1(dst, a, bword) // bytes a+1..a+4
	b.MergeMSB(xh, prog.Zero, a)
	b.MergeLSB(xl, prog.Zero, a)
	b.MergeMSB(yh, prog.Zero, dst)
	b.MergeLSB(yl, prog.Zero, dst)
	b.DspDualMul(xh, xh, k16f)
	b.DspDualMul(xl, xl, k16f)
	b.DspDualMul(yh, yh, kf)
	b.DspDualMul(yl, yl, kf)
	b.Add(ph, xh, yh)
	b.Add(ph, ph, rnd8)
	b.LsrI(ph, ph, 4)
	b.And(ph, ph, mask)
	b.Add(pl, xl, yl)
	b.Add(pl, pl, rnd8)
	b.LsrI(pl, pl, 4)
	b.And(pl, pl, mask)
	b.LsrI(xh, ph, 16)
	b.PackBytes(xh, xh, ph)
	b.LsrI(xl, pl, 16)
	b.PackBytes(xl, xl, pl)
	b.Pack16LSB(dst, xh, xl)
}

// meCheck replicates the kernel's search exactly in Go.
func meCheck(mp MEParams, blocksX, blocksY int) func(*mem.Func) error {
	return func(m *mem.Func) error {
		stride := mp.W
		curAt := func(x, y int) int32 { return int32(m.ByteAt(meCurBase + uint32(y*stride+x))) }
		refAt := func(x, y int) int32 { return int32(m.ByteAt(meRefBase + uint32(y*stride+x))) }
		blk := 0
		for by := 0; by < blocksY; by++ {
			for bx := 0; bx < blocksX; bx++ {
				cx, cy := 4+8*bx, 4+8*by
				best, bestIdx := int64(1)<<30, 0
				for dy := 0; dy < 9; dy++ {
					for dx := 0; dx < 9; dx++ {
						var sad int64
						for r := 0; r < 8; r++ {
							for c := 0; c < 8; c++ {
								d := curAt(cx+c, cy+r) - refAt(cx-4+dx+c, cy-4+dy+r)
								if d < 0 {
									d = -d
								}
								sad += int64(d)
							}
						}
						if sad < best {
							best, bestIdx = sad, dy*16+dx
						}
					}
				}
				for f := 1; f < 16; f += 2 {
					var sad int64
					for r := 0; r < 8; r++ {
						for c := 0; c < 8; c++ {
							a := refAt(cx+c, cy+r)
							nb := refAt(cx+c+1, cy+r)
							v := (a*(16-int32(f)) + nb*int32(f) + 8) >> 4
							d := curAt(cx+c, cy+r) - v
							if d < 0 {
								d = -d
							}
							sad += int64(d)
						}
					}
					if sad < best {
						best, bestIdx = sad, 256+f
					}
				}
				gotSad := uint32(m.Load(meOutBase+uint32(8*blk), 4))
				gotIdx := uint32(m.Load(meOutBase+uint32(8*blk)+4, 4))
				if int64(gotSad) != best || int(gotIdx) != bestIdx {
					return fmt.Errorf("%s: block %d best (%d,%d), want (%d,%d)",
						"me", blk, gotSad, gotIdx, best, bestIdx)
				}
				blk++
			}
		}
		return nil
	}
}
