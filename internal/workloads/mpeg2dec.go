package workloads

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/mpeg2"
	"tm3270/internal/prog"
)

// Mpeg2A/B/C are the three MPEG2 decoder runs of Table 5, differing in
// stream characteristics: mpeg2_a has a highly disruptive motion-vector
// field, mpeg2_c a smooth one. The kernel is the reconstruction loop of
// a 4:2:0 MPEG2 decoder: per macroblock, motion compensation of the
// luma and both chroma planes from the reference frame plus — for coded
// macroblocks — the fixed-point 8x8 inverse DCT of six residual blocks
// and clipped addition. The loop uses only the common TriMedia ISA
// (aligned loads, ifir16 for the IDCT dot products), so it re-compiles
// for every Figure 7 configuration.
func Mpeg2A(p Params) (*Spec, error) { return mpeg2Spec(p, mpeg2.StreamA) }

// Mpeg2B is the moderate-motion stream.
func Mpeg2B(p Params) (*Spec, error) { return mpeg2Spec(p, mpeg2.StreamB) }

// Mpeg2C is the smooth-motion stream.
func Mpeg2C(p Params) (*Spec, error) { return mpeg2Spec(p, mpeg2.StreamC) }

// Mpeg2Super is the mpeg2_b decode with the IDCT dot products on
// SUPER_DUALIMIX — the texture-pipeline ablation of reference [13]
// (TM3270 only).
func Mpeg2Super(p Params) (*Spec, error) {
	sp, err := mpeg2SpecOpt(p, mpeg2.StreamB, true)
	if err != nil {
		return nil, err
	}
	sp.Name = "mpeg2_super"
	sp.Description = "MPEG2 reconstruction with SUPER_DUALIMIX IDCT"
	sp.TM3270Only = true
	return sp, nil
}

func mpeg2Spec(p Params, s mpeg2.Stream) (*Spec, error) { return mpeg2SpecOpt(p, s, false) }

func mpeg2SpecOpt(p Params, s mpeg2.Stream, useSuper bool) (*Spec, error) {
	var layout *mpeg2.Layout
	var initRef *mpeg2.ExpectedFrames
	pr, args, err := buildMpeg2KernelOpt(p, useSuper)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
	}
	lay, err := mpeg2.NewLayout(p.Mpeg2W, p.Mpeg2H)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", s.Name, err)
	}
	return &Spec{
		Name:        s.Name,
		Description: "MPEG2 decoder reconstruction (" + s.Name + ")",
		Prog:        pr,
		Args:        args,
		Regions:     mpeg2Regions(lay, p),
		Init: func(m *mem.Func) error {
			l, err := mpeg2.Build(m, p.Mpeg2W, p.Mpeg2H, s)
			if err != nil {
				return fmt.Errorf("workloads: %s init: %w", s.Name, err)
			}
			layout = l
			initRef = mpeg2.SnapshotRef(m, l)
			return nil
		},
		Check: func(m *mem.Func) error {
			if layout == nil {
				return fmt.Errorf("workloads: %s: Check before Init", s.Name)
			}
			want := mpeg2.Expected(initRef, m, layout, frames(p))
			yb, cbb, crb := layout.FinalBases(frames(p))
			if err := checkRegion(m, yb, want.Y, s.Name+" luma"); err != nil {
				return err
			}
			if err := checkRegion(m, cbb, want.Cb, s.Name+" Cb"); err != nil {
				return err
			}
			return checkRegion(m, crb, want.Cr, s.Name+" Cr")
		},
	}, nil
}

// mpeg2Regions is the decoder's memory map: both luma frames and the
// four chroma planes (reconstruction ping-pongs between them across
// chained frames), the per-macroblock motion vectors, coded flags and
// residual coefficients, and the two IDCT scratch blocks.
func mpeg2Regions(l *mpeg2.Layout, p Params) []mem.Region {
	luma := p.Mpeg2W * p.Mpeg2H
	chroma := luma / 4
	mbs := l.NumMBs()
	return []mem.Region{
		region("ref", l.Ref.Base, luma),
		region("out", l.Out.Base, luma),
		region("refCb", l.RefCb.Base, chroma),
		region("refCr", l.RefCr.Base, chroma),
		region("outCb", l.OutCb.Base, chroma),
		region("outCr", l.OutCr.Base, chroma),
		region("mv", l.MVBase, 4*mbs),
		region("coded", l.Coded, mbs),
		region("coeff", l.Coeff, mpeg2.MBCoeffBytes*mbs),
		region("scratch", l.Scratch, 256),
	}
}

// Memory alias groups of the decoder kernel.
const (
	grpRef    = 1
	grpOut    = 2
	grpCoeff  = 3
	grpScr1   = 4
	grpScr2   = 5
	grpStream = 6
)

// mpeg2Regs bundles the registers shared by the emit helpers.
type mpeg2Regs struct {
	b        *prog.Builder
	kE, kO   [4][2]prog.VReg
	colRound prog.VReg
	scr1     prog.VReg
	scr2     prog.VReg
	// super selects SUPER_DUALIMIX for the IDCT dot products instead of
	// ifir16 pairs — the MPEG2 8x8 texture-pipeline optimization of
	// reference [13] of the paper.
	super bool
	d2    prog.VReg

	p02, p46, p13, p57     prog.VReg
	q02, q46, q13, q57     prog.VReg
	e, o                   []prog.VReg
	t, ta, tb, ya, yb      prog.VReg
	wrow                   []prog.VReg
	hh, ll, a0, a1, t1, t2 prog.VReg
	outw                   prog.VReg
}

// dot4 emits dst = s1.hi*k1.hi + s1.lo*k1.lo + s2.hi*k2.hi + s2.lo*k2.lo,
// either as two ifir16 plus an add, or as one two-slot SUPER_DUALIMIX
// plus an add (same value: the super partitions the four products into
// high-lane and low-lane pairs, each clipped to 32 bits — a no-op for
// IDCT magnitudes).
func (r *mpeg2Regs) dot4(dst, s1, k1, s2, k2 prog.VReg) {
	b := r.b
	if r.super {
		b.SuperDualIMix(dst, r.d2, s1, k1, s2, k2)
		b.Add(dst, dst, r.d2)
		return
	}
	b.IFir16(dst, s1, k1)
	b.IFir16(r.t, s2, k2)
	b.Add(dst, dst, r.t)
}

// emitIDCT emits the two-pass fixed-point IDCT of the coefficient block
// at coeffPtr+disp into scratch block scr2 (16-bit, row-major).
func (r *mpeg2Regs) emitIDCT(coeffPtr prog.VReg, disp int32) {
	b := r.b
	// Row pass: even/odd-split coefficient rows -> scr1.
	for row := 0; row < 8; row++ {
		d := disp + int32(16*row)
		b.Ld32D(r.p02, coeffPtr, d+0).InGroup(grpCoeff)
		b.Ld32D(r.p46, coeffPtr, d+4).InGroup(grpCoeff)
		b.Ld32D(r.p13, coeffPtr, d+8).InGroup(grpCoeff)
		b.Ld32D(r.p57, coeffPtr, d+12).InGroup(grpCoeff)
		for i := 0; i < 4; i++ {
			r.dot4(r.e[i], r.p02, r.kE[i][0], r.p46, r.kE[i][1])
			r.dot4(r.o[i], r.p13, r.kO[i][0], r.p57, r.kO[i][1])
		}
		for i := 0; i < 4; i++ {
			b.Add(r.ta, r.e[i], r.o[i])
			b.AddI(r.ta, r.ta, 1<<(mpeg2.RowShift-1))
			b.AsrI(r.ta, r.ta, mpeg2.RowShift)
			b.Sub(r.tb, r.e[i], r.o[i])
			b.AddI(r.tb, r.tb, 1<<(mpeg2.RowShift-1))
			b.AsrI(r.tb, r.tb, mpeg2.RowShift)
			b.St16D(r.scr1, int32(16*row+2*i), r.ta).InGroup(grpScr1)
			b.St16D(r.scr1, int32(16*row+2*(7-i)), r.tb).InGroup(grpScr1)
		}
	}
	// Column pass: scr1 -> scr2, two columns at a time.
	for j := 0; j < 8; j += 2 {
		for row := 0; row < 8; row++ {
			b.Ld32D(r.wrow[row], r.scr1, int32(16*row+2*j)).InGroup(grpScr1)
		}
		b.Pack16MSB(r.p02, r.wrow[0], r.wrow[2])
		b.Pack16MSB(r.p46, r.wrow[4], r.wrow[6])
		b.Pack16MSB(r.p13, r.wrow[1], r.wrow[3])
		b.Pack16MSB(r.p57, r.wrow[5], r.wrow[7])
		b.Pack16LSB(r.q02, r.wrow[0], r.wrow[2])
		b.Pack16LSB(r.q46, r.wrow[4], r.wrow[6])
		b.Pack16LSB(r.q13, r.wrow[1], r.wrow[3])
		b.Pack16LSB(r.q57, r.wrow[5], r.wrow[7])
		for half := 0; half < 2; half++ {
			a, bq, cq, dq := r.p02, r.p46, r.p13, r.p57
			if half == 1 {
				a, bq, cq, dq = r.q02, r.q46, r.q13, r.q57
			}
			for i := 0; i < 4; i++ {
				r.dot4(r.e[i], a, r.kE[i][0], bq, r.kE[i][1])
				r.dot4(r.o[i], cq, r.kO[i][0], dq, r.kO[i][1])
			}
			for i := 0; i < 4; i++ {
				b.Add(r.ya, r.e[i], r.o[i])
				b.Add(r.ya, r.ya, r.colRound)
				b.AsrI(r.ya, r.ya, mpeg2.ColShift)
				b.ClipI(r.ya, r.ya, 8)
				b.Sub(r.yb, r.e[i], r.o[i])
				b.Add(r.yb, r.yb, r.colRound)
				b.AsrI(r.yb, r.yb, mpeg2.ColShift)
				b.ClipI(r.yb, r.yb, 8)
				b.St16D(r.scr2, int32(16*i+2*j+2*half), r.ya).InGroup(grpScr2)
				b.St16D(r.scr2, int32(16*(7-i)+2*j+2*half), r.yb).InGroup(grpScr2)
			}
		}
	}
}

// emitRecon emits eight rows of ref+residual reconstruction from scr2
// into the output, advancing rowRef/rowOut by strideReg per row.
func (r *mpeg2Regs) emitRecon(rowRef, rowOut, strideReg prog.VReg) {
	b := r.b
	for row := 0; row < 8; row++ {
		b.Ld32D(r.p02, rowRef, 0).InGroup(grpRef)
		b.Ld32D(r.p46, rowRef, 4).InGroup(grpRef)
		b.Ld32D(r.wrow[0], r.scr2, int32(16*row+0)).InGroup(grpScr2)
		b.Ld32D(r.wrow[1], r.scr2, int32(16*row+4)).InGroup(grpScr2)
		b.Ld32D(r.wrow[2], r.scr2, int32(16*row+8)).InGroup(grpScr2)
		b.Ld32D(r.wrow[3], r.scr2, int32(16*row+12)).InGroup(grpScr2)
		for half := 0; half < 2; half++ {
			refW, sa, sb := r.p02, r.wrow[0], r.wrow[1]
			if half == 1 {
				refW, sa, sb = r.p46, r.wrow[2], r.wrow[3]
			}
			b.MergeMSB(r.hh, prog.Zero, refW)
			b.MergeLSB(r.ll, prog.Zero, refW)
			b.DspDualAdd(r.a0, r.hh, sa)
			b.DspDualAdd(r.a1, r.ll, sb)
			b.DualUClipI(r.a0, r.a0, 8)
			b.DualUClipI(r.a1, r.a1, 8)
			b.LsrI(r.t1, r.a0, 16)
			b.PackBytes(r.t1, r.t1, r.a0)
			b.LsrI(r.t2, r.a1, 16)
			b.PackBytes(r.t2, r.t2, r.a1)
			b.Pack16LSB(r.outw, r.t1, r.t2)
			b.St32D(rowOut, int32(4*half), r.outw).InGroup(grpOut)
		}
		b.Add(rowRef, rowRef, strideReg)
		b.Add(rowOut, rowOut, strideReg)
	}
}

// emitCopy emits a plain motion-compensation copy of rows x words.
func (r *mpeg2Regs) emitCopy(rowRef, rowOut, strideReg prog.VReg, rows, words int) {
	b := r.b
	for row := 0; row < rows; row++ {
		for wd := 0; wd < words; wd++ {
			b.Ld32D(r.wrow[wd], rowRef, int32(4*wd)).InGroup(grpRef)
		}
		for wd := 0; wd < words; wd++ {
			b.St32D(rowOut, int32(4*wd), r.wrow[wd]).InGroup(grpOut)
		}
		b.Add(rowRef, rowRef, strideReg)
		b.Add(rowOut, rowOut, strideReg)
	}
}

// frames returns the chained frame count (at least 1).
func frames(p Params) int {
	if p.Mpeg2Frames > 0 {
		return p.Mpeg2Frames
	}
	return 1
}

// buildMpeg2KernelOpt optionally uses SUPER_DUALIMIX in the IDCT.
func buildMpeg2KernelOpt(p Params, useSuper bool) (*prog.Program, map[prog.VReg]uint32, error) {
	w, h := p.Mpeg2W, p.Mpeg2H
	stride := int32(w)
	cstride := stride / 2
	mbW, mbH := w/16, h/16

	b := prog.NewBuilder("mpeg2")

	// Arguments.
	mvPtr, codedPtr, coeffPtr := b.Reg(), b.Reg(), b.Reg()
	outMB, refOff := b.Reg(), b.Reg() // refOff = refBase - outBase
	outCbMB, outCrMB := b.Reg(), b.Reg()
	refCbOff, refCrOff := b.Reg(), b.Reg()
	scr1, scr2 := b.Reg(), b.Reg()
	// Frame chaining state: saved stream pointers and the current output
	// bases (output and reference regions swap between frames).
	frameCnt, mvStart, codedStart, coeffStart := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	outStartY, outStartCb, outStartCr := b.Reg(), b.Reg(), b.Reg()

	// Constants.
	strideReg := b.ImmReg(uint32(stride))
	cStrideReg := b.ImmReg(uint32(cstride))
	rowAdv := b.ImmReg(uint32(15 * stride))
	cRowAdv := b.ImmReg(uint32(7 * cstride))
	blkStride8 := b.ImmReg(uint32(8 * stride))
	three := b.ImmReg(3)
	r := &mpeg2Regs{
		b:        b,
		colRound: b.ImmReg(1 << (mpeg2.ColShift - 1)),
		scr1:     scr1,
		scr2:     scr2,
		super:    useSuper,
		d2:       b.Reg(),
	}
	c := mpeg2.Cos
	k := func(hi, lo int32) prog.VReg { return b.ImmReg(pack16(int16(hi), int16(lo))) }
	r.kE = [4][2]prog.VReg{
		{k(c[4], c[2]), k(c[4], c[6])},
		{k(c[4], c[6]), k(-c[4], -c[2])},
		{k(c[4], -c[6]), k(-c[4], c[2])},
		{k(c[4], -c[2]), k(c[4], -c[6])},
	}
	r.kO = [4][2]prog.VReg{
		{k(c[1], c[3]), k(c[5], c[7])},
		{k(c[3], -c[7]), k(-c[1], -c[5])},
		{k(c[5], -c[1]), k(c[7], c[3])},
		{k(c[7], -c[5]), k(c[3], -c[1])},
	}
	r.p02, r.p46, r.p13, r.p57 = b.Reg(), b.Reg(), b.Reg(), b.Reg()
	r.q02, r.q46, r.q13, r.q57 = b.Reg(), b.Reg(), b.Reg(), b.Reg()
	r.e, r.o = b.Regs(4), b.Regs(4)
	r.t, r.ta, r.tb, r.ya, r.yb = b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	r.wrow = b.Regs(8)
	r.hh, r.ll, r.a0, r.a1, r.t1, r.t2 = b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	r.outw = b.Reg()

	// Loop counters and per-MB state.
	mbx, mby, cond := b.Reg(), b.Reg(), b.Reg()
	mvw, mvX, mvY, cmvX, cmvY, coded, g := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	refMB, refCbMB, refCrMB, t := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	rowRef, rowOut := b.Reg(), b.Reg()

	b.Mov(mvStart, mvPtr)
	b.Mov(codedStart, codedPtr)
	b.Mov(coeffStart, coeffPtr)
	b.Mov(outStartY, outMB)
	b.Mov(outStartCb, outCbMB)
	b.Mov(outStartCr, outCrMB)
	b.Label("frameloop")
	b.Imm(mby, 0)
	b.Label("mbrow")
	b.Imm(mbx, 0)
	b.Label("mbloop")

	// Per-MB header: motion vector, coded flag, reference addresses.
	b.Ld32D(mvw, mvPtr, 0).InGroup(grpStream)
	b.ULd8D(coded, codedPtr, 0).InGroup(grpStream)
	b.AsrI(mvX, mvw, 16)
	b.Sex16(mvY, mvw)
	b.Mul(t, mvY, strideReg)
	b.Add(refMB, outMB, refOff)
	b.Add(refMB, refMB, t)
	b.Add(refMB, refMB, mvX)
	// Chroma vector: halved, horizontally word-aligned.
	b.AsrI(cmvX, mvX, 1)
	b.AndInv(cmvX, cmvX, three)
	b.AsrI(cmvY, mvY, 1)
	b.Mul(t, cmvY, cStrideReg)
	b.Add(refCbMB, outCbMB, refCbOff)
	b.Add(refCbMB, refCbMB, t)
	b.Add(refCbMB, refCbMB, cmvX)
	b.Add(refCrMB, outCrMB, refCrOff)
	b.Add(refCrMB, refCrMB, t)
	b.Add(refCrMB, refCrMB, cmvX)
	b.NonZero(g, coded)
	b.JmpF(g, "copy")

	// ---- Coded path: 4 luma + 2 chroma blocks of IDCT + recon. ----
	for blk := 0; blk < 4; blk++ {
		bx, by := blk%2, blk/2
		r.emitIDCT(coeffPtr, int32(blk*mpeg2.BlockCoeffBytes))
		if by == 1 {
			b.Add(rowRef, refMB, blkStride8)
			b.Add(rowOut, outMB, blkStride8)
		} else {
			b.Mov(rowRef, refMB)
			b.Mov(rowOut, outMB)
		}
		if bx == 1 {
			b.AddI(rowRef, rowRef, 8)
			b.AddI(rowOut, rowOut, 8)
		}
		r.emitRecon(rowRef, rowOut, strideReg)
	}
	r.emitIDCT(coeffPtr, int32(4*mpeg2.BlockCoeffBytes))
	b.Mov(rowRef, refCbMB)
	b.Mov(rowOut, outCbMB)
	r.emitRecon(rowRef, rowOut, cStrideReg)
	r.emitIDCT(coeffPtr, int32(5*mpeg2.BlockCoeffBytes))
	b.Mov(rowRef, refCrMB)
	b.Mov(rowOut, outCrMB)
	r.emitRecon(rowRef, rowOut, cStrideReg)
	b.Jmp("mbnext")

	// ---- Copy path: plain motion compensation of all planes. ----
	b.Label("copy")
	b.Mov(rowRef, refMB)
	b.Mov(rowOut, outMB)
	r.emitCopy(rowRef, rowOut, strideReg, 16, 4)
	b.Mov(rowRef, refCbMB)
	b.Mov(rowOut, outCbMB)
	r.emitCopy(rowRef, rowOut, cStrideReg, 8, 2)
	b.Mov(rowRef, refCrMB)
	b.Mov(rowOut, outCrMB)
	r.emitCopy(rowRef, rowOut, cStrideReg, 8, 2)

	b.Label("mbnext")
	b.AddI(mvPtr, mvPtr, 4)
	b.AddI(codedPtr, codedPtr, 1)
	b.AddI(coeffPtr, coeffPtr, mpeg2.MBCoeffBytes)
	b.AddI(outMB, outMB, 16)
	b.AddI(outCbMB, outCbMB, 8)
	b.AddI(outCrMB, outCrMB, 8)
	b.AddI(mbx, mbx, 1)
	b.LesI(cond, mbx, int32(mbW))
	b.JmpT(cond, "mbloop")
	b.Add(outMB, outMB, rowAdv)
	b.Add(outCbMB, outCbMB, cRowAdv)
	b.Add(outCrMB, outCrMB, cRowAdv)
	b.AddI(mby, mby, 1)
	b.LesI(cond, mby, int32(mbH))
	b.JmpT(cond, "mbrow")

	// Next frame: the frame just written becomes the reference, the old
	// reference region becomes the output; the stream pointers rewind
	// (each frame re-uses the same vectors and residuals).
	b.AddI(frameCnt, frameCnt, -1)
	b.Mov(mvPtr, mvStart)
	b.Mov(codedPtr, codedStart)
	b.Mov(coeffPtr, coeffStart)
	for _, sw := range [][3]prog.VReg{
		{outStartY, refOff, outMB},
		{outStartCb, refCbOff, outCbMB},
		{outStartCr, refCrOff, outCrMB},
	} {
		start, off, cur := sw[0], sw[1], sw[2]
		b.Add(start, start, off)   // new output = old reference base
		b.Sub(off, prog.Zero, off) // ref offset flips sign
		b.Mov(cur, start)
		_ = cur
	}
	b.GtrI(cond, frameCnt, 0)
	b.JmpT(cond, "frameloop")

	pr := b.MustProgram()

	// The layout addresses are package constants of internal/mpeg2:
	// bind them from a probe layout (no memory image needed).
	l, err := mpeg2.NewLayout(p.Mpeg2W, p.Mpeg2H)
	if err != nil {
		return nil, nil, err
	}
	args := map[prog.VReg]uint32{
		// Decremented before the loop-back test, so it starts at the
		// full frame count.
		frameCnt: uint32(frames(p)),
		mvPtr:    l.MVBase,
		codedPtr: l.Coded,
		coeffPtr: l.Coeff,
		outMB:    l.Out.Base,
		refOff:   l.Ref.Base - l.Out.Base,
		outCbMB:  l.OutCb.Base,
		outCrMB:  l.OutCr.Base,
		refCbOff: l.RefCb.Base - l.OutCb.Base,
		refCrOff: l.RefCr.Base - l.OutCr.Base,
		scr1:     l.Scratch,
		scr2:     l.Scratch + 128,
	}
	return pr, args, nil
}
