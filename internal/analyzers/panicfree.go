package analyzers

import (
	"go/ast"
	"strings"
)

// hotPackages are the directories where a bare panic is forbidden: the
// simulator executes untrusted decoded binaries and arbitrary kernel
// IR, so every fault must surface as a TrapError or a returned error,
// never as a Go panic trace.
var hotPackages = []string{"internal/tmsim", "internal/prog", "internal/telemetry"}

// PanicFree forbids bare panic(...) calls in the hot packages. Exempt:
//
//   - init functions and Must*-prefixed helpers (registration-time
//     programming errors, by convention allowed to panic)
//   - panics carrying a composite-literal payload, the typed-trap
//     pattern (panic(&memTrap{...})) recovered at the Run boundary
//   - lines marked //tmvet:allow
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbid bare panics in simulator hot paths (use TrapError or returned errors)",
	Run:  runPanicFree,
}

func runPanicFree(p *Pass) {
	hot := false
	for _, h := range hotPackages {
		if p.Dir == h || strings.HasSuffix(p.Dir, "/"+h) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkPanics(p, f, fn)
			}
		}
	}
}

func checkPanics(p *Pass, f *ast.File, fn *ast.FuncDecl) {
	name := fn.Name.Name
	if name == "init" || strings.HasPrefix(name, "Must") {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" || len(call.Args) != 1 {
			return true
		}
		if typedTrapPayload(call.Args[0]) || lineHasAllow(p.Fset, f, call.Pos()) {
			return true
		}
		p.Reportf(call.Pos(),
			"bare panic in hot-path function %s: raise a TrapError or return an error (//tmvet:allow to suppress)",
			name)
		return true
	})
}

// typedTrapPayload recognizes panic(&T{...}) and panic(T{...}): a typed
// payload the caller recovers and converts into a structured trap.
func typedTrapPayload(arg ast.Expr) bool {
	if u, ok := arg.(*ast.UnaryExpr); ok {
		arg = u.X
	}
	_, ok := arg.(*ast.CompositeLit)
	return ok
}
