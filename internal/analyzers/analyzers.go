// Package analyzers holds the repository's custom static analysis
// passes and a minimal driver framework for them, mirroring the
// go/analysis Analyzer/Pass shape on the standard library alone (the
// build environment carries no golang.org/x/tools, and these passes
// need only syntax).
//
// Passes:
//
//   - panicfree: the simulator hot paths (internal/tmsim, internal/prog,
//     internal/telemetry) must not raise bare panics — execution faults
//     are TrapErrors and API misuse is a returned error. Typed trap
//     payloads (panic(&memTrap{...}), recovered at the Run boundary),
//     init-time and Must*-prefixed registration panics, and lines
//     marked //tmvet:allow are exempt.
//
//   - counternames: telemetry counters are registered under literal
//     dotted lower-case names — the stable public schema of the
//     BENCH_*.json trajectory format — never computed strings.
//
//   - ctxarg: in internal/runner and internal/service, context.Context
//     is the first parameter of any function that takes one and never a
//     struct field; //tmvet:allow marks the deliberate lifetime stores.
//
// Run the passes with cmd/tmvet (wired into `make lint` / `make check`).
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the source tree.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the `go vet` style.
func (d *Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass is one analyzer applied to one parsed package.
type Pass struct {
	Fset    *token.FileSet
	PkgName string      // package name as declared
	Dir     string      // slash-separated directory relative to the root
	Files   []*ast.File // parsed with comments

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the repository's analyzers.
func All() []*Analyzer { return []*Analyzer{PanicFree, CounterNames, CtxArg} }

// RunFiles applies the analyzers to one already-parsed package; tests
// use it to drive a pass over in-memory sources.
func RunFiles(fset *token.FileSet, pkgName, dir string, files []*ast.File, as []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range as {
		p := &Pass{Fset: fset, PkgName: pkgName, Dir: dir, Files: files,
			analyzer: a.Name, diags: &diags}
		a.Run(p)
	}
	return diags
}

// Run parses every non-test package under root and applies the
// analyzers, returning the findings sorted by position. Vendored,
// hidden and testdata directories are skipped.
func Run(root string, as []*Analyzer) ([]Diagnostic, error) {
	pkgs := map[string][]string{} // dir -> files
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgs[dir] = append(pkgs[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	dirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	var diags []Diagnostic
	fset := token.NewFileSet()
	for _, dir := range dirs {
		sort.Strings(pkgs[dir])
		var files []*ast.File
		pkgName := ""
		for _, path := range pkgs[dir] {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			pkgName = f.Name.Name
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		diags = append(diags, RunFiles(fset, pkgName, filepath.ToSlash(rel), files, as)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := &diags[i], &diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// lineHasAllow reports whether the source line holding pos carries a
// //tmvet:allow suppression comment.
func lineHasAllow(fset *token.FileSet, f *ast.File, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if fset.Position(c.Pos()).Line == line && strings.Contains(c.Text, "tmvet:allow") {
				return true
			}
		}
	}
	return false
}
