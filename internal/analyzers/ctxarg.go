package analyzers

import (
	"go/ast"
	"strings"
)

// ctxPackages are the directories where context discipline is enforced:
// the batch runner and the serving stack thread cancellation through
// every blocking call, so a context hiding in a later parameter or in a
// struct field is either a plumbing mistake or a lifetime bug waiting
// to happen (a stored context outlives the request it belongs to).
var ctxPackages = []string{"internal/runner", "internal/service"}

// CtxArg enforces the standard context discipline in the runner and
// service packages:
//
//   - a function taking a context.Context takes it as the first
//     parameter, named per convention
//   - context.Context never appears as a struct field
//
// Lines marked //tmvet:allow are exempt — the two deliberate stores
// (a server's root lifetime context, a session's drain context) carry
// the marker next to a comment justifying the lifetime.
var CtxArg = &Analyzer{
	Name: "ctxarg",
	Doc:  "context.Context must be the first parameter and never a struct field",
	Run:  runCtxArg,
}

func runCtxArg(p *Pass) {
	hot := false
	for _, h := range ctxPackages {
		if p.Dir == h || strings.HasSuffix(p.Dir, "/"+h) {
			hot = true
			break
		}
	}
	if !hot {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParams(p, f, n)
			case *ast.StructType:
				checkCtxFields(p, f, n)
			}
			return true
		})
	}
}

// isContextType recognizes the context.Context selector syntactically
// (the framework is parse-only, no type information).
func isContextType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

func checkCtxParams(p *Pass, f *ast.File, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for i, field := range ft.Params.List {
		if !isContextType(field.Type) {
			continue
		}
		if i == 0 && len(field.Names) <= 1 {
			continue // first parameter (or sole name of the first group)
		}
		if lineHasAllow(p.Fset, f, field.Pos()) {
			continue
		}
		p.Reportf(field.Pos(),
			"context.Context must be the first parameter (//tmvet:allow to suppress)")
	}
}

func checkCtxFields(p *Pass, f *ast.File, st *ast.StructType) {
	if st.Fields == nil {
		return
	}
	for _, field := range st.Fields.List {
		if !isContextType(field.Type) {
			continue
		}
		if lineHasAllow(p.Fset, f, field.Pos()) {
			continue
		}
		p.Reportf(field.Pos(),
			"context.Context stored in a struct field: pass it per call instead (//tmvet:allow to suppress)")
	}
}
