package analyzers

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// telemetryImport is the import path whose registration API the pass
// polices.
const telemetryImport = "tm3270/internal/telemetry"

// counterNameRE is the counter-name schema: two or more dotted
// lower-case alphanumeric segments ("dcache.load.miss").
var counterNameRE = regexp.MustCompile(`^[a-z0-9]+(\.[a-z0-9]+)+$`)

// CounterNames checks that every telemetry counter registration —
// X.Counter(name, ...) / X.Func(name, ...) / X.Histogram(name, ...) in
// files importing the telemetry package — passes a literal dotted
// lower-case name. The
// names are the stable schema of the stats-json snapshot and the
// BENCH_*.json trajectory format; computed names would make the schema
// depend on runtime state. Package telemetry itself is exempt (its
// Counter helper forwards the caller's name to Func).
var CounterNames = &Analyzer{
	Name: "counternames",
	Doc:  "telemetry counter names must be literal dotted lower-case strings",
	Run:  runCounterNames,
}

func runCounterNames(p *Pass) {
	if p.PkgName == "telemetry" {
		return
	}
	for _, f := range p.Files {
		if !importsTelemetry(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if sel.Sel.Name != "Counter" && sel.Sel.Name != "Func" && sel.Sel.Name != "Histogram" {
				return true
			}
			if lineHasAllow(p.Fset, f, call.Pos()) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				p.Reportf(call.Args[0].Pos(),
					"%s registration name must be a string literal, not a computed expression",
					sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !counterNameRE.MatchString(name) {
				p.Reportf(lit.Pos(),
					"counter name %s is not dotted lower-case (want e.g. \"dcache.load.miss\")",
					lit.Value)
			}
			return true
		})
	}
}

func importsTelemetry(f *ast.File) bool {
	for _, imp := range f.Imports {
		if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
			(path == telemetryImport || strings.HasSuffix(path, "/internal/telemetry")) {
			return true
		}
	}
	return false
}
