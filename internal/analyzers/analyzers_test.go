package analyzers_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"tm3270/internal/analyzers"
)

// run parses src as a single file and applies every analyzer, treating
// it as package dir (slash-separated, relative).
func run(t *testing.T, dir, src string) []analyzers.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analyzers.RunFiles(fset, f.Name.Name, dir, []*ast.File{f}, analyzers.All())
}

func TestPanicFreeFlagsBarePanic(t *testing.T) {
	diags := run(t, "internal/tmsim", `package tmsim
func Step() { panic("boom") }
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want 1 finding", diags)
	}
	if diags[0].Analyzer != "panicfree" || !strings.Contains(diags[0].Message, "Step") {
		t.Errorf("unexpected diagnostic: %v", diags[0])
	}
}

func TestPanicFreeExemptions(t *testing.T) {
	src := `package tmsim
type memTrap struct{ addr uint32 }
func init() { panic("registration") }
func MustThing() { panic("misuse") }
func raise() { panic(&memTrap{addr: 4}) }
func raiseVal() { panic(memTrap{addr: 4}) }
func allowed() { panic("checked") //tmvet:allow exercised in tests
}
`
	if diags := run(t, "internal/tmsim", src); len(diags) != 0 {
		t.Errorf("exempt panics flagged: %v", diags)
	}
}

func TestPanicFreeIgnoresColdPackages(t *testing.T) {
	diags := run(t, "internal/encode", `package encode
func Step() { panic("boom") }
`)
	if len(diags) != 0 {
		t.Errorf("cold package flagged: %v", diags)
	}
}

func TestCounterNamesFlagsBadLiteral(t *testing.T) {
	diags := run(t, "internal/tmsim", `package tmsim
import "tm3270/internal/telemetry"
func wire(r *telemetry.Registry, f func() int64) {
	r.Func("DCacheMiss", f)
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "counternames" {
		t.Fatalf("diags = %v, want 1 counternames finding", diags)
	}
	if !strings.Contains(diags[0].Message, "dotted lower-case") {
		t.Errorf("unexpected message: %v", diags[0])
	}
}

func TestCounterNamesFlagsComputedName(t *testing.T) {
	diags := run(t, "internal/tmsim", `package tmsim
import "tm3270/internal/telemetry"
func wire(r *telemetry.Registry, base string, f func() int64) {
	r.Func(base+".miss", f)
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "string literal") {
		t.Fatalf("diags = %v, want 1 computed-name finding", diags)
	}
}

func TestCounterNamesAcceptsGoodNames(t *testing.T) {
	diags := run(t, "internal/tmsim", `package tmsim
import "tm3270/internal/telemetry"
func wire(r *telemetry.Registry, f func() int64) {
	r.Func("dcache.load.miss", f)
	r.Counter("core.cycles", f)
}
`)
	if len(diags) != 0 {
		t.Errorf("good names flagged: %v", diags)
	}
}

func TestCounterNamesFlagsHistogramComputedName(t *testing.T) {
	diags := run(t, "internal/service", `package service
import "tm3270/internal/telemetry"
func wire(r *telemetry.Registry, route string, h *telemetry.Histogram) {
	r.Histogram("service.latency.route."+route, h)
}
`)
	if len(diags) != 1 || diags[0].Analyzer != "counternames" ||
		!strings.Contains(diags[0].Message, "string literal") {
		t.Fatalf("diags = %v, want 1 computed histogram-name finding", diags)
	}
}

func TestCounterNamesAcceptsHistogramLiteral(t *testing.T) {
	diags := run(t, "internal/service", `package service
import "tm3270/internal/telemetry"
func wire(r *telemetry.Registry, h *telemetry.Histogram) {
	r.Histogram("service.latency.stage.admit", h)
}
`)
	if len(diags) != 0 {
		t.Errorf("literal histogram name flagged: %v", diags)
	}
}

func TestCounterNamesExemptsTelemetryPackage(t *testing.T) {
	diags := run(t, "internal/telemetry", `package telemetry
import "tm3270/internal/telemetry"
func forward(r *telemetry.Registry, name string, f func() int64) {
	r.Func(name, f)
}
`)
	if len(diags) != 0 {
		t.Errorf("telemetry package flagged: %v", diags)
	}
}

func TestCounterNamesIgnoresFilesWithoutImport(t *testing.T) {
	diags := run(t, "internal/encode", `package encode
type reg struct{}
func (reg) Func(name string, f func() int64) {}
func wire(r reg, f func() int64) { r.Func("NotDotted", f) }
`)
	if len(diags) != 0 {
		t.Errorf("non-telemetry Func flagged: %v", diags)
	}
}

func TestCtxArgFlagsLateParameter(t *testing.T) {
	diags := run(t, "internal/runner", `package runner
import "context"
func Submit(id string, ctx context.Context) error { return nil }
`)
	if len(diags) != 1 || diags[0].Analyzer != "ctxarg" {
		t.Fatalf("diags = %v, want 1 ctxarg finding", diags)
	}
	if !strings.Contains(diags[0].Message, "first parameter") {
		t.Errorf("unexpected message: %v", diags[0])
	}
}

func TestCtxArgFlagsSharedGroup(t *testing.T) {
	// (a, ctx context.Context): the context is the second parameter even
	// though its group is first.
	diags := run(t, "internal/service", `package service
import "context"
func do(a, ctx context.Context) {}
`)
	if len(diags) != 1 || diags[0].Analyzer != "ctxarg" {
		t.Fatalf("diags = %v, want 1 ctxarg finding", diags)
	}
}

func TestCtxArgFlagsStructField(t *testing.T) {
	diags := run(t, "internal/service", `package service
import "context"
type job struct {
	name string
	ctx  context.Context
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "struct field") {
		t.Fatalf("diags = %v, want 1 struct-field finding", diags)
	}
}

func TestCtxArgAcceptsDiscipline(t *testing.T) {
	src := `package runner
import "context"
type Server struct {
	root context.Context //tmvet:allow lifetime, not a request
}
func Run(ctx context.Context, name string) error { return nil }
func (s *Server) Submit(ctx context.Context, f func()) error { return nil }
func plain(name string) {}
var hook func(ctx context.Context, n int)
`
	if diags := run(t, "internal/runner", src); len(diags) != 0 {
		t.Errorf("disciplined contexts flagged: %v", diags)
	}
}

func TestCtxArgIgnoresColdPackages(t *testing.T) {
	diags := run(t, "internal/encode", `package encode
import "context"
type job struct{ ctx context.Context }
func do(n int, ctx context.Context) {}
`)
	if len(diags) != 0 {
		t.Errorf("cold package flagged: %v", diags)
	}
}

func TestRunWalksRepository(t *testing.T) {
	diags, err := analyzers.Run("../..", analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("repository not tmvet-clean: %v", diags)
	}
}
