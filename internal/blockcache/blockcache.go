// Package blockcache is the translation layer of the fast-path
// execution engine: it predecodes straight-line VLIW packet regions
// ("blocks") into a flat struct-of-arrays micro-op form and caches the
// translations keyed by program counter.
//
// The interpreter walks the scheduled code through three indirections
// per operation — a five-slot scan with nil/second-slot checks, an
// opcode-table lookup for the static description, and a virtual-to-
// physical register map — plus a label-map lookup per taken jump.
// A translated block pays all of that exactly once: the micro-op
// stream carries pre-resolved physical register indices, the target's
// result latency, the executable semantics as a direct function value,
// the effective-address mode and width of memory operations, and jump
// targets resolved to instruction indices. The cycle/stall model
// (instruction cache, data cache, bus) is untouched — a block also
// keeps the per-instruction fetch address and size the timing model
// needs — so the fast path retires the same cycle counts as the
// interpreter, only faster.
//
// Blocks are immutable after translation. The cache is instance-scoped
// (one per machine run) and supports invalidation by encoded byte
// range, which the engine drives from stores that hit the code region
// (self-modifying code): the affected translations are dropped and
// retranslated on next entry.
package blockcache

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/icache"
	"tm3270/internal/isa"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
)

// Flags is the per-micro-op behaviour bit set.
type Flags uint16

const (
	// FlagGuardInv marks operations executing when the guard is FALSE.
	FlagGuardInv Flags = 1 << iota
	// FlagLoad / FlagStore / FlagAlloc classify memory operations.
	FlagLoad
	FlagStore
	FlagAlloc
	// FlagJump marks branch operations.
	FlagJump
	// FlagAddrRR selects the register+register effective address form.
	FlagAddrRR
	// FlagAddrBase selects the base-register-only form (LD_FRAC8).
	// Without either address flag a memory operation uses base+imm.
	FlagAddrBase
	// FlagMem is set for any memory operation (load, store or alloc).
	FlagMem
)

// MaxBlockInstrs caps translation so pathological straight-line code
// cannot produce unbounded blocks.
const MaxBlockInstrs = 256

// MaxLatency bounds the pre-resolved result latencies the engine's
// pending-write ring must cover; Translate rejects anything larger
// (no current target exceeds 6).
const MaxLatency = 63

// Block is one translated straight-line packet region: the
// instructions from Entry up to and including the first one that
// carries a jump operation (or the MaxBlockInstrs cap, or code end).
// All state is struct-of-arrays: per-instruction metadata indexed
// 0..N-1, and a flat micro-op stream indexed by the OpFirst ranges.
type Block struct {
	Entry int // first instruction index covered
	N     int // instructions covered

	// ByteLo/ByteHi bound the encoded bytes of the block, for
	// store-range invalidation: [ByteLo, ByteHi).
	ByteLo, ByteHi uint32

	// Per-instruction fetch metadata for the instruction-cache model.
	FetchAddr []uint32
	FetchSize []int32
	// ChunkLo/ChunkHi are the first and last 32-byte fetch chunks the
	// instruction's bytes occupy. When an instruction lies entirely in
	// the chunk already sitting in the instruction buffer, the fetch
	// model is a provable no-op (no stall, no counter) and the engine
	// skips the call.
	ChunkLo []uint32
	ChunkHi []uint32

	// OpFirst[i] is the first micro-op of instruction Entry+i; the
	// stream of instruction i is [OpFirst[i], OpFirst[i+1]). len N+1.
	OpFirst []int32

	// Ops is the flat micro-op stream: one packed record per primary
	// slot operation, in slot order within each instruction.
	Ops []MicroOp

	// TargetLabel keeps each op's jump label name for trap messages
	// (cold, parallel to Ops).
	TargetLabel []string
	// Info is the cold static description of each op, kept for trap
	// context and diagnostics only — the hot loop never touches it.
	Info []*isa.OpInfo
}

// MicroOp is one predecoded operation: executable semantics as a
// direct function value, pre-resolved physical register indices, the
// target's result latency, and the behaviour flags plus memory width
// and jump target the engine dispatches on — everything the hot loop
// needs in one record, no OpInfo lookup, no register map, no label map.
type MicroOp struct {
	Exec     isa.ExecFunc // executable semantics, direct call
	Imm      uint32       // immediate operand
	Target   int32        // jump target instruction index; -1 = unknown label
	Lat      int32        // result latency (issues until commit)
	Flags    Flags
	MemBytes uint16     // memory access width
	Guard    isa.Reg    // pre-resolved physical guard register
	NSrc     uint8      // sources used
	NDest    uint8      // destinations written
	Src      [4]isa.Reg // pre-resolved physical source registers
	Dest     [2]isa.Reg // pre-resolved physical destination registers
}

// Stats counts translation-cache activity for the sim.blockcache.*
// telemetry family.
type Stats struct {
	// Translated counts block translations (cache misses).
	Translated int64
	// Hits counts block executions served from the cache.
	Hits int64
	// Invalidations counts cached blocks dropped by code-range stores.
	Invalidations int64
}

// Cache is the per-machine translation cache: translated blocks keyed
// by entry instruction index (equivalently by PC — the encoding maps
// indices to byte addresses one-to-one). It is not safe for concurrent
// use; every machine run owns a private cache, like its memory image.
type Cache struct {
	code *sched.Code
	rm   *regalloc.Map
	enc  *encode.Encoded
	t    *config.Target

	blocks []*Block

	Stats Stats
}

// New builds an empty cache over one loaded code image.
func New(code *sched.Code, rm *regalloc.Map, enc *encode.Encoded, t *config.Target) *Cache {
	return &Cache{code: code, rm: rm, enc: enc, t: t,
		blocks: make([]*Block, len(code.Instrs))}
}

// Block returns the translation entered at instruction index idx,
// translating it on first use.
func (c *Cache) Block(idx int) (*Block, error) {
	if b := c.blocks[idx]; b != nil {
		c.Stats.Hits++
		return b, nil
	}
	b, err := Translate(c.code, c.rm, c.enc, c.t, idx)
	if err != nil {
		return nil, err
	}
	c.blocks[idx] = b
	c.Stats.Translated++
	return b, nil
}

// InvalidateRange drops every cached block whose encoded bytes overlap
// [lo, hi) and returns the number dropped. The engine calls it when a
// store writes into the code region (self-modifying code); the blocks
// retranslate on next entry.
func (c *Cache) InvalidateRange(lo, hi uint32) int {
	n := 0
	for i, b := range c.blocks {
		if b == nil {
			continue
		}
		if b.ByteLo < hi && lo < b.ByteHi {
			c.blocks[i] = nil
			n++
		}
	}
	c.Stats.Invalidations += int64(n)
	return n
}

// Cached returns the number of currently cached blocks (tests).
func (c *Cache) Cached() int {
	n := 0
	for _, b := range c.blocks {
		if b != nil {
			n++
		}
	}
	return n
}

// Translate predecodes one straight-line packet region starting at
// instruction index entry. It fails only on static inconsistencies a
// scheduled code image cannot legally contain (an operation latency
// beyond the engine's pending-write horizon); unknown jump labels are
// deferred to execution time, exactly like the interpreter.
func Translate(code *sched.Code, rm *regalloc.Map, enc *encode.Encoded, t *config.Target, entry int) (*Block, error) {
	if entry < 0 || entry >= len(code.Instrs) {
		return nil, fmt.Errorf("blockcache: entry %d outside code of %d instructions", entry, len(code.Instrs))
	}
	b := &Block{Entry: entry, ByteLo: enc.Addr[entry]}
	b.OpFirst = append(b.OpFirst, 0)
	nops := 0
	for i := entry; i < len(code.Instrs) && i-entry < MaxBlockInstrs; i++ {
		b.FetchAddr = append(b.FetchAddr, enc.Addr[i])
		b.FetchSize = append(b.FetchSize, int32(enc.Size[i]))
		b.ChunkLo = append(b.ChunkLo, enc.Addr[i]&^(icache.ChunkBytes-1))
		b.ChunkHi = append(b.ChunkHi, (enc.Addr[i]+uint32(enc.Size[i])-1)&^(icache.ChunkBytes-1))
		hasJump := false
		in := &code.Instrs[i]
		for s := 0; s < 5; s++ {
			so := in.Slots[s]
			if so.Op == nil || so.Second {
				continue
			}
			op := so.Op
			info := op.Info()
			lat := int64(t.OpLatency(op.Opcode))
			if lat < 1 || lat > MaxLatency {
				return nil, fmt.Errorf("blockcache: %s latency %d outside the engine's [1, %d] commit horizon",
					info.Name, lat, MaxLatency)
			}

			var f Flags
			if info.GuardInverted {
				f |= FlagGuardInv
			}
			var src [4]isa.Reg
			for k := 0; k < info.NSrc; k++ {
				src[k] = rm.Reg(op.Src[k])
			}
			var dst [2]isa.Reg
			for k := 0; k < info.NDest; k++ {
				dst[k] = rm.Reg(op.Dest[k])
			}
			target := int32(-1)
			if info.IsJump {
				f |= FlagJump
				hasJump = true
				if ti, ok := code.Labels[op.Target]; ok {
					target = int32(ti)
				}
			}
			if info.IsLoad || info.IsStore {
				f |= FlagMem
				if info.IsLoad {
					f |= FlagLoad
				}
				if info.IsStore {
					f |= FlagStore
				}
				if op.Opcode == isa.OpALLOCD {
					f |= FlagAlloc
				}
				switch op.Opcode {
				case isa.OpLD32R, isa.OpLD16R, isa.OpULD16R, isa.OpLD8R, isa.OpULD8R,
					isa.OpSUPERLD32R:
					f |= FlagAddrRR
				case isa.OpLDFRAC8:
					f |= FlagAddrBase
				}
			}

			b.Ops = append(b.Ops, MicroOp{
				Exec:     info.Exec,
				Imm:      op.Imm,
				Target:   target,
				Lat:      int32(lat),
				Flags:    f,
				MemBytes: uint16(info.MemBytes),
				Guard:    rm.Reg(op.Guard),
				NSrc:     uint8(info.NSrc),
				NDest:    uint8(info.NDest),
				Src:      src,
				Dest:     dst,
			})
			b.TargetLabel = append(b.TargetLabel, op.Target)
			b.Info = append(b.Info, info)
			nops++
		}
		b.OpFirst = append(b.OpFirst, int32(nops))
		b.N++
		b.ByteHi = enc.Addr[i] + uint32(enc.Size[i])
		if hasJump {
			// The block ends at the jump-carrying instruction; its delay
			// window spans into the following blocks, tracked by the
			// engine's redirect state, exactly like the interpreter's.
			break
		}
	}
	return b, nil
}
