package blockcache_test

import (
	"strings"
	"testing"

	"tm3270/internal/blockcache"
	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/icache"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
)

const base = 0x0100_0000

// translated compiles a program for the target and returns everything
// a Cache or Translate call needs.
func translated(t *testing.T, p *prog.Program, tgt config.Target) (*sched.Code, *regalloc.Map, *encode.Encoded) {
	t.Helper()
	code, err := sched.Schedule(p, tgt)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	enc, err := encode.Encode(code, rm, base)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return code, rm, enc
}

// loopProgram counts i up to n with a backward conditional jump — one
// jump-carrying instruction, so the code splits into at least two
// blocks (the loop body, and the straight-line tail after it).
func loopProgram(n int32) *prog.Program {
	b := prog.NewBuilder("bc_loop")
	i, cond, acc := b.Reg(), b.Reg(), b.Reg()
	b.Imm(i, 0)
	b.Imm(acc, 0)
	b.Label("loop")
	b.AddI(i, i, 1)
	b.Add(acc, acc, i)
	b.NeqI(cond, i, n)
	b.JmpT(cond, "loop")
	b.AddI(acc, acc, 7) // tail past the jump: a second block
	return b.MustProgram()
}

func TestTranslateBlockShape(t *testing.T) {
	tgt := config.TM3270()
	code, rm, enc := translated(t, loopProgram(4), tgt)

	b, err := blockcache.Translate(code, rm, enc, &tgt, 0)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if b.Entry != 0 || b.N <= 0 {
		t.Fatalf("block covers [%d, %d+%d), want entry 0 and N > 0", b.Entry, b.Entry, b.N)
	}
	// The block must end at the first jump-carrying instruction and
	// include it; every earlier instruction must carry no jump.
	last := b.Entry + b.N - 1
	if last >= len(code.Instrs) {
		t.Fatalf("block runs past code end: last %d of %d", last, len(code.Instrs))
	}
	for i := b.Entry; i <= last; i++ {
		hasJump := false
		for s := 0; s < 5; s++ {
			so := code.Instrs[i].Slots[s]
			if so.Op != nil && !so.Second && so.Op.Info().IsJump {
				hasJump = true
			}
		}
		if hasJump && i != last {
			t.Errorf("instruction %d carries a jump inside the block", i)
		}
	}

	// Struct-of-arrays invariants: OpFirst has N+1 monotone entries
	// covering the whole op stream; per-instruction arrays are length N.
	if len(b.OpFirst) != b.N+1 {
		t.Fatalf("len(OpFirst) = %d, want N+1 = %d", len(b.OpFirst), b.N+1)
	}
	if b.OpFirst[0] != 0 || int(b.OpFirst[b.N]) != len(b.Ops) {
		t.Errorf("OpFirst spans [%d, %d], want [0, %d]", b.OpFirst[0], b.OpFirst[b.N], len(b.Ops))
	}
	for i := 0; i < b.N; i++ {
		if b.OpFirst[i] > b.OpFirst[i+1] {
			t.Errorf("OpFirst not monotone at %d: %d > %d", i, b.OpFirst[i], b.OpFirst[i+1])
		}
	}
	for _, l := range [][]uint32{b.FetchAddr, b.ChunkLo, b.ChunkHi} {
		if len(l) != b.N {
			t.Errorf("per-instruction array length %d, want %d", len(l), b.N)
		}
	}
	if len(b.TargetLabel) != len(b.Ops) || len(b.Info) != len(b.Ops) {
		t.Errorf("cold arrays (%d labels, %d infos) out of step with %d ops",
			len(b.TargetLabel), len(b.Info), len(b.Ops))
	}

	// Fetch metadata must agree with the encoding, chunk bounds with
	// the instruction-cache geometry.
	for i := 0; i < b.N; i++ {
		gi := b.Entry + i
		if b.FetchAddr[i] != enc.Addr[gi] || b.FetchSize[i] != int32(enc.Size[gi]) {
			t.Errorf("instr %d fetch %#x+%d, encoding says %#x+%d",
				gi, b.FetchAddr[i], b.FetchSize[i], enc.Addr[gi], enc.Size[gi])
		}
		if b.ChunkLo[i]%icache.ChunkBytes != 0 || b.ChunkHi[i]%icache.ChunkBytes != 0 {
			t.Errorf("instr %d chunks %#x..%#x not %d-byte aligned",
				gi, b.ChunkLo[i], b.ChunkHi[i], icache.ChunkBytes)
		}
		if b.ChunkLo[i] > b.ChunkHi[i] {
			t.Errorf("instr %d ChunkLo %#x > ChunkHi %#x", gi, b.ChunkLo[i], b.ChunkHi[i])
		}
	}
	if b.ByteLo != enc.Addr[b.Entry] {
		t.Errorf("ByteLo %#x, want %#x", b.ByteLo, enc.Addr[b.Entry])
	}
	if want := enc.Addr[last] + uint32(enc.Size[last]); b.ByteHi != want {
		t.Errorf("ByteHi %#x, want %#x", b.ByteHi, want)
	}

	// The jump micro-op must be flagged and its backward target
	// resolved to an instruction index inside the code.
	jumps := 0
	for oi, op := range b.Ops {
		if op.Flags&blockcache.FlagJump == 0 {
			continue
		}
		jumps++
		if op.Target < 0 || int(op.Target) >= len(code.Instrs) {
			t.Errorf("jump op %d target %d unresolved (label %q)", oi, op.Target, b.TargetLabel[oi])
		}
		if op.Lat < 1 || op.Lat > blockcache.MaxLatency {
			t.Errorf("jump op %d latency %d outside [1, %d]", oi, op.Lat, blockcache.MaxLatency)
		}
	}
	if jumps == 0 {
		t.Error("block carries no jump micro-op; the loop branch vanished")
	}
}

func TestTranslateRejectsBadEntry(t *testing.T) {
	tgt := config.TM3270()
	code, rm, enc := translated(t, loopProgram(2), tgt)
	for _, entry := range []int{-1, len(code.Instrs)} {
		if _, err := blockcache.Translate(code, rm, enc, &tgt, entry); err == nil {
			t.Errorf("entry %d accepted, want error", entry)
		}
	}
}

func TestTranslateRejectsLatencyBeyondHorizon(t *testing.T) {
	// A result latency past the engine's pending-write horizon cannot
	// be committed by the fixed ring; Translate must refuse statically
	// rather than corrupt state at runtime.
	b := prog.NewBuilder("bc_load")
	addr, v := b.Reg(), b.Reg()
	b.Ld32D(v, addr, 0)
	b.St32D(addr, 4, v)
	p := b.MustProgram()

	tgt := config.TM3270()
	tgt.LoadLatency = blockcache.MaxLatency + 1
	code, rm, enc := translated(t, p, tgt)
	_, err := blockcache.Translate(code, rm, enc, &tgt, 0)
	if err == nil {
		t.Fatal("latency beyond the commit horizon accepted")
	}
	if !strings.Contains(err.Error(), "horizon") {
		t.Errorf("error %q does not name the horizon", err)
	}
}

func TestCacheHitMissInvalidate(t *testing.T) {
	tgt := config.TM3270()
	code, rm, enc := translated(t, loopProgram(4), tgt)
	c := blockcache.New(code, rm, enc, &tgt)

	b0, err := c.Block(0)
	if err != nil {
		t.Fatalf("block 0: %v", err)
	}
	if c.Stats.Translated != 1 || c.Stats.Hits != 0 {
		t.Fatalf("after first entry: %+v, want 1 translation, 0 hits", c.Stats)
	}
	if b1, _ := c.Block(0); b1 != b0 {
		t.Error("second entry retranslated instead of hitting the cache")
	}
	if c.Stats.Hits != 1 {
		t.Errorf("hits = %d, want 1", c.Stats.Hits)
	}

	// A store range overlapping the block's bytes drops it; a disjoint
	// range (past code end) drops nothing.
	if n := c.InvalidateRange(b0.ByteHi+64, b0.ByteHi+68); n != 0 {
		t.Errorf("disjoint invalidation dropped %d blocks", n)
	}
	if n := c.InvalidateRange(b0.ByteLo, b0.ByteLo+1); n != 1 {
		t.Errorf("overlapping invalidation dropped %d blocks, want 1", n)
	}
	if c.Stats.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", c.Stats.Invalidations)
	}
	if c.Cached() != 0 {
		t.Errorf("%d blocks still cached after invalidation", c.Cached())
	}
	if _, err := c.Block(0); err != nil {
		t.Fatalf("retranslation after invalidation: %v", err)
	}
	if c.Stats.Translated != 2 {
		t.Errorf("translations = %d, want 2 (retranslated after drop)", c.Stats.Translated)
	}
}

func TestCacheCoversWholeProgram(t *testing.T) {
	// Entering every instruction index must tile the code completely:
	// each instruction belongs to the block entered at it, and blocks
	// never run past the first jump or the code end.
	tgt := config.TM3270()
	code, rm, enc := translated(t, loopProgram(4), tgt)
	c := blockcache.New(code, rm, enc, &tgt)
	for i := range code.Instrs {
		b, err := c.Block(i)
		if err != nil {
			t.Fatalf("block at %d: %v", i, err)
		}
		if b.Entry != i {
			t.Errorf("block entered at %d reports entry %d", i, b.Entry)
		}
		if b.Entry+b.N > len(code.Instrs) {
			t.Errorf("block at %d covers %d instrs, past code end %d", i, b.N, len(code.Instrs))
		}
	}
	if c.Cached() != len(code.Instrs) {
		t.Errorf("cached %d blocks for %d entries", c.Cached(), len(code.Instrs))
	}
}
