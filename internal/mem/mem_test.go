package mem_test

import (
	"testing"
	"testing/quick"

	"tm3270/internal/config"
	"tm3270/internal/mem"
)

func TestFuncBigEndian(t *testing.T) {
	m := mem.NewFunc()
	m.Store(0x100, 4, 0x11223344)
	if m.ByteAt(0x100) != 0x11 || m.ByteAt(0x103) != 0x44 {
		t.Error("stores must be big-endian")
	}
	if got := m.Load(0x101, 2); got != 0x2233 {
		t.Errorf("non-aligned 16-bit load = %#x", got)
	}
	if got := m.Load(0x0fe, 8); got != 0x0000112233440000 {
		t.Errorf("8-byte straddling load = %#x", got)
	}
}

// TestFuncDefinedPerByte: write-validity is tracked per byte, not per
// page — a written byte's neighbours on the same page stay undefined
// until individually written. This is the granularity the reference
// model uses, and strict mode in the pipeline model must match it.
func TestFuncDefinedPerByte(t *testing.T) {
	m := mem.NewFunc()
	if m.Defined(0x2000, 1) {
		t.Error("empty image must have no defined bytes")
	}
	m.Store(0x2004, 4, 0xdeadbeef)
	if !m.Defined(0x2004, 4) {
		t.Error("stored bytes must be defined")
	}
	if m.Defined(0x2003, 1) || m.Defined(0x2008, 1) {
		t.Error("neighbours of a store on the same page must stay undefined")
	}
	if m.Defined(0x2003, 4) || m.Defined(0x2006, 4) {
		t.Error("accesses straddling an undefined byte must report undefined")
	}
	if !m.Mapped(0x2000, 1) {
		t.Error("the page holding a written byte is mapped (page-granular view)")
	}
	// A write straddling a page boundary defines bytes on both pages.
	m.Store(0x2fff, 2, 0x1234)
	if !m.Defined(0x2fff, 2) {
		t.Error("page-straddling store must define both bytes")
	}
	if m.Defined(0x3001, 1) {
		t.Error("byte past the straddling store must stay undefined")
	}
}

func TestFuncRoundTripProperty(t *testing.T) {
	m := mem.NewFunc()
	f := func(addr uint32, v uint64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		mask := ^uint64(0)
		if n < 8 {
			mask = 1<<(8*n) - 1
		}
		m.Store(addr, n, v)
		return m.Load(addr, n) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFuncSparsePagesReadZero(t *testing.T) {
	m := mem.NewFunc()
	for _, addr := range []uint32{0, 0xffffffff, 0x8000_0000, 0x1234_5678} {
		if m.ByteAt(addr) != 0 {
			t.Errorf("untouched byte at %#x reads nonzero", addr)
		}
	}
}

func TestBIUTimingShape(t *testing.T) {
	tgt := config.TM3270()
	b := mem.NewBIU(&tgt)
	// A read's completion includes the first-access latency plus the
	// transfer; larger lines take longer.
	d64 := b.Read(&tgt, 0, 64, false)
	if d64 <= int64(tgt.MemLatencyCycles()) {
		t.Errorf("64B read done at %d, must exceed the %d-cycle latency", d64, tgt.MemLatencyCycles())
	}
	b2 := mem.NewBIU(&tgt)
	d128 := b2.Read(&tgt, 0, 128, false)
	if d128 <= d64 {
		t.Errorf("128B (%d) not slower than 64B (%d)", d128, d64)
	}
	// Writes occupy the bus but complete without the access latency.
	b3 := mem.NewBIU(&tgt)
	w := b3.Write(&tgt, 0, 128)
	if w >= d128 {
		t.Errorf("write completion %d should beat read %d (no CAS latency)", w, d128)
	}
	if b3.BytesWritten != 128 || b3.Writes != 1 {
		t.Error("write accounting wrong")
	}
}

func TestBIUBackToBackOccupancy(t *testing.T) {
	tgt := config.TM3270()
	b := mem.NewBIU(&tgt)
	var last int64
	for i := 0; i < 8; i++ {
		done := b.Read(&tgt, 0, 128, i%2 == 0)
		if done <= last {
			t.Fatalf("transfer %d done at %d, not after previous %d", i, done, last)
		}
		last = done
	}
	if b.DemandReads != 4 || b.PrefetchRead != 4 {
		t.Errorf("read classification: %d demand, %d prefetch", b.DemandReads, b.PrefetchRead)
	}
	if b.TotalBytes() != 8*128 {
		t.Errorf("total bytes %d", b.TotalBytes())
	}
	// Issuing after the bus drains starts immediately (BusyUntil moves).
	if b.BusyUntil() <= 0 {
		t.Error("occupancy horizon not tracked")
	}
}
