// Package mem provides the memory-system substrates: the functional
// (value-holding) memory image and the DDR SDRAM timing model behind the
// processor's bus interface unit.
package mem

// pageBits selects a 4 KB page granularity for the sparse image.
const pageBits = 12

// Func is a sparse functional memory image over the full 32-bit address
// space. All multi-byte accesses are big-endian and may be non-aligned,
// matching the ISA's memory semantics. The zero value is an empty image
// reading as zero everywhere.
type Func struct {
	pages map[uint32]*[1 << pageBits]byte
}

// NewFunc returns an empty memory image.
func NewFunc() *Func {
	return &Func{pages: make(map[uint32]*[1 << pageBits]byte)}
}

func (m *Func) page(addr uint32, create bool) *[1 << pageBits]byte {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil && create {
		p = new([1 << pageBits]byte)
		m.pages[idx] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Func) ByteAt(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p[addr&(1<<pageBits-1)]
	}
	return 0
}

// SetByte sets the byte at addr.
func (m *Func) SetByte(addr uint32, v byte) {
	m.page(addr, true)[addr&(1<<pageBits-1)] = v
}

// Load implements isa.Memory: n bytes (1..8) big-endian starting at addr.
func (m *Func) Load(addr uint32, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(m.ByteAt(addr+uint32(i)))
	}
	return v
}

// Store implements isa.Memory: the n low-order bytes of v, big-endian.
func (m *Func) Store(addr uint32, n int, v uint64) {
	for i := n - 1; i >= 0; i-- {
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Func) WriteBytes(addr uint32, b []byte) {
	for i, x := range b {
		m.SetByte(addr+uint32(i), x)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Func) ReadBytes(addr uint32, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.ByteAt(addr + uint32(i))
	}
	return b
}

// Diff returns the first address at which the two images differ. It
// compares the union of both images' populated pages.
func Diff(a, b *Func) (uint32, bool) {
	pages := map[uint32]bool{}
	for idx := range a.pages {
		pages[idx] = true
	}
	for idx := range b.pages {
		pages[idx] = true
	}
	for idx := range pages {
		base := idx << pageBits
		for off := uint32(0); off < 1<<pageBits; off++ {
			if a.ByteAt(base+off) != b.ByteAt(base+off) {
				return base + off, true
			}
		}
	}
	return 0, false
}
