// Package mem provides the memory-system substrates: the functional
// (value-holding) memory image and the DDR SDRAM timing model behind the
// processor's bus interface unit.
package mem

import "sort"

// pageBits selects a 4 KB page granularity for the sparse image.
const pageBits = 12

// LoadFault observes (and may corrupt) the value returned by every
// functional load. Fault injectors implement it; a nil Fault field is
// the fault-free fast path.
type LoadFault interface {
	// TapLoad receives the loaded value and returns the value the
	// processor actually sees.
	TapLoad(addr uint32, n int, v uint64) uint64
}

// page is one 4 KB page with a per-byte write-validity bitmap. The
// TM3270's allocate-on-write-miss data cache tracks validity per byte
// (Section 2.3); the functional image keeps the same granularity so
// strict mode can flag reads of individual never-written bytes — the
// same semantics as the reference model's memory, which the strict
// co-simulation test holds the two models to.
type page struct {
	data  [1 << pageBits]byte
	valid [1 << (pageBits - 3)]byte
}

// Func is a sparse functional memory image over the full 32-bit address
// space. All multi-byte accesses are big-endian and may be non-aligned,
// matching the ISA's memory semantics. The zero value is an empty image
// reading as zero everywhere.
//
// A Func is private to one machine (like its register file) and not
// safe for concurrent use: even reads go through a one-entry page
// cache that keeps the hot loop off the page map.
type Func struct {
	pages map[uint32]*page

	// One-entry page cache. Pages are never removed, so a cached
	// pointer can only go stale by never being populated, not by
	// pointing at dead state.
	lastIdx  uint32
	lastPage *page

	// Fault, when non-nil, taps every Load (fault injection).
	Fault LoadFault
}

// NewFunc returns an empty memory image.
func NewFunc() *Func {
	return &Func{pages: make(map[uint32]*page)}
}

func (m *Func) page(addr uint32, create bool) *page {
	idx := addr >> pageBits
	if m.lastPage != nil && m.lastIdx == idx {
		return m.lastPage
	}
	p := m.pages[idx]
	if p == nil && create {
		p = new(page)
		m.pages[idx] = p
	}
	if p != nil {
		m.lastIdx, m.lastPage = idx, p
	}
	return p
}

// Mapped reports whether every byte of [addr, addr+n) lies on a page
// that has been written at least once (page-granular; see Defined for
// the per-byte check strict mode uses).
func (m *Func) Mapped(addr uint32, n int) bool {
	if n < 1 {
		n = 1
	}
	first := addr >> pageBits
	last := (addr + uint32(n) - 1) >> pageBits
	if last < first {
		// The access wraps the 32-bit address space.
		return m.Mapped(addr, int(-addr)) && m.Mapped(0, n-int(-addr))
	}
	for idx := first; idx <= last; idx++ {
		if m.pages[idx] == nil {
			return false
		}
	}
	return true
}

// Defined reports whether every byte of [addr, addr+n) has been written
// at least once. The trap model uses it to turn reads of never-written
// bytes into diagnosable faults instead of silent zeroes, at the same
// per-byte granularity as the reference model.
func (m *Func) Defined(addr uint32, n int) bool {
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		a := addr + uint32(i)
		p := m.page(a, false)
		if p == nil {
			return false
		}
		off := a & (1<<pageBits - 1)
		if p.valid[off/8]&(1<<(off%8)) == 0 {
			return false
		}
	}
	return true
}

// PageAddrs returns the base addresses of all populated pages in
// ascending order. Fault injectors use it to pick corruption targets
// deterministically (map iteration order is randomized).
func (m *Func) PageAddrs() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for idx := range m.pages {
		out = append(out, idx<<pageBits)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByteAt returns the byte at addr.
func (m *Func) ByteAt(addr uint32) byte {
	if p := m.page(addr, false); p != nil {
		return p.data[addr&(1<<pageBits-1)]
	}
	return 0
}

// SetByte sets the byte at addr and marks it written.
func (m *Func) SetByte(addr uint32, v byte) {
	p := m.page(addr, true)
	off := addr & (1<<pageBits - 1)
	p.data[off] = v
	p.valid[off/8] |= 1 << (off % 8)
}

// FlipBit inverts one bit of the byte at addr (fault injection).
func (m *Func) FlipBit(addr uint32, bit uint) {
	m.SetByte(addr, m.ByteAt(addr)^(1<<(bit&7)))
}

// Load implements isa.Memory: n bytes (1..8) big-endian starting at addr.
func (m *Func) Load(addr uint32, n int) uint64 {
	var v uint64
	off := addr & (1<<pageBits - 1)
	if int(off)+n <= 1<<pageBits {
		// The access stays on one page: resolve it once.
		if p := m.page(addr, false); p != nil {
			for i := 0; i < n; i++ {
				v = v<<8 | uint64(p.data[off+uint32(i)])
			}
		}
	} else {
		for i := 0; i < n; i++ {
			v = v<<8 | uint64(m.ByteAt(addr+uint32(i)))
		}
	}
	if m.Fault != nil {
		v = m.Fault.TapLoad(addr, n, v)
	}
	return v
}

// Store implements isa.Memory: the n low-order bytes of v, big-endian.
func (m *Func) Store(addr uint32, n int, v uint64) {
	off := addr & (1<<pageBits - 1)
	if int(off)+n <= 1<<pageBits {
		p := m.page(addr, true)
		for i := n - 1; i >= 0; i-- {
			o := off + uint32(i)
			p.data[o] = byte(v)
			p.valid[o/8] |= 1 << (o % 8)
			v >>= 8
		}
		return
	}
	for i := n - 1; i >= 0; i-- {
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Func) WriteBytes(addr uint32, b []byte) {
	for i, x := range b {
		m.SetByte(addr+uint32(i), x)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Func) ReadBytes(addr uint32, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.ByteAt(addr + uint32(i))
	}
	return b
}

// Diff returns the first address at which the two images differ. It
// compares the union of both images' populated pages.
func Diff(a, b *Func) (uint32, bool) {
	return DiffIgnore(a, b, nil)
}

// DiffIgnore is Diff with an optional skip predicate: addresses for
// which ignore returns true are not compared. Fault campaigns use it to
// exclude the injected corruption sites themselves when deciding
// whether a fault propagated.
func DiffIgnore(a, b *Func, ignore func(addr uint32) bool) (uint32, bool) {
	pages := map[uint32]bool{}
	for idx := range a.pages {
		pages[idx] = true
	}
	for idx := range b.pages {
		pages[idx] = true
	}
	for idx := range pages {
		base := idx << pageBits
		for off := uint32(0); off < 1<<pageBits; off++ {
			addr := base + off
			if ignore != nil && ignore(addr) {
				continue
			}
			if a.ByteAt(addr) != b.ByteAt(addr) {
				return addr, true
			}
		}
	}
	return 0, false
}
