package mem

import (
	"tm3270/internal/config"
	"tm3270/internal/telemetry"
)

// ReadFault injects extra latency into bus reads (DDR refresh storms,
// arbitration spikes). Fault injectors implement it; nil is fault-free.
type ReadFault interface {
	// ReadDelay returns extra CPU cycles added to the read's latency
	// and bus occupancy.
	ReadDelay(bytes int, prefetch bool) int64
}

// BIU models the bus interface unit and the 32-bit DDR SDRAM behind it.
// It tracks bus occupancy (transactions serialize FCFS) and converts
// between the SoC memory clock and the processor clock, standing in for
// the asynchronous clock-domain crossing of the real BIU. All times are
// in CPU cycles.
type BIU struct {
	latency  int64 // first-access latency (activate + CAS + crossing)
	overhead int64 // per-transaction occupancy beyond data transfer
	busyTill int64

	// Fault, when non-nil, adds injected latency to reads.
	Fault ReadFault

	// Events, when non-nil, receives one occupancy interval per bus
	// transaction on the bus lane.
	Events *telemetry.Trace

	// Statistics.
	Reads, Writes             int64
	BytesRead, BytesWritten   int64
	DemandReads, PrefetchRead int64
}

// NewBIU derives the timing parameters from the target.
func NewBIU(t *config.Target) *BIU {
	return &BIU{
		latency:  int64(t.MemLatencyCycles()),
		overhead: int64((t.MemOverheadNs*t.FreqMHz + 999) / 1000),
	}
}

func transferCycles(t *config.Target, bytes int) int64 {
	beats := (bytes + t.MemBusBytes - 1) / t.MemBusBytes
	busCycles := (beats + 1) / 2 // DDR: two beats per bus clock
	if busCycles < 1 {
		busCycles = 1
	}
	return int64((busCycles*t.FreqMHz + t.MemBusMHz - 1) / t.MemBusMHz)
}

// Read issues a line read of the given size at CPU cycle now and returns
// the cycle at which the data is fully available. Demand reads stall the
// processor until then; prefetch reads run in the background.
func (b *BIU) Read(t *config.Target, now int64, bytes int, prefetch bool) int64 {
	start := max64(now, b.busyTill)
	tr := transferCycles(t, bytes)
	if b.Fault != nil {
		tr += b.Fault.ReadDelay(bytes, prefetch)
	}
	b.busyTill = start + b.overhead + tr
	b.Reads++
	b.BytesRead += int64(bytes)
	name := "read:demand"
	if prefetch {
		b.PrefetchRead++
		name = "read:prefetch"
	} else {
		b.DemandReads++
	}
	b.Events.Complete(telemetry.LaneBus, name, "bus",
		start, b.busyTill-start, map[string]any{"bytes": bytes})
	return start + b.latency + tr
}

// Write issues a copyback of the given size. Copybacks do not stall the
// processor; they only occupy the bus.
func (b *BIU) Write(t *config.Target, now int64, bytes int) int64 {
	start := max64(now, b.busyTill)
	tr := transferCycles(t, bytes)
	b.busyTill = start + b.overhead + tr
	b.Writes++
	b.BytesWritten += int64(bytes)
	b.Events.Complete(telemetry.LaneBus, "write:copyback", "bus",
		start, b.busyTill-start, map[string]any{"bytes": bytes})
	return start + tr
}

// BusyUntil exposes the current occupancy horizon (tests, prefetch
// throttling).
func (b *BIU) BusyUntil() int64 { return b.busyTill }

// TotalBytes returns all off-chip traffic.
func (b *BIU) TotalBytes() int64 { return b.BytesRead + b.BytesWritten }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
