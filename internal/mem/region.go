package mem

import "fmt"

// Region is one named address range [Lo, Hi) of a workload's declared
// memory map: an input buffer, an output buffer, a table, or an MMIO
// window. The static verifier (internal/binverify) proves load/store
// addresses in-bounds against the union of a workload's regions; the
// declaration is part of the kernel's contract, alongside its argument
// registers.
type Region struct {
	Name   string
	Lo, Hi uint32 // byte addresses, half-open [Lo, Hi)
}

// Contains reports whether the address lies inside the region.
func (r Region) Contains(addr uint32) bool { return addr >= r.Lo && addr < r.Hi }

func (r Region) String() string {
	return fmt.Sprintf("%s[%#x,%#x)", r.Name, r.Lo, r.Hi)
}
