package binverify

import "tm3270/internal/isa"

// checkCanonical flags decoded slots whose unused encoding fields
// deviate from the canonical all-zero form the encoder emits. The
// hardware ignores these fields, so a corrupted image can differ from
// the intended one without any architecturally visible effect — the
// classic silent single-event-upset. Pinning the canonical form turns
// every such flip into a static finding: a store's dest field, a nop's
// operand fields, the immediate of a register-register op, or a shift
// amount beyond the 5 bits the shifter consumes must all be zero (or,
// for the shift, within 0..31).
//
// Extension halves are skipped — their fields are owned by the two-slot
// main op and validated during extraction — as are undefined opcodes,
// which already carry a CheckOpcode error.
func (v *verifier) checkCanonical() {
	for i := range v.dec {
		for s, d := range v.dec[i].Slots {
			if d == nil || d.IsExt() {
				continue
			}
			oc := isa.Opcode(d.Opcode)
			info, ok := isa.InfoOK(oc)
			if !ok {
				continue
			}
			if oc == isa.OpNOP {
				if d.Guard != isa.R1 || d.S1 != 0 || d.S2 != 0 || d.D != 0 || d.Imm != 0 {
					v.diag(i, s+1, info.Name, CheckEncoding, Warn,
						"nop with non-canonical operand fields (guard %s, s1 %s, s2 %s, d %s, imm %#x)",
						d.Guard, d.S1, d.S2, d.D, d.Imm)
				}
				continue
			}
			if info.NDest == 0 && d.D != 0 {
				v.diag(i, s+1, info.Name, CheckEncoding, Warn,
					"%s writes no register but its dest field holds %s", info.Name, d.D)
			}
			if info.NSrc < 1 && d.S1 != 0 {
				v.diag(i, s+1, info.Name, CheckEncoding, Warn,
					"%s reads no source but its src1 field holds %s", info.Name, d.S1)
			}
			if info.NSrc < 2 && d.S2 != 0 {
				v.diag(i, s+1, info.Name, CheckEncoding, Warn,
					"%s reads %d source(s) but its src2 field holds %s", info.Name, info.NSrc, d.S2)
			}
			if !info.HasImm && d.Imm != 0 {
				v.diag(i, s+1, info.Name, CheckEncoding, Warn,
					"%s takes no immediate but its imm field holds %#x", info.Name, d.Imm)
			}
			if info.Class == isa.UnitShifter && info.HasImm && d.Imm > 31 {
				v.diag(i, s+1, info.Name, CheckEncoding, Warn,
					"%s shift amount %d exceeds 31: the shifter consumes 5 bits", info.Name, d.Imm)
			}
		}
	}
}
