package binverify

import (
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/prefetch"
)

// The static cycle-bound model. tmsim's cycle count decomposes exactly
// into issued instructions + fetch stalls + data stalls, so the bound
// is built from the same three parts:
//
//   - Issue: every reachable instruction costs one cycle per execution;
//     executions are bounded by the product of the bounds of the
//     enclosing natural loops (sound for reducible CFGs — the analysis
//     refuses to bound irreducible ones).
//
//   - Bus charges: the BIU serializes transactions. A transaction of
//     tr transfer cycles occupies the bus for overhead+tr cycles, and
//     a demand read additionally hides latency+tr cycles of its own
//     completion. Because the core is single-threaded and a stall
//     advances time to the transaction's completion, each transaction's
//     completion is waited on at most once; charging every read
//     latency + 2*(overhead+tr) and every write/copyback overhead+tr
//     therefore covers both its own stall and its backlog contribution
//     to any later access.
//
//   - Data: a load misses at most per touched line (<= 2 for unaligned
//     sizes), each miss costing a copyback eviction plus a demand read;
//     on prefetching targets every load may additionally trigger one
//     region-prefetch fill. A store miss costs at most an eviction plus
//     a fetch-on-write/merge read per line; allocd costs one eviction.
//
//   - Fetch: instruction fetch misses at line granularity. When the
//     kernel's code lines provably fit their icache sets (lines per set
//     <= associativity) each line misses at most once regardless of
//     control flow, so the fetch charge is lines * read; otherwise the
//     model falls back to two line reads per executed instruction.
type CycleBound struct {
	Bounded bool
	Cycles  int64 // total worst-case cycles (valid when Bounded)

	Issue, Fetch, Data int64 // decomposition of Cycles

	Loops []LoopInfo
	Notes []string // reasons for unboundedness or fallback choices
}

// LoopInfo is one natural loop's bound in the report.
type LoopInfo struct {
	HeaderPC uint32
	Header   int   // instruction index of the header
	Bound    int64 // 0 when unknown
	Source   string
}

// WCET computes the whole-program worst-case cycle bound of a decoded
// binary on the given target. The semantic layer (loops, ranges) runs
// regardless of the Options' check toggles; diagnostics are reported
// through Verify, not here.
func WCET(dec []encode.DecInstr, t *config.Target, opts *Options) *CycleBound {
	use := Options{}
	if opts != nil {
		use = *opts
	}
	if !use.semantic() {
		use.LoopBounds = map[uint32]int{}
	}
	v := newVerifier(dec, t, &use)
	if len(dec) > 0 {
		v.run()
	}
	return v.cycleBound()
}

const satCycles = int64(1) << 62

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > satCycles/b {
		return satCycles
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > satCycles-b {
		return satCycles
	}
	return a + b
}

// busCharges are the per-transaction worst-case cycle charges.
type busCharges struct {
	readData  int64 // demand/background read of one dcache line
	writeData int64 // copyback of one dcache line
	readInstr int64 // read of one icache line
}

func charges(t *config.Target) busCharges {
	overhead := int64((t.MemOverheadNs*t.FreqMHz + 999) / 1000)
	lat := int64(t.MemLatencyCycles())
	trD := int64(t.CyclesPerLine(t.DCache.LineBytes))
	trI := int64(t.CyclesPerLine(t.ICache.LineBytes))
	return busCharges{
		readData:  lat + 2*(overhead+trD),
		writeData: overhead + trD,
		readInstr: lat + 2*(overhead+trI),
	}
}

func (v *verifier) cycleBound() *CycleBound {
	cb := &CycleBound{Bounded: true}
	n := len(v.dec)
	if n == 0 {
		return cb
	}

	for _, l := range v.loops {
		if l.irreducible {
			cb.Bounded = false
			cb.Notes = append(cb.Notes, fmt.Sprintf(
				"irreducible control flow at pc=%#x", v.dec[l.header].Addr))
			continue
		}
		cb.Loops = append(cb.Loops, LoopInfo{
			HeaderPC: v.dec[l.header].Addr, Header: l.header,
			Bound: l.bound, Source: l.source,
		})
		if l.bound == 0 {
			cb.Bounded = false
			cb.Notes = append(cb.Notes, fmt.Sprintf(
				"loop at pc=%#x has no bound", v.dec[l.header].Addr))
		}
	}
	if !cb.Bounded {
		return cb
	}

	// Worst-case executions per instruction: the product of the bounds
	// of every loop whose body contains it.
	count := make([]int64, n)
	for i := 0; i < n; i++ {
		if !v.reach[i] {
			continue
		}
		count[i] = 1
		for _, l := range v.loops {
			if l.body.has(i) {
				count[i] = satMul(count[i], l.bound)
			}
		}
	}

	ch := charges(v.t)
	lineB := int64(v.t.DCache.LineBytes)
	for i := 0; i < n; i++ {
		if count[i] == 0 {
			continue
		}
		cb.Issue = satAdd(cb.Issue, count[i])
	}
	if foot, ok := v.dataFootprint(count); ok {
		// Every access's address interval is known and the union of
		// touched lines fits its cache sets: each line is filled at
		// most once (allocations find an invalid way first), so the
		// whole data traffic is one eviction + fill per footprint line.
		cb.Data = satMul(int64(len(foot)), ch.writeData+ch.readData)
		cb.Notes = append(cb.Notes, fmt.Sprintf(
			"data footprint of %d lines fits the cache: one fill per line", len(foot)))
	} else {
		for i := 0; i < n; i++ {
			if count[i] == 0 {
				continue
			}
			var per int64
			for k := range v.ops[i] {
				op := &v.ops[i][k]
				if neverExec(op) {
					continue
				}
				switch {
				case op.info.IsLoad:
					lines := memLines(v, i, op, lineB)
					per = satAdd(per, lines*(ch.writeData+ch.readData))
					if v.t.HasRegionPrefetch {
						per = satAdd(per, ch.writeData+ch.readData)
					}
				case op.info.MemBytes == 0 && op.info.IsStore:
					per = satAdd(per, ch.writeData) // allocd: eviction only
				case op.info.IsStore:
					lines := memLines(v, i, op, lineB)
					per = satAdd(per, lines*(ch.writeData+ch.readData))
				}
			}
			cb.Data = satAdd(cb.Data, satMul(count[i], per))
		}
	}

	cb.Fetch = v.fetchBound(count, ch, cb)
	cb.Cycles = satAdd(satAdd(cb.Issue, cb.Fetch), cb.Data)
	return cb
}

// footprintCap bounds the span of a single access interval admitted
// into the persistent-footprint argument; wider intervals would
// enumerate too many lines to be worth it.
const footprintCap = int64(1) << 22

// dataFootprint attempts the cache-persistence argument for the data
// side. It succeeds when every reachable load/store has a statically
// known address interval and the union of all touched cache lines has
// at most `ways` distinct lines per set — then allocations always find
// an invalid way, no line is ever evicted, and each line misses at most
// once regardless of access order. Accesses provably confined to the
// prefetch MMIO window bypass the data cache and are excluded; if any
// MMIO store exists (the prefetch engine may be armed), the declared
// memory map's lines join the footprint, since region prefetches land
// in the data cache too. (Regions are assumed to be programmed within
// the declared map — the mem-range proofs pin every CPU access there.)
func (v *verifier) dataFootprint(count []int64) (map[int64]bool, bool) {
	if v.ranges == nil {
		return nil, false
	}
	lineB := int64(v.t.DCache.LineBytes)
	const mmioLo, mmioHi = int64(prefetch.MMIOBase), int64(prefetch.MMIOBase) + int64(prefetch.MMIOSize)
	foot := map[int64]bool{}
	mmioStore := false
	for i := range v.dec {
		if count[i] == 0 || v.ranges[i] == nil {
			continue
		}
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if neverExec(op) || (!op.info.IsLoad && !op.info.IsStore) {
				continue
			}
			addr, ok := memAddress(op, v.ranges[i])
			if !ok {
				return nil, false
			}
			size := int64(op.info.MemBytes)
			if size < 1 {
				size = 1
			}
			if addr.lo >= mmioLo && addr.hi+size <= mmioHi {
				mmioStore = mmioStore || op.info.IsStore
				continue // MMIO bypasses the data cache
			}
			if addr.hi+size > mmioLo && addr.lo < mmioHi {
				return nil, false // may straddle the MMIO window
			}
			if addr.hi-addr.lo > footprintCap {
				return nil, false
			}
			for l := addr.lo / lineB; l <= (addr.hi+size-1)/lineB; l++ {
				foot[l] = true
			}
		}
	}
	if v.t.HasRegionPrefetch && mmioStore {
		for _, reg := range v.opts.MemMap {
			if int64(reg.Hi)-int64(reg.Lo) > footprintCap {
				return nil, false
			}
			for l := int64(reg.Lo) / lineB; l <= (int64(reg.Hi)-1)/lineB; l++ {
				foot[l] = true
			}
		}
	}
	sets := int64(v.t.DCache.Sets())
	perSet := map[int64]int{}
	for l := range foot {
		s := l % sets
		perSet[s]++
		if perSet[s] > v.t.DCache.Ways {
			return nil, false
		}
	}
	return foot, true
}

// memLines bounds the cache lines one access touches: exact when the
// address interval is a singleton, otherwise 1 for single-byte accesses
// and 2 for anything that may straddle a line boundary.
func memLines(v *verifier, i int, op *vop, lineB int64) int64 {
	size := int64(op.info.MemBytes)
	if size <= 1 {
		return 1
	}
	if v.ranges != nil && v.ranges[i] != nil {
		if addr, ok := memAddress(op, v.ranges[i]); ok && addr.singleton() {
			return (addr.lo+size-1)/lineB - addr.lo/lineB + 1
		}
	}
	return 2
}

// fetchBound charges instruction fetch. Preferred model: every distinct
// code line misses at most once, valid when the code's lines fit their
// icache sets. Fallback: two line reads per executed instruction.
func (v *verifier) fetchBound(count []int64, ch busCharges, cb *CycleBound) int64 {
	lineB := int64(v.t.ICache.LineBytes)
	sets := int64(v.t.ICache.Sets())
	lines := map[int64]bool{}
	for i := range v.dec {
		if count[i] == 0 {
			continue
		}
		lo := int64(v.dec[i].Addr) / lineB
		hi := (int64(v.dec[i].Addr) + int64(v.dec[i].Size) - 1) / lineB
		for l := lo; l <= hi; l++ {
			lines[l] = true
		}
	}
	perSet := map[int64]int{}
	fits := true
	for l := range lines {
		s := l % sets
		perSet[s]++
		if perSet[s] > v.t.ICache.Ways {
			fits = false
		}
	}
	if fits {
		return satMul(int64(len(lines)), ch.readInstr)
	}
	cb.Notes = append(cb.Notes,
		"code lines exceed icache associativity; fetch charged per executed instruction")
	var total int64
	for i := range v.dec {
		if count[i] == 0 {
			continue
		}
		lo := int64(v.dec[i].Addr) / lineB
		hi := (int64(v.dec[i].Addr) + int64(v.dec[i].Size) - 1) / lineB
		total = satAdd(total, satMul(count[i], satMul(hi-lo+1, ch.readInstr)))
	}
	return total
}
