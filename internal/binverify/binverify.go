// Package binverify is the whole-program static verifier for decoded
// TM3270 binaries. The TM3270 pipeline has no register interlocks and a
// template-compressed encoding, so the correctness of a binary rests
// entirely on static properties: latency-safe schedules, legal
// slot/unit placement, well-paired two-slot operations and jump targets
// that land on decodable instruction boundaries. The scheduler's own
// sched.Verify checks its intra-block vreg IR; this package re-derives
// the hardware contract independently, over the machine code the
// simulator actually executes ([]encode.DecInstr), and — unlike the
// drain rule — propagates in-flight register writes *across* block
// boundaries (join over predecessors), so it also accepts and checks
// code no TriMedia compiler would emit.
//
// Analyses:
//
//   - exposed-pipeline latency hazards: a register read before its
//     in-flight write commits, across arbitrary control flow
//   - WAW ordering: a write committing at or before an earlier write
//   - slot/unit legality per isa.SlotMask (and the target's load-issue
//     restrictions), two-slot pairing (extension halves adjacent)
//   - register-file write-port pressure (at most 5 commits per cycle)
//   - writes to the hardwired registers r0/r1
//   - jump targets on instruction boundaries, jump-delay-window overlap
//   - may-uninitialized register reads and unreachable instructions
//
// Findings are structured diagnostics (PC, slot, opcode, check name) in
// the spirit of tmsim.TrapError, never Go errors or panics: malformed-
// but-decodable code is the expected input.
package binverify

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warn marks findings that may fault or depend on dynamic state
	// (possibly-uninitialized reads, unreachable code, conditional
	// delay-window overlap).
	Warn Severity = iota
	// Error marks definite violations of the hardware contract: the
	// binary reads stale values, traps, or misuses the issue slots on
	// every execution that reaches the finding.
	Error
)

// String names the severity.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Checks reported by the verifier, in Diag.Check.
const (
	CheckOpcode      = "opcode"       // undefined opcode in the stream
	CheckPair        = "pair"         // two-slot pairing violations
	CheckEncoding    = "encoding"     // non-canonical unused encoding fields
	CheckSlot        = "slot"         // op issued in an illegal slot
	CheckUnsupported = "unsupported"  // op the target does not implement
	CheckLoadIssue   = "load-issue"   // too many loads in one instruction
	CheckHardwired   = "hardwired"    // write to r0/r1
	CheckLatency     = "latency"      // read before the write commits
	CheckWAW         = "waw"          // write-after-write order violation
	CheckWBPorts     = "wb-ports"     // >5 register commits in one cycle
	CheckJumpTarget  = "jump-target"  // target not on an instr boundary
	CheckDelayWindow = "delay-window" // overlapping/truncated jump windows
	CheckUninit      = "uninit"       // may-uninitialized register read
	CheckUnreachable = "unreachable"  // instruction no path reaches
	CheckMemRange    = "mem-range"    // access provably outside the memory map
	CheckDeadGuard   = "dead-guard"   // guard provably false: the op is dead
	CheckLoopBound   = "loop-bound"   // loop with no inferable/annotated bound
)

// Diag is one structured finding, locatable in the binary: the
// instruction index and byte address (PC), the issue slot and mnemonic
// when the finding concerns one operation, the analysis that fired and
// a human-readable message.
type Diag struct {
	Index    int    // instruction index in the decoded stream
	PC       uint32 // byte address of the instruction
	Slot     int    // 1-based issue slot; 0 for instruction-level findings
	Op       string // mnemonic, when the finding concerns one operation
	Check    string // which analysis fired (Check* constants)
	Severity Severity
	Msg      string
}

// String renders the diagnostic on one line.
func (d *Diag) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: pc=%#x instr %d", d.Severity, d.PC, d.Index)
	if d.Slot > 0 {
		fmt.Fprintf(&b, " slot %d", d.Slot)
	}
	if d.Op != "" {
		fmt.Fprintf(&b, " %s", d.Op)
	}
	fmt.Fprintf(&b, " [%s]: %s", d.Check, d.Msg)
	return b.String()
}

// Report is the outcome of one verification run.
type Report struct {
	Diags []Diag
}

// Errors counts the Error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for i := range r.Diags {
		if r.Diags[i].Severity == Error {
			n++
		}
	}
	return n
}

// Warnings counts the Warn-severity diagnostics.
func (r *Report) Warnings() int { return len(r.Diags) - r.Errors() }

// Clean reports whether the binary passed with no findings at all.
func (r *Report) Clean() bool { return len(r.Diags) == 0 }

// Write renders every diagnostic, one per line.
func (r *Report) Write(w io.Writer) {
	for i := range r.Diags {
		fmt.Fprintln(w, r.Diags[i].String())
	}
}

func (r *Report) add(d Diag) { r.Diags = append(r.Diags, d) }

// Options tunes a verification run.
type Options struct {
	// EntryDefined lists the registers holding meaningful values at
	// kernel entry (the argument registers); r0/r1 are always defined.
	// When non-nil the may-uninitialized-read analysis runs; nil means
	// the entry contract is unknown and the analysis is skipped.
	EntryDefined []isa.Reg

	// EntryValues gives the concrete 32-bit value of entry registers
	// (the workload's arguments): the seeds of the value-range analysis.
	// Setting it (even empty) enables the semantic layer — interval
	// analysis, dead-guard detection and loop-bound inference.
	EntryValues map[isa.Reg]uint32

	// MemMap declares the address ranges the kernel may touch. When
	// non-empty, the range analysis flags loads/stores whose address
	// interval is provably disjoint from every region (CheckMemRange).
	MemMap []mem.Region

	// LoopBounds maps a loop-header byte address to the maximum number
	// of times control enters it per run: the annotation escape hatch
	// for loops whose trip count inference cannot derive.
	LoopBounds map[uint32]int
}

// semantic reports whether the abstract-interpretation layer (ranges,
// dead guards, loop bounds) should run. It is opt-in via EntryValues /
// MemMap / LoopBounds so that structural-only callers (the fuzzers, the
// differential campaign over generated programs) keep their baseline
// "clean means clean" contract.
func (o *Options) semantic() bool {
	return o != nil && (o.EntryValues != nil || o.MemMap != nil || o.LoopBounds != nil)
}

// Verify runs every analysis over a decoded binary for the given
// target. It never panics and never returns a Go error: all findings,
// including structural ones, are diagnostics in the report.
func Verify(dec []encode.DecInstr, t *config.Target, opts *Options) *Report {
	v := newVerifier(dec, t, opts)
	if len(dec) > 0 {
		v.run()
	}
	sort.SliceStable(v.rep.Diags, func(i, j int) bool {
		a, b := &v.rep.Diags[i], &v.rep.Diags[j]
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.Slot != b.Slot {
			return a.Slot < b.Slot
		}
		return a.Check < b.Check
	})
	return v.rep
}

// vop is the verifier's view of one operation: the decoded slot fields
// fused with the ISA metadata, two-slot halves joined.
type vop struct {
	slot   int // 1-based first issue slot
	oc     isa.Opcode
	info   *isa.OpInfo
	guard  isa.Reg
	srcs   []isa.Reg
	dests  []isa.Reg
	imm    uint32 // sign-extended immediate, when info.HasImm
	target uint32 // jump target byte address
}

// mn returns the mnemonic for diagnostics.
func (v *vop) mn() string { return v.info.Name }

type verifier struct {
	dec  []encode.DecInstr
	t    *config.Target
	rep  *Report
	opts *Options

	ops   [][]vop // fused operations per instruction
	succ  [][]int // CFG successor instruction indices (len(dec) = exit)
	preds [][]int // reverse CFG, built on demand by the semantic layer
	reach []bool
	jumps []jumpRef

	uninitOn     bool
	entryDefined map[isa.Reg]bool

	// Semantic-layer results (nil/empty until the passes run).
	dom    []bitset     // dom[i]: nodes dominating i (reachable nodes only)
	loops  []*loop      // natural loops, merged by header
	ranges []rangeState // per-node register intervals at entry
}

func newVerifier(dec []encode.DecInstr, t *config.Target, opts *Options) *verifier {
	v := &verifier{dec: dec, t: t, rep: &Report{}, opts: opts}
	if opts != nil && opts.EntryDefined != nil {
		v.uninitOn = true
		v.entryDefined = make(map[isa.Reg]bool, len(opts.EntryDefined)+2)
		for _, r := range opts.EntryDefined {
			v.entryDefined[r] = true
		}
	}
	return v
}

func (v *verifier) run() {
	v.extract()
	v.checkCanonical()
	v.checkStructure()
	v.jumps = v.analyzeJumps()
	v.buildCFG(v.jumps)
	v.checkReachability()
	v.dataflow()
	v.checkWritePorts()
	if v.opts.semantic() {
		v.semantic()
	}
}

// semantic runs the abstract-interpretation layer: dominators, natural
// loops, the interval fixpoint, loop-bound inference, and the checks
// built on them (mem-range, dead-guard, loop-bound).
func (v *verifier) semantic() {
	v.buildPreds()
	v.dominators()
	v.findLoops()
	v.rangeFixpoint(nil)                  // widen induction candidates to top
	v.inferLoopBounds()                   // needs entry-edge intervals from the first pass
	v.rangeFixpoint(v.boundedWidenings()) // re-run with per-loop clamps
	v.checkRanges()
	v.checkLoopBounds()
}

func (v *verifier) diag(idx, slot int, op, check string, sev Severity, format string, args ...any) {
	v.rep.add(Diag{
		Index:    idx,
		PC:       v.dec[idx].Addr,
		Slot:     slot,
		Op:       op,
		Check:    check,
		Severity: sev,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// extract fuses each instruction's decoded slots into vops, reporting
// pairing and opcode-validity findings along the way.
func (v *verifier) extract() {
	v.ops = make([][]vop, len(v.dec))
	for i := range v.dec {
		in := &v.dec[i]
		for s := 0; s < 5; s++ {
			d := in.Slots[s]
			if d == nil {
				continue
			}
			if d.IsExt() {
				// A consumed extension half is skipped by the s++ below;
				// reaching one here means no two-slot main precedes it.
				v.diag(i, s+1, "ext", CheckPair, Error,
					"extension half without a two-slot operation in slot %d", s)
				continue
			}
			info, ok := isa.InfoOK(isa.Opcode(d.Opcode))
			if !ok {
				// Decode validates opcodes, so this only fires on decoded
				// streams built by hand; report instead of panicking.
				v.diag(i, s+1, fmt.Sprintf("op%d", d.Opcode), CheckOpcode, Error,
					"undefined opcode %d", d.Opcode)
				continue
			}
			if isa.Opcode(d.Opcode) == isa.OpNOP {
				continue
			}
			op := vop{slot: s + 1, oc: isa.Opcode(d.Opcode), info: info,
				guard: d.Guard, imm: d.Imm, target: d.Target}
			for k := 0; k < info.NSrc && k < 2; k++ {
				op.srcs = append(op.srcs, [2]isa.Reg{d.S1, d.S2}[k])
			}
			if info.NDest > 0 {
				op.dests = append(op.dests, d.D)
			}
			if info.TwoSlot {
				if s+1 >= 5 || in.Slots[s+1] == nil || !in.Slots[s+1].IsExt() {
					v.diag(i, s+1, info.Name, CheckPair, Error,
						"two-slot %s lacks its extension half in slot %d", info.Name, s+2)
				} else {
					ext := in.Slots[s+1]
					if info.NSrc > 2 {
						op.srcs = append(op.srcs, ext.S1)
					}
					if info.NSrc > 3 {
						op.srcs = append(op.srcs, ext.S2)
					}
					if info.NDest > 1 {
						op.dests = append(op.dests, ext.D)
					}
					s++ // extension half consumed
				}
			}
			v.ops[i] = append(v.ops[i], op)
		}
	}
}

// slotMask returns the issue slots op may legally occupy on the target
// (the first slot of the pair for two-slot operations).
func (v *verifier) slotMask(op *vop) isa.SlotMask {
	if op.info.Class == isa.UnitLoad {
		return v.t.LoadSlots
	}
	return isa.DefaultSlots(op.info.Class)
}

func maskString(m isa.SlotMask) string {
	var b strings.Builder
	for s := 1; s <= 5; s++ {
		if m.Has(s) {
			if b.Len() > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", s)
		}
	}
	return "{" + b.String() + "}"
}

// checkStructure runs the per-instruction checks: target support, slot
// legality, load-issue width and hardwired-register writes.
func (v *verifier) checkStructure() {
	for i := range v.dec {
		loads := 0
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if !v.t.Supports(op.oc) {
				v.diag(i, op.slot, op.mn(), CheckUnsupported, Error,
					"%s is not implemented by target %s", op.mn(), v.t.Name)
			}
			mask := v.slotMask(op)
			if !mask.Has(op.slot) {
				what := "issue"
				if op.info.TwoSlot {
					what = "start its slot pair"
				}
				v.diag(i, op.slot, op.mn(), CheckSlot, Error,
					"%s (unit %s) may not %s in slot %d (legal slots %s)",
					op.mn(), op.info.Class, what, op.slot, maskString(mask))
			}
			if op.info.IsLoad {
				loads++
			}
			for _, d := range op.dests {
				if d.Hardwired() {
					v.diag(i, op.slot, op.mn(), CheckHardwired, Error,
						"writes hardwired register %s (the write is silently dropped)", d)
				}
			}
		}
		if loads > v.t.MaxLoadsPerInstr {
			v.diag(i, 0, "", CheckLoadIssue, Error,
				"%d loads in one instruction; target %s issues at most %d",
				loads, v.t.Name, v.t.MaxLoadsPerInstr)
		}
	}
}
