package binverify

import (
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
)

func TestSatArithmetic(t *testing.T) {
	if got := satAdd(1, 2); got != 3 {
		t.Errorf("satAdd(1,2) = %d", got)
	}
	if got := satAdd(satCycles, satCycles); got != satCycles {
		t.Errorf("satAdd did not saturate: %d", got)
	}
	if got := satMul(3, 4); got != 12 {
		t.Errorf("satMul(3,4) = %d", got)
	}
	if got := satMul(0, satCycles); got != 0 {
		t.Errorf("satMul(0,x) = %d", got)
	}
	if got := satMul(satCycles, 2); got != satCycles {
		t.Errorf("satMul did not saturate: %d", got)
	}
}

// countedLoop is a TM3260 counted loop: iaddi advances r2 by 1, ilesi
// compares it against the limit, and the back-edge jump (3 delay slots,
// so the edge lands from node 5) re-enters the header at node 0.
func countedLoop(limit uint32) []encode.DecInstr {
	return stream(
		[5]*encode.DecOp{{Opcode: uint16(isa.OpIADDI), Guard: isa.R1, S1: r2, D: r2, Imm: 1}},
		[5]*encode.DecOp{{Opcode: uint16(isa.OpILESI), Guard: isa.R1, S1: r2, D: r4, Imm: limit}},
		[5]*encode.DecOp{nil, jmp(isa.OpJMPT, r4, addrOf(0))},
		[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
	)
}

func TestLoopBoundInferredVsAnnotation(t *testing.T) {
	tgt := config.TM3260()
	dec := countedLoop(16)
	opts := func(bounds map[uint32]int) *Options {
		return &Options{
			EntryValues:  map[isa.Reg]uint32{r2: 0},
			EntryDefined: []isa.Reg{r2},
			LoopBounds:   bounds,
		}
	}

	// Pure inference: 16 continues observed pre-update, plus the final
	// failing test -> 17 header entries.
	cb := WCET(dec, &tgt, opts(nil))
	if !cb.Bounded || len(cb.Loops) != 1 {
		t.Fatalf("inferred: bounded=%v loops=%+v notes=%v", cb.Bounded, cb.Loops, cb.Notes)
	}
	if cb.Loops[0].Bound != 17 || cb.Loops[0].Source != "inferred" {
		t.Errorf("inferred bound = %d (%s), want 17 (inferred)",
			cb.Loops[0].Bound, cb.Loops[0].Source)
	}

	// A tighter annotation is a stronger promise and wins.
	cb = WCET(dec, &tgt, opts(map[uint32]int{addrOf(0): 10}))
	if cb.Loops[0].Bound != 10 || cb.Loops[0].Source != "annotation" {
		t.Errorf("tight annotation: bound = %d (%s), want 10 (annotation)",
			cb.Loops[0].Bound, cb.Loops[0].Source)
	}

	// A looser annotation never weakens a sound inference.
	cb = WCET(dec, &tgt, opts(map[uint32]int{addrOf(0): 100}))
	if cb.Loops[0].Bound != 17 || cb.Loops[0].Source != "inferred" {
		t.Errorf("loose annotation: bound = %d (%s), want 17 (inferred)",
			cb.Loops[0].Bound, cb.Loops[0].Source)
	}
}

// irreducibleCycle builds a cycle with two distinct entries (nodes 5 and
// 6), so neither dominates the cycle: the first jump (edge from node 3)
// enters at 6, the second (edge from node 7) closes the cycle at 5,
// which does not dominate node 7.
func irreducibleCycle() []encode.DecInstr {
	return stream(
		[5]*encode.DecOp{nil, jmp(isa.OpJMPT, r4, addrOf(6))},
		[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
		[5]*encode.DecOp{nil, jmp(isa.OpJMPT, r5, addrOf(5))},
		[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
	)
}

func TestIrreducibleCycle(t *testing.T) {
	tgt := config.TM3260()
	cb := WCET(irreducibleCycle(), &tgt, nil)
	if cb.Bounded {
		t.Fatalf("irreducible cycle reported bounded: %d cycles", cb.Cycles)
	}
	if len(cb.Notes) == 0 || !strings.Contains(cb.Notes[0], "irreducible") {
		t.Errorf("notes = %v, want an irreducible-control-flow note", cb.Notes)
	}

	rep := Verify(irreducibleCycle(), &tgt, &Options{
		EntryValues:  map[isa.Reg]uint32{},
		EntryDefined: []isa.Reg{r4, r5},
	})
	found := false
	for _, d := range rep.Diags {
		if d.Check == CheckLoopBound && strings.Contains(d.Msg, "irreducible") {
			found = true
		}
	}
	if !found {
		t.Errorf("no irreducible loop-bound diagnostic: %v", checks(rep))
	}
}

// TestWCETPerAccessFallback drives the data side through the
// per-access path: one load's address is statically unknown, so the
// cache-persistence argument fails and every access is charged
// individually (the known-address store exactly, the unknown load at
// two lines plus the region-prefetch fill, allocd as eviction only).
func TestWCETPerAccessFallback(t *testing.T) {
	tgt := config.ConfigD()
	dec := stream(
		[5]*encode.DecOp{nil, nil, nil,
			st32(isa.R1, r2, 0, r3),
			op(isa.OpLD32D, isa.R1, r4, 0, r10)},
		[5]*encode.DecOp{nil, nil, nil,
			{Opcode: uint16(isa.OpALLOCD), Guard: isa.R1, S1: r2, Imm: 0x40}},
	)
	cb := WCET(dec, &tgt, &Options{
		EntryValues:  map[isa.Reg]uint32{r2: 0x1000, r3: 7},
		EntryDefined: []isa.Reg{r2, r3, r4},
	})
	if !cb.Bounded {
		t.Fatalf("unbounded: %v", cb.Notes)
	}
	if cb.Data <= 0 {
		t.Errorf("Data = %d, want positive per-access charges", cb.Data)
	}
	for _, n := range cb.Notes {
		if strings.HasPrefix(n, "data footprint") {
			t.Errorf("persistence argument succeeded with an unknown load address: %v", cb.Notes)
		}
	}
}

// TestWCETTinyCacheFallbacks shrinks both caches below the kernel so
// the persistence arguments fail on associativity: the three stores'
// lines collide in one dcache set, and the code spans more icache lines
// than one way holds, forcing the per-instruction fetch charge.
func TestWCETTinyCacheFallbacks(t *testing.T) {
	tgt := config.ConfigD()
	tgt.ICache = config.CacheConfig{SizeBytes: 128, LineBytes: 64, Ways: 1}
	tgt.DCache = config.CacheConfig{SizeBytes: 128, LineBytes: 64, Ways: 1,
		WriteMiss: tgt.DCache.WriteMiss}

	filler := func(d isa.Reg) [5]*encode.DecOp {
		return [5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, d)}
	}
	dec := stream(
		[5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0, r3)},
		[5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0x80, r3)},
		[5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0x100, r3)},
		filler(r10), filler(r11), filler(r12), filler(r13),
		filler(r14), filler(r15), filler(r10),
	)
	cb := WCET(dec, &tgt, &Options{
		EntryValues:  map[isa.Reg]uint32{r2: 0, r3: 7},
		EntryDefined: []isa.Reg{r2, r3},
	})
	if !cb.Bounded {
		t.Fatalf("unbounded: %v", cb.Notes)
	}
	fetchFallback := false
	for _, n := range cb.Notes {
		if strings.Contains(n, "icache associativity") {
			fetchFallback = true
		}
		if strings.HasPrefix(n, "data footprint") {
			t.Errorf("persistence argument succeeded past a 1-way 2-set dcache: %v", cb.Notes)
		}
	}
	if !fetchFallback {
		t.Errorf("fetch side used the line-persistence model: notes = %v", cb.Notes)
	}
	if cb.Data <= 0 || cb.Fetch <= 0 {
		t.Errorf("Data = %d, Fetch = %d, want positive fallback charges", cb.Data, cb.Fetch)
	}
}

// TestMemRangeIndexedInBounds pins the indexed-addressing (base +
// index register) path of the address evaluator.
func TestMemRangeIndexedInBounds(t *testing.T) {
	tgt := config.ConfigD()
	dec := stream(
		[5]*encode.DecOp{nil, nil, nil, nil, op(isa.OpLD32R, isa.R1, r2, r3, r10)},
	)
	rep := Verify(dec, &tgt, &Options{
		EntryValues:  map[isa.Reg]uint32{r2: 0x1000, r3: 0x10},
		EntryDefined: []isa.Reg{r2, r3},
		MemMap:       buf(0x1000, 0x2000),
	})
	if !rep.Clean() {
		t.Errorf("in-bounds indexed load flagged: %v", checks(rep))
	}
}

// TestMemRangeWrapNormalization pins the unsigned normalization of
// address intervals: a negative displacement result names the high half
// of the address space, and a sum past 2^32 wraps back down.
func TestMemRangeWrapNormalization(t *testing.T) {
	tgt := config.ConfigD()

	// 0 + (-16) = 0xfffffff0: provably outside the declared buffer.
	dec := stream(
		[5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0xfffffff0, r3)},
	)
	rep := Verify(dec, &tgt, &Options{
		EntryValues:  map[isa.Reg]uint32{r2: 0, r3: 7},
		EntryDefined: []isa.Reg{r2, r3},
		MemMap:       buf(0x1000, 0x2000),
	})
	wantCheck(t, rep, CheckMemRange, Error, 0)

	// 0xfffffff0 + 0x20 wraps to 0x10: inside a low region.
	dec = stream(
		[5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0x20, r3)},
	)
	rep = Verify(dec, &tgt, &Options{
		EntryValues:  map[isa.Reg]uint32{r2: 0xfffffff0, r3: 7},
		EntryDefined: []isa.Reg{r2, r3},
		MemMap:       buf(0, 0x100),
	})
	if !rep.Clean() {
		t.Errorf("wrapped-down store flagged: %v", checks(rep))
	}
}
