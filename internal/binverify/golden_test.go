package binverify

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden diagnostic renderings")

// withDest returns the op with its (unused) dest field set, for the
// canonical-encoding scenario.
func withDest(d *encode.DecOp, dest isa.Reg) *encode.DecOp {
	d.D = dest
	return d
}

// TestDiagGolden pins the exact one-line rendering of every check kind
// and the deterministic report ordering (instruction index, then slot,
// then check name). The golden file is the compatibility contract for
// everything that scrapes tm3270lint output; rerun with -update after
// deliberate wording changes.
func TestDiagGolden(t *testing.T) {
	t60, t70 := config.TM3260(), config.TM3270()
	semantic := func(vals map[isa.Reg]uint32) *Options {
		return &Options{EntryValues: vals}
	}
	scenarios := []struct {
		name string
		tgt  *config.Target
		dec  []encode.DecInstr
		opts *Options
	}{
		{"opcode", &t70, stream(
			[5]*encode.DecOp{{Opcode: 0x7fff, Guard: isa.R1}},
		), nil},
		{"pair", &t70, stream(
			[5]*encode.DecOp{ext(r2, r3, r10)},
		), nil},
		{"encoding", &t70, stream(
			[5]*encode.DecOp{
				{Opcode: uint16(isa.OpIADD), Guard: isa.R1, S1: r2, S2: r3, D: r10, Imm: 8},
				{Opcode: uint16(isa.OpNOP), Guard: r4},
				nil,
				withDest(st32(isa.R1, r2, 0, r3), r11)},
			[5]*encode.DecOp{
				{Opcode: uint16(isa.OpLSRI), Guard: isa.R1, S1: r2, D: r12, Imm: 0x90}},
		), nil},
		{"slot", &t70, stream(
			[5]*encode.DecOp{nil, nil, op(isa.OpASL, isa.R1, r2, r3, r10)},
		), nil},
		{"unsupported", &t60, stream(
			[5]*encode.DecOp{nil, op(isa.OpSUPERDUALIMIX, isa.R1, r2, r3, r10), ext(r4, r5, r11)},
		), nil},
		{"load-issue", &t70, stream(
			[5]*encode.DecOp{nil, nil, nil,
				op(isa.OpLD32D, isa.R1, r2, 0, r10),
				op(isa.OpLD32D, isa.R1, r3, 0, r11)},
		), nil},
		{"hardwired", &t70, stream(
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, isa.R0)},
		), nil},
		{"latency", &t70, stream(
			[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10)},
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)},
		), nil},
		{"waw", &t70, stream(
			[5]*encode.DecOp{
				op(isa.OpIADD, isa.R1, r2, r2, r10),
				op(isa.OpISUB, isa.R1, r3, r2, r10)},
		), nil},
		{"wb-ports", &t70, stream(
			[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10), op(isa.OpIMUL, isa.R1, r2, r3, r11)},
			[5]*encode.DecOp{op(isa.OpDSPIADD, isa.R1, r2, r3, r12), nil, op(isa.OpDSPIADD, isa.R1, r2, r3, r13)},
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, r14), op(isa.OpIADD, isa.R1, r2, r3, r15)},
		), nil},
		{"jump-target", &t60, stream(
			[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(1)+5)},
			[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
		), nil},
		{"delay-window", &t60, stream(
			[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(6))},
			[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(6))},
			[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
			[5]*encode.DecOp{}, [5]*encode.DecOp{},
		), nil},
		{"uninit", &t70, stream(
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, r10)},
		), &Options{EntryDefined: []isa.Reg{r2}}},
		{"unreachable", &t60, stream(
			[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(5))},
			[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r2, r10)},
			[5]*encode.DecOp{},
		), nil},
		{"mem-range", &t70, stream(
			[5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0, r3)},
		), &Options{
			EntryValues: map[isa.Reg]uint32{r2: 0x100, r3: 7},
			MemMap:      buf(0x1000, 0x2000),
		}},
		{"dead-guard", &t70, stream(
			[5]*encode.DecOp{op(isa.OpIADD, r4, r2, r2, r10)},
		), semantic(map[isa.Reg]uint32{r4: 0, r2: 1})},
		{"loop-bound", &t60, unboundedLoop(),
			semantic(map[isa.Reg]uint32{r2: 1})},
		// Three findings across two instructions and three slots: pins
		// the index-then-slot-then-check report ordering.
		{"ordering", &t70, stream(
			[5]*encode.DecOp{
				op(isa.OpIADD, isa.R1, r2, r3, isa.R0),
				op(isa.OpIMUL, isa.R1, r2, r3, r10),
				op(isa.OpASL, isa.R1, r2, r3, r11)},
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r12)},
		), nil},
	}

	var b strings.Builder
	for _, sc := range scenarios {
		rep := Verify(sc.dec, sc.tgt, sc.opts)
		if rep.Clean() {
			t.Errorf("%s: scenario produced no diagnostics", sc.name)
			continue
		}
		fmt.Fprintf(&b, "== %s\n", sc.name)
		rep.Write(&b)
	}
	got := b.String()

	path := filepath.Join("testdata", "diags.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("diagnostic renderings changed (rerun with -update if deliberate)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
