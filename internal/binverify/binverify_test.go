package binverify

import (
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/workloads"
)

const testBase = 0x0100_0000

// stream builds a decoded instruction stream by hand. Addresses advance
// by a fixed stride so tests can compute jump targets with addrOf.
func stream(instrs ...[5]*encode.DecOp) []encode.DecInstr {
	const stride = 28
	dec := make([]encode.DecInstr, len(instrs))
	for i := range instrs {
		dec[i] = encode.DecInstr{Addr: testBase + uint32(i*stride), Size: stride, Slots: instrs[i]}
	}
	return dec
}

func addrOf(i int) uint32 { return testBase + uint32(i*28) }

func op(oc isa.Opcode, g, s1, s2, d isa.Reg) *encode.DecOp {
	return &encode.DecOp{Opcode: uint16(oc), Guard: g, S1: s1, S2: s2, D: d}
}

func jmp(oc isa.Opcode, g isa.Reg, target uint32) *encode.DecOp {
	return &encode.DecOp{Opcode: uint16(oc), Guard: g, Target: target}
}

func ext(s1, s2, d isa.Reg) *encode.DecOp {
	return &encode.DecOp{Opcode: encode.SuperExtOpcode, Guard: isa.R1, S1: s1, S2: s2, D: d}
}

// checks collects the Check field of every diagnostic.
func checks(r *Report) []string {
	var cs []string
	for i := range r.Diags {
		cs = append(cs, r.Diags[i].Check)
	}
	return cs
}

// wantCheck asserts at least one diagnostic of the given check and
// severity landed at the given instruction index.
func wantCheck(t *testing.T, r *Report, check string, sev Severity, idx int) {
	t.Helper()
	for i := range r.Diags {
		d := &r.Diags[i]
		if d.Check == check && d.Severity == sev && d.Index == idx {
			if d.PC == 0 {
				t.Errorf("%s diagnostic has no PC: %s", check, d.String())
			}
			return
		}
	}
	t.Errorf("no %s %s at instr %d; got %v", sev, check, idx, checks(r))
}

func wantOnly(t *testing.T, r *Report, check string) {
	t.Helper()
	for i := range r.Diags {
		if r.Diags[i].Check != check {
			t.Errorf("unexpected diagnostic: %s", r.Diags[i].String())
		}
	}
}

var r2, r3, r4, r5, r10, r11, r12, r13, r14, r15 = isa.Reg(2), isa.Reg(3),
	isa.Reg(4), isa.Reg(5), isa.Reg(10), isa.Reg(11), isa.Reg(12),
	isa.Reg(13), isa.Reg(14), isa.Reg(15)

// compileWorkload runs a workload through the schedule/allocate/encode/
// decode pipeline and builds the full semantic verification options
// (entry values, memory map, loop-bound annotations) — the same
// contract runner.(*Artifact).VerifyOptions ships to production
// callers, rebuilt here because the runner package imports this one.
func compileWorkload(t *testing.T, w *workloads.Spec, tgt config.Target) ([]encode.DecInstr, *Options, error) {
	t.Helper()
	code, err := sched.Schedule(w.Prog, tgt)
	if err != nil {
		return nil, nil, err
	}
	rm, err := regalloc.Allocate(w.Prog)
	if err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	enc, err := encode.Encode(code, rm, testBase)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := encode.Decode(enc.Bytes, testBase, len(code.Instrs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	opts := &Options{EntryValues: map[isa.Reg]uint32{}, MemMap: w.Regions}
	for v, val := range w.Args {
		opts.EntryDefined = append(opts.EntryDefined, rm.Reg(v))
		opts.EntryValues[rm.Reg(v)] = val
	}
	if len(w.Prog.LoopBounds) > 0 {
		opts.LoopBounds = map[uint32]int{}
		for label, n := range w.Prog.LoopBounds {
			if idx, ok := code.Labels[label]; ok {
				opts.LoopBounds[enc.Addr[idx]] = n
			}
		}
	}
	return dec, opts, nil
}

// TestWorkloadsVerifyClean is the acceptance gate: every shipped
// workload, scheduled and encoded for each target configuration it
// supports, must verify with zero diagnostics of any severity under the
// full semantic options — entry values, declared memory map and
// loop-bound annotations. Zero false positives from the range and loop
// analyses is what lets `make lint` treat any finding as a regression.
func TestWorkloadsVerifyClean(t *testing.T) {
	p := workloads.Small()
	for _, tgt := range []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
	} {
		for _, name := range workloads.Names() {
			w, err := workloads.ByName(name, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			dec, opts, err := compileWorkload(t, w, tgt)
			if err != nil {
				if w.TM3270Only {
					continue // super-op workloads do not schedule on earlier targets
				}
				t.Fatalf("%s on %s: schedule: %v", name, tgt.Name, err)
			}
			rep := Verify(dec, &tgt, opts)
			if !rep.Clean() {
				var b strings.Builder
				rep.Write(&b)
				t.Errorf("%s on %s: %d diagnostics:\n%s", name, tgt.Name, len(rep.Diags), b.String())
			}
		}
	}
}

func TestLatencyHazardStraightLine(t *testing.T) {
	tgt := config.TM3270()
	dec := stream(
		[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10)},
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)},
	)
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckLatency, Error, 1)
	wantOnly(t, rep, CheckLatency)
}

// TestLatencyHazardAcrossJumpEdge puts the producing write in a taken
// jump's delay slots and the consuming read at the jump target: the
// hazard flows along the CFG jump edge, which no intra-block rule sees.
func TestLatencyHazardAcrossJumpEdge(t *testing.T) {
	tgt := config.TM3260() // 3 delay slots keep the stream small
	dec := stream(
		[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(5))},
		[5]*encode.DecOp{},
		[5]*encode.DecOp{},
		[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10)}, // delay slot
		[5]*encode.DecOp{}, // skipped
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)}, // jump target
	)
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckLatency, Error, 5)
	wantOnly(t, rep, CheckLatency)
}

// TestLatencyJoinOverPredecessors builds a diamond where only the
// fallthrough path leaves a write in flight: the may-join must still
// report the hazard at the merge point.
func TestLatencyJoinOverPredecessors(t *testing.T) {
	tgt := config.TM3260()
	dec := stream(
		[5]*encode.DecOp{nil, jmp(isa.OpJMPT, r4, addrOf(6))}, // conditional
		[5]*encode.DecOp{},
		[5]*encode.DecOp{},
		[5]*encode.DecOp{}, // redirect node: taken -> 6, else -> 4
		[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10)},
		[5]*encode.DecOp{},
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)}, // merge
	)
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckLatency, Error, 6)
	wantOnly(t, rep, CheckLatency)
}

func TestSlotViolation(t *testing.T) {
	tgt := config.TM3270()
	// The shifter lives in slots 1-2; slot 3 is illegal.
	dec := stream([5]*encode.DecOp{nil, nil, op(isa.OpASL, isa.R1, r2, r3, r10)})
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckSlot, Error, 0)
	wantOnly(t, rep, CheckSlot)
}

func TestLoadSlotIsConfigDependent(t *testing.T) {
	// Slot 4 loads are legal on the TM3260, illegal on the TM3270.
	dec := stream([5]*encode.DecOp{nil, nil, nil, op(isa.OpLD32D, isa.R1, r2, 0, r10)})
	t60, t70 := config.TM3260(), config.TM3270()
	if rep := Verify(dec, &t60, nil); !rep.Clean() {
		t.Errorf("TM3260 slot-4 load flagged: %v", checks(rep))
	}
	rep := Verify(dec, &t70, nil)
	wantCheck(t, rep, CheckSlot, Error, 0)
}

func TestHardwiredWrite(t *testing.T) {
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, isa.R0)})
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckHardwired, Error, 0)
}

func TestTwoSlotPairing(t *testing.T) {
	tgt := config.TM3270()
	t.Run("missing-ext", func(t *testing.T) {
		dec := stream([5]*encode.DecOp{nil, op(isa.OpSUPERDUALIMIX, isa.R1, r2, r3, r10)})
		rep := Verify(dec, &tgt, nil)
		wantCheck(t, rep, CheckPair, Error, 0)
	})
	t.Run("stray-ext", func(t *testing.T) {
		dec := stream([5]*encode.DecOp{ext(r2, r3, r10)})
		rep := Verify(dec, &tgt, nil)
		wantCheck(t, rep, CheckPair, Error, 0)
	})
	t.Run("well-paired", func(t *testing.T) {
		dec := stream([5]*encode.DecOp{nil, op(isa.OpSUPERDUALIMIX, isa.R1, r2, r3, r10), ext(r4, r5, r11)})
		rep := Verify(dec, &tgt, nil)
		if !rep.Clean() {
			t.Errorf("paired super op flagged: %v", checks(rep))
		}
	})
	t.Run("pair-in-wrong-slot", func(t *testing.T) {
		// Super pair starting in slot 3 instead of 2.
		dec := stream([5]*encode.DecOp{nil, nil, op(isa.OpSUPERDUALIMIX, isa.R1, r2, r3, r10), ext(r4, r5, r11)})
		rep := Verify(dec, &tgt, nil)
		wantCheck(t, rep, CheckSlot, Error, 0)
	})
}

func TestUnsupportedOpOnTM3260(t *testing.T) {
	tgt := config.TM3260()
	dec := stream([5]*encode.DecOp{nil, op(isa.OpSUPERDUALIMIX, isa.R1, r2, r3, r10), ext(r4, r5, r11)})
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckUnsupported, Error, 0)
}

func TestJumpTarget(t *testing.T) {
	tgt := config.TM3260()
	t.Run("off-boundary", func(t *testing.T) {
		dec := stream(
			[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(1)+5)},
			[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
		)
		rep := Verify(dec, &tgt, nil)
		wantCheck(t, rep, CheckJumpTarget, Error, 0)
	})
	t.Run("end-address-is-legal-exit", func(t *testing.T) {
		dec := stream(
			[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(5))},
			[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
		)
		rep := Verify(dec, &tgt, nil)
		if !rep.Clean() {
			t.Errorf("jump to image end flagged: %v", checks(rep))
		}
	})
}

func TestDelayWindowOverlap(t *testing.T) {
	tgt := config.TM3260()
	dec := stream(
		[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(6))},
		[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(6))},
		[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
		[5]*encode.DecOp{}, [5]*encode.DecOp{},
	)
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckDelayWindow, Error, 1)
}

func TestWAW(t *testing.T) {
	tgt := config.TM3270()
	t.Run("across-instructions", func(t *testing.T) {
		// imul r10 commits at issue+3; the iadd one instruction later
		// commits at issue+2, before it: write order inverted.
		dec := stream(
			[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10)},
			[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r2, r10)},
		)
		rep := Verify(dec, &tgt, nil)
		wantCheck(t, rep, CheckWAW, Error, 1)
	})
	t.Run("same-instruction", func(t *testing.T) {
		dec := stream([5]*encode.DecOp{
			op(isa.OpIADD, isa.R1, r2, r2, r10),
			op(isa.OpISUB, isa.R1, r3, r2, r10),
		})
		rep := Verify(dec, &tgt, nil)
		wantCheck(t, rep, CheckWAW, Error, 0)
	})
}

func TestUninitRead(t *testing.T) {
	tgt := config.TM3270()
	dec := stream(
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, r10)},
	)
	rep := Verify(dec, &tgt, &Options{EntryDefined: []isa.Reg{r2}})
	wantCheck(t, rep, CheckUninit, Warn, 0)
	// With r3 declared too, the read is clean.
	rep = Verify(dec, &tgt, &Options{EntryDefined: []isa.Reg{r2, r3}})
	if !rep.Clean() {
		t.Errorf("fully-defined read flagged: %v", checks(rep))
	}
	// With the analysis off (nil options), no finding.
	if rep := Verify(dec, &tgt, nil); !rep.Clean() {
		t.Errorf("uninit analysis ran without options: %v", checks(rep))
	}
}

func TestGuardedWriteDefines(t *testing.T) {
	tgt := config.TM3270()
	// An if-converted (guarded) write still defines its register...
	dec := stream(
		[5]*encode.DecOp{op(isa.OpIADD, r4, r2, r2, r10)}, // guarded by r4
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)},
	)
	rep := Verify(dec, &tgt, &Options{EntryDefined: []isa.Reg{r2, r4}})
	if !rep.Clean() {
		t.Errorf("guarded write flagged: %v", checks(rep))
	}
	// ...but a statically dead write (guard r0) does not.
	dec = stream(
		[5]*encode.DecOp{op(isa.OpIADD, isa.R0, r2, r2, r10)},
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)},
	)
	rep = Verify(dec, &tgt, &Options{EntryDefined: []isa.Reg{r2, r4}})
	wantCheck(t, rep, CheckUninit, Warn, 1)
}

func TestUnreachable(t *testing.T) {
	tgt := config.TM3260()
	dec := stream(
		[5]*encode.DecOp{nil, jmp(isa.OpJMPI, isa.R1, addrOf(5))},
		[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r2, r10)}, // skipped forever
		[5]*encode.DecOp{},
	)
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckUnreachable, Warn, 4)
	wantOnly(t, rep, CheckUnreachable)
}

func TestWritebackPortPressure(t *testing.T) {
	tgt := config.TM3270()
	// Six results commit in the same cycle: 2 muls (lat 3) + 2 DSP adds
	// (lat 2) + 2 ALU adds (lat 1) all land together.
	dec := stream(
		[5]*encode.DecOp{nil, op(isa.OpIMUL, isa.R1, r2, r3, r10), op(isa.OpIMUL, isa.R1, r2, r3, r11)},
		[5]*encode.DecOp{op(isa.OpDSPIADD, isa.R1, r2, r3, r12), nil, op(isa.OpDSPIADD, isa.R1, r2, r3, r13)},
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r3, r14), op(isa.OpIADD, isa.R1, r2, r3, r15)},
	)
	rep := Verify(dec, &tgt, nil)
	wantCheck(t, rep, CheckWBPorts, Error, 2)
}

func TestMaxLoadsPerInstr(t *testing.T) {
	t60 := config.TM3260()
	// Two loads per instruction are legal on the TM3260 (slots 4+5)...
	dec := stream([5]*encode.DecOp{nil, nil, nil,
		op(isa.OpLD32D, isa.R1, r2, 0, r10),
		op(isa.OpLD32D, isa.R1, r3, 0, r11)})
	if rep := Verify(dec, &t60, nil); !rep.Clean() {
		t.Errorf("TM3260 dual load flagged: %v", checks(rep))
	}
	// ...but the TM3270 issues at most one (and only in slot 5).
	t70 := config.TM3270()
	rep := Verify(dec, &t70, nil)
	wantCheck(t, rep, CheckLoadIssue, Error, 0)
}

func TestEmptyStream(t *testing.T) {
	tgt := config.TM3270()
	if rep := Verify(nil, &tgt, nil); !rep.Clean() {
		t.Errorf("empty stream flagged: %v", checks(rep))
	}
}

func TestDiagString(t *testing.T) {
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{nil, nil, op(isa.OpASL, isa.R1, r2, r3, r10)})
	rep := Verify(dec, &tgt, nil)
	if len(rep.Diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %v", checks(rep))
	}
	s := rep.Diags[0].String()
	for _, want := range []string{"error", "pc=0x1000000", "slot 3", "asl", "[slot]"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic %q missing %q", s, want)
		}
	}
	if rep.Errors() != 1 || rep.Warnings() != 0 {
		t.Errorf("Errors/Warnings = %d/%d, want 1/0", rep.Errors(), rep.Warnings())
	}
}
