package binverify

import (
	"tm3270/internal/isa"
	"tm3270/internal/sched"
)

// The latency analysis tracks, per register, how many instructions
// remain until an in-flight write commits. The pipeline commits a write
// of latency L issued at index j before the instruction at index j+L
// executes, so at the entry of node j+k the register has L-k
// instructions pending; any read while pend > 0 observes the stale
// value. The analysis is a forward may-analysis: the join over
// predecessors takes the per-register maximum, so a hazard on any
// incoming path is reported. The definedness analysis is the dual
// must-analysis (join = intersection): a register is defined only if
// every path to the node wrote it unconditionally.
type dfState struct {
	pend map[isa.Reg]int  // instructions until the in-flight write commits
	def  map[isa.Reg]bool // nil when the uninit analysis is off
}

func (s *dfState) clone() *dfState {
	c := &dfState{pend: make(map[isa.Reg]int, len(s.pend))}
	for r, p := range s.pend {
		c.pend[r] = p
	}
	if s.def != nil {
		c.def = make(map[isa.Reg]bool, len(s.def))
		for r := range s.def {
			c.def[r] = true
		}
	}
	return c
}

// mergeFrom joins o into s, reporting whether s changed.
func (s *dfState) mergeFrom(o *dfState) bool {
	changed := false
	for r, p := range o.pend {
		if p > s.pend[r] {
			s.pend[r] = p
			changed = true
		}
	}
	if s.def != nil {
		for r := range s.def {
			if !o.def[r] {
				delete(s.def, r)
				changed = true
			}
		}
	}
	return changed
}

// neverExec reports whether the operation's hardwired guard statically
// disables it (r0 reads 0, r1 reads 1; the guard check is on the low
// bit). Such an operation is dead: it neither reads nor writes.
func neverExec(op *vop) bool {
	if op.info.GuardInverted {
		return op.guard == isa.R1
	}
	return op.guard == isa.R0
}

// transfer computes the state at the next node's entry from the state
// at node i's entry, emitting diagnostics when report is set. Reads
// observe the entry state (operands are gathered before any write of
// the same instruction commits).
func (v *verifier) transfer(i int, in *dfState, report bool) *dfState {
	if report {
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if neverExec(op) {
				continue
			}
			regs := make([]isa.Reg, 0, 5)
			regs = append(regs, op.guard)
			regs = append(regs, op.srcs...)
			for _, r := range regs {
				if r.Hardwired() {
					continue
				}
				if p := in.pend[r]; p > 0 {
					v.diag(i, op.slot, op.mn(), CheckLatency, Error,
						"reads %s %d instruction(s) before its in-flight write commits", r, p)
				}
				if in.def != nil && !in.def[r] {
					v.diag(i, op.slot, op.mn(), CheckUninit, Warn,
						"reads %s, which may be uninitialized on some path to this instruction", r)
				}
			}
		}
	}

	out := in.clone()
	for r, p := range out.pend {
		if p <= 1 {
			delete(out.pend, r)
		} else {
			out.pend[r] = p - 1
		}
	}
	for k := range v.ops[i] {
		op := &v.ops[i][k]
		if neverExec(op) {
			continue
		}
		lat := v.t.OpLatency(op.oc)
		for _, d := range op.dests {
			if d.Hardwired() {
				continue
			}
			// The earlier write commits at i+pend, this one at i+lat: the
			// earlier one landing at the same cycle or later inverts the
			// write order the schedule promised.
			if report && in.pend[d] >= lat {
				v.diag(i, op.slot, op.mn(), CheckWAW, Error,
					"writes %s while an earlier write is still in flight and commits no earlier (WAW order violation)", d)
			}
			if lat > 1 {
				out.pend[d] = lat - 1
			} else {
				delete(out.pend, d)
			}
			// A guarded (if-converted) write still defines the register for
			// the may-uninit analysis: flagging it would drown real
			// never-written-on-some-path reads in false positives.
			if out.def != nil {
				out.def[d] = true
			}
		}
	}
	return out
}

// dataflow runs the worklist fixpoint over the CFG, then a final
// deterministic reporting pass in instruction order.
func (v *verifier) dataflow() {
	n := len(v.dec)
	entry := &dfState{pend: map[isa.Reg]int{}}
	if v.uninitOn {
		entry.def = map[isa.Reg]bool{isa.R0: true, isa.R1: true}
		for r := range v.entryDefined {
			entry.def[r] = true
		}
	}

	states := make([]*dfState, n)
	states[0] = entry
	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		queued[i] = false
		out := v.transfer(i, states[i], false)
		for _, s := range v.succ[i] {
			if s >= n {
				continue // exit
			}
			changed := false
			if states[s] == nil {
				states[s] = out.clone()
				changed = true
			} else {
				changed = states[s].mergeFrom(out)
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}

	for i := 0; i < n; i++ {
		if states[i] != nil {
			v.transfer(i, states[i], true)
		}
	}
}

// checkWritePorts counts, per straight-line issue cycle, how many
// register results commit together, and flags cycles that need more
// write ports than the register file has (sched.WBPorts). It also flags
// two operations of one instruction writing the same register — an
// intra-instruction WAW the dataflow (which tracks one pending write
// per register) would mask.
func (v *verifier) checkWritePorts() {
	n := len(v.dec)
	maxLat := 1
	counts := make(map[int]int)
	for i := 0; i < n; i++ {
		seen := map[isa.Reg]int{} // dest -> slot of the first writer
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if neverExec(op) {
				continue
			}
			lat := v.t.OpLatency(op.oc)
			if lat > maxLat {
				maxLat = lat
			}
			for _, d := range op.dests {
				if d.Hardwired() {
					continue
				}
				if first, dup := seen[d]; dup {
					v.diag(i, op.slot, op.mn(), CheckWAW, Error,
						"writes %s already written by the operation in slot %d of the same instruction", d, first)
				} else {
					seen[d] = op.slot
				}
				counts[i+lat]++
			}
		}
	}
	for c := 1; c < n+maxLat; c++ {
		if counts[c] <= sched.WBPorts {
			continue
		}
		anchor := c
		if anchor >= n {
			anchor = n - 1
		}
		v.diag(anchor, 0, "", CheckWBPorts, Error,
			"%d register writebacks commit in the same cycle; the register file has %d write ports",
			counts[c], sched.WBPorts)
	}
}
