package binverify

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/workloads"
)

// st32 builds a displacement store (address = S1 + imm, value = S2).
func st32(g, base isa.Reg, imm uint32, val isa.Reg) *encode.DecOp {
	return &encode.DecOp{Opcode: uint16(isa.OpST32D), Guard: g, S1: base, S2: val, Imm: imm}
}

func buf(lo, hi uint32) []mem.Region {
	return []mem.Region{{Name: "buf", Lo: lo, Hi: hi}}
}

func TestMemRangeProvablyOutside(t *testing.T) {
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0, r3)})
	rep := Verify(dec, &tgt, &Options{
		EntryValues: map[isa.Reg]uint32{r2: 0x100, r3: 7},
		MemMap:      buf(0x1000, 0x2000),
	})
	wantCheck(t, rep, CheckMemRange, Error, 0)
	wantOnly(t, rep, CheckMemRange)
}

func TestMemRangeGuardUnknownIsWarning(t *testing.T) {
	// The store's address is provably outside the map, but its guard
	// value is not static: the access is wrong whenever it executes, yet
	// it may never execute — a warning, not an error.
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{nil, nil, nil, st32(r4, r2, 0, r3)})
	rep := Verify(dec, &tgt, &Options{
		EntryValues: map[isa.Reg]uint32{r2: 0x100, r3: 7},
		MemMap:      buf(0x1000, 0x2000),
	})
	wantCheck(t, rep, CheckMemRange, Warn, 0)
}

func TestMemRangeInBoundsIsClean(t *testing.T) {
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0x40, r3)})
	rep := Verify(dec, &tgt, &Options{
		EntryValues: map[isa.Reg]uint32{r2: 0x1000, r3: 7},
		MemMap:      buf(0x1000, 0x2000),
	})
	if !rep.Clean() {
		t.Errorf("in-bounds store flagged: %v", checks(rep))
	}
}

func TestMemRangeOffWithoutMemMap(t *testing.T) {
	// Same provably-wild store, but no declared memory map: the check
	// has nothing to prove against and must stay silent.
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{nil, nil, nil, st32(isa.R1, r2, 0, r3)})
	rep := Verify(dec, &tgt, &Options{EntryValues: map[isa.Reg]uint32{r2: 0x100, r3: 7}})
	if !rep.Clean() {
		t.Errorf("store flagged without a memory map: %v", checks(rep))
	}
}

func TestDeadGuard(t *testing.T) {
	tgt := config.TM3270()
	dec := stream([5]*encode.DecOp{op(isa.OpIADD, r4, r2, r2, r10)})
	rep := Verify(dec, &tgt, &Options{EntryValues: map[isa.Reg]uint32{r4: 0, r2: 1}})
	wantCheck(t, rep, CheckDeadGuard, Warn, 0)
	wantOnly(t, rep, CheckDeadGuard)

	// Guard with the low bit set: the op executes, nothing to report.
	rep = Verify(dec, &tgt, &Options{EntryValues: map[isa.Reg]uint32{r4: 1, r2: 1}})
	if !rep.Clean() {
		t.Errorf("live guard flagged: %v", checks(rep))
	}
}

// unboundedLoop is a TM3260 (3 delay slots) loop whose trip count is
// guard-driven by a register with no static value: the back edge lands
// from node 4 (jump at node 1 + 3 delay slots) to the header at node 0.
func unboundedLoop() []encode.DecInstr {
	return stream(
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r2, r10)},
		[5]*encode.DecOp{nil, jmp(isa.OpJMPT, r4, addrOf(0))},
		[5]*encode.DecOp{}, [5]*encode.DecOp{}, [5]*encode.DecOp{},
	)
}

func TestLoopBoundUninferable(t *testing.T) {
	tgt := config.TM3260()
	rep := Verify(unboundedLoop(), &tgt, &Options{EntryValues: map[isa.Reg]uint32{r2: 1}})
	wantCheck(t, rep, CheckLoopBound, Warn, 0)
	wantOnly(t, rep, CheckLoopBound)
}

func TestLoopBoundAnnotation(t *testing.T) {
	tgt := config.TM3260()
	rep := Verify(unboundedLoop(), &tgt, &Options{
		EntryValues: map[isa.Reg]uint32{r2: 1},
		LoopBounds:  map[uint32]int{addrOf(0): 10},
	})
	if !rep.Clean() {
		t.Errorf("annotated loop still flagged: %v", checks(rep))
	}
	cb := WCET(unboundedLoop(), &tgt, &Options{
		EntryValues: map[isa.Reg]uint32{r2: 1},
		LoopBounds:  map[uint32]int{addrOf(0): 10},
	})
	if !cb.Bounded {
		t.Fatalf("annotated loop unbounded: %v", cb.Notes)
	}
	if len(cb.Loops) != 1 || cb.Loops[0].Bound != 10 || cb.Loops[0].Source != "annotation" {
		t.Errorf("loops = %+v, want one 10@annotation", cb.Loops)
	}
}

func TestWCETStraightLine(t *testing.T) {
	tgt := config.TM3270()
	dec := stream(
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r2, r2, r10)},
		[5]*encode.DecOp{op(isa.OpIADD, isa.R1, r10, r2, r11)},
	)
	cb := WCET(dec, &tgt, nil)
	if !cb.Bounded {
		t.Fatalf("straight line unbounded: %v", cb.Notes)
	}
	if cb.Issue != 2 {
		t.Errorf("Issue = %d, want 2 (one per instruction)", cb.Issue)
	}
	if cb.Cycles != cb.Issue+cb.Fetch+cb.Data {
		t.Errorf("Cycles = %d, want Issue+Fetch+Data = %d",
			cb.Cycles, cb.Issue+cb.Fetch+cb.Data)
	}
	if cb.Data != 0 {
		t.Errorf("Data = %d, want 0 without memory operations", cb.Data)
	}
}

func TestWCETUnboundedLoop(t *testing.T) {
	tgt := config.TM3260()
	cb := WCET(unboundedLoop(), &tgt, nil)
	if cb.Bounded {
		t.Fatalf("guard-driven loop reported bounded: %d cycles", cb.Cycles)
	}
	if len(cb.Notes) == 0 {
		t.Error("unbounded result carries no explanatory note")
	}
}

// TestWCETInferredLoopAndFootprint pins the analysis pipeline end to
// end on a real kernel: memset's counted loop is inferred without
// annotation, the bound dominates the loop structure, and with the
// declared memory map the data side takes the cache-persistence path
// (every store address proven, footprint fits the TM3270 data cache).
func TestWCETInferredLoopAndFootprint(t *testing.T) {
	tgt := config.ConfigD()
	w, err := workloads.ByName("memset", workloads.Small())
	if err != nil {
		t.Fatal(err)
	}
	dec, opts, err := compileWorkload(t, w, tgt)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	cb := WCET(dec, &tgt, opts)
	if !cb.Bounded {
		t.Fatalf("memset unbounded: %v", cb.Notes)
	}
	if len(cb.Loops) != 1 || cb.Loops[0].Source != "inferred" || cb.Loops[0].Bound <= 0 {
		t.Fatalf("loops = %+v, want one inferred bound", cb.Loops)
	}
	persistent := false
	for _, n := range cb.Notes {
		if len(n) >= 14 && n[:14] == "data footprint" {
			persistent = true
		}
	}
	if !persistent {
		t.Errorf("data side fell back to per-access charges: notes = %v", cb.Notes)
	}
	// Without the semantic options the loop cannot be bounded.
	if cb := WCET(dec, &tgt, nil); cb.Bounded {
		t.Error("memset bounded without entry values")
	}
}
