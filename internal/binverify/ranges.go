package binverify

import "tm3270/internal/isa"

// The range fixpoint mirrors the latency dataflow: forward over the
// instruction CFG, joining at merge points (interval hull, intersection
// of known registers). Termination comes from widening at loop headers:
// after a few joins a still-growing register drops to top — or, on the
// second pass, to the loop's bounded-widening clamp when the register
// is a proven linear induction variable (see boundedWidenings).
//
// Writes are modeled as committing immediately. The exposed pipeline
// actually commits a latency-L write L instructions later, but a read
// observing the pre-commit value is precisely a CheckLatency error the
// structural layer already reports: on latency-clean binaries the
// immediate-commit abstraction is exact, and on broken ones the range
// findings are moot alongside the latency errors.

const (
	widenAfterJoins    = 2  // per-header joins before widening kicks in
	widenSafetyValve   = 32 // widen anywhere after this many joins
	maxRangeIterations = 1 << 16
)

// entryRangeState seeds node 0: r0/r1 plus the declared entry values.
func (v *verifier) entryRangeState() rangeState {
	st := rangeState{}
	if v.opts != nil {
		for r, val := range v.opts.EntryValues {
			if !r.Hardwired() {
				st[r] = ivConst(val)
			}
		}
	}
	return st
}

// guardTruth decides whether the op executes: known=false when the
// guard value is not statically determined. Hardwired guards are
// handled by neverExec before this is consulted.
func guardTruth(op *vop, st rangeState) (executes, known bool) {
	iv, ok := st.get(op.guard)
	if !ok || !iv.singleton() {
		return false, false
	}
	bit := uint32(iv.lo) & 1
	return (bit == 1) != op.info.GuardInverted, true
}

// transferRanges computes the next node's entry state from node i's.
// When sink is non-nil, per-op results are reported to it (the checking
// pass); the fixpoint passes nil.
func (v *verifier) transferRanges(i int, in rangeState, sink func(op *vop, st rangeState)) rangeState {
	out := in.clone()
	for k := range v.ops[i] {
		op := &v.ops[i][k]
		if neverExec(op) {
			continue
		}
		if sink != nil {
			sink(op, in)
		}
		exec, guardKnown := true, true
		if !op.guard.Hardwired() {
			exec, guardKnown = guardTruth(op, in)
		}
		if guardKnown && !exec {
			continue // provably skipped: no write
		}
		if len(op.dests) == 0 {
			continue
		}
		if len(op.dests) > 1 {
			// Two-slot results are outside the domain.
			for _, d := range op.dests {
				delete(out, d)
			}
			continue
		}
		d := op.dests[0]
		if d.Hardwired() {
			continue
		}
		res, ok := rangeResult(op, in)
		switch {
		case !ok:
			delete(out, d)
		case guardKnown:
			out[d] = res // strong update
		default:
			// The write may or may not happen: join with the old value.
			if old, had := out[d]; had {
				out[d] = hull(old, res)
			} else {
				delete(out, d)
			}
		}
	}
	return out
}

// mergeRanges joins src into dst (hull of common registers, drop the
// rest), reporting whether dst changed.
func mergeRanges(dst, src rangeState) bool {
	changed := false
	for r, iv := range dst {
		siv, ok := src.get(r)
		if !ok {
			delete(dst, r)
			changed = true
			continue
		}
		if h := hull(iv, siv); h != iv {
			dst[r] = h
			changed = true
		}
	}
	return changed
}

// rangeFixpoint runs the interval worklist. clamps, when non-nil, maps
// loop headers to bounded-widening targets per register (second pass).
func (v *verifier) rangeFixpoint(clamps map[int]rangeState) {
	n := len(v.dec)
	isHeader := make([]bool, n)
	for _, l := range v.loops {
		if !l.irreducible {
			isHeader[l.header] = true
		}
	}

	states := make([]rangeState, n)
	states[0] = v.entryRangeState()
	joins := make([]int, n)
	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	for iter := 0; len(work) > 0 && iter < maxRangeIterations; iter++ {
		i := work[0]
		work = work[1:]
		queued[i] = false
		out := v.transferRanges(i, states[i], nil)
		for _, s := range v.succ[i] {
			if s >= n {
				continue
			}
			changed := false
			if states[s] == nil {
				states[s] = out.clone()
				changed = true
			} else {
				pre := states[s].clone()
				if mergeRanges(states[s], out) {
					joins[s]++
					if isHeader[s] && joins[s] > widenAfterJoins ||
						joins[s] > widenSafetyValve {
						widen(states[s], pre, clampFor(clamps, s))
					}
					// Widening a clamped register can restore the
					// pre-merge state exactly; only a real change
					// re-queues the successor.
					changed = !rangesEqual(states[s], pre)
				}
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	v.ranges = states
}

func clampFor(clamps map[int]rangeState, node int) rangeState {
	if clamps == nil {
		return nil
	}
	return clamps[node]
}

// widen drops every register that grew in the last join to top — or to
// its clamp window when the register has one. Applying the clamp even
// when the joined interval exceeds it is sound: the window is proven
// outside the fixpoint (at most `bound` header entries, one constant
// step between consecutive ones — see boundedWidenings), while the
// back-edge join necessarily carries one increment past the final
// header entry because the domain cannot refine on the exit branch.
func widen(cur, pre rangeState, clamp rangeState) {
	for r, iv := range cur {
		old, had := pre[r]
		if had && old == iv {
			continue // stable: no widening needed
		}
		if c, ok := clamp[r]; ok {
			cur[r] = c
			continue
		}
		delete(cur, r)
	}
}

// rangesEqual reports whether two range states bind the same registers
// to the same intervals.
func rangesEqual(a, b rangeState) bool {
	if len(a) != len(b) {
		return false
	}
	for r, iv := range a {
		if biv, ok := b[r]; !ok || biv != iv {
			return false
		}
	}
	return true
}

// memAddress returns the access address interval of a load/store, or
// ok=false when the addressing operands are unknown.
func memAddress(op *vop, st rangeState) (interval, bool) {
	if len(op.srcs) == 0 {
		return interval{}, false
	}
	base, ok := st.get(op.srcs[0])
	if !ok || !base.valid() {
		return interval{}, false
	}
	addr := base
	switch {
	case op.info.HasImm:
		// Displacement forms: address = src1 + signed immediate. (For
		// stores src2 is the value, not part of the address.)
		addr = addr.add(ivSext(op.imm))
	case op.info.NSrc >= 2 && op.oc != isa.OpLDFRAC8:
		// Indexed forms: address = src1 + src2. ld_frac8 addresses with
		// src1 alone (src2 is the interpolation fraction).
		idx, ok := st.get(op.srcs[1])
		if !ok || !idx.valid() {
			return interval{}, false
		}
		addr = addr.add(idx)
	}
	if !addr.valid() {
		return interval{}, false
	}
	// Normalize the representatives into the unsigned window: a pattern
	// is an address, so an all-negative interval simply names the high
	// half of the address space.
	for addr.lo >= 1<<32 {
		addr.lo -= 1 << 32
		addr.hi -= 1 << 32
	}
	for addr.hi < 0 {
		addr.lo += 1 << 32
		addr.hi += 1 << 32
	}
	if !addr.unsignedOK() {
		return interval{}, false // straddles a wrap boundary
	}
	return addr, true
}

// checkRanges walks the reachable nodes with the final range states and
// reports dead guards and provably out-of-range memory accesses.
func (v *verifier) checkRanges() {
	n := len(v.dec)
	for i := 0; i < n; i++ {
		if !v.reach[i] || v.ranges[i] == nil {
			continue
		}
		idx := i
		v.transferRanges(i, v.ranges[i], func(op *vop, st rangeState) {
			v.checkOpRanges(idx, op, st)
		})
	}
}

func (v *verifier) checkOpRanges(i int, op *vop, st rangeState) {
	exec, guardKnown := true, true
	if !op.guard.Hardwired() {
		exec, guardKnown = guardTruth(op, st)
		if guardKnown && !exec {
			what := "operation"
			if op.info.IsJump {
				what = "branch"
			}
			v.diag(i, op.slot, op.mn(), CheckDeadGuard, Warn,
				"guard %s is provably false here: the %s never executes (dead code)",
				op.guard, what)
			return
		}
	}

	if len(v.opts.MemMap) == 0 || (!op.info.IsLoad && !op.info.IsStore) {
		return
	}
	addr, ok := memAddress(op, st)
	if !ok {
		return
	}
	size := int64(op.info.MemBytes)
	if size < 1 {
		size = 1 // allocd touches one line; one byte is enough to range-check
	}
	lo, hi := addr.lo, addr.hi+size-1
	for _, reg := range v.opts.MemMap {
		if lo < int64(reg.Hi) && hi >= int64(reg.Lo) {
			return // may fall inside a declared region
		}
	}
	sev := Error
	if !guardKnown {
		// A guard the analysis cannot decide might never be true; the
		// access is still provably wrong whenever it does execute.
		sev = Warn
	}
	v.diag(i, op.slot, op.mn(), CheckMemRange, sev,
		"address in [%#x,%#x] is provably outside every declared memory region", lo, hi)
}
