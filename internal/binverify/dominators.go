package binverify

// bitset is a fixed-capacity bit vector over instruction indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// intersect ands o into b, reporting whether b changed.
func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		if n := b[i] & o[i]; n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// buildPreds inverts the successor graph (exit pseudo-node excluded).
func (v *verifier) buildPreds() {
	n := len(v.dec)
	v.preds = make([][]int, n)
	for i := 0; i < n; i++ {
		for _, s := range v.succ[i] {
			if s < n {
				v.preds[s] = append(v.preds[s], i)
			}
		}
	}
}

// dominators computes, for every reachable node, the set of nodes that
// dominate it (iterative dataflow over the instruction CFG; the streams
// are small enough that the simple quadratic scheme is instant).
func (v *verifier) dominators() {
	n := len(v.dec)
	v.dom = make([]bitset, n)
	for i := 0; i < n; i++ {
		if !v.reach[i] {
			continue
		}
		v.dom[i] = newBitset(n)
		if i == 0 {
			v.dom[i].set(0)
		} else {
			v.dom[i].fill()
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < n; i++ {
			if !v.reach[i] {
				continue
			}
			cur := newBitset(n)
			first := true
			for _, p := range v.preds[i] {
				if !v.reach[p] {
					continue
				}
				if first {
					copy(cur, v.dom[p])
					first = false
				} else {
					cur.intersect(v.dom[p])
				}
			}
			if first {
				// Reachable with no reachable predecessor only happens for
				// the entry, handled above; keep the full set otherwise.
				continue
			}
			cur.set(i)
			if !bitsetEqual(cur, v.dom[i]) {
				v.dom[i] = cur
				changed = true
			}
		}
	}
}

func bitsetEqual(a, b bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dominates reports whether h dominates u (both reachable).
func (v *verifier) dominates(h, u int) bool {
	return v.dom[u] != nil && v.dom[u].has(h)
}
