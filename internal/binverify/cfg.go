package binverify

import "tm3270/internal/isa"

// jumpRef is one jump operation located in the stream, with its target
// resolved to an instruction index and its guard classified.
type jumpRef struct {
	idx       int // instruction index of the jump
	slot      int // 1-based issue slot
	name      string
	targetIdx int  // index the target address decodes to (n = image end)
	targetOK  bool // target lies on an instruction boundary
	always    bool // hardwired guard forces the jump taken
	never     bool // hardwired guard forces the jump not taken
}

// analyzeJumps resolves jump targets against the decoded instruction
// boundaries, classifies hardwired guards, and reports invalid targets
// and delay-window conflicts (the static image of TrapDelayViolation:
// a second jump taken inside a taken jump's delay window traps).
func (v *verifier) analyzeJumps() []jumpRef {
	n := len(v.dec)
	addrToIdx := make(map[uint32]int, n+1)
	for i := range v.dec {
		addrToIdx[v.dec[i].Addr] = i
	}
	// A jump to the end address is the legal kernel exit (the encoder
	// emits it for the final block's fallthrough), mirroring Reassemble.
	end := v.dec[n-1].Addr + uint32(v.dec[n-1].Size)
	addrToIdx[end] = n

	var jumps []jumpRef
	for i := range v.dec {
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if !op.info.IsJump {
				continue
			}
			j := jumpRef{idx: i, slot: op.slot, name: op.mn()}
			// The guard enables execution when its low bit is 1 (inverted
			// for jmpf); r1 reads 1 and r0 reads 0, so a hardwired guard
			// decides the jump statically.
			switch op.guard {
			case isa.R1:
				j.always, j.never = !op.info.GuardInverted, op.info.GuardInverted
			case isa.R0:
				j.always, j.never = op.info.GuardInverted, !op.info.GuardInverted
			}
			j.targetIdx, j.targetOK = addrToIdx[op.target]
			if !j.targetOK && !j.never {
				v.diag(i, op.slot, op.mn(), CheckJumpTarget, Error,
					"target %#x is not an instruction boundary (image spans %#x-%#x)",
					op.target, v.dec[0].Addr, end)
			}
			jumps = append(jumps, j)
		}
	}

	// Delay-window conflicts: a taken jump at issue j redirects after
	// issue j+delay; a second jump taken at any issue in (j, j+delay]
	// (or in the same instruction) raises TrapDelayViolation.
	delay := v.t.JumpDelaySlots
	for a := 0; a < len(jumps); a++ {
		if jumps[a].never {
			continue
		}
		for b := a + 1; b < len(jumps); b++ {
			if jumps[b].never || jumps[b].idx > jumps[a].idx+delay {
				continue
			}
			sev, verb := Warn, "may raise"
			if jumps[a].always && jumps[b].always {
				sev, verb = Error, "raises"
			}
			v.diag(jumps[b].idx, jumps[b].slot, jumps[b].name, CheckDelayWindow, sev,
				"%s inside the %d-instruction delay window of the %s at instr %d %s a delay violation trap if both are taken",
				jumps[b].name, delay, jumps[a].name, jumps[a].idx, verb)
		}
	}
	return jumps
}

// buildCFG constructs the instruction-level control-flow graph. A taken
// jump at index j redirects control after the instruction at j+delay,
// so the jump edge leaves the *redirect node* j+delay, not the jump
// itself — that is where cross-boundary latency state must join. Index
// n is the exit pseudo-node.
func (v *verifier) buildCFG(jumps []jumpRef) {
	n := len(v.dec)
	delay := v.t.JumpDelaySlots
	v.succ = make([][]int, n)
	killFall := make([]bool, n)

	for _, j := range jumps {
		if j.never || !j.targetOK {
			continue
		}
		r := j.idx + delay // redirect node
		if r >= n {
			// The machine runs off the image end before the redirect
			// lands: the jump can never reach its target.
			v.diag(j.idx, j.slot, j.name, CheckDelayWindow, Warn,
				"delay window (%d instructions) extends past the image end; the redirect never happens",
				delay)
			continue
		}
		v.succ[r] = append(v.succ[r], j.targetIdx)
		if j.always {
			killFall[r] = true
		}
	}
	for i := 0; i < n; i++ {
		if !killFall[i] {
			v.succ[i] = append(v.succ[i], i+1)
		}
	}
}

// checkReachability walks the CFG from the entry and warns about
// instructions no path reaches (the first of each unreachable run, to
// keep the report readable). Pad instructions holding only NOPs are
// exempt: the encoder emits them to fill delay slots.
func (v *verifier) checkReachability() {
	n := len(v.dec)
	v.reach = make([]bool, n)
	stack := []int{0}
	v.reach[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range v.succ[i] {
			if s < n && !v.reach[s] {
				v.reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	inRun := false
	for i := 0; i < n; i++ {
		if v.reach[i] {
			inRun = false
			continue
		}
		if len(v.ops[i]) > 0 && !inRun {
			v.diag(i, 0, "", CheckUnreachable, Warn,
				"instruction is unreachable from the entry")
			inRun = true
		}
	}
}
