package binverify

import "tm3270/internal/isa"

// The value-range domain. A register's abstract value is an interval of
// int64 representatives: the concrete 32-bit pattern w satisfies
// w == uint32(x) for some x in [lo, hi]. Working over Z instead of a
// fixed signed/unsigned reading keeps addition, subtraction and
// multiplication exact (no wraparound case analysis); a signed or
// unsigned *interpretation* of the interval is only valid when it lies
// entirely inside that reading's window, which the comparison and
// address checks verify before drawing conclusions. Top (no
// information) is represented by absence from the range state.
type interval struct{ lo, hi int64 }

const (
	ivMaxMag   = int64(1) << 44 // magnitude guard: beyond this, give up
	ivMaxWidth = int64(1) << 32 // an interval this wide holds every pattern
)

func ivConst(u uint32) interval { return interval{int64(u), int64(u)} }

// ivSext is the constant interval of a sign-extended immediate.
func ivSext(imm uint32) interval { s := int64(int32(imm)); return interval{s, s} }

func (a interval) singleton() bool { return a.lo == a.hi }

// valid reports whether the interval is usable: non-empty, narrower
// than a full 2^32 wrap, and within the magnitude guard.
func (a interval) valid() bool {
	return a.lo <= a.hi && a.hi-a.lo < ivMaxWidth &&
		a.lo > -ivMaxMag && a.hi < ivMaxMag
}

// signedOK reports whether every representative equals its own signed
// 32-bit interpretation.
func (a interval) signedOK() bool { return a.lo >= -(1<<31) && a.hi < 1<<31 }

// unsignedOK reports whether every representative equals its own
// unsigned 32-bit interpretation.
func (a interval) unsignedOK() bool { return a.lo >= 0 && a.hi < 1<<32 }

func hull(a, b interval) interval {
	if b.lo < a.lo {
		a.lo = b.lo
	}
	if b.hi > a.hi {
		a.hi = b.hi
	}
	return a
}

func (a interval) add(b interval) interval { return interval{a.lo + b.lo, a.hi + b.hi} }
func (a interval) sub(b interval) interval { return interval{a.lo - b.hi, a.hi - b.lo} }

func (a interval) mul(b interval) (interval, bool) {
	// Magnitude pre-check keeps the products inside int64.
	big := func(v int64) bool { return v > 1<<45 || v < -(1<<45) }
	if big(a.lo) || big(a.hi) || big(b.lo) || big(b.hi) {
		return interval{}, false
	}
	p := [4]int64{a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi}
	r := interval{p[0], p[0]}
	for _, v := range p[1:] {
		if v < r.lo {
			r.lo = v
		}
		if v > r.hi {
			r.hi = v
		}
	}
	return r, r.valid()
}

// containsZeroPattern reports whether some representative has the
// all-zero 32-bit pattern (needed by izero/inonzero refinement).
func (a interval) containsZeroPattern() bool {
	if !a.valid() {
		return true
	}
	// With |bounds| < 2^44 the multiples of 2^32 inside [lo, hi] are
	// findable by rounding lo up to the next multiple.
	m := a.lo
	if r := m % ivMaxWidth; r != 0 {
		if r > 0 {
			m += ivMaxWidth - r
		} else {
			m -= r
		}
	}
	return m <= a.hi
}

// rangeState maps registers to their interval at a node's entry.
// Absent means top. The hardwired r0/r1 are implicit (see getIv).
type rangeState map[isa.Reg]interval

func (s rangeState) clone() rangeState {
	c := make(rangeState, len(s))
	for r, iv := range s {
		c[r] = iv
	}
	return c
}

func (s rangeState) get(r isa.Reg) (interval, bool) {
	switch r {
	case isa.R0:
		return interval{0, 0}, true
	case isa.R1:
		return interval{1, 1}, true
	}
	iv, ok := s[r]
	return iv, ok
}

// cmpKind classifies the comparison operators the domain evaluates.
type cmpKind int

const (
	cmpNone cmpKind = iota
	cmpGT
	cmpGE
	cmpLT
	cmpLE
	cmpEQ
	cmpNE
)

// negate returns the complementary relation.
func (k cmpKind) negate() cmpKind {
	switch k {
	case cmpGT:
		return cmpLE
	case cmpGE:
		return cmpLT
	case cmpLT:
		return cmpGE
	case cmpLE:
		return cmpGT
	case cmpEQ:
		return cmpNE
	case cmpNE:
		return cmpEQ
	}
	return cmpNone
}

// flip returns the relation with the operands swapped.
func (k cmpKind) flip() cmpKind {
	switch k {
	case cmpGT:
		return cmpLT
	case cmpGE:
		return cmpLE
	case cmpLT:
		return cmpGT
	case cmpLE:
		return cmpGE
	}
	return k
}

func (k cmpKind) String() string {
	return [...]string{"?", ">", ">=", "<", "<=", "==", "!="}[k]
}

// cmpOpcode maps a comparison opcode to its relation and signedness.
func cmpOpcode(oc isa.Opcode) (k cmpKind, unsigned, immForm bool) {
	switch oc {
	case isa.OpIGTR:
		return cmpGT, false, false
	case isa.OpIGEQ:
		return cmpGE, false, false
	case isa.OpILES:
		return cmpLT, false, false
	case isa.OpILEQ:
		return cmpLE, false, false
	case isa.OpIEQL:
		return cmpEQ, false, false
	case isa.OpINEQ:
		return cmpNE, false, false
	case isa.OpUGTR:
		return cmpGT, true, false
	case isa.OpUGEQ:
		return cmpGE, true, false
	case isa.OpULES:
		return cmpLT, true, false
	case isa.OpULEQ:
		return cmpLE, true, false
	case isa.OpIGTRI:
		return cmpGT, false, true
	case isa.OpILESI:
		return cmpLT, false, true
	case isa.OpIEQLI:
		return cmpEQ, false, true
	case isa.OpINEQI:
		return cmpNE, false, true
	}
	return cmpNone, false, false
}

// evalCmp decides a rel b when the intervals allow it: 1 definitely
// true, 0 definitely false, unknown otherwise. Both operands must sit
// inside the relation's interpretation window.
func evalCmp(k cmpKind, unsigned bool, a, b interval) (bit int64, known bool) {
	winOK := func(iv interval) bool {
		if unsigned {
			return iv.unsignedOK()
		}
		return iv.signedOK()
	}
	if !winOK(a) || !winOK(b) {
		return 0, false
	}
	switch k {
	case cmpGT:
		if a.lo > b.hi {
			return 1, true
		}
		if a.hi <= b.lo {
			return 0, true
		}
	case cmpGE:
		if a.lo >= b.hi {
			return 1, true
		}
		if a.hi < b.lo {
			return 0, true
		}
	case cmpLT:
		if a.hi < b.lo {
			return 1, true
		}
		if a.lo >= b.hi {
			return 0, true
		}
	case cmpLE:
		if a.hi <= b.lo {
			return 1, true
		}
		if a.lo > b.hi {
			return 0, true
		}
	case cmpEQ:
		if a.singleton() && b.singleton() && a.lo == b.lo {
			return 1, true
		}
		if a.hi < b.lo || a.lo > b.hi {
			return 0, true
		}
	case cmpNE:
		if a.hi < b.lo || a.lo > b.hi {
			return 1, true
		}
		if a.singleton() && b.singleton() && a.lo == b.lo {
			return 0, true
		}
	}
	return 0, false
}

var bitIv = interval{0, 1}

// rangeResult computes the destination interval of a single-dest
// operation from its operand intervals. ok=false means top.
func rangeResult(op *vop, st rangeState) (interval, bool) {
	src := func(i int) (interval, bool) {
		if i >= len(op.srcs) {
			return interval{}, false
		}
		return st.get(op.srcs[i])
	}
	a, aok := src(0)
	b, bok := src(1)

	// Comparisons are always bit-valued; refine to a constant when the
	// operand intervals decide the relation.
	if k, unsigned, immForm := cmpOpcode(op.oc); k != cmpNone {
		rhs, rok := b, bok
		if immForm {
			rhs, rok = ivSext(op.imm), true
		}
		if aok && rok {
			if bit, known := evalCmp(k, unsigned, a, rhs); known {
				return interval{bit, bit}, true
			}
		}
		return bitIv, true
	}

	switch op.oc {
	case isa.OpIIMM:
		return ivConst(op.imm), true
	case isa.OpIADD:
		if aok && bok {
			if r := a.add(b); r.valid() {
				return r, true
			}
		}
	case isa.OpISUB:
		if aok && bok {
			if r := a.sub(b); r.valid() {
				return r, true
			}
		}
	case isa.OpIADDI:
		if aok {
			if r := a.add(ivSext(op.imm)); r.valid() {
				return r, true
			}
		}
	case isa.OpIMUL:
		if aok && bok {
			if r, ok := a.mul(b); ok {
				return r, true
			}
		}
	case isa.OpIMIN:
		if aok && bok && a.signedOK() && b.signedOK() {
			return interval{min64(a.lo, b.lo), min64(a.hi, b.hi)}, true
		}
	case isa.OpIMAX:
		if aok && bok && a.signedOK() && b.signedOK() {
			return interval{max64(a.lo, b.lo), max64(a.hi, b.hi)}, true
		}
	case isa.OpIZERO, isa.OpINONZERO:
		want := op.oc == isa.OpIZERO
		if aok {
			zero := a.containsZeroPattern()
			onlyZero := a.singleton() && a.lo == 0
			switch {
			case onlyZero && want, !zero && !want:
				return interval{1, 1}, true
			case onlyZero && !want, !zero && want:
				return interval{0, 0}, true
			}
		}
		return bitIv, true
	case isa.OpSEX8:
		return byteRange(a, aok, -128, 127), true
	case isa.OpSEX16:
		return byteRange(a, aok, -32768, 32767), true
	case isa.OpZEX8:
		return byteRange(a, aok, 0, 255), true
	case isa.OpZEX16:
		return byteRange(a, aok, 0, 65535), true
	case isa.OpICLZ:
		return interval{0, 32}, true
	case isa.OpBITAND:
		if aok && bok && a.singleton() && b.singleton() {
			return ivConst(uint32(a.lo) & uint32(b.lo)), true
		}
		// and(x,y) <= x and <= y in the unsigned reading.
		hi := int64(-1)
		if aok && a.unsignedOK() {
			hi = a.hi
		}
		if bok && b.unsignedOK() && (hi < 0 || b.hi < hi) {
			hi = b.hi
		}
		if hi >= 0 {
			return interval{0, hi}, true
		}
	case isa.OpBITOR, isa.OpBITXOR:
		if aok && bok && a.singleton() && b.singleton() {
			u := uint32(a.lo)
			v := uint32(b.lo)
			if op.oc == isa.OpBITOR {
				return ivConst(u | v), true
			}
			return ivConst(u ^ v), true
		}
		if aok && bok && a.unsignedOK() && b.unsignedOK() {
			// Neither or nor xor can set a bit above both operands'
			// highest bit.
			return interval{0, int64(ceilPow2(uint64(max64(a.hi, b.hi)))) - 1}, true
		}
	case isa.OpASLI:
		sh := uint(op.imm & 31)
		if aok {
			if a.singleton() {
				return ivConst(uint32(a.lo) << sh), true
			}
			if a.unsignedOK() {
				if r := (interval{a.lo << sh, a.hi << sh}); r.unsignedOK() {
					return r, true
				}
			}
		}
	case isa.OpLSRI:
		sh := uint(op.imm & 31)
		if aok && a.unsignedOK() {
			return interval{a.lo >> sh, a.hi >> sh}, true
		}
		return interval{0, int64((uint32(0xffffffff)) >> sh)}, true
	case isa.OpASRI:
		sh := uint(op.imm & 31)
		if aok && a.signedOK() {
			return interval{a.lo >> sh, a.hi >> sh}, true
		}
		return interval{-(1 << 31) >> sh, (1<<31 - 1) >> sh}, true
	case isa.OpASL, isa.OpLSR, isa.OpASR:
		if bok && b.singleton() && b.lo >= 0 && b.lo < 32 {
			sub := *op
			sub.imm = uint32(b.lo)
			switch op.oc {
			case isa.OpASL:
				sub.oc = isa.OpASLI
			case isa.OpLSR:
				sub.oc = isa.OpLSRI
			default:
				sub.oc = isa.OpASRI
			}
			return rangeResult(&sub, st)
		}
	case isa.OpLD8D, isa.OpLD8R:
		return interval{-128, 127}, true
	case isa.OpULD8D, isa.OpULD8R:
		return interval{0, 255}, true
	case isa.OpLD16D, isa.OpLD16R:
		return interval{-32768, 32767}, true
	case isa.OpULD16D, isa.OpULD16R:
		return interval{0, 65535}, true
	case isa.OpUME8UU:
		return interval{0, 4 * 255}, true
	case isa.OpIFIR8UI:
		return interval{-4 * 128 * 255, 4 * 127 * 255}, true
	}
	return interval{}, false
}

// byteRange refines a fixed extension range to the exact constant when
// the operand is a singleton.
func byteRange(a interval, aok bool, lo, hi int64) interval {
	if aok && a.singleton() {
		u := uint32(a.lo)
		if lo < 0 {
			bits := uint(8)
			if hi > 127 {
				bits = 16
			}
			shift := 32 - bits
			s := int64(int32(u<<shift) >> shift)
			return interval{s, s}
		}
		mask := uint32(hi)
		v := int64(u & mask)
		return interval{v, v}
	}
	return interval{lo, hi}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ceilPow2 rounds v up to the next power of two (v >= 0).
func ceilPow2(v uint64) uint64 {
	p := uint64(1)
	for p <= v {
		p <<= 1
	}
	return p
}
