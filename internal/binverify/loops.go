package binverify

import "tm3270/internal/isa"

// loop is one natural loop (back edges with the same header merged).
type loop struct {
	header int
	body   bitset // member nodes, header included
	backs  []int  // back-edge source nodes (jump redirect nodes)

	// Bound analysis results. bound == 0 means unknown: the loop has no
	// inferable trip count and no annotation.
	bound  int64
	source string // "inferred" or "annotation" when bound > 0

	// Induction facts feeding the bounded widening of the second range
	// pass (set only when the bound was inferred).
	indReg   isa.Reg
	indStep  int64
	indEntry interval

	irreducible bool // marks the synthetic "irreducible cycle" record
}

// findLoops detects back edges (u -> h with h dominating u), builds the
// natural loop of each, merges loops sharing a header, and verifies
// reducibility: with the back edges removed the CFG must be acyclic,
// otherwise some cycle is not a natural loop and per-node execution
// counts (products of loop bounds) would be unsound.
func (v *verifier) findLoops() {
	n := len(v.dec)
	byHeader := map[int]*loop{}
	isBack := make(map[[2]int]bool)
	for u := 0; u < n; u++ {
		if !v.reach[u] {
			continue
		}
		for _, h := range v.succ[u] {
			if h >= n || !v.reach[h] || !v.dominates(h, u) {
				continue
			}
			isBack[[2]int{u, h}] = true
			l := byHeader[h]
			if l == nil {
				l = &loop{header: h, body: newBitset(n)}
				l.body.set(h)
				byHeader[h] = l
				v.loops = append(v.loops, l)
			}
			l.backs = append(l.backs, u)
			// Natural loop body: nodes that reach u without passing h.
			if !l.body.has(u) {
				l.body.set(u)
			}
			stack := []int{u}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range v.preds[x] {
					if v.reach[p] && !l.body.has(p) {
						l.body.set(p)
						stack = append(stack, p)
					}
				}
			}
		}
	}

	// Reducibility: Kahn's toposort over the forward (non-back) edges of
	// the reachable subgraph. Leftover nodes form a cycle no back edge
	// explains.
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		if !v.reach[u] {
			continue
		}
		for _, s := range v.succ[u] {
			if s < n && v.reach[s] && !isBack[[2]int{u, s}] {
				indeg[s]++
			}
		}
	}
	queue := []int{}
	left := 0
	for i := 0; i < n; i++ {
		if v.reach[i] {
			left++
			if indeg[i] == 0 {
				queue = append(queue, i)
			}
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		left--
		for _, s := range v.succ[u] {
			if s < n && v.reach[s] && !isBack[[2]int{u, s}] {
				if indeg[s]--; indeg[s] == 0 {
					queue = append(queue, s)
				}
			}
		}
	}
	if left > 0 {
		// Anchor the finding on the smallest leftover node.
		anchor := -1
		for i := 0; i < n && anchor < 0; i++ {
			if v.reach[i] && indeg[i] > 0 {
				anchor = i
			}
		}
		v.loops = append(v.loops, &loop{header: anchor, irreducible: true})
	}
}

// inferLoopBounds derives, for every natural loop, the maximum number
// of header entries per loop entry. Inference recognizes the canonical
// counted-loop shape: a single conditional back-edge jump whose guard
// is a comparison of a linear induction register (exactly one unguarded
// constant-step iaddi per iteration) against a loop-invariant limit.
// The trip count follows from the induction entry interval, the step
// and the limit interval, assuming conservatively that the comparison
// tests the pre-update value (the larger of the two possible counts).
// An explicit Options.LoopBounds annotation keyed by header PC covers
// everything inference cannot.
func (v *verifier) inferLoopBounds() {
	for _, l := range v.loops {
		if l.irreducible {
			continue
		}
		annotated, hasAnn := int64(0), false
		if v.opts != nil {
			if b, ok := v.opts.LoopBounds[v.dec[l.header].Addr]; ok && b > 0 {
				annotated, hasAnn = int64(b), true
			}
		}
		inferred, ok := v.inferBound(l)
		switch {
		case ok && hasAnn:
			// Inference is sound on its own; a tighter annotation is a
			// stronger promise from the kernel writer.
			l.bound, l.source = min64(inferred, annotated), "inferred"
			if annotated < inferred {
				l.source = "annotation"
			}
		case ok:
			l.bound, l.source = inferred, "inferred"
		case hasAnn:
			l.bound, l.source = annotated, "annotation"
		}
	}
}

// inferBound attempts trip-count inference for one loop, filling the
// induction facts on success.
func (v *verifier) inferBound(l *loop) (int64, bool) {
	if len(l.backs) != 1 {
		return 0, false
	}
	back := l.backs[0]
	delay := v.t.JumpDelaySlots
	jidx := back - delay
	if jidx < 0 {
		return 0, false
	}
	var jumpOp *vop
	for k := range v.ops[jidx] {
		op := &v.ops[jidx][k]
		if op.info.IsJump {
			if jumpOp != nil {
				return 0, false
			}
			jumpOp = op
		}
	}
	if jumpOp == nil || neverExec(jumpOp) {
		return 0, false
	}
	// The redirect must belong to this jump and target this header, and
	// the jump must be conditional: an always-taken back edge never
	// exits through its own test.
	if v.dec[l.header].Addr != jumpOp.target || jumpOp.guard.Hardwired() {
		return 0, false
	}

	// The value the jump tests is the unique unguarded in-loop
	// definition of its guard register reaching the jump node.
	cmpIdx, cmpOp, ok := v.uniqueLoopDef(jumpOp.guard, jidx, l)
	if !ok {
		return 0, false
	}
	k, unsigned, immForm := cmpOpcode(cmpOp.oc)
	if k == cmpNone {
		return 0, false
	}
	// Loop continues when the back edge is taken: jmpt takes on guard
	// true, jmpf (GuardInverted) on guard false.
	if jumpOp.info.GuardInverted {
		k = k.negate()
	}

	type candidate struct {
		reg   isa.Reg
		rel   cmpKind
		limit interval
	}
	var cands []candidate
	if immForm {
		cands = append(cands, candidate{cmpOp.srcs[0], k, ivSext(cmpOp.imm)})
	} else {
		// Register form: either operand may be the counter; the other
		// must be loop-invariant with a known interval at the compare.
		for side := 0; side < 2; side++ {
			reg, other := cmpOp.srcs[side], cmpOp.srcs[1-side]
			rel := k
			if side == 1 {
				rel = k.flip()
			}
			if v.writesInLoop(other, l) > 0 {
				continue
			}
			if limit, ok := v.ranges[cmpIdx].get(other); ok && limit.valid() {
				cands = append(cands, candidate{reg, rel, limit})
			}
		}
	}

	for _, c := range cands {
		step, ok := v.inductionStep(c.reg, l)
		if !ok {
			continue
		}
		entry, ok := v.loopEntryInterval(c.reg, l)
		if !ok {
			continue
		}
		bound, ok := tripCount(c.rel, unsigned, entry, c.limit, step)
		if !ok {
			continue
		}
		l.indReg, l.indStep, l.indEntry = c.reg, step, entry
		return bound, true
	}
	return 0, false
}

// uniqueLoopDef finds the single unguarded in-loop definition of reg
// reaching node `at` (walking the reverse CFG inside the loop body; a
// path that reaches the header without a definition means the value
// crosses an iteration boundary, which the inference does not model).
func (v *verifier) uniqueLoopDef(reg isa.Reg, at int, l *loop) (int, *vop, bool) {
	defIdx := -1
	var defOp *vop
	seen := map[int]bool{}
	stack := []int{}
	push := func(p int) {
		if !seen[p] && l.body.has(p) && v.reach[p] {
			seen[p] = true
			stack = append(stack, p)
		}
	}
	for _, p := range v.preds[at] {
		push(p)
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var writer *vop
		for kk := range v.ops[p] {
			op := &v.ops[p][kk]
			if neverExec(op) {
				continue
			}
			for _, d := range op.dests {
				if d == reg {
					if writer != nil {
						return 0, nil, false // intra-node double write
					}
					writer = op
				}
			}
		}
		switch {
		case writer != nil:
			if writer.guard != isa.R1 || writer.info.GuardInverted {
				return 0, nil, false // conditional definition
			}
			if defIdx >= 0 && defIdx != p {
				return 0, nil, false // two reaching definitions
			}
			defIdx, defOp = p, writer
		case p == l.header:
			return 0, nil, false // the definition flows in from outside
		default:
			for _, q := range v.preds[p] {
				push(q)
			}
		}
	}
	if defIdx < 0 {
		return 0, nil, false
	}
	return defIdx, defOp, true
}

// writesInLoop counts the operations in the loop body writing reg.
func (v *verifier) writesInLoop(reg isa.Reg, l *loop) int {
	n := 0
	for i := 0; i < len(v.dec); i++ {
		if !l.body.has(i) {
			continue
		}
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if neverExec(op) {
				continue
			}
			for _, d := range op.dests {
				if d == reg {
					n++
				}
			}
		}
	}
	return n
}

// inductionStep checks that reg is a linear induction register of the
// loop: exactly one in-loop write, an unguarded iaddi reg, reg, #step.
func (v *verifier) inductionStep(reg isa.Reg, l *loop) (int64, bool) {
	var upd *vop
	for i := 0; i < len(v.dec); i++ {
		if !l.body.has(i) {
			continue
		}
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if neverExec(op) {
				continue
			}
			for _, d := range op.dests {
				if d != reg {
					continue
				}
				if upd != nil {
					return 0, false
				}
				upd = op
			}
		}
	}
	if upd == nil || upd.oc != isa.OpIADDI || upd.guard != isa.R1 ||
		len(upd.srcs) == 0 || upd.srcs[0] != reg {
		return 0, false
	}
	step := int64(int32(upd.imm))
	if step == 0 {
		return 0, false
	}
	return step, true
}

// loopEntryInterval joins reg's interval over the loop's entry edges
// (predecessors of the header outside the body), using the first-pass
// range states.
func (v *verifier) loopEntryInterval(reg isa.Reg, l *loop) (interval, bool) {
	var e interval
	have := false
	join := func(iv interval, ok bool) bool {
		if !ok {
			return false
		}
		if have {
			e = hull(e, iv)
		} else {
			e, have = iv, true
		}
		return true
	}
	if l.header == 0 {
		if !join(v.entryRangeState().get(reg)) {
			return interval{}, false
		}
	}
	for _, p := range v.preds[l.header] {
		if l.body.has(p) || !v.reach[p] || v.ranges[p] == nil {
			continue
		}
		out := v.transferRanges(p, v.ranges[p], nil)
		if !join(out.get(reg)) {
			return interval{}, false
		}
	}
	if !have || !e.valid() {
		return interval{}, false
	}
	return e, true
}

// tripCount bounds the number of header entries per loop entry for the
// continue-condition `reg rel limit`, induction step `step` and entry
// interval `entry`. It conservatively assumes the comparison observes
// the pre-update value x0 + t*step (t = 0, 1, ...), the larger of the
// two schedules, so the result is sound whether the compare reads the
// counter before or after the iteration's update.
func tripCount(rel cmpKind, unsigned bool, entry, limit interval, step int64) (int64, bool) {
	// Continue tests with the wrong step direction never make progress
	// toward the exit: unbounded as far as this analysis can tell.
	var continues int64
	switch rel {
	case cmpGT:
		if step >= 0 || entry.hi <= limit.lo {
			if step >= 0 {
				return 0, false
			}
			continues = 0
		} else {
			continues = (entry.hi-limit.lo-1)/(-step) + 1
		}
	case cmpGE:
		if step >= 0 || entry.hi < limit.lo {
			if step >= 0 {
				return 0, false
			}
			continues = 0
		} else {
			continues = (entry.hi-limit.lo)/(-step) + 1
		}
	case cmpLT:
		if step <= 0 || entry.lo >= limit.hi {
			if step <= 0 {
				return 0, false
			}
			continues = 0
		} else {
			continues = (limit.hi-1-entry.lo)/step + 1
		}
	case cmpLE:
		if step <= 0 || entry.lo > limit.hi {
			if step <= 0 {
				return 0, false
			}
			continues = 0
		} else {
			continues = (limit.hi-entry.lo)/step + 1
		}
	default:
		return 0, false
	}
	bound := continues + 1 // the failing test still enters the header once
	if bound <= 0 || bound > 1<<40 {
		return 0, false
	}
	// Every value the comparison may observe must stay inside the
	// relation's interpretation window, or the counter could wrap and
	// the arithmetic above would be meaningless.
	extreme := interval{
		min64(entry.lo, entry.lo+step*bound),
		max64(entry.hi, entry.hi+step*bound),
	}
	winOK := func(iv interval) bool {
		if unsigned {
			return iv.unsignedOK()
		}
		return iv.signedOK()
	}
	if !winOK(entry) || !winOK(limit) || !winOK(extreme) {
		return 0, false
	}
	return bound, true
}

// boundedWidenings builds the per-header widening clamps for the second
// range pass. In a loop with a known bound, every linear induction
// register (one unguarded constant-step iaddi per iteration) advances
// at most `bound` times, so it stays inside
// [entry.lo + min(0, step*bound), entry.hi + max(0, step*bound)] at
// every header entry. Widening such registers to that window (instead
// of to top) keeps load/store address intervals finite inside counted
// loops — the base pointers, not just the exit counter. The clamp is
// sound by that argument alone, independent of the fixpoint: the
// back-edge join may exceed it by one abstract step (the update before
// the exit test), which widen deliberately discards (see widen).
func (v *verifier) boundedWidenings() map[int]rangeState {
	clamps := map[int]rangeState{}
	for _, l := range v.loops {
		if l.irreducible || l.bound == 0 {
			continue
		}
		for _, reg := range v.loopWrittenRegs(l) {
			step, ok := v.inductionStep(reg, l)
			if !ok {
				continue
			}
			entry, ok := v.loopEntryInterval(reg, l)
			if !ok {
				continue
			}
			b := interval{
				entry.lo + min64(0, step*l.bound),
				entry.hi + max64(0, step*l.bound),
			}
			if !b.valid() {
				continue
			}
			if clamps[l.header] == nil {
				clamps[l.header] = rangeState{}
			}
			clamps[l.header][reg] = b
		}
	}
	return clamps
}

// loopWrittenRegs lists the distinct non-hardwired registers written
// anywhere in the loop body.
func (v *verifier) loopWrittenRegs(l *loop) []isa.Reg {
	seen := map[isa.Reg]bool{}
	var regs []isa.Reg
	for i := 0; i < len(v.dec); i++ {
		if !l.body.has(i) {
			continue
		}
		for k := range v.ops[i] {
			op := &v.ops[i][k]
			if neverExec(op) {
				continue
			}
			for _, d := range op.dests {
				if !d.Hardwired() && !seen[d] {
					seen[d] = true
					regs = append(regs, d)
				}
			}
		}
	}
	return regs
}

// checkLoopBounds reports loops the cycle-bound analysis cannot bound.
func (v *verifier) checkLoopBounds() {
	for _, l := range v.loops {
		if l.irreducible {
			v.diag(l.header, 0, "", CheckLoopBound, Warn,
				"irreducible control flow: the cycle through this instruction is not a natural loop, so no iteration bound exists")
			continue
		}
		if l.bound == 0 {
			v.diag(l.header, 0, "", CheckLoopBound, Warn,
				"loop has no inferable iteration bound (no counted-loop pattern found); annotate the header label via Builder.LoopBound")
		}
	}
}
