package binverify

import (
	"testing"

	"tm3270/internal/isa"
)

func TestIntervalValidity(t *testing.T) {
	cases := []struct {
		iv   interval
		want bool
	}{
		{interval{0, 0}, true},
		{interval{-5, 5}, true},
		{interval{5, -5}, false},                  // empty
		{interval{0, ivMaxWidth}, false},          // full wrap
		{interval{ivMaxMag, ivMaxMag + 1}, false}, // beyond the magnitude guard
		{interval{-ivMaxMag - 1, -ivMaxMag}, false},
	}
	for _, c := range cases {
		if got := c.iv.valid(); got != c.want {
			t.Errorf("valid(%+v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestIntervalWindows(t *testing.T) {
	if (interval{-1, 0}).unsignedOK() {
		t.Error("negative interval passed the unsigned window")
	}
	if !(interval{0, 1<<32 - 1}).unsignedOK() {
		t.Error("full unsigned range rejected")
	}
	if (interval{1 << 31, 1 << 31}).signedOK() {
		t.Error("2^31 passed the signed window")
	}
	if !(interval{-(1 << 31), 1<<31 - 1}).signedOK() {
		t.Error("full signed range rejected")
	}
}

func TestIntervalArith(t *testing.T) {
	a, b := interval{1, 3}, interval{10, 20}
	if got := a.add(b); got != (interval{11, 23}) {
		t.Errorf("add = %+v", got)
	}
	if got := a.sub(b); got != (interval{-19, -7}) {
		t.Errorf("sub = %+v", got)
	}
	if got := hull(a, b); got != (interval{1, 20}) {
		t.Errorf("hull = %+v", got)
	}
	if got, ok := (interval{-3, 2}).mul(interval{-5, 4}); !ok || got != (interval{-12, 15}) {
		t.Errorf("mul = %+v, %v", got, ok)
	}
	if _, ok := (interval{1 << 46, 1 << 46}).mul(interval{2, 2}); ok {
		t.Error("mul accepted operands beyond the magnitude pre-check")
	}
	if ivSext(0xffffffff) != (interval{-1, -1}) {
		t.Error("ivSext did not sign-extend")
	}
	if ivConst(7) != (interval{7, 7}) {
		t.Error("ivConst not a singleton")
	}
}

func TestContainsZeroPattern(t *testing.T) {
	cases := []struct {
		iv   interval
		want bool
	}{
		{interval{0, 0}, true},
		{interval{1, 100}, false},
		{interval{-3, 4}, true},
		{interval{-7, -1}, false},
		{interval{ivMaxWidth - 2, ivMaxWidth + 1}, true}, // spans a 2^32 multiple
		{interval{5, 2}, true},                           // invalid: conservatively yes
	}
	for _, c := range cases {
		if got := c.iv.containsZeroPattern(); got != c.want {
			t.Errorf("containsZeroPattern(%+v) = %v, want %v", c.iv, got, c.want)
		}
	}
}

func TestCmpKindAlgebra(t *testing.T) {
	pairs := map[cmpKind]cmpKind{
		cmpGT: cmpLE, cmpGE: cmpLT, cmpLT: cmpGE,
		cmpLE: cmpGT, cmpEQ: cmpNE, cmpNE: cmpEQ,
	}
	for k, n := range pairs {
		if k.negate() != n {
			t.Errorf("negate(%v) = %v, want %v", k, k.negate(), n)
		}
		if k.negate().negate() != k {
			t.Errorf("negate not an involution for %v", k)
		}
	}
	if cmpNone.negate() != cmpNone {
		t.Error("negate(cmpNone) changed")
	}
	flips := map[cmpKind]cmpKind{
		cmpGT: cmpLT, cmpGE: cmpLE, cmpLT: cmpGT, cmpLE: cmpGE,
		cmpEQ: cmpEQ, cmpNE: cmpNE, cmpNone: cmpNone,
	}
	for k, f := range flips {
		if k.flip() != f {
			t.Errorf("flip(%v) = %v, want %v", k, k.flip(), f)
		}
	}
	for k, s := range map[cmpKind]string{cmpNone: "?", cmpGT: ">", cmpLE: "<="} {
		if k.String() != s {
			t.Errorf("String(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

func TestCmpOpcode(t *testing.T) {
	cases := []struct {
		oc       isa.Opcode
		k        cmpKind
		unsigned bool
		immForm  bool
	}{
		{isa.OpIGTR, cmpGT, false, false},
		{isa.OpIGEQ, cmpGE, false, false},
		{isa.OpILES, cmpLT, false, false},
		{isa.OpILEQ, cmpLE, false, false},
		{isa.OpIEQL, cmpEQ, false, false},
		{isa.OpINEQ, cmpNE, false, false},
		{isa.OpUGTR, cmpGT, true, false},
		{isa.OpUGEQ, cmpGE, true, false},
		{isa.OpULES, cmpLT, true, false},
		{isa.OpULEQ, cmpLE, true, false},
		{isa.OpIGTRI, cmpGT, false, true},
		{isa.OpILESI, cmpLT, false, true},
		{isa.OpIEQLI, cmpEQ, false, true},
		{isa.OpINEQI, cmpNE, false, true},
		{isa.OpIADD, cmpNone, false, false},
	}
	for _, c := range cases {
		k, u, i := cmpOpcode(c.oc)
		if k != c.k || u != c.unsigned || i != c.immForm {
			t.Errorf("cmpOpcode(%v) = %v,%v,%v, want %v,%v,%v",
				c.oc, k, u, i, c.k, c.unsigned, c.immForm)
		}
	}
}

func TestEvalCmp(t *testing.T) {
	iv := func(lo, hi int64) interval { return interval{lo, hi} }
	cases := []struct {
		name     string
		k        cmpKind
		unsigned bool
		a, b     interval
		bit      int64
		known    bool
	}{
		{"gt-true", cmpGT, false, iv(5, 9), iv(1, 4), 1, true},
		{"gt-false", cmpGT, false, iv(1, 4), iv(4, 9), 0, true},
		{"gt-unknown", cmpGT, false, iv(1, 5), iv(4, 9), 0, false},
		{"ge-true", cmpGE, false, iv(4, 9), iv(1, 4), 1, true},
		{"ge-false", cmpGE, false, iv(1, 3), iv(4, 9), 0, true},
		{"lt-true", cmpLT, false, iv(1, 3), iv(4, 9), 1, true},
		{"lt-false", cmpLT, false, iv(4, 9), iv(1, 4), 0, true},
		{"le-true", cmpLE, false, iv(1, 4), iv(4, 9), 1, true},
		{"le-false", cmpLE, false, iv(5, 9), iv(1, 4), 0, true},
		{"eq-true", cmpEQ, false, iv(4, 4), iv(4, 4), 1, true},
		{"eq-false", cmpEQ, false, iv(1, 3), iv(4, 9), 0, true},
		{"eq-unknown", cmpEQ, false, iv(1, 4), iv(4, 9), 0, false},
		{"ne-true", cmpNE, false, iv(1, 3), iv(4, 9), 1, true},
		{"ne-false", cmpNE, false, iv(4, 4), iv(4, 4), 0, true},
		{"signed-window", cmpGT, false, iv(1<<31, 1<<31), iv(0, 0), 0, false},
		{"unsigned-window", cmpGT, true, iv(-1, -1), iv(0, 0), 0, false},
		{"unsigned-ok", cmpGT, true, iv(1<<31, 1<<31), iv(0, 0), 1, true},
		{"none", cmpNone, false, iv(0, 0), iv(0, 0), 0, false},
	}
	for _, c := range cases {
		bit, known := evalCmp(c.k, c.unsigned, c.a, c.b)
		if bit != c.bit || known != c.known {
			t.Errorf("%s: evalCmp = %d,%v, want %d,%v", c.name, bit, known, c.bit, c.known)
		}
	}
}

func TestByteRange(t *testing.T) {
	cases := []struct {
		name   string
		a      interval
		aok    bool
		lo, hi int64
		want   interval
	}{
		{"sex8-const", ivConst(0xff), true, -128, 127, interval{-1, -1}},
		{"sex16-const", ivConst(0x8000), true, -32768, 32767, interval{-32768, -32768}},
		{"zex8-const", ivConst(0x1ff), true, 0, 255, interval{0xff, 0xff}},
		{"zex16-const", ivConst(0x1ffff), true, 0, 65535, interval{0xffff, 0xffff}},
		{"top-operand", interval{}, false, -128, 127, interval{-128, 127}},
		{"wide-operand", interval{0, 9}, true, 0, 255, interval{0, 255}},
	}
	for _, c := range cases {
		if got := byteRange(c.a, c.aok, c.lo, c.hi); got != c.want {
			t.Errorf("%s: byteRange = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	for v, want := range map[uint64]uint64{0: 1, 1: 2, 2: 4, 3: 4, 255: 256, 256: 512} {
		if got := ceilPow2(v); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestTripCount(t *testing.T) {
	iv := func(lo, hi int64) interval { return interval{lo, hi} }
	cases := []struct {
		name     string
		rel      cmpKind
		unsigned bool
		entry    interval
		limit    interval
		step     int64
		bound    int64
		ok       bool
	}{
		// for (i = 0; i < 16; i++): 16 continues + the failing test.
		{"lt-up", cmpLT, false, iv(0, 0), iv(16, 16), 1, 17, true},
		{"le-up", cmpLE, false, iv(0, 0), iv(16, 16), 1, 18, true},
		{"gt-down", cmpGT, false, iv(16, 16), iv(0, 0), -1, 17, true},
		{"ge-down", cmpGE, false, iv(16, 16), iv(0, 0), -1, 18, true},
		{"lt-wrong-dir", cmpLT, false, iv(0, 0), iv(16, 16), -1, 0, false},
		{"le-wrong-dir", cmpLE, false, iv(0, 0), iv(16, 16), -1, 0, false},
		{"gt-wrong-dir", cmpGT, false, iv(16, 16), iv(0, 0), 1, 0, false},
		{"ge-wrong-dir", cmpGE, false, iv(16, 16), iv(0, 0), 1, 0, false},
		// Entry already past the limit: the failing test runs once.
		{"lt-exhausted", cmpLT, false, iv(20, 20), iv(16, 16), 1, 1, true},
		{"gt-exhausted", cmpGT, false, iv(0, 0), iv(16, 16), -1, 1, true},
		{"ge-exhausted", cmpGE, false, iv(0, 0), iv(16, 16), -1, 1, true},
		{"le-exhausted", cmpLE, false, iv(20, 20), iv(16, 16), 1, 1, true},
		{"eq-unsupported", cmpEQ, false, iv(0, 0), iv(16, 16), 1, 0, false},
		{"none-unsupported", cmpNone, false, iv(0, 0), iv(16, 16), 1, 0, false},
		// Stepping a signed counter past 2^31 leaves the window.
		{"window-escape", cmpLT, false, iv(0, 0), iv(1<<31-1, 1<<31-1), 1, 0, false},
		{"unsigned-up", cmpLT, true, iv(0, 0), iv(1<<31, 1<<31), 1 << 28, 9, true},
	}
	for _, c := range cases {
		bound, ok := tripCount(c.rel, c.unsigned, c.entry, c.limit, c.step)
		if bound != c.bound || ok != c.ok {
			t.Errorf("%s: tripCount = %d,%v, want %d,%v", c.name, bound, ok, c.bound, c.ok)
		}
	}
}
