package prefetch_test

import (
	"testing"

	"tm3270/internal/prefetch"
)

func TestMMIOProgramming(t *testing.T) {
	u := &prefetch.Unit{}
	// Program region 2 via its memory-mapped registers.
	base := uint32(prefetch.MMIOBase + 2*16)
	u.StoreMMIO(base+0, 0x100000)
	u.StoreMMIO(base+4, 0x180000)
	u.StoreMMIO(base+8, 720*4)
	r := u.Regions[2]
	if r.Start != 0x100000 || r.End != 0x180000 || r.Stride != 720*4 {
		t.Fatalf("region = %+v", r)
	}
	if u.LoadMMIO(base+0) != 0x100000 || u.LoadMMIO(base+4) != 0x180000 || u.LoadMMIO(base+8) != 720*4 {
		t.Error("MMIO readback mismatch")
	}
	if !prefetch.IsMMIO(base) || prefetch.IsMMIO(0x100000) {
		t.Error("IsMMIO misclassifies")
	}
}

func TestCandidate(t *testing.T) {
	u := &prefetch.Unit{}
	u.Regions[0] = prefetch.Region{Start: 0x1000, End: 0x2000, Stride: 0x80}
	if _, ok := u.Candidate(0x0fff); ok {
		t.Error("address below region triggered")
	}
	if _, ok := u.Candidate(0x2000); ok {
		t.Error("region end is exclusive")
	}
	addr, ok := u.Candidate(0x1800)
	if !ok || addr != 0x1880 {
		t.Errorf("candidate = %#x,%v, want 0x1880", addr, ok)
	}
	if u.Stats.Triggers != 1 {
		t.Errorf("triggers = %d", u.Stats.Triggers)
	}
}

func TestNegativeStride(t *testing.T) {
	// Two's-complement stride walks backwards (bottom-up image
	// processing).
	u := &prefetch.Unit{}
	u.Regions[1] = prefetch.Region{Start: 0x1000, End: 0x2000, Stride: ^uint32(0x7f)} // -128
	addr, ok := u.Candidate(0x1800)
	if !ok || addr != 0x1780 {
		t.Errorf("candidate = %#x, want 0x1780", addr)
	}
}

func TestFourRegions(t *testing.T) {
	u := &prefetch.Unit{}
	for i := 0; i < prefetch.NumRegions; i++ {
		u.Regions[i] = prefetch.Region{
			Start:  uint32(i+1) << 16,
			End:    uint32(i+1)<<16 + 0x1000,
			Stride: 64,
		}
	}
	for i := 0; i < prefetch.NumRegions; i++ {
		a := uint32(i+1)<<16 + 0x100
		got, ok := u.Candidate(a)
		if !ok || got != a+64 {
			t.Errorf("region %d: candidate(%#x) = %#x,%v", i, a, got, ok)
		}
	}
	if _, ok := u.Candidate(0x60000 + 0x2000); ok {
		t.Error("address outside every region triggered")
	}
}

func TestDisabledRegion(t *testing.T) {
	u := &prefetch.Unit{}
	if u.Regions[0].Active() {
		t.Error("zero region must be inactive")
	}
	if _, ok := u.Candidate(0); ok {
		t.Error("inactive region triggered")
	}
}
