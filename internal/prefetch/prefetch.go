// Package prefetch implements the TM3270's memory-region based hardware
// prefetcher (Section 2.3): four software-programmed regions, each with
// a start address, end address and stride. When the processor performs a
// load from an address A inside region n and the line at A+STRIDEn is
// absent from the data cache, a prefetch of that line is issued to the
// refill engine. Prefetched data lands directly in the data cache — the
// large 4-way 128 KB cache makes victimization of useful data unlikely,
// so no stream buffers are needed.
package prefetch

// NumRegions is the number of architected prefetch regions.
const NumRegions = 4

// MMIOBase is the memory-mapped address of the prefetch configuration
// registers. Region n occupies three 32-bit registers at
// MMIOBase + 16n: START, END, STRIDE.
const MMIOBase = 0xEFF00000

// MMIOSize is the extent of the prefetch register block.
const MMIOSize = NumRegions * 16

// Region is one programmed prefetch region.
type Region struct {
	Start  uint32 // PFn_START_ADDR
	End    uint32 // PFn_END_ADDR (exclusive)
	Stride uint32 // PFn_STRIDE (two's complement; may walk backwards)
}

// Active reports whether the region is enabled (a zero-size region is
// disabled).
func (r *Region) Active() bool { return r.End > r.Start }

// Contains reports whether addr lies inside the region.
func (r *Region) Contains(addr uint32) bool {
	return r.Active() && addr >= r.Start && addr < r.End
}

// Stats is the coherent prefetch counter family. The data cache owns
// issue and timeliness classification (it sees demand accesses land on
// prefetched lines) but accounts it here, so `prefetch.*` is one place:
// Useful + Late <= Issued, and Issued + Dropped == filtered candidates.
type Stats struct {
	Triggers int64 // loads that hit a programmed region
	Issued   int64 // prefetches sent to the refill engine
	Useful   int64 // demand accesses that found a prefetched line ready
	Late     int64 // demand accesses that caught a prefetched line still in flight
	Dropped  int64 // candidates filtered (line already present, or fault-dropped)
	Evicted  int64 // prefetched lines victimized before any demand use
}

// Unit is the prefetch unit state.
type Unit struct {
	Regions [NumRegions]Region

	Stats Stats
}

// IsMMIO reports whether addr falls in the configuration register block.
func IsMMIO(addr uint32) bool {
	return addr >= MMIOBase && addr < MMIOBase+MMIOSize
}

// StoreMMIO handles a store to the configuration registers.
func (u *Unit) StoreMMIO(addr uint32, val uint32) {
	off := addr - MMIOBase
	n := off / 16
	if n >= NumRegions {
		return
	}
	switch off % 16 {
	case 0:
		u.Regions[n].Start = val
	case 4:
		u.Regions[n].End = val
	case 8:
		u.Regions[n].Stride = val
	}
}

// LoadMMIO reads back a configuration register.
func (u *Unit) LoadMMIO(addr uint32) uint32 {
	off := addr - MMIOBase
	n := off / 16
	if n >= NumRegions {
		return 0
	}
	switch off % 16 {
	case 0:
		return u.Regions[n].Start
	case 4:
		return u.Regions[n].End
	case 8:
		return u.Regions[n].Stride
	}
	return 0
}

// Candidate returns the prefetch address triggered by a load from addr,
// if any. The caller (the data cache) is responsible for the
// already-present / already-pending filtering and for issuing the fill.
func (u *Unit) Candidate(addr uint32) (uint32, bool) {
	for i := range u.Regions {
		if u.Regions[i].Contains(addr) {
			u.Stats.Triggers++
			return addr + u.Regions[i].Stride, true
		}
	}
	return 0, false
}
