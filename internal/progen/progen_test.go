package progen_test

import (
	"fmt"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/progen"
	"tm3270/internal/runner"
)

// TestDeterministic: the same (seed, target) pair must reproduce the
// identical program — a co-simulation divergence is only actionable if
// its seed replays it.
func TestDeterministic(t *testing.T) {
	tgt := config.ConfigD()
	gen := func(seed int64) string {
		p := progen.Generate(progen.Config{Seed: seed, Target: &tgt, Ops: 64})
		var sb strings.Builder
		for _, blk := range p.Blocks {
			fmt.Fprintf(&sb, "%s: %+v\n", blk.Label, blk.Ops)
		}
		return sb.String()
	}
	if a, b := gen(7), gen(7); a != b {
		t.Error("same seed generated different programs")
	}
	if a, c := gen(7), gen(8); a == c {
		t.Error("seeds 7 and 8 generated identical programs")
	}
}

// TestShapesAppear: the widened generator must actually produce the
// shapes it advertises — nested loops and collapsed-load address
// collisions — across a modest seed range, and every program carrying
// them must still compile and pass the static verifier.
func TestShapesAppear(t *testing.T) {
	tgt := config.ConfigD()
	total := progen.Info{}
	for seed := int64(1); seed <= 40; seed++ {
		p, info := progen.GenerateInfo(progen.Config{Seed: seed, Target: &tgt, Ops: 64})
		total.Loops += info.Loops
		total.Nested += info.Nested
		total.Collisions += info.Collisions
		total.Collapsed += info.Collapsed
		if info.Nested == 0 && info.Collapsed == 0 {
			continue
		}
		// The interesting shapes must not buy legality away.
		art, err := runner.Compile(p, tgt)
		if err != nil {
			t.Fatalf("seed %d (nested=%d collapsed=%d): %v", seed, info.Nested, info.Collapsed, err)
		}
		if rep, err := art.VerifyStatic(&tgt, nil); err != nil {
			t.Errorf("seed %d: static verifier rejects program with nested/colliding shapes: %v\n%v",
				seed, err, rep)
		}
	}
	if total.Nested == 0 {
		t.Error("no seed in 1..40 generated a nested loop")
	}
	if total.Collapsed == 0 {
		t.Error("no seed in 1..40 generated a collapsed-load address collision")
	}
	if total.Collisions <= total.Collapsed {
		t.Error("no seed in 1..40 generated a plain load/store address collision")
	}
	if total.Nested >= total.Loops {
		t.Errorf("nested loops %d not a strict subset of loops %d", total.Nested, total.Loops)
	}
}

// TestLegalByConstruction: every generated program must compile through
// the full scheduler/allocator/encoder pipeline on every paper target
// and pass the whole-program static verifier.
func TestLegalByConstruction(t *testing.T) {
	targets := []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
	}
	for seed := int64(1); seed <= 25; seed++ {
		for i := range targets {
			tgt := targets[i]
			p := progen.Generate(progen.Config{Seed: seed, Target: &tgt, Ops: 64})
			art, err := runner.Compile(p, tgt)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, tgt.Name, err)
			}
			rep, err := art.VerifyStatic(&tgt, nil)
			if err != nil {
				t.Errorf("seed %d on %s: static verifier rejects generated binary: %v\n%v",
					seed, tgt.Name, err, rep)
			}
		}
	}
}
