package progen_test

import (
	"fmt"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/progen"
	"tm3270/internal/runner"
)

// TestDeterministic: the same (seed, target) pair must reproduce the
// identical program — a co-simulation divergence is only actionable if
// its seed replays it.
func TestDeterministic(t *testing.T) {
	tgt := config.ConfigD()
	gen := func(seed int64) string {
		p := progen.Generate(progen.Config{Seed: seed, Target: &tgt, Ops: 64})
		var sb strings.Builder
		for _, blk := range p.Blocks {
			fmt.Fprintf(&sb, "%s: %+v\n", blk.Label, blk.Ops)
		}
		return sb.String()
	}
	if a, b := gen(7), gen(7); a != b {
		t.Error("same seed generated different programs")
	}
	if a, c := gen(7), gen(8); a == c {
		t.Error("seeds 7 and 8 generated identical programs")
	}
}

// TestLegalByConstruction: every generated program must compile through
// the full scheduler/allocator/encoder pipeline on every paper target
// and pass the whole-program static verifier.
func TestLegalByConstruction(t *testing.T) {
	targets := []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
	}
	for seed := int64(1); seed <= 25; seed++ {
		for i := range targets {
			tgt := targets[i]
			p := progen.Generate(progen.Config{Seed: seed, Target: &tgt, Ops: 64})
			art, err := runner.Compile(p, tgt)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, tgt.Name, err)
			}
			rep, err := art.VerifyStatic(&tgt, nil)
			if err != nil {
				t.Errorf("seed %d on %s: static verifier rejects generated binary: %v\n%v",
					seed, tgt.Name, err, rep)
			}
		}
	}
}
