// Package progen generates seeded random *legal* VLIW programs for the
// differential conformance harness: every generated program compiles
// through the regular scheduler/allocator/encoder pipeline (so the
// schedule respects latency, slot, pair and writeback constraints by
// construction and passes the static binary verifier), terminates (all
// loops — including loops nested inside other loops — are down-counted
// with unguarded decrements), and keeps every memory access inside a
// configured window or the prefetch MMIO block. A handful of hot
// offsets per program is shared between stores, displacement loads and
// wide collapsed/super loads, so address collisions between accesses
// of different widths occur by design rather than by luck.
//
// Determinism: the same (seed, target) pair always yields the same
// program, so any co-simulation divergence is reproducible from its
// seed alone.
package progen

import (
	"fmt"
	"math/rand"

	"tm3270/internal/config"
	"tm3270/internal/isa"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
)

// Config parameterizes generation.
type Config struct {
	Seed   int64
	Target *config.Target

	// Ops is the approximate operation budget (default 64).
	Ops int

	// MemBase/MemSize bound the data window every generated memory
	// access stays inside. MemSize must be a power of two ≥ 4 KB
	// (default: 64 KB at 0x0200_0000).
	MemBase uint32
	MemSize uint32
}

func (c *Config) fill() {
	if c.Ops == 0 {
		c.Ops = 64
	}
	if c.MemSize == 0 {
		c.MemBase = 0x0200_0000
		c.MemSize = 1 << 16
	}
	if c.MemSize&(c.MemSize-1) != 0 || c.MemSize < 1<<12 {
		panic(fmt.Sprintf("progen: MemSize %#x is not a power of two >= 4KB", c.MemSize))
	}
}

// Info describes the shapes one generated program contains, so tests
// and campaign reports can prove the generator's coverage instead of
// assuming it.
type Info struct {
	// Ops is the number of random operations emitted.
	Ops int
	// Loops is the number of counted loops (outer and inner).
	Loops int
	// Nested is the number of loops emitted inside another loop — each
	// adds a backward branch nested within an outer backward region.
	Nested int
	// Collisions is the number of memory accesses aimed at one of the
	// program's hot offsets (shared with other accesses by design).
	Collisions int
	// Collapsed is the subset of Collisions carried by collapsed or
	// super loads (LD_FRAC8, SUPER_LD32R), whose wide accesses overlap
	// plain stores at the same offset.
	Collapsed int
	// MMIO reports whether the program touches the prefetch MMIO bank.
	MMIO bool
}

// gen carries the generation state: the value-register pool doubles as
// source, destination and guard pool, while control registers (loop
// counters, loop guards, window base and mask) live outside it so no
// random operation can clobber loop termination or address legality.
type gen struct {
	cfg     Config
	rng     *rand.Rand
	b       *prog.Builder
	vals    []prog.VReg
	base    prog.VReg   // data window base address
	mask    prog.VReg   // MemSize-8: masks an index into the window
	mmio    prog.VReg   // MMIO block base (prefetch targets only)
	scratch []prog.VReg // ring of temporaries for address formation
	nextTmp int
	pool    []isa.Opcode
	lbl     int
	hot     []uint32 // offsets shared between colliding accesses
	info    Info
}

// Generate builds the random program for the configuration.
func Generate(cfg Config) *prog.Program {
	p, _ := GenerateInfo(cfg)
	return p
}

// GenerateInfo builds the random program and reports which shapes it
// contains.
func GenerateInfo(cfg Config) (*prog.Program, Info) {
	cfg.fill()
	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		b:   prog.NewBuilder(fmt.Sprintf("gen%d", cfg.Seed)),
	}
	g.pool = opPool(cfg.Target)

	g.vals = g.b.Regs(12)
	for _, v := range g.vals {
		g.b.Imm(v, g.rng.Uint32())
	}
	g.base = g.b.ImmReg(cfg.MemBase)
	g.mask = g.b.ImmReg(cfg.MemSize - 8)
	g.scratch = g.b.Regs(8)
	for _, v := range g.scratch {
		g.b.Imm(v, 0)
	}
	if cfg.Target.HasRegionPrefetch {
		g.mmio = g.b.ImmReg(prefetch.MMIOBase)
	}
	// Hot offsets: a handful of 8-byte-aligned displacements that
	// colliding loads and stores share, so the same bytes are hit by
	// narrow stores, wide collapsed loads and super loads in one run.
	for i := 0; i < 3; i++ {
		g.hot = append(g.hot, uint32(8*g.rng.Intn(126)))
	}

	nLoops := 1 + g.rng.Intn(3)
	perRegion := cfg.Target.HasRegionPrefetch
	budget := cfg.Ops
	for l := 0; l < nLoops; l++ {
		g.straightLine(budget / (3 * nLoops))
		g.loop(budget/(2*nLoops), 0)
	}
	g.straightLine(budget / 6)
	if perRegion && g.rng.Intn(2) == 0 {
		g.mmioOps()
		g.info.MMIO = true
	}
	// Witness stores: make a few register results memory-observable.
	for i := 0; i < 3; i++ {
		g.b.St32D(g.base, int32(4*i), g.pick())
	}
	return g.b.MustProgram(), g.info
}

// opPool returns every target-supported opcode the generator draws
// from; control flow, NOP and IIMM are structured separately.
func opPool(t *config.Target) []isa.Opcode {
	var pool []isa.Opcode
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		info, ok := isa.InfoOK(op)
		if !ok || info.IsJump || op == isa.OpNOP || op == isa.OpIIMM {
			continue
		}
		if !t.Supports(op) {
			continue
		}
		pool = append(pool, op)
	}
	return pool
}

func (g *gen) pick() prog.VReg { return g.vals[g.rng.Intn(len(g.vals))] }

// pick2 returns two distinct value registers (dual-destination ops).
func (g *gen) pick2() (prog.VReg, prog.VReg) {
	a := g.rng.Intn(len(g.vals))
	b := g.rng.Intn(len(g.vals) - 1)
	if b >= a {
		b++
	}
	return g.vals[a], g.vals[b]
}

// tmp returns the next scratch register from a fixed ring, bounding
// register pressure independently of the operation budget.
func (g *gen) tmp() prog.VReg {
	v := g.scratch[g.nextTmp%len(g.scratch)]
	g.nextTmp++
	return v
}

func (g *gen) label(kind string) string {
	g.lbl++
	return fmt.Sprintf("%s%d", kind, g.lbl)
}

// guardMaybe guards about a quarter of operations with a random value
// register (bit 0 decides execution, so both outcomes occur).
func (g *gen) guardMaybe(op *prog.Op) {
	if g.rng.Intn(4) == 0 {
		op.WithGuard(g.pick())
	}
}

// straightLine emits n random operations.
func (g *gen) straightLine(n int) {
	for i := 0; i < n; i++ {
		g.emitRandom()
	}
}

// loop emits one counted loop with n body operations, possibly with a
// counted inner loop nested in the body (one level deep), so backward
// branches occur inside other backward regions. The counters and
// their guards live outside the value pool, the inner counter is
// re-materialized on every outer iteration, and the decrements are
// unguarded, so termination is structural at every depth.
func (g *gen) loop(n, depth int) {
	g.info.Loops++
	if depth > 0 {
		g.info.Nested++
	}
	cnt := g.b.ImmReg(uint32(2 + g.rng.Intn(4)))
	head := g.label("loop")
	g.b.Label(head)

	innerAt := -1
	if depth == 0 && n >= 8 && g.rng.Intn(2) == 0 {
		innerAt = 1 + g.rng.Intn(n/2)
	}
	fwd := ""
	fwdAt := -1
	if n >= 4 && g.rng.Intn(2) == 0 {
		fwdAt = 1 + g.rng.Intn(n/2)
	}
	for i := 0; i < n; i++ {
		if i == fwdAt {
			fwd = g.label("skip")
			if g.rng.Intn(2) == 0 {
				g.b.JmpT(g.pick(), fwd)
			} else {
				g.b.JmpF(g.pick(), fwd)
			}
		}
		if i == innerAt {
			g.loop(2+n/4, depth+1)
		}
		g.emitRandom()
	}
	if fwd != "" {
		g.b.Label(fwd)
	}

	g.b.AddI(cnt, cnt, -1)
	again := g.b.Reg()
	g.b.GtrI(again, cnt, 0)
	g.b.JmpT(again, head)
}

// mmioOps programs prefetch regions through the memory-mapped registers
// and reads one back, exercising the MMIO path of both models. The
// reserved fourth word of a region (offset 12) is included: stores to
// it are dropped and loads return zero.
func (g *gen) mmioOps() {
	for i := 0; i < 2; i++ {
		off := int32(4 * g.rng.Intn(16))
		g.b.St32D(g.mmio, off, g.pick())
	}
	g.b.Ld32D(g.pick(), g.mmio, int32(4*g.rng.Intn(16)))
}

// smallImm fits every encoding form: guarded operations get an 11-bit
// signed immediate field, so the generator stays within ±1000.
func (g *gen) smallImm() uint32 { return uint32(int32(g.rng.Intn(2001) - 1000)) }

// index materializes a random in-window byte index: masking with
// MemSize-8 clears the low three bits and bounds the value, so even an
// 8-byte access from base+index stays inside the window.
func (g *gen) index() prog.VReg {
	idx := g.tmp()
	g.b.And(idx, g.pick(), g.mask)
	return idx
}

// hotOff draws one of the program's hot offsets.
func (g *gen) hotOff() uint32 { return g.hot[g.rng.Intn(len(g.hot))] }

// hotIndex materializes a hot offset as an index register, so the
// access collides with the displacement accesses aimed at the same
// offset. Hot offsets are 8-byte aligned and < 1008, so any access
// width from base+offset stays inside the window.
func (g *gen) hotIndex() prog.VReg {
	idx := g.tmp()
	g.b.Imm(idx, g.hotOff())
	return idx
}

// hotImm replaces about a third of displacement immediates with a hot
// offset, colliding the access with others at the same address.
func (g *gen) hotImm(imm uint32) uint32 {
	if g.rng.Intn(3) == 0 {
		g.info.Collisions++
		return g.hotOff()
	}
	return imm
}

// emitRandom draws one opcode from the pool and emits it with legal
// operands.
func (g *gen) emitRandom() {
	g.info.Ops++
	// Occasionally refresh a value register with a fresh constant so
	// the pool doesn't collapse into derived values.
	if g.rng.Intn(8) == 0 {
		g.b.Imm(g.pick(), g.rng.Uint32())
		return
	}
	op := g.pool[g.rng.Intn(len(g.pool))]
	info := isa.Info(op)

	switch {
	case op == isa.OpALLOCD:
		g.guardMaybe(g.b.AllocD(g.base, int32(g.rng.Intn(1001))))

	case info.IsStore:
		o := g.b.Emit(prog.Op{Opcode: op,
			Src: [4]prog.VReg{g.base, g.pick()},
			Imm: g.hotImm(uint32(g.rng.Intn(1001)))})
		g.guardMaybe(o)

	case op == isa.OpLDFRAC8:
		// Address operand is the full effective address (no implicit
		// base): compute base+index explicitly.
		idx := g.index()
		if g.rng.Intn(2) == 0 {
			idx = g.hotIndex()
			g.info.Collisions++
			g.info.Collapsed++
		}
		addr := g.tmp()
		g.b.Add(addr, g.base, idx)
		g.guardMaybe(g.b.LdFrac8(g.pick(), addr, g.pick()))

	case op == isa.OpSUPERLD32R:
		idx := g.index()
		if g.rng.Intn(2) == 0 {
			idx = g.hotIndex()
			g.info.Collisions++
			g.info.Collapsed++
		}
		d1, d2 := g.pick2()
		g.guardMaybe(g.b.SuperLd32R(d1, d2, g.base, idx))

	case info.IsLoad && info.NSrc == 2: // indexed loads
		idx := g.index()
		if g.rng.Intn(3) == 0 {
			idx = g.hotIndex()
			g.info.Collisions++
		}
		o := g.b.Emit(prog.Op{Opcode: op,
			Src:  [4]prog.VReg{g.base, idx},
			Dest: [2]prog.VReg{g.pick()}})
		g.guardMaybe(o)

	case info.IsLoad: // displacement loads
		o := g.b.Emit(prog.Op{Opcode: op,
			Src:  [4]prog.VReg{g.base},
			Dest: [2]prog.VReg{g.pick()},
			Imm:  g.hotImm(uint32(g.rng.Intn(1001)))})
		g.guardMaybe(o)

	case info.TwoSlot:
		o := prog.Op{Opcode: op}
		for k := 0; k < info.NSrc; k++ {
			o.Src[k] = g.pick()
		}
		if info.NDest == 2 {
			o.Dest[0], o.Dest[1] = g.pick2()
		} else if info.NDest == 1 {
			o.Dest[0] = g.pick()
		}
		g.guardMaybe(g.b.Emit(o))

	case info.HasImm && info.NSrc <= 1:
		o := prog.Op{Opcode: op, Dest: [2]prog.VReg{g.pick()}, Imm: g.smallImm()}
		if info.NSrc == 1 {
			o.Src[0] = g.pick()
		}
		g.guardMaybe(g.b.Emit(o))

	default:
		o := prog.Op{Opcode: op, Dest: [2]prog.VReg{g.pick()}}
		for k := 0; k < info.NSrc; k++ {
			o.Src[k] = g.pick()
		}
		g.guardMaybe(g.b.Emit(o))
	}
}
