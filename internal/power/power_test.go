package power_test

import (
	"math"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/power"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable4Area pins the paper's area breakdown for the TM3270.
func TestTable4Area(t *testing.T) {
	tgt := config.TM3270()
	r := power.Area(&tgt)
	want := []float64{1.46, 0.05, 0.97, 1.53, 3.60, 0.24, 0.23}
	for m, w := range want {
		if !close(r.Modules[m], w, 0.005) {
			t.Errorf("%s area = %.3f mm², Table 4 says %.2f", power.Name(m), r.Modules[m], w)
		}
	}
	if !close(r.Total(), 8.08, 0.01) {
		t.Errorf("total area = %.3f mm², Table 4 says 8.08", r.Total())
	}
}

// TestAreaScalesWithCaches: configurations B/C carry a 16 KB data cache
// and must report a smaller load/store unit.
func TestAreaScalesWithCaches(t *testing.T) {
	d, b := config.TM3270(), config.ConfigB()
	rd, rb := power.Area(&d), power.Area(&b)
	if rb.Modules[power.LS] >= rd.Modules[power.LS] {
		t.Errorf("16KB D$ LS area %.2f not below 128KB %.2f",
			rb.Modules[power.LS], rd.Modules[power.LS])
	}
	shrink := rd.Modules[power.LS] - rb.Modules[power.LS]
	if !close(shrink, 112.0/1024*8*0.0, 10) && shrink <= 0 { // sanity only
		t.Errorf("LS shrink = %.2f", shrink)
	}
	// The SRAMs are roughly half the processor area (Section 5.1).
	sram := 192.0 / 1024 * 1024 * 0.020 // 64K + 128K in KB * density
	frac := sram / rd.Total()
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("SRAM fraction = %.2f, paper says roughly 50%%", frac)
	}
}

// TestTable4PowerAtReference pins the mW/MHz breakdown at the MP3
// operating point and 1.2 V.
func TestTable4PowerAtReference(t *testing.T) {
	r, err := power.Power(power.MP3Reference(), power.NominalVoltage)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.272, 0.022, 0.170, 0.255, 0.266, 0.002, 0.012}
	for m, w := range want {
		if !close(r.Modules[m], w, 1e-9) {
			t.Errorf("%s power = %.3f mW/MHz, Table 4 says %.3f", power.Name(m), r.Modules[m], w)
		}
	}
	// Note: the paper's Table 4 states a 0.935 total, but its own module
	// column sums to 0.999 — an internal inconsistency of the paper. We
	// keep per-module fidelity, so our total is the column sum.
	if !close(r.Total(), 0.999, 1e-6) {
		t.Errorf("total = %.3f mW/MHz, module column sums to 0.999", r.Total())
	}
}

// TestVoltageScaling pins the paper's arithmetic: power scales with
// (0.8/1.2)² = 4/9 when dropping from 1.2 V to 0.8 V, and MP3 decoding
// runs in about 8 MHz worth of cycles.
func TestVoltageScaling(t *testing.T) {
	hi, err := power.Power(power.MP3Reference(), power.NominalVoltage)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := power.Power(power.MP3Reference(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := lo.Total() / hi.Total(); !close(ratio, 4.0/9.0, 1e-9) {
		t.Errorf("scaling ratio = %.4f, want 4/9 (quadratic in V)", ratio)
	}
	// With the paper's stated 0.935 total this is the 3.32 mW MP3
	// number; with the column-sum total it is proportionally 3.55 mW.
	if mw := lo.MilliWattsAt(8); !close(mw, 3.55, 0.01) {
		t.Errorf("MP3 at 8 MHz = %.3f mW, want 3.55 (column-sum calibration)", mw)
	}
}

func TestVoltageRangeEnforced(t *testing.T) {
	if _, err := power.Power(power.MP3Reference(), 0.5); err == nil {
		t.Error("0.5 V accepted below the guaranteed range")
	}
	if _, err := power.Power(power.MP3Reference(), 1.5); err == nil {
		t.Error("1.5 V accepted above nominal")
	}
}

// TestClockGating: stalling workloads (CPI > 1) draw less mW/MHz
// overall, but the BIU's share grows.
func TestClockGating(t *testing.T) {
	busy := power.MP3Reference()
	stalled := busy
	stalled.Utilization = 0.5 // CPI 2
	stalled.BusBytesPerCyc = 0.2

	rb, _ := power.Power(busy, power.NominalVoltage)
	rs, _ := power.Power(stalled, power.NominalVoltage)
	if rs.Total() >= rb.Total() {
		t.Errorf("stalled total %.3f not below busy %.3f (clock gating)", rs.Total(), rb.Total())
	}
	shareBusy := rb.Modules[power.BIU] / rb.Total()
	shareStalled := rs.Modules[power.BIU] / rs.Total()
	if shareStalled <= shareBusy {
		t.Error("BIU share must grow with CPI (Section 5.2)")
	}
}

// TestOPIScaling: power tracks OPI more than the specific application.
func TestOPIScaling(t *testing.T) {
	lo := power.MP3Reference()
	lo.OPI = 2.0
	rl, _ := power.Power(lo, power.NominalVoltage)
	rh, _ := power.Power(power.MP3Reference(), power.NominalVoltage)
	if rl.Modules[power.Execute] >= rh.Modules[power.Execute] {
		t.Error("execute power must scale with OPI")
	}
	if rl.Modules[power.Regfile] >= rh.Modules[power.Regfile] {
		t.Error("register-file power must scale with OPI")
	}
}
