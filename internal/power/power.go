// Package power implements the TM3270 area and power model behind
// Table 4 of the paper (and the Figure 6 floorplan partitioning).
//
// Dynamic power follows C·V²·f: each module has a switched-capacitance
// rating expressed as mW/MHz at the nominal 1.2 V, scaled by an activity
// factor derived from execution statistics. The design is heavily
// clock-gated (roughly 70 functional clock domains), which the model
// captures by scaling module activity with pipeline utilization: a
// stalled processor clock-gates its units, so applications with a larger
// CPI draw fewer mW/MHz — except in the BIU, which is busy precisely
// when the core stalls (Section 5.2).
//
// The per-module ratings are calibrated so that the paper's MP3 decoder
// operating point (OPI 4.5, CPI 1.0) reproduces Table 4 exactly. Area is
// decomposed into standard-cell logic plus SRAM macros so that the
// derived configurations (e.g. the 16 KB data cache of configurations B
// and C) report correspondingly smaller load/store units.
package power

import (
	"fmt"

	"tm3270/internal/config"
)

// NominalVoltage is the typical supply of the low-power 90 nm process.
const NominalVoltage = 1.2

// MinVoltage is the guaranteed functional lower bound for dynamic
// voltage scaling.
const MinVoltage = 0.8

// Reference activity: the MP3 decoder operating point of Table 4.
const (
	refOPI            = 4.5
	refMemOpsPerInstr = 0.30
	refBusBytesPerCyc = 0.02
)

// sramMM2PerKB is the 90 nm single-ported SRAM density used for the
// cache macros (includes tag arrays).
const sramMM2PerKB = 0.020

// Module identifies one floorplan module (Figure 6).
type Module int

const (
	IFU Module = iota
	Decode
	Regfile
	Execute
	LS
	BIU
	MMIO
	numModules
)

var moduleNames = [numModules]string{"IFU", "Decode", "Regfile", "Execute", "LS", "BIU", "MMIO"}

func (m Module) String() string { return moduleNames[m] }

// mwPerMHz is the Table 4 power rating of each module at the reference
// activity point and 1.2 V.
var mwPerMHz = [numModules]float64{
	IFU:     0.272,
	Decode:  0.022,
	Regfile: 0.170,
	Execute: 0.255,
	LS:      0.266,
	BIU:     0.002,
	MMIO:    0.012,
}

// logicMM2 is the standard-cell logic area of each module, excluding
// SRAM macros (which are added from the target's cache geometry). The
// constants are calibrated against Table 4 for the TM3270 geometry
// (64 KB I$, 128 KB D$).
var logicMM2 = [numModules]float64{
	IFU:     1.46 - 64*sramMM2PerKB,  // fetch, instruction buffer, pre-decode
	Decode:  0.05,                    // operation decoding
	Regfile: 0.97,                    // 128 x 32b, 15R/5W ports, routing-bound
	Execute: 1.53,                    // 31 functional units
	LS:      3.60 - 128*sramMM2PerKB, // LSU pipeline, CWB, dual tags, LRU logic
	BIU:     0.24,
	MMIO:    0.23,
}

// AreaReport is the Figure 6 / Table 4 area breakdown.
type AreaReport struct {
	Modules [numModules]float64 // mm²
}

// Total returns the processor area in mm².
func (r *AreaReport) Total() float64 {
	t := 0.0
	for _, a := range r.Modules {
		t += a
	}
	return t
}

// Area computes the module areas for a target configuration.
func Area(t *config.Target) AreaReport {
	var r AreaReport
	copy(r.Modules[:], logicMM2[:])
	r.Modules[IFU] += float64(t.ICache.SizeBytes) / 1024 * sramMM2PerKB
	r.Modules[LS] += float64(t.DCache.SizeBytes) / 1024 * sramMM2PerKB
	return r
}

// Activity is the operating point of a workload, extracted from
// execution statistics.
type Activity struct {
	Utilization    float64 // issued instructions per cycle (1/CPI)
	OPI            float64 // effective operations per instruction
	MemOpsPerInstr float64 // loads+stores per instruction
	BusBytesPerCyc float64 // off-chip traffic per cycle
}

// MP3Reference returns the Table 4 calibration point.
func MP3Reference() Activity {
	return Activity{
		Utilization:    1.0,
		OPI:            refOPI,
		MemOpsPerInstr: refMemOpsPerInstr,
		BusBytesPerCyc: refBusBytesPerCyc,
	}
}

// PowerReport is the Table 4 power breakdown.
type PowerReport struct {
	Voltage float64
	Modules [numModules]float64 // mW/MHz
}

// Total returns the processor rating in mW/MHz at the report's voltage.
func (r *PowerReport) Total() float64 {
	t := 0.0
	for _, p := range r.Modules {
		t += p
	}
	return t
}

// MilliWattsAt returns the power draw when running at freqMHz.
func (r *PowerReport) MilliWattsAt(freqMHz float64) float64 {
	return r.Total() * freqMHz
}

// Power evaluates the model at an activity point and supply voltage.
func Power(a Activity, voltage float64) (PowerReport, error) {
	if voltage < MinVoltage-1e-9 || voltage > NominalVoltage+1e-9 {
		return PowerReport{}, fmt.Errorf("power: voltage %.2f outside guaranteed range [%.1f, %.1f]",
			voltage, MinVoltage, NominalVoltage)
	}
	u := clamp01(a.Utilization)
	// Activity factors saturate at 2x the reference point: a unit that
	// is already switching every cycle cannot draw arbitrarily more, and
	// the ratings fold in per-access energies calibrated at Table 4's
	// operating point.
	const maxFactor = 2.0
	factors := [numModules]float64{
		// Fetch and decode clock per issued instruction.
		IFU:    u,
		Decode: u,
		// Register file and execute track operation throughput.
		Regfile: u * a.OPI / refOPI,
		Execute: u * a.OPI / refOPI,
		// The load/store unit tracks memory-operation throughput.
		LS: u * a.MemOpsPerInstr / refMemOpsPerInstr,
		// The BIU is busy with off-chip traffic, stalls included.
		BIU: a.BusBytesPerCyc / refBusBytesPerCyc,
		// Peripheral accesses are rare and roughly utilization-bound.
		MMIO: u,
	}
	// Dynamic power scales with V² (C·V²·f).
	vs := (voltage / NominalVoltage) * (voltage / NominalVoltage)
	var r PowerReport
	r.Voltage = voltage
	for m := Module(0); m < numModules; m++ {
		f := factors[m]
		if f > maxFactor {
			f = maxFactor
		}
		r.Modules[m] = mwPerMHz[m] * f * vs
	}
	return r, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ModuleCount returns the number of floorplan modules.
func ModuleCount() int { return int(numModules) }

// Name returns a module's floorplan name.
func Name(m int) string { return moduleNames[m] }

// TableRating returns the calibrated Table 4 mW/MHz of a module.
func TableRating(m int) float64 { return mwPerMHz[m] }
