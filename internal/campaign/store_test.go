package campaign_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tm3270/internal/campaign"
)

// TestHashStability pins the content-address scheme with golden
// values: a unit's hash is the store's lookup key, so an accidental
// change to the salt, the struct encoding or the truncation silently
// invalidates every existing store. Changing the scheme on purpose
// must come with a new hashSalt version — and new goldens here.
func TestHashStability(t *testing.T) {
	golden := []struct {
		u    campaign.Unit
		hash string
	}{
		{campaign.Unit{Kind: "cosim-gen", Seed: 7, Ops: 64, Target: "TM3270", Engine: "blockcache"},
			"609bf3378895621a76486764"},
		{campaign.Unit{Kind: "cosim-gen", Seed: 7, Ops: 64, Target: "TM3270", Engine: "blockcache", Lockstep: true},
			"9bd6f366ef323cc1e2f99293"},
		{campaign.Unit{Kind: "cosim-wl", Name: "memset", Target: "TM3260", Engine: "interp"},
			"afee23ad4eb6690f8d749533"},
		{campaign.Unit{Kind: "mutant", Name: "blockwalk_pf", Target: "TM3270", Mutant: 24, MSeed: 3},
			"ac3417b92e57c059704147cb"},
	}
	for _, g := range golden {
		if got := g.u.Hash(); got != g.hash {
			t.Errorf("%s: hash %s, want golden %s", g.u, got, g.hash)
		}
	}
}

func openStore(t *testing.T, dir, shard, spec string) *campaign.Store {
	t.Helper()
	st, err := campaign.Open(dir, shard, spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestStoreRoundTrip: appended records come back on reopen, keyed by
// unit hash.
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	u := campaign.Unit{Kind: "cosim-gen", Seed: 1, Ops: 8}
	r := campaign.Result{Status: "ok", Instrs: 42}
	st := openStore(t, dir, "1of1", "spec-a")
	if err := st.Append(u, r); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Have(u.Hash()); !ok || got != r {
		t.Fatalf("Have after Append = %+v, %v", got, ok)
	}
	st.Close()

	re := openStore(t, dir, "1of1", "spec-a")
	if got, ok := re.Have(u.Hash()); !ok || got != r {
		t.Fatalf("Have after reopen = %+v, %v", got, ok)
	}
	if re.Corrupt() != 0 || re.Torn() != 0 {
		t.Errorf("clean store reports corrupt=%d torn=%d", re.Corrupt(), re.Torn())
	}
}

// TestStoreSpecBinding: a store directory is bound to one campaign
// fingerprint; opening it under another spec must fail rather than
// serve alien results.
func TestStoreSpecBinding(t *testing.T) {
	dir := t.TempDir()
	openStore(t, dir, "1of1", "spec-a").Close()
	if _, err := campaign.Open(dir, "1of1", "spec-b"); err == nil {
		t.Fatal("opening a spec-a store as spec-b succeeded")
	}
}

// TestStoreTornFinalLine: a SIGKILLed writer leaves an unterminated
// final line; open must drop exactly that record (counting it as torn,
// not corrupt) and keep everything before it.
func TestStoreTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "1of1", "s")
	keep := campaign.Unit{Kind: "k", Seed: 1}
	lost := campaign.Unit{Kind: "k", Seed: 2}
	if err := st.Append(keep, campaign.Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(lost, campaign.Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	path := filepath.Join(dir, "records-1of1.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: drop the terminator and the record's tail.
	if err := os.WriteFile(path, b[:len(b)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, "1of1", "s")
	if _, ok := re.Have(keep.Hash()); !ok {
		t.Error("record before the torn line was dropped")
	}
	if _, ok := re.Have(lost.Hash()); ok {
		t.Error("torn record was resurrected")
	}
	if re.Torn() != 1 || re.Corrupt() != 0 {
		t.Errorf("torn=%d corrupt=%d, want 1/0", re.Torn(), re.Corrupt())
	}
}

// TestStoreCorruptRecord: a flipped byte in an interior record fails
// the checksum; the record is dropped and counted corrupt while its
// neighbors survive.
func TestStoreCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "1of1", "s")
	units := []campaign.Unit{{Kind: "k", Seed: 1}, {Kind: "k", Seed: 2}, {Kind: "k", Seed: 3}}
	for _, u := range units {
		if err := st.Append(u, campaign.Result{Status: "ok", Instrs: u.Seed}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	path := filepath.Join(dir, "records-1of1.jsonl")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	// Flip a digit inside the middle record's instruction count.
	lines[1] = strings.Replace(lines[1], `"instrs":2`, `"instrs":9`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openStore(t, dir, "1of1", "s")
	if re.Corrupt() != 1 || re.Torn() != 0 {
		t.Errorf("corrupt=%d torn=%d, want 1/0", re.Corrupt(), re.Torn())
	}
	if _, ok := re.Have(units[1].Hash()); ok {
		t.Error("checksum-corrupt record served")
	}
	for _, u := range []campaign.Unit{units[0], units[2]} {
		if _, ok := re.Have(u.Hash()); !ok {
			t.Errorf("intact record %s dropped", u)
		}
	}
}

// TestManifestRoundTrip: shard manifests land atomically and read back
// sorted by shard label.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, shard := range []string{"2of2", "1of2"} {
		st := openStore(t, dir, shard, "s")
		if err := st.WriteManifest(campaign.Manifest{Units: 10, Executed: 4, Cached: 6}); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	ms, err := campaign.ReadManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Shard != "1of2" || ms[1].Shard != "2of2" {
		t.Fatalf("manifests = %+v", ms)
	}
	if ms[0].Spec != "s" || ms[0].Units != 10 {
		t.Errorf("manifest contents = %+v", ms[0])
	}
}

func marshalAgg(t *testing.T, a *campaign.Aggregate) []byte {
	t.Helper()
	b, err := a.MarshalJSONDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAggregateDeterministicBytes: two structurally equal aggregates
// render byte-identically (sorted map keys, stable field order).
func TestAggregateDeterministicBytes(t *testing.T) {
	mk := func() *campaign.Aggregate {
		return &campaign.Aggregate{
			Spec:  "s",
			Units: 3,
			ByStatus: map[string]int{
				"zeta": 1, "ok": 1, "alpha": 1,
			},
			Instrs: 99,
			Bad: []campaign.Finding{
				{Unit: campaign.Unit{Kind: "k", Seed: 2}, Result: campaign.Result{Status: "zeta", Bad: true}},
			},
		}
	}
	if a, b := marshalAgg(t, mk()), marshalAgg(t, mk()); !bytes.Equal(a, b) {
		t.Errorf("equal aggregates rendered differently:\n%s\nvs\n%s", a, b)
	}
}
