// Package campaign is the scale-out layer of the verification stack: a
// generic engine that models a campaign as a deterministic matrix of
// work units (program seed × target × engine × mutant × machine seed),
// content-addresses each unit, persists results to an append-only
// on-disk store, and fans units out across a bounded worker pool.
//
// The contract that makes campaigns resumable and shardable:
//
//   - A unit is a pure value. Its Hash is computed from the unit spec
//     alone, so the same campaign enumerates the same hashes on every
//     run, in every process.
//   - A unit's Result depends only on its spec (the runners are
//     deterministic simulations), so a stored result is as good as a
//     fresh one: a killed campaign resumes exactly where it stopped,
//     and re-running a finished campaign is a pure cache read.
//   - The aggregate is reduced in unit-matrix order from the result
//     map, never in store/arrival order, so the aggregate of a resumed,
//     sharded, or differently-parallel run is byte-identical to a
//     single-process run.
//
// Shards are independent processes over the same unit matrix: shard
// i/n owns the units whose index ≡ i-1 (mod n), appends results to its
// own record file in a shared store directory, and the merged store is
// simply the union of the record files — a final 1/1 pass over the
// matrix reads every unit from the store and emits the aggregate.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"tm3270/internal/telemetry"
)

// hashSalt versions the content-address scheme: changing the Unit
// encoding or result semantics must invalidate old stores.
const hashSalt = "tm3270-campaign/v1"

// Unit identifies one work unit of a campaign matrix. It is a pure
// value: every field participates in the content hash, and zero fields
// are omitted from the canonical encoding so extending the struct does
// not move the hashes of existing campaigns.
type Unit struct {
	// Kind names the unit runner: "cosim-wl", "cosim-gen", "mutant".
	Kind string `json:"kind"`
	// Name is the workload registry name (workload and mutant units).
	Name string `json:"name,omitempty"`
	// Seed is the program-generator seed (generated-program units).
	Seed int64 `json:"seed,omitempty"`
	// Ops is the generator's operation budget (generated-program units).
	Ops int `json:"ops,omitempty"`
	// Target is the processor configuration name.
	Target string `json:"target,omitempty"`
	// Engine is the pipeline model's execution engine.
	Engine string `json:"engine,omitempty"`
	// Mutant is the image-mutation seed (mutant units).
	Mutant int64 `json:"mutant,omitempty"`
	// MSeed is the machine seed perturbing initial register/memory
	// state (mutant units; 0 = the unperturbed baseline).
	MSeed int64 `json:"mseed,omitempty"`
	// Lockstep arms per-instruction intermediate-state diffing for this
	// unit (sample-gated cosim units).
	Lockstep bool `json:"lockstep,omitempty"`
}

// Hash is the unit's content address: a salted SHA-256 over the
// canonical JSON encoding, truncated to 24 hex digits. Struct-field
// order makes encoding/json deterministic, so the same spec always
// yields the same hash.
func (u Unit) Hash() string {
	b, err := json.Marshal(u)
	if err != nil {
		panic(fmt.Sprintf("campaign: unit not encodable: %v", err)) //tmvet:allow pure-value struct cannot fail to encode
	}
	sum := sha256.Sum256(append([]byte(hashSalt+"\x00"), b...))
	return hex.EncodeToString(sum[:12])
}

// String renders a compact human-readable unit key for reports.
func (u Unit) String() string {
	s := u.Kind
	if u.Name != "" {
		s += ":" + u.Name
	}
	if u.Seed != 0 {
		s += fmt.Sprintf(":seed%d", u.Seed)
	}
	if u.Mutant != 0 {
		s += fmt.Sprintf(":mut%d", u.Mutant)
	}
	s += fmt.Sprintf(":m%d", u.MSeed)
	if u.Target != "" {
		s += " on " + u.Target
	}
	return s
}

// Result is the outcome of one unit. Results are pure values too: the
// aggregate is a deterministic function of the (unit, result) pairs.
type Result struct {
	// Status classifies the outcome ("ok", "divergent", "skipped",
	// "rejected", "masked", "flagged", "detected", "silent", ...).
	// The set is campaign-specific; the engine only counts them.
	Status string `json:"status"`
	// Detail carries the divergence or detection description.
	Detail string `json:"detail,omitempty"`
	// Instrs is the number of instructions the unit retired.
	Instrs int64 `json:"instrs,omitempty"`
	// Bad marks results the aggregate lists individually (divergences,
	// silent mutants).
	Bad bool `json:"bad,omitempty"`
}

// Finding pairs a noteworthy unit with its result in the aggregate.
type Finding struct {
	Unit   Unit   `json:"unit"`
	Result Result `json:"result"`
}

// Aggregate is the deterministic reduction of a campaign: identical
// for a fresh, resumed, sharded-and-merged, or differently-parallel
// run of the same matrix. It deliberately excludes anything
// run-dependent (timing, cache hits, shard layout).
type Aggregate struct {
	// Spec is the campaign fingerprint the store was opened with.
	Spec string `json:"spec"`
	// Units is the number of units reduced (the covered matrix).
	Units int `json:"units"`
	// ByStatus counts results per status (sorted keys in JSON).
	ByStatus map[string]int `json:"by_status"`
	// Instrs sums retired instructions over all units.
	Instrs int64 `json:"instrs"`
	// Bad lists the flagged findings in unit-matrix order.
	Bad []Finding `json:"bad,omitempty"`
}

// MarshalJSONDeterministic renders the aggregate as stable indented
// JSON bytes: map keys are sorted by encoding/json and Bad preserves
// matrix order, so two equal aggregates are byte-identical.
func (a *Aggregate) MarshalJSONDeterministic() ([]byte, error) {
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Counters are the engine's campaign.* telemetry counters. A caller
// registers one instance once and may share it across campaign runs;
// the engine adds to it atomically.
type Counters struct {
	Total    int64 // units covered by this process's shard selection
	Executed int64 // units actually run (store misses)
	Cached   int64 // units satisfied from the store
	Bad      int64 // results with Bad set
	Corrupt  int64 // store records dropped at open (checksum/torn)
}

// Register wires the counters into a telemetry registry under the
// campaign.* names.
func (c *Counters) Register(r *telemetry.Registry) {
	r.Counter("campaign.units.total", &c.Total)
	r.Counter("campaign.units.executed", &c.Executed)
	r.Counter("campaign.units.cached", &c.Cached)
	r.Counter("campaign.units.bad", &c.Bad)
	r.Counter("campaign.store.corrupt", &c.Corrupt)
}
