package campaign

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tm3270/internal/runner"
)

// Shard selects the slice of the unit matrix this process owns: unit
// index i (0-based, over the full matrix) belongs to shard Index/Count
// when i ≡ Index-1 (mod Count). The zero value means "the whole
// matrix" (1/1).
type Shard struct {
	Index int // 1-based
	Count int
}

func (s Shard) fill() Shard {
	if s.Count <= 0 {
		return Shard{Index: 1, Count: 1}
	}
	return s
}

// Validate rejects malformed shard selectors.
func (s Shard) Validate() error {
	s = s.fill()
	if s.Index < 1 || s.Index > s.Count {
		return fmt.Errorf("campaign: shard %d/%d out of range", s.Index, s.Count)
	}
	return nil
}

func (s Shard) covers(i int) bool {
	s = s.fill()
	return i%s.Count == s.Index-1
}

// String renders "i/n".
func (s Shard) String() string {
	s = s.fill()
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Label is the shard's store file label ("1of4").
func (s Shard) Label() string {
	s = s.fill()
	return fmt.Sprintf("%dof%d", s.Index, s.Count)
}

// Config parameterizes one engine run.
type Config struct {
	// Workers bounds the worker pool (<=0 = GOMAXPROCS).
	Workers int
	// Store persists results (nil = in-memory only: the run is still
	// deterministic, just not resumable).
	Store *Store
	// Shard selects this process's slice of the matrix (zero = all).
	Shard Shard
	// Counters receives campaign.* telemetry (optional).
	Counters *Counters
	// Progress, when non-nil, is called under the engine lock after
	// each unit completes (cached or executed) with running totals.
	Progress func(done, total, cached int)
	// Reduce, when non-nil, is called once per covered unit in
	// unit-matrix order after the run completes — the deterministic
	// reduction hook campaign owners build their reports from.
	Reduce func(i int, u Unit, r Result)
}

// Stats describes one engine run (run-dependent, excluded from the
// aggregate by design).
type Stats struct {
	Total    int // covered units
	Executed int
	Cached   int
	Bad      int
}

// Outcome pairs the deterministic aggregate with the run's stats.
type Outcome struct {
	Aggregate *Aggregate
	Stats     Stats
}

// Run executes the covered slice of the unit matrix: store hits are
// reused, misses fan out across the worker pool, every fresh result is
// appended to the store before it counts as done, and the aggregate is
// reduced in matrix order. A unit-runner error aborts the whole run
// (harness failure, not a finding); the store keeps the completed
// units, so the campaign resumes after the cause is fixed.
func Run(ctx context.Context, cfg Config, units []Unit, fn func(context.Context, Unit) (Result, error)) (*Outcome, error) {
	if err := cfg.Shard.Validate(); err != nil {
		return nil, err
	}
	hashes := make([]string, len(units))
	seen := make(map[string]int, len(units))
	for i, u := range units {
		hashes[i] = u.Hash()
		if j, dup := seen[hashes[i]]; dup {
			return nil, fmt.Errorf("campaign: units %d and %d share hash %s (%s)", j, i, hashes[i], u)
		}
		seen[hashes[i]] = i
	}

	spec := ""
	if cfg.Store != nil {
		spec = cfg.Store.spec
		if cfg.Counters != nil {
			atomic.AddInt64(&cfg.Counters.Corrupt, int64(cfg.Store.Corrupt()))
		}
	}

	results := make([]Result, len(units))
	covered := make([]bool, len(units))
	stats := Stats{}
	var pending []int
	for i := range units {
		if !cfg.Shard.covers(i) {
			continue
		}
		covered[i] = true
		stats.Total++
		if cfg.Store != nil {
			if r, ok := cfg.Store.Have(hashes[i]); ok {
				results[i] = r
				stats.Cached++
				continue
			}
		}
		pending = append(pending, i)
	}
	if cfg.Counters != nil {
		atomic.AddInt64(&cfg.Counters.Total, int64(stats.Total))
		atomic.AddInt64(&cfg.Counters.Cached, int64(stats.Cached))
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		done     = stats.Cached
	)
	if cfg.Progress != nil && stats.Cached > 0 {
		cfg.Progress(done, stats.Total, stats.Cached)
	}
	pool := runner.NewPool(cfg.Workers, 0)
	for _, i := range pending {
		i := i
		wg.Add(1)
		err := pool.Submit(runCtx, func() {
			defer wg.Done()
			r, err := fn(runCtx, units[i])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("campaign: unit %s: %w", units[i], err)
					cancel()
				}
				return
			}
			if cfg.Store != nil {
				if aerr := cfg.Store.Append(units[i], r); aerr != nil && firstErr == nil {
					firstErr = aerr
					cancel()
					return
				}
			}
			results[i] = r
			done++
			stats.Executed++
			if cfg.Counters != nil {
				atomic.AddInt64(&cfg.Counters.Executed, 1)
			}
			if cfg.Progress != nil {
				cfg.Progress(done, stats.Total, stats.Cached)
			}
		})
		if err != nil {
			// Submission stopped: the context is done (a worker failed or
			// the caller canceled). The submitted units still drain.
			wg.Done()
			break
		}
	}
	wg.Wait()
	pool.Close()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		return nil, err
	}

	agg := &Aggregate{Spec: spec, ByStatus: map[string]int{}}
	for i := range units {
		if !covered[i] {
			continue
		}
		r := results[i]
		agg.Units++
		agg.ByStatus[r.Status]++
		agg.Instrs += r.Instrs
		if r.Bad {
			agg.Bad = append(agg.Bad, Finding{Unit: units[i], Result: r})
			stats.Bad++
		}
		if cfg.Reduce != nil {
			cfg.Reduce(i, units[i], r)
		}
	}
	if cfg.Counters != nil {
		atomic.AddInt64(&cfg.Counters.Bad, int64(stats.Bad))
	}
	if cfg.Store != nil {
		if err := cfg.Store.WriteManifest(Manifest{
			Units: stats.Total, Executed: stats.Executed,
			Cached: stats.Cached, Bad: stats.Bad,
		}); err != nil {
			return nil, err
		}
	}
	return &Outcome{Aggregate: agg, Stats: stats}, nil
}
