package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"tm3270/internal/campaign"
)

// testUnits builds a small deterministic matrix.
func testUnits(n int) []campaign.Unit {
	units := make([]campaign.Unit, n)
	for i := range units {
		units[i] = campaign.Unit{Kind: "t", Seed: int64(i + 1)}
	}
	return units
}

// runFn is a deterministic unit function: status derives from the
// seed, every third unit is bad.
func runFn(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
	r := campaign.Result{Status: fmt.Sprintf("s%d", u.Seed%2), Instrs: u.Seed * 10}
	if u.Seed%3 == 0 {
		r.Bad = true
	}
	return r, nil
}

// TestShardCovers: the shard selectors partition the matrix — every
// index covered exactly once across the shard set.
func TestShardCovers(t *testing.T) {
	units := testUnits(11)
	seen := make([]int, len(units))
	for idx := 1; idx <= 3; idx++ {
		sh := campaign.Shard{Index: idx, Count: 3}
		out, err := campaign.Run(context.Background(), campaign.Config{Shard: sh}, units, runFn)
		if err != nil {
			t.Fatal(err)
		}
		if out.Stats.Total == 0 {
			t.Errorf("shard %s covered nothing", sh)
		}
		got := 0
		_, err = campaign.Run(context.Background(), campaign.Config{
			Shard: sh,
			Reduce: func(i int, u campaign.Unit, r campaign.Result) {
				seen[i]++
				got++
			},
		}, units, runFn)
		if err != nil {
			t.Fatal(err)
		}
		if got != out.Stats.Total {
			t.Errorf("shard %s reduced %d units, stats say %d", sh, got, out.Stats.Total)
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("unit %d covered %d times across shards", i, n)
		}
	}
	if err := (campaign.Shard{Index: 4, Count: 3}).Validate(); err == nil {
		t.Error("shard 4/3 validated")
	}
	if got := (campaign.Shard{}).Label(); got != "1of1" {
		t.Errorf("zero shard label %q", got)
	}
}

// TestEngineResume: a store-backed run resumes as a pure cache read
// with a byte-identical aggregate, and partial stores re-run only the
// missing units.
func TestEngineResume(t *testing.T) {
	units := testUnits(10)
	dir := t.TempDir()

	st := openStore(t, dir, "1of1", "s")
	var c campaign.Counters
	out1, err := campaign.Run(context.Background(), campaign.Config{Store: st, Counters: &c}, units, runFn)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if out1.Stats.Executed != len(units) || out1.Stats.Cached != 0 {
		t.Fatalf("fresh run stats %+v", out1.Stats)
	}
	if got := atomic.LoadInt64(&c.Executed); got != int64(len(units)) {
		t.Errorf("counter executed %d, want %d", got, len(units))
	}

	re := openStore(t, dir, "1of1", "s")
	var executed int64
	out2, err := campaign.Run(context.Background(), campaign.Config{Store: re},
		units, func(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
			atomic.AddInt64(&executed, 1)
			return runFn(ctx, u)
		})
	if err != nil {
		t.Fatal(err)
	}
	if executed != 0 || out2.Stats.Cached != len(units) {
		t.Fatalf("resume executed %d units, stats %+v", executed, out2.Stats)
	}
	a, b := marshalAgg(t, out1.Aggregate), marshalAgg(t, out2.Aggregate)
	if !bytes.Equal(a, b) {
		t.Errorf("resumed aggregate differs:\n%s\nvs\n%s", a, b)
	}
}

// TestEngineShardMerge: shards run as separate store sessions; the
// final full pass over the merged store is a pure cache read whose
// aggregate is byte-identical to an unsharded in-memory run.
func TestEngineShardMerge(t *testing.T) {
	units := testUnits(13)
	refStore := openStore(t, t.TempDir(), "1of1", "s")
	ref, err := campaign.Run(context.Background(), campaign.Config{Store: refStore}, units, runFn)
	if err != nil {
		t.Fatal(err)
	}
	refStore.Close()

	dir := t.TempDir()
	for idx := 1; idx <= 3; idx++ {
		sh := campaign.Shard{Index: idx, Count: 3}
		st := openStore(t, dir, sh.Label(), "s")
		if _, err := campaign.Run(context.Background(), campaign.Config{Store: st, Shard: sh}, units, runFn); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
	ms, err := campaign.ReadManifests(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("%d manifests, want 3", len(ms))
	}

	merged := openStore(t, dir, "1of1", "s")
	out, err := campaign.Run(context.Background(), campaign.Config{Store: merged},
		units, func(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
			return campaign.Result{}, errors.New("merge pass must not execute")
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Cached != len(units) {
		t.Fatalf("merge pass cached %d of %d", out.Stats.Cached, len(units))
	}
	a, b := marshalAgg(t, ref.Aggregate), marshalAgg(t, out.Aggregate)
	if !bytes.Equal(a, b) {
		t.Errorf("sharded+merged aggregate differs from unsharded:\n%s\nvs\n%s", a, b)
	}
}

// TestEngineUnitErrorAborts: a unit error fails the run but the store
// keeps every completed unit, so a rerun resumes instead of starting
// over.
func TestEngineUnitErrorAborts(t *testing.T) {
	units := testUnits(8)
	dir := t.TempDir()
	st := openStore(t, dir, "1of1", "s")
	_, err := campaign.Run(context.Background(), campaign.Config{Store: st, Workers: 1},
		units, func(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
			if u.Seed == 5 {
				return campaign.Result{}, errors.New("boom")
			}
			return runFn(ctx, u)
		})
	if err == nil {
		t.Fatal("unit error did not abort the run")
	}
	st.Close()

	re := openStore(t, dir, "1of1", "s")
	if re.Len() == 0 {
		t.Fatal("aborted run persisted nothing")
	}
	out, err := campaign.Run(context.Background(), campaign.Config{Store: re}, units, runFn)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Cached == 0 || out.Stats.Cached+out.Stats.Executed != len(units) {
		t.Errorf("rerun stats %+v", out.Stats)
	}
}

// TestEngineDuplicateHash: two identical unit specs in one matrix are
// a caller bug the engine must reject, not silently collapse.
func TestEngineDuplicateHash(t *testing.T) {
	units := []campaign.Unit{{Kind: "t", Seed: 1}, {Kind: "t", Seed: 1}}
	if _, err := campaign.Run(context.Background(), campaign.Config{}, units, runFn); err == nil {
		t.Fatal("duplicate unit hashes accepted")
	}
}

// TestEngineCancel: canceling the context aborts the run with the
// context's error.
func TestEngineCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	units := testUnits(50)
	n := int64(0)
	_, err := campaign.Run(ctx, campaign.Config{Workers: 1},
		units, func(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
			if atomic.AddInt64(&n, 1) == 3 {
				cancel()
			}
			return runFn(ctx, u)
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEngineProgress: the progress hook sees monotone done counts and
// ends at the covered total.
func TestEngineProgress(t *testing.T) {
	units := testUnits(9)
	lastDone, calls := -1, 0
	_, err := campaign.Run(context.Background(), campaign.Config{
		Workers: 1,
		Progress: func(done, total, cached int) {
			calls++
			if done <= lastDone || total != len(units) {
				t.Errorf("progress done=%d (last %d) total=%d", done, lastDone, total)
			}
			lastDone = done
		},
	}, units, runFn)
	if err != nil {
		t.Fatal(err)
	}
	if lastDone != len(units) || calls == 0 {
		t.Errorf("progress ended at %d after %d calls", lastDone, calls)
	}
}
