package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is the on-disk result store of a campaign: an append-only set
// of checksummed JSONL record files in one directory, plus a spec
// header binding the directory to a single campaign fingerprint and
// per-shard manifests marking clean completion.
//
// Layout:
//
//	<dir>/campaign.json        spec header (atomic, written once)
//	<dir>/records-<shard>.jsonl  one append-only file per shard process
//	<dir>/manifest-<shard>.json  atomic completion marker per shard
//
// Concurrent shard processes never write the same file, so the merged
// store is the plain union of the record files. A SIGKILLed shard may
// leave a torn final line in its record file; Open drops it (and any
// checksum-corrupt record) so the unit re-runs instead of resuming
// from damaged state.
type Store struct {
	dir   string
	shard string
	spec  string

	mu      sync.Mutex
	f       *os.File
	have    map[string]Result
	loaded  int
	corrupt int
	torn    int
}

// record is one stored (unit, result) pair. The checksum c covers the
// hash and the canonical encodings of unit and result, so a flipped
// byte anywhere in the line fails validation.
type record struct {
	H string `json:"h"`
	U Unit   `json:"u"`
	R Result `json:"r"`
	C string `json:"c"`
}

func checksum(h string, u Unit, r Result) string {
	ub, _ := json.Marshal(u)
	rb, _ := json.Marshal(r)
	sum := sha256.Sum256([]byte(h + "|" + string(ub) + "|" + string(rb)))
	return hex.EncodeToString(sum[:8])
}

// header is the spec file binding a store directory to one campaign.
type header struct {
	Salt string `json:"salt"`
	Spec string `json:"spec"`
}

// Open opens (creating if needed) the store directory for a campaign
// with the given spec fingerprint, loads every valid record from every
// shard's file, and prepares the append file for this process's shard
// label. Opening a directory whose header names a different spec is an
// error: result records are only reusable within one campaign.
func Open(dir, shard, spec string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: store: %w", err)
	}
	s := &Store{dir: dir, shard: shard, spec: spec, have: make(map[string]Result)}
	if err := s.bindSpec(); err != nil {
		return nil, err
	}
	if err := s.loadAll(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.recordPath(shard), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: store: %w", err)
	}
	s.f = f
	return s, nil
}

func (s *Store) recordPath(shard string) string {
	return filepath.Join(s.dir, "records-"+shard+".jsonl")
}

// bindSpec writes the spec header atomically on first open and
// verifies it on every later open.
func (s *Store) bindSpec() error {
	path := filepath.Join(s.dir, "campaign.json")
	if b, err := os.ReadFile(path); err == nil {
		var h header
		if err := json.Unmarshal(b, &h); err != nil {
			return fmt.Errorf("campaign: store header %s is corrupt: %w", path, err)
		}
		if h.Salt != hashSalt || h.Spec != s.spec {
			return fmt.Errorf("campaign: store %s holds a different campaign (spec %q, want %q)",
				s.dir, h.Spec, s.spec)
		}
		return nil
	}
	b, err := json.Marshal(header{Salt: hashSalt, Spec: s.spec})
	if err != nil {
		return err
	}
	return atomicWrite(path, append(b, '\n'))
}

// atomicWrite lands bytes at path via a unique temp file and rename, so
// readers never observe a partial file.
func atomicWrite(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadAll reads every shard's record file, keeping valid records and
// counting corrupt and torn ones.
func (s *Store) loadAll() error {
	files, err := filepath.Glob(filepath.Join(s.dir, "records-*.jsonl"))
	if err != nil {
		return err
	}
	sort.Strings(files)
	for _, path := range files {
		if err := s.loadFile(path); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) loadFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("campaign: store: %w", err)
	}
	for len(b) > 0 {
		nl := -1
		for i, c := range b {
			if c == '\n' {
				nl = i
				break
			}
		}
		line := b
		terminated := nl >= 0
		if terminated {
			line = b[:nl]
			b = b[nl+1:]
		} else {
			b = nil
		}
		if len(strings.TrimSpace(string(line))) == 0 {
			continue
		}
		var rec record
		ok := json.Unmarshal(line, &rec) == nil &&
			rec.H == rec.U.Hash() &&
			rec.C == checksum(rec.H, rec.U, rec.R)
		switch {
		case ok:
			s.have[rec.H] = rec.R
			s.loaded++
		case !terminated:
			// A torn final line is the expected residue of a killed
			// shard: the unit simply re-runs.
			s.torn++
		default:
			s.corrupt++
		}
	}
	return nil
}

// Have returns the stored result for a unit hash.
func (s *Store) Have(hash string) (Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.have[hash]
	return r, ok
}

// Len is the number of valid records loaded plus appended.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.have)
}

// Corrupt is the number of records dropped at open for failing their
// checksum (torn final lines are counted separately by Torn).
func (s *Store) Corrupt() int { return s.corrupt }

// Torn is the number of unterminated final lines dropped at open — the
// residue of a killed writer.
func (s *Store) Torn() int { return s.torn }

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Append durably records one completed unit. Each record is one
// write() of one newline-terminated line, so concurrent appends from
// this process interleave at record granularity and a killed process
// loses at most the final, torn line.
func (s *Store) Append(u Unit, r Result) error {
	h := u.Hash()
	rec := record{H: h, U: u, R: r, C: checksum(h, u, r)}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(b); err != nil {
		return fmt.Errorf("campaign: store append: %w", err)
	}
	s.have[h] = r
	return nil
}

// Close closes the append file. The store stays readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Manifest marks one shard's clean completion: the engine writes it
// atomically after every covered unit has a stored result.
type Manifest struct {
	Shard    string `json:"shard"`
	Spec     string `json:"spec"`
	Units    int    `json:"units"`    // units covered by the shard
	Executed int    `json:"executed"` // run this invocation
	Cached   int    `json:"cached"`   // satisfied from the store
	Bad      int    `json:"bad"`
}

// WriteManifest atomically records this shard's completion.
func (s *Store) WriteManifest(m Manifest) error {
	m.Shard, m.Spec = s.shard, s.spec
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(s.dir, "manifest-"+s.shard+".json"), append(b, '\n'))
}

// ReadManifests loads every shard manifest in a store directory,
// sorted by shard label.
func ReadManifests(dir string) ([]Manifest, error) {
	files, err := filepath.Glob(filepath.Join(dir, "manifest-*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	var out []Manifest
	for _, path := range files {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("campaign: manifest %s: %w", path, err)
		}
		out = append(out, m)
	}
	return out, nil
}
