package cosim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"tm3270/internal/campaign"
	"tm3270/internal/config"
	"tm3270/internal/workloads"
)

// Unit kinds of the conformance campaign matrix.
const (
	KindWorkload  = "cosim-wl"  // one shipped workload on one target
	KindGenerated = "cosim-gen" // one generated program on one target
)

// Status values recorded for cosim units. Divergent units carry the
// divergence kind in the status ("divergent:reg", "divergent:trap",
// "divergent:lockstep-reg", ...), so a campaign aggregate breaks
// divergences down by kind for free.
const (
	StatusOK        = "ok"
	StatusSkipped   = "skipped"
	statusDivergent = "divergent:" // prefix
)

// CampaignConfig scales a conformance campaign.
type CampaignConfig struct {
	// Params sizes the shipped workloads (nil = workloads.Small()).
	Params *workloads.Params
	// Seeds is the number of generated programs per target (default 500).
	Seeds int
	// GenOps is the operation budget per generated program (default 64).
	GenOps int
	// Targets defaults to the paper's A–D configurations.
	Targets []config.Target
	// Opts applies to every run.
	Opts Options
	// LockstepEvery sample-gates intermediate-state diffing: every Nth
	// generated unit runs with the per-instruction register diff armed
	// (see Options.Lockstep). 0 selects the default of every 16th
	// unit; negative disables sampling.
	LockstepEvery int
	// Workers bounds the worker pool (<=0 = GOMAXPROCS).
	Workers int
	// Store persists unit results for resume and sharding (optional).
	Store *campaign.Store
	// Shard selects this process's slice of the matrix (zero = all).
	Shard campaign.Shard
	// Counters receives campaign.* telemetry (optional).
	Counters *campaign.Counters
	// Progress is forwarded to the engine (optional).
	Progress func(done, total, cached int)
}

func (c *CampaignConfig) fill() {
	if c.Params == nil {
		p := workloads.Small()
		c.Params = &p
	}
	if c.Seeds == 0 {
		c.Seeds = 500
	}
	if c.GenOps == 0 {
		c.GenOps = 64
	}
	if len(c.Targets) == 0 {
		c.Targets = []config.Target{
			config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
		}
	}
	if c.LockstepEvery == 0 {
		c.LockstepEvery = 16
	}
}

// Spec is the campaign fingerprint a store directory is bound to: the
// knobs that change unit results without appearing in the unit specs
// themselves. Seeds and targets are deliberately excluded — growing a
// stored campaign to more programs or targets reuses every completed
// unit.
func (c *CampaignConfig) Spec() string {
	c.fill()
	ph := sha256.Sum256([]byte(fmt.Sprintf("%+v", *c.Params)))
	return fmt.Sprintf("cosim params=%s strict=%v", hex.EncodeToString(ph[:6]), c.Opts.StrictMem)
}

// UnitMatrix enumerates the campaign's deterministic work-unit matrix:
// every shipped workload on every target, then Seeds generated
// programs per target, with every LockstepEvery'th generated unit
// sample-gated into lockstep mode.
func (c *CampaignConfig) UnitMatrix() []campaign.Unit {
	c.fill()
	eng := c.Opts.Engine.String()
	var units []campaign.Unit
	for _, name := range workloads.Names() {
		for i := range c.Targets {
			units = append(units, campaign.Unit{
				Kind: KindWorkload, Name: name, Target: c.Targets[i].Name, Engine: eng,
			})
		}
	}
	n := 0
	for seed := int64(1); seed <= int64(c.Seeds); seed++ {
		for i := range c.Targets {
			u := campaign.Unit{
				Kind: KindGenerated, Seed: seed, Ops: c.GenOps,
				Target: c.Targets[i].Name, Engine: eng,
			}
			if c.LockstepEvery > 0 && n%c.LockstepEvery == 0 {
				u.Lockstep = true
			}
			n++
			units = append(units, u)
		}
	}
	return units
}

// unitRunner executes campaign units; its target map is immutable
// after construction, so Run is safe for concurrent workers.
type unitRunner struct {
	cfg     *CampaignConfig
	targets map[string]*config.Target
}

func newUnitRunner(cfg *CampaignConfig) *unitRunner {
	r := &unitRunner{cfg: cfg, targets: make(map[string]*config.Target, len(cfg.Targets))}
	for i := range cfg.Targets {
		r.targets[cfg.Targets[i].Name] = &cfg.Targets[i]
	}
	return r
}

// Run executes one unit. The context is accepted for interface
// symmetry; individual runs are short and bounded by the models'
// watchdogs, so cancellation takes effect between units.
func (r *unitRunner) Run(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
	t, ok := r.targets[u.Target]
	if !ok {
		return campaign.Result{}, fmt.Errorf("unknown target %q", u.Target)
	}
	opts := r.cfg.Opts
	opts.Lockstep = u.Lockstep
	var res *Result
	var err error
	switch u.Kind {
	case KindWorkload:
		var w *workloads.Spec
		w, err = workloads.ByName(u.Name, *r.cfg.Params)
		if err == nil {
			res, err = RunWorkload(w, *t, opts)
		}
	case KindGenerated:
		res, err = RunGenerated(u.Seed, *t, u.Ops, opts)
	default:
		err = fmt.Errorf("unknown unit kind %q", u.Kind)
	}
	if err != nil {
		return campaign.Result{}, err
	}
	if res == nil {
		return campaign.Result{Status: StatusSkipped}, nil
	}
	return storedResult(res), nil
}

// storedResult flattens a cosim result into the campaign record form.
// The divergence kind rides in the status and the detail keeps the
// full rendered context, so fromStored reconstructs the exact report
// line.
func storedResult(res *Result) campaign.Result {
	out := campaign.Result{Status: StatusOK, Instrs: res.Instrs}
	if res.Div != nil {
		out.Status = statusDivergent + res.Div.Kind
		out.Detail = strings.TrimPrefix(res.Div.String(), res.Div.Kind+": ")
		out.Bad = true
	}
	return out
}

// fromStored rebuilds a reportable divergent Result from its campaign
// record.
func fromStored(u campaign.Unit, r campaign.Result) *Result {
	name := u.Name
	if u.Kind == KindGenerated {
		name = fmt.Sprintf("gen%d", u.Seed)
	}
	return &Result{Name: name, Target: u.Target, Instrs: r.Instrs,
		Div: &Divergence{Kind: strings.TrimPrefix(r.Status, statusDivergent), Detail: r.Detail}}
}

// Campaign aggregates a conformance sweep: every shipped workload and
// Seeds generated programs, co-simulated on every target.
type Campaign struct {
	Workloads int   // workload/target pairs co-simulated (schedule skips excluded)
	Skipped   int   // workload/target pairs the target cannot schedule
	Generated int   // generated program runs
	Lockstep  int   // units that ran with intermediate-state diffing armed
	Instrs    int64 // total instructions retired by the pipeline model
	Divergent []*Result

	// Aggregate is the engine's deterministic reduction (the artifact
	// sharded campaigns byte-compare); Stats the run-dependent totals.
	Aggregate *campaign.Aggregate
	Stats     campaign.Stats
}

// RunCampaign executes the sweep on the campaign engine. Divergences
// are collected, not returned as errors; harness failures (compile
// errors, init failures) abort immediately.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign with cooperative cancellation: a
// canceled campaign stops dispatching units and returns the context's
// error, leaving any store resumable.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*Campaign, error) {
	cfg.fill()
	units := cfg.UnitMatrix()
	r := newUnitRunner(&cfg)
	out := &Campaign{}
	o, err := campaign.Run(ctx, campaign.Config{
		Workers:  cfg.Workers,
		Store:    cfg.Store,
		Shard:    cfg.Shard,
		Counters: cfg.Counters,
		Progress: cfg.Progress,
		Reduce: func(i int, u campaign.Unit, res campaign.Result) {
			switch {
			case res.Status == StatusSkipped:
				out.Skipped++
			case u.Kind == KindWorkload:
				out.Workloads++
			default:
				out.Generated++
			}
			if u.Lockstep {
				out.Lockstep++
			}
			out.Instrs += res.Instrs
			if res.Bad {
				out.Divergent = append(out.Divergent, fromStored(u, res))
			}
		},
	}, units, r.Run)
	if err != nil {
		return nil, err
	}
	out.Aggregate = o.Aggregate
	out.Stats = o.Stats
	return out, nil
}

// PrintSummary writes the campaign outcome in the bench tool's format.
func (c *Campaign) PrintSummary(w io.Writer) {
	fmt.Fprintf(w, "cosim: %d workload runs (%d skipped), %d generated runs (%d in lockstep), %d instructions\n",
		c.Workloads, c.Skipped, c.Generated, c.Lockstep, c.Instrs)
	if len(c.Divergent) == 0 {
		fmt.Fprintf(w, "cosim: zero divergences\n")
		return
	}
	fmt.Fprintf(w, "cosim: %d DIVERGENT runs:\n", len(c.Divergent))
	for _, r := range c.Divergent {
		fmt.Fprintf(w, "  %s on %s: %s\n", r.Name, r.Target, r.Div)
	}
}
