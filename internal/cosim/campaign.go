package cosim

import (
	"fmt"
	"io"

	"tm3270/internal/config"
	"tm3270/internal/workloads"
)

// CampaignConfig scales a conformance campaign.
type CampaignConfig struct {
	// Params sizes the shipped workloads (nil = workloads.Small()).
	Params *workloads.Params
	// Seeds is the number of generated programs per target (default 500).
	Seeds int
	// GenOps is the operation budget per generated program (default 64).
	GenOps int
	// Targets defaults to the paper's A–D configurations.
	Targets []config.Target
	// Opts applies to every run.
	Opts Options
}

func (c *CampaignConfig) fill() {
	if c.Params == nil {
		p := workloads.Small()
		c.Params = &p
	}
	if c.Seeds == 0 {
		c.Seeds = 500
	}
	if c.GenOps == 0 {
		c.GenOps = 64
	}
	if len(c.Targets) == 0 {
		c.Targets = []config.Target{
			config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
		}
	}
}

// Campaign aggregates a conformance sweep: every shipped workload and
// Seeds generated programs, co-simulated on every target.
type Campaign struct {
	Workloads int   // workload/target pairs co-simulated (schedule skips excluded)
	Skipped   int   // workload/target pairs the target cannot schedule
	Generated int   // generated program runs
	Instrs    int64 // total instructions retired by the pipeline model
	Divergent []*Result
}

// RunCampaign executes the sweep. Divergences are collected, not
// returned as errors; harness failures (compile errors, init failures)
// abort immediately.
func RunCampaign(cfg CampaignConfig) (*Campaign, error) {
	cfg.fill()
	out := &Campaign{}
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, *cfg.Params)
		if err != nil {
			return nil, err
		}
		for i := range cfg.Targets {
			res, err := RunWorkload(w, cfg.Targets[i], cfg.Opts)
			if err != nil {
				return nil, err
			}
			if res == nil {
				out.Skipped++
				continue
			}
			out.Workloads++
			out.Instrs += res.Instrs
			if res.Div != nil {
				out.Divergent = append(out.Divergent, res)
			}
		}
	}
	for seed := int64(1); seed <= int64(cfg.Seeds); seed++ {
		for i := range cfg.Targets {
			res, err := RunGenerated(seed, cfg.Targets[i], cfg.GenOps, cfg.Opts)
			if err != nil {
				return nil, err
			}
			out.Generated++
			out.Instrs += res.Instrs
			if res.Div != nil {
				out.Divergent = append(out.Divergent, res)
			}
		}
	}
	return out, nil
}

// PrintSummary writes the campaign outcome in the bench tool's format.
func (c *Campaign) PrintSummary(w io.Writer) {
	fmt.Fprintf(w, "cosim: %d workload runs (%d skipped), %d generated runs, %d instructions\n",
		c.Workloads, c.Skipped, c.Generated, c.Instrs)
	if len(c.Divergent) == 0 {
		fmt.Fprintf(w, "cosim: zero divergences\n")
		return
	}
	fmt.Fprintf(w, "cosim: %d DIVERGENT runs:\n", len(c.Divergent))
	for _, r := range c.Divergent {
		fmt.Fprintf(w, "  %s on %s: %s\n", r.Name, r.Target, r.Div)
	}
}
