// Package cosim is the differential conformance harness: it runs the
// same encoded binary through the cycle-level pipeline model (tmsim)
// and the unpipelined architectural reference model (refmodel) and
// diffs the architecturally visible outcome — trap, retired
// instruction count, final register file, final memory image and the
// prefetch MMIO bank. On a mismatch it reruns both models in lockstep
// to pin the first-divergent instruction with PC and cycle context.
//
// Inputs come from two sources: every shipped workload (real kernels
// with memory images and self-checks) and the seeded random legal
// programs of internal/progen (ISA-wide coverage the kernels don't
// reach). A campaign sweeps both across all four A–D targets.
package cosim

import (
	"context"
	"errors"
	"fmt"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/progen"
	"tm3270/internal/refmodel"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Options tunes one co-simulated run.
type Options struct {
	// MaxInstrs bounds both models (0 = the models' default watchdog).
	MaxInstrs int64
	// NoLockstep skips the lockstep rerun after a final-state mismatch
	// (the campaign uses it to keep bulk sweeps cheap; divergences are
	// re-examined individually).
	NoLockstep bool
	// StrictMem arms strict memory in both models: the pipeline model's
	// per-byte write-validity trap (TrapUnmappedLoad) and the reference
	// model's TrapUndefinedRead, which canonTrap maps onto the same
	// name — so the run agrees exactly when both models trap the same
	// way, or neither does.
	StrictMem bool
	// Engine selects the pipeline model's execution engine (the zero
	// value is the blockcache fast path), making the harness double as
	// the fast-vs-interp equivalence gate: a blockcache sweep holds the
	// fast path to the same independent oracle the interpreter already
	// conforms to — including the lockstep rerun, which rides the
	// fast path's InstrHook support.
	Engine tmsim.Engine
	// Lockstep diffs intermediate state in the bulk pass itself: the
	// run executes once with the per-instruction hook armed, checking
	// the full register file at every instruction boundary and the
	// final state afterwards. It catches transient divergences that
	// cancel out before the end of the program, at roughly the cost of
	// the hook per instruction — campaigns sample-gate it.
	Lockstep bool
}

// Divergence describes the first observed disagreement between the two
// models.
type Divergence struct {
	// Kind: "trap", "instrs", "reg", "mem", "mmio" from the final-state
	// diff; "lockstep-flow" or "lockstep-reg" when the lockstep rerun
	// localized the first divergent instruction boundary.
	Kind   string
	Detail string
	Issue  int64  // instruction boundary (lockstep kinds)
	Cycle  int64  // pipeline-model cycle at the boundary (lockstep kinds)
	PC     uint32 // instruction byte address (lockstep kinds)
}

func (d *Divergence) String() string {
	s := d.Kind + ": " + d.Detail
	if (d.Kind == "lockstep-flow" || d.Kind == "lockstep-reg") &&
		(d.Issue != 0 || d.Cycle != 0 || d.PC != 0) {
		s += fmt.Sprintf(" (issue %d, cycle %d, pc %#x)", d.Issue, d.Cycle, d.PC)
	}
	return s
}

// Result is the outcome of one co-simulated program.
type Result struct {
	Name   string
	Target string
	Instrs int64 // instructions retired by the pipeline model
	Div    *Divergence
}

// canonTrap maps both models' trap taxonomies onto shared names so that
// "both models rejected the program for the same reason" counts as
// agreement.
func canonTrap(simErr error, refTrap *refmodel.Trap) (string, string, bool) {
	sim := "none"
	if simErr != nil {
		var te *tmsim.TrapError
		if errors.As(simErr, &te) {
			switch te.Kind {
			case tmsim.TrapMMIO:
				sim = "mmio"
			case tmsim.TrapUnknownLabel:
				sim = "bad-jump-target"
			case tmsim.TrapUnmappedLoad:
				sim = "strict-load"
			case tmsim.TrapUnmappedStore:
				sim = "null-store"
			default:
				sim = te.Kind.String()
			}
		} else {
			sim = "error: " + simErr.Error()
		}
	}
	ref := "none"
	if refTrap != nil {
		switch refTrap.Kind {
		case refmodel.TrapUndefinedRead:
			ref = "strict-load"
		default:
			ref = refTrap.Kind.String()
		}
	}
	return sim, ref, sim == ref
}

// copyImage seeds the reference model's memory with the pipeline
// model's initial image, preserving per-byte write validity: only
// bytes the init actually wrote become defined, so both models' strict
// modes see an identical validity map.
func copyImage(f *mem.Func) *refmodel.Mem {
	m := refmodel.NewMem()
	for _, pa := range f.PageAddrs() {
		for i := uint32(0); i < 1<<12; i++ {
			if f.Defined(pa+i, 1) {
				m.SetByte(pa+i, f.ByteAt(pa+i))
			}
		}
	}
	return m
}

// copyFunc clones an initial image into a fresh mem.Func, preserving
// per-byte write validity (a whole-page WriteBytes copy would mark
// every byte defined and mask strict-mode divergences).
func copyFunc(src *mem.Func) *mem.Func {
	dst := mem.NewFunc()
	for _, pa := range src.PageAddrs() {
		for i := uint32(0); i < 1<<12; i++ {
			if src.Defined(pa+i, 1) {
				dst.SetByte(pa+i, src.ByteAt(pa+i))
			}
		}
	}
	return dst
}

// run is one fully-prepared co-simulation: compiled artifact, initial
// image and entry arguments.
type run struct {
	name string
	art  *runner.Artifact
	t    config.Target
	init *mem.Func // initial image (nil = empty)
	args map[isa.Reg]uint32
}

func (r *run) newSim() *tmsim.Machine {
	var image *mem.Func
	if r.init != nil {
		image = copyFunc(r.init)
	}
	return runner.Load(r.art, image).Machine
}

// newPair builds a fresh (pipeline, reference) machine pair over the
// decoded stream with the run's options and entry arguments applied.
func (r *run) newPair(dec []encode.DecInstr, opts Options) (*tmsim.Machine, *refmodel.Machine) {
	sim := r.newSim()
	refImage := refmodel.NewMem()
	if r.init != nil {
		refImage = copyImage(r.init)
	}
	ref := refmodel.New(dec, r.t, refImage)
	sim.MaxInstrs, ref.MaxInstrs = opts.MaxInstrs, opts.MaxInstrs
	sim.StrictMem, ref.StrictMem = opts.StrictMem, opts.StrictMem
	sim.Engine = opts.Engine
	for reg, v := range r.args {
		sim.SetPhysReg(reg, v)
		ref.SetReg(reg, v)
	}
	return sim, ref
}

func (r *run) execute(opts Options) (*Result, error) {
	res := &Result{Name: r.name, Target: r.t.Name}

	dec, err := encode.Decode(r.art.Enc.Bytes, tmsim.CodeBase, len(r.art.Code.Instrs))
	if err != nil {
		return nil, fmt.Errorf("%s on %s: image does not decode: %w", r.name, r.t.Name, err)
	}

	if opts.Lockstep {
		// Single-pass intermediate-state diffing: the per-instruction
		// hook checks the register file at every boundary while the run
		// proceeds, then the final state is diffed as usual. The
		// reference model is run to completion first — stepping it the
		// rest of the way is exactly what its own Run loop would do.
		sim, ref := r.newPair(dec, opts)
		div, simErr := lockstepRun(sim, ref, dec)
		refTrap := ref.Run()
		res.Instrs = sim.Stats.Instrs
		if div == nil {
			div = diffFinal(sim, simErr, ref, refTrap, &r.t)
		}
		res.Div = div
		return res, nil
	}

	sim, ref := r.newPair(dec, opts)
	simErr := sim.RunContext(context.Background())
	refTrap := ref.Run()
	res.Instrs = sim.Stats.Instrs

	if div := diffFinal(sim, simErr, ref, refTrap, &r.t); div != nil {
		res.Div = div
		if !opts.NoLockstep {
			if ld := r.lockstep(dec, opts); ld != nil {
				res.Div = ld
			}
		}
	}
	return res, nil
}

// diffFinal compares the architecturally visible end state of both
// models and returns the first difference found.
func diffFinal(sim *tmsim.Machine, simErr error, ref *refmodel.Machine,
	refTrap *refmodel.Trap, t *config.Target) *Divergence {
	simName, refName, same := canonTrap(simErr, refTrap)
	if !same {
		return &Divergence{Kind: "trap",
			Detail: fmt.Sprintf("pipeline model: %s, reference model: %s", simName, refName)}
	}
	if simErr != nil {
		// Both models rejected the program for the same reason; their
		// partial state at the fault is not architecturally defined.
		return nil
	}
	if sim.Stats.Instrs != ref.Issue() {
		return &Divergence{Kind: "instrs",
			Detail: fmt.Sprintf("pipeline model retired %d instructions, reference model %d",
				sim.Stats.Instrs, ref.Issue())}
	}
	simRegs, refRegs := sim.RegSnapshot(), ref.Regs()
	for i := range simRegs {
		if simRegs[i] != refRegs[i] {
			return &Divergence{Kind: "reg",
				Detail: fmt.Sprintf("r%d = %#x (pipeline) vs %#x (reference)",
					i, simRegs[i], refRegs[i])}
		}
	}
	if d := diffMem(sim.Mem, ref.Mem); d != nil {
		return d
	}
	if t.HasRegionPrefetch {
		refBank := ref.MMIORegs()
		for n := 0; n < prefetch.NumRegions; n++ {
			r := sim.PF.Regions[n]
			simBank := [3]uint32{r.Start, r.End, r.Stride}
			if simBank != refBank[n] {
				return &Divergence{Kind: "mmio",
					Detail: fmt.Sprintf("prefetch region %d = %v (pipeline) vs %v (reference)",
						n, simBank, refBank[n])}
			}
		}
	}
	return nil
}

// diffMem compares final memory images over the union of touched pages.
func diffMem(f *mem.Func, r *refmodel.Mem) *Divergence {
	pages := map[uint32]bool{}
	for _, pa := range f.PageAddrs() {
		pages[pa] = true
	}
	for _, pa := range r.PageAddrs() {
		pages[pa] = true
	}
	for pa := range pages {
		for i := uint32(0); i < 1<<12; i++ {
			if a, b := f.ByteAt(pa+i), r.ByteAt(pa+i); a != b {
				return &Divergence{Kind: "mem",
					Detail: fmt.Sprintf("byte %#x = %#x (pipeline) vs %#x (reference)",
						pa+i, a, b)}
			}
		}
	}
	return nil
}

// lockstep reruns both models instruction by instruction to localize
// the first divergent boundary. It returns nil when the rerun sees no
// boundary-level divergence (the final-state diff stands on its own).
func (r *run) lockstep(dec []encode.DecInstr, opts Options) *Divergence {
	sim, ref := r.newPair(dec, opts)
	div, _ := lockstepRun(sim, ref, dec)
	return div
}

// lockstepRun drives the pipeline model with the per-instruction hook
// armed, stepping the reference model alongside and diffing the full
// register file at every instruction boundary. It returns the first
// boundary divergence (nil if none) and the pipeline model's run
// error. The reference model is left wherever the pipeline model
// stopped feeding it.
func lockstepRun(sim *tmsim.Machine, ref *refmodel.Machine, dec []encode.DecInstr) (*Divergence, error) {
	var div *Divergence
	sim.InstrHook = func(cycle, issue int64, idx int) {
		if div != nil {
			return
		}
		pc := dec[idx].Addr
		if ref.Done() || ref.Issue() != issue || ref.Index() != idx {
			div = &Divergence{Kind: "lockstep-flow", Issue: issue, Cycle: cycle, PC: pc,
				Detail: fmt.Sprintf("pipeline model at instruction %d (issue %d), reference model at %d (issue %d, done=%v)",
					idx, issue, ref.Index(), ref.Issue(), ref.Done())}
			return
		}
		ref.CommitDue()
		simRegs, refRegs := sim.RegSnapshot(), ref.Regs()
		for i := range simRegs {
			if simRegs[i] != refRegs[i] {
				div = &Divergence{Kind: "lockstep-reg", Issue: issue, Cycle: cycle, PC: pc,
					Detail: fmt.Sprintf("r%d = %#x (pipeline) vs %#x (reference) before instruction %d",
						i, simRegs[i], refRegs[i], idx)}
				return
			}
		}
		ref.Step()
	}
	err := sim.RunContext(context.Background())
	return div, err
}

// RunWorkload co-simulates one workload on one target. A target that
// cannot schedule the workload (TM3260 vs TM3270-only ops) returns
// (nil, nil) — a skip, not a failure.
func RunWorkload(w *workloads.Spec, t config.Target, opts Options) (*Result, error) {
	art, err := runner.CompileWorkload(w, t)
	if err != nil {
		var se *runner.ScheduleError
		if errors.As(err, &se) {
			return nil, nil
		}
		return nil, err
	}
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return nil, fmt.Errorf("%s: init: %w", w.Name, err)
		}
	}
	args := make(map[isa.Reg]uint32, len(w.Args))
	for v, val := range w.Args {
		args[art.RegMap.Reg(v)] = val
	}
	r := &run{name: w.Name, art: art, t: t, init: image, args: args}
	return r.execute(opts)
}

// RunGenerated co-simulates one progen program on one target, starting
// from an empty memory image.
func RunGenerated(seed int64, t config.Target, genOps int, opts Options) (*Result, error) {
	p := progen.Generate(progen.Config{Seed: seed, Target: &t, Ops: genOps})
	art, err := runner.Compile(p, t)
	if err != nil {
		return nil, fmt.Errorf("gen seed %d on %s: %w", seed, t.Name, err)
	}
	r := &run{name: fmt.Sprintf("gen%d", seed), art: art, t: t}
	return r.execute(opts)
}
