package cosim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

func allTargets() []config.Target {
	return []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
	}
}

// TestConformanceCampaign is the conformance gate: every shipped
// workload and a seeded population of generated programs, co-simulated
// on all four paper targets, must show zero divergences between the
// pipeline model and the architectural reference model.
func TestConformanceCampaign(t *testing.T) {
	cfg := CampaignConfig{}
	if testing.Short() {
		cfg.Seeds = 50
	}
	c, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Divergent {
		t.Errorf("%s on %s: %s", r.Name, r.Target, r.Div)
	}
	if c.Workloads == 0 || c.Skipped == 0 {
		t.Errorf("campaign ran %d workload pairs with %d skips; want both nonzero "+
			"(TM3270-only workloads must skip the TM3260 targets)", c.Workloads, c.Skipped)
	}
	wantGen := 4 * 500
	if testing.Short() {
		wantGen = 4 * 50
	}
	if c.Generated != wantGen {
		t.Errorf("campaign ran %d generated programs, want %d", c.Generated, wantGen)
	}
	if c.Instrs == 0 {
		t.Error("campaign retired zero instructions")
	}
}

// TestTrapAgreementCanon pins the one real divergence the first full
// sweep surfaced: both models reject a prefetch MMIO access on a
// target without the region prefetcher, but under different trap names
// ("mmio-misuse" in the pipeline model, "mmio" in the reference model).
// canonTrap must map them to the same canonical name so a same-cause
// rejection counts as agreement.
func TestTrapAgreementCanon(t *testing.T) {
	p := workloads.Small()
	for _, name := range []string{"blockwalk_pf", "upconv_pf"} {
		w, err := workloads.ByName(name, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWorkload(w, config.ConfigA(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatalf("%s did not schedule on the TM3260 baseline", name)
		}
		if res.Div != nil {
			t.Errorf("%s on ConfigA: %s (mmio trap canonicalization regressed)", name, res.Div)
		}
	}
}

// TestLockstepLocalization checks the harness actually localizes a
// divergence. The pipeline model executes the scheduled code while the
// reference model executes the decoded binary, so flipping a bit in
// the encoded image (leaving the artifact's Code untouched) guarantees
// the models run different programs; the harness must notice and the
// lockstep rerun must attach instruction context.
func TestLockstepLocalization(t *testing.T) {
	w, err := workloads.ByName("memset", workloads.Small())
	if err != nil {
		t.Fatal(err)
	}
	target := config.ConfigD()
	art, err := runner.CompileWorkload(w, target)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	seen := 0
	for try := 0; try < 200; try++ {
		img := make([]byte, len(art.Enc.Bytes))
		copy(img, art.Enc.Bytes)
		bit := rng.Intn(len(img) * 8)
		img[bit/8] ^= 1 << (bit % 8)

		enc := *art.Enc
		enc.Bytes = img
		mutArt := &runner.Artifact{Code: art.Code, RegMap: art.RegMap, Enc: &enc}

		image := mem.NewFunc()
		if w.Init != nil {
			if err := w.Init(image); err != nil {
				t.Fatal(err)
			}
		}
		args := make(map[isa.Reg]uint32, len(w.Args))
		for v, val := range w.Args {
			args[art.RegMap.Reg(v)] = val
		}
		r := &run{name: "memset-mut", art: mutArt, t: target, init: image, args: args}
		res, err := r.execute(Options{})
		if err != nil {
			continue // mutant image no longer decodes: not a co-sim case
		}
		if res.Div == nil {
			continue // flip landed in dead or semantically inert bits
		}
		seen++
		switch res.Div.Kind {
		case "lockstep-flow", "lockstep-reg":
			if res.Div.PC == 0 {
				t.Errorf("lockstep divergence without a PC: %s", res.Div)
			}
		case "trap", "instrs", "reg", "mem", "mmio":
			// Final-state kinds survive when the lockstep rerun sees
			// agreement at every boundary (e.g. a mutated store address).
		default:
			t.Errorf("unexpected divergence kind %q", res.Div.Kind)
		}
		if seen >= 5 {
			return
		}
	}
	if seen == 0 {
		t.Fatal("200 bit flips produced no observable divergence; the harness is blind")
	}
}

// TestStrictModesAgree co-simulates with strict memory armed in both
// models: the pipeline model's per-byte write-validity trap and the
// reference model's undefined-read trap must agree — both fire at the
// same cause, or neither fires. Workloads exercise the clean side
// (their inits define every byte the kernels read); generated programs
// start from an empty image, so their loads hit undefined bytes and
// the trap side must agree too.
func TestStrictModesAgree(t *testing.T) {
	p := workloads.Small()
	for _, name := range []string{"memset", "memcpy", "filter", "rgb2yuv", "mp3_synth"} {
		w, err := workloads.ByName(name, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, tgt := range allTargets() {
			res, err := RunWorkload(w, tgt, Options{StrictMem: true})
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				continue // target cannot schedule the workload
			}
			if res.Div != nil {
				t.Errorf("%s on %s under strict: %s", name, tgt.Name, res.Div)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		seed := rng.Int63()
		res, err := RunGenerated(seed, config.ConfigD(), 60, Options{StrictMem: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			t.Errorf("gen seed %d under strict: %s", seed, res.Div)
		}
	}
}

// TestStrictUndefinedReadAgreement pins the non-vacuous case: a kernel
// reading one word past its initialized input. The pipeline model must
// trap (per-byte validity — the word lies on an already-written page,
// so the old page-granular check would have passed it), and the
// co-simulation must still count the run as agreement because the
// reference model traps for the same canonical reason.
func TestStrictUndefinedReadAgreement(t *testing.T) {
	b := prog.NewBuilder("strict_cosim")
	base, v := b.Reg(), b.Reg()
	b.Ld32D(v, base, 4) // bytes 4..7 of the buffer: never written
	b.St32D(base, 8, v)
	p := b.MustProgram()

	tgt := config.ConfigD()
	art, err := runner.Compile(p, tgt)
	if err != nil {
		t.Fatal(err)
	}
	init := mem.NewFunc()
	init.Store(0x2000, 4, 0xdeadbeef) // defines bytes 0..3 only
	args := map[isa.Reg]uint32{art.RegMap.Reg(base): 0x2000}
	r := &run{name: "strict_cosim", art: art, t: tgt, init: init, args: args}

	// The pipeline model alone must raise the strict trap.
	sim := r.newSim()
	sim.StrictMem = true
	for reg, val := range args {
		sim.SetPhysReg(reg, val)
	}
	runErr := sim.RunContext(context.Background())
	var trap *tmsim.TrapError
	if !errors.As(runErr, &trap) || trap.Kind != tmsim.TrapUnmappedLoad {
		t.Fatalf("pipeline model under strict returned %v, want TrapUnmappedLoad", runErr)
	}
	if trap.Addr != 0x2004 {
		t.Errorf("trap addr = %#x, want 0x2004", trap.Addr)
	}

	// And the harness must see agreement, not a trap divergence.
	res, err := r.execute(Options{StrictMem: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Errorf("strict modes disagree: %s", res.Div)
	}

	// Without strict, both models read zeroes and finish cleanly.
	res, err = r.execute(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Errorf("non-strict run diverged: %s", res.Div)
	}
}

// FuzzCosim drives the differential harness from the fuzzer: every
// seed/size/target triple generates a legal program that must co-
// simulate divergence-free.
func FuzzCosim(f *testing.F) {
	for seed := int64(1); seed <= 10; seed++ {
		f.Add(seed, uint8(64), uint8(seed%4))
	}
	targets := allTargets()
	f.Fuzz(func(t *testing.T, seed int64, ops uint8, tgt uint8) {
		target := targets[int(tgt)%len(targets)]
		genOps := 16 + int(ops)%112
		res, err := RunGenerated(seed, target, genOps, Options{})
		if err != nil {
			t.Fatalf("seed %d ops %d on %s: %v", seed, genOps, target.Name, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d ops %d on %s diverged: %s", seed, genOps, target.Name, res.Div)
		}
	})
}
