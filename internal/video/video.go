// Package video provides the video-processing substrate shared by the
// workloads: frame layout over the simulated memory, deterministic
// synthetic image/field generators, checksums, and motion-vector field
// generators with controlled "disruptiveness" (the property the paper
// uses to distinguish the mpeg2_a/b/c streams).
package video

import "tm3270/internal/mem"

// Frame is a byte-per-pixel (luma) image in simulated memory.
type Frame struct {
	W, H   int
	Stride int
	Base   uint32
}

// NewFrame lays out a W×H frame at base with a packed stride.
func NewFrame(base uint32, w, h int) Frame {
	return Frame{W: w, H: h, Stride: w, Base: base}
}

// Addr returns the address of pixel (x, y). Coordinates are clamped to
// the frame, matching the edge-extension rule of motion compensation.
func (f Frame) Addr(x, y int) uint32 {
	x = clamp(x, 0, f.W-1)
	y = clamp(y, 0, f.H-1)
	return f.Base + uint32(y*f.Stride+x)
}

// Bytes returns the total footprint.
func (f Frame) Bytes() int { return f.Stride * f.H }

// End returns one past the last byte.
func (f Frame) End() uint32 { return f.Base + uint32(f.Bytes()) }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LCG is the deterministic pseudo-random generator used by all
// synthetic content so runs are reproducible across configurations.
type LCG struct{ s uint32 }

// NewLCG seeds the generator (zero is remapped).
func NewLCG(seed uint32) *LCG {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &LCG{s: seed}
}

// Next returns the next 32-bit value.
func (l *LCG) Next() uint32 {
	l.s = l.s*1664525 + 1013904223
	return l.s
}

// Intn returns a value in [0, n).
func (l *LCG) Intn(n int) int { return int(l.Next() % uint32(n)) }

// FillTestPattern writes a natural-image-like pattern: a smooth
// gradient with texture noise, so SAD searches and filters behave
// non-degenerately.
func FillTestPattern(m *mem.Func, f Frame, seed uint32) {
	rng := NewLCG(seed)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := (x*3 + y*7) & 0xff
			v = (v + rng.Intn(32)) & 0xff
			m.SetByte(f.Addr(x, y), byte(v))
		}
	}
}

// Checksum folds a frame into a 32-bit FNV-style digest.
func Checksum(m *mem.Func, f Frame) uint32 {
	h := uint32(2166136261)
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			h = (h ^ uint32(m.ByteAt(f.Addr(x, y)))) * 16777619
		}
	}
	return h
}

// MV is a motion vector in integer pixels.
type MV struct{ X, Y int16 }

// GenerateMVField builds one motion vector per 16x16 macroblock for a
// mbW×mbH macroblock grid. disrupt in [0,1] controls how chaotic the
// field is: 0 yields a smooth global pan (spatially coherent references,
// cache friendly), 1 yields large uncorrelated vectors (a "highly
// disruptive motion vector field", the mpeg2_a case of Table 5).
func GenerateMVField(mbW, mbH int, disrupt float64, seed uint32) []MV {
	rng := NewLCG(seed)
	mvs := make([]MV, mbW*mbH)
	// Global pan component.
	panX, panY := rng.Intn(9)-4, rng.Intn(9)-4
	amp := int(disrupt * 96)
	for i := range mvs {
		x, y := panX, panY
		if amp > 0 {
			x += rng.Intn(2*amp+1) - amp
			y += rng.Intn(2*amp+1) - amp
		}
		mvs[i] = MV{X: int16(x), Y: int16(y)}
	}
	return mvs
}

// MVSpread measures a field's disruptiveness as the mean absolute
// deviation from the mean vector, in pixels.
func MVSpread(mvs []MV) float64 {
	if len(mvs) == 0 {
		return 0
	}
	var sx, sy int
	for _, v := range mvs {
		sx += int(v.X)
		sy += int(v.Y)
	}
	mx, my := sx/len(mvs), sy/len(mvs)
	var dev int
	for _, v := range mvs {
		dev += abs(int(v.X)-mx) + abs(int(v.Y)-my)
	}
	return float64(dev) / float64(len(mvs))
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
