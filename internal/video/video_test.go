package video_test

import (
	"testing"
	"testing/quick"

	"tm3270/internal/mem"
	"tm3270/internal/video"
)

func TestFrameAddrClamps(t *testing.T) {
	f := video.NewFrame(0x1000, 64, 32)
	if f.Addr(0, 0) != 0x1000 {
		t.Errorf("origin = %#x", f.Addr(0, 0))
	}
	if f.Addr(63, 31) != 0x1000+64*31+63 {
		t.Errorf("corner = %#x", f.Addr(63, 31))
	}
	// Out-of-frame coordinates clamp (motion-compensation edge rule).
	if f.Addr(-5, 0) != f.Addr(0, 0) {
		t.Error("negative x not clamped")
	}
	if f.Addr(200, 100) != f.Addr(63, 31) {
		t.Error("overflow not clamped")
	}
	if f.Bytes() != 64*32 || f.End() != 0x1000+64*32 {
		t.Error("size accounting wrong")
	}
}

func TestLCGDeterministic(t *testing.T) {
	a, b := video.NewLCG(42), video.NewLCG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if video.NewLCG(0).Next() == 0 {
		t.Error("zero seed must be remapped")
	}
	f := func(n uint8) bool {
		rng := video.NewLCG(uint32(n) + 1)
		for i := 0; i < 50; i++ {
			if v := rng.Intn(7); v < 0 || v >= 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFillAndChecksum(t *testing.T) {
	m := mem.NewFunc()
	f := video.NewFrame(0x2000, 32, 16)
	video.FillTestPattern(m, f, 7)
	c1 := video.Checksum(m, f)
	if c1 == video.Checksum(m, video.NewFrame(0x9000, 32, 16)) {
		t.Error("checksum of filled frame equals empty frame")
	}
	// Deterministic across refills.
	m2 := mem.NewFunc()
	video.FillTestPattern(m2, f, 7)
	if video.Checksum(m2, f) != c1 {
		t.Error("pattern not deterministic")
	}
	// A single-pixel change moves the checksum.
	m2.SetByte(f.Addr(5, 5), m2.ByteAt(f.Addr(5, 5))+1)
	if video.Checksum(m2, f) == c1 {
		t.Error("checksum insensitive to pixel change")
	}
}

func TestMVFieldDisruptiveness(t *testing.T) {
	smooth := video.GenerateMVField(40, 30, 0, 3)
	wild := video.GenerateMVField(40, 30, 1, 3)
	if video.MVSpread(smooth) != 0 {
		t.Errorf("disrupt=0 must be a pure pan, spread %.2f", video.MVSpread(smooth))
	}
	if video.MVSpread(wild) < 10 {
		t.Errorf("disrupt=1 spread %.2f too small", video.MVSpread(wild))
	}
	if len(smooth) != 1200 {
		t.Errorf("field size %d", len(smooth))
	}
	if video.MVSpread(nil) != 0 {
		t.Error("empty field spread")
	}
}

func TestMemFuncBasics(t *testing.T) {
	m := mem.NewFunc()
	if m.ByteAt(0xdeadbeef) != 0 {
		t.Error("untouched memory must read zero")
	}
	m.Store(0xfffffffe, 4, 0x11223344) // wraps the address space
	if m.ByteAt(0xfffffffe) != 0x11 || m.ByteAt(0x1) != 0x44 {
		t.Error("wrap-around store broken")
	}
	m.WriteBytes(0x100, []byte{1, 2, 3})
	got := m.ReadBytes(0x100, 3)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("ReadBytes = %v", got)
	}
	a, b := mem.NewFunc(), mem.NewFunc()
	a.SetByte(0x5000, 9)
	if addr, diff := mem.Diff(a, b); !diff || addr != 0x5000 {
		t.Errorf("Diff = %#x,%v", addr, diff)
	}
	b.SetByte(0x5000, 9)
	if _, diff := mem.Diff(a, b); diff {
		t.Error("equal images reported different")
	}
}
