package mpeg2

import (
	"fmt"

	"tm3270/internal/mem"
	"tm3270/internal/video"
)

// Stream characterizes one synthetic MPEG2 bitstream. The paper's
// mpeg2_a stream is "characterized by a highly disruptive motion vector
// field"; b and c are progressively tamer.
type Stream struct {
	Name      string
	Disrupt   float64 // motion-vector field disruptiveness in [0,1]
	CodedFrac float64 // fraction of macroblocks carrying residuals
	Seed      uint32
}

// The three evaluation streams of Table 5.
var (
	StreamA = Stream{Name: "mpeg2_a", Disrupt: 1.0, CodedFrac: 0.45, Seed: 11}
	StreamB = Stream{Name: "mpeg2_b", Disrupt: 0.35, CodedFrac: 0.30, Seed: 22}
	StreamC = Stream{Name: "mpeg2_c", Disrupt: 0.05, CodedFrac: 0.25, Seed: 33}
)

// Memory layout constants of the decoder working set.
const (
	// Bases staggered by multiples of 13 cache lines to avoid pathological
	// set alignment between the decoder's concurrent streams.
	refBase     = 0x0400_0000
	outBase     = 0x0480_0680
	mvBase      = 0x0500_0d00
	codedBase   = 0x0510_1380
	coeffBase   = 0x0520_1a00
	scratchBase = 0x05f0_2080

	// BlockCoeffBytes is the storage of one 8x8 coefficient block:
	// 64 16-bit coefficients in the even/odd-split row layout.
	BlockCoeffBytes = 128
	// MBCoeffBytes covers the four luma and two chroma blocks of a
	// 4:2:0 macroblock.
	MBCoeffBytes = 6 * BlockCoeffBytes
)

// Chroma plane bases (quarter-resolution Cb and Cr), staggered like the
// luma planes.
const (
	refCbBase = 0x0440_0340
	refCrBase = 0x0450_09c0
	outCbBase = 0x04c0_1040
	outCrBase = 0x04d0_16c0
)

// Layout is the in-memory arrangement of one decoded frame's inputs
// and outputs.
type Layout struct {
	Ref, Out video.Frame
	// Chroma planes (4:2:0): quarter-resolution Cb and Cr.
	RefCb, RefCr, OutCb, OutCr video.Frame
	MVBase                     uint32 // 4 bytes per MB: int16 mvX, int16 mvY (big-endian)
	Coded                      uint32 // 1 byte per MB: 1 = residuals present
	Coeff                      uint32 // MBCoeffBytes per MB (4 luma + 2 chroma blocks)
	Scratch                    uint32 // two 128-byte 8x8 int16 scratch blocks
	MBW, MBH                   int
}

// NumMBs returns the macroblock count.
func (l *Layout) NumMBs() int { return l.MBW * l.MBH }

// NewLayout computes the working-set arrangement of a w×h frame
// (multiples of 16) without touching memory; Build populates an image
// for it. Kernel builders use it to bind the fixed base addresses.
func NewLayout(w, h int) (*Layout, error) {
	if w%16 != 0 || h%16 != 0 {
		return nil, fmt.Errorf("mpeg2: frame %dx%d not multiple of 16", w, h)
	}
	return &Layout{
		Ref:     video.NewFrame(refBase, w, h),
		Out:     video.NewFrame(outBase, w, h),
		RefCb:   video.NewFrame(refCbBase, w/2, h/2),
		RefCr:   video.NewFrame(refCrBase, w/2, h/2),
		OutCb:   video.NewFrame(outCbBase, w/2, h/2),
		OutCr:   video.NewFrame(outCrBase, w/2, h/2),
		MVBase:  mvBase,
		Coded:   codedBase,
		Coeff:   coeffBase,
		Scratch: scratchBase,
		MBW:     w / 16,
		MBH:     h / 16,
	}, nil
}

// Build populates memory with a reference frame, motion vectors, coded
// flags and residual coefficients for a w×h frame (multiples of 16).
//
// Two concessions keep the kernel portable across the TM3260 (which has
// no penalty-free non-aligned access): horizontal motion components are
// quantized to 4-byte alignment, and vectors are clamped so that every
// 16x16 reference block stays inside the frame. Neither affects the
// property under test — which cache lines the motion field touches.
func Build(m *mem.Func, w, h int, s Stream) (*Layout, error) {
	l, err := NewLayout(w, h)
	if err != nil {
		return nil, err
	}
	video.FillTestPattern(m, l.Ref, s.Seed)
	video.FillTestPattern(m, l.RefCb, s.Seed+7)
	video.FillTestPattern(m, l.RefCr, s.Seed+8)

	mvs := video.GenerateMVField(l.MBW, l.MBH, s.Disrupt, s.Seed+1)
	rng := video.NewLCG(s.Seed + 2)
	for i, mv := range mvs {
		mbx, mby := i%l.MBW, i/l.MBW
		// Quantize X to word alignment, clamp the block into the frame.
		x := int(mv.X) &^ 3
		y := int(mv.Y)
		x = clampInt(x, -mbx*16, (l.MBW-1-mbx)*16)
		x &^= 3
		y = clampInt(y, -mby*16, (l.MBH-1-mby)*16)
		m.Store(l.MVBase+uint32(4*i), 2, uint64(uint16(int16(x))))
		m.Store(l.MVBase+uint32(4*i)+2, 2, uint64(uint16(int16(y))))

		coded := rng.Next()%1000 < uint32(s.CodedFrac*1000)
		if coded {
			m.SetByte(l.Coded+uint32(i), 1)
			for blk := 0; blk < 6; blk++ {
				genBlockCoeffs(m, l.Coeff+uint32(i*MBCoeffBytes+blk*BlockCoeffBytes), rng)
			}
		} else {
			m.SetByte(l.Coded+uint32(i), 0)
		}
	}
	return l, nil
}

// genBlockCoeffs writes a sparse random coefficient block in the
// even/odd-split row layout the kernel consumes: each row stores
// x0,x2,x4,x6,x1,x3,x5,x7 so that 32-bit loads deliver ready-made
// (even, even) and (odd, odd) 16-bit pairs for ifir16/SUPER_DUALIMIX.
func genBlockCoeffs(m *mem.Func, base uint32, rng *video.LCG) {
	var block [64]int32
	// DC plus a handful of low-frequency AC coefficients, scaled so the
	// reconstructed residual stays within ±255.
	block[0] = int32(rng.Intn(1200) - 600)
	for k := 0; k < 5; k++ {
		u, v := rng.Intn(4), rng.Intn(4)
		if u == 0 && v == 0 {
			continue
		}
		block[8*u+v] = int32(rng.Intn(400) - 200)
	}
	storeBlockCoeffs(m, base, &block)
}

// storeBlockCoeffs writes a natural-order coefficient block into the
// even/odd-split layout.
func storeBlockCoeffs(m *mem.Func, base uint32, block *[64]int32) {
	perm := [8]int{0, 2, 4, 6, 1, 3, 5, 7}
	for r := 0; r < 8; r++ {
		for i, src := range perm {
			v := block[8*r+src]
			m.Store(base+uint32(16*r+2*i), 2, uint64(uint16(int16(v))))
		}
	}
}

// LoadBlockCoeffs reads a block back into natural order (tests,
// reference decode).
func LoadBlockCoeffs(m *mem.Func, base uint32) [64]int32 {
	perm := [8]int{0, 2, 4, 6, 1, 3, 5, 7}
	var block [64]int32
	for r := 0; r < 8; r++ {
		for i, src := range perm {
			raw := uint16(m.Load(base+uint32(16*r+2*i), 2))
			block[8*r+src] = int32(int16(raw))
		}
	}
	return block
}

// ExpectedFrames is the reference reconstruction of all three planes.
type ExpectedFrames struct {
	Y, Cb, Cr []byte
}

// ChromaMV derives the chroma motion vector from a luma vector: halved
// (flooring shift) with the horizontal component aligned down to word
// alignment, matching the kernel's portable addressing.
func ChromaMV(mvx, mvy int) (int, int) {
	return (mvx >> 1) &^ 3, mvy >> 1
}

// FinalBases returns the memory bases holding the last decoded frame
// after nFrames of chained decoding (output and reference regions swap
// every frame).
func (l *Layout) FinalBases(nFrames int) (y, cb, cr uint32) {
	if nFrames%2 == 1 {
		return l.Out.Base, l.OutCb.Base, l.OutCr.Base
	}
	return l.Ref.Base, l.RefCb.Base, l.RefCr.Base
}

// SnapshotRef captures the initial reference planes. It must be taken
// before the kernel runs: chained decoding overwrites the reference
// region from the second frame on.
func SnapshotRef(m *mem.Func, l *Layout) *ExpectedFrames {
	return &ExpectedFrames{
		Y:  readPlane(m, l.Ref),
		Cb: readPlane(m, l.RefCb),
		Cr: readPlane(m, l.RefCr),
	}
}

// Expected computes the reference reconstruction of nFrames chained
// frames: every frame is motion compensated from the previous frame's
// output (the first from the init snapshot), re-using the same motion
// vectors and residuals each frame, exactly as the kernel does. The
// vectors, flags and coefficients are read from m, which the kernel
// never modifies.
func Expected(init *ExpectedFrames, m *mem.Func, l *Layout, nFrames int) *ExpectedFrames {
	ref := init
	var out *ExpectedFrames
	for f := 0; f < nFrames; f++ {
		out = decodeOne(m, l, ref)
		ref = out
	}
	return out
}

func readPlane(m *mem.Func, f video.Frame) []byte {
	b := make([]byte, f.Bytes())
	for i := range b {
		b[i] = m.ByteAt(f.Base + uint32(i))
	}
	return b
}

func decodeOne(m *mem.Func, l *Layout, ref *ExpectedFrames) *ExpectedFrames {
	out := &ExpectedFrames{
		Y:  make([]byte, l.Out.Bytes()),
		Cb: make([]byte, l.OutCb.Bytes()),
		Cr: make([]byte, l.OutCr.Bytes()),
	}
	refAt := func(plane []byte, f video.Frame, x, y int) int32 {
		return int32(plane[(f.Addr(x, y) - f.Base)])
	}
	for i := 0; i < l.NumMBs(); i++ {
		mbx, mby := i%l.MBW, i/l.MBW
		mvx := int(int16(m.Load(l.MVBase+uint32(4*i), 2)))
		mvy := int(int16(m.Load(l.MVBase+uint32(4*i)+2, 2)))
		coded := m.ByteAt(l.Coded+uint32(i)) != 0

		var resid [6][64]int32
		if coded {
			for blk := 0; blk < 6; blk++ {
				resid[blk] = LoadBlockCoeffs(m, l.Coeff+uint32(i*MBCoeffBytes+blk*BlockCoeffBytes))
				IDCT8x8(&resid[blk])
			}
		}
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				px, py := mbx*16+x, mby*16+y
				v := refAt(ref.Y, l.Ref, px+mvx, py+mvy)
				if coded {
					blk := (y/8)*2 + x/8
					v += resid[blk][(y%8)*8+x%8]
				}
				out.Y[py*l.Out.Stride+px] = clipPix(v)
			}
		}
		cmvx, cmvy := ChromaMV(mvx, mvy)
		for p, plane := range []struct {
			geom video.Frame
			src  []byte
			dst  []byte
		}{{l.RefCb, ref.Cb, out.Cb}, {l.RefCr, ref.Cr, out.Cr}} {
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					px, py := mbx*8+x, mby*8+y
					v := refAt(plane.src, plane.geom, px+cmvx, py+cmvy)
					if coded {
						v += resid[4+p][8*y+x]
					}
					plane.dst[py*plane.geom.Stride+px] = clipPix(v)
				}
			}
		}
	}
	return out
}

func clipPix(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
