package mpeg2

import (
	"math"
	"testing"

	"tm3270/internal/mem"
	"tm3270/internal/video"
)

// TestIDCTAgainstFloat bounds the fixed-point error of the integer IDCT.
func TestIDCTAgainstFloat(t *testing.T) {
	rng := video.NewLCG(7)
	for trial := 0; trial < 200; trial++ {
		var bi [64]int32
		var bf [64]float64
		for k := 0; k < 8; k++ {
			idx := rng.Intn(64)
			v := int32(rng.Intn(1200) - 600)
			bi[idx] = v
			bf[idx] = float64(v)
		}
		IDCT8x8(&bi)
		IDCTFloat(&bf)
		for i := range bi {
			f := math.Max(-255, math.Min(255, bf[i]))
			if d := math.Abs(float64(bi[i]) - f); d > 2.0 {
				t.Fatalf("trial %d pixel %d: int %d float %.2f (err %.2f)", trial, i, bi[i], f, d)
			}
		}
	}
}

func TestIDCTDCOnly(t *testing.T) {
	var b [64]int32
	b[0] = 800 // DC: every output pixel = 800/8 = 100
	IDCT8x8(&b)
	for i, v := range b {
		if v < 99 || v > 101 {
			t.Fatalf("pixel %d = %d, want ~100", i, v)
		}
	}
}

func TestIDCTLinearity(t *testing.T) {
	rng := video.NewLCG(9)
	var a, b2, sum [64]int32
	for i := range a {
		if rng.Intn(8) == 0 {
			a[i] = int32(rng.Intn(200) - 100)
			b2[i] = int32(rng.Intn(200) - 100)
		}
		sum[i] = a[i] + b2[i]
	}
	IDCT8x8(&a)
	IDCT8x8(&b2)
	IDCT8x8(&sum)
	for i := range sum {
		if d := sum[i] - a[i] - b2[i]; d < -2 || d > 2 {
			t.Fatalf("linearity violated at %d: %d vs %d+%d", i, sum[i], a[i], b2[i])
		}
	}
}

func TestCoeffLayoutRoundTrip(t *testing.T) {
	m := mem.NewFunc()
	rng := video.NewLCG(3)
	var block [64]int32
	for i := range block {
		block[i] = int32(rng.Intn(4000) - 2000)
	}
	storeBlockCoeffs(m, 0x1000, &block)
	back := LoadBlockCoeffs(m, 0x1000)
	if back != block {
		t.Fatal("even/odd-split layout does not round-trip")
	}
	// The layout property the kernel relies on: a 32-bit load at row
	// offset 0 returns DUAL16(x0, x2).
	w := uint32(m.Load(0x1000, 4))
	if int16(w>>16) != int16(block[0]) || int16(w) != int16(block[2]) {
		t.Errorf("first word = (%d,%d), want (x0,x2) = (%d,%d)",
			int16(w>>16), int16(w), block[0], block[2])
	}
}

func TestBuildStreams(t *testing.T) {
	for _, s := range []Stream{StreamA, StreamB, StreamC} {
		m := mem.NewFunc()
		l, err := Build(m, 64, 48, s)
		if err != nil {
			t.Fatal(err)
		}
		if l.NumMBs() != 4*3 {
			t.Fatalf("%s: %d MBs", s.Name, l.NumMBs())
		}
		coded := 0
		for i := 0; i < l.NumMBs(); i++ {
			if m.ByteAt(l.Coded+uint32(i)) != 0 {
				coded++
			}
			mvx := int(int16(m.Load(l.MVBase+uint32(4*i), 2)))
			mvy := int(int16(m.Load(l.MVBase+uint32(4*i)+2, 2)))
			if mvx%4 != 0 {
				t.Errorf("%s: mv.x %d not word aligned", s.Name, mvx)
			}
			mbx, mby := i%l.MBW, i/l.MBW
			if mbx*16+mvx < 0 || mbx*16+mvx+16 > 64 || mby*16+mvy < 0 || mby*16+mvy+16 > 48 {
				t.Errorf("%s: MB %d mv (%d,%d) leaves the frame", s.Name, i, mvx, mvy)
			}
		}
		if s.CodedFrac > 0 && coded == 0 {
			t.Errorf("%s: no coded MBs", s.Name)
		}
		// Expected reconstruction must be computable and correctly sized.
		exp := Expected(SnapshotRef(m, l), m, l, 1)
		if len(exp.Y) != 64*48 || len(exp.Cb) != 32*24 || len(exp.Cr) != 32*24 {
			t.Fatalf("expected frame sizes %d/%d/%d", len(exp.Y), len(exp.Cb), len(exp.Cr))
		}
		// Chained decoding differs from a single frame (the reference
		// regions swap) and is deterministic.
		snap := SnapshotRef(m, l)
		e2 := Expected(snap, m, l, 2)
		e2b := Expected(snap, m, l, 2)
		if string(e2.Y) != string(e2b.Y) {
			t.Error("chained decode not deterministic")
		}
		yb, _, _ := l.FinalBases(2)
		if yb != l.Ref.Base {
			t.Error("after 2 frames the output must live in the reference region")
		}
	}
}

func TestDisruptivenessOrdering(t *testing.T) {
	spread := func(s Stream) float64 {
		mvs := video.GenerateMVField(45, 30, s.Disrupt, s.Seed+1)
		return video.MVSpread(mvs)
	}
	a, b, c := spread(StreamA), spread(StreamB), spread(StreamC)
	if !(a > b && b > c) {
		t.Errorf("MV spread a=%.1f b=%.1f c=%.1f, want a > b > c", a, b, c)
	}
	if a < 20 {
		t.Errorf("stream a spread %.1f too tame for 'highly disruptive'", a)
	}
}

func TestRejectsBadDims(t *testing.T) {
	if _, err := Build(mem.NewFunc(), 100, 48, StreamA); err == nil {
		t.Error("non-multiple-of-16 width accepted")
	}
}
