// Package mpeg2 provides the MPEG2-decoder substrate behind the
// mpeg2_a/b/c workloads of Table 5: the fixed-point 8x8 inverse DCT
// (whose exact integer arithmetic the DSL kernel reproduces
// bit-for-bit), synthetic streams with motion-vector fields of
// controlled disruptiveness, residual coefficient generation, and the
// pure-Go reference reconstruction the simulated kernels are checked
// against.
package mpeg2

import "math"

// Cos is the coefficient table: Cos[k] = round(2048 * cos(k*pi/16)).
// The 11-bit scale keeps all ifir16 products within 32 bits.
var Cos = [8]int32{2048, 2009, 1892, 1703, 1448, 1138, 784, 400}

// Shifts of the two 1-D passes. The row pass keeps 3 fractional bits
// (so row outputs fit comfortably in 16 bits for the packed column
// pass); the column pass removes the remaining scale.
const (
	RowShift = 9
	ColShift = 15
)

// idct1d performs the even/odd (Chen) 1-D transform used by both
// passes. in[0..7] are the coefficients in natural order.
func idct1d(in *[8]int32, shift uint) [8]int32 {
	c := &Cos
	e0 := c[4]*in[0] + c[2]*in[2] + c[4]*in[4] + c[6]*in[6]
	e1 := c[4]*in[0] + c[6]*in[2] - c[4]*in[4] - c[2]*in[6]
	e2 := c[4]*in[0] - c[6]*in[2] - c[4]*in[4] + c[2]*in[6]
	e3 := c[4]*in[0] - c[2]*in[2] + c[4]*in[4] - c[6]*in[6]
	o0 := c[1]*in[1] + c[3]*in[3] + c[5]*in[5] + c[7]*in[7]
	o1 := c[3]*in[1] - c[7]*in[3] - c[1]*in[5] - c[5]*in[7]
	o2 := c[5]*in[1] - c[1]*in[3] + c[7]*in[5] + c[3]*in[7]
	o3 := c[7]*in[1] - c[5]*in[3] + c[3]*in[5] - c[1]*in[7]
	r := int32(1) << (shift - 1)
	var out [8]int32
	out[0] = (e0 + o0 + r) >> shift
	out[7] = (e0 - o0 + r) >> shift
	out[1] = (e1 + o1 + r) >> shift
	out[6] = (e1 - o1 + r) >> shift
	out[2] = (e2 + o2 + r) >> shift
	out[5] = (e2 - o2 + r) >> shift
	out[3] = (e3 + o3 + r) >> shift
	out[4] = (e3 - o3 + r) >> shift
	return out
}

// IDCT8x8 performs the in-place fixed-point 2-D inverse DCT, row pass
// then column pass, with final clipping to the residual range ±255.
// The DSL kernel implements exactly this arithmetic.
func IDCT8x8(block *[64]int32) {
	var tmp [64]int32
	for r := 0; r < 8; r++ {
		var row [8]int32
		copy(row[:], block[8*r:8*r+8])
		out := idct1d(&row, RowShift)
		copy(tmp[8*r:], out[:])
	}
	for cIdx := 0; cIdx < 8; cIdx++ {
		var col [8]int32
		for r := 0; r < 8; r++ {
			col[r] = tmp[8*r+cIdx]
		}
		out := idct1d(&col, ColShift)
		for r := 0; r < 8; r++ {
			v := out[r]
			// Residual clip matching the TM3270 iclipi(v, 8) operation:
			// [-2^8, 2^8-1].
			if v > 255 {
				v = 255
			}
			if v < -256 {
				v = -256
			}
			block[8*r+cIdx] = v
		}
	}
}

// IDCTFloat is the double-precision reference used to bound the
// fixed-point error of IDCT8x8.
func IDCTFloat(block *[64]float64) {
	var out [64]float64
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			sum := 0.0
			for u := 0; u < 8; u++ {
				for v := 0; v < 8; v++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = 1 / math.Sqrt2
					}
					if v == 0 {
						cv = 1 / math.Sqrt2
					}
					sum += cu * cv * block[8*u+v] *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			out[8*x+y] = sum / 4
		}
	}
	copy(block[:], out[:])
}
