package tmsim

import "tm3270/internal/telemetry"

// StallCounterNames are the disjoint per-cause stall counters of the
// registry: for any completed run their snapshot sum equals
// sim.cycles - sim.instrs (every cycle is either an issue cycle or a
// stall with exactly one cause).
var StallCounterNames = []string{
	"stall.fetch", "stall.jump",
	"stall.data.miss", "stall.data.inflight", "stall.data.cwb",
}

// Registry builds the unified counter registry over every unit of the
// machine: simulator core, stall causes, data cache, instruction cache,
// bus interface unit and (when present) the region prefetcher. The
// registry reads the live counters only at snapshot time, so holding
// one costs nothing during simulation.
func (m *Machine) Registry() *telemetry.Registry {
	r := telemetry.NewRegistry()

	s := &m.Stats
	r.Counter("sim.instrs", &s.Instrs)
	r.Counter("sim.ops", &s.Ops)
	r.Counter("sim.ops.exec", &s.ExecOps)
	r.Counter("sim.ops.load", &s.LoadOps)
	r.Counter("sim.ops.store", &s.StoreOps)
	r.Counter("sim.cycles", &s.Cycles)
	r.Counter("sim.jumps", &s.Jumps)
	r.Counter("sim.jumps.taken", &s.Taken)

	// Fast-path engine activity: translation-cache counters read live
	// from the block cache (zero until a blockcache run starts), plus
	// the interpreter-fallback count.
	r.Func("sim.blockcache.translated", func() int64 { return m.BlockCacheStats().Translated })
	r.Func("sim.blockcache.hits", func() int64 { return m.BlockCacheStats().Hits })
	r.Func("sim.blockcache.invalidations", func() int64 { return m.BlockCacheStats().Invalidations })
	r.Counter("sim.blockcache.fallbacks", &m.FallbackRuns)

	// Disjoint stall causes (see StallCounterNames): stall.fetch is the
	// sequential fetch stall with the jump penalty carved out.
	r.Func("stall.fetch", func() int64 { return s.FetchStalls - s.JumpStalls })
	r.Counter("stall.jump", &s.JumpStalls)
	r.Counter("stall.data.miss", &s.DataMissStalls)
	r.Counter("stall.data.inflight", &s.DataInFlightStalls)
	r.Counter("stall.data.cwb", &s.DataCWBStalls)

	d := &m.DC.Stats
	r.Counter("dcache.load.hit", &d.LoadHits)
	r.Counter("dcache.load.miss", &d.LoadMisses)
	r.Counter("dcache.store.hit", &d.StoreHits)
	r.Counter("dcache.store.miss", &d.StoreMisses)
	r.Counter("dcache.alloc", &d.Allocs)
	r.Counter("dcache.copyback", &d.Copybacks)
	r.Counter("dcache.hit.partial", &d.PartialHits)
	r.Counter("dcache.miss.merge", &d.MergeMisses)
	r.Counter("dcache.line.cross", &d.LineCrossers)

	ic := &m.IC.Stats
	r.Counter("icache.chunk", &ic.Chunks)
	r.Counter("icache.hit", &ic.Hits)
	r.Counter("icache.miss", &ic.Misses)

	b := m.BIU
	r.Counter("bus.read", &b.Reads)
	r.Counter("bus.write", &b.Writes)
	r.Counter("bus.read.demand", &b.DemandReads)
	r.Counter("bus.read.prefetch", &b.PrefetchRead)
	r.Counter("bus.bytes.read", &b.BytesRead)
	r.Counter("bus.bytes.written", &b.BytesWritten)

	if m.PF != nil {
		p := &m.PF.Stats
		r.Counter("prefetch.trigger", &p.Triggers)
		r.Counter("prefetch.issued", &p.Issued)
		r.Counter("prefetch.useful", &p.Useful)
		r.Counter("prefetch.late", &p.Late)
		r.Counter("prefetch.dropped", &p.Dropped)
		r.Counter("prefetch.evicted", &p.Evicted)
	}
	return r
}

// AnnotateSpan writes the run's headline cycle attribution into a
// request span — the join point between the serving stack's span
// trees and the simulator's existing counter/trace telemetry. The
// stall split mirrors StallCounterNames; when an event trace was
// armed, the span also records how many structured events it holds so
// a request trace points at the cycle-level trace behind it.
func (m *Machine) AnnotateSpan(sp *telemetry.Span) {
	if m == nil || sp == nil {
		return
	}
	s := &m.Stats
	sp.Annotate("cycles", s.Cycles)
	sp.Annotate("instrs", s.Instrs)
	sp.Annotate("stall.fetch", s.FetchStalls-s.JumpStalls)
	sp.Annotate("stall.jump", s.JumpStalls)
	sp.Annotate("stall.data.miss", s.DataMissStalls)
	sp.Annotate("stall.data.inflight", s.DataInFlightStalls)
	sp.Annotate("stall.data.cwb", s.DataCWBStalls)
	sp.Annotate("dcache.miss", m.DC.Stats.LoadMisses+m.DC.Stats.StoreMisses)
	if m.Events != nil {
		sp.Annotate("trace.events", m.Events.Len())
		sp.Annotate("trace.dropped", m.Events.Dropped())
	}
}

// SetEventTrace arms the structured event trace on the machine and on
// every memory-system unit; nil disarms it.
func (m *Machine) SetEventTrace(t *telemetry.Trace) {
	m.Events = t
	m.IC.Events = t
	m.DC.Events = t
	m.BIU.Events = t
}

// EnableProfile allocates the per-PC cycle-attribution profile over the
// loaded kernel and returns it.
func (m *Machine) EnableProfile() *telemetry.Profile {
	m.Profile = telemetry.NewProfile(len(m.Code.Instrs))
	m.Profile.PCs = m.Enc.Addr
	return m.Profile
}
