package tmsim_test

import (
	"context"
	"testing"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
)

// TestAnnotateSpan: a completed run writes its headline cycle
// attribution into a request span, the stall split matching the
// registry's disjoint stall.* counters, and — when an event trace was
// armed — the size of the cycle-level trace behind the request.
func TestAnnotateSpan(t *testing.T) {
	m := buildMachine(t, spinProgram("annotated", 100), config.TM3270(), nil)
	tr := telemetry.NewTrace(0)
	m.SetEventTrace(tr)
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}

	sp := telemetry.NewSpan("execute")
	m.AnnotateSpan(sp)
	sp.End()
	j := sp.JSON(time.Now())

	if j.Args["cycles"] != m.Stats.Cycles || j.Args["instrs"] != m.Stats.Instrs {
		t.Errorf("args cycles=%v instrs=%v, want %d/%d",
			j.Args["cycles"], j.Args["instrs"], m.Stats.Cycles, m.Stats.Instrs)
	}
	var stalls int64
	for _, k := range tmsim.StallCounterNames {
		v, ok := j.Args[k].(int64)
		if !ok {
			t.Fatalf("stall annotation %q missing or mistyped: %v", k, j.Args[k])
		}
		stalls += v
	}
	if want := m.Stats.Cycles - m.Stats.Instrs; stalls != want {
		t.Errorf("annotated stall split sums to %d, want cycles-instrs = %d", stalls, want)
	}
	if j.Args["trace.events"] != tr.Len() || tr.Len() == 0 {
		t.Errorf("trace.events = %v, want the armed trace's %d", j.Args["trace.events"], tr.Len())
	}

	// Nil machine and nil span both no-op.
	var nilM *tmsim.Machine
	nilM.AnnotateSpan(sp)
	m.AnnotateSpan(nil)
}
