package tmsim_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
)

// runBoth executes p on the reference interpreter and on the machine
// model for the given target, and requires identical register results
// and memory images. It returns the machine for timing inspection.
func runBoth(t *testing.T, p *prog.Program, target config.Target,
	init map[prog.VReg]uint32, outs []prog.VReg, memInit func(*mem.Func)) *tmsim.Machine {
	t.Helper()

	// Reference.
	refMem := mem.NewFunc()
	if memInit != nil {
		memInit(refMem)
	}
	in := prog.NewInterp(p, refMem)
	in.MaxOps = 50_000_000
	for v, val := range init {
		in.SetReg(v, val)
	}
	if err := in.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}

	// Machine.
	code, err := sched.Schedule(p, target)
	if err != nil {
		t.Fatalf("schedule for %s: %v", target.Name, err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	simMem := mem.NewFunc()
	if memInit != nil {
		memInit(simMem)
	}
	m, err := tmsim.New(code, rm, simMem)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	for v, val := range init {
		m.SetReg(v, val)
	}
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run on %s: %v", target.Name, err)
	}

	for _, v := range outs {
		if got, want := m.Reg(v), in.Reg(v); got != want {
			t.Errorf("%s on %s: out reg %v = %#x, machine disagrees with reference %#x",
				p.Name, target.Name, v, got, want)
		}
	}
	if addr, diff := mem.Diff(refMem, simMem); diff {
		t.Errorf("%s on %s: memory diverges at %#x: ref %#x sim %#x",
			p.Name, target.Name, addr, refMem.ByteAt(addr), simMem.ByteAt(addr))
	}
	if m.Stats.Cycles < m.Stats.Instrs {
		t.Errorf("%s: cycles %d < instrs %d", p.Name, m.Stats.Cycles, m.Stats.Instrs)
	}
	return m
}

func targets() []config.Target {
	return []config.Target{config.TM3270(), config.TM3260(), config.ConfigB(), config.ConfigC()}
}

func TestSumLoopAllTargets(t *testing.T) {
	for _, tgt := range targets() {
		b := prog.NewBuilder("sum")
		base, n, sum := b.Reg(), b.Reg(), b.Reg()
		i, v, cond, off := b.Reg(), b.Reg(), b.Reg(), b.Reg()
		b.Imm(sum, 0)
		b.Imm(i, 0)
		b.Label("loop")
		b.AslI(off, i, 2)
		b.Ld32R(v, base, off)
		b.Add(sum, sum, v)
		b.AddI(i, i, 1)
		b.Les(cond, i, n)
		b.JmpT(cond, "loop")
		p := b.MustProgram()

		m := runBoth(t, p, tgt,
			map[prog.VReg]uint32{base: 0x2000, n: 64},
			[]prog.VReg{sum, i},
			func(f *mem.Func) {
				for k := 0; k < 64; k++ {
					f.Store(0x2000+uint32(4*k), 4, uint64(k*k+7))
				}
			})
		if m.Stats.Taken != 63 {
			t.Errorf("%s: taken jumps = %d, want 63", tgt.Name, m.Stats.Taken)
		}
	}
}

func TestGuardedDiamond(t *testing.T) {
	// if (x > y) r = x - y else r = y - x, with both guarded ops and a
	// branchy version, checked on every target.
	for _, tgt := range targets() {
		b := prog.NewBuilder("diamond")
		x, y, g, ng, r1, r2 := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		b.Gtr(g, x, y)
		b.IsZero(ng, g)
		b.Sub(r1, x, y).WithGuard(g)
		b.Sub(r1, y, x).WithGuard(ng)
		// Branchy version.
		b.Imm(r2, 0)
		b.JmpF(g, "else")
		b.Sub(r2, x, y)
		b.Jmp("done")
		b.Label("else")
		b.Sub(r2, y, x)
		b.Label("done")
		p := b.MustProgram()

		for _, xy := range [][2]uint32{{10, 3}, {3, 10}, {7, 7}} {
			runBoth(t, p, tgt,
				map[prog.VReg]uint32{x: xy[0], y: xy[1]},
				[]prog.VReg{r1, r2}, nil)
		}
	}
}

func TestMemcpyNonAligned(t *testing.T) {
	for _, tgt := range targets() {
		b := prog.NewBuilder("memcpy_na")
		src, dst, n := b.Reg(), b.Reg(), b.Reg()
		i, v, c := b.Reg(), b.Reg(), b.Reg()
		b.Imm(i, 0)
		b.Label("loop")
		b.Ld32R(v, src, i).InGroup(1)
		b.St32D(dst, 0, v).InGroup(2)
		b.AddI(dst, dst, 4)
		b.AddI(i, i, 4)
		b.ULes(c, i, n)
		b.JmpT(c, "loop")
		p := b.MustProgram()

		runBoth(t, p, tgt,
			// Deliberately non-aligned source and destination.
			map[prog.VReg]uint32{src: 0x3001, dst: 0x7003, n: 256},
			[]prog.VReg{dst},
			func(f *mem.Func) {
				for k := uint32(0); k < 300; k++ {
					f.SetByte(0x3000+k, byte(k*17+3))
				}
			})
	}
}

func TestSuperOpsOnTM3270(t *testing.T) {
	b := prog.NewBuilder("supers")
	a1, a2, a3, a4 := b.Reg(), b.Reg(), b.Reg(), b.Reg()
	d1, d2, l1, l2, sad := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	base := b.Reg()
	b.SuperDualIMix(d1, d2, a1, a2, a3, a4)
	b.SuperLd32R(l1, l2, base, prog.Zero)
	b.SuperUME8UU(sad, a1, a2, a3, a4)
	p := b.MustProgram()

	runBoth(t, p, config.TM3270(),
		map[prog.VReg]uint32{
			a1: 0x00020003, a2: 0x00050007, a3: 0x000b000d, a4: 0x00110013,
			base: 0x4000,
		},
		[]prog.VReg{d1, d2, l1, l2, sad},
		func(f *mem.Func) {
			f.Store(0x4000, 8, 0x1122334455667788)
		})

	// The TM3260 must refuse to schedule TM3270-only operations.
	if _, err := sched.Schedule(p, config.TM3260()); err == nil {
		t.Error("TM3260 accepted TM3270-only super operations")
	}
}

func TestLdFrac8Kernel(t *testing.T) {
	b := prog.NewBuilder("frac")
	base, frac, out := b.Reg(), b.Reg(), b.Reg()
	b.LdFrac8(out, base, frac)
	p := b.MustProgram()
	for f := uint32(0); f < 16; f += 5 {
		runBoth(t, p, config.TM3270(),
			map[prog.VReg]uint32{base: 0x5002, frac: f},
			[]prog.VReg{out},
			func(m *mem.Func) {
				m.WriteBytes(0x5000, []byte{1, 9, 17, 33, 65, 129, 255})
			})
	}
}

func TestNestedLoops(t *testing.T) {
	// A 2D sweep: out[i] = sum over j of (i*j), exercising nested
	// control flow and loop-carried values on every target.
	for _, tgt := range targets() {
		b := prog.NewBuilder("nested")
		out, acc := b.Reg(), b.Reg()
		i, j, pr, ci, cj, addr := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
		b.Imm(i, 0)
		b.Label("outer")
		b.Imm(acc, 0)
		b.Imm(j, 0)
		b.Label("inner")
		b.Mul(pr, i, j)
		b.Add(acc, acc, pr)
		b.AddI(j, j, 1)
		b.LesI(cj, j, 8)
		b.JmpT(cj, "inner")
		b.AslI(addr, i, 2)
		b.Add(addr, addr, out)
		b.St32D(addr, 0, acc)
		b.AddI(i, i, 1)
		b.LesI(ci, i, 6)
		b.JmpT(ci, "outer")
		p := b.MustProgram()

		runBoth(t, p, tgt, map[prog.VReg]uint32{out: 0x9000}, []prog.VReg{i, acc}, nil)
	}
}

// TestRandomStraightLine cross-checks scheduler + machine against the
// reference on randomly generated straight-line integer programs with
// guards. This is the main property test for schedule correctness
// (latency honoring, slot constraints, WAR/WAW discipline).
func TestRandomStraightLine(t *testing.T) {
	ops := []isa.Opcode{
		isa.OpIADD, isa.OpISUB, isa.OpIMIN, isa.OpIMAX, isa.OpBITAND,
		isa.OpBITOR, isa.OpBITXOR, isa.OpIMUL, isa.OpIMULM, isa.OpIFIR16,
		isa.OpQUADAVG, isa.OpDSPIADD, isa.OpDSPIDUALADD, isa.OpUME8UU,
		isa.OpASL, isa.OpLSR, isa.OpICLZ, isa.OpIGTR, isa.OpIEQL,
		isa.OpFUNSHIFT1, isa.OpPACK16LSB, isa.OpMERGEMSB,
	}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := prog.NewBuilder("rand")
		pool := make([]prog.VReg, 12)
		init := map[prog.VReg]uint32{}
		for i := range pool {
			pool[i] = b.Reg()
			init[pool[i]] = rng.Uint32()
		}
		outs := make([]prog.VReg, 0, len(pool))
		for n := 0; n < 60; n++ {
			oc := ops[rng.Intn(len(ops))]
			info := isa.Info(oc)
			op := prog.Op{Opcode: oc}
			for s := 0; s < info.NSrc; s++ {
				op.Src[s] = pool[rng.Intn(len(pool))]
			}
			op.Dest[0] = pool[rng.Intn(len(pool))]
			if rng.Intn(4) == 0 {
				op.Guard = pool[rng.Intn(len(pool))]
			}
			b.Emit(op)
		}
		outs = append(outs, pool...)
		p := b.MustProgram()
		for _, tgt := range targets() {
			runBoth(t, p, tgt, init, outs, nil)
		}
	}
}

// TestRandomLoopKernels adds control flow: random loop bodies with a
// deterministic counter, cross-checked on all targets.
func TestRandomLoopKernels(t *testing.T) {
	ops := []isa.Opcode{
		isa.OpIADD, isa.OpISUB, isa.OpBITXOR, isa.OpIMUL, isa.OpQUADAVG,
		isa.OpASL, isa.OpPACK16MSB, isa.OpDSPIDUALSUB, isa.OpROL,
	}
	for seed := int64(100); seed < 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := prog.NewBuilder("randloop")
		pool := make([]prog.VReg, 8)
		init := map[prog.VReg]uint32{}
		for i := range pool {
			pool[i] = b.Reg()
			init[pool[i]] = rng.Uint32()
		}
		cnt, cond := b.Reg(), b.Reg()
		b.Imm(cnt, 0)
		b.Label("loop")
		for n := 0; n < 12; n++ {
			oc := ops[rng.Intn(len(ops))]
			info := isa.Info(oc)
			op := prog.Op{Opcode: oc}
			for s := 0; s < info.NSrc; s++ {
				op.Src[s] = pool[rng.Intn(len(pool))]
			}
			op.Dest[0] = pool[rng.Intn(len(pool))]
			b.Emit(op)
		}
		b.AddI(cnt, cnt, 1)
		b.LesI(cond, cnt, 10)
		b.JmpT(cond, "loop")
		p := b.MustProgram()
		for _, tgt := range targets() {
			runBoth(t, p, tgt, init, pool, nil)
		}
	}
}

// TestTraceOutput checks the issue-trace facility.
func TestTraceOutput(t *testing.T) {
	b := prog.NewBuilder("traced")
	x, y := b.Reg(), b.Reg()
	b.Imm(x, 1)
	b.Add(y, x, x)
	p := b.MustProgram()
	code, err := sched.Schedule(p, config.TM3270())
	if err != nil {
		t.Fatal(err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tmsim.New(code, rm, mem.NewFunc())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	m.Trace = &buf
	m.TraceLimit = 10
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "iimm") || !strings.Contains(out, "iadd") {
		t.Errorf("trace missing operations:\n%s", out)
	}
	if n := strings.Count(out, "\n"); int64(n) != m.Stats.Instrs {
		t.Errorf("trace lines %d != instrs %d", n, m.Stats.Instrs)
	}
}
