package tmsim

import (
	"fmt"

	"tm3270/internal/blockcache"
)

// Engine selects how a Machine executes loaded code. Both engines are
// cycle-exact against each other — identical architectural results,
// identical Stats including the per-cause stall split — so the choice
// is purely a speed/observability trade (enforced by TestEnginesAgree
// and the fast-vs-interp cosim gate in make check).
type Engine int

const (
	// EngineBlockCache is the fast path and the default (zero value):
	// straight-line packet regions are predecoded once into flat
	// struct-of-arrays micro-op blocks (see internal/blockcache) and the
	// cycle/stall model runs over the predecoded stream. Runs that arm
	// instruction tracing, event traces or the cycle profile fall back
	// to the interpreter automatically (counted in FallbackRuns).
	EngineBlockCache Engine = iota

	// EngineInterp walks the scheduled code directly, slot by slot.
	// It supports every observability hook and is the reference the
	// fast path is held to.
	EngineInterp
)

// String returns the selector spelling accepted by ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineBlockCache:
		return "blockcache"
	case EngineInterp:
		return "interp"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine maps a selector string ("blockcache", "interp", or ""
// for the default) to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "blockcache":
		return EngineBlockCache, nil
	case "interp":
		return EngineInterp, nil
	default:
		return 0, fmt.Errorf("unknown engine %q (want blockcache or interp)", s)
	}
}

// fastUnsupported reports whether the run arms a feature the fast path
// does not serve: instruction tracing, the structured event trace and
// the per-PC cycle profile all want per-slot visibility that the
// predecoded stream deliberately discards. InstrHook is supported (the
// differential lockstep harness rides on it), as are traps, watchdog,
// deadlines, cancellation and strict memory.
func (m *Machine) fastUnsupported() bool {
	return m.Trace != nil || m.Events != nil || m.Profile != nil
}

// BlockCacheStats returns the translation-cache counters of the last
// (or in-progress) blockcache-engine run; zero if the fast path never
// ran on this machine.
func (m *Machine) BlockCacheStats() blockcache.Stats {
	if m.bc == nil {
		return blockcache.Stats{}
	}
	return m.bc.Stats
}
