package tmsim_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
)

// buildMachine compiles p for tgt over the given image (nil for empty).
func buildMachine(t *testing.T, p *prog.Program, tgt config.Target, image *mem.Func) *tmsim.Machine {
	t.Helper()
	code, err := sched.Schedule(p, tgt)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	if image == nil {
		image = mem.NewFunc()
	}
	m, err := tmsim.New(code, rm, image)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m
}

// wantTrap runs the machine and requires a TrapError of the given kind.
func wantTrap(t *testing.T, m *tmsim.Machine, kind tmsim.TrapKind) *tmsim.TrapError {
	t.Helper()
	err := m.RunContext(context.Background())
	if err == nil {
		t.Fatalf("run succeeded, want %v trap", kind)
	}
	var trap *tmsim.TrapError
	if !errors.As(err, &trap) {
		t.Fatalf("run returned %T (%v), want *TrapError", err, err)
	}
	if trap.Kind != kind {
		t.Fatalf("trap kind = %v, want %v (%v)", trap.Kind, kind, trap)
	}
	return trap
}

func TestStrictUnmappedLoadTraps(t *testing.T) {
	b := prog.NewBuilder("unmapped_load")
	base, v := b.Reg(), b.Reg()
	b.Ld32D(v, base, 0)
	b.St32D(base, 4, v)
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	m.StrictMem = true
	m.SetReg(base, 0x4000_0000) // never written
	trap := wantTrap(t, m, tmsim.TrapUnmappedLoad)

	if trap.Addr != 0x4000_0000 {
		t.Errorf("trap addr = %#x, want 0x40000000", trap.Addr)
	}
	if trap.Op != "ld32d" {
		t.Errorf("trap op = %q, want ld32d", trap.Op)
	}
	if len(trap.Recorder) == 0 {
		t.Error("flight recorder is empty")
	} else if last := trap.Recorder[len(trap.Recorder)-1]; last.Index != trap.Index {
		t.Errorf("last recorder entry at instr %d, trap at %d", last.Index, trap.Index)
	}

	var sb strings.Builder
	trap.Dump(&sb)
	dump := sb.String()
	for _, want := range []string{"unmapped-load", "registers:", "flight recorder", "ld32d", "addr    0x40000000"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump lacks %q:\n%s", want, dump)
		}
	}
}

func TestStrictMappedLoadRuns(t *testing.T) {
	b := prog.NewBuilder("mapped_load")
	base, v := b.Reg(), b.Reg()
	b.Ld32D(v, base, 0)
	b.St32D(base, 4, v)
	p := b.MustProgram()

	image := mem.NewFunc()
	image.Store(0x2000, 4, 0xdeadbeef)
	m := buildMachine(t, p, config.TM3270(), image)
	m.StrictMem = true
	m.SetReg(base, 0x2000)
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := image.Load(0x2004, 4); got != 0xdeadbeef {
		t.Errorf("stored %#x, want 0xdeadbeef", got)
	}
}

// TestStrictPerByteValidity: strict mode tracks write-validity per
// byte, so a load of never-written bytes traps even when it lands on a
// page other writes have already populated (the page-granular check
// this replaces would have let it pass silently).
func TestStrictPerByteValidity(t *testing.T) {
	b := prog.NewBuilder("partial_page_load")
	base, v := b.Reg(), b.Reg()
	b.Ld32D(v, base, 0x40) // same page as the written word, never written
	b.St32D(base, 4, v)
	p := b.MustProgram()

	image := mem.NewFunc()
	image.Store(0x2000, 4, 0xdeadbeef)
	m := buildMachine(t, p, config.TM3270(), image)
	m.StrictMem = true
	m.SetReg(base, 0x2000)
	trap := wantTrap(t, m, tmsim.TrapUnmappedLoad)
	if trap.Addr != 0x2040 {
		t.Errorf("trap addr = %#x, want 0x2040", trap.Addr)
	}
}

func TestStrictNullPageStoreTraps(t *testing.T) {
	b := prog.NewBuilder("null_store")
	base := b.Reg()
	b.St32D(base, 16, base)
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	m.StrictMem = true
	m.SetReg(base, 0) // null pointer
	trap := wantTrap(t, m, tmsim.TrapUnmappedStore)
	if trap.Addr != 16 {
		t.Errorf("trap addr = %#x, want 0x10", trap.Addr)
	}
}

func TestMMIOWrongWidthTraps(t *testing.T) {
	b := prog.NewBuilder("mmio_width")
	base, v := b.Reg(), b.Reg()
	b.Imm(v, 0x1234)
	b.St16D(base, 0, v) // 16-bit store into a 32-bit register block
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	m.SetReg(base, prefetch.MMIOBase)
	trap := wantTrap(t, m, tmsim.TrapMMIO)
	if trap.Addr != prefetch.MMIOBase {
		t.Errorf("trap addr = %#x, want MMIOBase", trap.Addr)
	}
}

func TestMMIOWithoutPrefetcherTraps(t *testing.T) {
	b := prog.NewBuilder("mmio_nopf")
	base, v := b.Reg(), b.Reg()
	b.Imm(v, 0x1000)
	b.St32D(base, 0, v)
	p := b.MustProgram()

	// TM3260 has no region prefetcher: configuring one is a bug.
	m := buildMachine(t, p, config.TM3260(), nil)
	m.SetReg(base, prefetch.MMIOBase)
	wantTrap(t, m, tmsim.TrapMMIO)
}

func TestMMIOMisalignedTraps(t *testing.T) {
	b := prog.NewBuilder("mmio_misaligned")
	base, v := b.Reg(), b.Reg()
	b.Ld32D(v, base, 2)
	b.St32D(base, 32, v)
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	m.SetReg(base, prefetch.MMIOBase)
	wantTrap(t, m, tmsim.TrapMMIO)
}

func TestUnknownLabelTraps(t *testing.T) {
	b := prog.NewBuilder("unknown_label")
	i, cond := b.Reg(), b.Reg()
	b.Imm(i, 0)
	b.Label("loop")
	b.AddI(i, i, 1)
	b.LesI(cond, i, 3)
	b.JmpT(cond, "loop")
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	// Simulate a corrupted label table: the jump's target is gone.
	delete(m.Code.Labels, "loop")
	trap := wantTrap(t, m, tmsim.TrapUnknownLabel)
	if !strings.Contains(trap.Reason, "loop") {
		t.Errorf("reason %q does not name the label", trap.Reason)
	}
}

func TestInternalPanicBecomesTrap(t *testing.T) {
	b := prog.NewBuilder("panic_op")
	a := b.Reg()
	b.AddI(a, a, 1)
	b.AddI(a, a, 2)
	b.St32D(a, 0x2000, a)
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	// Corrupt one scheduled op into an undefined opcode: issuing it
	// panics inside the core, which must surface as a trap snapshot,
	// not a Go panic.
	corrupted := false
	for i := range m.Code.Instrs {
		for s := 0; s < 5 && !corrupted; s++ {
			if op := m.Code.Instrs[i].Slots[s].Op; op != nil {
				op.Opcode = 9999
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Fatal("no op to corrupt")
	}
	trap := wantTrap(t, m, tmsim.TrapInternal)
	if trap.Panic == nil {
		t.Error("trap carries no panic value")
	}
}

func TestDeadlineTraps(t *testing.T) {
	// An effectively-infinite loop: the 1ns deadline fires long before
	// the instruction-count watchdog.
	b := prog.NewBuilder("spin")
	i, cond := b.Reg(), b.Reg()
	b.Imm(i, 0)
	b.Label("loop")
	b.AddI(i, i, 1)
	b.NeqI(cond, i, 0)
	b.JmpT(cond, "loop")
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	m.Deadline = time.Nanosecond
	m.MaxInstrs = 1 << 40
	wantTrap(t, m, tmsim.TrapDeadline)
}

func TestRegisterDumpMatchesState(t *testing.T) {
	b := prog.NewBuilder("regdump")
	a, bad := b.Reg(), b.Reg()
	b.Imm(a, 0xabcd0123)
	b.Ld32D(bad, a, 0) // traps in strict mode: 0xabcd0123 is unmapped
	b.St32D(a, 0, bad)
	p := b.MustProgram()

	m := buildMachine(t, p, config.TM3270(), nil)
	m.StrictMem = true
	trap := wantTrap(t, m, tmsim.TrapUnmappedLoad)
	found := false
	for _, v := range trap.Regs {
		if v == 0xabcd0123 {
			found = true
		}
	}
	if !found {
		t.Error("register dump lacks the written value 0xabcd0123")
	}
}
