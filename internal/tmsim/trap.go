package tmsim

import (
	"fmt"
	"io"
	"strings"

	"tm3270/internal/isa"
	"tm3270/internal/sched"
)

// TrapKind classifies a structured execution fault.
type TrapKind int

const (
	// TrapNone is the zero value; a real TrapError never carries it.
	TrapNone TrapKind = iota
	// TrapUnmappedLoad is a load touching a byte never written
	// (strict-memory mode; per-byte write-validity tracking).
	TrapUnmappedLoad
	// TrapUnmappedStore is a store into the reserved null page
	// (strict-memory mode).
	TrapUnmappedStore
	// TrapMMIO is a malformed access to the prefetch register block:
	// wrong width, misaligned, or on a target without the unit.
	TrapMMIO
	// TrapUnknownLabel is a taken jump to a label absent from the code.
	TrapUnknownLabel
	// TrapDelayViolation is a jump taken inside another jump's delay
	// window.
	TrapDelayViolation
	// TrapWatchdog is the MaxInstrs instruction-count watchdog.
	TrapWatchdog
	// TrapDeadline is the wall-clock execution deadline.
	TrapDeadline
	// TrapInternal is a recovered Go panic inside the simulator core.
	TrapInternal
	// TrapCanceled is a cooperative abort via the run's context
	// (cancellation or context deadline).
	TrapCanceled
)

// String returns the trap kind's diagnostic name.
func (k TrapKind) String() string {
	switch k {
	case TrapUnmappedLoad:
		return "unmapped-load"
	case TrapUnmappedStore:
		return "unmapped-store"
	case TrapMMIO:
		return "mmio-misuse"
	case TrapUnknownLabel:
		return "unknown-label"
	case TrapDelayViolation:
		return "delay-violation"
	case TrapWatchdog:
		return "watchdog"
	case TrapDeadline:
		return "deadline"
	case TrapInternal:
		return "internal-panic"
	case TrapCanceled:
		return "canceled"
	}
	return "none"
}

// Record is one flight-recorder entry: an issued VLIW instruction.
type Record struct {
	Cycle int64  // CPU cycle at issue
	Issue int64  // dynamic instruction index
	Index int    // static index into the schedule
	Addr  uint32 // encoded byte address
	Ops   string // mnemonics of the occupied slots
}

// TrapError is a structured execution fault: what went wrong, where the
// machine was, the full architectural register state, and the flight
// recorder's view of the instructions leading up to the fault. It is
// the only error type Machine.Run returns for faults raised inside the
// execution loop, including recovered internal panics.
type TrapError struct {
	Kind   TrapKind
	Kernel string // code name
	Reason string // human-readable fault description

	Cycle int64  // CPU cycle of the faulting instruction
	Issue int64  // dynamic instruction index
	Index int    // static schedule index
	PC    uint32 // encoded byte address of the faulting instruction

	// Addr is the faulting memory address for memory traps.
	Addr uint32
	// Op is the mnemonic of the faulting operation, when known.
	Op string

	// Regs is the architectural register dump at the fault.
	Regs [isa.NumRegs]uint32
	// Recorder is the flight-recorder tail, oldest entry first.
	Recorder []Record

	// Panic holds the recovered value for TrapInternal.
	Panic any

	// Cause is the underlying error for TrapCanceled (the context's
	// Err), exposed through Unwrap so errors.Is sees through the trap.
	Cause error
}

// Unwrap exposes the underlying cause (context cancellation), if any.
func (e *TrapError) Unwrap() error { return e.Cause }

// Error implements error with a one-line summary; Dump gives the full
// diagnostic report.
func (e *TrapError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tmsim %s: trap %s at pc=%#x (instr %d, issue %d, cycle %d)",
		e.Kernel, e.Kind, e.PC, e.Index, e.Issue, e.Cycle)
	if e.Reason != "" {
		fmt.Fprintf(&b, ": %s", e.Reason)
	}
	return b.String()
}

// Dump writes the full diagnostic report: the summary line, the
// register dump and the flight-recorder tail.
func (e *TrapError) Dump(w io.Writer) {
	fmt.Fprintln(w, e.Error())
	if e.Op != "" {
		fmt.Fprintf(w, "  op      %s\n", e.Op)
	}
	if e.Kind == TrapUnmappedLoad || e.Kind == TrapUnmappedStore || e.Kind == TrapMMIO {
		fmt.Fprintf(w, "  addr    %#x\n", e.Addr)
	}
	if e.Panic != nil {
		fmt.Fprintf(w, "  panic   %v\n", e.Panic)
	}
	fmt.Fprintln(w, "  registers:")
	for r := 0; r < isa.NumRegs; r += 8 {
		fmt.Fprintf(w, "    r%-3d", r)
		for i := 0; i < 8; i++ {
			fmt.Fprintf(w, " %08x", e.Regs[r+i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  flight recorder (last %d instructions):\n", len(e.Recorder))
	for _, rec := range e.Recorder {
		fmt.Fprintf(w, "    c%-8d i%-6d @%-5d pc=%#x %s\n",
			rec.Cycle, rec.Issue, rec.Index, rec.Addr, rec.Ops)
	}
}

// memTrap is the internal panic payload busMem raises for memory-system
// faults; Machine.Run's recover converts it into a TrapError.
type memTrap struct {
	kind   TrapKind
	addr   uint32
	reason string
}

// recorder is the flight-recorder ring buffer. Entries are cheap
// (no strings); mnemonics are materialized only when a trap snapshot
// is taken.
type recorder struct {
	buf  []recEntry
	head int // next write position
	n    int // valid entries
}

type recEntry struct {
	cycle int64
	issue int64
	idx   int
}

// DefaultRecorderDepth is the flight-recorder length used when the
// machine does not specify one.
const DefaultRecorderDepth = 32

func newRecorder(depth int) *recorder {
	if depth <= 0 {
		depth = DefaultRecorderDepth
	}
	return &recorder{buf: make([]recEntry, depth)}
}

func (r *recorder) record(cycle, issue int64, idx int) {
	r.buf[r.head] = recEntry{cycle: cycle, issue: issue, idx: idx}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	if r.n < len(r.buf) {
		r.n++
	}
}

// last returns the most recent entry.
func (r *recorder) last() (recEntry, bool) {
	if r.n == 0 {
		return recEntry{}, false
	}
	return r.buf[(r.head-1+len(r.buf))%len(r.buf)], true
}

// instrOps renders the occupied slots of one scheduled instruction.
func instrOps(in *sched.Instr) string {
	var b strings.Builder
	for s := 0; s < 5; s++ {
		so := in.Slots[s]
		if so.Op == nil || so.Second {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		// The snapshot path must never panic, even on corrupted code.
		if info, ok := isa.InfoOK(so.Op.Opcode); ok {
			fmt.Fprintf(&b, "[%d]%s", s+1, info.Name)
		} else {
			fmt.Fprintf(&b, "[%d]op%d?", s+1, so.Op.Opcode)
		}
	}
	if b.Len() == 0 {
		return "(nop)"
	}
	return b.String()
}

// snapshot materializes the flight-recorder tail with mnemonics.
func (m *Machine) snapshotRecorder() []Record {
	if m.rec == nil || m.rec.n == 0 {
		return nil
	}
	out := make([]Record, 0, m.rec.n)
	start := (m.rec.head - m.rec.n + len(m.rec.buf)) % len(m.rec.buf)
	for i := 0; i < m.rec.n; i++ {
		e := m.rec.buf[(start+i)%len(m.rec.buf)]
		rec := Record{Cycle: e.cycle, Issue: e.issue, Index: e.idx}
		if e.idx >= 0 && e.idx < len(m.Code.Instrs) {
			rec.Addr = m.Enc.Addr[e.idx]
			rec.Ops = instrOps(&m.Code.Instrs[e.idx])
		}
		out = append(out, rec)
	}
	return out
}

// trap builds a TrapError snapshot at the given execution point.
func (m *Machine) trap(kind TrapKind, cycle, issue int64, idx int, reason string) *TrapError {
	e := &TrapError{
		Kind:     kind,
		Kernel:   m.Code.Name,
		Reason:   reason,
		Cycle:    cycle,
		Issue:    issue,
		Index:    idx,
		Regs:     m.regs.Snapshot(),
		Recorder: m.snapshotRecorder(),
	}
	if idx >= 0 && idx < len(m.Code.Instrs) {
		e.PC = m.Enc.Addr[idx]
	}
	return e
}
