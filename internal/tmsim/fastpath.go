package tmsim

import (
	"context"
	"fmt"
	"time"

	"tm3270/internal/blockcache"
	"tm3270/internal/dcache"
	"tm3270/internal/isa"
	"tm3270/internal/prefetch"
)

// fastPend is one in-flight register write of the fast path.
type fastPend struct {
	reg isa.Reg
	val uint32
}

// pendHorizon is the fast path's commit horizon: in-flight writes are
// kept in a ring of pendHorizon slots indexed by (due issue & mask).
// Every slot is drained exactly when its issue arrives, so the ring is
// unambiguous as long as no result latency reaches the horizon —
// blockcache.Translate enforces that bound statically.
const pendHorizon = blockcache.MaxLatency + 1

// pendPerIssue bounds the writes landing at one issue boundary: the
// machine has 5 writeback ports, which the scheduler enforces
// (sched.WBPorts), so a slot never sees more than 5 register writes.
// Unscheduled inputs cannot reach the engine — every code image comes
// through the scheduler — but the ring still spills gracefully rather
// than trusting that invariant with memory safety.
const pendPerIssue = 8

// fastRing is the in-flight register write ring: fixed-size slots, no
// allocation in the steady state.
type fastRing struct {
	n     [pendHorizon]int32
	e     [pendHorizon][pendPerIssue]fastPend
	spill []fastSpill // overflow beyond the writeback-port bound
}

type fastSpill struct {
	at int64
	w  fastPend
}

// add schedules a write to land when `at` becomes the current issue.
func (p *fastRing) add(at int64, reg isa.Reg, val uint32) {
	s := at & (pendHorizon - 1)
	if i := p.n[s]; i < pendPerIssue {
		p.e[s][i] = fastPend{reg: reg, val: val}
		p.n[s] = i + 1
		return
	}
	p.spill = append(p.spill, fastSpill{at: at, w: fastPend{reg: reg, val: val}})
}

// commit applies the writes due at this issue, in insertion order
// (program order, by the scheduler's WAW discipline). Writes to the
// hardwired registers are dropped, as in RegFile.Write. The slot
// entries precede same-issue spill entries in insertion order by
// construction (spilling starts only once the slot is full).
func (p *fastRing) commit(issue int64, regs *[isa.NumRegs]uint32) {
	s := issue & (pendHorizon - 1)
	if p.n[s] > 0 {
		p.commitSlot(s, regs)
	}
	if len(p.spill) > 0 {
		p.commitSpill(issue, regs)
	}
}

func (p *fastRing) commitSlot(s int64, regs *[isa.NumRegs]uint32) {
	e := &p.e[s]
	for i := int32(0); i < p.n[s]; i++ {
		if w := e[i]; w.reg > isa.R1 {
			regs[w.reg] = w.val
		}
	}
	p.n[s] = 0
}

func (p *fastRing) commitSpill(issue int64, regs *[isa.NumRegs]uint32) {
	kept := p.spill[:0]
	for _, sw := range p.spill {
		if sw.at == issue {
			if sw.w.reg > isa.R1 {
				regs[sw.w.reg] = sw.w.val
			}
		} else {
			kept = append(kept, sw)
		}
	}
	p.spill = kept
}

// drain applies every remaining write in ascending due order, the
// fast-path analog of the interpreter's final commit(issue+64).
func (p *fastRing) drain(issue int64, regs *[isa.NumRegs]uint32) {
	for k := int64(0); k < pendHorizon; k++ {
		p.commit(issue+k, regs)
	}
}

// runFast is the blockcache execution loop. It runs the same cycle and
// stall model as runInterp — identical instruction-cache fetches, data-
// cache accesses, redirect timing, watchdog/deadline/cancellation
// cadence and trap semantics — over predecoded micro-op blocks instead
// of the scheduled slot structures. Cycle-exactness against runInterp
// is enforced by TestEnginesAgree and the differential cosim gate.
func (m *Machine) runFast(ctx context.Context) error {
	if m.bc == nil {
		m.bc = blockcache.New(m.Code, m.RegMap, m.Enc, &m.Target)
	}
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 2_000_000_000
	}
	start := time.Now()
	bus := busMem{f: m.Mem, pf: m.PF, strict: m.StrictMem}
	delay := int64(m.Target.JumpDelaySlots)
	regs := m.regs.Raw()

	// The encoded code occupies [codeLo, codeHi); stores landing there
	// are self-modifying and invalidate overlapping translations. (The
	// architectural effect matches the interpreter exactly: code is not
	// re-decoded from memory, so a dropped block retranslates to the
	// same micro-ops — the invalidation is a cache-management event.)
	var codeLo, codeHi uint32
	if len(m.Enc.Addr) > 0 {
		codeLo = m.Enc.Addr[0]
		codeHi = codeLo + uint32(m.Enc.TotalBytes())
	}

	var (
		cycle         int64
		issue         int64
		idx           int
		redirectAfter int64 = -1
		redirectTo    int
		redirected    bool // next fetch follows a taken-jump redirect
		pend          fastRing
		// curChunk mirrors the instruction buffer's resident fetch
		// chunk (the IC's same-chunk short circuit): an instruction
		// whose bytes lie entirely in it makes Fetch a provable no-op,
		// so the call is skipped.
		curChunk  uint32
		haveChunk bool
	)
	nInstrs := len(m.Code.Instrs)
	var ectx isa.ExecContext
	ectx.Mem = bus

	for idx < nInstrs {
		b, berr := m.bc.Block(idx)
		if berr != nil {
			return m.trap(TrapInternal, cycle, issue, idx,
				fmt.Sprintf("block translation failed: %v", berr))
		}
		ops := b.Ops
		for bi := 0; bi < b.N; bi++ {
			if issue >= maxInstrs {
				return m.trap(TrapWatchdog, cycle, issue, idx,
					fmt.Sprintf("exceeded %d instructions", maxInstrs))
			}
			if issue&0x1fff == 0 {
				if m.Deadline > 0 && time.Since(start) > m.Deadline {
					return m.trap(TrapDeadline, cycle, issue, idx,
						fmt.Sprintf("exceeded wall-clock deadline %v", m.Deadline))
				}
				if cerr := ctx.Err(); cerr != nil {
					t := m.trap(TrapCanceled, cycle, issue, idx,
						fmt.Sprintf("run canceled: %v", cerr))
					t.Cause = cerr
					return t
				}
			}
			// Commit in-flight register writes due at this instruction
			// (the guards keep the common cases inlined; `commit` itself
			// is beyond the inliner's budget).
			if s := issue & (pendHorizon - 1); pend.n[s] != 0 {
				pend.commitSlot(s, regs)
			}
			if len(pend.spill) != 0 {
				pend.commitSpill(issue, regs)
			}

			if m.InstrHook != nil {
				m.InstrHook(cycle, issue, idx)
			}

			if !haveChunk || b.ChunkLo[bi] != curChunk || b.ChunkHi[bi] != curChunk {
				if st := m.IC.Fetch(cycle, b.FetchAddr[bi], int(b.FetchSize[bi])); st > 0 {
					m.Stats.FetchStalls += st
					if redirected {
						m.Stats.JumpStalls += st
					}
					cycle += st
				}
				curChunk, haveChunk = b.ChunkHi[bi], true
			}
			redirected = false
			m.rec.record(cycle, issue, idx)

			lo, hi := b.OpFirst[bi], b.OpFirst[bi+1]
			// Ops counts primary slot operations regardless of guard —
			// static per instruction, so one add covers the whole packet.
			m.Stats.Ops += int64(hi - lo)
			for u := lo; u < hi; u++ {
				op := &ops[u]
				f := op.Flags
				// Register indices are isa.Reg (< NumRegs = 128) by
				// construction; the &127 masks are free and let the
				// compiler drop the bounds checks on the register file.
				g := regs[op.Guard&127]&1 == 1
				if f&blockcache.FlagGuardInv != 0 {
					g = !g
				}
				if !g {
					continue
				}
				m.Stats.ExecOps++
				// Gathering all four source slots unconditionally is
				// branchless and safe: unused slots index r0. Writes of
				// this same instruction land via the pending ring at
				// issue+latency ≥ issue+1, so fusing gather and execute
				// per op preserves the interpreter's two-phase reads.
				ectx.Src[0] = regs[op.Src[0]&127]
				ectx.Src[1] = regs[op.Src[1]&127]
				ectx.Src[2] = regs[op.Src[2]&127]
				ectx.Src[3] = regs[op.Src[3]&127]
				ectx.Imm = op.Imm

				if f&blockcache.FlagMem != 0 {
					m.curOp = b.Info[u].Name
					var addr uint32
					switch {
					case f&blockcache.FlagAddrRR != 0:
						addr = ectx.Src[0] + ectx.Src[1]
					case f&blockcache.FlagAddrBase != 0:
						addr = ectx.Src[0]
					default:
						addr = ectx.Src[0] + op.Imm
					}
					size := int(op.MemBytes)
					mmio := m.PF != nil && prefetch.IsMMIO(addr)
					if f&blockcache.FlagLoad != 0 {
						m.Stats.LoadOps++
					} else {
						m.Stats.StoreOps++
					}
					if !mmio {
						kind := dcache.Load
						switch {
						case f&blockcache.FlagAlloc != 0:
							kind = dcache.Alloc
						case f&blockcache.FlagStore != 0:
							kind = dcache.Store
						}
						ds := &m.DC.Stats
						pm, pi, pw := ds.StallMiss, ds.StallInFlight, ds.StallCWB
						if st := m.DC.Access(cycle, addr, size, kind); st > 0 {
							m.Stats.DataStalls += st
							m.Stats.DataMissStalls += ds.StallMiss - pm
							m.Stats.DataInFlightStalls += ds.StallInFlight - pi
							m.Stats.DataCWBStalls += ds.StallCWB - pw
							cycle += st
						}
						if f&blockcache.FlagStore != 0 && addr < codeHi && addr+uint32(size) > codeLo {
							m.bc.InvalidateRange(addr, addr+uint32(size))
						}
					}
				}

				if f&blockcache.FlagJump != 0 {
					ectx.Taken = false
					op.Exec(&ectx)
					m.Stats.Jumps++
					if ectx.Taken {
						m.Stats.Taken++
						if redirectAfter >= 0 {
							t := m.trap(TrapDelayViolation, cycle, issue, idx,
								fmt.Sprintf("jump taken inside the delay window of the jump at issue %d", redirectAfter-delay))
							t.Op = b.Info[u].Name
							return t
						}
						ti := op.Target
						if ti < 0 {
							t := m.trap(TrapUnknownLabel, cycle, issue, idx,
								fmt.Sprintf("jump to unknown label %q", b.TargetLabel[u]))
							t.Op = b.Info[u].Name
							return t
						}
						redirectAfter = issue + delay
						redirectTo = int(ti)
					}
				} else {
					op.Exec(&ectx)
				}

				if nd := op.NDest; nd > 0 {
					at := issue + int64(op.Lat)
					pend.add(at, op.Dest[0], ectx.Dest[0])
					if nd > 1 {
						pend.add(at, op.Dest[1], ectx.Dest[1])
					}
				}
			}

			cycle++
			m.Stats.Instrs++
			issue++

			if redirectAfter >= 0 && issue > redirectAfter {
				idx = redirectTo
				redirectAfter = -1
				m.IC.Redirect()
				redirected = true
				haveChunk = false
				break
			}
			idx++
		}
	}
	// Drain in-flight writes so final register state is observable.
	pend.drain(issue, regs)
	m.Stats.Cycles = cycle
	return nil
}
