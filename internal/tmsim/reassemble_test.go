package tmsim_test

import (
	"context"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/mem"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// TestRunFromBinary executes workloads from their decoded binary images
// and compares all memory effects against the directly-compiled run:
// the encoding must carry complete semantics.
func TestRunFromBinary(t *testing.T) {
	p := workloads.Small()
	tgt := config.TM3270()
	for _, name := range []string{"memcpy", "rgb2cmyk", "majority_sel", "cabac_opt_i", "mpeg2_b"} {
		w, err := workloads.ByName(name, p)
		if err != nil {
			t.Fatal(err)
		}
		code, err := sched.Schedule(w.Prog, tgt)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := regalloc.Allocate(w.Prog)
		if err != nil {
			t.Fatal(err)
		}

		// Direct run.
		mem1 := mem.NewFunc()
		if w.Init != nil {
			if err := w.Init(mem1); err != nil {
				t.Fatal(err)
			}
		}
		m1, err := tmsim.New(code, rm, mem1)
		if err != nil {
			t.Fatal(err)
		}
		for v, val := range w.Args {
			m1.SetReg(v, val)
		}
		if err := m1.RunContext(context.Background()); err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}

		// Binary round trip: encode, reassemble, run.
		img := m1.Enc
		code2, rm2, err := encode.Reassemble(img.Bytes, img.Base, len(code.Instrs), tgt)
		if err != nil {
			t.Fatalf("%s reassemble: %v", name, err)
		}
		mem2 := mem.NewFunc()
		if w.Init != nil {
			if err := w.Init(mem2); err != nil {
				t.Fatal(err)
			}
		}
		m2, err := tmsim.New(code2, rm2, mem2)
		if err != nil {
			t.Fatalf("%s machine from binary: %v", name, err)
		}
		// Arguments land in the same physical registers the allocator
		// chose for the original run; the reassembled code's virtual
		// registers are those physical numbers.
		for v, val := range w.Args {
			m2.SetReg(prog.VReg(rm.Reg(v)), val)
		}
		if err := m2.RunContext(context.Background()); err != nil {
			t.Fatalf("%s from binary: %v", name, err)
		}

		if w.Check != nil {
			if err := w.Check(mem2); err != nil {
				t.Fatalf("%s from binary: %v", name, err)
			}
		}
		if addr, diff := mem.Diff(mem1, mem2); diff {
			t.Fatalf("%s: binary run diverges from direct run at %#x", name, addr)
		}
		if m1.Stats.Instrs != m2.Stats.Instrs || m1.Stats.ExecOps != m2.Stats.ExecOps {
			t.Errorf("%s: instruction stream differs: %d/%d instrs, %d/%d ops",
				name, m1.Stats.Instrs, m2.Stats.Instrs, m1.Stats.ExecOps, m2.Stats.ExecOps)
		}
	}
}
