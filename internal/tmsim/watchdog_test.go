package tmsim_test

import (
	"context"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/prog"
	"tm3270/internal/tmsim"
)

// spinProgram loops until i reaches n (never, for n = 0).
func spinProgram(name string, n int32) *prog.Program {
	b := prog.NewBuilder(name)
	i, cond := b.Reg(), b.Reg()
	b.Imm(i, 1)
	b.Label("loop")
	b.AddI(i, i, 1)
	b.NeqI(cond, i, n)
	b.JmpT(cond, "loop")
	return b.MustProgram()
}

func TestMaxInstrsWatchdogTraps(t *testing.T) {
	m := buildMachine(t, spinProgram("spin", 0), config.TM3270(), nil)
	m.MaxInstrs = 1000
	trap := wantTrap(t, m, tmsim.TrapWatchdog)
	if trap.Issue != 1000 {
		t.Errorf("watchdog fired at issue %d, want 1000", trap.Issue)
	}
	if !strings.Contains(trap.Reason, "1000") {
		t.Errorf("reason %q does not name the limit", trap.Reason)
	}
	if len(trap.Recorder) == 0 {
		t.Error("watchdog trap has an empty flight recorder")
	}
}

func TestWatchdogNotTriggeredByNormalRun(t *testing.T) {
	m := buildMachine(t, spinProgram("bounded", 100), config.TM3270(), nil)
	m.MaxInstrs = 100_000
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.Stats.Instrs >= 100_000 {
		t.Errorf("executed %d instructions, watchdog margin exhausted", m.Stats.Instrs)
	}
}

func TestTraceEmitsRecords(t *testing.T) {
	m := buildMachine(t, spinProgram("traced", 50), config.TM3270(), nil)
	var sb strings.Builder
	m.Trace = &sb
	m.TraceLimit = 10
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("trace has %d lines, want 10 (TraceLimit)", len(lines))
	}
	for i, ln := range lines {
		if !strings.HasPrefix(ln, "c") {
			t.Errorf("trace line %d lacks the cycle column: %q", i, ln)
		}
	}
	// Each traced instruction names its issued ops or (nop).
	if !strings.Contains(sb.String(), "iaddi") && !strings.Contains(sb.String(), "iimm") {
		t.Errorf("trace names no operations:\n%s", sb.String())
	}
}

func TestTraceDefaultLimit(t *testing.T) {
	// The default trace limit is 200 instructions.
	m := buildMachine(t, spinProgram("traced_default", 1000), config.TM3270(), nil)
	var sb strings.Builder
	m.Trace = &sb
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 200 {
		t.Errorf("trace has %d lines, want the default limit of 200", len(lines))
	}
	if m.Stats.Instrs <= 200 {
		t.Fatalf("program too short (%d instrs) to exercise the limit", m.Stats.Instrs)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := buildMachine(t, spinProgram("untraced", 50), config.TM3270(), nil)
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
}
