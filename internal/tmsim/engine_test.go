package tmsim_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/prog"
	"tm3270/internal/tmsim"
)

func TestParseEngine(t *testing.T) {
	cases := []struct {
		in   string
		want tmsim.Engine
	}{
		{"", tmsim.EngineBlockCache},
		{"blockcache", tmsim.EngineBlockCache},
		{"interp", tmsim.EngineInterp},
	}
	for _, c := range cases {
		got, err := tmsim.ParseEngine(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := tmsim.ParseEngine("fast"); err == nil {
		t.Error("ParseEngine accepted an unknown selector")
	}
	if tmsim.EngineBlockCache.String() != "blockcache" || tmsim.EngineInterp.String() != "interp" {
		t.Error("Engine.String does not round-trip the selector spellings")
	}
	var zero tmsim.Engine
	if zero != tmsim.EngineBlockCache {
		t.Error("the zero Engine is not the blockcache default")
	}
}

// runBoth executes the program on both engines from identical initial
// state and requires identical architectural results and identical
// cycle/stall accounting. It returns the blockcache machine for
// engine-specific assertions.
func runBothEngines(t *testing.T, build func() *prog.Program, tgt config.Target,
	setup func(*tmsim.Machine)) *tmsim.Machine {
	t.Helper()
	run := func(eng tmsim.Engine) *tmsim.Machine {
		m := buildMachine(t, build(), tgt, nil)
		m.Engine = eng
		if setup != nil {
			setup(m)
		}
		if err := m.RunContext(context.Background()); err != nil {
			t.Fatalf("%v run: %v", eng, err)
		}
		if m.EngineUsed != eng {
			t.Fatalf("EngineUsed = %v, want %v", m.EngineUsed, eng)
		}
		return m
	}
	ref := run(tmsim.EngineInterp)
	fast := run(tmsim.EngineBlockCache)

	if rs, fs := ref.RegSnapshot(), fast.RegSnapshot(); rs != fs {
		for i := range rs {
			if rs[i] != fs[i] {
				t.Errorf("r%d = %#x (interp) vs %#x (blockcache)", i, rs[i], fs[i])
			}
		}
	}
	type split struct{ cycles, instrs, ops, fetch, jump, dmiss, dinfl, dcwb int64 }
	stalls := func(m *tmsim.Machine) split {
		s := &m.Stats
		return split{s.Cycles, s.Instrs, s.Ops, s.FetchStalls, s.JumpStalls,
			s.DataMissStalls, s.DataInFlightStalls, s.DataCWBStalls}
	}
	if rs, fs := stalls(ref), stalls(fast); rs != fs {
		t.Errorf("stat split diverged:\n  interp     %+v\n  blockcache %+v", rs, fs)
	}
	return fast
}

// TestCrossBlockDelaySlotRedirect: a translated block ends at its
// jump-carrying instruction by construction, so every taken loop
// branch redirects out of one block while its delay slots execute at
// the head of the next — the redirect state must survive the block
// switch with the architectural results and the cycle/stall split
// identical to the interpreter's.
func TestCrossBlockDelaySlotRedirect(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("crossblock")
		i, cond, acc := b.Reg(), b.Reg(), b.Reg()
		b.Imm(i, 0)
		b.Imm(acc, 0)
		b.Label("loop")
		b.AddI(i, i, 1)
		b.Add(acc, acc, i)
		b.NeqI(cond, i, 300)
		b.JmpT(cond, "loop")
		b.AddI(acc, acc, 7) // tail: lives in the next block, runs in the delay window
		return b.MustProgram()
	}
	for _, tgt := range []config.Target{config.TM3260(), config.TM3270()} {
		fast := runBothEngines(t, build, tgt, nil)
		bc := fast.BlockCacheStats()
		if bc.Translated < 2 {
			t.Errorf("%s: %d blocks translated, want >= 2 (loop + tail)", tgt.Name, bc.Translated)
		}
		if bc.Hits < 100 {
			t.Errorf("%s: %d cache hits over 300 iterations, the loop is not reusing its block", tgt.Name, bc.Hits)
		}
	}
}

// TestSMCInvalidationDropsBlocks: a store landing in the encoded code
// range must invalidate the overlapping translations — including the
// block being executed — and the run must retranslate and complete
// with results identical to the interpreter's.
func TestSMCInvalidationDropsBlocks(t *testing.T) {
	var base prog.VReg
	build := func() *prog.Program {
		b := prog.NewBuilder("smc")
		i, cond, v := b.Reg(), b.Reg(), b.Reg()
		base = b.Reg()
		b.Imm(i, 0)
		b.Imm(v, 0xdead)
		b.Label("loop")
		b.St32D(base, 0, v) // lands at CodeBase: self-modifying
		b.AddI(i, i, 1)
		b.NeqI(cond, i, 8)
		b.JmpT(cond, "loop")
		return b.MustProgram()
	}
	fast := runBothEngines(t, build, config.TM3270(), func(m *tmsim.Machine) {
		m.SetReg(base, tmsim.CodeBase)
	})
	bc := fast.BlockCacheStats()
	if bc.Invalidations == 0 {
		t.Fatal("stores into the code range invalidated nothing")
	}
	if bc.Translated < 2 {
		t.Errorf("%d translations after %d invalidations, dropped blocks never retranslated",
			bc.Translated, bc.Invalidations)
	}
	// The stored word must actually be in memory at the code address
	// (stores are big-endian: 0x0000dead ends with byte 0xad).
	if got := fast.Mem.ByteAt(tmsim.CodeBase + 3); got != 0xad {
		t.Errorf("code byte after SMC store = %#x, want 0xad", got)
	}
}

func TestObservabilityFallsBackToInterp(t *testing.T) {
	m := buildMachine(t, spinProgram("fallback", 50), config.TM3270(), nil)
	var sb strings.Builder
	m.Trace = &sb // tracing is interpreter-only
	if err := m.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m.EngineUsed != tmsim.EngineInterp {
		t.Errorf("EngineUsed = %v, want interp fallback under tracing", m.EngineUsed)
	}
	if m.FallbackRuns != 1 {
		t.Errorf("FallbackRuns = %d, want 1", m.FallbackRuns)
	}
	if bc := m.BlockCacheStats(); bc.Translated != 0 {
		t.Errorf("fallback run still translated %d blocks", bc.Translated)
	}

	// An explicit interp selection is not a fallback.
	m2 := buildMachine(t, spinProgram("explicit", 50), config.TM3270(), nil)
	m2.Engine = tmsim.EngineInterp
	if err := m2.RunContext(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if m2.FallbackRuns != 0 {
		t.Errorf("explicit interp counted %d fallbacks", m2.FallbackRuns)
	}
}

// TestWatchdogParityMidBlock: the instruction-count watchdog must fire
// at the same issue on both engines even when the limit lands in the
// middle of a translated block.
func TestWatchdogParityMidBlock(t *testing.T) {
	for _, eng := range []tmsim.Engine{tmsim.EngineInterp, tmsim.EngineBlockCache} {
		m := buildMachine(t, spinProgram("wd", 0), config.TM3270(), nil)
		m.Engine = eng
		m.MaxInstrs = 777 // deliberately not a block or poll boundary
		trap := wantTrap(t, m, tmsim.TrapWatchdog)
		if trap.Issue != 777 {
			t.Errorf("%v: watchdog fired at issue %d, want 777", eng, trap.Issue)
		}
	}
}

func TestCancellationParity(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []tmsim.Engine{tmsim.EngineInterp, tmsim.EngineBlockCache} {
		m := buildMachine(t, spinProgram("cancel", 0), config.TM3270(), nil)
		m.Engine = eng
		m.MaxInstrs = 1 << 40
		err := m.RunContext(ctx)
		var trap *tmsim.TrapError
		if !errors.As(err, &trap) || trap.Kind != tmsim.TrapCanceled {
			t.Fatalf("%v: canceled run returned %v, want TrapCanceled", eng, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: trap does not unwrap to context.Canceled", eng)
		}
	}
}

// TestTrapParityMidBlock: a precise memory trap must surface
// identically from the middle of a translated block.
func TestTrapParityMidBlock(t *testing.T) {
	build := func() *prog.Program {
		b := prog.NewBuilder("trapmid")
		a, v := b.Reg(), b.Reg()
		b.Imm(a, 0x4000_0000)
		b.AddI(a, a, 4)
		b.Ld32D(v, a, 0) // strict mode: unmapped
		b.St32D(a, 4, v)
		return b.MustProgram()
	}
	var traps [2]*tmsim.TrapError
	for i, eng := range []tmsim.Engine{tmsim.EngineInterp, tmsim.EngineBlockCache} {
		m := buildMachine(t, build(), config.TM3270(), nil)
		m.Engine = eng
		m.StrictMem = true
		traps[i] = wantTrap(t, m, tmsim.TrapUnmappedLoad)
	}
	if traps[0].Addr != traps[1].Addr || traps[0].Issue != traps[1].Issue || traps[0].Cycle != traps[1].Cycle {
		t.Errorf("trap location diverged: interp addr=%#x issue=%d cycle=%d, blockcache addr=%#x issue=%d cycle=%d",
			traps[0].Addr, traps[0].Issue, traps[0].Cycle,
			traps[1].Addr, traps[1].Issue, traps[1].Cycle)
	}
}
