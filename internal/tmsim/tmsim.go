// Package tmsim is the TM3270 processor model: it executes scheduled
// VLIW code with exact functional semantics and cycle-level timing.
//
// Timing follows the TriMedia execution model: the pipeline is fully
// exposed, so a correct schedule never interlocks — one VLIW instruction
// issues per cycle, and all dynamic stalls come from the memory system
// (instruction fetch, data-cache misses, bus occupancy). Register
// results commit `latency` instructions after issue, which the
// simulator honors literally: a schedule that violates a latency reads
// a stale value here and is caught by the differential tests against
// the sequential reference interpreter.
package tmsim

import (
	"context"
	"fmt"
	"io"
	"time"

	"tm3270/internal/blockcache"
	"tm3270/internal/config"
	"tm3270/internal/dcache"
	"tm3270/internal/encode"
	"tm3270/internal/icache"
	"tm3270/internal/isa"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/telemetry"
)

// CodeBase is the byte address where kernels are linked.
const CodeBase = 0x0100_0000

// Stats is the execution report. The stall counters split every
// non-issue cycle by cause: FetchStalls and DataStalls are totals, and
// the component counters below them are disjoint, so
//
//	Cycles == Instrs + FetchStalls + DataStalls
//	FetchStalls == (FetchStalls - JumpStalls) + JumpStalls
//	DataStalls == DataMissStalls + DataInFlightStalls + DataCWBStalls
//
// hold for every completed run (asserted by the telemetry tests).
type Stats struct {
	Instrs   int64 // VLIW instructions issued
	Ops      int64 // operations issued (pad NOPs excluded)
	ExecOps  int64 // operations whose guard enabled execution
	Cycles   int64 // total cycles including stalls
	Jumps    int64
	Taken    int64
	LoadOps  int64
	StoreOps int64

	FetchStalls int64 // instruction-fetch stalls, jump penalty included
	JumpStalls  int64 // fetch stalls on the first fetch after a taken jump

	DataStalls         int64 // data-side stalls (total)
	DataMissStalls     int64 // servicing demand misses and merge fetches
	DataInFlightStalls int64 // waiting on lines already in flight (partial hits)
	DataCWBStalls      int64 // cache-write-buffer backpressure
}

// OPI is the effective operations per VLIW instruction.
func (s *Stats) OPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.ExecOps) / float64(s.Instrs)
}

// CPI is cycles per VLIW instruction.
func (s *Stats) CPI() float64 {
	if s.Instrs == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instrs)
}

// Seconds converts cycles to wall-clock time at the target frequency.
func (s *Stats) Seconds(t *config.Target) float64 {
	return float64(s.Cycles) / (float64(t.FreqMHz) * 1e6)
}

// Machine is one processor instance with loaded code.
type Machine struct {
	Code   *sched.Code
	RegMap *regalloc.Map
	Enc    *encode.Encoded
	Target config.Target

	Mem *mem.Func
	BIU *mem.BIU
	IC  *icache.ICache
	DC  *dcache.DCache
	PF  *prefetch.Unit

	regs isa.RegFile
	pend []pendWrite

	// MaxInstrs aborts runaway executions (0 = default limit) with a
	// watchdog trap.
	MaxInstrs int64

	// Deadline aborts executions exceeding a wall-clock budget with a
	// deadline trap (0 = no deadline). It backstops MaxInstrs against
	// schedules that stall rather than spin.
	Deadline time.Duration

	// StrictMem, when set, traps loads that touch bytes never written
	// (instead of silently reading zeroes) and stores into the reserved
	// null page. Validity is tracked per byte, matching the reference
	// model's strict memory (the strict co-simulation test holds the
	// two models to identical trap behaviour).
	StrictMem bool

	// RecorderDepth sets the flight-recorder length (0 = default).
	RecorderDepth int

	// InstrHook, when non-nil, is called at every instruction boundary
	// after in-flight register writes due at that boundary have
	// committed and before the instruction executes. The differential
	// harness uses it to step a reference model in lockstep and compare
	// architectural state; RegSnapshot exposes that state.
	InstrHook func(cycle, issue int64, idx int)

	// Trace, when non-nil, receives a one-line record per issued
	// instruction for the first TraceLimit instructions (default 200):
	// cycle, instruction index, and the operations issued.
	Trace      io.Writer
	TraceLimit int64

	// Events, when non-nil, receives the structured event trace (set it
	// via SetEventTrace so the cache and bus models emit too). Per-slot
	// issue events stop after TraceLimit instructions (default 10000
	// here — stall and memory-system events continue for the whole run).
	Events *telemetry.Trace

	// Profile, when non-nil, attributes every cycle to its instruction
	// index by cause (EnableProfile allocates it).
	Profile *telemetry.Profile

	// Engine selects the execution engine; the zero value is the
	// blockcache fast path. See Engine for the fallback rules.
	Engine Engine

	// EngineUsed records the engine that actually executed the last
	// RunContext (after any automatic fallback).
	EngineUsed Engine

	// FallbackRuns counts runs that requested the blockcache engine but
	// fell back to the interpreter because an unsupported observability
	// feature was armed.
	FallbackRuns int64

	bc *blockcache.Cache

	rec   *recorder
	curOp string // mnemonic of the memory op in flight (trap context)

	Stats Stats
}

type pendWrite struct {
	at  int64 // issue index at which the write commits
	reg isa.Reg
	val uint32
}

// New schedules nothing itself: it takes scheduled code, allocates an
// encoding at CodeBase and builds the memory system of the code's
// target around the given memory image.
func New(code *sched.Code, rm *regalloc.Map, image *mem.Func) (*Machine, error) {
	enc, err := encode.Encode(code, rm, CodeBase)
	if err != nil {
		return nil, err
	}
	return Load(code, rm, enc, image), nil
}

// Load builds a machine around an already-encoded image (a compile
// artifact), skipping re-encoding. The code, register map and encoding
// are read-only during execution, so one artifact may back any number
// of concurrent machines; only the memory image is private per machine.
func Load(code *sched.Code, rm *regalloc.Map, enc *encode.Encoded, image *mem.Func) *Machine {
	t := code.Target
	m := &Machine{
		Code:   code,
		RegMap: rm,
		Enc:    enc,
		Target: t,
		Mem:    image,
		BIU:    mem.NewBIU(&t),
	}
	m.IC = icache.New(&t, m.BIU)
	if t.HasRegionPrefetch {
		m.PF = &prefetch.Unit{}
	}
	m.DC = dcache.New(&t, m.BIU, m.PF)
	return m
}

// SetReg initializes a kernel argument register.
func (m *Machine) SetReg(v prog.VReg, val uint32) {
	m.regs.Write(m.RegMap.Reg(v), val)
}

// Reg reads a register by virtual name (results, tests).
func (m *Machine) Reg(v prog.VReg) uint32 { return m.regs.Read(m.RegMap.Reg(v)) }

// RegSnapshot returns the architectural register file with the
// hardwired r0/r1 values materialized (differential testing).
func (m *Machine) RegSnapshot() [isa.NumRegs]uint32 { return m.regs.Snapshot() }

// SetPhysReg initializes a physical register directly. The differential
// harness uses it to install arguments already mapped through an
// artifact's register allocation.
func (m *Machine) SetPhysReg(r isa.Reg, v uint32) { m.regs.Write(r, v) }

// busMem routes operation-level memory accesses either to the
// memory-mapped prefetch configuration registers or to the memory image.
// Malformed accesses raise memory traps (as panics converted to
// TrapErrors at the Run boundary, since isa.Memory carries no error
// path — like the precise exceptions of the real load/store unit).
type busMem struct {
	f      *mem.Func
	pf     *prefetch.Unit
	strict bool
}

// nullPageEnd bounds the reserved null page: strict mode treats any
// store below it as a null-pointer-style fault.
const nullPageEnd = 0x1000

func (b busMem) checkMMIO(addr uint32, n int) {
	if !prefetch.IsMMIO(addr) {
		// Accesses straddling the block boundary from below are
		// malformed too.
		if addr < prefetch.MMIOBase && addr+uint32(n) > prefetch.MMIOBase {
			panic(&memTrap{kind: TrapMMIO, addr: addr,
				reason: fmt.Sprintf("%d-byte access straddles the prefetch MMIO block", n)})
		}
		return
	}
	switch {
	case b.pf == nil:
		panic(&memTrap{kind: TrapMMIO, addr: addr,
			reason: "prefetch MMIO access on a target without a region prefetcher"})
	case n != 4:
		panic(&memTrap{kind: TrapMMIO, addr: addr,
			reason: fmt.Sprintf("%d-byte prefetch MMIO access (registers are 32-bit)", n)})
	case addr%4 != 0:
		panic(&memTrap{kind: TrapMMIO, addr: addr,
			reason: "misaligned prefetch MMIO access"})
	}
}

func (b busMem) Load(addr uint32, n int) uint64 {
	b.checkMMIO(addr, n)
	if b.pf != nil && prefetch.IsMMIO(addr) {
		return uint64(b.pf.LoadMMIO(addr))
	}
	if b.strict && !b.f.Defined(addr, n) {
		panic(&memTrap{kind: TrapUnmappedLoad, addr: addr,
			reason: fmt.Sprintf("%d-byte load touches never-written bytes", n)})
	}
	return b.f.Load(addr, n)
}

func (b busMem) Store(addr uint32, n int, v uint64) {
	b.checkMMIO(addr, n)
	if b.pf != nil && prefetch.IsMMIO(addr) {
		b.pf.StoreMMIO(addr, uint32(v))
		return
	}
	if b.strict && addr < nullPageEnd {
		panic(&memTrap{kind: TrapUnmappedStore, addr: addr,
			reason: fmt.Sprintf("%d-byte store into the null page", n)})
	}
	b.f.Store(addr, n, v)
}

// effAddr computes the effective address and size of a memory
// operation given its gathered source values.
func effAddr(op *prog.Op, src *[4]uint32) (uint32, int) {
	info := op.Info()
	switch op.Opcode {
	case isa.OpLD32R, isa.OpLD16R, isa.OpULD16R, isa.OpLD8R, isa.OpULD8R,
		isa.OpSUPERLD32R:
		return src[0] + src[1], info.MemBytes
	case isa.OpLDFRAC8:
		return src[0], info.MemBytes
	default:
		// Displacement forms (loads, stores, allocd).
		return src[0] + op.Imm, info.MemBytes
	}
}

// RunContext executes the loaded kernel to completion on the selected
// Engine (the zero value is the blockcache fast path; a run arming an
// observability feature the fast path cannot serve falls back to the
// interpreter, recorded in EngineUsed and FallbackRuns). Execution
// faults — malformed memory accesses, control-flow violations,
// watchdog and deadline expiry, and any internal panic of the
// simulator core — are returned as a *TrapError carrying the PC,
// cycle, register dump and the flight-recorder tail at the fault.
// The loop polls ctx at the watchdog cadence (every 8192 issued
// instructions) and aborts with a TrapCanceled whose Cause unwraps to
// ctx.Err(), so callers can errors.Is against context.Canceled or
// DeadlineExceeded.
func (m *Machine) RunContext(ctx context.Context) (err error) {
	m.rec = newRecorder(m.RecorderDepth)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		// Locate the fault at the last issued instruction.
		var cycle, issue int64
		idx := -1
		if e, ok := m.rec.last(); ok {
			cycle, issue, idx = e.cycle, e.issue, e.idx
		}
		if mt, ok := r.(*memTrap); ok {
			t := m.trap(mt.kind, cycle, issue, idx, mt.reason)
			t.Addr = mt.addr
			t.Op = m.curOp
			err = t
			return
		}
		t := m.trap(TrapInternal, cycle, issue, idx, fmt.Sprintf("recovered panic: %v", r))
		t.Panic = r
		err = t
	}()

	eng := m.Engine
	if eng == EngineBlockCache && m.fastUnsupported() {
		m.FallbackRuns++
		eng = EngineInterp
	}
	m.EngineUsed = eng
	if eng == EngineBlockCache {
		return m.runFast(ctx)
	}
	return m.runInterp(ctx)
}

// runInterp is the reference execution loop: it walks the scheduled
// code slot by slot, serving every observability hook. The recover
// boundary lives in RunContext.
func (m *Machine) runInterp(ctx context.Context) error {
	maxInstrs := m.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = 2_000_000_000
	}
	start := time.Now()
	bus := busMem{f: m.Mem, pf: m.PF, strict: m.StrictMem}
	delay := int64(m.Target.JumpDelaySlots)

	var (
		cycle         int64
		issue         int64
		idx           int
		redirectAfter int64 = -1
		redirectTo    int
		redirected    bool // next fetch follows a taken-jump redirect
	)
	issueEvents := int64(10_000)
	if m.TraceLimit > 0 {
		issueEvents = m.TraceLimit
	}

	type slotEval struct {
		op      *prog.Op
		ctx     isa.ExecContext
		execute bool
	}
	evals := make([]slotEval, 0, 5)

	for idx < len(m.Code.Instrs) {
		if issue >= maxInstrs {
			return m.trap(TrapWatchdog, cycle, issue, idx,
				fmt.Sprintf("exceeded %d instructions", maxInstrs))
		}
		if issue&0x1fff == 0 {
			if m.Deadline > 0 && time.Since(start) > m.Deadline {
				return m.trap(TrapDeadline, cycle, issue, idx,
					fmt.Sprintf("exceeded wall-clock deadline %v", m.Deadline))
			}
			if cerr := ctx.Err(); cerr != nil {
				t := m.trap(TrapCanceled, cycle, issue, idx,
					fmt.Sprintf("run canceled: %v", cerr))
				t.Cause = cerr
				return t
			}
		}
		// Commit in-flight register writes due at this instruction.
		m.commit(issue)

		if m.InstrHook != nil {
			m.InstrHook(cycle, issue, idx)
		}

		// Instruction fetch. Stalls on the first fetch after a redirect
		// are the dynamic jump penalty (the discarded instruction
		// buffer); the rest are sequential fetch stalls.
		if st := m.IC.Fetch(cycle, m.Enc.Addr[idx], m.Enc.Size[idx]); st > 0 {
			m.Stats.FetchStalls += st
			cause, name := telemetry.CauseFetch, "stall:fetch"
			if redirected {
				m.Stats.JumpStalls += st
				cause, name = telemetry.CauseJump, "stall:jump"
			}
			m.Profile.Add(idx, cause, st)
			if m.Events != nil {
				m.Events.Complete(telemetry.LaneFetch, name, "stall", cycle, st,
					map[string]any{"pc": m.Enc.Addr[idx]})
			}
			cycle += st
		}
		redirected = false
		m.Profile.Add(idx, telemetry.CauseExecute, 1)

		in := &m.Code.Instrs[idx]
		m.rec.record(cycle, issue, idx)

		if m.Trace != nil {
			limit := m.TraceLimit
			if limit == 0 {
				limit = 200
			}
			if issue < limit {
				m.trace(cycle, issue, idx, in)
			}
		}

		// Phase 1: gather operands against pre-instruction state.
		evals = evals[:0]
		for s := 0; s < 5; s++ {
			so := in.Slots[s]
			if so.Op == nil || so.Second {
				continue
			}
			op := so.Op
			info := op.Info()
			m.Stats.Ops++
			g := m.regs.Read(m.RegMap.Reg(op.Guard))&1 == 1
			if info.GuardInverted {
				g = !g
			}
			ev := slotEval{op: op, execute: g}
			ev.ctx.Imm = op.Imm
			ev.ctx.Mem = bus
			for k := 0; k < info.NSrc; k++ {
				ev.ctx.Src[k] = m.regs.Read(m.RegMap.Reg(op.Src[k]))
			}
			if m.Events != nil && issue < issueEvents {
				m.Events.Complete(s+1, info.Name, "issue", cycle, 1,
					map[string]any{"pc": m.Enc.Addr[idx], "exec": g})
			}
			evals = append(evals, ev)
		}

		// Phase 2: execute.
		for i := range evals {
			ev := &evals[i]
			if !ev.execute {
				continue
			}
			m.Stats.ExecOps++
			op := ev.op
			info := op.Info()

			if info.IsLoad || info.IsStore {
				m.curOp = info.Name
				addr, size := effAddr(op, &ev.ctx.Src)
				mmio := m.PF != nil && prefetch.IsMMIO(addr)
				if info.IsLoad {
					m.Stats.LoadOps++
				} else {
					m.Stats.StoreOps++
				}
				if !mmio {
					kind := dcache.Load
					switch {
					case op.Opcode == isa.OpALLOCD:
						kind = dcache.Alloc
					case info.IsStore:
						kind = dcache.Store
					}
					// The cache attributes its stall cycles by cause;
					// the deltas across the access split DataStalls.
					ds := &m.DC.Stats
					pm, pi, pw := ds.StallMiss, ds.StallInFlight, ds.StallCWB
					if st := m.DC.Access(cycle, addr, size, kind); st > 0 {
						m.Stats.DataStalls += st
						m.Stats.DataMissStalls += ds.StallMiss - pm
						m.Stats.DataInFlightStalls += ds.StallInFlight - pi
						m.Stats.DataCWBStalls += ds.StallCWB - pw
						m.Profile.Add(idx, telemetry.CauseDataMiss, ds.StallMiss-pm)
						m.Profile.Add(idx, telemetry.CauseDataInFlight, ds.StallInFlight-pi)
						m.Profile.Add(idx, telemetry.CauseDataCWB, ds.StallCWB-pw)
						cycle += st
					}
				}
			}

			info.Exec(&ev.ctx)

			lat := int64(m.Target.OpLatency(op.Opcode))
			for k := 0; k < info.NDest; k++ {
				m.pend = append(m.pend, pendWrite{
					at:  issue + lat,
					reg: m.RegMap.Reg(op.Dest[k]),
					val: ev.ctx.Dest[k],
				})
			}

			if info.IsJump {
				m.Stats.Jumps++
				if ev.ctx.Taken {
					m.Stats.Taken++
					if redirectAfter >= 0 {
						t := m.trap(TrapDelayViolation, cycle, issue, idx,
							fmt.Sprintf("jump taken inside the delay window of the jump at issue %d", redirectAfter-delay))
						t.Op = op.Info().Name
						return t
					}
					ti, ok := m.Code.Labels[op.Target]
					if !ok {
						t := m.trap(TrapUnknownLabel, cycle, issue, idx,
							fmt.Sprintf("jump to unknown label %q", op.Target))
						t.Op = op.Info().Name
						return t
					}
					redirectAfter = issue + delay
					redirectTo = ti
				}
			}
		}

		cycle++
		m.Stats.Instrs++
		issue++

		if redirectAfter >= 0 && issue > redirectAfter {
			idx = redirectTo
			redirectAfter = -1
			m.IC.Redirect()
			redirected = true
			if m.Events != nil {
				m.Events.Instant(telemetry.LaneFetch, "redirect", "jump", cycle,
					map[string]any{"to": m.Enc.Addr[redirectTo]})
			}
		} else {
			idx++
		}
	}
	// Drain in-flight writes so final register state is observable.
	m.commit(issue + 64)
	m.Stats.Cycles = cycle
	return nil
}

// commit applies pending register writes due at or before the given
// issue index, in insertion order (which is program order thanks to the
// scheduler's WAW discipline).
func (m *Machine) commit(issue int64) {
	if len(m.pend) == 0 {
		return
	}
	kept := m.pend[:0]
	for _, w := range m.pend {
		if w.at <= issue {
			m.regs.Write(w.reg, w.val)
		} else {
			kept = append(kept, w)
		}
	}
	m.pend = kept
}

// trace emits one instruction record.
func (m *Machine) trace(cycle, issue int64, idx int, in *sched.Instr) {
	fmt.Fprintf(m.Trace, "c%-8d i%-6d @%d:", cycle, issue, idx)
	empty := true
	for s := 0; s < 5; s++ {
		so := in.Slots[s]
		if so.Op == nil || so.Second {
			continue
		}
		empty = false
		info := so.Op.Info()
		fmt.Fprintf(m.Trace, " [%d]%s", s+1, info.Name)
	}
	if empty {
		fmt.Fprint(m.Trace, " (nop)")
	}
	fmt.Fprintln(m.Trace)
}
