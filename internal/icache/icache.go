// Package icache models the TM3270 instruction cache: 64 KB, 8-way,
// LRU, with a sequential tag-then-data access pipeline (a power
// optimization; stages I1–I3 of Figure 4) feeding 32-byte aligned
// fetch chunks into the 4-entry instruction buffer.
package icache

import (
	"tm3270/internal/cache"
	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/telemetry"
)

// ChunkBytes is the fetch width: one 32-byte aligned chunk per cycle.
const ChunkBytes = 32

// Stats are the instruction-fetch counters.
type Stats struct {
	Chunks int64
	Hits   int64
	Misses int64
}

// ICache is the instruction-cache timing model.
type ICache struct {
	t   *config.Target
	arr *cache.Cache
	biu *mem.BIU

	// lastChunk short-circuits repeated fetches from the same chunk,
	// standing in for the instruction buffer.
	lastChunk uint32
	haveLast  bool

	// Events, when non-nil, receives miss/refill trace events on the
	// fetch lane.
	Events *telemetry.Trace

	Stats Stats
}

// New builds the model.
func New(t *config.Target, biu *mem.BIU) *ICache {
	return &ICache{t: t, arr: cache.New(t.ICache, false), biu: biu}
}

// Fetch models retrieving the instruction bytes [addr, addr+size) at
// CPU cycle now, returning added stall cycles. The instruction buffer
// absorbs chunk re-fetches; misses stall for the refill.
func (ic *ICache) Fetch(now int64, addr uint32, size int) int64 {
	var stall int64
	first := addr &^ (ChunkBytes - 1)
	last := (addr + uint32(size) - 1) &^ (ChunkBytes - 1)
	for chunk := first; ; chunk += ChunkBytes {
		if !ic.haveLast || ic.lastChunk != chunk {
			ic.haveLast = true
			ic.lastChunk = chunk
			ic.Stats.Chunks++
			stall += ic.fetchChunk(now+stall, chunk)
		}
		if chunk == last {
			break
		}
	}
	return stall
}

func (ic *ICache) fetchChunk(now int64, chunk uint32) int64 {
	lineAddr := ic.arr.LineAddr(chunk)
	if l, hit := ic.arr.LookupTouch(lineAddr); hit {
		ic.Stats.Hits++
		if l.ReadyAt > now {
			return l.ReadyAt - now
		}
		return 0
	}
	ic.Stats.Misses++
	v := ic.arr.Victim(lineAddr)
	ic.arr.Fill(v, lineAddr, true)
	done := ic.biu.Read(ic.t, now, ic.t.ICache.LineBytes, false)
	ic.Events.Complete(telemetry.LaneFetch, "imiss-refill", "imiss",
		now, done-now, map[string]any{"line": lineAddr})
	return done - now
}

// Redirect informs the fetch model of a taken branch (the instruction
// buffer contents are discarded).
func (ic *ICache) Redirect() { ic.haveLast = false }
