package icache_test

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/icache"
	"tm3270/internal/mem"
)

func newIC() (*icache.ICache, config.Target) {
	t := config.TM3270()
	return icache.New(&t, mem.NewBIU(&t)), t
}

func TestColdMissThenWarm(t *testing.T) {
	ic, _ := newIC()
	if s := ic.Fetch(0, 0x1000, 8); s <= 0 {
		t.Fatal("cold fetch must stall")
	}
	if ic.Stats.Misses != 1 {
		t.Errorf("misses = %d", ic.Stats.Misses)
	}
	ic.Redirect()
	if s := ic.Fetch(1000, 0x1000, 8); s != 0 {
		t.Errorf("warm fetch stall = %d", s)
	}
}

func TestInstructionBufferAbsorbsSameChunk(t *testing.T) {
	ic, _ := newIC()
	ic.Fetch(0, 0x1000, 8)
	chunks := ic.Stats.Chunks
	// Next instruction in the same 32-byte chunk: no new chunk fetch.
	ic.Fetch(10, 0x1008, 8)
	if ic.Stats.Chunks != chunks {
		t.Error("fetch within the current chunk must not re-access the cache")
	}
	// Crossing into the next chunk fetches one more.
	ic.Fetch(20, 0x101e, 8)
	if ic.Stats.Chunks != chunks+1 {
		t.Errorf("chunk count = %d, want %d", ic.Stats.Chunks, chunks+1)
	}
}

func TestFetchSpanningChunks(t *testing.T) {
	ic, _ := newIC()
	// A 28-byte instruction starting near a chunk end spans two chunks.
	ic.Fetch(0, 0x0ff8, 28)
	if ic.Stats.Chunks != 2 {
		t.Errorf("chunks = %d, want 2", ic.Stats.Chunks)
	}
}

func TestLoopFitsInCache(t *testing.T) {
	ic, _ := newIC()
	// Simulate a 1 KB loop body fetched 100 times: misses only on the
	// first pass (1 KB / 128 B lines = 8 misses).
	now := int64(0)
	for iter := 0; iter < 100; iter++ {
		for a := uint32(0x2000); a < 0x2400; a += 16 {
			now += ic.Fetch(now, a, 16) + 1
		}
		ic.Redirect()
	}
	if ic.Stats.Misses != 8 {
		t.Errorf("misses = %d, want 8 (cold only)", ic.Stats.Misses)
	}
}
