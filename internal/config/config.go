// Package config defines processor target configurations: the TM3270,
// its predecessor the TM3260, and the intermediate configurations A–D
// of the paper's evaluation (Table 6 / Figure 7). The scheduler, the
// cache models and the cycle simulator are all parameterized on a
// Target, mirroring how re-compilation retargets TriMedia source code.
package config

import (
	"fmt"

	"tm3270/internal/isa"
)

// WriteMissPolicy selects the data-cache write-miss behaviour.
type WriteMissPolicy int

const (
	// FetchOnWriteMiss fetches the missing line from memory before
	// writing (TM3260).
	FetchOnWriteMiss WriteMissPolicy = iota
	// AllocateOnWriteMiss allocates the line without fetching it,
	// tracking per-byte validity (TM3270). Reduces write-miss penalty
	// and off-chip bandwidth.
	AllocateOnWriteMiss
)

func (p WriteMissPolicy) String() string {
	if p == AllocateOnWriteMiss {
		return "allocate-on-write-miss"
	}
	return "fetch-on-write-miss"
}

// CacheConfig describes one cache.
type CacheConfig struct {
	SizeBytes int
	LineBytes int
	Ways      int
	WriteMiss WriteMissPolicy // data cache only
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

func (c CacheConfig) String() string {
	return fmt.Sprintf("%dKB/%dB-lines/%d-way", c.SizeBytes/1024, c.LineBytes, c.Ways)
}

// Target is a complete processor configuration.
type Target struct {
	Name    string
	FreqMHz int

	// Pipeline.
	JumpDelaySlots int // 5 on TM3270, 3 on TM3260
	LoadLatency    int // 4 on TM3270, 3 on TM3260

	// Issue constraints.
	LoadSlots        isa.SlotMask // slot 5 only on TM3270; slots 4 and 5 on TM3260
	MaxLoadsPerInstr int

	// HasTM3270Ops enables the TM3270 ISA extensions: two-slot super
	// operations, the CABAC operations and collapsed loads. The
	// Figure 7 evaluation deliberately avoids them ("re-compilation
	// only"); Table 3 and the ablations use them.
	HasTM3270Ops bool

	// HasRegionPrefetch enables the four-region hardware prefetcher.
	HasRegionPrefetch bool

	ICache CacheConfig
	DCache CacheConfig

	// Off-chip memory: a 32-bit DDR SDRAM (two data beats per bus
	// clock) behind the BIU's asynchronous clock-domain crossing.
	MemBusMHz    int
	MemBusBytes  int // bus width in bytes
	MemLatencyNs int // first-access latency (row activate + CAS + BIU)
	// MemOverheadNs is the per-transaction DRAM occupancy beyond data
	// transfer (activate/precharge, turnaround): it bounds the effective
	// bandwidth well below the pin rate, as on real SDRAM.
	MemOverheadNs int

	// CWBEntries sizes the cache write buffer.
	CWBEntries int
}

// OpLatency returns the target's result latency of op: loads take the
// configured load latency (collapsed loads add their two filter stages
// on top of the memory pipeline), everything else its ISA latency.
func (t *Target) OpLatency(op isa.Opcode) int {
	info := isa.Info(op)
	switch {
	case op == isa.OpLDFRAC8:
		return t.LoadLatency + 2 // X5/X6 filter bank behind the load pipe
	case info.IsLoad:
		return t.LoadLatency
	default:
		return info.Latency
	}
}

// Supports reports whether the target implements op.
func (t *Target) Supports(op isa.Opcode) bool {
	info := isa.Info(op)
	if info.TwoSlot || op == isa.OpLDFRAC8 {
		return t.HasTM3270Ops
	}
	return true
}

// CyclesPerLine returns the CPU-cycle cost of transferring one cache
// line of the given size over the memory bus (occupancy, excluding the
// first-access latency).
func (t *Target) CyclesPerLine(lineBytes int) int {
	beats := lineBytes / t.MemBusBytes // DDR: 2 beats per bus clock
	busCycles := (beats + 1) / 2
	return busCyclesToCPU(busCycles, t.MemBusMHz, t.FreqMHz)
}

// MemLatencyCycles returns the first-access memory latency in CPU cycles.
func (t *Target) MemLatencyCycles() int {
	return (t.MemLatencyNs*t.FreqMHz + 999) / 1000
}

func busCyclesToCPU(busCycles, busMHz, cpuMHz int) int {
	return (busCycles*cpuMHz + busMHz - 1) / busMHz
}

// TM3270 returns the full TM3270 target (configuration D of Figure 7).
func TM3270() Target {
	return Target{
		Name:              "TM3270",
		FreqMHz:           350,
		JumpDelaySlots:    5,
		LoadLatency:       4,
		LoadSlots:         isa.Slots(5),
		MaxLoadsPerInstr:  1,
		HasTM3270Ops:      true,
		HasRegionPrefetch: true,
		ICache:            CacheConfig{SizeBytes: 64 << 10, LineBytes: 128, Ways: 8},
		DCache: CacheConfig{SizeBytes: 128 << 10, LineBytes: 128, Ways: 4,
			WriteMiss: AllocateOnWriteMiss},
		MemBusMHz:     200,
		MemBusBytes:   4,
		MemLatencyNs:  60,
		MemOverheadNs: 45,
		CWBEntries:    8,
	}
}

// TM3260 returns the predecessor target (configuration A of Figure 7).
func TM3260() Target {
	return Target{
		Name:             "TM3260",
		FreqMHz:          240,
		JumpDelaySlots:   3,
		LoadLatency:      3,
		LoadSlots:        isa.Slots(4, 5),
		MaxLoadsPerInstr: 2,
		ICache:           CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8},
		DCache: CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Ways: 8,
			WriteMiss: FetchOnWriteMiss},
		MemBusMHz:     200,
		MemBusBytes:   4,
		MemLatencyNs:  60,
		MemOverheadNs: 45,
		CWBEntries:    4,
	}
}

// ConfigA is the TM3260 (Figure 7).
func ConfigA() Target { return TM3260() }

// ConfigB is the TM3270 design with TM3260 cache capacities at the
// TM3260 frequency of 240 MHz (Figure 7).
func ConfigB() Target {
	t := TM3270()
	t.Name = "B (TM3270 core, 16KB D$, 240MHz)"
	t.FreqMHz = 240
	t.DCache.SizeBytes = 16 << 10
	return t
}

// ConfigC is configuration B at the TM3270 frequency of 350 MHz.
func ConfigC() Target {
	t := ConfigB()
	t.Name = "C (TM3270 core, 16KB D$, 350MHz)"
	t.FreqMHz = 350
	return t
}

// ConfigD is the TM3270.
func ConfigD() Target {
	t := TM3270()
	t.Name = "D (TM3270)"
	return t
}

// Validate sanity-checks the configuration.
func (t *Target) Validate() error {
	for _, c := range []struct {
		name string
		cc   CacheConfig
	}{{"icache", t.ICache}, {"dcache", t.DCache}} {
		if c.cc.LineBytes <= 0 || c.cc.Ways <= 0 || c.cc.SizeBytes <= 0 {
			return fmt.Errorf("%s: non-positive geometry %v", c.name, c.cc)
		}
		if c.cc.SizeBytes%(c.cc.LineBytes*c.cc.Ways) != 0 {
			return fmt.Errorf("%s: size %d not divisible into %d-way sets of %dB lines",
				c.name, c.cc.SizeBytes, c.cc.Ways, c.cc.LineBytes)
		}
		if s := c.cc.Sets(); s&(s-1) != 0 {
			return fmt.Errorf("%s: %d sets is not a power of two", c.name, s)
		}
		if c.cc.LineBytes&(c.cc.LineBytes-1) != 0 {
			return fmt.Errorf("%s: line size %d not a power of two", c.name, c.cc.LineBytes)
		}
	}
	if t.JumpDelaySlots < 0 || t.LoadLatency < 1 || t.FreqMHz <= 0 {
		return fmt.Errorf("%s: bad pipeline parameters", t.Name)
	}
	if t.LoadSlots.Count() == 0 {
		return fmt.Errorf("%s: no load slots", t.Name)
	}
	return nil
}
