package config_test

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/isa"
)

// TestTable6Characteristics pins the TM3260/TM3270 differences of
// Table 6 of the paper.
func TestTable6Characteristics(t *testing.T) {
	a, d := config.TM3260(), config.TM3270()

	if a.FreqMHz != 240 || d.FreqMHz != 350 {
		t.Errorf("frequencies %d/%d, want 240/350", a.FreqMHz, d.FreqMHz)
	}
	if a.JumpDelaySlots != 3 || d.JumpDelaySlots != 5 {
		t.Errorf("delay slots %d/%d, want 3/5", a.JumpDelaySlots, d.JumpDelaySlots)
	}
	if a.LoadLatency != 3 || d.LoadLatency != 4 {
		t.Errorf("load latency %d/%d, want 3/4", a.LoadLatency, d.LoadLatency)
	}
	if a.MaxLoadsPerInstr != 2 || d.MaxLoadsPerInstr != 1 {
		t.Errorf("loads/instr %d/%d, want 2/1", a.MaxLoadsPerInstr, d.MaxLoadsPerInstr)
	}
	if a.DCache.SizeBytes != 16<<10 || a.DCache.LineBytes != 64 || a.DCache.Ways != 8 {
		t.Errorf("TM3260 D$ %v", a.DCache)
	}
	if d.DCache.SizeBytes != 128<<10 || d.DCache.LineBytes != 128 || d.DCache.Ways != 4 {
		t.Errorf("TM3270 D$ %v", d.DCache)
	}
	if a.DCache.WriteMiss != config.FetchOnWriteMiss {
		t.Error("TM3260 must fetch on write miss")
	}
	if d.DCache.WriteMiss != config.AllocateOnWriteMiss {
		t.Error("TM3270 must allocate on write miss")
	}
	if a.ICache.SizeBytes != 64<<10 || a.ICache.LineBytes != 64 {
		t.Errorf("TM3260 I$ %v", a.ICache)
	}
	if d.ICache.SizeBytes != 64<<10 || d.ICache.LineBytes != 128 || d.ICache.Ways != 8 {
		t.Errorf("TM3270 I$ %v", d.ICache)
	}
	if a.HasTM3270Ops || !d.HasTM3270Ops {
		t.Error("ISA extension availability wrong")
	}
	if a.HasRegionPrefetch || !d.HasRegionPrefetch {
		t.Error("region prefetch availability wrong")
	}
}

func TestFigure7Configs(t *testing.T) {
	b, c := config.ConfigB(), config.ConfigC()
	// B and C: TM3270 design with TM3260 cache capacity.
	for _, tc := range []config.Target{b, c} {
		if tc.DCache.SizeBytes != 16<<10 {
			t.Errorf("%s D$ size %d, want 16K", tc.Name, tc.DCache.SizeBytes)
		}
		if tc.DCache.LineBytes != 128 {
			t.Errorf("%s line size %d, want 128 (TM3270 design)", tc.Name, tc.DCache.LineBytes)
		}
		if tc.DCache.WriteMiss != config.AllocateOnWriteMiss {
			t.Errorf("%s must allocate on write miss", tc.Name)
		}
		if tc.JumpDelaySlots != 5 || tc.LoadLatency != 4 {
			t.Errorf("%s pipeline not TM3270-like", tc.Name)
		}
	}
	if b.FreqMHz != 240 || c.FreqMHz != 350 {
		t.Errorf("B/C frequencies %d/%d", b.FreqMHz, c.FreqMHz)
	}
	if config.ConfigA().Name != config.TM3260().Name || config.ConfigD().FreqMHz != 350 {
		t.Error("A/D aliases wrong")
	}
}

func TestValidate(t *testing.T) {
	for _, tgt := range []config.Target{config.TM3260(), config.TM3270(), config.ConfigB(), config.ConfigC()} {
		if err := tgt.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tgt.Name, err)
		}
	}
	bad := config.TM3270()
	bad.DCache.SizeBytes = 100
	if err := bad.Validate(); err == nil {
		t.Error("bogus geometry accepted")
	}
	bad2 := config.TM3270()
	bad2.LoadSlots = 0
	if err := bad2.Validate(); err == nil {
		t.Error("no load slots accepted")
	}
}

func TestOpLatencyPerTarget(t *testing.T) {
	a, d := config.TM3260(), config.TM3270()
	if a.OpLatency(isa.OpLD32D) != 3 || d.OpLatency(isa.OpLD32D) != 4 {
		t.Error("load latencies not target-specific")
	}
	if d.OpLatency(isa.OpLDFRAC8) != 6 {
		t.Errorf("ld_frac8 latency %d, want 6 (X1..X6)", d.OpLatency(isa.OpLDFRAC8))
	}
	if d.OpLatency(isa.OpIADD) != 1 || d.OpLatency(isa.OpIMUL) != 3 {
		t.Error("ALU/mul latencies wrong")
	}
}

func TestSupports(t *testing.T) {
	a, d := config.TM3260(), config.TM3270()
	for _, op := range []isa.Opcode{isa.OpSUPERDUALIMIX, isa.OpSUPERLD32R,
		isa.OpSUPERCABACCTX, isa.OpSUPERCABACSTR, isa.OpLDFRAC8} {
		if a.Supports(op) {
			t.Errorf("TM3260 claims to support %v", op)
		}
		if !d.Supports(op) {
			t.Errorf("TM3270 does not support %v", op)
		}
	}
	if !a.Supports(isa.OpIADD) || !a.Supports(isa.OpLD32D) {
		t.Error("TM3260 must support the base ISA")
	}
}

func TestMemoryTimingMonotonicity(t *testing.T) {
	d := config.TM3270()
	if d.CyclesPerLine(128) <= 0 {
		t.Error("line transfer cost must be positive")
	}
	// Higher CPU frequency means more CPU cycles per (fixed-speed) bus
	// transfer.
	b := config.ConfigB() // 240 MHz
	if d.CyclesPerLine(128) <= b.CyclesPerLine(128) {
		t.Error("350 MHz core must see more cycles per transfer than 240 MHz")
	}
}
