// Package regalloc assigns the virtual registers of a kernel to the 128
// physical registers of the unified register file.
//
// The TM3270's register file is large precisely so that media kernels
// keep their whole working set in registers without spilling (Section 1
// of the paper). The allocator exploits that: every live virtual
// register gets its own physical register, densely packed above the two
// hardwired registers. Allocation fails — loudly, never by silent
// spilling — if a kernel exceeds the 126 assignable registers, which is
// the same discipline the TriMedia compiler's register pressure model
// enforces on hand-tuned kernels.
package regalloc

import (
	"fmt"

	"tm3270/internal/isa"
	"tm3270/internal/prog"
)

// Map is an allocation of virtual to physical registers.
type Map struct {
	// Phys[v] is the physical register of virtual register v. Entries
	// for never-used virtual registers are valid but arbitrary.
	Phys []isa.Reg
	// Used is the number of distinct physical registers assigned,
	// including the two hardwired ones.
	Used int
}

// Reg returns the physical register of v.
func (m *Map) Reg(v prog.VReg) isa.Reg { return m.Phys[v] }

// Allocate assigns a physical register to every virtual register of the
// program. Unused virtual registers receive one too, so that kernel
// argument registers set before the first instruction always have a
// physical home.
func Allocate(p *prog.Program) (*Map, error) {
	if p.NumVRegs > isa.NumRegs {
		return nil, fmt.Errorf("regalloc %s: register pressure exceeds the %d-entry register file (%d virtual registers)",
			p.Name, isa.NumRegs, p.NumVRegs)
	}
	m := &Map{Phys: make([]isa.Reg, p.NumVRegs), Used: p.NumVRegs}
	m.Phys[prog.Zero] = isa.R0
	m.Phys[prog.One] = isa.R1
	for v := prog.VReg(2); int(v) < p.NumVRegs; v++ {
		m.Phys[v] = isa.Reg(v)
	}
	return m, nil
}
