package regalloc_test

import (
	"testing"

	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/workloads"
)

func TestAllocatePinsHardwired(t *testing.T) {
	b := prog.NewBuilder("t")
	x := b.Reg()
	b.Add(x, prog.Zero, prog.One)
	p := b.MustProgram()
	m, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.Reg(prog.Zero) != isa.R0 || m.Reg(prog.One) != isa.R1 {
		t.Error("hardwired registers not pinned")
	}
	if r := m.Reg(x); r.Hardwired() || !r.Valid() {
		t.Errorf("x allocated to %v", r)
	}
}

func TestAllocateDistinct(t *testing.T) {
	b := prog.NewBuilder("t")
	rs := b.Regs(50)
	for i := 1; i < len(rs); i++ {
		b.Add(rs[i], rs[i-1], rs[i-1])
	}
	p := b.MustProgram()
	m, err := regalloc.Allocate(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[isa.Reg]bool{}
	for _, v := range rs {
		r := m.Reg(v)
		if seen[r] {
			t.Fatalf("physical register %v assigned twice", r)
		}
		seen[r] = true
	}
}

func TestAllocateOverflowFailsLoudly(t *testing.T) {
	b := prog.NewBuilder("huge")
	rs := b.Regs(130)
	for i := 1; i < len(rs); i++ {
		b.Add(rs[i], rs[i-1], rs[i-1])
	}
	if _, err := regalloc.Allocate(b.MustProgram()); err == nil {
		t.Error("130 virtual registers fit a 128-entry file?")
	}
}

func TestPressureStraightLine(t *testing.T) {
	// a and b live together, then only c: max 2.
	b := prog.NewBuilder("p")
	x, y, z := b.Reg(), b.Reg(), b.Reg()
	b.Imm(x, 1)
	b.Imm(y, 2)
	b.Add(z, x, y)
	b.Add(z, z, z)
	if got := regalloc.Pressure(b.MustProgram()); got != 2 {
		t.Errorf("pressure = %d, want 2", got)
	}
}

func TestPressureLoopCarried(t *testing.T) {
	// acc, i, base stay live across the back edge.
	b := prog.NewBuilder("p")
	base, acc, i, v, c := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Imm(acc, 0)
	b.Imm(i, 0)
	b.Label("l")
	b.Ld32R(v, base, i)
	b.Add(acc, acc, v)
	b.AddI(i, i, 4)
	b.LesI(c, i, 64)
	b.JmpT(c, "l")
	b.St32D(base, 0, acc)
	got := regalloc.Pressure(b.MustProgram())
	// base, acc, i live throughout; v and c briefly: peak 5.
	if got < 4 || got > 6 {
		t.Errorf("pressure = %d, want ~5", got)
	}
}

func TestPressureGuardedDefDoesNotKill(t *testing.T) {
	// r = a; if g: r = b; use r — a must stay live across the guarded
	// def (the merge keeps the old value reachable).
	b := prog.NewBuilder("p")
	g, a, bb, r, out := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
	b.Mov(r, a)
	b.Mov(r, bb).WithGuard(g)
	b.Add(out, r, r)
	got := regalloc.Pressure(b.MustProgram())
	// At entry: a, bb, g all live simultaneously.
	if got < 3 {
		t.Errorf("pressure = %d, want >= 3 (guarded def must not kill)", got)
	}
}

// TestKernelPressureFitsRegisterFile quantifies the paper's Section 1
// claim: every evaluation kernel's working set fits the 128-entry file
// with no spilling.
func TestKernelPressureFitsRegisterFile(t *testing.T) {
	p := workloads.Small()
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, p)
		if err != nil {
			t.Fatal(err)
		}
		pr := regalloc.Pressure(w.Prog)
		if pr > isa.NumRegs-2 {
			t.Errorf("%s: peak register pressure %d exceeds the %d allocatable registers",
				name, pr, isa.NumRegs-2)
		}
		t.Logf("%-14s peak live registers: %d", name, pr)
	}
}
