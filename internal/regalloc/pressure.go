package regalloc

import (
	"tm3270/internal/prog"
)

// Pressure computes the maximum number of simultaneously live virtual
// registers in a program (the two hardwired registers excluded) via
// classic backward liveness dataflow over the control-flow graph.
//
// This is the quantity the TM3270's 128-entry unified register file is
// sized for: Section 1 argues media kernels keep their whole working
// set in registers, avoiding spill loads and stores. The test suite
// asserts every evaluation kernel stays below the hardware limit.
func Pressure(p *prog.Program) int {
	n := len(p.Blocks)
	succ := make([][]int, n)
	for i, b := range p.Blocks {
		// Conservative CFG: every block may fall through (even an
		// unconditional jump is guarded), plus its branch target.
		if i+1 < n {
			succ[i] = append(succ[i], i+1)
		}
		if j := b.Jump(); j != nil {
			if ti, ok := p.BlockIndex(j.Target); ok {
				succ[i] = append(succ[i], ti)
			}
		}
	}

	liveIn := make([]map[prog.VReg]bool, n)
	liveOut := make([]map[prog.VReg]bool, n)
	for i := range liveIn {
		liveIn[i] = map[prog.VReg]bool{}
		liveOut[i] = map[prog.VReg]bool{}
	}

	changed := true
	for changed {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[prog.VReg]bool{}
			for _, s := range succ[i] {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := blockLiveIn(p.Blocks[i], out)
			if len(out) != len(liveOut[i]) || len(in) != len(liveIn[i]) {
				changed = true
			}
			liveOut[i], liveIn[i] = out, in
		}
	}

	// Second pass: walk each block backwards tracking the live set size.
	max := 0
	for i, b := range p.Blocks {
		live := copySet(liveOut[i])
		if len(live) > max {
			max = len(live)
		}
		for k := len(b.Ops) - 1; k >= 0; k-- {
			stepLiveness(&b.Ops[k], live)
			if len(live) > max {
				max = len(live)
			}
		}
	}
	return max
}

// blockLiveIn computes the live-in set of a block given its live-out.
func blockLiveIn(b *prog.Block, out map[prog.VReg]bool) map[prog.VReg]bool {
	live := copySet(out)
	for k := len(b.Ops) - 1; k >= 0; k-- {
		stepLiveness(&b.Ops[k], live)
	}
	return live
}

// stepLiveness updates the live set across one operation, backwards:
// unguarded definitions kill, then uses (sources and the guard) gen.
// A guarded definition merges with the previous value and therefore
// does not kill.
func stepLiveness(op *prog.Op, live map[prog.VReg]bool) {
	info := op.Info()
	if op.Guard == prog.One {
		for d := 0; d < info.NDest; d++ {
			delete(live, op.Dest[d])
		}
	}
	add := func(v prog.VReg) {
		if !v.Pinned() {
			live[v] = true
		}
	}
	add(op.Guard)
	for s := 0; s < info.NSrc; s++ {
		add(op.Src[s])
	}
}

func copySet(s map[prog.VReg]bool) map[prog.VReg]bool {
	c := make(map[prog.VReg]bool, len(s))
	for v := range s {
		c[v] = true
	}
	return c
}
