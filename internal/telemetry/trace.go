package telemetry

import (
	"encoding/json"
	"io"
)

// Lanes are the fixed Perfetto "thread" ids of the trace. Issue slots
// 1-5 use tids 1-5; the memory system gets one lane per unit.
const (
	LaneFetch    = 6  // instruction fetch stalls and refills
	LaneDCache   = 7  // data-side stalls, misses, refills
	LanePrefetch = 8  // region-prefetch fills in flight
	LaneBus      = 9  // BIU occupancy (reads, copybacks)
	LaneCWB      = 10 // cache-write-buffer parking
)

// laneNames label the lanes in the Perfetto UI via metadata events.
var laneNames = map[int]string{
	1: "slot 1", 2: "slot 2", 3: "slot 3", 4: "slot 4", 5: "slot 5",
	LaneFetch:    "ifetch",
	LaneDCache:   "dcache",
	LanePrefetch: "prefetch",
	LaneBus:      "bus",
	LaneCWB:      "cwb",
}

// Event is one Chrome trace-event record. Timestamps are CPU cycles
// reported in the format's microsecond field: one displayed microsecond
// equals one cycle.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// DefaultMaxEvents bounds an unconfigured trace (~25 MB of JSON).
const DefaultMaxEvents = 250_000

// Trace accumulates trace events. Timestamps are clamped monotonically
// non-decreasing in emission order, which Perfetto requires for sane
// rendering and the tests assert. A nil *Trace is the disabled state:
// every unit guards emission with a nil check.
type Trace struct {
	events  []Event
	max     int
	dropped int64
	lastTS  int64
}

// NewTrace returns a trace capped at maxEvents (<=0 selects
// DefaultMaxEvents). Events past the cap are counted, not stored; the
// drop count is appended as a final instant event on export.
func NewTrace(maxEvents int) *Trace {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	t := &Trace{max: maxEvents}
	for tid, name := range laneNames {
		t.events = append(t.events, Event{
			Name: "thread_name", Ph: "M", TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	// Metadata events carry no timestamps of interest; sort them by tid
	// for deterministic output (map iteration order is random).
	for i := range t.events {
		for j := i + 1; j < len(t.events); j++ {
			if t.events[j].TID < t.events[i].TID {
				t.events[i], t.events[j] = t.events[j], t.events[i]
			}
		}
	}
	return t
}

func (t *Trace) add(e Event) {
	if t == nil {
		return
	}
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	if e.TS < t.lastTS {
		e.TS = t.lastTS
	}
	t.lastTS = e.TS
	t.events = append(t.events, e)
}

// Complete records an interval [ts, ts+dur) on the given lane.
func (t *Trace) Complete(tid int, name, cat string, ts, dur int64, args map[string]any) {
	t.add(Event{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur, TID: tid, Args: args})
}

// Instant records a point event on the given lane.
func (t *Trace) Instant(tid int, name, cat string, ts int64, args map[string]any) {
	t.add(Event{Name: name, Cat: cat, Ph: "i", TS: ts, TID: tid, Args: args})
}

// Len returns the number of stored events (metadata included).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns the number of events discarded past the cap.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events exposes the stored events (tests).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// WriteJSON emits the trace as a Chrome trace-event JSON array, ready
// for Perfetto's "Open trace file" or chrome://tracing.
func (t *Trace) WriteJSON(w io.Writer) error {
	events := t.events
	if t.dropped > 0 {
		events = append(append([]Event(nil), events...), Event{
			Name: "events dropped past cap", Ph: "i", TS: t.lastTS, TID: LaneFetch,
			Args: map[string]any{"dropped": t.dropped},
		})
	}
	return writeEvents(w, events)
}

// writeEvents is the shared Chrome trace-event writer behind
// Trace.WriteJSON and Spans.WriteTrace: one JSON array of events. A
// nil slice still writes a valid (empty) trace.
func writeEvents(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
