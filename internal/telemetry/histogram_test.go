package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	// Bounds are inclusive: a sample exactly on a bound lands in that
	// bound's bucket; one tick past it spills into the next.
	h.Observe(0)
	h.Observe(time.Millisecond)                   // bucket 0 (inclusive)
	h.Observe(time.Millisecond + time.Nanosecond) // bucket 1
	h.Observe(10 * time.Millisecond)              // bucket 1 (inclusive)
	h.Observe(10*time.Millisecond + 1)            // overflow
	h.Observe(time.Hour)                          // overflow
	h.Observe(-time.Second)                       // negative clamps to 0 → bucket 0

	s := h.Snapshot()
	want := []int64{3, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Errorf("Count = %d, want 7", s.Count)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Histogram.Count() = %d, want 7", got)
	}
}

func TestHistogramBucketSumIdentity(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i*i) * time.Microsecond)
	}
	s := h.Snapshot()
	if len(s.Counts) != len(s.BoundsUS)+1 {
		t.Fatalf("len(Counts) = %d, want len(BoundsUS)+1 = %d", len(s.Counts), len(s.BoundsUS)+1)
	}
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != s.Count || sum != 1000 {
		t.Errorf("bucket sum %d, Count %d, want both 1000", sum, s.Count)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond})
	// 100 samples uniformly in (0, 10ms]: p50 interpolates to the
	// middle of the first bucket, p99 near its top.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	if p50 := h.Quantile(0.50); p50 != 5*time.Millisecond {
		t.Errorf("p50 = %v, want 5ms (linear interpolation at half the bucket)", p50)
	}
	if p100 := h.Quantile(1); p100 != 10*time.Millisecond {
		t.Errorf("p100 = %v, want the bucket bound 10ms", p100)
	}

	// Push 100 more into the overflow bucket: quantiles landing there
	// report the last finite bound, never invent values above the ladder.
	for i := 0; i < 100; i++ {
		h.Observe(time.Hour)
	}
	if p99 := h.Quantile(0.99); p99 != 40*time.Millisecond {
		t.Errorf("overflow p99 = %v, want ladder top 40ms", p99)
	}

	// Degenerate inputs.
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty snapshot quantile = %v, want 0", q)
	}
	if q := NewHistogram(nil).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramSnapshotJSONRoundTrip(t *testing.T) {
	h := NewHistogram(nil)
	h.Observe(3 * time.Millisecond)
	h.Observe(700 * time.Millisecond)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s HistogramSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
	if s.Count != 2 || len(s.Counts) != len(s.BoundsUS)+1 {
		t.Errorf("round-trip snapshot malformed: count=%d counts=%d bounds=%d",
			s.Count, len(s.Counts), len(s.BoundsUS))
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Errorf("round-trip quantile = %v, want > 0", q)
	}
}

func TestHistogramRejectsNonAscendingBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]time.Duration{time.Second, time.Millisecond})
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != workers*per || s.Count != workers*per {
		t.Errorf("concurrent observe: bucket sum %d, count %d, want %d", sum, s.Count, workers*per)
	}
}

func TestRegistryHistograms(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(nil)
	r.Histogram("test.latency.stage", h)
	h.Observe(time.Millisecond)
	snaps := r.Histograms()
	if s, ok := snaps["test.latency.stage"]; !ok || s.Count != 1 {
		t.Errorf("registry snapshot = %+v, want test.latency.stage with count 1", snaps)
	}
	if names := r.HistogramNames(); len(names) != 1 || names[0] != "test.latency.stage" {
		t.Errorf("HistogramNames = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate histogram registration did not panic")
		}
	}()
	r.Histogram("test.latency.stage", NewHistogram(nil))
}
