package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets is the fixed bucket ladder of the service
// latency histograms: a 1-2.5-5 decade ladder from 100µs to 30s. The
// ladder is part of the metrics schema — changing it invalidates
// recorded snapshots — so new histogram families should reuse it
// unless their dynamic range genuinely differs.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// Observe from any number of goroutines. A value lands in the first
// bucket whose upper bound is >= the value (bounds are inclusive);
// values above the last bound land in the overflow bucket. Reads go
// through Snapshot, which derives count, sum and p50/p95/p99.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; the last cell is the overflow bucket
	sum    atomic.Int64   // nanoseconds
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds; nil or empty selects DefaultLatencyBuckets. Bounds are
// registration-time wiring, so a non-ascending ladder panics.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending") //tmvet:allow registration-time wiring bug
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one latency sample. Negative values clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[i].Add(1) // i == len(bounds) is the overflow bucket
	h.sum.Add(int64(d))
}

// Count returns the total number of samples (sum of all buckets).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile derives the q-quantile from the current bucket counts.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Snapshot captures the histogram as a consistent-enough point-in-time
// view: Count is defined as the sum of the captured bucket counts, so
// the bucket-sum identity holds in every snapshot by construction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		BoundsUS: make([]int64, len(h.bounds)),
		Counts:   make([]int64, len(h.counts)),
	}
	for i, b := range h.bounds {
		s.BoundsUS[i] = b.Microseconds()
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumUS = time.Duration(h.sum.Load()).Microseconds()
	s.P50US = snapQuantile(h.bounds, s.Counts, s.Count, 0.50).Microseconds()
	s.P95US = snapQuantile(h.bounds, s.Counts, s.Count, 0.95).Microseconds()
	s.P99US = snapQuantile(h.bounds, s.Counts, s.Count, 0.99).Microseconds()
	return s
}

// HistogramSnapshot is the JSON form of one histogram: bucket upper
// bounds in microseconds, per-bucket counts (one extra trailing cell
// for the overflow bucket), and the derived totals and quantiles.
type HistogramSnapshot struct {
	BoundsUS []int64 `json:"bounds_us"`
	Counts   []int64 `json:"counts"`
	Count    int64   `json:"count"`
	SumUS    int64   `json:"sum_us"`
	P50US    int64   `json:"p50_us"`
	P95US    int64   `json:"p95_us"`
	P99US    int64   `json:"p99_us"`
}

// Quantile derives the q-quantile (q in [0,1]) from the snapshot by
// linear interpolation inside the bucket holding the target rank. The
// overflow bucket has no upper bound, so ranks landing there report
// the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	return snapQuantile(boundsFromUS(s.BoundsUS), s.Counts, s.Count, q)
}

func boundsFromUS(us []int64) []time.Duration {
	out := make([]time.Duration, len(us))
	for i, u := range us {
		out[i] = time.Duration(u) * time.Microsecond
	}
	return out
}

func snapQuantile(bounds []time.Duration, counts []int64, total int64, q float64) time.Duration {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(bounds) {
				// Overflow bucket: unbounded above, report the ladder top.
				return bounds[len(bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return bounds[len(bounds)-1]
}
