package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// wellFormed asserts every child interval sits inside its parent's and
// every span is closed, recursively.
func wellFormed(t *testing.T, j *SpanJSON) {
	t.Helper()
	start, end := j.StartUS, j.StartUS+j.DurUS
	for _, c := range j.Children {
		if c.StartUS < start || c.StartUS+c.DurUS > end {
			t.Errorf("child %q [%d,%d] escapes parent %q [%d,%d]",
				c.Name, c.StartUS, c.StartUS+c.DurUS, j.Name, start, end)
		}
		wellFormed(t, c)
	}
}

func TestSpanTreeWellFormed(t *testing.T) {
	epoch := time.Unix(0, 0)
	root := NewSpanAt("request", epoch.Add(time.Millisecond))
	// A child claiming to start before its parent clamps to the parent
	// start; a child left open closes at the parent's end; a child
	// claiming to end after the parent pulls back inside.
	early := root.StartChildAt("early", epoch)
	early.EndAt(epoch.Add(2 * time.Millisecond))
	open := root.StartChildAt("open", epoch.Add(2*time.Millisecond))
	grandchild := open.StartChildAt("grandchild", epoch.Add(3*time.Millisecond))
	late := root.StartChildAt("late", epoch.Add(4*time.Millisecond))
	late.EndAt(epoch.Add(time.Hour))
	_ = grandchild
	root.EndAt(epoch.Add(5 * time.Millisecond))

	j := root.JSON(epoch)
	if j.StartUS != 1000 || j.DurUS != 4000 {
		t.Fatalf("root = [%d,+%d], want [1000,+4000]", j.StartUS, j.DurUS)
	}
	if len(j.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(j.Children))
	}
	wellFormed(t, j)
	if j.Children[1].Children[0].Name != "grandchild" {
		t.Errorf("grandchild missing from open child: %+v", j.Children[1])
	}
}

func TestSpanEndClampsToStart(t *testing.T) {
	epoch := time.Unix(0, 0)
	sp := NewSpanAt("s", epoch.Add(time.Second))
	sp.EndAt(epoch) // backwards end clamps to a zero-width span
	if d := sp.Duration(); d != 0 {
		t.Errorf("Duration = %v, want 0", d)
	}
}

func TestNilSpanNoOps(t *testing.T) {
	var sp *Span
	c := sp.StartChild("child")
	if c != nil {
		t.Fatal("child of nil span must be nil")
	}
	c.Annotate("k", 1)
	c.SetTrack("x")
	c.End()
	if c.JSON(time.Time{}) != nil {
		t.Error("nil span JSON must be nil")
	}
	var s *Spans
	s.Record(NewSpan("r"))
	if s.Len() != 0 || s.Dropped() != 0 {
		t.Error("nil Spans must discard records")
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(buf.String()), "[") {
		t.Errorf("nil Spans trace = %q, want a JSON array", buf.String())
	}
}

func TestSpansCapAndDropCount(t *testing.T) {
	s := NewSpans(2)
	for i := 0; i < 5; i++ {
		sp := NewSpan("r")
		sp.End()
		s.Record(sp)
	}
	if s.Len() != 2 || s.Dropped() != 3 {
		t.Errorf("Len=%d Dropped=%d, want 2 and 3", s.Len(), s.Dropped())
	}
}

func TestSpansWriteTraceTracksAndRows(t *testing.T) {
	s := NewSpans(0)
	epoch := s.Epoch()

	mk := func(track string, startMS, endMS int64) {
		sp := NewSpanAt("request", epoch.Add(time.Duration(startMS)*time.Millisecond))
		sp.SetTrack(track)
		sp.Annotate("request_id", "req-1")
		sp.EndAt(epoch.Add(time.Duration(endMS) * time.Millisecond))
		s.Record(sp)
	}
	mk("", 0, 1)       // service track
	mk("sess-a", 0, 5) // overlapping pair: needs two rows
	mk("sess-a", 2, 6)
	mk("sess-a", 7, 8) // fits back on row 1
	mk("sess-b", 0, 1)

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace not a JSON array: %v\n%s", err, buf.String())
	}

	procs := map[int]string{}
	rows := map[int]map[int]int{} // pid → tid → slice count
	for _, e := range events {
		switch e.Ph {
		case "M":
			if e.Name == "process_name" {
				procs[e.PID], _ = e.Args["name"].(string)
			}
		case "X":
			if rows[e.PID] == nil {
				rows[e.PID] = map[int]int{}
			}
			rows[e.PID][e.TID]++
		}
	}
	if procs[0] != "service" || procs[1] != "session sess-a" || procs[2] != "session sess-b" {
		t.Errorf("process names = %v, want service/sess-a/sess-b in track order", procs)
	}
	// sess-a's overlapping requests must occupy two rows, with the
	// third request reusing the first row: 2 slices on row 1, 1 on row 2.
	if got := rows[1]; got[1] != 2 || got[2] != 1 {
		t.Errorf("sess-a row packing = %v, want {1:2, 2:1}", got)
	}
}

func TestSpanConcurrentAnnotateAndExport(t *testing.T) {
	s := NewSpans(0)
	root := NewSpan("request")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.StartChild("stage")
			c.Annotate("i", i)
			c.End()
		}(i)
	}
	// Export concurrently with mutation: must not race (run under
	// -race) and must always see a well-formed prefix.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		s.Record(root)
		s.WriteTrace(&buf)
		root.JSON(s.Epoch())
	}()
	wg.Wait()
	root.End()
	wellFormed(t, root.JSON(s.Epoch()))
}
