package telemetry_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"tm3270/internal/telemetry"
)

func TestRegistrySnapshot(t *testing.T) {
	r := telemetry.NewRegistry()
	var a, b int64 = 3, 4
	r.Counter("unit.a", &a)
	r.Counter("unit.b", &b)
	r.Func("unit.sum", func() int64 { return a + b })

	s := r.Snapshot()
	if s.Get("unit.a") != 3 || s.Get("unit.b") != 4 || s.Get("unit.sum") != 7 {
		t.Fatalf("snapshot = %v", s)
	}
	if s.Sum("unit.a", "unit.b") != 7 {
		t.Errorf("Sum = %d, want 7", s.Sum("unit.a", "unit.b"))
	}

	// The snapshot is a point-in-time copy: later increments must not
	// leak into it.
	a = 100
	if s.Get("unit.a") != 3 {
		t.Error("snapshot not point-in-time")
	}
	if r.Snapshot().Get("unit.a") != 100 {
		t.Error("registry not live")
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back["unit.sum"] != 7 {
		t.Errorf("round-tripped sum = %d", back["unit.sum"])
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := telemetry.NewRegistry()
	var v int64
	r.Counter("dup.name", &v)
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup.name", &v)
}

func TestTraceMonotonicClamp(t *testing.T) {
	tr := telemetry.NewTrace(0)
	tr.Complete(1, "a", "c", 100, 5, nil)
	tr.Instant(2, "b", "c", 50, nil) // out of order: must clamp to 100
	tr.Complete(3, "c", "c", 120, 1, nil)

	var last int64 = -1
	for _, e := range tr.Events() {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("ts %d after %d: not monotonic", e.TS, last)
		}
		last = e.TS
	}
}

func TestTraceCapAndJSONRoundTrip(t *testing.T) {
	tr := telemetry.NewTrace(15)
	for i := 0; i < 100; i++ {
		tr.Instant(1, "e", "c", int64(i), map[string]any{"i": i})
	}
	if tr.Len() > 15 {
		t.Errorf("stored %d events past the cap", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Error("no drops recorded past the cap")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []telemetry.Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace JSON is not a valid event array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace array")
	}
	// The drop marker must ride along in the export.
	found := false
	for _, e := range events {
		if e.Name == "events dropped past cap" {
			found = true
		}
	}
	if !found {
		t.Error("drop marker missing from export")
	}
}

func TestProfileAttribution(t *testing.T) {
	p := telemetry.NewProfile(4)
	p.PCs = []uint32{0x100, 0x104, 0x108, 0x10c}
	p.Add(0, telemetry.CauseExecute, 1)
	p.Add(1, telemetry.CauseExecute, 1)
	p.Add(1, telemetry.CauseDataMiss, 40)
	p.Add(2, telemetry.CauseExecute, 1)
	p.Add(2, telemetry.CauseFetch, 10)
	p.Add(-1, telemetry.CauseExecute, 99) // out of range: ignored
	p.Add(9, telemetry.CauseExecute, 99)

	if got := p.TotalCycles(); got != 53 {
		t.Errorf("total = %d, want 53", got)
	}
	if p.Total(telemetry.CauseExecute) != 3 {
		t.Errorf("execute total = %d", p.Total(telemetry.CauseExecute))
	}
	top := p.TopN(2)
	if len(top) != 2 || top[0].PC != 0x104 || top[0].Cycles != 41 {
		t.Fatalf("TopN = %+v", top)
	}
	var buf bytes.Buffer
	p.Report(&buf, 3)
	if buf.Len() == 0 {
		t.Error("empty report")
	}
}
