// Package telemetry is the observability layer of the processor model:
// a pull-based counter registry unifying every unit's statistics behind
// stable dotted names, a structured event trace in Chrome trace-event
// format (loadable in Perfetto / chrome://tracing), and a per-PC
// cycle-attribution profile.
//
// The design keeps the simulator hot paths free of telemetry cost: units
// increment plain struct fields exactly as before, and the registry
// reads them only when a snapshot is taken. Event tracing is opt-in via
// a nil-checked pointer, so a disabled trace costs one pointer compare
// per would-be event.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Registry maps stable dotted counter names ("dcache.load.miss",
// "prefetch.useful", ...) to live counter sources. Registration happens
// once at machine construction; reads happen only at snapshot time, so
// registered counters add zero cost to the simulation loop.
type Registry struct {
	names     []string
	read      map[string]func() int64
	histNames []string
	hists     map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		read:  make(map[string]func() int64),
		hists: make(map[string]*Histogram),
	}
}

// Counter registers a live int64 counter under the given dotted name.
// Registering a duplicate name panics: names are the stable public
// schema of the simulator and collisions are wiring bugs.
func (r *Registry) Counter(name string, src *int64) {
	r.Func(name, func() int64 { return *src })
}

// Func registers a derived counter computed at snapshot time.
func (r *Registry) Func(name string, f func() int64) {
	if _, dup := r.read[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate counter %q", name)) //tmvet:allow registration-time wiring bug
	}
	r.names = append(r.names, name)
	r.read[name] = f
}

// Histogram registers a latency histogram under the given dotted
// name. Histograms share the counter namespace — a name may carry a
// counter or a histogram, never both — and duplicate registration
// panics for the same reason Func's does.
func (r *Registry) Histogram(name string, h *Histogram) {
	_, dupC := r.read[name]
	_, dupH := r.hists[name]
	if dupC || dupH {
		panic(fmt.Sprintf("telemetry: duplicate histogram %q", name)) //tmvet:allow registration-time wiring bug
	}
	r.histNames = append(r.histNames, name)
	r.hists[name] = h
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	out := append([]string(nil), r.histNames...)
	sort.Strings(out)
	return out
}

// Histograms snapshots every registered histogram at once, keyed by
// dotted name.
func (r *Registry) Histograms() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the registered names in sorted order.
func (r *Registry) Names() []string {
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// Snapshot reads every registered counter at once. The result is a
// stable point-in-time view; two snapshots of identical deterministic
// runs are identical.
func (r *Registry) Snapshot() Snapshot {
	s := make(Snapshot, len(r.names))
	for name, f := range r.read {
		s[name] = f()
	}
	return s
}

// Snapshot is a point-in-time counter dump keyed by dotted name.
type Snapshot map[string]int64

// Get returns the named counter (0 when absent).
func (s Snapshot) Get(name string) int64 { return s[name] }

// Sum adds the named counters.
func (s Snapshot) Sum(names ...string) int64 {
	var t int64
	for _, n := range names {
		t += s[n]
	}
	return t
}

// WriteJSON emits the snapshot as one JSON object with sorted keys
// (encoding/json sorts map keys, so output is deterministic).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
