package telemetry

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Cause classifies where a cycle went. Every simulated cycle is
// attributed to exactly one cause at exactly one PC, so the profile's
// grand total reconciles with the run's cycle count.
type Cause int

const (
	// CauseExecute is the one issue cycle of each VLIW instruction.
	CauseExecute Cause = iota
	// CauseFetch is an instruction-fetch stall on the sequential path.
	CauseFetch
	// CauseJump is a fetch stall on the first fetch after a taken jump
	// (the discarded instruction buffer: the dynamic jump penalty).
	CauseJump
	// CauseDataMiss is a data-side stall servicing a miss (demand fill
	// or merge fetch).
	CauseDataMiss
	// CauseDataInFlight is a data-side stall waiting on a line already
	// in flight (prefetch or write-miss fetch: a partial hit).
	CauseDataInFlight
	// CauseDataCWB is a data-side stall on cache-write-buffer
	// backpressure (every CWB entry occupied).
	CauseDataCWB

	// NumCauses bounds the cause enum.
	NumCauses
)

var causeNames = [NumCauses]string{
	"execute", "fetch", "jump", "data.miss", "data.inflight", "data.cwb",
}

func (c Cause) String() string {
	if c < 0 || c >= NumCauses {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// Profile is a per-PC cycle-attribution histogram: for every VLIW
// instruction of the loaded kernel it splits the cycles spent at that
// PC by cause.
type Profile struct {
	cells [][NumCauses]int64
	// PCs are the code addresses of the instruction indices (set by the
	// machine from its encoding; used only for reporting).
	PCs []uint32
}

// NewProfile allocates a profile over n instruction indices.
func NewProfile(n int) *Profile {
	return &Profile{cells: make([][NumCauses]int64, n)}
}

// Add attributes cycles at the instruction index to a cause. A nil
// profile is the disabled state.
func (p *Profile) Add(idx int, c Cause, cycles int64) {
	if p == nil || idx < 0 || idx >= len(p.cells) {
		return
	}
	p.cells[idx][c] += cycles
}

// Cell returns the per-cause cycles of one instruction index.
func (p *Profile) Cell(idx int) [NumCauses]int64 { return p.cells[idx] }

// Total returns the cycles attributed to one cause across all PCs.
func (p *Profile) Total(c Cause) int64 {
	var t int64
	for i := range p.cells {
		t += p.cells[i][c]
	}
	return t
}

// TotalCycles returns all attributed cycles; it equals the run's cycle
// count when the profile was armed for the whole run.
func (p *Profile) TotalCycles() int64 {
	var t int64
	for c := Cause(0); c < NumCauses; c++ {
		t += p.Total(c)
	}
	return t
}

// Hotspot is one row of the top-N report.
type Hotspot struct {
	Index  int
	PC     uint32
	Cycles int64
	Split  [NumCauses]int64
}

// TopN returns the n instructions with the most attributed cycles,
// busiest first (ties break toward the lower PC, keeping the report
// deterministic).
func (p *Profile) TopN(n int) []Hotspot {
	rows := make([]Hotspot, 0, len(p.cells))
	for i, cell := range p.cells {
		var tot int64
		for _, v := range cell {
			tot += v
		}
		if tot == 0 {
			continue
		}
		h := Hotspot{Index: i, Cycles: tot, Split: cell}
		if i < len(p.PCs) {
			h.PC = p.PCs[i]
		}
		rows = append(rows, h)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cycles != rows[j].Cycles {
			return rows[i].Cycles > rows[j].Cycles
		}
		return rows[i].Index < rows[j].Index
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Report prints the top-n hotspots and the per-cause totals.
func (p *Profile) Report(w io.Writer, n int) {
	total := p.TotalCycles()
	fmt.Fprintf(w, "cycle attribution: %d cycles over %d PCs\n", total, len(p.cells))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "pc\tcycles\t%\t")
	for c := Cause(0); c < NumCauses; c++ {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	for _, h := range p.TopN(n) {
		fmt.Fprintf(tw, "%#08x\t%d\t%.1f\t", h.PC, h.Cycles, 100*float64(h.Cycles)/float64(total))
		for _, v := range h.Split {
			fmt.Fprintf(tw, "%d\t", v)
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "total\t\t\t")
	for c := Cause(0); c < NumCauses; c++ {
		fmt.Fprintf(tw, "%d\t", p.Total(c))
	}
	fmt.Fprintln(tw)
	tw.Flush()
}
