package telemetry

import (
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one node of a request-scoped span tree: a named wall-clock
// interval with key/value annotations and child stages. The serving
// stack builds one tree per request (admit → queue-wait →
// compile → execute → encode-response) and records finished trees into
// a Spans window for Perfetto export.
//
// A nil *Span is the disabled state: every method no-ops (children of
// a nil span are nil), so instrumented code threads spans
// unconditionally and pays one nil check when tracing is off. A span
// may be read (JSON, flatten) while another goroutine is still
// annotating it; all mutation and traversal lock the span.
type Span struct {
	mu       sync.Mutex
	name     string
	track    string // root only: the Perfetto track ("" = the service track)
	start    time.Time
	end      time.Time
	args     map[string]any
	children []*Span
}

// NewSpan starts a root span now.
func NewSpan(name string) *Span { return NewSpanAt(name, time.Now()) }

// NewSpanAt starts a root span at an explicit instant (tests, and
// stages measured before their span object exists, like queue wait).
func NewSpanAt(name string, start time.Time) *Span {
	return &Span{name: name, start: start}
}

// StartChild starts a child stage now.
func (sp *Span) StartChild(name string) *Span {
	return sp.StartChildAt(name, time.Now())
}

// StartChildAt starts a child stage at an explicit instant. Child
// starts clamp into the parent's start so a finished tree is always
// well-formed (every child interval inside its parent's).
func (sp *Span) StartChildAt(name string, start time.Time) *Span {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if start.Before(sp.start) {
		start = sp.start
	}
	c := &Span{name: name, start: start}
	sp.children = append(sp.children, c)
	return c
}

// Annotate attaches one key/value argument to the span.
func (sp *Span) Annotate(key string, v any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.args == nil {
		sp.args = make(map[string]any)
	}
	sp.args[key] = v
}

// SetTrack names the Perfetto track the (root) span renders on —
// the serving stack uses the session id, so a multi-tenant window
// opens with sessions as tracks.
func (sp *Span) SetTrack(track string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.track = track
	sp.mu.Unlock()
}

// End closes the span now.
func (sp *Span) End() { sp.EndAt(time.Now()) }

// EndAt closes the span at an explicit instant. Ends clamp to the
// span's start, still-open children are closed at the parent's end,
// and child ends clamp into the parent's — so an ended span is always
// a well-formed tree regardless of instrumentation races.
func (sp *Span) EndAt(end time.Time) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if end.Before(sp.start) {
		end = sp.start
	}
	sp.end = end
	for _, c := range sp.children {
		c.clampInto(end)
	}
}

// clampInto closes an open child at the parent's end and pulls a
// child end past the parent back inside.
func (sp *Span) clampInto(parentEnd time.Time) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.end.IsZero() || sp.end.After(parentEnd) {
		sp.end = parentEnd
		if sp.end.Before(sp.start) {
			sp.end = sp.start
		}
	}
	for _, c := range sp.children {
		c.clampInto(sp.end)
	}
}

// Duration returns the span's closed length (0 while still open).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.end.IsZero() {
		return 0
	}
	return sp.end.Sub(sp.start)
}

// SpanJSON is the wire form of a span tree, as served by the run-trace
// endpoint. Times are microseconds relative to the recorder epoch.
type SpanJSON struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Args     map[string]any `json:"args,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// JSON converts the tree, timestamping relative to epoch. A still-open
// span reports DurUS 0.
func (sp *Span) JSON(epoch time.Time) *SpanJSON {
	if sp == nil {
		return nil
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	j := &SpanJSON{
		Name:    sp.name,
		StartUS: sp.start.Sub(epoch).Microseconds(),
	}
	if !sp.end.IsZero() {
		j.DurUS = sp.end.Sub(sp.start).Microseconds()
	}
	if len(sp.args) > 0 {
		j.Args = make(map[string]any, len(sp.args))
		for k, v := range sp.args {
			j.Args[k] = v
		}
	}
	for _, c := range sp.children {
		j.Children = append(j.Children, c.JSON(epoch))
	}
	return j
}

// DefaultMaxSpans bounds an unconfigured span window.
const DefaultMaxSpans = 100_000

// Spans is the serving-window span recorder: finished request trees
// accumulate (bounded; excess trees are counted, not stored) and
// export as one Chrome trace-event file where each track — the
// service's, plus one per session — is a Perfetto process and
// overlapping requests pack onto reusable rows. A nil *Spans discards
// every Record.
type Spans struct {
	mu      sync.Mutex
	epoch   time.Time
	max     int
	trees   []*Span
	dropped int64
}

// NewSpans returns a recorder capped at max trees (<=0 selects
// DefaultMaxSpans). The epoch — the zero point of every exported
// timestamp — is the construction instant.
func NewSpans(max int) *Spans {
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Spans{epoch: time.Now(), max: max}
}

// Epoch returns the recorder's timestamp zero point.
func (s *Spans) Epoch() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.epoch
}

// Record stores one finished request tree.
func (s *Spans) Record(root *Span) {
	if s == nil || root == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.trees) >= s.max {
		s.dropped++
		return
	}
	s.trees = append(s.trees, root)
}

// Len returns the number of recorded trees.
func (s *Spans) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.trees)
}

// Dropped returns the number of trees discarded past the cap.
func (s *Spans) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Trees returns a copy of the recorded roots (tests, export).
func (s *Spans) Trees() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.trees...)
}

// WriteTrace exports the window as a Chrome trace-event JSON array
// (the same writer format as Trace.WriteJSON), loadable in Perfetto:
// one process per track, process_name metadata naming it, requests
// greedily packed onto rows so concurrent requests of one session
// render side by side.
func (s *Spans) WriteTrace(w io.Writer) error {
	if s == nil {
		return writeEvents(w, nil)
	}
	s.mu.Lock()
	trees := append([]*Span(nil), s.trees...)
	epoch, dropped := s.epoch, s.dropped
	s.mu.Unlock()

	byTrack := make(map[string][]*Span)
	for _, t := range trees {
		t.mu.Lock()
		track := t.track
		t.mu.Unlock()
		byTrack[track] = append(byTrack[track], t)
	}
	tracks := make([]string, 0, len(byTrack))
	for track := range byTrack {
		tracks = append(tracks, track)
	}
	sort.Strings(tracks) // "" (the service track) sorts first

	var events []Event
	for pid, track := range tracks {
		name := track
		if name == "" {
			name = "service"
		} else {
			name = "session " + name
		}
		events = append(events, Event{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		roots := byTrack[track]
		sort.Slice(roots, func(i, j int) bool {
			return roots[i].startLocked().Before(roots[j].startLocked())
		})
		// Greedy row packing: a request takes the first row free at its
		// start, so a session's concurrent runs spread over exactly as
		// many rows as its peak in-flight depth.
		var rowEnds []time.Time
		for _, root := range roots {
			start, end := root.boundsLocked()
			row := -1
			for i, re := range rowEnds {
				if !re.After(start) {
					row = i
					break
				}
			}
			if row == -1 {
				row = len(rowEnds)
				rowEnds = append(rowEnds, time.Time{})
			}
			rowEnds[row] = end
			root.flatten(epoch, pid, row+1, &events)
		}
	}
	if dropped > 0 {
		events = append(events, Event{
			Name: "span trees dropped past cap", Ph: "i", PID: 0, TID: 1,
			Args: map[string]any{"dropped": dropped},
		})
	}
	return writeEvents(w, events)
}

func (sp *Span) startLocked() time.Time {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.start
}

func (sp *Span) boundsLocked() (time.Time, time.Time) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	end := sp.end
	if end.IsZero() {
		end = sp.start
	}
	return sp.start, end
}

// flatten appends the span and its children as complete ("X") events.
func (sp *Span) flatten(epoch time.Time, pid, tid int, out *[]Event) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	ts := sp.start.Sub(epoch).Microseconds()
	if ts < 0 {
		ts = 0
	}
	var dur int64
	if !sp.end.IsZero() {
		dur = sp.end.Sub(sp.start).Microseconds()
	}
	if dur < 1 {
		dur = 1 // Perfetto collapses zero-width slices; keep them visible
	}
	var args map[string]any
	if len(sp.args) > 0 {
		args = make(map[string]any, len(sp.args))
		for k, v := range sp.args {
			args[k] = v
		}
	}
	*out = append(*out, Event{
		Name: sp.name, Cat: "span", Ph: "X",
		TS: ts, Dur: dur, PID: pid, TID: tid, Args: args,
	})
	for _, c := range sp.children {
		c.flatten(epoch, pid, tid, out)
	}
}
