package runner

import (
	"context"
	"errors"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/workloads"
)

// TestCycleBoundCoversMeasured is the soundness gate of the static WCET
// analysis: for every workload on every target configuration, the
// static cycle bound must be bounded at all and must dominate the
// cycle count tmsim measures for the same binary.
func TestCycleBoundCoversMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates every workload on every target")
	}
	p := workloads.Small()
	for _, tgt := range []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
	} {
		tgt := tgt
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			for _, name := range workloads.Names() {
				w, err := workloads.ByName(name, p)
				if err != nil {
					t.Fatal(err)
				}
				if w.TM3270Only && !tgt.HasRegionPrefetch {
					continue // prefetch workloads trap on a TM3260
				}
				art, err := CompileWorkload(w, tgt)
				var serr *ScheduleError
				if errors.As(err, &serr) {
					continue // TM3270-only workload on an earlier target
				}
				if err != nil {
					t.Fatal(err)
				}
				cb, err := art.CycleBound(&tgt, art.VerifyOptions(w))
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !cb.Bounded {
					t.Errorf("%s on %s: unbounded: %v", name, tgt.Name, cb.Notes)
					continue
				}
				res, err := RunContext(context.Background(), w, tgt, WithArtifact(art))
				if err != nil {
					t.Fatalf("%s on %s: %v", name, tgt.Name, err)
				}
				meas := int64(res.Stats.Cycles)
				if cb.Cycles < meas {
					t.Errorf("%s on %s: static bound %d < measured %d",
						name, tgt.Name, cb.Cycles, meas)
				}
			}
		})
	}
}
