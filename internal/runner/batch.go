package runner

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/telemetry"
	"tm3270/internal/workloads"
)

// Job names one cell of a workload x target matrix.
type Job struct {
	Workload string
	Target   config.Target
}

// JobResult pairs a job with its outcome. On a clean run Err is nil;
// a trap or failed output check sets Err and still carries the partial
// Result (see RunContext); a build/compile failure leaves Result nil.
type JobResult struct {
	Job    Job
	Result *Result
	Err    error
}

// Batch is the concurrent matrix executor: it runs every job through
// RunContext on a bounded worker pool, memoizing compilations in an
// artifact cache and aggregating results in job order.
//
// Determinism: the simulator is deterministic and every run is fully
// isolated (own spec instance, own memory image, own machine, own
// telemetry sink), so the Parallel setting changes wall-clock time and
// nothing else — results are identical to a serial run of the same
// jobs, which the bench golden test asserts byte-for-byte.
type Batch struct {
	// Params scales the workloads (specs are built per run via
	// workloads.ByName, never shared between runs).
	Params workloads.Params
	// Parallel bounds concurrent runs; <=0 selects GOMAXPROCS.
	Parallel int
	// Cache memoizes compile artifacts; nil allocates a private one.
	Cache *Cache
	// Options apply to every run of the batch.
	Options []Option
	// QueueWait, when non-nil, observes each job's time between
	// submission and a worker picking it up — the batch-side half of
	// the service's queue-wait latency attribution.
	QueueWait *telemetry.Histogram
}

// Matrix builds the full cross product of workload names and targets
// in row-major order (all targets of the first workload, then the
// next), matching the serial nesting of the paper's evaluation loops.
func Matrix(names []string, targets []config.Target) []Job {
	jobs := make([]Job, 0, len(names)*len(targets))
	for _, n := range names {
		for _, t := range targets {
			jobs = append(jobs, Job{Workload: n, Target: t})
		}
	}
	return jobs
}

// Run executes the jobs with bounded parallelism and returns their
// results indexed exactly like jobs. Cancellation: a canceled ctx
// aborts in-flight simulations cooperatively (TrapCanceled) and marks
// every queued-but-unstarted job with the context's error immediately —
// no compile, no simulation cycles — so a canceled batch unwinds at
// worker speed, not at queue-drain speed. Run itself always returns
// len(jobs) results, and every error of a job canceled before it ran
// satisfies errors.Is(err, ctx.Err()).
func (b *Batch) Run(ctx context.Context, jobs []Job) []JobResult {
	workers := b.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cache := b.Cache
	if cache == nil {
		cache = NewCache()
	}

	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	pool := NewPool(workers, 0)
	for i := range jobs {
		i := i
		if err := pool.SubmitWait(ctx, func(wait time.Duration) {
			if b.QueueWait != nil {
				b.QueueWait.Observe(wait)
			}
			results[i] = b.runOne(ctx, cache, jobs[i])
		}); err != nil {
			results[i] = JobResult{Job: jobs[i],
				Err: fmt.Errorf("batch: job canceled before start: %w", err)}
		}
	}
	pool.Close()
	return results
}

// runOne executes a single job: artifact from the cache, a fresh spec
// instance for the run's private memory image and check state. A job a
// worker picks up after cancellation is marked canceled without
// compiling or simulating anything.
func (b *Batch) runOne(ctx context.Context, cache *Cache, j Job) JobResult {
	if err := ctx.Err(); err != nil {
		return JobResult{Job: j, Err: fmt.Errorf("batch: job canceled before start: %w", err)}
	}
	art, err := cache.Artifact(j.Workload, b.Params, j.Target)
	if err != nil {
		return JobResult{Job: j, Err: err}
	}
	w, err := workloads.ByName(j.Workload, b.Params)
	if err != nil {
		return JobResult{Job: j, Err: err}
	}
	opts := append(append([]Option(nil), b.Options...), WithArtifact(art))
	res, err := RunContext(ctx, w, j.Target, opts...)
	return JobResult{Job: j, Result: res, Err: err}
}
