package runner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/workloads"
)

// TestCompileScheduleError pins the typed scheduling failure: a
// TM3270-only workload compiled for a TM3260-class target must surface
// a ScheduleError that callers can detect with errors.As.
func TestCompileScheduleError(t *testing.T) {
	w, err := workloads.ByName("cabac_opt_i", workloads.Small())
	if err != nil {
		t.Fatal(err)
	}
	_, err = CompileWorkload(w, config.ConfigA())
	var serr *ScheduleError
	if !errors.As(err, &serr) {
		t.Fatalf("err = %v, want a ScheduleError", err)
	}
	if !strings.HasPrefix(serr.Error(), "schedule: ") {
		t.Errorf("Error() = %q, want a schedule: prefix", serr.Error())
	}
	if serr.Unwrap() == nil {
		t.Error("Unwrap() = nil, want the scheduler's error")
	}
}

// TestVerifyOptionsResolvesLoopBounds checks the label-to-address
// resolution of loop-bound annotations: a source-level label maps to
// its encoded header address. (Unknown labels never get this far — the
// scheduler rejects them.)
func TestVerifyOptionsResolvesLoopBounds(t *testing.T) {
	w, err := workloads.ByName("memset", workloads.Small())
	if err != nil {
		t.Fatal(err)
	}
	w.Prog.LoopBounds = map[string]int{"loop": 12345}
	art, err := CompileWorkload(w, config.ConfigD())
	if err != nil {
		t.Fatal(err)
	}
	opts := art.VerifyOptions(w)
	if len(opts.EntryValues) != len(w.Args) || len(opts.EntryDefined) != len(w.Args) {
		t.Errorf("entry values/defined = %d/%d, want %d of each",
			len(opts.EntryValues), len(opts.EntryDefined), len(w.Args))
	}
	if len(opts.MemMap) != len(w.Regions) {
		t.Errorf("MemMap has %d regions, want %d", len(opts.MemMap), len(w.Regions))
	}
	if len(opts.LoopBounds) != 1 {
		t.Fatalf("LoopBounds = %v, want exactly the resolvable label", opts.LoopBounds)
	}
	idx := art.Code.Labels["loop"]
	if n, ok := opts.LoopBounds[art.Enc.Addr[idx]]; !ok || n != 12345 {
		t.Errorf("LoopBounds = %v, want 12345 at the loop header address", opts.LoopBounds)
	}
}

// TestResultDerivedMetrics covers the wall-clock and power-model views
// of a run result.
func TestResultDerivedMetrics(t *testing.T) {
	w, err := workloads.ByName("memset", workloads.Small())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContext(context.Background(), w, config.ConfigD())
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Seconds(); s <= 0 {
		t.Errorf("Seconds() = %v, want positive", s)
	}
	a := res.Activity()
	if a.Utilization <= 0 || a.OPI <= 0 {
		t.Errorf("Activity() = %+v, want a populated operating point", a)
	}
}
