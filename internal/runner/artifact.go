package runner

import (
	"fmt"

	"tm3270/internal/binverify"
	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Artifact is the complete build product of one compilation: the
// scheduled code, the register allocation and the encoded image, all
// linked at tmsim.CodeBase. An artifact is immutable after Compile and
// safe to share: any number of machines — concurrent ones included —
// can be loaded from the same artifact, since execution only reads it.
type Artifact struct {
	Code   *sched.Code
	RegMap *regalloc.Map
	Enc    *encode.Encoded
}

// ScheduleError marks a scheduling failure: the program cannot be
// scheduled for the target at all (e.g. TM3270-only operations on a
// TM3260), as opposed to later build-stage faults. Callers detect it
// with errors.As to treat target incompatibility as a skip.
type ScheduleError struct{ Err error }

func (e *ScheduleError) Error() string { return "schedule: " + e.Err.Error() }

// Unwrap exposes the scheduler's underlying error.
func (e *ScheduleError) Unwrap() error { return e.Err }

// Compile schedules, verifies, register-allocates and encodes a program
// for a target. It is the single compilation entry point behind the
// public tm3270.Compile and the batch runner's artifact cache.
func Compile(p *prog.Program, t config.Target) (*Artifact, error) {
	code, err := sched.Schedule(p, t)
	if err != nil {
		return nil, &ScheduleError{Err: err}
	}
	if err := sched.Verify(code); err != nil {
		return nil, err
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		return nil, err
	}
	enc, err := encode.Encode(code, rm, tmsim.CodeBase)
	if err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	return &Artifact{Code: code, RegMap: rm, Enc: enc}, nil
}

// CompileWorkload compiles a workload's program for a target, wrapping
// errors with the workload/target pair.
func CompileWorkload(w *workloads.Spec, t config.Target) (*Artifact, error) {
	a, err := Compile(w.Prog, t)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, t.Name, err)
	}
	return a, nil
}

// CodeBytes returns the encoded size of the artifact.
func (a *Artifact) CodeBytes() int { return a.Enc.TotalBytes() }

// SchedInstrs returns the static VLIW instruction count.
func (a *Artifact) SchedInstrs() int { return len(a.Code.Instrs) }

// OPIStatic returns the static operation density of the schedule.
func (a *Artifact) OPIStatic() float64 { return a.Code.OpsPerInstr() }

// EntryRegs maps a workload's argument registers through the
// artifact's allocation — the entry-defined set for static verification.
func (a *Artifact) EntryRegs(args map[prog.VReg]uint32) []isa.Reg {
	var entry []isa.Reg
	for v := range args {
		entry = append(entry, a.RegMap.Reg(v))
	}
	return entry
}

// VerifyOptions builds the full static-verification options for a
// workload: the entry-defined registers and their concrete argument
// values (mapped through the allocation), the workload's declared
// memory map, and any loop-bound annotations resolved from source
// labels to encoded instruction addresses.
func (a *Artifact) VerifyOptions(w *workloads.Spec) *binverify.Options {
	opts := &binverify.Options{
		EntryDefined: a.EntryRegs(w.Args),
		EntryValues:  map[isa.Reg]uint32{},
		MemMap:       w.Regions,
	}
	for v, val := range w.Args {
		opts.EntryValues[a.RegMap.Reg(v)] = val
	}
	if len(w.Prog.LoopBounds) > 0 {
		opts.LoopBounds = map[uint32]int{}
		for label, n := range w.Prog.LoopBounds {
			if idx, ok := a.Code.Labels[label]; ok {
				opts.LoopBounds[a.Enc.Addr[idx]] = n
			}
		}
	}
	return opts
}

// VerifyStatic decodes the encoded image back and runs the
// whole-program static verifier over the machine code a simulator
// would execute. The report carries every diagnostic; the error is
// non-nil when the image does not decode or any error-severity
// diagnostic fired.
func (a *Artifact) VerifyStatic(t *config.Target, opts *binverify.Options) (*binverify.Report, error) {
	dec, err := a.decode()
	if err != nil {
		return nil, err
	}
	rep := binverify.Verify(dec, t, opts)
	if rep.Errors() > 0 {
		return rep, fmt.Errorf("verify: %d error(s), %d warning(s)",
			rep.Errors(), rep.Warnings())
	}
	return rep, nil
}

// CycleBound decodes the encoded image and computes its static
// worst-case cycle bound on the target.
func (a *Artifact) CycleBound(t *config.Target, opts *binverify.Options) (*binverify.CycleBound, error) {
	dec, err := a.decode()
	if err != nil {
		return nil, err
	}
	return binverify.WCET(dec, t, opts), nil
}

func (a *Artifact) decode() ([]encode.DecInstr, error) {
	dec, err := encode.Decode(a.Enc.Bytes, tmsim.CodeBase, len(a.Code.Instrs))
	if err != nil {
		return nil, fmt.Errorf("verify: image does not decode: %w", err)
	}
	return dec, nil
}
