package runner

import (
	"fmt"

	"tm3270/internal/binverify"
	"tm3270/internal/config"
	"tm3270/internal/encode"
	"tm3270/internal/isa"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Artifact is the complete build product of one compilation: the
// scheduled code, the register allocation and the encoded image, all
// linked at tmsim.CodeBase. An artifact is immutable after Compile and
// safe to share: any number of machines — concurrent ones included —
// can be loaded from the same artifact, since execution only reads it.
type Artifact struct {
	Code   *sched.Code
	RegMap *regalloc.Map
	Enc    *encode.Encoded
}

// ScheduleError marks a scheduling failure: the program cannot be
// scheduled for the target at all (e.g. TM3270-only operations on a
// TM3260), as opposed to later build-stage faults. Callers detect it
// with errors.As to treat target incompatibility as a skip.
type ScheduleError struct{ Err error }

func (e *ScheduleError) Error() string { return "schedule: " + e.Err.Error() }

// Unwrap exposes the scheduler's underlying error.
func (e *ScheduleError) Unwrap() error { return e.Err }

// Compile schedules, verifies, register-allocates and encodes a program
// for a target. It is the single compilation entry point behind the
// public tm3270.Compile and the batch runner's artifact cache.
func Compile(p *prog.Program, t config.Target) (*Artifact, error) {
	code, err := sched.Schedule(p, t)
	if err != nil {
		return nil, &ScheduleError{Err: err}
	}
	if err := sched.Verify(code); err != nil {
		return nil, err
	}
	rm, err := regalloc.Allocate(p)
	if err != nil {
		return nil, err
	}
	enc, err := encode.Encode(code, rm, tmsim.CodeBase)
	if err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	return &Artifact{Code: code, RegMap: rm, Enc: enc}, nil
}

// CompileWorkload compiles a workload's program for a target, wrapping
// errors with the workload/target pair.
func CompileWorkload(w *workloads.Spec, t config.Target) (*Artifact, error) {
	a, err := Compile(w.Prog, t)
	if err != nil {
		return nil, fmt.Errorf("%s on %s: %w", w.Name, t.Name, err)
	}
	return a, nil
}

// CodeBytes returns the encoded size of the artifact.
func (a *Artifact) CodeBytes() int { return a.Enc.TotalBytes() }

// SchedInstrs returns the static VLIW instruction count.
func (a *Artifact) SchedInstrs() int { return len(a.Code.Instrs) }

// OPIStatic returns the static operation density of the schedule.
func (a *Artifact) OPIStatic() float64 { return a.Code.OpsPerInstr() }

// EntryRegs maps a workload's argument registers through the
// artifact's allocation — the entry-defined set for static verification.
func (a *Artifact) EntryRegs(args map[prog.VReg]uint32) []isa.Reg {
	var entry []isa.Reg
	for v := range args {
		entry = append(entry, a.RegMap.Reg(v))
	}
	return entry
}

// VerifyStatic decodes the encoded image back and runs the
// whole-program static verifier over the machine code a simulator
// would execute. The report carries every diagnostic; the error is
// non-nil when the image does not decode or any error-severity
// diagnostic fired.
func (a *Artifact) VerifyStatic(t *config.Target, entry []isa.Reg) (*binverify.Report, error) {
	dec, err := encode.Decode(a.Enc.Bytes, tmsim.CodeBase, len(a.Code.Instrs))
	if err != nil {
		return nil, fmt.Errorf("verify: image does not decode: %w", err)
	}
	rep := binverify.Verify(dec, t, &binverify.Options{EntryDefined: entry})
	if rep.Errors() > 0 {
		return rep, fmt.Errorf("verify: %d error(s), %d warning(s)",
			rep.Errors(), rep.Warnings())
	}
	return rep, nil
}
