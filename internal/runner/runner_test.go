package runner_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

func spec(t testing.TB, name string) *workloads.Spec {
	t.Helper()
	w, err := workloads.ByName(name, workloads.Small())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func targets() []config.Target {
	return []config.Target{config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD()}
}

// TestRunContextConcurrentTargets runs the same workload on all four
// configurations concurrently — the race detector's view of the
// instance-scoped design — and checks every run reproduces its serial
// baseline exactly.
func TestRunContextConcurrentTargets(t *testing.T) {
	tgts := targets()
	baseline := make([]tmsim.Stats, len(tgts))
	for i, tgt := range tgts {
		r, err := runner.RunContext(context.Background(), spec(t, "memcpy"), tgt)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = r.Stats
	}

	const rounds = 3 // 4 targets x 3 = 12 concurrent runs
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(tgts))
	for round := 0; round < rounds; round++ {
		for i, tgt := range tgts {
			wg.Add(1)
			go func(i int, tgt config.Target) {
				defer wg.Done()
				w, err := workloads.ByName("memcpy", workloads.Small())
				if err != nil {
					errs <- err
					return
				}
				r, err := runner.RunContext(context.Background(), w, tgt)
				if err != nil {
					errs <- err
					return
				}
				if r.Stats != baseline[i] {
					errs <- errors.New(tgt.Name + ": concurrent run diverged from serial baseline")
				}
			}(i, tgt)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunContextCanceled: a canceled context aborts the run with a
// structured TrapCanceled whose cause chains to context.Canceled.
func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := runner.RunContext(ctx, spec(t, "memcpy"), config.ConfigD())
	if err == nil {
		t.Fatal("canceled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false: %v", err)
	}
	var trap *tmsim.TrapError
	if !errors.As(err, &trap) || trap.Kind != tmsim.TrapCanceled {
		t.Errorf("want TrapCanceled, got %v", err)
	}
	if res == nil || res.Machine == nil {
		t.Error("canceled run must return the partial result for diagnostics")
	}
}

// TestRunContextWatchdog: WithWatchdog bounds issued instructions and
// the partial result still carries machine state and filled telemetry.
func TestRunContextWatchdog(t *testing.T) {
	sink := &runner.Telemetry{}
	res, err := runner.RunContext(context.Background(), spec(t, "memcpy"), config.ConfigD(),
		runner.WithWatchdog(16),
		runner.WithTelemetry(sink))
	var trap *tmsim.TrapError
	if !errors.As(err, &trap) || trap.Kind != tmsim.TrapWatchdog {
		t.Fatalf("want TrapWatchdog, got %v", err)
	}
	if res == nil || res.Stats.Instrs == 0 {
		t.Fatal("trapped run must return partial stats")
	}
	if sink.Registry == nil || len(sink.Snapshot) == 0 {
		t.Error("telemetry sink not filled on trap")
	}
	if got := sink.Snapshot.Get("sim.cycles"); got != res.Stats.Cycles {
		t.Errorf("snapshot sim.cycles = %d, stats say %d", got, res.Stats.Cycles)
	}
}

// TestRunContextOptions exercises the remaining per-run knobs on a
// clean run: static verification gate, profile, strict memory.
func TestRunContextOptions(t *testing.T) {
	sink := &runner.Telemetry{EnableProfile: true}
	res, err := runner.RunContext(context.Background(), spec(t, "memcpy"), config.ConfigD(),
		runner.WithVerify(true),
		runner.WithStrictMem(true),
		runner.WithDeadline(time.Minute),
		runner.WithTelemetry(sink))
	if err != nil {
		t.Fatal(err)
	}
	if sink.Profile == nil {
		t.Error("EnableProfile did not produce a profile")
	}
	if res.CodeBytes() == 0 || res.SchedInstrs() == 0 || res.OPIStatic() <= 0 {
		t.Error("artifact-derived result stats missing")
	}
}

// TestCompileDeterministic: two compiles from independently built spec
// instances of the same (name, params, target) produce byte-identical
// images — the invariant the artifact cache rests on.
func TestCompileDeterministic(t *testing.T) {
	for _, name := range []string{"memcpy", "mpeg2_a"} {
		tgt := config.ConfigD()
		a1, err := runner.CompileWorkload(spec(t, name), tgt)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := runner.CompileWorkload(spec(t, name), tgt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a1.Enc.Bytes, a2.Enc.Bytes) {
			t.Errorf("%s: two compiles of the same key differ", name)
		}
	}
}

// TestCacheSingleflight: concurrent lookups of one key share a single
// compile and a single artifact.
func TestCacheSingleflight(t *testing.T) {
	c := runner.NewCache()
	const callers = 16
	arts := make([]*runner.Artifact, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, err := c.Artifact("memcpy", workloads.Small(), config.ConfigD())
			if err != nil {
				t.Error(err)
				return
			}
			arts[i] = a
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if arts[i] != arts[0] {
			t.Fatal("cache returned distinct artifacts for one key")
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != callers-1 || s.Failures != 0 {
		t.Errorf("stats = %+v, want 1 miss, %d hits", s, callers-1)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

// TestCacheKeying: the key is the full (name, params, target) triple —
// a different target or parameter set must not share an artifact.
func TestCacheKeying(t *testing.T) {
	c := runner.NewCache()
	small, full := workloads.Small(), workloads.Full()
	a1, err := c.Artifact("memcpy", small, config.ConfigD())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Artifact("memcpy", small, config.ConfigA())
	if err != nil {
		t.Fatal(err)
	}
	a3, err := c.Artifact("memcpy", full, config.ConfigD())
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 || a1 == a3 {
		t.Error("distinct keys shared an artifact")
	}
	if s := c.Stats(); s.Misses != 3 || s.Hits != 0 {
		t.Errorf("stats = %+v, want 3 misses", s)
	}
}

// TestCacheFailure: a failing key is memoized too — one failure count,
// the same error on every lookup, no recompilation storm.
func TestCacheFailure(t *testing.T) {
	c := runner.NewCache()
	if _, err := c.Artifact("no_such_workload", workloads.Small(), config.ConfigD()); err == nil {
		t.Fatal("unknown workload compiled")
	}
	if _, err := c.Artifact("no_such_workload", workloads.Small(), config.ConfigD()); err == nil {
		t.Fatal("memoized failure lost its error")
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits != 1 || s.Failures != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 failure", s)
	}
}

// TestBatchOrderedDeterministic: a parallel batch returns results in
// job order with stats identical to the serial batch of the same jobs.
func TestBatchOrderedDeterministic(t *testing.T) {
	jobs := runner.Matrix([]string{"memcpy", "memset", "filter"}, targets())
	serial := runner.Batch{Params: workloads.Small(), Parallel: 1}
	par := runner.Batch{Params: workloads.Small(), Parallel: 4, Cache: runner.NewCache()}

	sres := serial.Run(context.Background(), jobs)
	pres := par.Run(context.Background(), jobs)
	if len(sres) != len(jobs) || len(pres) != len(jobs) {
		t.Fatalf("got %d/%d results for %d jobs", len(sres), len(pres), len(jobs))
	}
	for i, j := range jobs {
		if sres[i].Job != j || pres[i].Job != j {
			t.Fatalf("result %d out of job order", i)
		}
		if sres[i].Err != nil {
			t.Fatalf("%s on %s: %v", j.Workload, j.Target.Name, sres[i].Err)
		}
		if pres[i].Err != nil {
			t.Fatalf("%s on %s: %v", j.Workload, j.Target.Name, pres[i].Err)
		}
		if sres[i].Result.Stats != pres[i].Result.Stats {
			t.Errorf("%s on %s: parallel stats diverge from serial", j.Workload, j.Target.Name)
		}
	}
	if s := par.Cache.Stats(); s.Misses != int64(len(jobs)) || s.Hits != 0 {
		t.Errorf("cache stats = %+v, want %d distinct compiles", s, len(jobs))
	}
}

// TestBatchCanceled: cancellation is cooperative and per-job — the
// batch still returns a slot for every job.
func TestBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := runner.Batch{Params: workloads.Small(), Parallel: 2}
	res := b.Run(ctx, runner.Matrix([]string{"memcpy", "memset"}, []config.Target{config.ConfigD()}))
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	for _, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", r.Job.Workload, r.Err)
		}
	}
}

// TestBatchCanceledSkipsQueuedJobs: a batch whose context is already
// canceled must mark every job with the context error immediately —
// zero compiles, zero simulation — instead of feeding the queue
// through the workers one aborted run at a time.
func TestBatchCanceledSkipsQueuedJobs(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cache := runner.NewCache()
	b := runner.Batch{Params: workloads.Small(), Parallel: 2, Cache: cache}
	jobs := runner.Matrix(workloads.Table5Names(), targets())
	res := b.Run(ctx, jobs)
	if len(res) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(res), len(jobs))
	}
	for _, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("%s on %s: want context.Canceled, got %v", r.Job.Workload, r.Job.Target.Name, r.Err)
		}
	}
	if s := cache.Stats(); s.Misses != 0 {
		t.Errorf("canceled batch compiled %d artifacts, want 0", s.Misses)
	}
}

// TestBatchMidRunCancellation: cancellation raised while the first job
// is executing must abort that run cooperatively (TrapCanceled) and
// stop every queued job before it compiles anything.
func TestBatchMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cache := runner.NewCache()
	var once sync.Once
	b := runner.Batch{
		Params:   workloads.Small(),
		Parallel: 1,
		Cache:    cache,
		Options: []runner.Option{runner.WithMachineSetup(func(*tmsim.Machine) {
			once.Do(cancel) // cancel while the first admitted run is live
		})},
	}
	jobs := runner.Matrix(workloads.Table5Names(), []config.Target{config.ConfigD()})
	res := b.Run(ctx, jobs)
	var trap *tmsim.TrapError
	if !errors.As(res[0].Err, &trap) || trap.Kind != tmsim.TrapCanceled {
		t.Fatalf("first job: want TrapCanceled, got %v", res[0].Err)
	}
	for _, r := range res[1:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", r.Job.Workload, r.Err)
		}
	}
	if s := cache.Stats(); s.Misses != 1 {
		t.Errorf("batch compiled %d artifacts after mid-run cancel, want exactly the first", s.Misses)
	}
}
