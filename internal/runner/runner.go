// Package runner is the execution engine behind the public tm3270 API:
// it turns (workload, target) pairs into results, one at a time via
// RunContext or as a concurrent batch via Batch.
//
// The design is instance-scoped throughout — every run gets its own
// memory image, machine and telemetry sink, and compile artifacts are
// immutable — so any number of runs may proceed concurrently without
// shared mutable state. Batch adds bounded parallelism, a compile-
// artifact cache memoizing Compile by (workload, params, target), and
// deterministic ordered aggregation: results come back in job order,
// making a parallel batch byte-identical to a serial one.
package runner

import (
	"context"
	"fmt"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/power"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Telemetry is the instance-scoped observability sink of one run. The
// caller arms the inputs (an event trace, the profile switch); the run
// fills the outputs — even when the run traps, so the events leading to
// a fault stay inspectable. One sink serves exactly one run: sharing a
// sink between concurrent runs is a data race by construction, which is
// precisely what the per-run injection exists to prevent.
type Telemetry struct {
	// Trace, when non-nil, receives the structured event trace
	// (allocate it with telemetry.NewTrace).
	Trace *telemetry.Trace

	// EnableProfile allocates the per-PC cycle-attribution profile.
	EnableProfile bool

	// Profile is the cycle-attribution profile (output; nil unless
	// EnableProfile was set).
	Profile *telemetry.Profile

	// Registry is the machine's unified counter registry (output).
	Registry *telemetry.Registry

	// Snapshot is the point-in-time counter dump taken when the run
	// finished or trapped (output).
	Snapshot telemetry.Snapshot
}

// Options collects the per-run knobs. The zero value is a plain
// checked run; functional options (With*) adjust it.
type Options struct {
	// Watchdog bounds issued instructions (0 = simulator default).
	Watchdog int64
	// Deadline bounds wall-clock execution time (0 = none).
	Deadline time.Duration
	// StrictMem traps unmapped loads and null-page stores.
	StrictMem bool
	// Verify gates execution on the whole-program static verifier.
	Verify bool
	// Engine selects the execution engine. The zero value is the
	// predecoded block-cache fast path (with automatic interpreter
	// fallback when a run arms features it does not support);
	// tmsim.EngineInterp forces the reference interpreter.
	Engine tmsim.Engine
	// Telemetry, when non-nil, is the run's observability sink.
	Telemetry *Telemetry
	// Artifact, when non-nil, skips compilation and loads the machine
	// from this precompiled build product (the batch cache path). The
	// artifact must come from the same workload construction — virtual
	// register numbering is deterministic, so any spec built by the
	// same name and params matches.
	Artifact *Artifact
	// Setup, when non-nil, runs against the constructed machine before
	// execution (issue tracing, fault injection).
	Setup func(*tmsim.Machine)
}

// Option is one functional run option.
type Option func(*Options)

// WithWatchdog bounds the run to n issued instructions.
func WithWatchdog(n int64) Option { return func(o *Options) { o.Watchdog = n } }

// WithDeadline bounds the run to a wall-clock budget.
func WithDeadline(d time.Duration) Option { return func(o *Options) { o.Deadline = d } }

// WithStrictMem traps unmapped loads and null-page stores.
func WithStrictMem(on bool) Option { return func(o *Options) { o.StrictMem = on } }

// WithVerify statically verifies the decoded binary before the first
// cycle executes and refuses the run on any error-severity diagnostic.
func WithVerify(on bool) Option { return func(o *Options) { o.Verify = on } }

// WithEngine selects the execution engine (tmsim.EngineBlockCache, the
// default, or tmsim.EngineInterp). The block-cache engine falls back to
// the interpreter automatically when the run arms features it does not
// support; Result.Engine reports what actually executed.
func WithEngine(e tmsim.Engine) Option { return func(o *Options) { o.Engine = e } }

// WithTelemetry attaches a per-run observability sink.
func WithTelemetry(t *Telemetry) Option { return func(o *Options) { o.Telemetry = t } }

// WithArtifact runs a precompiled artifact instead of compiling.
func WithArtifact(a *Artifact) Option { return func(o *Options) { o.Artifact = a } }

// WithMachineSetup registers a pre-run hook on the machine.
func WithMachineSetup(f func(*tmsim.Machine)) Option { return func(o *Options) { o.Setup = f } }

// Result is the outcome of one run.
type Result struct {
	Workload string
	Target   config.Target
	Stats    tmsim.Stats
	Machine  *tmsim.Machine
	Artifact *Artifact
	// Engine is the engine that actually executed the run — the
	// requested one, or the interpreter after an automatic fallback.
	Engine tmsim.Engine
}

// Seconds returns the wall-clock time of the run at the target's
// frequency.
func (r *Result) Seconds() float64 { return r.Stats.Seconds(&r.Target) }

// CodeBytes returns the encoded size of the compiled kernel.
func (r *Result) CodeBytes() int { return r.Artifact.CodeBytes() }

// SchedInstrs returns the static VLIW instruction count.
func (r *Result) SchedInstrs() int { return r.Artifact.SchedInstrs() }

// OPIStatic returns the static operation density of the schedule.
func (r *Result) OPIStatic() float64 { return r.Artifact.OPIStatic() }

// Activity extracts the power-model operating point of the run.
func (r *Result) Activity() power.Activity {
	s := &r.Stats
	a := power.Activity{}
	if s.Cycles > 0 {
		a.Utilization = float64(s.Instrs) / float64(s.Cycles)
		a.BusBytesPerCyc = float64(r.Machine.BIU.TotalBytes()) / float64(s.Cycles)
	}
	if s.Instrs > 0 {
		a.OPI = s.OPI()
		a.MemOpsPerInstr = float64(s.LoadOps+s.StoreOps) / float64(s.Instrs)
	}
	return a
}

// RunContext compiles (or loads) w for t, executes it on the machine
// model under ctx, validates the outputs against the workload's
// reference check and returns the result.
//
// When the failure happens at or after execution (a trap, a canceled
// context, a failed output check), the returned Result is still
// populated alongside the error, so diagnostics — the machine state,
// the artifact, an armed telemetry sink — remain inspectable. Failures
// before a machine exists (compile, verify, init) return a nil Result.
func RunContext(ctx context.Context, w *workloads.Spec, t config.Target, opts ...Option) (*Result, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}

	art := o.Artifact
	if art == nil {
		var err error
		art, err = CompileWorkload(w, t)
		if err != nil {
			return nil, err
		}
	}
	if o.Verify {
		if _, err := art.VerifyStatic(&t, art.VerifyOptions(w)); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", w.Name, t.Name, err)
		}
	}

	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return nil, fmt.Errorf("%s on %s: init: %w", w.Name, t.Name, err)
		}
	}

	ld := loadWith(art, image, &o)
	m := ld.Machine
	for v, val := range w.Args {
		m.SetReg(v, val)
	}

	res := &Result{Workload: w.Name, Target: t, Machine: m, Artifact: art}
	runErr := ld.RunContext(ctx)
	res.Stats = m.Stats
	res.Engine = m.EngineUsed
	if o.Telemetry != nil {
		o.Telemetry.Registry = m.Registry()
		o.Telemetry.Snapshot = o.Telemetry.Registry.Snapshot()
	}
	if runErr != nil {
		return res, fmt.Errorf("%s on %s: %w", w.Name, t.Name, runErr)
	}
	if w.Check != nil {
		if err := w.Check(image); err != nil {
			return res, fmt.Errorf("%s on %s: output check failed: %w", w.Name, t.Name, err)
		}
	}
	return res, nil
}
