package runner

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Pool is a bounded worker pool shared by the batch engine and the
// simulation service: a fixed set of workers draining a task queue.
// Batch uses the blocking Submit path (every job must eventually run,
// and a canceled context must stop handing queued jobs to workers);
// the service uses the non-blocking TrySubmit path, whose queue bound
// is the admission limit behind its load shedding.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts workers goroutines (<=0 selects GOMAXPROCS) draining
// a task queue of the given capacity (0 = hand-off only: a task is
// accepted exactly when a worker is free to take it).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{tasks: make(chan func(), queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Submit blocks until the pool accepts f or ctx is done, in which case
// f never runs and the context's error is returned. A canceled batch
// therefore stops dispatching at the first unsubmitted job instead of
// feeding the remainder through the workers.
func (p *Pool) Submit(ctx context.Context, f func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.tasks <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit enqueues f without blocking and reports whether the pool
// accepted it. False means the queue is saturated — the admission
// signal the service turns into a 429.
func (p *Pool) TrySubmit(f func()) bool {
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

// SubmitWait is Submit with queue-wait attribution: f receives the
// time the task spent queued before a worker picked it up, the number
// the latency histograms and request span trees record as the
// queue-wait stage.
func (p *Pool) SubmitWait(ctx context.Context, f func(wait time.Duration)) error {
	enq := time.Now()
	return p.Submit(ctx, func() { f(time.Since(enq)) })
}

// TrySubmitWait is TrySubmit with the same queue-wait attribution.
func (p *Pool) TrySubmitWait(f func(wait time.Duration)) bool {
	enq := time.Now()
	return p.TrySubmit(func() { f(time.Since(enq)) })
}

// Close stops accepting tasks and waits for the workers to finish the
// ones already accepted. Submitting after Close panics (send on a
// closed channel), matching the harness rule that shutdown is the last
// pool operation.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
