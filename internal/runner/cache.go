package runner

import (
	"sync"

	"tm3270/internal/config"
	"tm3270/internal/workloads"
)

// cacheKey identifies one compilation: the workload registry name, the
// parameter set it was built with, and the full target configuration.
// Params and Target are plain comparable structs, so a sweep that
// mutates cache geometry or frequency gets its own entries even when
// the target name collides.
type cacheKey struct {
	name   string
	params workloads.Params
	target config.Target
}

// cacheEntry memoizes one compilation. The once gives singleflight
// semantics: concurrent requests for the same key share a single
// compile instead of duplicating the work.
type cacheEntry struct {
	once sync.Once
	art  *Artifact
	err  error
}

// CacheStats is a point-in-time view of cache effectiveness.
type CacheStats struct {
	Hits     int64 // lookups served from a completed or in-flight compile
	Misses   int64 // lookups that created the entry (and ran the compile)
	Failures int64 // entries whose compile failed (counted once per key)
}

// Cache memoizes compile artifacts by (workload name, params, target).
// Workload construction is deterministic — virtual register numbering,
// scheduling and encoding depend only on the key — so an artifact
// compiled from one spec instance is valid for every other instance
// built from the same name and params (asserted by TestCompileDeterministic).
// The zero value is not usable; use NewCache. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	entries  map[cacheKey]*cacheEntry
	hits     int64
	misses   int64
	failures int64
}

// NewCache returns an empty artifact cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Artifact returns the memoized compilation of the named workload for
// the target, compiling at most once per key. The returned artifact is
// shared and immutable.
func (c *Cache) Artifact(name string, p workloads.Params, t config.Target) (*Artifact, error) {
	art, _, err := c.ArtifactHit(name, p, t)
	return art, err
}

// ArtifactHit is Artifact plus the per-call hit signal: hit is true
// when the lookup was served by an existing (completed or in-flight)
// entry, false when this call created the entry and ran the compile.
// The request span trees annotate the compile stage with it.
func (c *Cache) ArtifactHit(name string, p workloads.Params, t config.Target) (art *Artifact, hit bool, err error) {
	key := cacheKey{name: name, params: p, target: t}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()

	e.once.Do(func() {
		w, err := workloads.ByName(name, p)
		if err != nil {
			e.err = err
			return
		}
		e.art, e.err = CompileWorkload(w, t)
	})
	// once.Do returns only after the compile completed, so e.err is
	// stable here for every caller; the creator records the failure.
	if !ok && e.err != nil {
		c.mu.Lock()
		c.failures++
		c.mu.Unlock()
	}
	return e.art, ok, e.err
}

// Stats returns the cache's hit/miss counts.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Failures: c.failures}
}

// Len returns the number of cached compilations (failed ones included).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
