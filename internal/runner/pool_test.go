package runner_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"tm3270/internal/runner"
)

// TestPoolTrySubmitSheds: with one worker parked on a task and the
// queue full, TrySubmit must refuse further work — the admission
// signal the service layer turns into a 429 — and accepted tasks must
// still run to completion after the pool unblocks.
func TestPoolTrySubmitSheds(t *testing.T) {
	p := runner.NewPool(1, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran atomic.Int32

	if !p.TrySubmit(func() { close(started); <-release; ran.Add(1) }) {
		t.Fatal("empty pool refused a task")
	}
	<-started // the only worker is now parked
	if !p.TrySubmit(func() { ran.Add(1) }) {
		t.Fatal("pool refused a task with queue space free")
	}
	if p.TrySubmit(func() { ran.Add(1) }) {
		t.Fatal("saturated pool accepted a task; admission bound is broken")
	}
	close(release)
	p.Close()
	if got := ran.Load(); got != 2 {
		t.Errorf("ran %d accepted tasks, want 2", got)
	}
}

// TestPoolSubmitHonorsContext: Submit must return the context error
// instead of blocking forever when no worker frees up.
func TestPoolSubmitHonorsContext(t *testing.T) {
	p := runner.NewPool(1, 0)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(context.Background(), func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Submit(ctx, func() {}); !errors.Is(err, context.Canceled) {
		t.Errorf("Submit on canceled ctx = %v, want context.Canceled", err)
	}
	close(release)
	p.Close()
}
