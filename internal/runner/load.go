package runner

import (
	"context"

	"tm3270/internal/blockcache"
	"tm3270/internal/mem"
	"tm3270/internal/tmsim"
)

// Loaded is a machine-ready execution handle: one immutable compile
// artifact loaded against one private memory image, with the per-run
// options — engine selection included — already applied. It is the
// typed composition point for precompiled-artifact execution: build an
// Artifact once (Compile / CompileWorkload / the batch cache), then
// Load it any number of times; every handle owns its machine and image,
// so concurrent handles never share mutable state.
//
// Loaded replaces the old pattern of constructing a tmsim machine from
// the artifact's three fields and poking run flags onto it one by one.
type Loaded struct {
	// Artifact is the immutable build product this handle executes.
	Artifact *Artifact
	// Machine is the underlying simulator instance. Callers may still
	// adjust it (argument registers, hooks) before RunContext.
	Machine *tmsim.Machine
	// Image is the memory image the machine reads and writes.
	Image *mem.Func
}

// Load builds an execution handle for a precompiled artifact: a fresh
// machine over the given memory image with the options applied. A nil
// image gets a fresh empty one. Engine selection composes here without
// flag plumbing: Load(a, img, WithEngine(tmsim.EngineInterp)).
func Load(a *Artifact, image *mem.Func, opts ...Option) *Loaded {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return loadWith(a, image, &o)
}

// loadWith is the option-struct form shared with RunContext.
func loadWith(a *Artifact, image *mem.Func, o *Options) *Loaded {
	if image == nil {
		image = mem.NewFunc()
	}
	m := tmsim.Load(a.Code, a.RegMap, a.Enc, image)
	m.Engine = o.Engine
	m.MaxInstrs = o.Watchdog
	m.Deadline = o.Deadline
	m.StrictMem = o.StrictMem
	if o.Telemetry != nil {
		if o.Telemetry.Trace != nil {
			m.SetEventTrace(o.Telemetry.Trace)
		}
		if o.Telemetry.EnableProfile {
			o.Telemetry.Profile = m.EnableProfile()
		}
	}
	if o.Setup != nil {
		o.Setup(m)
	}
	return &Loaded{Artifact: a, Machine: m, Image: image}
}

// RunContext executes the loaded machine under ctx. See
// tmsim.Machine.RunContext for trap semantics.
func (l *Loaded) RunContext(ctx context.Context) error {
	return l.Machine.RunContext(ctx)
}

// Engine returns the engine that actually executed (after any
// automatic fallback). Meaningful after RunContext.
func (l *Loaded) Engine() tmsim.Engine { return l.Machine.EngineUsed }

// BlockCacheStats returns the translation-cache counters of the run.
func (l *Loaded) BlockCacheStats() blockcache.Stats {
	return l.Machine.BlockCacheStats()
}
