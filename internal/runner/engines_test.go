package runner_test

import (
	"context"
	"errors"
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/runner"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// engineOutcome is everything architecturally or temporally visible
// from one run: the trap (if any), the full register file, the final
// memory image, and the cycle count with its per-cause stall split.
type engineOutcome struct {
	err  error
	m    *tmsim.Machine
	mem  *mem.Func
	eng  tmsim.Engine
	used tmsim.Engine
}

func runEngine(t *testing.T, art *runner.Artifact, w *workloads.Spec, eng tmsim.Engine) *engineOutcome {
	t.Helper()
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			t.Fatalf("%s init: %v", w.Name, err)
		}
	}
	ld := runner.Load(art, image, runner.WithEngine(eng))
	for v, val := range w.Args {
		ld.Machine.SetReg(v, val)
	}
	err := ld.RunContext(context.Background())
	return &engineOutcome{err: err, m: ld.Machine, mem: image, eng: eng, used: ld.Engine()}
}

// TestEnginesAgree is the engine-equivalence gate: every workload of
// the suite, on every processor target it schedules for, must produce
// bit-identical results on the interpreter and the block-cache engine —
// registers, memory, trap identity, and the complete cycle/stall
// accounting. Any divergence is an engine bug by definition.
func TestEnginesAgree(t *testing.T) {
	p := workloads.Small()
	targets := []config.Target{
		config.ConfigA(), config.ConfigB(), config.ConfigC(), config.ConfigD(),
		config.TM3260(), config.TM3270(),
	}
	pairs := 0
	for _, tgt := range targets {
		for _, name := range workloads.Names() {
			w, err := workloads.ByName(name, p)
			if err != nil {
				t.Fatal(err)
			}
			art, err := runner.CompileWorkload(w, tgt)
			if err != nil {
				var serr *runner.ScheduleError
				if errors.As(err, &serr) {
					continue // target lacks operations this workload needs
				}
				t.Fatalf("%s on %s: compile: %v", name, tgt.Name, err)
			}
			pairs++
			t.Run(tgt.Name+"/"+name, func(t *testing.T) {
				ref := runEngine(t, art, w, tmsim.EngineInterp)
				fast := runEngine(t, art, w, tmsim.EngineBlockCache)
				if ref.used != tmsim.EngineInterp || fast.used != tmsim.EngineBlockCache {
					t.Fatalf("engines used: %v and %v, want interp and blockcache", ref.used, fast.used)
				}
				diffOutcomes(t, ref, fast)
			})
		}
	}
	// The matrix must actually cover the suite: six targets, most
	// workloads schedulable on each.
	if pairs < 60 {
		t.Errorf("only %d workload x target pairs ran; the agreement matrix collapsed", pairs)
	}
}

func diffOutcomes(t *testing.T, ref, fast *engineOutcome) {
	t.Helper()
	// Trap identity: both engines must fault the same way or not at
	// all. On a shared fault the partial state is still compared —
	// traps are precise on both engines.
	var rt, ft *tmsim.TrapError
	if (ref.err == nil) != (fast.err == nil) {
		t.Fatalf("interp err = %v, blockcache err = %v", ref.err, fast.err)
	}
	if ref.err != nil {
		if !errors.As(ref.err, &rt) || !errors.As(fast.err, &ft) {
			t.Fatalf("non-trap errors: interp %v, blockcache %v", ref.err, fast.err)
		}
		if rt.Kind != ft.Kind || rt.PC != ft.PC || rt.Issue != ft.Issue || rt.Cycle != ft.Cycle {
			t.Fatalf("trap diverged: interp %v at pc=%#x issue=%d cycle=%d, blockcache %v at pc=%#x issue=%d cycle=%d",
				rt.Kind, rt.PC, rt.Issue, rt.Cycle, ft.Kind, ft.PC, ft.Issue, ft.Cycle)
		}
	}

	if rr, fr := ref.m.RegSnapshot(), fast.m.RegSnapshot(); rr != fr {
		for i := range rr {
			if rr[i] != fr[i] {
				t.Errorf("r%d = %#x (interp) vs %#x (blockcache)", i, rr[i], fr[i])
			}
		}
	}
	if addr, diff := mem.Diff(ref.mem, fast.mem); diff {
		t.Errorf("memory diverged at %#x: %#x (interp) vs %#x (blockcache)",
			addr, ref.mem.ByteAt(addr), fast.mem.ByteAt(addr))
	}

	rs, fs := &ref.m.Stats, &fast.m.Stats
	type cmp struct {
		name     string
		ref, got int64
	}
	for _, c := range []cmp{
		{"cycles", rs.Cycles, fs.Cycles},
		{"instrs", rs.Instrs, fs.Instrs},
		{"ops", rs.Ops, fs.Ops},
		{"fetch stalls", rs.FetchStalls, fs.FetchStalls},
		{"jump stalls", rs.JumpStalls, fs.JumpStalls},
		{"data stalls", rs.DataStalls, fs.DataStalls},
		{"data miss stalls", rs.DataMissStalls, fs.DataMissStalls},
		{"data in-flight stalls", rs.DataInFlightStalls, fs.DataInFlightStalls},
		{"data CWB stalls", rs.DataCWBStalls, fs.DataCWBStalls},
	} {
		if c.ref != c.got {
			t.Errorf("%s: %d (interp) vs %d (blockcache)", c.name, c.ref, c.got)
		}
	}
}
