package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/faults"
	"tm3270/internal/runner"
	"tm3270/internal/telemetry"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Session states.
const (
	StateActive      = "active"
	StateQuarantined = "quarantined"
	StateClosed      = "closed"
)

// Run statuses. Every admitted run resolves to exactly one of these in
// a 200 response — run outcomes are results, not transport errors, and
// the daemon never converts one into a 5xx.
const (
	StatusOK        = "ok"           // completed, output check passed
	StatusTrap      = "trap"         // structured simulator trap
	StatusTimeout   = "timeout"      // per-run deadline expired (TrapCanceled)
	StatusCanceled  = "canceled"     // session deleted / drain cutoff mid-run
	StatusCheckFail = "check-failed" // simulated output diverged from the reference
	StatusPanic     = "panic"        // run panicked; session quarantined
	StatusError     = "error"        // infrastructure failure before execution
)

// SessionOptions are the retunable per-session knobs (PUT applies them
// to subsequent runs; in-flight runs keep the options they started
// with).
type SessionOptions struct {
	// WatchdogInstrs bounds each run's issued instructions (0 =
	// simulator default).
	WatchdogInstrs int64 `json:"watchdog_instrs,omitempty"`
	// DeadlineMS bounds each run's wall-clock time (0 = server
	// default); it maps onto RunContext cancellation.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// StrictMem traps loads of never-written bytes.
	StrictMem bool `json:"strict_mem,omitempty"`
	// Verify gates each run on the whole-program static verifier.
	Verify bool `json:"verify,omitempty"`
	// Engine selects the execution engine for the session's runs:
	// "blockcache" (default; the predecoded fast path with automatic
	// interpreter fallback) or "interp". Empty means blockcache.
	Engine string `json:"engine,omitempty"`
	// Quota bounds the session's concurrent in-flight runs (0 = server
	// default).
	Quota int `json:"quota,omitempty"`
}

// CreateSessionRequest is the POST /sessions body.
type CreateSessionRequest struct {
	// Workload names a registry workload (workloads.Names).
	Workload string `json:"workload"`
	// Target selects the processor configuration: A-D, TM3260, TM3270
	// (default TM3270).
	Target string `json:"target,omitempty"`
	// Params selects the workload scale: "small" (default) or "full".
	Params string `json:"params,omitempty"`
	// Options are the initial session options.
	Options SessionOptions `json:"options,omitempty"`
}

// SessionCounters is the per-session telemetry block exposed by GET.
type SessionCounters struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	OK        int64 `json:"ok"`
	Traps     int64 `json:"traps"`
	Timeouts  int64 `json:"timeouts"`
	Canceled  int64 `json:"canceled"`
}

// SessionInfo is the GET /sessions/{id} body.
type SessionInfo struct {
	ID       string          `json:"id"`
	Workload string          `json:"workload"`
	Target   string          `json:"target"`
	Params   string          `json:"params"`
	State    string          `json:"state"`
	Reason   string          `json:"reason,omitempty"` // quarantine cause
	Options  SessionOptions  `json:"options"`
	Counters SessionCounters `json:"counters"`
}

// RunRequest is the POST /sessions/{id}/runs body — one cell of the
// streaming I/O plane.
type RunRequest struct {
	// DeadlineMS overrides the session deadline for this run only.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Inject arms a seeded fault injector for this run, in
	// faults.ParseSpec form ("bitflip", "busdelay:0.1:400", ...).
	Inject string `json:"inject,omitempty"`
	// Seed seeds the injector (and distinguishes repeat campaigns).
	Seed int64 `json:"seed,omitempty"`
	// Telemetry attaches the run's full counter snapshot to the reply.
	Telemetry bool `json:"telemetry,omitempty"`
	// Engine overrides the session's execution engine for this run only
	// ("blockcache" or "interp"; empty keeps the session setting).
	Engine string `json:"engine,omitempty"`
}

// TrapInfo is the structured trap detail of a faulted run.
type TrapInfo struct {
	Kind   string `json:"kind"`
	Reason string `json:"reason,omitempty"`
	Op     string `json:"op,omitempty"`
	PC     uint32 `json:"pc"`
	Cycle  int64  `json:"cycle"`
	Issue  int64  `json:"issue"`
}

// BlockCacheInfo is the translation-cache activity of one run on the
// block-cache engine.
type BlockCacheInfo struct {
	Translated    int64 `json:"translated"`
	Hits          int64 `json:"hits"`
	Invalidations int64 `json:"invalidations"`
}

// RunReply is the response to one run request.
type RunReply struct {
	Session   string    `json:"session"`
	Seq       int64     `json:"seq"`
	RequestID string    `json:"request_id,omitempty"`
	Status    string    `json:"status"`
	Error     string    `json:"error,omitempty"`
	Trap      *TrapInfo `json:"trap,omitempty"`
	Cycles    int64     `json:"cycles,omitempty"`
	Instrs    int64     `json:"instrs,omitempty"`
	CPI       float64   `json:"cpi,omitempty"`
	OPI       float64   `json:"opi,omitempty"`
	Faults    int       `json:"faults,omitempty"` // injected fault events
	// Engine is the engine that actually executed the run ("blockcache"
	// or "interp" — the latter possibly via automatic fallback).
	Engine string `json:"engine,omitempty"`
	// BlockCache carries the translation-cache counters when the run
	// executed on the block-cache engine.
	BlockCache *BlockCacheInfo    `json:"blockcache,omitempty"`
	ElapsedMS  float64            `json:"elapsed_ms"`
	Counters   telemetry.Snapshot `json:"counters,omitempty"`
}

// sessionCounters is the atomic backing of SessionCounters.
type sessionCounters struct {
	submitted, completed, shed    atomic.Int64
	ok, traps, timeouts, canceled atomic.Int64
}

func (c *sessionCounters) snapshot() SessionCounters {
	return SessionCounters{
		Submitted: c.submitted.Load(),
		Completed: c.completed.Load(),
		Shed:      c.shed.Load(),
		OK:        c.ok.Load(),
		Traps:     c.traps.Load(),
		Timeouts:  c.timeouts.Load(),
		Canceled:  c.canceled.Load(),
	}
}

// Session is one tenant's processor instance: an immutable (workload,
// params, target) binding plus retunable options and a private
// lifetime context every run derives from — canceling it (DELETE,
// quarantine, drain cutoff) aborts the session's in-flight runs
// cooperatively.
type Session struct {
	id         string
	workload   string
	paramsName string
	params     workloads.Params
	target     config.Target

	// The session's lifetime (see the type comment), not a request
	// context: runs derive from it so DELETE/drain aborts them.
	ctx    context.Context //tmvet:allow
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	reason   string
	opts     SessionOptions
	seq      int64
	inflight int

	// traceMu guards the per-run trace retention ring (the last
	// runTraceCap runs' span trees and counter snapshots, served by
	// GET /sessions/{id}/runs/{run}/trace).
	traceMu   sync.Mutex
	traces    map[int64]*runTrace
	traceSeqs []int64

	c sessionCounters
}

// runTraceCap bounds per-session run-trace retention.
const runTraceCap = 64

// runTrace is the retained observability record of one run.
type runTrace struct {
	reqID    string
	status   string
	root     *telemetry.Span
	counters telemetry.Snapshot
}

// storeTrace retains one run's trace, evicting the oldest past the cap.
func (sess *Session) storeTrace(seq int64, rt *runTrace) {
	sess.traceMu.Lock()
	defer sess.traceMu.Unlock()
	if sess.traces == nil {
		sess.traces = make(map[int64]*runTrace)
	}
	sess.traces[seq] = rt
	sess.traceSeqs = append(sess.traceSeqs, seq)
	for len(sess.traceSeqs) > runTraceCap {
		delete(sess.traces, sess.traceSeqs[0])
		sess.traceSeqs = sess.traceSeqs[1:]
	}
}

// RunTrace is the GET /sessions/{id}/runs/{run}/trace body: the run's
// span tree (request-root down to the execute stage, annotated from
// the cycle model) and its final counter snapshot, stall counters
// included. Span times are microseconds since the server's epoch.
type RunTrace struct {
	Session   string              `json:"session"`
	Seq       int64               `json:"seq"`
	RequestID string              `json:"request_id,omitempty"`
	Status    string              `json:"status"`
	Span      *telemetry.SpanJSON `json:"span,omitempty"`
	Counters  telemetry.Snapshot  `json:"counters,omitempty"`
}

// RunTrace returns the retained trace of one run of a live session.
func (s *Server) RunTrace(id string, seq int64) (*RunTrace, error) {
	sess, ok := s.session(id)
	if !ok {
		return nil, &APIError{Code: 404, Msg: fmt.Sprintf("no session %q", id)}
	}
	sess.traceMu.Lock()
	rt, ok := sess.traces[seq]
	sess.traceMu.Unlock()
	if !ok {
		return nil, &APIError{Code: 404,
			Msg: fmt.Sprintf("session %s retains no trace for run %d", id, seq)}
	}
	return &RunTrace{
		Session:   sess.id,
		Seq:       seq,
		RequestID: rt.reqID,
		Status:    rt.status,
		Span:      rt.root.JSON(s.spans.Epoch()),
		Counters:  rt.counters,
	}, nil
}

// parseParams maps the API's scale names onto workload parameter sets.
func parseParams(name string) (workloads.Params, string, error) {
	switch name {
	case "", "small":
		return workloads.Small(), "small", nil
	case "full":
		return workloads.Full(), "full", nil
	}
	return workloads.Params{}, "", fmt.Errorf("unknown params %q (want small or full)", name)
}

// CreateSession validates the request, compiles the workload once (the
// schedulability check; the artifact lands in the shared cache every
// run then hits) and registers the session. It fails with ErrShed when
// the session table is full.
func (s *Server) CreateSession(req CreateSessionRequest) (*SessionInfo, error) {
	w, ok := knownWorkload(req.Workload)
	if !ok {
		return nil, &APIError{Code: 400, Msg: fmt.Sprintf("unknown workload %q", req.Workload)}
	}
	params, paramsName, err := parseParams(req.Params)
	if err != nil {
		return nil, &APIError{Code: 400, Msg: err.Error()}
	}
	target, err := parseTarget(req.Target)
	if err != nil {
		return nil, &APIError{Code: 400, Msg: err.Error()}
	}
	if _, err := s.cache.Artifact(w, params, target); err != nil {
		return nil, &APIError{Code: 400,
			Msg: fmt.Sprintf("%s does not build for %s: %v", w, target.Name, err)}
	}

	opts := req.Options
	if opts.Quota <= 0 {
		opts.Quota = s.cfg.SessionQuota
	}
	if opts.Engine == "" {
		opts.Engine = s.cfg.DefaultEngine
	}
	if _, err := tmsim.ParseEngine(opts.Engine); err != nil {
		return nil, &APIError{Code: 400, Msg: err.Error()}
	}
	ctx, cancel := context.WithCancel(s.rootCtx)
	sess := &Session{
		workload:   w,
		paramsName: paramsName,
		params:     params,
		target:     target,
		ctx:        ctx,
		cancel:     cancel,
		state:      StateActive,
		opts:       opts,
	}

	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		cancel()
		s.c.shedSessions.Add(1)
		return nil, &APIError{Code: 429, Msg: "session table full", RetryAfter: s.cfg.RetryAfter}
	}
	sess.id = s.newSessionID()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.c.sessionsCreated.Add(1)
	return sess.info(), nil
}

// knownWorkload resolves a registry name without building a spec.
func knownWorkload(name string) (string, bool) {
	for _, n := range workloads.Names() {
		if n == name {
			return n, true
		}
	}
	return "", false
}

// session looks a live session up.
func (s *Server) session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Sessions lists every live session's info, ordered by id.
func (s *Server) Sessions() []*SessionInfo {
	s.mu.Lock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	s.mu.Unlock()
	infos := make([]*SessionInfo, len(out))
	for i, sess := range out {
		infos[i] = sess.info()
	}
	return infos
}

// DeleteSession cancels the session's in-flight runs and removes it.
// In-flight runs still deliver structured "canceled" replies.
func (s *Server) DeleteSession(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return &APIError{Code: 404, Msg: fmt.Sprintf("no session %q", id)}
	}
	sess.mu.Lock()
	sess.state = StateClosed
	sess.mu.Unlock()
	sess.cancel()
	s.c.sessionsDeleted.Add(1)
	return nil
}

// Retune applies new options to subsequent runs of the session.
func (s *Server) Retune(id string, opts SessionOptions) (*SessionInfo, error) {
	sess, ok := s.session(id)
	if !ok {
		return nil, &APIError{Code: 404, Msg: fmt.Sprintf("no session %q", id)}
	}
	if _, err := tmsim.ParseEngine(opts.Engine); err != nil {
		return nil, &APIError{Code: 400, Msg: err.Error()}
	}
	sess.mu.Lock()
	if opts.Quota <= 0 {
		opts.Quota = s.cfg.SessionQuota
	}
	sess.opts = opts
	sess.mu.Unlock()
	return sess.info(), nil
}

// SessionInfo returns one session's info.
func (s *Server) SessionInfo(id string) (*SessionInfo, error) {
	sess, ok := s.session(id)
	if !ok {
		return nil, &APIError{Code: 404, Msg: fmt.Sprintf("no session %q", id)}
	}
	return sess.info(), nil
}

func (sess *Session) info() *SessionInfo {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return &SessionInfo{
		ID:       sess.id,
		Workload: sess.workload,
		Target:   sess.target.Name,
		Params:   sess.paramsName,
		State:    sess.state,
		Reason:   sess.reason,
		Options:  sess.opts,
		Counters: sess.c.snapshot(),
	}
}

// quarantine poisons the session: state flips, the lifetime context is
// canceled so sibling in-flight runs abort, and new submissions are
// refused with 409. The server-wide quarantine counter increments
// exactly once per session.
func (sess *Session) quarantine(srv *Server, reason string) {
	sess.mu.Lock()
	already := sess.state == StateQuarantined
	if !already && sess.state == StateActive {
		sess.state = StateQuarantined
		sess.reason = reason
	}
	sess.mu.Unlock()
	if !already {
		srv.c.quarantines.Add(1)
		sess.cancel()
	}
}

// tryAcquire claims one in-flight slot against the session quota and
// assigns the run sequence number.
func (sess *Session) tryAcquire() (int64, bool) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != StateActive {
		return 0, false
	}
	if sess.inflight >= sess.opts.Quota {
		return 0, false
	}
	sess.inflight++
	sess.seq++
	return sess.seq, true
}

func (sess *Session) release() {
	sess.mu.Lock()
	sess.inflight--
	sess.mu.Unlock()
}

// optionsSnapshot reads the options a run starts with.
func (sess *Session) optionsSnapshot() SessionOptions {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.opts
}

// Submit admits one run of the session through the full shedding
// pipeline and, on acceptance, returns a channel carrying the single
// reply. A nil channel means the request was refused with the returned
// *APIError (429 quota/queue/draining, 404 unknown, 409 quarantined).
// The context carries the request-scoped trace context when the call
// entered through the HTTP edge: the admission pipeline, queue wait
// and execution stages land as children of the request's root span,
// and the per-stage latency histograms observe exactly the admitted
// runs.
func (s *Server) Submit(ctx context.Context, id string, req RunRequest) (<-chan RunReply, error) {
	ri := requestFrom(ctx)
	if req.Inject != "" {
		if _, err := faults.ParseSpec(req.Inject); err != nil {
			return nil, &APIError{Code: 400, Msg: err.Error()}
		}
	}
	if _, err := tmsim.ParseEngine(req.Engine); err != nil {
		return nil, &APIError{Code: 400, Msg: err.Error()}
	}
	sess, ok := s.session(id)
	if !ok {
		return nil, &APIError{Code: 404, Msg: fmt.Sprintf("no session %q", id)}
	}
	sess.c.submitted.Add(1)

	sess.mu.Lock()
	state, reason := sess.state, sess.reason
	sess.mu.Unlock()
	if state == StateQuarantined {
		return nil, &APIError{Code: 409,
			Msg: fmt.Sprintf("session %s is quarantined: %s", id, reason)}
	}

	admitStart := time.Now()
	adSpan := ri.Span().StartChild("admit")
	if !s.admit() {
		adSpan.Annotate("shed", "draining")
		adSpan.End()
		sess.c.shed.Add(1)
		s.c.shedDraining.Add(1)
		return nil, &APIError{Code: 429, Msg: "server draining", RetryAfter: s.cfg.RetryAfter}
	}
	// From here every early exit must undo the drain-barrier claim.
	seq, ok := sess.tryAcquire()
	if !ok {
		s.runs.Done()
		adSpan.Annotate("shed", "quota")
		adSpan.End()
		sess.c.shed.Add(1)
		s.c.shedQuota.Add(1)
		return nil, &APIError{Code: 429,
			Msg: fmt.Sprintf("session %s quota exhausted", id), RetryAfter: s.cfg.RetryAfter}
	}
	reply := make(chan RunReply, 1)
	accepted := s.pool.TrySubmitWait(func(wait time.Duration) {
		defer s.runs.Done()
		defer sess.release()
		s.lat.queue.Observe(wait)
		qSpan := ri.Span().StartChildAt("queue-wait", time.Now().Add(-wait))
		qSpan.End()
		rep := s.execute(sess, req, seq, ri)
		s.account(sess, &rep)
		reply <- rep
	})
	if !accepted {
		sess.release()
		s.runs.Done()
		adSpan.Annotate("shed", "queue")
		adSpan.End()
		sess.c.shed.Add(1)
		s.c.shedQueue.Add(1)
		return nil, &APIError{Code: 429, Msg: "admission queue full", RetryAfter: s.cfg.RetryAfter}
	}
	adSpan.Annotate("seq", seq)
	adSpan.End()
	s.lat.admit.Observe(time.Since(admitStart))
	s.c.admitted.Add(1)
	return reply, nil
}

// account tallies one finished run into the session and server
// counter blocks.
func (s *Server) account(sess *Session, rep *RunReply) {
	sess.c.completed.Add(1)
	s.c.completed.Add(1)
	switch rep.Status {
	case StatusOK:
		sess.c.ok.Add(1)
		s.c.runsOK.Add(1)
	case StatusTrap:
		sess.c.traps.Add(1)
		s.c.runsTrap.Add(1)
	case StatusTimeout:
		sess.c.timeouts.Add(1)
		s.c.runsTimeout.Add(1)
	case StatusCanceled:
		sess.c.canceled.Add(1)
		s.c.runsCanceled.Add(1)
	case StatusCheckFail:
		s.c.runsCheckFailed.Add(1)
	case StatusPanic:
		s.c.runsPanic.Add(1)
	}
}

// execute performs one admitted run on a worker goroutine. It is the
// panic-isolation boundary: any panic below it — the BeforeRun chaos
// hook, workload init, the output check, or a simulator-core fault
// surfacing as TrapInternal — quarantines the session and still
// produces a structured reply. Each stage lands as a child of the
// request's root span and observes its latency histogram; the run's
// trace (span tree + final counter snapshot) is retained on the
// session for the run-trace endpoint.
func (s *Server) execute(sess *Session, req RunRequest, seq int64, ri *requestInfo) (rep RunReply) {
	started := time.Now()
	rep = RunReply{Session: sess.id, Seq: seq, RequestID: ri.ID()}
	var snap telemetry.Snapshot
	defer func() { // registered first, runs last: rep.Status is final here
		sess.storeTrace(seq, &runTrace{
			reqID:    ri.ID(),
			status:   rep.Status,
			root:     ri.Span(),
			counters: snap,
		})
	}()
	// Every admitted run observes each stage histogram exactly once —
	// the bucket-sum identity the smoke test asserts — so stages a
	// failed or panicking run never reached record a zero sample.
	var compileObserved, execObserved bool
	defer func() {
		if !compileObserved {
			s.lat.compile.Observe(0)
		}
		if !execObserved {
			s.lat.execute.Observe(0)
		}
	}()
	defer func() {
		rep.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
		if r := recover(); r != nil {
			s.c.panics.Add(1)
			sess.quarantine(s, fmt.Sprintf("run %d panicked: %v", seq, r))
			rep.Status = StatusPanic
			rep.Error = fmt.Sprintf("run panicked; session quarantined: %v", r)
		}
	}()
	if hook := s.cfg.BeforeRun; hook != nil {
		hook(sess.id, seq)
	}

	opts := sess.optionsSnapshot()
	deadline := s.cfg.RunDeadline
	if opts.DeadlineMS > 0 {
		deadline = time.Duration(opts.DeadlineMS) * time.Millisecond
	}
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(sess.ctx, deadline)
	defer cancel()

	w, err := workloads.ByName(sess.workload, sess.params)
	if err != nil {
		rep.Status, rep.Error = StatusError, err.Error()
		return rep
	}
	cSpan := ri.Span().StartChild("compile")
	compileStart := time.Now()
	art, hit, err := s.cache.ArtifactHit(sess.workload, sess.params, sess.target)
	cSpan.Annotate("cache_hit", hit)
	cSpan.End()
	s.lat.compile.Observe(time.Since(compileStart))
	compileObserved = true
	if err != nil {
		rep.Status, rep.Error = StatusError, err.Error()
		return rep
	}

	// The run's engine: the per-run override wins, then the session
	// setting; both were validated at the API edge, so a parse failure
	// here is an internal inconsistency.
	engName := opts.Engine
	if req.Engine != "" {
		engName = req.Engine
	}
	eng, err := tmsim.ParseEngine(engName)
	if err != nil {
		rep.Status, rep.Error = StatusError, err.Error()
		return rep
	}
	ropts := []runner.Option{
		runner.WithArtifact(art),
		runner.WithStrictMem(opts.StrictMem),
		runner.WithVerify(opts.Verify),
		runner.WithEngine(eng),
	}
	if opts.WatchdogInstrs > 0 {
		ropts = append(ropts, runner.WithWatchdog(opts.WatchdogInstrs))
	}
	var inj *faults.Injector
	if req.Inject != "" {
		spec, err := faults.ParseSpec(req.Inject)
		if err != nil {
			rep.Status, rep.Error = StatusError, err.Error()
			return rep
		}
		inj = faults.New(spec, req.Seed)
		ropts = append(ropts, runner.WithMachineSetup(func(m *tmsim.Machine) { inj.Arm(m) }))
	}
	// The sink is always armed: the retained run trace carries the
	// final counter snapshot (stall split included) even when the
	// client did not ask for counters in the reply.
	sink := &runner.Telemetry{}
	ropts = append(ropts, runner.WithTelemetry(sink))

	eSpan := ri.Span().StartChild("execute")
	execStart := time.Now()
	res, runErr := runner.RunContext(ctx, w, sess.target, ropts...)
	s.lat.execute.Observe(time.Since(execStart))
	execObserved = true
	if res != nil {
		rep.Cycles = res.Stats.Cycles
		rep.Instrs = res.Stats.Instrs
		rep.CPI = res.Stats.CPI()
		rep.OPI = res.Stats.OPI()
		rep.Engine = res.Engine.String()
		switch res.Engine {
		case tmsim.EngineBlockCache:
			bc := res.Machine.BlockCacheStats()
			rep.BlockCache = &BlockCacheInfo{
				Translated:    bc.Translated,
				Hits:          bc.Hits,
				Invalidations: bc.Invalidations,
			}
			s.c.runsBlockCache.Add(1)
			s.c.bcTranslated.Add(bc.Translated)
			s.c.bcHits.Add(bc.Hits)
			s.c.bcInvalidations.Add(bc.Invalidations)
		default:
			s.c.runsInterp.Add(1)
			if eng == tmsim.EngineBlockCache {
				// Requested blockcache, executed interp: fallback.
				s.c.bcFallbacks.Add(1)
			}
		}
		res.Machine.AnnotateSpan(eSpan)
	}
	eSpan.End()
	snap = sink.Snapshot
	if req.Telemetry {
		rep.Counters = sink.Snapshot
	}
	if inj != nil {
		rep.Faults = len(inj.Events)
	}
	s.classify(sess, runErr, &rep)
	return rep
}

// classify maps a run error onto the reply's status taxonomy.
func (s *Server) classify(sess *Session, runErr error, rep *RunReply) {
	if runErr == nil {
		rep.Status = StatusOK
		return
	}
	rep.Error = runErr.Error()
	var trap *tmsim.TrapError
	if !errors.As(runErr, &trap) {
		// A non-trap error past execution is the failed output check.
		rep.Status = StatusCheckFail
		return
	}
	rep.Trap = &TrapInfo{
		Kind:   trap.Kind.String(),
		Reason: trap.Reason,
		Op:     trap.Op,
		PC:     trap.PC,
		Cycle:  trap.Cycle,
		Issue:  trap.Issue,
	}
	switch trap.Kind {
	case tmsim.TrapCanceled:
		if errors.Is(runErr, context.DeadlineExceeded) {
			rep.Status = StatusTimeout
		} else {
			rep.Status = StatusCanceled
		}
	case tmsim.TrapInternal:
		// A recovered simulator-core panic: the workload is poisoned.
		s.c.panics.Add(1)
		sess.quarantine(s, fmt.Sprintf("run %d hit a simulator-internal panic: %v", rep.Seq, trap.Reason))
		rep.Status = StatusPanic
	default:
		rep.Status = StatusTrap
	}
}
