package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"tm3270/internal/service"
	"tm3270/internal/telemetry"
)

// TestRequestIDPropagation: the server mints a request ID (or honors a
// client-sent one) and the same ID appears in the response header, the
// run reply body, and error bodies — the join key across logs, spans
// and metrics.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}

	// Minted: the reply body carries the ID from the response header.
	body, _ := json.Marshal(service.RunRequest{})
	resp, err := ts.Client().Post(ts.URL+"/sessions/"+info.ID+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rep service.RunReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hdr := resp.Header.Get(service.RequestIDHeader)
	if hdr == "" || rep.RequestID != hdr {
		t.Errorf("reply request ID %q != header %q (want non-empty match)", rep.RequestID, hdr)
	}

	// Honored: a caller-supplied ID is kept verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sessions/"+info.ID, nil)
	req.Header.Set(service.RequestIDHeader, "req-caller-7")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(service.RequestIDHeader); got != "req-caller-7" {
		t.Errorf("caller-supplied request ID not honored: %q", got)
	}

	// Errors: the client surfaces the failed request's ID so the
	// failure stays joinable to the server's log line and span tree.
	_, err = c.Session(ctx, "no-such-session")
	ae, ok := err.(*service.APIError)
	if !ok || ae.RequestID == "" {
		t.Fatalf("error without request ID: %v", err)
	}
	if !strings.Contains(ae.Error(), ae.RequestID) {
		t.Errorf("APIError.Error() %q does not mention request %s", ae.Error(), ae.RequestID)
	}
}

// wellFormedSpan asserts children nest inside their parent, recursively.
func wellFormedSpan(t *testing.T, j *telemetry.SpanJSON) {
	t.Helper()
	for _, c := range j.Children {
		if c.StartUS < j.StartUS || c.StartUS+c.DurUS > j.StartUS+j.DurUS {
			t.Errorf("child %q [%d,+%d] escapes parent %q [%d,+%d]",
				c.Name, c.StartUS, c.DurUS, j.Name, j.StartUS, j.DurUS)
		}
		wellFormedSpan(t, c)
	}
}

// spanNames flattens the tree's names for containment checks.
func spanNames(j *telemetry.SpanJSON, out map[string]bool) {
	out[j.Name] = true
	for _, c := range j.Children {
		spanNames(c, out)
	}
}

// TestRunTraceEndpoint: each run retains its span tree and final stall
// counters, served back on GET /sessions/{id}/runs/{run}/trace.
func TestRunTraceEndpoint(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(ctx, info.ID, service.RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusOK {
		t.Fatalf("run status = %q", rep.Status)
	}

	rt, err := c.RunTrace(ctx, info.ID, rep.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Session != info.ID || rt.Seq != rep.Seq || rt.Status != service.StatusOK {
		t.Errorf("trace header = %+v, want session %s seq %d ok", rt, info.ID, rep.Seq)
	}
	if rt.RequestID != rep.RequestID {
		t.Errorf("trace request ID %q != reply's %q", rt.RequestID, rep.RequestID)
	}
	if rt.Span == nil {
		t.Fatal("trace has no span tree")
	}
	wellFormedSpan(t, rt.Span)
	names := map[string]bool{}
	spanNames(rt.Span, names)
	for _, want := range []string{"runs", "admit", "compile", "execute"} {
		if !names[want] {
			t.Errorf("span tree missing stage %q (have %v)", want, names)
		}
	}
	// The execute span carries the cycle model's stall attribution, and
	// the final counter snapshot rides along even when the run itself
	// didn't request telemetry.
	if len(rt.Counters) == 0 {
		t.Error("trace has no final counter snapshot")
	}

	if _, err := c.RunTrace(ctx, info.ID, 9999); err == nil {
		t.Error("unknown run seq did not 404")
	}
	if _, err := c.RunTrace(ctx, "no-such-session", 1); err == nil {
		t.Error("unknown session did not 404")
	}
}

// TestMetricsHistograms: /metrics serves well-formed histograms and
// every per-stage latency histogram observes exactly once per admitted
// run — the bucket sums reconcile against the admission counters.
func TestMetricsHistograms(t *testing.T) {
	srv, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, err := c.Run(ctx, info.ID, service.RunRequest{Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	admitted := m.Counters["service.runs.admitted"]
	if admitted != runs {
		t.Fatalf("admitted = %d, want %d", admitted, runs)
	}
	stages := 0
	for name, h := range m.Histograms {
		if len(h.Counts) != len(h.BoundsUS)+1 {
			t.Errorf("%s: %d buckets for %d bounds", name, len(h.Counts), len(h.BoundsUS))
		}
		var sum int64
		for _, n := range h.Counts {
			sum += n
		}
		if sum != h.Count {
			t.Errorf("%s: bucket sum %d != count %d", name, sum, h.Count)
		}
		if strings.HasPrefix(name, "service.latency.stage.") {
			stages++
			if h.Count != admitted {
				t.Errorf("%s: count %d != admitted %d", name, h.Count, admitted)
			}
		}
	}
	if stages != 6 {
		t.Errorf("stage histograms = %d, want 6 (admit, queue, compile, execute, encode, run)", stages)
	}
	// Route histograms exist and saw traffic.
	if h, ok := m.Histograms["service.latency.route.runs"]; !ok || h.Count != runs {
		t.Errorf("route.runs histogram = %+v, want count %d", m.Histograms["service.latency.route.runs"], runs)
	}

	// Every request tree landed in the serving window for trace export.
	if srv.Spans().Len() == 0 {
		t.Error("no request trees recorded")
	}
	var buf bytes.Buffer
	if err := srv.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"ph": "X"`)) && !bytes.Contains(buf.Bytes(), []byte(`"ph":"X"`)) {
		t.Errorf("trace export has no complete events:\n%.400s", buf.String())
	}
}
