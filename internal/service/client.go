package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ClientStats counts what a client saw, for load reports.
type ClientStats struct {
	Requests atomic.Int64 // HTTP requests issued, including retries
	Retries  atomic.Int64 // sleeps taken after a shed response
	Shed     atomic.Int64 // 429 responses received
	FiveXX   atomic.Int64 // 5xx responses received (the load test asserts 0)
	Errors   atomic.Int64 // transport errors / retry budget exhausted
}

// Client speaks the daemon's API with shed-aware retry: a 429 is not a
// failure but a backpressure signal, so the client sleeps for the
// server's hint (body retry_after_ms preferred, Retry-After header as
// the fallback) plus jitter, then retries up to MaxAttempts.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8270".
	Base string
	// HTTP is the transport; nil uses http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds tries per request (<=0 means 8).
	MaxAttempts int
	// Stats tallies outcomes across all calls.
	Stats ClientStats

	mu  sync.Mutex
	rng *rand.Rand
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) attempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 8
}

// jitter returns a uniform duration in [0, d).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(c.rng.Int63n(int64(d)))
}

// backoff extracts the server's retry hint from a shed response.
func backoff(resp *http.Response, body []byte) time.Duration {
	var hint struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if json.Unmarshal(body, &hint) == nil && hint.RetryAfterMS > 0 {
		return time.Duration(hint.RetryAfterMS) * time.Millisecond
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 100 * time.Millisecond
}

// do issues one API call with shed-aware retry and decodes the
// response into out (when non-nil). Non-429 error statuses return an
// *APIError carrying the code; 429s retry until the budget runs out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var last error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, bytes.NewReader(payload))
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.Stats.Requests.Add(1)
		resp, err := c.httpClient().Do(req)
		if err != nil {
			c.Stats.Errors.Add(1)
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			c.Stats.Errors.Add(1)
			return err
		}
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			if out == nil {
				return nil
			}
			return json.Unmarshal(body, out)
		case resp.StatusCode == http.StatusTooManyRequests:
			c.Stats.Shed.Add(1)
			d := backoff(resp, body)
			last = &APIError{Code: resp.StatusCode, Msg: apiMessage(body),
				RetryAfter: d, RequestID: requestID(resp, body)}
			if attempt+1 >= c.attempts() {
				// Budget spent: surface the shed response itself — its
				// request ID joins the failure to the server's log line
				// and span tree.
				c.Stats.Errors.Add(1)
				return last
			}
			c.Stats.Retries.Add(1)
			select {
			case <-time.After(d + c.jitter(d/2)):
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			if resp.StatusCode >= 500 {
				c.Stats.FiveXX.Add(1)
			}
			return &APIError{Code: resp.StatusCode, Msg: apiMessage(body),
				RequestID: requestID(resp, body)}
		}
	}
	// Unreachable: the 429 arm returns once the budget is spent; keep a
	// defensive error for future control-flow edits.
	c.Stats.Errors.Add(1)
	return fmt.Errorf("retry budget exhausted after %d attempts: %w", c.attempts(), last)
}

// apiMessage pulls the error field out of a JSON error body, falling
// back to the raw body.
func apiMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(bytes.TrimSpace(body))
}

// requestID recovers the server-assigned request ID of a failed call
// (body field first, response header as the fallback) so shed and
// timeout failures stay joinable to server logs and span trees.
func requestID(resp *http.Response, body []byte) string {
	var e struct {
		RequestID string `json:"request_id"`
	}
	if json.Unmarshal(body, &e) == nil && e.RequestID != "" {
		return e.RequestID
	}
	return resp.Header.Get(RequestIDHeader)
}

// CreateSession creates a session and returns its info.
func (c *Client) CreateSession(ctx context.Context, req CreateSessionRequest) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPost, "/sessions", req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Run executes one run in the session and returns its reply.
func (c *Client) Run(ctx context.Context, id string, req RunRequest) (*RunReply, error) {
	var rep RunReply
	if err := c.do(ctx, http.MethodPost, "/sessions/"+id+"/runs", req, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Session fetches a session's info and counters.
func (c *Client) Session(ctx context.Context, id string) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodGet, "/sessions/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Retune applies new options to the session.
func (c *Client) Retune(ctx context.Context, id string, opts SessionOptions) (*SessionInfo, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPut, "/sessions/"+id, opts, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteSession cancels and removes the session.
func (c *Client) DeleteSession(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/sessions/"+id, nil, nil)
}

// Metrics fetches the server's counters and latency histograms.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// RunTrace fetches the retained span tree and final counter snapshot
// of one run.
func (c *Client) RunTrace(ctx context.Context, id string, seq int64) (*RunTrace, error) {
	var rt RunTrace
	path := fmt.Sprintf("/sessions/%s/runs/%d/trace", id, seq)
	if err := c.do(ctx, http.MethodGet, path, nil, &rt); err != nil {
		return nil, err
	}
	return &rt, nil
}

// WaitReady polls /readyz until the server answers 200 or ctx expires.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
