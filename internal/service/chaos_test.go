package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"tm3270/internal/service"
)

// TestChaos is the acceptance gate for the robustness envelope: many
// concurrent tenants hammer a deliberately under-provisioned server
// with fault-injected, deadline-squeezed, and randomly-deleted
// sessions, and the invariants must hold:
//
//   - overload answers 429, never a 5xx and never a hang;
//   - every admitted run resolves to a structured status;
//   - a panic quarantines only its own session;
//   - the final drain delivers every in-flight response.
//
// The session count scales with -short: 120 sessions in short mode,
// 1000 otherwise.
func TestChaos(t *testing.T) {
	nSessions := 1000
	if testing.Short() {
		nSessions = 120
	}
	runsPer := 3

	// Panic injection: one tenant in sixteen hits a worker fault on
	// its second run.
	srv, ts := newServer(t, service.Config{
		Workers:     8,
		QueueDepth:  16,
		MaxSessions: nSessions + 8,
		RetryAfter:  20 * time.Millisecond,
		RunDeadline: 20 * time.Second,
		BeforeRun: func(id string, seq int64) {
			if seq == 2 && chaosVictim(id) {
				panic("chaos: injected worker fault in " + id)
			}
		},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	workloadsPool := []string{"memcpy", "memset", "filter", "rgb2yuv", "majority_sel"}
	targets := []string{"a", "b", "c", "d"}
	injects := []string{"", "", "busdelay:0.5:64", "delaypf:0.5:100", ""}

	type tally struct {
		ok, trap, timeout, canceled, panicked int
		quarantined409, shed429, fiveXX       int
		transport                             int
	}
	var mu sync.Mutex
	var tot tally

	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bound concurrent client goroutines
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(int64(i)))
			c := newClient(ts)
			c.MaxAttempts = 50 // overload is expected; keep retrying

			var local tally
			defer func() {
				mu.Lock()
				tot.ok += local.ok
				tot.trap += local.trap
				tot.timeout += local.timeout
				tot.canceled += local.canceled
				tot.panicked += local.panicked
				tot.quarantined409 += local.quarantined409
				tot.shed429 += local.shed429
				tot.fiveXX += local.fiveXX
				tot.transport += local.transport
				mu.Unlock()
			}()

			info, err := c.CreateSession(ctx, service.CreateSessionRequest{
				Workload: workloadsPool[rng.Intn(len(workloadsPool))],
				Target:   targets[rng.Intn(len(targets))],
			})
			if err != nil {
				local.transport++
				t.Errorf("session %d: create failed: %v", i, err)
				return
			}
			for r := 0; r < runsPer; r++ {
				req := service.RunRequest{
					Inject: injects[rng.Intn(len(injects))],
					Seed:   int64(i*runsPer + r),
				}
				if rng.Intn(8) == 0 {
					req.DeadlineMS = 1 // squeeze some runs into timeouts
				}
				rep, err := c.Run(ctx, info.ID, req)
				if err != nil {
					ae, ok := err.(*service.APIError)
					switch {
					case ok && ae.Code == http.StatusConflict:
						local.quarantined409++
					case ok && ae.Code == http.StatusTooManyRequests:
						local.shed429++
					case ok && ae.Code >= 500:
						local.fiveXX++
						t.Errorf("session %s: got %d: %s", info.ID, ae.Code, ae.Msg)
					default:
						local.transport++
						t.Errorf("session %s run %d: %v", info.ID, r, err)
					}
					continue
				}
				switch rep.Status {
				case service.StatusOK:
					local.ok++
				case service.StatusTrap:
					local.trap++
				case service.StatusTimeout:
					local.timeout++
				case service.StatusCanceled:
					local.canceled++
				case service.StatusPanic:
					local.panicked++
				default:
					t.Errorf("session %s run %d: unstructured status %q (%s)",
						info.ID, r, rep.Status, rep.Error)
				}
			}
			// A few tenants delete themselves mid-campaign to exercise
			// DELETE-under-load.
			if rng.Intn(10) == 0 {
				if err := c.DeleteSession(ctx, info.ID); err != nil {
					if ae, ok := err.(*service.APIError); !ok || ae.Code < 400 || ae.Code >= 500 {
						t.Errorf("session %s: delete failed: %v", info.ID, err)
					}
				}
			}
		}(i)
	}
	wg.Wait()

	// The random 1 ms squeezes only bite when contention slows a run
	// past its deadline, so pin the timeout path with one run that
	// cannot finish in time.
	squeezeClient := newClient(ts)
	squeezeClient.MaxAttempts = 50
	squeeze, err := squeezeClient.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "mpeg2_super", Params: "full",
	})
	if err != nil {
		t.Fatalf("squeeze session: %v", err)
	}
	rep, err := squeezeClient.Run(ctx, squeeze.ID, service.RunRequest{DeadlineMS: 1})
	if err != nil {
		t.Fatalf("squeeze run: %v", err)
	}
	if rep.Status != service.StatusTimeout {
		t.Errorf("squeeze run status = %q (%s), want timeout", rep.Status, rep.Error)
	}
	mu.Lock()
	if rep.Status == service.StatusTimeout {
		tot.timeout++
	}
	mu.Unlock()

	// Drain: no new work, all in-flight runs settle.
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		t.Errorf("drain after chaos did not complete cleanly: %v", err)
	}

	snap := srv.Snapshot()
	if snap["service.runs.admitted"] != snap["service.runs.completed"] {
		t.Errorf("admitted %d != completed %d — runs were dropped",
			snap["service.runs.admitted"], snap["service.runs.completed"])
	}
	if tot.fiveXX != 0 {
		t.Errorf("%d responses were 5xx; the data plane must shed with 429", tot.fiveXX)
	}
	if tot.ok == 0 {
		t.Error("no run succeeded; the chaos drowned the service entirely")
	}
	if tot.panicked == 0 || snap["service.quarantines"] == 0 {
		t.Error("panic injection never fired; quarantine path untested")
	}
	if tot.timeout == 0 {
		t.Error("deadline squeeze never fired; timeout path untested")
	}
	t.Logf("chaos: %d sessions x %d runs: ok=%d trap=%d timeout=%d canceled=%d panic=%d "+
		"shed429=%d quarantined409=%d; server: admitted=%d completed=%d quarantines=%d shed(queue=%d quota=%d)",
		nSessions, runsPer, tot.ok, tot.trap, tot.timeout, tot.canceled, tot.panicked,
		tot.shed429, tot.quarantined409,
		snap["service.runs.admitted"], snap["service.runs.completed"],
		snap["service.quarantines"], snap["service.shed.queue"], snap["service.shed.quota"])
}

// chaosVictim deterministically marks ~1/16 of sessions for panic
// injection, keyed on the numeric session id.
func chaosVictim(id string) bool {
	var n int
	fmt.Sscanf(id, "s-%d", &n)
	return n%16 == 3
}
