package service

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"tm3270/internal/telemetry"
)

// RequestIDHeader carries the request ID on every response. Incoming
// requests may supply their own via the same header; otherwise the
// server mints one. The ID is the join key across the three
// observability surfaces: the structured request log line, the
// request's span tree, and error bodies.
const RequestIDHeader = "X-Request-ID"

// requestInfo is the request-scoped trace context threaded from the
// HTTP edge down to the cycle model: the request ID and the root span
// of the request's span tree.
type requestInfo struct {
	id   string
	span *telemetry.Span
}

// ID is nil-safe: direct API calls that bypass the HTTP edge carry no
// request context and report an empty ID.
func (ri *requestInfo) ID() string {
	if ri == nil {
		return ""
	}
	return ri.id
}

// Span is nil-safe; a nil requestInfo yields a nil (disabled) span.
func (ri *requestInfo) Span() *telemetry.Span {
	if ri == nil {
		return nil
	}
	return ri.span
}

type requestKey struct{}

func withRequest(ctx context.Context, ri *requestInfo) context.Context {
	return context.WithValue(ctx, requestKey{}, ri)
}

// requestFrom recovers the request-scoped trace context; nil when the
// call did not enter through the instrumented HTTP edge.
func requestFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(requestKey{}).(*requestInfo)
	return ri
}

// statusWriter captures the response status for the log line and the
// route histogram.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps one handler in the observability middleware: it mints
// (or accepts) the request ID, opens the request's root span on the
// session's track, observes the route latency histogram, and emits
// exactly one structured log line per request — all three sharing the
// request ID.
func (s *Server) route(label string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.lat.route[label]
	return func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = fmt.Sprintf("req-%d", s.nextReq.Add(1))
		}
		w.Header().Set(RequestIDHeader, reqID)

		sp := telemetry.NewSpan(label)
		sp.Annotate("request_id", reqID)
		session := r.PathValue("id")
		if session != "" {
			sp.SetTrack(session)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r.WithContext(withRequest(r.Context(), &requestInfo{id: reqID, span: sp})))
		d := time.Since(start)

		sp.Annotate("status", sw.code)
		sp.End()
		s.spans.Record(sp)
		if hist != nil {
			hist.Observe(d)
		}
		attrs := []slog.Attr{
			slog.String("request_id", reqID),
			slog.String("route", label),
			slog.String("method", r.Method),
			slog.Int("status", sw.code),
			slog.Int64("dur_us", d.Microseconds()),
		}
		if session != "" {
			attrs = append(attrs, slog.String("session", session))
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	}
}
