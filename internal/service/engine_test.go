package service_test

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"tm3270/internal/service"
)

// TestEngineRoundTrip covers the engine half of the run API: the
// session default, the per-run override, the engine-used report and
// the block-cache counters in the reply, and the per-engine counters
// in /metrics.
func TestEngineRoundTrip(t *testing.T) {
	srv, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	// Default session: runs execute on the block-cache engine and the
	// reply carries its translation counters.
	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(ctx, info.ID, service.RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusOK || rep.Engine != "blockcache" {
		t.Fatalf("default run: status=%q engine=%q, want ok on blockcache", rep.Status, rep.Engine)
	}
	if rep.BlockCache == nil || rep.BlockCache.Translated <= 0 {
		t.Fatalf("blockcache run reply carries no cache counters: %+v", rep.BlockCache)
	}

	// Per-run override: one interp run in a blockcache session.
	rep, err = c.Run(ctx, info.ID, service.RunRequest{Engine: "interp"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "interp" || rep.BlockCache != nil {
		t.Fatalf("interp override: engine=%q blockcache=%+v, want interp with no counters",
			rep.Engine, rep.BlockCache)
	}

	// Session-level engine: every run inherits it.
	info2, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "memcpy",
		Options:  service.SessionOptions{Engine: "interp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err = c.Run(ctx, info2.ID, service.RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "interp" {
		t.Fatalf("interp session ran on %q", rep.Engine)
	}

	// The per-engine run counters must account for the three runs.
	snap := srv.Snapshot()
	if bc, ip := snap["service.runs.engine.blockcache"], snap["service.runs.engine.interp"]; bc != 1 || ip != 2 {
		t.Errorf("engine counters blockcache=%d interp=%d, want 1 and 2", bc, ip)
	}
	if snap["service.blockcache.translated"] <= 0 {
		t.Error("service.blockcache.translated never moved")
	}
	if snap["service.blockcache.fallbacks"] != 0 {
		t.Errorf("counted %d fallbacks, none expected", snap["service.blockcache.fallbacks"])
	}
}

// TestEngineValidation: a bad engine selector is a 400 at every API
// edge — session creation, retune, and run submission — never a
// mid-execution error.
func TestEngineValidation(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	_, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "memcpy",
		Options:  service.SessionOptions{Engine: "turbo"},
	})
	wantBadRequest(t, "create", err)

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(ctx, info.ID, service.RunRequest{Engine: "turbo"})
	wantBadRequest(t, "run", err)
}

func wantBadRequest(t *testing.T, stage string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: bad engine accepted", stage)
	}
	var ae *service.APIError
	if !errors.As(err, &ae) || ae.Code != http.StatusBadRequest {
		t.Fatalf("%s: error %v, want a 400 APIError", stage, err)
	}
}
