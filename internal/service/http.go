package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// APIError is a structured request failure: an HTTP status, a message,
// and (for shed responses) the backoff hint clients should honor.
type APIError struct {
	Code       int           `json:"-"`
	Msg        string        `json:"error"`
	RetryAfter time.Duration `json:"-"`
	// RetryAfterMS mirrors RetryAfter in the JSON body so clients can
	// back off at sub-second precision (the Retry-After header rounds
	// up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func (e *APIError) Error() string { return e.Msg }

// writeError renders any error as JSON. *APIError keeps its status and
// attaches Retry-After; anything else is a 400 — the daemon reserves
// 5xx for nothing on the data plane.
func writeError(w http.ResponseWriter, err error) {
	ae, ok := err.(*APIError)
	if !ok {
		ae = &APIError{Code: http.StatusBadRequest, Msg: err.Error()}
	}
	if ae.RetryAfter > 0 {
		ae.RetryAfterMS = ae.RetryAfter.Milliseconds()
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, ae.Code, ae)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler builds the daemon's HTTP API:
//
//	POST   /sessions            create a session          (CTRL plane)
//	GET    /sessions            list sessions
//	GET    /sessions/{id}       session info + counters
//	PUT    /sessions/{id}       retune session options
//	DELETE /sessions/{id}       cancel + remove a session
//	POST   /sessions/{id}/runs  execute one run           (I/O plane)
//	GET    /healthz             liveness + counter summary
//	GET    /readyz              200, or 503 while draining
//	GET    /metrics             full telemetry snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var req CreateSessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		info, err := s.CreateSession(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Sessions())
	})

	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.SessionInfo(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("PUT /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		var opts SessionOptions
		if err := json.NewDecoder(r.Body).Decode(&opts); err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		info, err := s.Retune(r.PathValue("id"), opts)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteSession(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	})

	mux.HandleFunc("POST /sessions/{id}/runs", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		reply, err := s.Submit(r.PathValue("id"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		// The run owns the worker now; even if the client hangs up we
		// wait for its reply so accounting stays exact, but a gone
		// client gets no body. The run itself is bounded by its own
		// deadline, so this wait is too.
		rep := <-reply
		writeJSON(w, http.StatusOK, rep)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"uptime_ms": time.Since(s.start).Milliseconds(),
			"draining":  s.Draining(),
			"counters":  s.Snapshot(),
		})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.Snapshot().WriteJSON(w)
	})

	return mux
}
