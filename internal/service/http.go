package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tm3270/internal/telemetry"
)

// APIError is a structured request failure: an HTTP status, a message,
// and (for shed responses) the backoff hint clients should honor.
type APIError struct {
	Code       int           `json:"-"`
	Msg        string        `json:"error"`
	RetryAfter time.Duration `json:"-"`
	// RetryAfterMS mirrors RetryAfter in the JSON body so clients can
	// back off at sub-second precision (the Retry-After header rounds
	// up to whole seconds).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// RequestID joins the failure to the server's log line and span
	// tree for the same request.
	RequestID string `json:"request_id,omitempty"`
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("%s (request %s)", e.Msg, e.RequestID)
	}
	return e.Msg
}

// writeError renders any error as JSON. *APIError keeps its status and
// attaches Retry-After; anything else is a 400 — the daemon reserves
// 5xx for nothing on the data plane. The response's request ID (set by
// the middleware) rides along in the body so shed and timeout failures
// stay joinable to server logs.
func writeError(w http.ResponseWriter, err error) {
	ae, ok := err.(*APIError)
	if !ok {
		ae = &APIError{Code: http.StatusBadRequest, Msg: err.Error()}
	}
	if ae.RequestID == "" {
		ae.RequestID = w.Header().Get(RequestIDHeader)
	}
	if ae.RetryAfter > 0 {
		ae.RetryAfterMS = ae.RetryAfter.Milliseconds()
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, ae.Code, ae)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Metrics is the GET /metrics body: every counter plus every latency
// histogram, keyed by dotted name.
type Metrics struct {
	Counters   telemetry.Snapshot                     `json:"counters"`
	Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
}

// Handler builds the daemon's HTTP API. Every route runs inside the
// observability middleware: a request ID (minted, or honored from
// X-Request-ID) joins one structured log line, the request's span tree
// and the error body; per-route latency histograms feed /metrics.
//
//	POST   /sessions                       create a session   (CTRL plane)
//	GET    /sessions                       list sessions
//	GET    /sessions/{id}                  session info + counters
//	PUT    /sessions/{id}                  retune session options
//	DELETE /sessions/{id}                  cancel + remove a session
//	POST   /sessions/{id}/runs             execute one run    (I/O plane)
//	GET    /sessions/{id}/runs/{run}/trace span tree + final counters of one run
//	GET    /healthz                        liveness + counter summary
//	GET    /readyz                         200, or 503 while draining
//	GET    /metrics                        counters + latency histograms
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /sessions", s.route("sessions.create", func(w http.ResponseWriter, r *http.Request) {
		var req CreateSessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		info, err := s.CreateSession(req)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	}))

	mux.HandleFunc("GET /sessions", s.route("sessions.list", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Sessions())
	}))

	mux.HandleFunc("GET /sessions/{id}", s.route("sessions.get", func(w http.ResponseWriter, r *http.Request) {
		info, err := s.SessionInfo(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	}))

	mux.HandleFunc("PUT /sessions/{id}", s.route("sessions.retune", func(w http.ResponseWriter, r *http.Request) {
		var opts SessionOptions
		if err := json.NewDecoder(r.Body).Decode(&opts); err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		info, err := s.Retune(r.PathValue("id"), opts)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	}))

	mux.HandleFunc("DELETE /sessions/{id}", s.route("sessions.delete", func(w http.ResponseWriter, r *http.Request) {
		if err := s.DeleteSession(r.PathValue("id")); err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	}))

	mux.HandleFunc("POST /sessions/{id}/runs", s.route("runs", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		runStart := time.Now()
		reply, err := s.Submit(r.Context(), r.PathValue("id"), req)
		if err != nil {
			writeError(w, err)
			return
		}
		// The run owns the worker now; even if the client hangs up we
		// wait for its reply so accounting stays exact, but a gone
		// client gets no body. The run itself is bounded by its own
		// deadline, so this wait is too.
		rep := <-reply
		ri := requestFrom(r.Context())
		encSpan := ri.Span().StartChild("encode-response")
		encStart := time.Now()
		writeJSON(w, http.StatusOK, rep)
		encSpan.End()
		s.lat.encode.Observe(time.Since(encStart))
		s.lat.run.Observe(time.Since(runStart))
	}))

	mux.HandleFunc("GET /sessions/{id}/runs/{run}/trace", s.route("runs.trace", func(w http.ResponseWriter, r *http.Request) {
		seq, err := strconv.ParseInt(r.PathValue("run"), 10, 64)
		if err != nil {
			writeError(w, &APIError{Code: 400, Msg: "bad run sequence: " + err.Error()})
			return
		}
		rt, err := s.RunTrace(r.PathValue("id"), seq)
		if err != nil {
			writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rt)
	}))

	mux.HandleFunc("GET /healthz", s.route("healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":    "ok",
			"uptime_ms": time.Since(s.start).Milliseconds(),
			"draining":  s.Draining(),
			"counters":  s.Snapshot(),
		})
	}))

	mux.HandleFunc("GET /readyz", s.route("readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}))

	mux.HandleFunc("GET /metrics", s.route("metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Metrics{
			Counters:   s.Snapshot(),
			Histograms: s.Histograms(),
		})
	}))

	return mux
}
