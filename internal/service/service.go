// Package service is the multi-tenant simulation daemon behind
// cmd/tm3270d: clients create processor sessions over a CTRL plane
// (POST/GET/PUT/DELETE on /sessions, the MediaProcessors shape) and
// stream run requests in / results and telemetry snapshots out over a
// decoupled I/O plane (POST /sessions/{id}/runs), backed by the batch
// runner's worker pool and singleflight compile-artifact cache.
//
// The headline is the robustness envelope, not the plumbing:
//
//   - Bounded admission. A server-wide queue (runner.Pool's TrySubmit
//     bound) and per-session quotas shed overload as 429 + Retry-After
//     instead of queueing without bound. The daemon never answers a
//     data-plane request with a 5xx.
//   - Deadlines. Per-session and per-request deadlines map onto
//     RunContext cancellation: an expired run surfaces as a structured
//     timeout response (tmsim's TrapCanceled), never a hung connection.
//   - Panic isolation. A run that panics — in workload init, output
//     check, or a simulator-core fault the machine reports as
//     TrapInternal — quarantines its session and increments a counter;
//     every other session keeps streaming.
//   - Graceful drain. Drain stops admission, waits for in-flight runs
//     within the caller's deadline, then cancels stragglers
//     cooperatively; every admitted run still delivers its response.
//   - Observability. Health/readiness endpoints and /metrics are fed
//     by the telemetry counter registry the simulator already uses.
package service

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/runner"
	"tm3270/internal/telemetry"
)

// Config tunes the server. The zero value selects sane defaults.
type Config struct {
	// Workers bounds concurrent simulations (<=0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds runs accepted but not yet executing; a full
	// queue sheds with 429 (default 64).
	QueueDepth int
	// MaxSessions bounds live sessions; excess creations shed with 429
	// (default 4096).
	MaxSessions int
	// SessionQuota is the default per-session bound on in-flight runs
	// (default 8); sessions may lower or raise it at create/retune.
	SessionQuota int
	// RunDeadline is the default per-run wall-clock budget (default
	// 30s); sessions and individual requests may override it.
	RunDeadline time.Duration
	// RetryAfter is the backoff hint attached to every shed response
	// (default 1s).
	RetryAfter time.Duration
	// DefaultEngine is the execution engine for sessions that do not
	// pick one ("blockcache" or "interp"; empty means blockcache). The
	// value must parse with tmsim.ParseEngine — the daemon validates
	// its flag before constructing the server.
	DefaultEngine string
	// Cache memoizes compile artifacts across sessions; nil allocates a
	// private one.
	Cache *runner.Cache
	// BeforeRun, when non-nil, is invoked on the worker goroutine
	// before each run executes, inside the panic-isolation scope. The
	// chaos suite uses it to inject worker-level failures; production
	// servers leave it nil.
	BeforeRun func(sessionID string, seq int64)
	// Log receives one structured line per request (the request ID
	// joins it to spans and metrics); nil discards.
	Log *slog.Logger
	// SpanCap bounds the serving-window span recorder (<=0 selects
	// telemetry.DefaultMaxSpans).
	SpanCap int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.MaxSessions <= 0 {
		out.MaxSessions = 4096
	}
	if out.SessionQuota <= 0 {
		out.SessionQuota = 8
	}
	if out.RunDeadline <= 0 {
		out.RunDeadline = 30 * time.Second
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = time.Second
	}
	if out.Cache == nil {
		out.Cache = runner.NewCache()
	}
	return out
}

// counters is the server's atomic counter block, exposed through the
// telemetry registry (snapshot reads load atomically, so the registry
// stays race-free under concurrent handlers).
type counters struct {
	admitted, completed                              atomic.Int64
	shedQueue, shedQuota, shedDraining, shedSessions atomic.Int64
	runsOK, runsTrap, runsTimeout, runsCanceled      atomic.Int64
	runsCheckFailed, runsPanic                       atomic.Int64
	runsBlockCache, runsInterp                       atomic.Int64
	bcTranslated, bcHits, bcInvalidations            atomic.Int64
	bcFallbacks                                      atomic.Int64
	panics, quarantines                              atomic.Int64
	sessionsCreated, sessionsDeleted                 atomic.Int64
}

// latencyHists is the server's fixed-bucket latency histogram block:
// one histogram per run stage (each observed exactly once per admitted
// run, so every stage histogram's bucket sum equals
// service.runs.admitted) plus one per route.
type latencyHists struct {
	admit, queue, compile, execute, encode, run *telemetry.Histogram
	route                                       map[string]*telemetry.Histogram
}

// Server is one daemon instance. Create it with New, serve its
// Handler, and shut it down with Drain followed by Close.
type Server struct {
	cfg     Config
	cache   *runner.Cache
	pool    *runner.Pool
	reg     *telemetry.Registry
	spans   *telemetry.Spans
	log     *slog.Logger
	lat     latencyHists
	nextReq atomic.Int64
	start   time.Time

	// The server's own lifetime, not a request's: every session context
	// derives from it so Close cancels the whole tree.
	rootCtx    context.Context //tmvet:allow
	rootCancel context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   atomic.Int64

	// drainMu orders admission against Drain: admission holds the read
	// side around (draining check, runs.Add), Drain holds the write
	// side to flip the flag, so no run slips past a started drain.
	drainMu  sync.RWMutex
	draining bool
	runs     sync.WaitGroup

	c counters
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	c := cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	log := c.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:        c,
		cache:      c.Cache,
		pool:       runner.NewPool(c.Workers, c.QueueDepth),
		reg:        telemetry.NewRegistry(),
		spans:      telemetry.NewSpans(c.SpanCap),
		log:        log,
		start:      time.Now(),
		rootCtx:    ctx,
		rootCancel: cancel,
		sessions:   make(map[string]*Session),
	}
	s.register()
	return s
}

// register wires the counter block into the telemetry registry under
// the service's stable dotted names.
func (s *Server) register() {
	c := &s.c
	s.reg.Func("service.runs.admitted", c.admitted.Load)
	s.reg.Func("service.runs.completed", c.completed.Load)
	s.reg.Func("service.runs.ok", c.runsOK.Load)
	s.reg.Func("service.runs.trap", c.runsTrap.Load)
	s.reg.Func("service.runs.timeout", c.runsTimeout.Load)
	s.reg.Func("service.runs.canceled", c.runsCanceled.Load)
	s.reg.Func("service.runs.checkfail", c.runsCheckFailed.Load)
	s.reg.Func("service.runs.panic", c.runsPanic.Load)
	s.reg.Func("service.runs.engine.blockcache", c.runsBlockCache.Load)
	s.reg.Func("service.runs.engine.interp", c.runsInterp.Load)
	s.reg.Func("service.blockcache.translated", c.bcTranslated.Load)
	s.reg.Func("service.blockcache.hits", c.bcHits.Load)
	s.reg.Func("service.blockcache.invalidations", c.bcInvalidations.Load)
	s.reg.Func("service.blockcache.fallbacks", c.bcFallbacks.Load)
	s.reg.Func("service.shed.queue", c.shedQueue.Load)
	s.reg.Func("service.shed.quota", c.shedQuota.Load)
	s.reg.Func("service.shed.draining", c.shedDraining.Load)
	s.reg.Func("service.shed.sessions", c.shedSessions.Load)
	s.reg.Func("service.panics", c.panics.Load)
	s.reg.Func("service.quarantines", c.quarantines.Load)
	s.reg.Func("service.sessions.created", c.sessionsCreated.Load)
	s.reg.Func("service.sessions.deleted", c.sessionsDeleted.Load)
	s.reg.Func("service.sessions.live", func() int64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return int64(len(s.sessions))
	})
	s.reg.Func("service.cache.hit", func() int64 { return s.cache.Stats().Hits })
	s.reg.Func("service.cache.miss", func() int64 { return s.cache.Stats().Misses })

	// Per-stage latency histograms: each observed exactly once per
	// admitted run, so bucket sums equal service.runs.admitted (the
	// smoke test's well-formedness assertion).
	newH := func() *telemetry.Histogram { return telemetry.NewHistogram(nil) }
	s.lat.admit = newH()
	s.lat.queue = newH()
	s.lat.compile = newH()
	s.lat.execute = newH()
	s.lat.encode = newH()
	s.lat.run = newH()
	s.reg.Histogram("service.latency.stage.admit", s.lat.admit)
	s.reg.Histogram("service.latency.stage.queue", s.lat.queue)
	s.reg.Histogram("service.latency.stage.compile", s.lat.compile)
	s.reg.Histogram("service.latency.stage.execute", s.lat.execute)
	s.reg.Histogram("service.latency.stage.encode", s.lat.encode)
	s.reg.Histogram("service.latency.stage.run", s.lat.run)

	// Per-route latency histograms, observed by the middleware for
	// every request of the route (shed and error responses included).
	s.lat.route = make(map[string]*telemetry.Histogram)
	rt := func(label string) *telemetry.Histogram {
		h := telemetry.NewHistogram(nil)
		s.lat.route[label] = h
		return h
	}
	s.reg.Histogram("service.latency.route.sessions.create", rt("sessions.create"))
	s.reg.Histogram("service.latency.route.sessions.list", rt("sessions.list"))
	s.reg.Histogram("service.latency.route.sessions.get", rt("sessions.get"))
	s.reg.Histogram("service.latency.route.sessions.retune", rt("sessions.retune"))
	s.reg.Histogram("service.latency.route.sessions.delete", rt("sessions.delete"))
	s.reg.Histogram("service.latency.route.runs", rt("runs"))
	s.reg.Histogram("service.latency.route.runs.trace", rt("runs.trace"))
	s.reg.Histogram("service.latency.route.healthz", rt("healthz"))
	s.reg.Histogram("service.latency.route.readyz", rt("readyz"))
	s.reg.Histogram("service.latency.route.metrics", rt("metrics"))
}

// Snapshot returns a point-in-time view of every service counter.
func (s *Server) Snapshot() telemetry.Snapshot { return s.reg.Snapshot() }

// Histograms snapshots every latency histogram, keyed by dotted name.
func (s *Server) Histograms() map[string]telemetry.HistogramSnapshot {
	return s.reg.Histograms()
}

// Spans returns the serving-window span recorder.
func (s *Server) Spans() *telemetry.Spans { return s.spans }

// WriteTrace exports the serving window's span trees as a
// Perfetto-loadable Chrome trace-event file: one track per session,
// each request a span tree of admit → queue-wait → compile →
// execute → encode-response stages.
func (s *Server) WriteTrace(w io.Writer) error { return s.spans.WriteTrace(w) }

// Draining reports whether a drain has started.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// admit registers one run against the drain barrier. It fails exactly
// when a drain has started.
func (s *Server) admit() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.runs.Add(1)
	return true
}

// Drain stops admission and waits for in-flight runs. If ctx expires
// first, every session is canceled so the stragglers abort
// cooperatively — their responses are still delivered (as structured
// cancellations), just not their full simulations. Drain returns nil
// on a clean drain and ctx.Err() when it had to cancel.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.runs.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close cancels every session and stops the worker pool. Call it after
// Drain (or alone in tests); it does not wait for HTTP responses —
// that is the HTTP server's Shutdown.
func (s *Server) Close() {
	s.rootCancel()
	s.pool.Close()
}

// newSessionID mints a process-unique session identifier.
func (s *Server) newSessionID() string {
	return fmt.Sprintf("s-%d", s.nextID.Add(1))
}

// parseTarget maps the API's target names onto the paper's processor
// configurations.
func parseTarget(name string) (config.Target, error) {
	switch strings.ToLower(name) {
	case "", "d", "tm3270":
		return config.ConfigD(), nil
	case "a", "tm3260":
		return config.ConfigA(), nil
	case "b":
		return config.ConfigB(), nil
	case "c":
		return config.ConfigC(), nil
	}
	return config.Target{}, fmt.Errorf("unknown target %q (want A-D, TM3260 or TM3270)", name)
}
