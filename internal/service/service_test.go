package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tm3270/internal/runner"
	"tm3270/internal/service"
)

// newServer builds a test server with a tight config and returns it
// with its HTTP wrapper. The shared cache keeps compile costs to one
// per (workload, params, target) across the whole test binary.
var sharedCache = runner.NewCache()

func newServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = sharedCache
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func newClient(ts *httptest.Server) *service.Client {
	return &service.Client{Base: ts.URL, HTTP: ts.Client()}
}

// TestRunLifecycle: create -> run -> inspect -> delete, all on the
// happy path. The run must complete with status ok and real cycle
// counts, and the session counters must reflect it.
func TestRunLifecycle(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != service.StateActive || !strings.Contains(info.Target, "TM3270") || info.Params != "small" {
		t.Fatalf("unexpected session info: %+v", info)
	}

	rep, err := c.Run(ctx, info.ID, service.RunRequest{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusOK {
		t.Fatalf("run status = %q (%s), want ok", rep.Status, rep.Error)
	}
	if rep.Cycles <= 0 || rep.Instrs <= 0 {
		t.Errorf("run reported no work: cycles=%d instrs=%d", rep.Cycles, rep.Instrs)
	}
	if len(rep.Counters) == 0 {
		t.Error("telemetry requested but no counters attached")
	}

	got, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters.Completed != 1 || got.Counters.OK != 1 {
		t.Errorf("session counters = %+v, want completed=1 ok=1", got.Counters)
	}
	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, info.ID); err == nil {
		t.Error("deleted session still answers GET")
	}
}

// TestCreateValidation: bad workload, bad target, bad params must all
// come back as 400s with messages, not 5xx.
func TestCreateValidation(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	for _, req := range []service.CreateSessionRequest{
		{Workload: "no-such-workload"},
		{Workload: "memcpy", Target: "z80"},
		{Workload: "memcpy", Params: "enormous"},
	} {
		_, err := c.CreateSession(ctx, req)
		ae, ok := err.(*service.APIError)
		if !ok || ae.Code != http.StatusBadRequest {
			t.Errorf("CreateSession(%+v) err = %v, want 400 APIError", req, err)
		}
	}
	if _, err := c.Run(ctx, "s-999", service.RunRequest{}); err == nil {
		t.Error("run on unknown session succeeded")
	} else if ae, ok := err.(*service.APIError); !ok || ae.Code != http.StatusNotFound {
		t.Errorf("run on unknown session err = %v, want 404", err)
	}
}

// TestQueueFullSheds: with one worker wedged on a slow run and the
// queue at depth 1, the next submission must shed with 429 and a
// Retry-After hint — never block, never 5xx.
func TestQueueFullSheds(t *testing.T) {
	block := make(chan struct{})
	srv, ts := newServer(t, service.Config{
		Workers:    1,
		QueueDepth: 1,
		BeforeRun:  func(string, int64) { <-block },
	})
	var unblockOnce sync.Once
	unblock := func() { unblockOnce.Do(func() { close(block) }) }
	t.Cleanup(unblock) // before ts.Close so a Fatal path can't wedge shutdown
	c := newClient(ts)
	c.MaxAttempts = 1 // surface the 429 instead of retrying through it
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memset"})
	if err != nil {
		t.Fatal(err)
	}

	// Two async runs: one wedges the worker, one fills the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c2 := newClient(ts)
			if _, err := c2.Run(ctx, info.ID, service.RunRequest{}); err != nil {
				t.Errorf("admitted run failed: %v", err)
			}
		}()
	}
	// Wait for worker wedge + queue fill.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot()["service.runs.admitted"] < 2 {
		if time.Now().After(deadline) {
			t.Fatal("runs never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err = c.Run(ctx, info.ID, service.RunRequest{})
	ae, ok := err.(*service.APIError)
	if !ok || ae.Code != http.StatusTooManyRequests {
		t.Fatalf("overload run err = %v, want 429", err)
	}
	if ae.RetryAfter <= 0 {
		t.Error("shed response carried no retry hint")
	}
	if srv.Snapshot()["service.shed.queue"] == 0 {
		t.Error("queue shed not counted")
	}
	unblock()
	wg.Wait()
}

// TestQuotaSheds: a session with quota 1 must shed its second
// concurrent run with 429 while the first is still executing.
func TestQuotaSheds(t *testing.T) {
	block := make(chan struct{})
	srv, ts := newServer(t, service.Config{
		Workers:   2,
		BeforeRun: func(string, int64) { <-block },
	})
	var unblockOnce sync.Once
	unblock := func() { unblockOnce.Do(func() { close(block) }) }
	t.Cleanup(unblock)
	c := newClient(ts)
	c.MaxAttempts = 1
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "memset",
		Options:  service.SessionOptions{Quota: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := newClient(ts).Run(ctx, info.ID, service.RunRequest{})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot()["service.runs.admitted"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first run never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err = c.Run(ctx, info.ID, service.RunRequest{})
	if ae, ok := err.(*service.APIError); !ok || ae.Code != http.StatusTooManyRequests {
		t.Fatalf("quota overflow err = %v, want 429", err)
	}
	if srv.Snapshot()["service.shed.quota"] == 0 {
		t.Error("quota shed not counted")
	}
	unblock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestRunDeadline: a run whose deadline expires mid-simulation must
// come back as a structured timeout (200 + status=timeout), not a hung
// connection or a 5xx.
func TestRunDeadline(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "mpeg2_super", Params: "full",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(ctx, info.ID, service.RunRequest{DeadlineMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusTimeout {
		t.Fatalf("run status = %q (%s), want timeout", rep.Status, rep.Error)
	}
	if rep.Trap == nil || rep.Trap.Kind != "canceled" {
		t.Errorf("timeout reply trap = %+v, want canceled kind", rep.Trap)
	}
}

// TestDeleteCancelsInFlight: DELETE on a session with a run in
// progress must abort it cooperatively; the run's already-admitted
// reply still arrives, classified canceled.
func TestDeleteCancelsInFlight(t *testing.T) {
	admitted := make(chan struct{})
	var once sync.Once
	_, ts := newServer(t, service.Config{
		BeforeRun: func(string, int64) { once.Do(func() { close(admitted) }) },
	})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "mpeg2_super", Params: "full",
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *service.RunReply, 1)
	go func() {
		rep, err := newClient(ts).Run(ctx, info.ID, service.RunRequest{DeadlineMS: 60_000})
		if err != nil {
			t.Errorf("in-flight run transport error: %v", err)
			done <- nil
			return
		}
		done <- rep
	}()
	<-admitted
	if err := c.DeleteSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case rep := <-done:
		if rep == nil {
			t.Fatal("no reply")
		}
		if rep.Status != service.StatusCanceled {
			t.Errorf("deleted session's run status = %q (%s), want canceled", rep.Status, rep.Error)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight run never replied after DELETE — hung connection")
	}
}

// TestPanicQuarantine: a panicking run must (1) answer with a
// structured panic status, (2) quarantine only its session — 409 on
// resubmit — and (3) leave other sessions streaming normally.
func TestPanicQuarantine(t *testing.T) {
	srv, ts := newServer(t, service.Config{
		BeforeRun: func(id string, seq int64) {
			if id == "s-1" {
				panic("chaos: injected worker fault")
			}
		},
	})
	c := newClient(ts)
	ctx := context.Background()

	bad, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	good, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := c.Run(ctx, bad.ID, service.RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusPanic {
		t.Fatalf("panicking run status = %q, want panic", rep.Status)
	}
	if !strings.Contains(rep.Error, "quarantined") {
		t.Errorf("panic reply error = %q, want quarantine notice", rep.Error)
	}

	// The poisoned session refuses further runs with 409.
	if _, err := c.Run(ctx, bad.ID, service.RunRequest{}); err == nil {
		t.Error("quarantined session accepted a run")
	} else if ae, ok := err.(*service.APIError); !ok || ae.Code != http.StatusConflict {
		t.Errorf("quarantined session err = %v, want 409", err)
	}

	// Unrelated sessions are untouched.
	rep, err = c.Run(ctx, good.ID, service.RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusOK {
		t.Errorf("sibling session run status = %q (%s), want ok", rep.Status, rep.Error)
	}

	snap := srv.Snapshot()
	if snap["service.panics"] != 1 || snap["service.quarantines"] != 1 {
		t.Errorf("panics=%d quarantines=%d, want 1/1",
			snap["service.panics"], snap["service.quarantines"])
	}
	bi, err := c.Session(ctx, bad.ID)
	if err != nil {
		t.Fatal(err)
	}
	if bi.State != service.StateQuarantined || bi.Reason == "" {
		t.Errorf("poisoned session state = %q reason=%q, want quarantined", bi.State, bi.Reason)
	}
}

// TestDrain: once a drain starts, new runs shed with 429 while every
// in-flight run still delivers its reply; a drain that outlives its
// deadline cancels stragglers but never drops their responses.
func TestDrain(t *testing.T) {
	admitted := make(chan struct{})
	var once sync.Once
	srv, ts := newServer(t, service.Config{
		BeforeRun: func(string, int64) { once.Do(func() { close(admitted) }) },
	})
	c := newClient(ts)
	c.MaxAttempts = 1
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{
		Workload: "mpeg2_super", Params: "full",
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *service.RunReply, 1)
	go func() {
		rep, err := newClient(ts).Run(ctx, info.ID, service.RunRequest{DeadlineMS: 60_000})
		if err != nil {
			t.Errorf("in-flight run transport error: %v", err)
			done <- nil
			return
		}
		done <- rep
	}()
	<-admitted

	// Drain with a deadline too short for the full-size run: it must
	// cancel the straggler, return ctx.Err, and the reply must still
	// arrive as a structured cancellation.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(dctx); err != context.DeadlineExceeded {
		t.Errorf("Drain = %v, want DeadlineExceeded (straggler cancel)", err)
	}

	// Admission is closed: new runs shed with 429, readiness reports it.
	if _, err := c.Run(ctx, info.ID, service.RunRequest{}); err == nil {
		t.Error("draining server admitted a run")
	} else if ae, ok := err.(*service.APIError); !ok || ae.Code != http.StatusTooManyRequests {
		t.Errorf("draining admission err = %v, want 429", err)
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
	}

	select {
	case rep := <-done:
		if rep == nil {
			t.Fatal("no reply")
		}
		if rep.Status != service.StatusCanceled && rep.Status != service.StatusOK {
			t.Errorf("drained run status = %q (%s), want canceled (or ok if it won the race)",
				rep.Status, rep.Error)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight run dropped during drain")
	}
}

// TestRetune: PUT swaps session options for subsequent runs — here a
// 1-instruction watchdog, which must turn the next run into a trap.
func TestRetune(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Retune(ctx, info.ID, service.SessionOptions{WatchdogInstrs: 1}); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(ctx, info.ID, service.RunRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusTrap || rep.Trap == nil || rep.Trap.Kind != "watchdog" {
		t.Errorf("retuned run = %q trap=%+v, want watchdog trap", rep.Status, rep.Trap)
	}
}

// TestFaultInjectionRun: an injected fault campaign runs through the
// service and reports its event count; an undecodable spec is a 400.
func TestFaultInjectionRun(t *testing.T) {
	_, ts := newServer(t, service.Config{})
	c := newClient(ts)
	ctx := context.Background()

	info, err := c.CreateSession(ctx, service.CreateSessionRequest{Workload: "memcpy"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(ctx, info.ID, service.RunRequest{Inject: "busdelay:1:32", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != service.StatusOK {
		t.Fatalf("busdelay run status = %q (%s), want ok (delays are benign)", rep.Status, rep.Error)
	}
	if rep.Faults == 0 {
		t.Error("rate-1 injection reported zero fault events")
	}
	if _, err := c.Run(ctx, info.ID, service.RunRequest{Inject: "nonsense:9:9"}); err == nil {
		t.Error("bad inject spec accepted")
	}
}
