// Package cabac implements the context-based adaptive binary arithmetic
// coding substrate used by the TM3270 CABAC operations and by the H.264-
// style entropy decoding workloads: the 64-state probability model, a
// binary arithmetic encoder (to generate decodable bitstreams), and the
// reference decoder matching Figure 2 of the paper.
//
// The probability tables are structurally identical to H.264's (a 64x4
// LPS range table quantized on range bits [7:6], and MPS/LPS state
// transition tables) but are derived here from the exponential-aging
// model of the CABAC paper (Marpe et al., 2003) rather than copied from
// the standard. Encoder, decoder and the TM3270 CABAC operations all
// share these tables, so every bitstream round-trips exactly; the
// instruction-count measurements of Table 3 are insensitive to the
// specific table values.
package cabac

import "math"

// NumStates is the number of probability states of a context model.
const NumStates = 64

// alpha is the aging factor of the exponential probability model:
// pLPS(s) = 0.5 * alpha^s.
const alpha = 0.95

var (
	// rangeLPS[s][q] is the sub-range assigned to the least probable
	// symbol in state s when the coding range, quantized by bits [7:6],
	// falls in bucket q.
	rangeLPS [NumStates][4]uint32

	// nextMPS[s] and nextLPS[s] are the state transitions after
	// observing the most/least probable symbol.
	nextMPS [NumStates]uint8
	nextLPS [NumStates]uint8
)

func init() {
	for s := 0; s < NumStates; s++ {
		p := pLPS(s)
		for q := 0; q < 4; q++ {
			// Representative range value for bucket q: the midpoint of
			// [256+64q, 256+64(q+1)).
			rep := float64(256 + 64*q + 32)
			r := uint32(math.Round(rep * p))
			if r < 2 {
				r = 2
			}
			if r > 240 {
				r = 240
			}
			rangeLPS[s][q] = r
		}
		if s < NumStates-1 {
			nextMPS[s] = uint8(s + 1)
		} else {
			nextMPS[s] = uint8(s)
		}
		// After an LPS the probability estimate ages toward the LPS:
		// p' = alpha*p + (1-alpha). Map p' back to the nearest state.
		pp := alpha*p + (1 - alpha)
		ns := int(math.Round(math.Log(pp/0.5) / math.Log(alpha)))
		if ns < 0 {
			ns = 0
		}
		if ns > NumStates-2 {
			ns = NumStates - 2
		}
		nextLPS[s] = uint8(ns)
	}
}

func pLPS(s int) float64 { return 0.5 * math.Pow(alpha, float64(s)) }

// RangeLPS returns the LPS sub-range for probability state s (0..63) and
// the quantized range bucket q (0..3, i.e. (range>>6)&3).
func RangeLPS(s, q uint32) uint32 { return rangeLPS[s&63][q&3] }

// NextMPS returns the state reached from s after an MPS.
func NextMPS(s uint32) uint32 { return uint32(nextMPS[s&63]) }

// NextLPS returns the state reached from s after an LPS.
func NextLPS(s uint32) uint32 { return uint32(nextLPS[s&63]) }

// StepResult is the outcome of one binary arithmetic decoding step
// (Figure 2 of the paper, "biari_decode_symbol"), covering both the
// context update (value, range, state, mps) and the bitstream side
// (decoded bit, number of stream bits consumed by renormalization).
type StepResult struct {
	Value    uint32 // new coding value (10 bits)
	Range    uint32 // new coding range (9 bits, in [256, 511])
	State    uint32 // new probability state (6 bits)
	MPS      uint32 // new most-probable-symbol value (1 bit)
	Bit      uint32 // decoded binary value
	Consumed int    // stream bits consumed (0..8)
}

// Step decodes a single binary symbol. streamAligned must hold the
// bitstream window left-aligned so that its most significant bit is the
// next unread stream bit (i.e. stream_data << stream_bit_position).
//
// It is the shared core of the reference software decoder and of the
// SUPER_CABAC_CTX / SUPER_CABAC_STR operation semantics.
func Step(value, rng, streamAligned, state, mps uint32) StepResult {
	rlps := RangeLPS(state, (rng>>6)&3)
	tempRange := rng - rlps
	var res StepResult
	if value < tempRange {
		// Most probable symbol.
		res.Value = value
		res.Range = tempRange
		res.Bit = mps
		res.MPS = mps
		res.State = NextMPS(state)
	} else {
		// Least probable symbol. The MPS flips when the state has aged
		// all the way down to equiprobability (state 0), as in H.264.
		res.Value = value - tempRange
		res.Range = rlps
		res.Bit = mps ^ 1
		if state == 0 {
			res.MPS = mps ^ 1
		} else {
			res.MPS = mps
		}
		res.State = NextLPS(state)
	}
	// Renormalization: at most 8 bits can be consumed per symbol.
	for res.Range < 256 {
		res.Value = (res.Value << 1) | ((streamAligned >> 31) & 1)
		res.Range <<= 1
		streamAligned <<= 1
		res.Consumed++
	}
	return res
}
