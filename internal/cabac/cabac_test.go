package cabac

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableShapes(t *testing.T) {
	for s := 0; s < NumStates; s++ {
		for q := 0; q < 4; q++ {
			r := rangeLPS[s][q]
			if r < 2 || r > 240 {
				t.Errorf("rangeLPS[%d][%d] = %d out of [2,240]", s, q, r)
			}
			// The MPS sub-range must stay positive for any range in the
			// bucket (minimum range is 256+64q).
			if r >= uint32(256+64*q) {
				t.Errorf("rangeLPS[%d][%d] = %d leaves no MPS range", s, q, r)
			}
		}
		// LPS probability decreases with state, so the LPS range must be
		// non-increasing in s for a fixed bucket.
		if s > 0 {
			for q := 0; q < 4; q++ {
				if rangeLPS[s][q] > rangeLPS[s-1][q] {
					t.Errorf("rangeLPS not monotonic at state %d bucket %d", s, q)
				}
			}
		}
		// And increasing in the bucket for a fixed state.
		for q := 1; q < 4; q++ {
			if rangeLPS[s][q] < rangeLPS[s][q-1] {
				t.Errorf("rangeLPS not monotonic in bucket at state %d", s)
			}
		}
	}
	for s := 0; s < NumStates; s++ {
		if int(nextMPS[s]) != min(s+1, NumStates-1) {
			t.Errorf("nextMPS[%d] = %d", s, nextMPS[s])
		}
		if int(nextLPS[s]) > s {
			t.Errorf("nextLPS[%d] = %d must not exceed s (LPS ages the model down)", s, nextLPS[s])
		}
	}
	if nextLPS[0] != 0 {
		t.Errorf("nextLPS[0] = %d, want 0", nextLPS[0])
	}
}

func TestStepInvariants(t *testing.T) {
	f := func(value uint16, rngSeed uint16, aligned uint32, state, mps uint8) bool {
		rng := uint32(rngSeed%255) + 256
		v := uint32(value) % rng
		res := Step(v, rng, aligned, uint32(state&63), uint32(mps&1))
		if res.Range < 256 || res.Range > 510 {
			return false
		}
		if res.Consumed < 0 || res.Consumed > 8 {
			return false
		}
		if res.State >= NumStates {
			return false
		}
		return res.MPS <= 1 && res.Bit <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestStepMPSvsLPS(t *testing.T) {
	// value < range-rangeLPS must decode the MPS; otherwise the LPS.
	rng := uint32(400)
	state, mps := uint32(10), uint32(1)
	rlps := RangeLPS(state, (rng>>6)&3)
	mpsRes := Step(rng-rlps-1, rng, 0, state, mps)
	if mpsRes.Bit != mps {
		t.Errorf("MPS path decoded %d", mpsRes.Bit)
	}
	if mpsRes.State != NextMPS(state) {
		t.Errorf("MPS state %d, want %d", mpsRes.State, NextMPS(state))
	}
	lpsRes := Step(rng-rlps, rng, 0, state, mps)
	if lpsRes.Bit != mps^1 {
		t.Errorf("LPS path decoded %d", lpsRes.Bit)
	}
	if lpsRes.State != NextLPS(state) {
		t.Errorf("LPS state %d, want %d", lpsRes.State, NextLPS(state))
	}
	if lpsRes.MPS != mps {
		t.Errorf("MPS must not flip at state %d", state)
	}
	// At state 0 the MPS flips on an LPS.
	rlps0 := RangeLPS(0, (rng>>6)&3)
	flip := Step(rng-rlps0, rng, 0, 0, 1)
	if flip.MPS != 0 {
		t.Errorf("MPS must flip at state 0, got %d", flip.MPS)
	}
}

func TestContextPackRoundTrip(t *testing.T) {
	f := func(state, mps uint8) bool {
		c := Context{State: state & 63, MPS: mps & 1}
		return UnpackContext(c.Pack()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRoundTripSkewed encodes and decodes a heavily skewed source.
func TestRoundTripSkewed(t *testing.T) {
	testRoundTrip(t, 1, 20000, 4, 0.05)
}

// TestRoundTripBalanced uses an equiprobable source (worst case for the
// probability model, stresses state-0 MPS flips).
func TestRoundTripBalanced(t *testing.T) {
	testRoundTrip(t, 2, 20000, 4, 0.5)
}

// TestRoundTripManyContexts spreads symbols over many contexts.
func TestRoundTripManyContexts(t *testing.T) {
	testRoundTrip(t, 3, 30000, 64, 0.2)
}

func TestRoundTripTiny(t *testing.T) {
	for n := 1; n <= 32; n++ {
		testRoundTrip(t, int64(100+n), n, 2, 0.3)
	}
}

func testRoundTrip(t *testing.T, seed int64, n, nCtx int, pOne float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	encCtx := make([]Context, nCtx)
	decCtx := make([]Context, nCtx)
	enc := NewEncoder()
	bits := make([]uint8, n)
	ctxOf := make([]int, n)
	for i := range bits {
		b := uint8(0)
		if rng.Float64() < pOne {
			b = 1
		}
		ci := rng.Intn(nCtx)
		bits[i], ctxOf[i] = b, ci
		enc.EncodeBit(&encCtx[ci], b)
	}
	stream := enc.Flush()
	dec := NewDecoder(stream)
	for i := range bits {
		got := dec.DecodeBit(&decCtx[ci(t, ctxOf, i)])
		if got != bits[i] {
			t.Fatalf("seed %d: bit %d decoded %d, want %d", seed, i, got, bits[i])
		}
	}
	// The adapted contexts must agree between encoder and decoder.
	for i := range encCtx {
		if encCtx[i] != decCtx[i] {
			t.Fatalf("context %d diverged: enc %+v dec %+v", i, encCtx[i], decCtx[i])
		}
	}
}

func ci(t *testing.T, ctxOf []int, i int) int {
	t.Helper()
	return ctxOf[i]
}

// TestCompression checks that a skewed source compresses below one bit
// per symbol and a balanced source does not expand much.
func TestCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := NewEncoder()
	var ctx Context
	const n = 50000
	for i := 0; i < n; i++ {
		b := uint8(0)
		if rng.Float64() < 0.03 {
			b = 1
		}
		enc.EncodeBit(&ctx, b)
	}
	if bits := enc.NumBits(); bits > n/3 {
		t.Errorf("skewed source: %d bits for %d symbols, expected strong compression", bits, n)
	}

	enc2 := NewEncoder()
	var ctx2 Context
	for i := 0; i < n; i++ {
		enc2.EncodeBit(&ctx2, uint8(rng.Intn(2)))
	}
	if bits := enc2.NumBits(); bits > n*11/10 {
		t.Errorf("balanced source: %d bits for %d symbols, expansion too large", bits, n)
	}
}

func TestDecoderBitsConsumed(t *testing.T) {
	enc := NewEncoder()
	var c Context
	for i := 0; i < 100; i++ {
		enc.EncodeBit(&c, uint8(i)&1)
	}
	stream := enc.Flush()
	dec := NewDecoder(stream)
	var d Context
	for i := 0; i < 100; i++ {
		dec.DecodeBit(&d)
	}
	if dec.BitsConsumed() > 8*len(stream) {
		t.Errorf("consumed %d bits from a %d-bit stream", dec.BitsConsumed(), 8*len(stream))
	}
	if dec.BitsConsumed() < 9 {
		t.Errorf("consumed %d bits, must include 9 init bits", dec.BitsConsumed())
	}
}
