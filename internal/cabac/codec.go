package cabac

// Context is one adaptive probability model: a 6-bit state and the
// current most-probable-symbol value, exactly the (state, mps) pair the
// TM3270 packs into one 16-bit DUAL16 sub-operand.
type Context struct {
	State uint8 // 0..63
	MPS   uint8 // 0 or 1
}

// Pack returns the DUAL16(state, mps) register image used by the
// SUPER_CABAC operations: state in bits [31:16], mps in bits [15:0].
func (c Context) Pack() uint32 { return uint32(c.State)<<16 | uint32(c.MPS) }

// UnpackContext is the inverse of Context.Pack.
func UnpackContext(v uint32) Context {
	return Context{State: uint8(v>>16) & 63, MPS: uint8(v & 1)}
}

// Encoder is a binary arithmetic encoder producing bitstreams decodable
// by Decoder and by the SUPER_CABAC operation semantics. It implements
// the classic low/range coder with carry counting ("bits outstanding"),
// emitting bits most-significant first.
type Encoder struct {
	low         uint32
	rng         uint32
	outstanding int
	firstBit    bool

	buf     []byte
	bitPos  uint // bit position within the last byte (0..7)
	numBits int
}

// NewEncoder returns an encoder ready to encode the first symbol.
func NewEncoder() *Encoder {
	return &Encoder{rng: 510, firstBit: true}
}

// NumBits returns the number of bits emitted so far (excluding flush).
func (e *Encoder) NumBits() int { return e.numBits }

func (e *Encoder) writeBit(b uint32) {
	if e.bitPos == 0 {
		e.buf = append(e.buf, 0)
	}
	if b != 0 {
		e.buf[len(e.buf)-1] |= 0x80 >> e.bitPos
	}
	e.bitPos = (e.bitPos + 1) & 7
	e.numBits++
}

// putBit emits b, then resolves any outstanding straddle bits as !b.
// The very first bit of a stream is always zero and is skipped; the
// decoder compensates by reading only 9 initialization bits.
func (e *Encoder) putBit(b uint32) {
	if e.firstBit {
		e.firstBit = false
	} else {
		e.writeBit(b)
	}
	for e.outstanding > 0 {
		e.writeBit(b ^ 1)
		e.outstanding--
	}
}

// EncodeBit encodes one binary symbol with the adaptive context ctx,
// updating the context in place.
func (e *Encoder) EncodeBit(ctx *Context, bit uint8) {
	rlps := RangeLPS(uint32(ctx.State), (e.rng>>6)&3)
	e.rng -= rlps
	if bit == ctx.MPS {
		ctx.State = uint8(NextMPS(uint32(ctx.State)))
	} else {
		e.low += e.rng
		e.rng = rlps
		if ctx.State == 0 {
			ctx.MPS ^= 1
		}
		ctx.State = uint8(NextLPS(uint32(ctx.State)))
	}
	for e.rng < 256 {
		switch {
		case e.low >= 512:
			e.putBit(1)
			e.low -= 512
		case e.low+e.rng <= 512:
			e.putBit(0)
		default:
			e.outstanding++
			e.low -= 256
		}
		e.low <<= 1
		e.rng <<= 1
	}
}

// Flush terminates the stream and returns the encoded bytes. It pins the
// codeword to a point inside the final interval and appends four zero
// padding bytes so that window-based decoders may safely over-read.
func (e *Encoder) Flush() []byte {
	v := e.low + 1 // any point in [low, low+range) does; range >= 2
	for i := 9; i >= 0; i-- {
		e.putBit((v >> uint(i)) & 1)
	}
	for e.bitPos != 0 {
		e.writeBit(0)
	}
	e.buf = append(e.buf, 0, 0, 0, 0)
	return e.buf
}

// Decoder is the reference software decoder: a direct transcription of
// the paper's Figure 2 "biari_decode_symbol", operating on the same
// (stream_data, stream_bit_position) 32-bit window discipline the
// TM3270 kernels use.
type Decoder struct {
	stream []byte

	value   uint32 // coding value, 10 bits
	rng     uint32 // coding range, 9 bits
	bytePos int    // index of the first byte of the current window
	bitPos  uint32 // stream_bit_position within the window
	window  uint32 // stream_data: 32 bits starting at bytePos
	bits    int    // total stream bits consumed (init + renorm)
}

// NewDecoder starts decoding the given stream.
func NewDecoder(stream []byte) *Decoder {
	d := &Decoder{stream: stream, rng: 510}
	d.loadWindow()
	// Initialization: the coding value is the first 9 stream bits (the
	// 10th, most significant, bit is always zero by construction).
	d.value = d.window >> (32 - 9)
	d.bitPos = 9
	d.bits = 9
	d.refill()
	return d
}

func (d *Decoder) byteAt(i int) uint32 {
	if i < len(d.stream) {
		return uint32(d.stream[i])
	}
	return 0
}

func (d *Decoder) loadWindow() {
	d.window = d.byteAt(d.bytePos)<<24 | d.byteAt(d.bytePos+1)<<16 |
		d.byteAt(d.bytePos+2)<<8 | d.byteAt(d.bytePos+3)
}

// refill keeps stream_bit_position under 16 so that a decode step (which
// consumes at most 8 bits) never exhausts the 32-bit window. This is the
// same guarded refill sequence the DSL kernels use.
func (d *Decoder) refill() {
	for d.bitPos >= 16 {
		d.bytePos += 2
		d.bitPos -= 16
		d.loadWindow()
	}
}

// BitsConsumed returns the total number of stream bits read.
func (d *Decoder) BitsConsumed() int { return d.bits }

// DecodeBit decodes one binary symbol with the adaptive context ctx,
// updating the context in place.
func (d *Decoder) DecodeBit(ctx *Context) uint8 {
	res := Step(d.value, d.rng, d.window<<d.bitPos, uint32(ctx.State), uint32(ctx.MPS))
	d.value = res.Value
	d.rng = res.Range
	ctx.State = uint8(res.State)
	ctx.MPS = uint8(res.MPS)
	d.bitPos += uint32(res.Consumed)
	d.bits += res.Consumed
	d.refill()
	return uint8(res.Bit)
}
