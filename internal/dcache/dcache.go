// Package dcache models the TM3270 data-cache timing: 128 KB, 4-way,
// 128-byte lines, copy-back, LRU, allocate-on-write-miss with per-byte
// validity, penalty-free non-aligned accesses (which may still miss in
// two lines when crossing a line boundary), and region-prefetch fills
// that land directly in the cache. The TM3260 variant (16 KB, 8-way,
// 64-byte lines, fetch-on-write-miss) is the same model under a
// different configuration.
//
// The model is a timing model only: functional data lives in the
// simulator's memory image. Stalls are returned to the caller in CPU
// cycles; background traffic (copybacks, write-miss fetches, prefetches)
// occupies the bus interface unit without stalling the processor.
package dcache

import (
	"tm3270/internal/cache"
	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/telemetry"
)

// Fault is the data-cache fault-injection surface. Injectors implement
// it; a nil Fault field is the fault-free fast path.
type Fault interface {
	// Prefetch intercepts a region-prefetch candidate: drop suppresses
	// the fill entirely, delay adds CPU cycles to its completion.
	Prefetch(lineAddr uint32) (drop bool, delay int64)
	// Fill observes every demand line fill (cache-line corruption taps).
	Fill(lineAddr uint32)
}

// Kind is the access type.
type Kind int

const (
	// Load is a data read (includes collapsed loads and SUPER_LD32R).
	Load Kind = iota
	// Store is a data write.
	Store
	// Alloc is the ALLOCD cache-line allocation.
	Alloc
)

func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return "alloc"
	}
}

// Stats are the data-cache event counters. The three Stall* fields
// split every stall cycle the cache returns by cause; their sum always
// equals the total stall cycles handed back from Access.
type Stats struct {
	LoadHits     int64
	LoadMisses   int64
	StoreHits    int64
	StoreMisses  int64
	Allocs       int64
	Copybacks    int64
	PartialHits  int64 // hits on lines still in flight (prefetch/fetch)
	MergeMisses  int64 // loads hitting allocated lines with invalid bytes
	LineCrossers int64 // non-aligned accesses spanning two lines

	StallMiss     int64 // stall cycles servicing demand misses and merges
	StallInFlight int64 // stall cycles waiting on an in-flight fill
	StallCWB      int64 // stall cycles on cache-write-buffer backpressure
}

// StallTotal is the sum of the per-cause stall cycles.
func (s *Stats) StallTotal() int64 { return s.StallMiss + s.StallInFlight + s.StallCWB }

// DCache is the data-cache timing model.
type DCache struct {
	t   *config.Target
	arr *cache.Cache
	biu *mem.BIU
	pf  *prefetch.Unit // nil when the target has no region prefetcher

	prefetched map[uint32]bool // line addr -> landed via prefetch, unused yet

	// Fault, when non-nil, intercepts prefetches and observes fills.
	Fault Fault

	// Events, when non-nil, receives miss/refill/prefetch/CWB trace
	// events on the dcache, prefetch and CWB lanes.
	Events *telemetry.Trace

	// cwb holds the busy-until times of the cache write buffer entries:
	// a write-missing store occupies an entry until its line fetch
	// completes (fetch-on-write-miss), and the processor stalls only
	// when every entry is occupied.
	cwb []int64

	Stats Stats
}

// New builds the model. pf may be nil.
func New(t *config.Target, biu *mem.BIU, pf *prefetch.Unit) *DCache {
	byteValidity := t.DCache.WriteMiss == config.AllocateOnWriteMiss
	return &DCache{
		t:          t,
		arr:        cache.New(t.DCache, byteValidity),
		biu:        biu,
		pf:         pf,
		prefetched: make(map[uint32]bool),
		cwb:        make([]int64, t.CWBEntries),
	}
}

// Array exposes the underlying arrays (tests).
func (d *DCache) Array() *cache.Cache { return d.arr }

// PF exposes the attached prefetch unit, nil without one (tests,
// telemetry wiring).
func (d *DCache) PF() *prefetch.Unit { return d.pf }

// Access models one memory operation at CPU cycle now and returns the
// stall cycles it adds. Non-aligned accesses spanning a line boundary
// are penalty-free on a hit but may take two misses.
func (d *DCache) Access(now int64, addr uint32, size int, kind Kind) int64 {
	if kind == Alloc {
		d.Stats.Allocs++
		return d.alloc(now, addr)
	}
	first := d.arr.LineAddr(addr)
	last := d.arr.LineAddr(addr + uint32(size) - 1)
	stall := d.one(now, addr, size, first, kind)
	if last != first {
		d.Stats.LineCrossers++
		// Bytes in the second line.
		n := int(addr) + size - int(last)
		stall += d.one(now+stall, last, n, last, kind)
	}
	if kind == Load && d.pf != nil {
		d.maybePrefetch(now+stall, addr)
	}
	return stall
}

// one handles the portion of an access within a single line. The
// lookup promotes on a hit (both the load- and store-hit paths always
// touch their line; promoting at lookup time is the same LRU outcome
// in one set scan).
func (d *DCache) one(now int64, addr uint32, size int, lineAddr uint32, kind Kind) int64 {
	l, hit := d.arr.LookupTouch(lineAddr)
	switch kind {
	case Load:
		if hit {
			stall := int64(0)
			if l.ReadyAt > now {
				// In-flight fill (prefetch or write-fetch): partial hit.
				d.Stats.PartialHits++
				stall = l.ReadyAt - now
				d.Stats.StallInFlight += stall
				if d.pf != nil && len(d.prefetched) != 0 && d.prefetched[lineAddr] {
					// Prefetch issued but not timely: count it late
					// (once) rather than useful.
					d.pf.Stats.Late++
					delete(d.prefetched, lineAddr)
				}
				d.Events.Complete(telemetry.LaneDCache, "stall:inflight", "dstall",
					now, stall, map[string]any{"line": lineAddr})
			}
			if !d.arr.BytesValid(l, addr, size) {
				// Allocated line with holes: fetch and merge.
				d.Stats.MergeMisses++
				done := d.biu.Read(d.t, now+stall, d.t.DCache.LineBytes, false)
				d.arr.SetAllValid(l)
				d.Stats.StallMiss += done - (now + stall)
				d.Events.Complete(telemetry.LaneDCache, "merge-fetch", "dmiss",
					now+stall, done-(now+stall), map[string]any{"line": lineAddr})
				stall = done - now
			} else {
				d.Stats.LoadHits++
				if d.pf != nil && len(d.prefetched) != 0 && d.prefetched[lineAddr] {
					d.pf.Stats.Useful++
					delete(d.prefetched, lineAddr)
				}
			}
			return stall
		}
		d.Stats.LoadMisses++
		d.evictFor(now, lineAddr)
		v := d.arr.Victim(lineAddr)
		d.arr.Fill(v, lineAddr, true)
		done := d.biu.Read(d.t, now, d.t.DCache.LineBytes, false)
		if d.Fault != nil {
			d.Fault.Fill(lineAddr)
		}
		d.Stats.StallMiss += done - now
		d.Events.Complete(telemetry.LaneDCache, "load-miss", "dmiss",
			now, done-now, map[string]any{"line": lineAddr, "addr": addr})
		return done - now

	default: // Store
		if hit {
			d.Stats.StoreHits++
			d.arr.MarkValid(l, addr, size)
			l.Dirty = true
			// Stores complete through the cache write buffer; an
			// in-flight fill does not stall them.
			return 0
		}
		d.Stats.StoreMisses++
		d.evictFor(now, lineAddr)
		v := d.arr.Victim(lineAddr)
		if d.t.DCache.WriteMiss == config.AllocateOnWriteMiss {
			// Allocate without fetching: only the stored bytes become
			// valid; no memory read, no stall.
			d.arr.Fill(v, lineAddr, false)
			d.arr.MarkValid(v, addr, size)
			v.Dirty = true
			return 0
		}
		// Fetch-on-write-miss: the missing line is fetched before the
		// write retires — the write-miss penalty the TM3270's
		// allocate-on-write-miss policy eliminates (Section 4.1). The
		// cache write buffer absorbs the fetch latency: the store parks
		// in a CWB entry until its line arrives, and the processor
		// stalls only when every entry is occupied.
		stall := int64(0)
		e := 0
		for i := 1; i < len(d.cwb); i++ {
			if d.cwb[i] < d.cwb[e] {
				e = i
			}
		}
		if d.cwb[e] > now {
			stall = d.cwb[e] - now
			d.Stats.StallCWB += stall
			d.Events.Complete(telemetry.LaneCWB, "stall:cwb-full", "dstall",
				now, stall, map[string]any{"line": lineAddr})
		}
		d.arr.Fill(v, lineAddr, true)
		done := d.biu.Read(d.t, now+stall, d.t.DCache.LineBytes, false)
		if d.Fault != nil {
			d.Fault.Fill(lineAddr)
		}
		v.ReadyAt = done
		v.Dirty = true
		d.cwb[e] = done
		d.Events.Complete(telemetry.LaneCWB, "cwb-park", "cwb",
			now+stall, done-(now+stall), map[string]any{"line": lineAddr, "entry": e})
		return stall
	}
}

// alloc validates a whole line without fetching it (ALLOCD).
func (d *DCache) alloc(now int64, addr uint32) int64 {
	lineAddr := d.arr.LineAddr(addr)
	if l, hit := d.arr.LookupTouch(lineAddr); hit {
		d.arr.SetAllValid(l)
		l.Dirty = true
		return 0
	}
	d.evictFor(now, lineAddr)
	v := d.arr.Victim(lineAddr)
	d.arr.Fill(v, lineAddr, true)
	v.Dirty = true
	return 0
}

// evictFor performs the copyback of the victim that Fill will replace.
func (d *DCache) evictFor(now int64, lineAddr uint32) {
	v := d.arr.Victim(lineAddr)
	if v.Valid && v.Dirty {
		// Only validated bytes travel back over the bus (the SoC
		// protocol supports byte-validity transfers).
		n := d.arr.ValidByteCount(v)
		d.biu.Write(d.t, now, n)
		d.Stats.Copybacks++
	}
	if v.Valid {
		va := d.arr.VictimAddr(v, lineAddr)
		if len(d.prefetched) != 0 && d.prefetched[va] {
			// The prefetched line never saw a demand access.
			if d.pf != nil {
				d.pf.Stats.Evicted++
			}
			delete(d.prefetched, va)
		}
	}
}

// maybePrefetch asks the region unit for a candidate and issues the
// fill if the line is absent.
func (d *DCache) maybePrefetch(now int64, loadAddr uint32) {
	cand, ok := d.pf.Candidate(loadAddr)
	if !ok {
		return
	}
	lineAddr := d.arr.LineAddr(cand)
	if _, hit := d.arr.Lookup(lineAddr); hit {
		d.pf.Stats.Dropped++
		return
	}
	var extra int64
	if d.Fault != nil {
		drop, delay := d.Fault.Prefetch(lineAddr)
		if drop {
			d.pf.Stats.Dropped++
			return
		}
		extra = delay
	}
	d.evictFor(now, lineAddr)
	v := d.arr.Victim(lineAddr)
	d.arr.Fill(v, lineAddr, true)
	v.ReadyAt = d.biu.Read(d.t, now, d.t.DCache.LineBytes, true) + extra
	d.prefetched[lineAddr] = true
	d.pf.Stats.Issued++
	d.Events.Complete(telemetry.LanePrefetch, "prefetch-fill", "prefetch",
		now, v.ReadyAt-now, map[string]any{"line": lineAddr, "trigger": loadAddr})
}
