package dcache_test

import (
	"testing"

	"tm3270/internal/config"
	"tm3270/internal/dcache"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
)

func tm3270() config.Target { return config.TM3270() }

func newDC(t config.Target, pf *prefetch.Unit) (*dcache.DCache, *mem.BIU) {
	biu := mem.NewBIU(&t)
	return dcache.New(&t, biu, pf), biu
}

func TestLoadMissThenHit(t *testing.T) {
	tgt := tm3270()
	dc, _ := newDC(tgt, nil)
	stall := dc.Access(0, 0x1000, 4, dcache.Load)
	if stall <= 0 {
		t.Fatalf("cold load miss stall = %d, want > 0", stall)
	}
	if dc.Stats.LoadMisses != 1 {
		t.Errorf("misses = %d", dc.Stats.LoadMisses)
	}
	if s := dc.Access(100000, 0x1000, 4, dcache.Load); s != 0 {
		t.Errorf("hit stall = %d, want 0", s)
	}
	if dc.Stats.LoadHits != 1 {
		t.Errorf("hits = %d", dc.Stats.LoadHits)
	}
	// Anywhere in the same 128-byte line hits.
	if s := dc.Access(100001, 0x107c, 4, dcache.Load); s != 0 {
		t.Errorf("same-line hit stall = %d", s)
	}
}

func TestNonAlignedLineCrossing(t *testing.T) {
	tgt := tm3270()
	dc, _ := newDC(tgt, nil)
	// 4 bytes at 0x107e span lines 0x1000 and 0x1080: two misses.
	dc.Access(0, 0x107e, 4, dcache.Load)
	if dc.Stats.LoadMisses != 2 {
		t.Errorf("misses = %d, want 2 for a line-crossing cold access", dc.Stats.LoadMisses)
	}
	if dc.Stats.LineCrossers != 1 {
		t.Errorf("crossers = %d", dc.Stats.LineCrossers)
	}
	// Once resident, the same non-aligned access is penalty-free.
	if s := dc.Access(1_000_000, 0x107e, 4, dcache.Load); s != 0 {
		t.Errorf("resident non-aligned access stall = %d, want 0 (penalty-free)", s)
	}
}

func TestAllocateOnWriteMissProducesNoRead(t *testing.T) {
	tgt := tm3270()
	dc, biu := newDC(tgt, nil)
	if s := dc.Access(0, 0x2000, 4, dcache.Store); s != 0 {
		t.Errorf("allocate-on-write stall = %d, want 0", s)
	}
	if biu.BytesRead != 0 {
		t.Errorf("allocate-on-write read %d bytes from memory, want 0", biu.BytesRead)
	}
	if dc.Stats.StoreMisses != 1 {
		t.Errorf("store misses = %d", dc.Stats.StoreMisses)
	}
}

func TestFetchOnWriteMissCWB(t *testing.T) {
	tgt := config.TM3260()
	dc, biu := newDC(tgt, nil)
	// A lone write miss parks in the cache write buffer: the line is
	// fetched but the processor does not stall.
	if s := dc.Access(0, 0x2000, 4, dcache.Store); s != 0 {
		t.Errorf("first write-miss stall = %d, want 0 (CWB absorbs it)", s)
	}
	if biu.BytesRead != int64(tgt.DCache.LineBytes) {
		t.Errorf("fetch-on-write read %d bytes, want a full %d-byte line",
			biu.BytesRead, tgt.DCache.LineBytes)
	}
	// A burst of write misses saturates the CWB (4 entries on the
	// TM3260) and the processor stalls — the write-miss penalty that
	// allocate-on-write-miss eliminates.
	stalled := false
	for i := 1; i <= 8; i++ {
		if s := dc.Access(int64(i), uint32(0x2000+i*0x1000), 4, dcache.Store); s > 0 {
			stalled = true
		}
	}
	if !stalled {
		t.Error("a write-miss burst never stalled: CWB capacity unmodeled")
	}
	// Subsequent stores to a fetched line hit without stalls.
	if s := dc.Access(1_000_000, 0x2004, 4, dcache.Store); s != 0 {
		t.Errorf("store hit stall = %d", s)
	}

	// Under allocate-on-write-miss the same burst never stalls.
	dc2, biu2 := newDC(tm3270(), nil)
	for i := 0; i <= 8; i++ {
		if s := dc2.Access(int64(i), uint32(0x2000+i*0x1000), 4, dcache.Store); s != 0 {
			t.Errorf("allocate-on-write burst stalled %d", s)
		}
	}
	if biu2.BytesRead != 0 {
		t.Error("allocate-on-write fetched lines")
	}
}

func TestByteValidityMergeOnLoad(t *testing.T) {
	tgt := tm3270()
	dc, biu := newDC(tgt, nil)
	// Store allocates with 4 valid bytes.
	dc.Access(0, 0x3000, 4, dcache.Store)
	// Loading the stored bytes hits without memory traffic.
	if s := dc.Access(10, 0x3000, 4, dcache.Load); s != 0 {
		t.Errorf("load of valid bytes stalled %d", s)
	}
	if biu.BytesRead != 0 {
		t.Error("no memory read expected for valid bytes")
	}
	// Loading unwritten bytes of the allocated line forces a fetch-merge.
	s := dc.Access(20, 0x3010, 4, dcache.Load)
	if s <= 0 {
		t.Error("load of invalid bytes must stall for the merge fetch")
	}
	if dc.Stats.MergeMisses != 1 {
		t.Errorf("merge misses = %d", dc.Stats.MergeMisses)
	}
	if biu.BytesRead == 0 {
		t.Error("merge fetch must read from memory")
	}
}

func TestCopybackOnlyValidBytes(t *testing.T) {
	tgt := tm3270()
	tgt.DCache.SizeBytes = 1 << 10 // tiny: 2 sets x 4 ways x 128B
	dc, biu := newDC(tgt, nil)
	// Allocate a line with 4 dirty bytes, then evict it by filling the set.
	dc.Access(0, 0x0000, 4, dcache.Store)
	for i := 1; i <= 4; i++ {
		dc.Access(int64(i*1000), uint32(i)<<8, 4, dcache.Load) // same set (bit 8+)
	}
	if dc.Stats.Copybacks == 0 {
		t.Fatal("dirty line never copied back")
	}
	if biu.BytesWritten != 4 {
		t.Errorf("copyback wrote %d bytes, want 4 (only validated bytes travel)", biu.BytesWritten)
	}
}

func TestFullLineCopyback(t *testing.T) {
	tgt := tm3270()
	tgt.DCache.SizeBytes = 1 << 10
	dc, biu := newDC(tgt, nil)
	// Write a whole line, then evict it.
	for off := uint32(0); off < 128; off += 4 {
		dc.Access(0, off, 4, dcache.Store)
	}
	for i := 1; i <= 4; i++ {
		dc.Access(int64(i*1000), uint32(i)<<8, 4, dcache.Load)
	}
	if biu.BytesWritten != 128 {
		t.Errorf("copyback wrote %d bytes, want the full 128", biu.BytesWritten)
	}
}

func TestAllocd(t *testing.T) {
	tgt := tm3270()
	dc, biu := newDC(tgt, nil)
	if s := dc.Access(0, 0x4000, 0, dcache.Alloc); s != 0 {
		t.Errorf("allocd stall = %d", s)
	}
	if biu.BytesRead != 0 {
		t.Error("allocd must not fetch")
	}
	// The whole line is now valid: loads hit without traffic.
	if s := dc.Access(10, 0x4040, 4, dcache.Load); s != 0 {
		t.Errorf("load after allocd stalled %d", s)
	}
	if biu.BytesRead != 0 {
		t.Error("load after allocd must not fetch")
	}
}

func TestRegionPrefetchHidesMisses(t *testing.T) {
	tgt := tm3270()
	pf := &prefetch.Unit{}
	dc, _ := newDC(tgt, pf)
	// Program region 0: a 64 KB region with one-line stride.
	pf.Regions[0] = prefetch.Region{Start: 0x10000, End: 0x20000, Stride: 128}

	// Walk the region with ample time between accesses: after the first
	// miss, every next line was prefetched.
	now := int64(0)
	var stalls, misses int64
	for addr := uint32(0x10000); addr < 0x11000; addr += 128 {
		s := dc.Access(now, addr, 4, dcache.Load)
		stalls += s
		now += 200 // enough cycles for the prefetch to land
	}
	misses = dc.Stats.LoadMisses
	if misses != 1 {
		t.Errorf("misses with prefetch = %d, want 1 (only the cold first line)", misses)
	}
	if pf.Stats.Issued == 0 {
		t.Error("no prefetches issued")
	}
	if pf.Stats.Useful == 0 {
		t.Error("no useful prefetches recorded")
	}

	// Without the region, every line misses.
	dc2, _ := newDC(tgt, &prefetch.Unit{})
	now = 0
	for addr := uint32(0x10000); addr < 0x11000; addr += 128 {
		dc2.Access(now, addr, 4, dcache.Load)
		now += 200
	}
	if dc2.Stats.LoadMisses != 32 {
		t.Errorf("misses without prefetch = %d, want 32", dc2.Stats.LoadMisses)
	}
}

func TestPrefetchPartialHitStalls(t *testing.T) {
	tgt := tm3270()
	pf := &prefetch.Unit{}
	dc, _ := newDC(tgt, pf)
	pf.Regions[0] = prefetch.Region{Start: 0x10000, End: 0x20000, Stride: 128}
	dc.Access(0, 0x10000, 4, dcache.Load) // miss; prefetch of 0x10080 issued
	// Access the prefetched line immediately: it is still in flight.
	s := dc.Access(1, 0x10080, 4, dcache.Load)
	if s <= 0 {
		t.Error("access to in-flight prefetched line must stall")
	}
	if dc.Stats.PartialHits != 1 {
		t.Errorf("partial hits = %d, want 1", dc.Stats.PartialHits)
	}
}

func TestBIUOccupancySerializes(t *testing.T) {
	tgt := tm3270()
	biu := mem.NewBIU(&tgt)
	d1 := biu.Read(&tgt, 0, 128, false)
	d2 := biu.Read(&tgt, 0, 128, false)
	if d2 <= d1 {
		t.Errorf("second transfer done at %d, first at %d: no serialization", d2, d1)
	}
	if biu.Reads != 2 || biu.BytesRead != 256 {
		t.Errorf("stats: %d reads, %d bytes", biu.Reads, biu.BytesRead)
	}
	// A write after the reads starts after them.
	w := biu.Write(&tgt, 0, 128)
	if w <= d2-int64(tgt.MemLatencyCycles()) {
		t.Errorf("write completed at %d, overlapping the reads", w)
	}
}

func TestMemTimingScalesWithLineSize(t *testing.T) {
	tgt := tm3270()
	if c64, c128 := tgt.CyclesPerLine(64), tgt.CyclesPerLine(128); c128 <= c64 {
		t.Errorf("128B line transfer (%d cyc) not slower than 64B (%d cyc)", c128, c64)
	}
	if tgt.MemLatencyCycles() <= 0 {
		t.Error("memory latency must be positive")
	}
}
