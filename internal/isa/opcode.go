package isa

// Opcode identifies one operation of the TM3270 ISA.
type Opcode uint16

// The operation catalogue. Grouping and naming follow the TriMedia
// convention: i/u prefixes for signed/unsigned, "dsp" for clipped
// arithmetic, "quad"/"dual" for 4x8-bit and 2x16-bit SIMD, a "d" suffix
// for displacement addressing and an "r" suffix for indexed addressing.
const (
	OpNOP Opcode = iota

	// Immediate generation.
	OpIIMM // rdest = imm (full 32-bit immediate)

	// Integer ALU, single cycle.
	OpIADD
	OpISUB
	OpIADDI // rdest = rsrc1 + signed imm
	OpIMIN
	OpIMAX
	OpIAVGONEP // rdest = (rsrc1 + rsrc2 + 1) >> 1, signed
	OpBITAND
	OpBITOR
	OpBITXOR
	OpBITANDINV // rdest = rsrc1 &^ rsrc2
	OpBITINV    // rdest = ^rsrc1
	OpSEX8
	OpSEX16
	OpZEX8
	OpZEX16
	OpIEQL
	OpINEQ
	OpIGTR
	OpIGEQ
	OpILES
	OpILEQ
	OpUGTR
	OpUGEQ
	OpULES
	OpULEQ
	OpIEQLI // rdest = rsrc1 == signed imm
	OpINEQI
	OpIGTRI
	OpILESI
	OpIZERO    // rdest = rsrc1 == 0
	OpINONZERO // rdest = rsrc1 != 0

	// Shifter, single cycle.
	OpASL
	OpASR
	OpLSR
	OpROL
	OpASLI
	OpASRI
	OpLSRI
	OpROLI
	OpICLZ      // count leading zeros
	OpFUNSHIFT1 // rdest = bytes of rsrc1:rsrc2 funnel-shifted by 1
	OpFUNSHIFT2
	OpFUNSHIFT3

	// Multiplier complex, 3-cycle.
	OpIMUL
	OpIMULM // rdest = high 32 bits of signed 64-bit product
	OpUMULM
	OpDSPIMUL // rdest = clip32(rsrc1 * rsrc2)
	OpIFIR16  // rdest = s1.hi16*s2.hi16 + s1.lo16*s2.lo16 (signed)
	OpUFIR16
	OpIFIR8UI // rdest = sum of u8(s1[i]) * i8(s2[i])
	OpUME8UU  // rdest = sum |u8(s1[i]) - u8(s2[i])| (SAD)
	OpUME8II  // rdest = sum |i8(s1[i]) - i8(s2[i])|

	// DSP ALU (clipped and packed arithmetic), 2-cycle.
	OpDSPIADD // rdest = clip32(s1 + s2)
	OpDSPISUB
	OpDSPIABS
	OpDSPIDUALADD // 2x16 clipped add
	OpDSPIDUALSUB
	OpDSPIDUALMUL    // 2x16 clipped multiply
	OpDSPUQUADADDUI  // 4x8: clipU8(u8(s1[i]) + i8(s2[i]))
	OpQUADAVG        // 4x8 unsigned average with rounding
	OpQUADUMIN       // 4x8 unsigned minimum
	OpQUADUMAX       // 4x8 unsigned maximum
	OpICLIPI         // rdest = clip s1 to [-2^imm, 2^imm-1]
	OpUCLIPI         // rdest = clip s1 to [0, 2^imm-1]
	OpDUALICLIPI     // 2x16 clip of two signed values
	OpDUALUCLIPI     // 2x16 clip to unsigned
	OpPACK16LSB      // rdest = s1.lo16 : s2.lo16
	OpPACK16MSB      // rdest = s1.hi16 : s2.hi16
	OpPACKBYTES      // rdest = s1.b3? see semantics: low bytes of s1,s2
	OpMERGELSB       // rdest = s1.b2 s2.b2 s1.b3 s2.b3 (low bytes interleave)
	OpMERGEMSB       // high-byte interleave
	OpMERGEDUAL16LSB // rdest = s1.lo16 above s2.lo16? see semantics
	OpUBYTESEL       // rdest = u8 byte of s1 selected by s2[1:0]
	OpIBYTESEL       // sign-extended byte select
	OpQUADUMULMSB    // 4x8: high byte of u8*u8 products

	// Floating point (IEEE-754 single precision).
	OpFADD
	OpFSUB
	OpFABSVAL
	OpIFLOAT   // int32 -> float
	OpUFLOAT   // uint32 -> float
	OpIFIXIEEE // float -> int32, round to nearest even
	OpUFIXIEEE
	OpFEQL
	OpFGTR
	OpFGEQ
	OpFMUL
	OpFDIV
	OpFSQRT

	// Branches. Target is an immediate instruction address; execution is
	// guarded (JMPT jumps when the guard is true, JMPF when false, JMPI
	// unconditionally).
	OpJMPI
	OpJMPT
	OpJMPF

	// Loads. The "d" forms add a signed immediate displacement to
	// rsrc1, the "r" forms add rsrc2. All accesses are big-endian and
	// may be non-aligned (penalty-free in the TM3270 data cache).
	OpLD32D
	OpLD32R
	OpLD16D // sign-extending
	OpLD16R
	OpULD16D
	OpULD16R
	OpLD8D
	OpLD8R
	OpULD8D
	OpULD8R

	// Stores (rsrc2 is the value; displacement forms only, as on
	// TriMedia). ALLOCD allocates a cache line without fetching it.
	OpST32D
	OpST16D
	OpST8D
	OpALLOCD

	// Collapsed load with interpolation (Table 2): loads five
	// consecutive bytes at rsrc1 and returns four values interpolated
	// at fractional position rsrc2[3:0] in sixteenths.
	OpLDFRAC8

	// Two-slot super operations (Table 2).
	OpSUPERDUALIMIX // 2x (16-bit pairwise MAC, clipped to 32 bits)
	OpSUPERLD32R    // load two consecutive 32-bit words
	OpSUPERCABACSTR // CABAC bitstream step
	OpSUPERCABACCTX // CABAC context step
	OpSUPERUME8UU   // 8-byte SAD (motion-estimation extension)

	numOpcodes
)

// NumOpcodes is the number of defined operations.
const NumOpcodes = int(numOpcodes)
