package isa

import "fmt"

// SizeClass is the encoding size class of an operation (Figure 1: the
// per-slot 2-bit compression fields select among three operation sizes
// plus "slot unused").
type SizeClass uint8

const (
	// Size26 is the 26-bit compact encoding ("00").
	Size26 SizeClass = iota
	// Size34 is the 34-bit encoding ("01").
	Size34
	// Size42 is the 42-bit maximum encoding ("10").
	Size42
)

// Bits returns the number of encoding bits of the size class.
func (s SizeClass) Bits() int {
	switch s {
	case Size26:
		return 26
	case Size34:
		return 34
	default:
		return 42
	}
}

// Memory is the functional view of the memory system used by operation
// semantics. All multi-byte accesses are big-endian, matching the
// semantics in Table 2 of the paper, and may be non-aligned.
type Memory interface {
	// Load returns n bytes (1..8) starting at addr, big-endian, in the
	// low-order bits of the result.
	Load(addr uint32, n int) uint64
	// Store writes the n (1..8) low-order bytes of v, big-endian,
	// starting at addr.
	Store(addr uint32, n int, v uint64)
}

// ExecContext carries the dataflow of one operation execution. The
// issue logic fills Src and Imm, the semantics fill Dest (and Taken for
// branches).
type ExecContext struct {
	Src   [4]uint32 // source operand values (two-slot ops use all four)
	Imm   uint32    // immediate operand, when the operation has one
	Mem   Memory    // memory port for loads/stores (nil otherwise)
	Dest  [2]uint32 // destination values (two-slot ops may produce two)
	Taken bool      // set by branch semantics when the jump is taken
}

// ExecFunc implements the semantics of one operation.
type ExecFunc func(ctx *ExecContext)

// OpInfo is the static description of one operation.
type OpInfo struct {
	Name    string
	Class   UnitClass
	Latency int // TM3270 result latency in cycles (loads: see Target)
	NSrc    int // number of register sources (0..4)
	NDest   int // number of register destinations (0..2)
	HasImm  bool
	Size    SizeClass

	// Memory behaviour.
	IsLoad   bool
	IsStore  bool
	MemBytes int // bytes referenced by a memory operation

	IsJump bool
	// GuardInverted marks operations that execute when their guard is
	// FALSE (jmpf); all other operations execute when it is true.
	GuardInverted bool
	TwoSlot       bool

	Exec ExecFunc
}

var opTable [numOpcodes]OpInfo

// register installs the description of op. It panics on double
// registration, which would indicate a table bug.
func register(op Opcode, info OpInfo) {
	if opTable[op].Name != "" {
		panic(fmt.Sprintf("isa: opcode %d registered twice (%s, %s)", op, opTable[op].Name, info.Name))
	}
	if info.Exec == nil && op != OpNOP {
		panic("isa: " + info.Name + " has no semantics")
	}
	opTable[op] = info
}

// Info returns the description of op. It panics on an undefined opcode.
func Info(op Opcode) *OpInfo {
	if int(op) >= NumOpcodes || opTable[op].Name == "" {
		panic(fmt.Sprintf("isa: undefined opcode %d", op))
	}
	return &opTable[op]
}

// InfoOK is Info for untrusted opcodes (decoded binaries, trap
// snapshots): it reports failure instead of panicking.
func InfoOK(op Opcode) (*OpInfo, bool) {
	if int(op) >= NumOpcodes || opTable[op].Name == "" {
		return nil, false
	}
	return &opTable[op], true
}

// Lookup returns the opcode with the given assembler name.
func Lookup(name string) (Opcode, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = map[string]Opcode{}

func init() {
	registerAll()
	for i := Opcode(0); i < numOpcodes; i++ {
		if opTable[i].Name == "" {
			panic(fmt.Sprintf("isa: opcode %d has no table entry", i))
		}
		byName[opTable[i].Name] = i
	}
}

func (op Opcode) String() string {
	if int(op) < NumOpcodes && opTable[op].Name != "" {
		return opTable[op].Name
	}
	return fmt.Sprintf("op%d", uint16(op))
}

// Slots returns the TM3270 issue-slot mask of op (first slot of the
// pair for two-slot operations).
func (op Opcode) Slots() SlotMask { return DefaultSlots(Info(op).Class) }
