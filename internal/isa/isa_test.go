package isa_test

import (
	"math"
	"testing"
	"testing/quick"

	"tm3270/internal/isa"
	"tm3270/internal/mem"
)

// run executes op once with the given sources, immediate and memory.
func run(t *testing.T, op isa.Opcode, srcs []uint32, imm uint32, m isa.Memory) isa.ExecContext {
	t.Helper()
	info := isa.Info(op)
	ctx := isa.ExecContext{Imm: imm, Mem: m}
	copy(ctx.Src[:], srcs)
	if len(srcs) != info.NSrc {
		t.Fatalf("%s: test passes %d sources, op declares %d", info.Name, len(srcs), info.NSrc)
	}
	info.Exec(&ctx)
	return ctx
}

func run1(t *testing.T, op isa.Opcode, srcs []uint32, imm uint32) uint32 {
	return run(t, op, srcs, imm, nil).Dest[0]
}

func TestRegFileHardwired(t *testing.T) {
	var f isa.RegFile
	if got := f.Read(isa.R0); got != 0 {
		t.Errorf("r0 = %d, want 0", got)
	}
	if got := f.Read(isa.R1); got != 1 {
		t.Errorf("r1 = %d, want 1", got)
	}
	f.Write(isa.R0, 99)
	f.Write(isa.R1, 99)
	if f.Read(isa.R0) != 0 || f.Read(isa.R1) != 1 {
		t.Error("writes to hardwired registers must be ignored")
	}
	f.Write(isa.Reg(42), 0xdeadbeef)
	if got := f.Read(isa.Reg(42)); got != 0xdeadbeef {
		t.Errorf("r42 = %#x, want 0xdeadbeef", got)
	}
	s := f.Snapshot()
	if s[0] != 0 || s[1] != 1 || s[42] != 0xdeadbeef {
		t.Errorf("snapshot mismatch: %v %v %v", s[0], s[1], s[42])
	}
}

func TestUnitInventoryIs31(t *testing.T) {
	// Table 1: the TM3270 has 31 functional units.
	if got := len(isa.Units); got != 31 {
		t.Fatalf("unit inventory has %d units, want 31 (Table 1)", got)
	}
	seen := map[string]bool{}
	for _, u := range isa.Units {
		if seen[u.Name] {
			t.Errorf("duplicate unit name %q", u.Name)
		}
		seen[u.Name] = true
		if u.Slot < 1 || u.Slot > 5 {
			t.Errorf("unit %s: slot %d out of range", u.Name, u.Slot)
		}
		if u.TwoSlot && u.Slot == 5 {
			t.Errorf("unit %s: two-slot unit cannot start in slot 5", u.Name)
		}
	}
}

func TestSlotMask(t *testing.T) {
	m := isa.Slots(2, 3)
	if !m.Has(2) || !m.Has(3) || m.Has(1) || m.Has(4) || m.Has(5) {
		t.Errorf("Slots(2,3) = %05b", m)
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d, want 2", m.Count())
	}
	if isa.AllSlots.Count() != 5 {
		t.Errorf("AllSlots.Count = %d", isa.AllSlots.Count())
	}
}

func TestPaperSlotAssignments(t *testing.T) {
	// Table 2 lists the issue slots of the new operations.
	cases := []struct {
		op   isa.Opcode
		want isa.SlotMask
	}{
		{isa.OpSUPERDUALIMIX, isa.Slots(2)}, // pair (2,3)
		{isa.OpSUPERLD32R, isa.Slots(4)},    // pair (4,5)
		{isa.OpSUPERCABACSTR, isa.Slots(2)}, // pair (2,3)
		{isa.OpSUPERCABACCTX, isa.Slots(2)}, // pair (2,3)
		{isa.OpLDFRAC8, isa.Slots(5)},
		{isa.OpLD32D, isa.Slots(5)},
		{isa.OpST32D, isa.Slots(4, 5)},
	}
	for _, c := range cases {
		if got := c.op.Slots(); got != c.want {
			t.Errorf("%v slots = %05b, want %05b", c.op, got, c.want)
		}
	}
}

func TestPaperLatencies(t *testing.T) {
	// Table 2: two-slot operations have latency 4, LD_FRAC8 latency 6.
	for _, op := range []isa.Opcode{isa.OpSUPERDUALIMIX, isa.OpSUPERLD32R, isa.OpSUPERCABACSTR, isa.OpSUPERCABACCTX} {
		if l := isa.Info(op).Latency; l != 4 {
			t.Errorf("%v latency = %d, want 4", op, l)
		}
	}
	if l := isa.Info(isa.OpLDFRAC8).Latency; l != 6 {
		t.Errorf("ld_frac8 latency = %d, want 6", l)
	}
	if l := isa.Info(isa.OpLD32D).Latency; l != 4 {
		t.Errorf("ld32d latency = %d, want 4 (TM3270)", l)
	}
}

func TestEveryOpcodeDefined(t *testing.T) {
	for op := isa.Opcode(0); int(op) < isa.NumOpcodes; op++ {
		info := isa.Info(op)
		if info.Name == "" {
			t.Fatalf("opcode %d has no name", op)
		}
		back, ok := isa.Lookup(info.Name)
		if !ok || back != op {
			t.Errorf("Lookup(%q) = %v,%v, want %v", info.Name, back, ok, op)
		}
		if info.NSrc < 0 || info.NSrc > 4 || info.NDest < 0 || info.NDest > 2 {
			t.Errorf("%s: impossible operand counts %d/%d", info.Name, info.NSrc, info.NDest)
		}
		if info.NSrc > 2 && !info.TwoSlot {
			t.Errorf("%s: more than two sources requires a two-slot operation", info.Name)
		}
		if info.NDest > 1 && !info.TwoSlot {
			t.Errorf("%s: more than one destination requires a two-slot operation", info.Name)
		}
		if info.Latency < 1 {
			t.Errorf("%s: latency %d", info.Name, info.Latency)
		}
	}
}

func TestIntALU(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b uint32
		want uint32
	}{
		{isa.OpIADD, 3, 4, 7},
		{isa.OpIADD, 0xffffffff, 1, 0},
		{isa.OpISUB, 3, 4, 0xffffffff},
		{isa.OpIMIN, 0xffffffff, 1, 0xffffffff}, // signed: -1 < 1
		{isa.OpIMAX, 0xffffffff, 1, 1},
		{isa.OpIAVGONEP, 3, 4, 4},
		{isa.OpIAVGONEP, 0xffffffff, 0xfffffffd, 0xfffffffe}, // (-1 + -3 + 1) >> 1 = -2 (arithmetic shift floors)
		{isa.OpBITAND, 0xf0f0, 0x00ff, 0x00f0},
		{isa.OpBITOR, 0xf0f0, 0x00ff, 0xf0ff},
		{isa.OpBITXOR, 0xf0f0, 0x00ff, 0xf00f},
		{isa.OpBITANDINV, 0xf0f0, 0x00ff, 0xf000},
		{isa.OpIEQL, 5, 5, 1},
		{isa.OpIEQL, 5, 6, 0},
		{isa.OpINEQ, 5, 6, 1},
		{isa.OpIGTR, 0xffffffff, 0, 0}, // -1 > 0 is false
		{isa.OpUGTR, 0xffffffff, 0, 1},
		{isa.OpILES, 0xffffffff, 0, 1},
		{isa.OpULES, 0xffffffff, 0, 0},
		{isa.OpIGEQ, 7, 7, 1},
		{isa.OpILEQ, 7, 7, 1},
		{isa.OpUGEQ, 7, 8, 0},
		{isa.OpULEQ, 7, 8, 1},
	}
	for _, c := range cases {
		if got := run1(t, c.op, []uint32{c.a, c.b}, 0); got != c.want {
			t.Errorf("%v(%#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
	if got := run1(t, isa.OpBITINV, []uint32{0xf0f0}, 0); got != 0xffff0f0f {
		t.Errorf("bitinv = %#x", got)
	}
	if got := run1(t, isa.OpIADDI, []uint32{10}, 0xfffffffe); got != 8 {
		t.Errorf("iaddi(10, -2) = %d, want 8", got)
	}
	if got := run1(t, isa.OpSEX8, []uint32{0x1ff}, 0); got != 0xffffffff {
		t.Errorf("sex8(0x1ff) = %#x", got)
	}
	if got := run1(t, isa.OpSEX16, []uint32{0x18000}, 0); got != 0xffff8000 {
		t.Errorf("sex16 = %#x", got)
	}
	if got := run1(t, isa.OpZEX8, []uint32{0x1ff}, 0); got != 0xff {
		t.Errorf("zex8 = %#x", got)
	}
	if got := run1(t, isa.OpZEX16, []uint32{0xdeadbeef}, 0); got != 0xbeef {
		t.Errorf("zex16 = %#x", got)
	}
	if got := run1(t, isa.OpIZERO, []uint32{0}, 0); got != 1 {
		t.Errorf("izero(0) = %d", got)
	}
	if got := run1(t, isa.OpINONZERO, []uint32{7}, 0); got != 1 {
		t.Errorf("inonzero(7) = %d", got)
	}
	if got := run1(t, isa.OpIEQLI, []uint32{5}, 5); got != 1 {
		t.Errorf("ieqli = %d", got)
	}
	if got := run1(t, isa.OpIGTRI, []uint32{6}, 5); got != 1 {
		t.Errorf("igtri = %d", got)
	}
	if got := run1(t, isa.OpILESI, []uint32{4}, 5); got != 1 {
		t.Errorf("ilesi = %d", got)
	}
	if got := run1(t, isa.OpINEQI, []uint32{4}, 5); got != 1 {
		t.Errorf("ineqi = %d", got)
	}
}

func TestShifter(t *testing.T) {
	if got := run1(t, isa.OpASL, []uint32{1, 31}, 0); got != 0x80000000 {
		t.Errorf("asl = %#x", got)
	}
	if got := run1(t, isa.OpASR, []uint32{0x80000000, 31}, 0); got != 0xffffffff {
		t.Errorf("asr = %#x", got)
	}
	if got := run1(t, isa.OpLSR, []uint32{0x80000000, 31}, 0); got != 1 {
		t.Errorf("lsr = %#x", got)
	}
	if got := run1(t, isa.OpROL, []uint32{0x80000001, 1}, 0); got != 3 {
		t.Errorf("rol = %#x", got)
	}
	if got := run1(t, isa.OpROL, []uint32{0xdeadbeef, 0}, 0); got != 0xdeadbeef {
		t.Errorf("rol by 0 = %#x", got)
	}
	if got := run1(t, isa.OpASLI, []uint32{3}, 4); got != 48 {
		t.Errorf("asli = %d", got)
	}
	if got := run1(t, isa.OpASRI, []uint32{0xffffff00}, 4); got != 0xfffffff0 {
		t.Errorf("asri = %#x", got)
	}
	if got := run1(t, isa.OpLSRI, []uint32{0xff00}, 8); got != 0xff {
		t.Errorf("lsri = %#x", got)
	}
	if got := run1(t, isa.OpROLI, []uint32{0x80000001}, 1); got != 3 {
		t.Errorf("roli = %#x", got)
	}
	if got := run1(t, isa.OpICLZ, []uint32{0}, 0); got != 32 {
		t.Errorf("iclz(0) = %d", got)
	}
	if got := run1(t, isa.OpICLZ, []uint32{1}, 0); got != 31 {
		t.Errorf("iclz(1) = %d", got)
	}
	if got := run1(t, isa.OpICLZ, []uint32{0x00ffffff}, 0); got != 8 {
		t.Errorf("iclz = %d", got)
	}
	if got := run1(t, isa.OpFUNSHIFT1, []uint32{0x11223344, 0xaabbccdd}, 0); got != 0x223344aa {
		t.Errorf("funshift1 = %#x", got)
	}
	if got := run1(t, isa.OpFUNSHIFT2, []uint32{0x11223344, 0xaabbccdd}, 0); got != 0x3344aabb {
		t.Errorf("funshift2 = %#x", got)
	}
	if got := run1(t, isa.OpFUNSHIFT3, []uint32{0x11223344, 0xaabbccdd}, 0); got != 0x44aabbcc {
		t.Errorf("funshift3 = %#x", got)
	}
}

func TestCLZProperty(t *testing.T) {
	f := func(v uint32) bool {
		got := run1(t, isa.OpICLZ, []uint32{v}, 0)
		if v == 0 {
			return got == 32
		}
		// 2^(31-clz) <= v < 2^(32-clz)
		return v>>(31-got) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplier(t *testing.T) {
	if got := run1(t, isa.OpIMUL, []uint32{0xffffffff, 5}, 0); got != 0xfffffffb {
		t.Errorf("imul(-1,5) = %#x", got)
	}
	if got := run1(t, isa.OpIMULM, []uint32{0x40000000, 8}, 0); got != 2 {
		t.Errorf("imulm = %d", got)
	}
	if got := run1(t, isa.OpIMULM, []uint32{0xffffffff, 5}, 0); got != 0xffffffff {
		t.Errorf("imulm(-1,5) = %#x", got)
	}
	if got := run1(t, isa.OpUMULM, []uint32{0xffffffff, 5}, 0); got != 4 {
		t.Errorf("umulm = %d", got)
	}
	if got := run1(t, isa.OpDSPIMUL, []uint32{0x10000, 0x10000}, 0); got != 0x7fffffff {
		t.Errorf("dspimul overflow = %#x, want clip", got)
	}
	// ifir16: (2*3) + (4*5) with packed (2,4) x (3,5)
	a := uint32(2)<<16 | 4
	b := uint32(3)<<16 | 5
	if got := run1(t, isa.OpIFIR16, []uint32{a, b}, 0); got != 26 {
		t.Errorf("ifir16 = %d, want 26", got)
	}
	// Signed halves: (-1 * 3) + (4 * 5) = 17
	a = 0xffff<<16 | 4
	if got := run1(t, isa.OpIFIR16, []uint32{a, b}, 0); got != 17 {
		t.Errorf("ifir16 signed = %d, want 17", got)
	}
	// ufir16 treats halves as unsigned: 65535*3 + 4*5
	if got := run1(t, isa.OpUFIR16, []uint32{a, b}, 0); got != 65535*3+20 {
		t.Errorf("ufir16 = %d", got)
	}
	if got := run1(t, isa.OpUME8UU, []uint32{0x10203040, 0x20103040}, 0); got != 32 {
		t.Errorf("ume8uu = %d, want 32", got)
	}
	if got := run1(t, isa.OpUME8II, []uint32{0x7f800000, 0x807f0000}, 0); got != 255+255 {
		t.Errorf("ume8ii = %d", got)
	}
	// ifir8ui: unsigned bytes of src1 times signed bytes of src2.
	if got := run1(t, isa.OpIFIR8UI, []uint32{0x01020304, 0xff010203}, 0); got != uint32(0xffffffff&uint32(-1+2+6+12)) {
		t.Errorf("ifir8ui = %d", got)
	}
}

func TestSADProperties(t *testing.T) {
	sym := func(a, b uint32) bool {
		return run1(t, isa.OpUME8UU, []uint32{a, b}, 0) == run1(t, isa.OpUME8UU, []uint32{b, a}, 0)
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error("ume8uu not symmetric:", err)
	}
	zero := func(a uint32) bool {
		return run1(t, isa.OpUME8UU, []uint32{a, a}, 0) == 0
	}
	if err := quick.Check(zero, nil); err != nil {
		t.Error("ume8uu(a,a) != 0:", err)
	}
	bound := func(a, b uint32) bool {
		return run1(t, isa.OpUME8UU, []uint32{a, b}, 0) <= 4*255
	}
	if err := quick.Check(bound, nil); err != nil {
		t.Error("ume8uu out of bounds:", err)
	}
}

func TestDSPALU(t *testing.T) {
	if got := run1(t, isa.OpDSPIADD, []uint32{0x7fffffff, 1}, 0); got != 0x7fffffff {
		t.Errorf("dspiadd clip = %#x", got)
	}
	if got := run1(t, isa.OpDSPISUB, []uint32{0x80000000, 1}, 0); got != 0x80000000 {
		t.Errorf("dspisub clip = %#x", got)
	}
	if got := run1(t, isa.OpDSPIABS, []uint32{0x80000000}, 0); got != 0x7fffffff {
		t.Errorf("dspiabs(-2^31) = %#x, want clip", got)
	}
	if got := run1(t, isa.OpDSPIDUALADD, []uint32{0x7fff0001, 0x00010001}, 0); got != 0x7fff0002 {
		t.Errorf("dspidualadd = %#x", got)
	}
	if got := run1(t, isa.OpDSPIDUALSUB, []uint32{0x80000005, 0x00010002}, 0); got != 0x80000003 {
		t.Errorf("dspidualsub = %#x", got)
	}
	if got := run1(t, isa.OpDSPIDUALMUL, []uint32{0x00020100, 0x00030100}, 0); got != 0x00067fff {
		t.Errorf("dspidualmul = %#x", got) // 2*3=6; 256*256 clips to 0x7fff
	}
	if got := run1(t, isa.OpDSPUQUADADDUI, []uint32{0xff000102, 0x01ff02fe}, 0); got != 0xff000300 {
		t.Errorf("dspuquadaddui = %#x", got) // 255+1->255, 0+(-1)->0, 1+2=3, 2+(-2)=0
	}
	if got := run1(t, isa.OpQUADAVG, []uint32{0x00020406, 0x02040608}, 0); got != 0x01030507 {
		t.Errorf("quadavg = %#x", got)
	}
	if got := run1(t, isa.OpQUADAVG, []uint32{0x00000001, 0x00000002}, 0); got != 0x00000002 {
		t.Errorf("quadavg rounding = %#x", got) // (1+2+1)>>1 = 2
	}
	if got := run1(t, isa.OpQUADUMIN, []uint32{0x10f02080, 0x20e03070}, 0); got != 0x10e02070 {
		t.Errorf("quadumin = %#x", got)
	}
	if got := run1(t, isa.OpQUADUMAX, []uint32{0x10f02080, 0x20e03070}, 0); got != 0x20f03080 {
		t.Errorf("quadumax = %#x", got)
	}
	if got := run1(t, isa.OpQUADUMULMSB, []uint32{0xff10ff00, 0xffff02ff}, 0); got != 0xfe0f0100 {
		t.Errorf("quadumulmsb = %#x", got)
	}
	if got := run1(t, isa.OpICLIPI, []uint32{0x7fffffff}, 7); got != 127 {
		t.Errorf("iclipi high = %d", got)
	}
	if got := run1(t, isa.OpICLIPI, []uint32{0x80000000}, 7); got != uint32(0xffffff80) {
		t.Errorf("iclipi low = %#x", got)
	}
	if got := run1(t, isa.OpUCLIPI, []uint32{0xffffffff}, 8); got != 0 {
		t.Errorf("uclipi(-1) = %d, want 0", got)
	}
	if got := run1(t, isa.OpUCLIPI, []uint32{300}, 8); got != 255 {
		t.Errorf("uclipi(300) = %d, want 255", got)
	}
	if got := run1(t, isa.OpDUALICLIPI, []uint32{0x7fff8000}, 7); got != 0x007fff80 {
		t.Errorf("dualiclipi = %#x", got)
	}
	if got := run1(t, isa.OpDUALUCLIPI, []uint32{0x7fff8000}, 8); got != 0x00ff0000 {
		t.Errorf("dualuclipi = %#x", got)
	}
}

func TestPackMerge(t *testing.T) {
	a, b := uint32(0x11223344), uint32(0xaabbccdd)
	if got := run1(t, isa.OpPACK16LSB, []uint32{a, b}, 0); got != 0x3344ccdd {
		t.Errorf("pack16lsb = %#x", got)
	}
	if got := run1(t, isa.OpPACK16MSB, []uint32{a, b}, 0); got != 0x1122aabb {
		t.Errorf("pack16msb = %#x", got)
	}
	if got := run1(t, isa.OpPACKBYTES, []uint32{a, b}, 0); got != 0x44dd {
		t.Errorf("packbytes = %#x", got)
	}
	if got := run1(t, isa.OpMERGELSB, []uint32{a, b}, 0); got != 0x33cc44dd {
		t.Errorf("mergelsb = %#x", got)
	}
	if got := run1(t, isa.OpMERGEMSB, []uint32{a, b}, 0); got != 0x11aa22bb {
		t.Errorf("mergemsb = %#x", got)
	}
	if got := run1(t, isa.OpMERGEDUAL16LSB, []uint32{a, b}, 0); got != 0xccdd3344 {
		t.Errorf("mergedual16lsb = %#x", got)
	}
	if got := run1(t, isa.OpUBYTESEL, []uint32{a, 0}, 0); got != 0x44 {
		t.Errorf("ubytesel 0 = %#x", got)
	}
	if got := run1(t, isa.OpUBYTESEL, []uint32{a, 3}, 0); got != 0x11 {
		t.Errorf("ubytesel 3 = %#x", got)
	}
	if got := run1(t, isa.OpIBYTESEL, []uint32{0x80, 0}, 0); got != 0xffffff80 {
		t.Errorf("ibytesel = %#x", got)
	}
}

func TestFP(t *testing.T) {
	fb := func(f float32) uint32 { return run1(t, isa.OpFADD, []uint32{fbits(f), fbits(0)}, 0) }
	_ = fb
	if got := run1(t, isa.OpFADD, []uint32{fbits(1.5), fbits(2.25)}, 0); got != fbits(3.75) {
		t.Errorf("fadd = %#x", got)
	}
	if got := run1(t, isa.OpFSUB, []uint32{fbits(1.5), fbits(2.5)}, 0); got != fbits(-1.0) {
		t.Errorf("fsub = %#x", got)
	}
	if got := run1(t, isa.OpFMUL, []uint32{fbits(3), fbits(-2)}, 0); got != fbits(-6) {
		t.Errorf("fmul = %#x", got)
	}
	if got := run1(t, isa.OpFDIV, []uint32{fbits(1), fbits(4)}, 0); got != fbits(0.25) {
		t.Errorf("fdiv = %#x", got)
	}
	if got := run1(t, isa.OpFSQRT, []uint32{fbits(9)}, 0); got != fbits(3) {
		t.Errorf("fsqrt = %#x", got)
	}
	if got := run1(t, isa.OpFABSVAL, []uint32{fbits(-2.5)}, 0); got != fbits(2.5) {
		t.Errorf("fabsval = %#x", got)
	}
	if got := run1(t, isa.OpIFLOAT, []uint32{0xffffffff}, 0); got != fbits(-1) {
		t.Errorf("ifloat = %#x", got)
	}
	if got := run1(t, isa.OpUFLOAT, []uint32{0xffffffff}, 0); got != fbits(4294967295) {
		t.Errorf("ufloat = %#x", got)
	}
	if got := run1(t, isa.OpIFIXIEEE, []uint32{fbits(2.5)}, 0); got != 2 {
		t.Errorf("ifixieee(2.5) = %d, want 2 (round to even)", got)
	}
	if got := run1(t, isa.OpIFIXIEEE, []uint32{fbits(3.5)}, 0); got != 4 {
		t.Errorf("ifixieee(3.5) = %d, want 4", got)
	}
	if got := run1(t, isa.OpIFIXIEEE, []uint32{fbits(-2.5)}, 0); got != 0xfffffffe {
		t.Errorf("ifixieee(-2.5) = %#x, want -2", got)
	}
	if got := run1(t, isa.OpUFIXIEEE, []uint32{fbits(-3)}, 0); got != 0 {
		t.Errorf("ufixieee(-3) = %d, want 0", got)
	}
	if got := run1(t, isa.OpFEQL, []uint32{fbits(2), fbits(2)}, 0); got != 1 {
		t.Errorf("feql = %d", got)
	}
	if got := run1(t, isa.OpFGTR, []uint32{fbits(2), fbits(3)}, 0); got != 0 {
		t.Errorf("fgtr = %d", got)
	}
	if got := run1(t, isa.OpFGEQ, []uint32{fbits(3), fbits(3)}, 0); got != 1 {
		t.Errorf("fgeq = %d", got)
	}
}

func TestLoadsStores(t *testing.T) {
	m := mem.NewFunc()
	m.WriteBytes(0x1000, []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88})

	if got := run(t, isa.OpLD32D, []uint32{0x1000}, 0, m).Dest[0]; got != 0x11223344 {
		t.Errorf("ld32d = %#x", got)
	}
	// Non-aligned load.
	if got := run(t, isa.OpLD32D, []uint32{0x1000}, 1, m).Dest[0]; got != 0x22334455 {
		t.Errorf("non-aligned ld32d = %#x", got)
	}
	if got := run(t, isa.OpLD32R, []uint32{0x1000, 4}, 0, m).Dest[0]; got != 0x55667788 {
		t.Errorf("ld32r = %#x", got)
	}
	if got := run(t, isa.OpLD16D, []uint32{0x1000}, 6, m).Dest[0]; got != 0x7788 {
		t.Errorf("ld16d = %#x", got)
	}
	m.WriteBytes(0x1008, []byte{0x80, 0x01})
	if got := run(t, isa.OpLD16D, []uint32{0x1008}, 0, m).Dest[0]; got != 0xffff8001 {
		t.Errorf("ld16d sign extension = %#x", got)
	}
	if got := run(t, isa.OpULD16D, []uint32{0x1008}, 0, m).Dest[0]; got != 0x8001 {
		t.Errorf("uld16d = %#x", got)
	}
	if got := run(t, isa.OpLD8D, []uint32{0x1008}, 0, m).Dest[0]; got != 0xffffff80 {
		t.Errorf("ld8d = %#x", got)
	}
	if got := run(t, isa.OpULD8D, []uint32{0x1008}, 0, m).Dest[0]; got != 0x80 {
		t.Errorf("uld8d = %#x", got)
	}
	if got := run(t, isa.OpLD16R, []uint32{0x1008, 0}, 0, m).Dest[0]; got != 0xffff8001 {
		t.Errorf("ld16r = %#x", got)
	}
	if got := run(t, isa.OpULD16R, []uint32{0x1000, 8}, 0, m).Dest[0]; got != 0x8001 {
		t.Errorf("uld16r = %#x", got)
	}
	if got := run(t, isa.OpLD8R, []uint32{0x1008, 0}, 0, m).Dest[0]; got != 0xffffff80 {
		t.Errorf("ld8r = %#x", got)
	}
	if got := run(t, isa.OpULD8R, []uint32{0x1000, 8}, 0, m).Dest[0]; got != 0x80 {
		t.Errorf("uld8r = %#x", got)
	}

	run(t, isa.OpST32D, []uint32{0x2000, 0xcafebabe}, 0, m)
	if got := m.Load(0x2000, 4); got != 0xcafebabe {
		t.Errorf("st32d stored %#x", got)
	}
	run(t, isa.OpST16D, []uint32{0x2000, 0x1234}, 4, m)
	if got := m.Load(0x2004, 2); got != 0x1234 {
		t.Errorf("st16d stored %#x", got)
	}
	run(t, isa.OpST8D, []uint32{0x2000, 0xab}, 6, m)
	if got := m.Load(0x2006, 1); got != 0xab {
		t.Errorf("st8d stored %#x", got)
	}
	// Non-aligned store straddles word boundary.
	run(t, isa.OpST32D, []uint32{0x2009, 0x11223344}, 0, m)
	if got := m.Load(0x2009, 4); got != 0x11223344 {
		t.Errorf("non-aligned st32d = %#x", got)
	}
}

// TestSuperLD32R checks the Table 2 semantics: two consecutive 32-bit
// big-endian words from rsrc3 + rsrc4.
func TestSuperLD32R(t *testing.T) {
	m := mem.NewFunc()
	m.WriteBytes(0x100, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	ctx := run(t, isa.OpSUPERLD32R, []uint32{0x100, 0}, 0, m)
	if ctx.Dest[0] != 0x01020304 || ctx.Dest[1] != 0x05060708 {
		t.Errorf("super_ld32r = %#x, %#x", ctx.Dest[0], ctx.Dest[1])
	}
	// Non-aligned, indexed.
	ctx = run(t, isa.OpSUPERLD32R, []uint32{0x100, 1}, 0, m)
	if ctx.Dest[0] != 0x02030405 || ctx.Dest[1] != 0x06070809 {
		t.Errorf("non-aligned super_ld32r = %#x, %#x", ctx.Dest[0], ctx.Dest[1])
	}
}

// TestSuperDualIMix checks the Table 2 semantics, including clipping.
func TestSuperDualIMix(t *testing.T) {
	pack := func(hi, lo int16) uint32 { return uint32(uint16(hi))<<16 | uint32(uint16(lo)) }
	ctx := run(t, isa.OpSUPERDUALIMIX,
		[]uint32{pack(2, 3), pack(5, 7), pack(11, 13), pack(17, 19)}, 0, nil)
	if ctx.Dest[0] != uint32(2*5+11*17) {
		t.Errorf("dest1 = %d, want %d", ctx.Dest[0], 2*5+11*17)
	}
	if ctx.Dest[1] != uint32(3*7+13*19) {
		t.Errorf("dest2 = %d, want %d", ctx.Dest[1], 3*7+13*19)
	}
	// Negative values.
	ctx = run(t, isa.OpSUPERDUALIMIX,
		[]uint32{pack(-2, -3), pack(5, 7), pack(11, -13), pack(17, 19)}, 0, nil)
	if int32(ctx.Dest[0]) != -2*5+11*17 {
		t.Errorf("dest1 = %d", int32(ctx.Dest[0]))
	}
	if int32(ctx.Dest[1]) != -3*7+-13*19 {
		t.Errorf("dest2 = %d", int32(ctx.Dest[1]))
	}
	// Clipping: -32768 * -32768 * 2 overflows int32 and must clip.
	ctx = run(t, isa.OpSUPERDUALIMIX,
		[]uint32{pack(-32768, -32768), pack(-32768, -32768), pack(-32768, 32767), pack(-32768, 32767)}, 0, nil)
	if ctx.Dest[0] != 0x7fffffff {
		t.Errorf("dest1 = %#x, want positive clip", ctx.Dest[0])
	}
}

// TestLDFrac8 checks the collapsed-load semantics against Table 2.
func TestLDFrac8(t *testing.T) {
	m := mem.NewFunc()
	m.WriteBytes(0x40, []byte{10, 20, 30, 40, 50})

	// Fraction 0: pure copy of the first four bytes.
	got := run(t, isa.OpLDFRAC8, []uint32{0x40, 0}, 0, m).Dest[0]
	if got != packb(10, 20, 30, 40) {
		t.Errorf("frac 0 = %#x", got)
	}
	// Fraction 8: midpoint with rounding: (a*8+b*8+8)/16 = (a+b+1)/2.
	got = run(t, isa.OpLDFRAC8, []uint32{0x40, 8}, 0, m).Dest[0]
	if got != packb(15, 25, 35, 45) {
		t.Errorf("frac 8 = %#x", got)
	}
	// Fraction 15: nearly the next byte.
	got = run(t, isa.OpLDFRAC8, []uint32{0x40, 15}, 0, m).Dest[0]
	want := packb(
		(10*1+20*15+8)/16,
		(20*1+30*15+8)/16,
		(30*1+40*15+8)/16,
		(40*1+50*15+8)/16)
	if got != want {
		t.Errorf("frac 15 = %#x, want %#x", got, want)
	}
	// Only the low 4 bits of the fraction participate.
	if a, b := run(t, isa.OpLDFRAC8, []uint32{0x40, 0x10}, 0, m).Dest[0], run(t, isa.OpLDFRAC8, []uint32{0x40, 0}, 0, m).Dest[0]; a != b {
		t.Errorf("fraction must be masked to 4 bits: %#x vs %#x", a, b)
	}
}

func packb(b0, b1, b2, b3 uint32) uint32 { return b0<<24 | b1<<16 | b2<<8 | b3 }

func fbits(f float32) uint32 { return math.Float32bits(f) }
