package isa

// UnitClass identifies a class of functional unit. Every operation
// executes on exactly one class; the class determines the issue slots in
// which the operation may be scheduled.
type UnitClass uint8

const (
	// UnitNone is the class of the NOP pseudo-operation.
	UnitNone UnitClass = iota
	// UnitConst produces immediate values (IIMM).
	UnitConst
	// UnitALU performs single-cycle integer arithmetic and logic.
	UnitALU
	// UnitShifter performs shifts, rotates and funnel shifts.
	UnitShifter
	// UnitDSPALU performs clipped and packed (SIMD) arithmetic.
	UnitDSPALU
	// UnitDSPMul performs multiplications, FIR and SAD operations.
	UnitDSPMul
	// UnitBranch executes jump operations.
	UnitBranch
	// UnitFALU performs single-precision FP add/sub/convert.
	UnitFALU
	// UnitFComp performs single-cycle FP comparisons.
	UnitFComp
	// UnitFMul performs single-precision FP multiplication.
	UnitFMul
	// UnitFTough performs long-latency FP division and square root.
	UnitFTough
	// UnitLoad performs memory loads (data-array port, slot 5 on TM3270).
	UnitLoad
	// UnitStore performs memory stores and cache-line allocates.
	UnitStore
	// UnitFracLoad performs collapsed loads with interpolation (LD_FRAC8).
	UnitFracLoad
	// UnitSuper executes two-slot arithmetic super operations in the
	// slot (2,3) pair.
	UnitSuper
	// UnitSuperLS executes the two-slot SUPER_LD32R in the slot (4,5)
	// pair (the data-cache access path stays restricted to slot 5).
	UnitSuperLS
	// UnitCABAC executes the two-slot CABAC operations in the slot
	// (2,3) pair.
	UnitCABAC

	numUnitClasses
)

var unitClassNames = [numUnitClasses]string{
	UnitNone:     "none",
	UnitConst:    "const",
	UnitALU:      "alu",
	UnitShifter:  "shifter",
	UnitDSPALU:   "dspalu",
	UnitDSPMul:   "dspmul",
	UnitBranch:   "branch",
	UnitFALU:     "falu",
	UnitFComp:    "fcomp",
	UnitFMul:     "fmul",
	UnitFTough:   "ftough",
	UnitLoad:     "load",
	UnitStore:    "store",
	UnitFracLoad: "fracload",
	UnitSuper:    "super",
	UnitSuperLS:  "superls",
	UnitCABAC:    "cabac",
}

func (c UnitClass) String() string {
	if int(c) < len(unitClassNames) {
		return unitClassNames[c]
	}
	return "unit?"
}

// SlotMask is a bit set of issue slots. Slot numbers are 1..5 as in the
// paper; bit (n-1) represents slot n.
type SlotMask uint8

// Slot returns the mask containing only slot n (1..5).
func Slot(n int) SlotMask { return 1 << (n - 1) }

// Slots builds a mask from a list of slot numbers.
func Slots(ns ...int) SlotMask {
	var m SlotMask
	for _, n := range ns {
		m |= Slot(n)
	}
	return m
}

// Has reports whether slot n (1..5) is in the mask.
func (m SlotMask) Has(n int) bool { return m&Slot(n) != 0 }

// Count returns the number of slots in the mask.
func (m SlotMask) Count() int {
	c := 0
	for n := 1; n <= 5; n++ {
		if m.Has(n) {
			c++
		}
	}
	return c
}

// AllSlots contains the five issue slots.
const AllSlots = SlotMask(0x1f)

// unitSlots maps each unit class to the slots in which operations of
// that class may issue on the TM3270. Two-slot classes list the *first*
// slot of their pair; the second slot is first+1.
//
// The load class is config-dependent (the TM3260 issues loads in slots 4
// and 5, the TM3270 only in slot 5); this table holds TM3270 defaults and
// the scheduler consults its target configuration to widen it.
var unitSlots = map[UnitClass]SlotMask{
	UnitNone:     AllSlots,
	UnitConst:    AllSlots,
	UnitALU:      AllSlots,
	UnitShifter:  Slots(1, 2),
	UnitDSPALU:   Slots(1, 3),
	UnitDSPMul:   Slots(2, 3),
	UnitBranch:   Slots(2, 3, 4),
	UnitFALU:     Slots(1, 4),
	UnitFComp:    Slots(3),
	UnitFMul:     Slots(2, 3),
	UnitFTough:   Slots(5),
	UnitLoad:     Slots(5),
	UnitStore:    Slots(4, 5),
	UnitFracLoad: Slots(5),
	UnitSuper:    Slots(2), // pair (2,3)
	UnitSuperLS:  Slots(4), // pair (4,5)
	UnitCABAC:    Slots(2), // pair (2,3)
}

// DefaultSlots returns the TM3270 issue-slot mask for a unit class. For
// two-slot classes the mask names the first slot of the pair.
func DefaultSlots(c UnitClass) SlotMask { return unitSlots[c] }

// Unit is one physical functional unit instance.
type Unit struct {
	Name  string
	Class UnitClass
	// Slot is the issue slot the unit is attached to (1..5). Two-slot
	// units occupy Slot and Slot+1.
	Slot    int
	TwoSlot bool
}

// Units is the TM3270 functional-unit inventory. The paper reports 31
// functional units (Table 1); the per-slot placement recreates the
// published TriMedia slot assignments plus the TM3270 additions (the
// two-slot super units, the CABAC unit and the fractional-load filter).
var Units = []Unit{
	// Five constant/immediate generators, one per slot.
	{"const1", UnitConst, 1, false},
	{"const2", UnitConst, 2, false},
	{"const3", UnitConst, 3, false},
	{"const4", UnitConst, 4, false},
	{"const5", UnitConst, 5, false},
	// Five single-cycle integer ALUs, one per slot.
	{"alu1", UnitALU, 1, false},
	{"alu2", UnitALU, 2, false},
	{"alu3", UnitALU, 3, false},
	{"alu4", UnitALU, 4, false},
	{"alu5", UnitALU, 5, false},
	// Two shifters.
	{"shifter1", UnitShifter, 1, false},
	{"shifter2", UnitShifter, 2, false},
	// Two DSP ALUs (packed/clipped arithmetic).
	{"dspalu1", UnitDSPALU, 1, false},
	{"dspalu3", UnitDSPALU, 3, false},
	// Two DSP multiplier complexes (also FIR/SAD).
	{"dspmul2", UnitDSPMul, 2, false},
	{"dspmul3", UnitDSPMul, 3, false},
	// Three branch units.
	{"branch2", UnitBranch, 2, false},
	{"branch3", UnitBranch, 3, false},
	{"branch4", UnitBranch, 4, false},
	// Floating point: two adders, one comparator, two multipliers, one
	// divide/sqrt unit.
	{"falu1", UnitFALU, 1, false},
	{"falu4", UnitFALU, 4, false},
	{"fcomp3", UnitFComp, 3, false},
	{"fmul2", UnitFMul, 2, false},
	{"fmul3", UnitFMul, 3, false},
	{"ftough5", UnitFTough, 5, false},
	// Load/store: stores in slots 4 and 5 (dual tag copies), the data
	// array load port in slot 5, and the interpolating filter bank
	// behind slot 5 for collapsed loads.
	{"store4", UnitStore, 4, false},
	{"loadstore5", UnitLoad, 5, false},
	{"fracfilter5", UnitFracLoad, 5, false},
	// TM3270 two-slot units.
	{"super23", UnitSuper, 2, true},
	{"cabac23", UnitCABAC, 2, true},
	{"superls45", UnitSuperLS, 4, true},
}
