package isa

import "math"

func f32(v uint32) float32   { return math.Float32frombits(v) }
func fbits(f float32) uint32 { return math.Float32bits(f) }

func registerFPOps() {
	register(OpFADD, rr("fadd", UnitFALU, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(f32(c.Src[0]) + f32(c.Src[1]))
	}))
	register(OpFSUB, rr("fsub", UnitFALU, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(f32(c.Src[0]) - f32(c.Src[1]))
	}))
	register(OpFABSVAL, rr("fabsval", UnitFALU, 3, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] &^ 0x80000000
	}))
	register(OpIFLOAT, rr("ifloat", UnitFALU, 3, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(float32(int32(c.Src[0])))
	}))
	register(OpUFLOAT, rr("ufloat", UnitFALU, 3, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(float32(c.Src[0]))
	}))
	register(OpIFIXIEEE, rr("ifixieee", UnitFALU, 3, 1, Size26, func(c *ExecContext) {
		f := float64(f32(c.Src[0]))
		r := math.RoundToEven(f)
		switch {
		case math.IsNaN(r):
			c.Dest[0] = 0
		case r > math.MaxInt32:
			c.Dest[0] = 0x7fffffff
		case r < math.MinInt32:
			c.Dest[0] = 0x80000000
		default:
			c.Dest[0] = uint32(int32(r))
		}
	}))
	register(OpUFIXIEEE, rr("ufixieee", UnitFALU, 3, 1, Size26, func(c *ExecContext) {
		f := float64(f32(c.Src[0]))
		r := math.RoundToEven(f)
		switch {
		case math.IsNaN(r) || r < 0:
			c.Dest[0] = 0
		case r > math.MaxUint32:
			c.Dest[0] = 0xffffffff
		default:
			c.Dest[0] = uint32(r)
		}
	}))
	register(OpFEQL, rr("feql", UnitFComp, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = b2u(f32(c.Src[0]) == f32(c.Src[1]))
	}))
	register(OpFGTR, rr("fgtr", UnitFComp, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = b2u(f32(c.Src[0]) > f32(c.Src[1]))
	}))
	register(OpFGEQ, rr("fgeq", UnitFComp, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = b2u(f32(c.Src[0]) >= f32(c.Src[1]))
	}))
	register(OpFMUL, rr("fmul", UnitFMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(f32(c.Src[0]) * f32(c.Src[1]))
	}))
	register(OpFDIV, rr("fdiv", UnitFTough, 17, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(f32(c.Src[0]) / f32(c.Src[1]))
	}))
	register(OpFSQRT, rr("fsqrt", UnitFTough, 17, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = fbits(float32(math.Sqrt(float64(f32(c.Src[0])))))
	}))
}
