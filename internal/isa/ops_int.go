package isa

// registerAll installs every operation. It is split by operation group;
// each group function registers its table entries.
func registerAll() {
	registerIntOps()
	registerShiftOps()
	registerMulOps()
	registerDSPOps()
	registerFPOps()
	registerCtlOps()
	registerMemOps()
	registerSuperOps()
}

// rr describes a common single-destination register-register operation.
func rr(name string, class UnitClass, lat int, nsrc int, size SizeClass, exec ExecFunc) OpInfo {
	return OpInfo{Name: name, Class: class, Latency: lat, NSrc: nsrc, NDest: 1, Size: size, Exec: exec}
}

// ri describes a single-destination register-immediate operation.
func ri(name string, class UnitClass, lat int, size SizeClass, exec ExecFunc) OpInfo {
	return OpInfo{Name: name, Class: class, Latency: lat, NSrc: 1, NDest: 1, HasImm: true, Size: size, Exec: exec}
}

func registerIntOps() {
	register(OpNOP, OpInfo{Name: "nop", Class: UnitNone, Latency: 1, Size: Size26,
		Exec: func(*ExecContext) {}})

	register(OpIIMM, OpInfo{Name: "iimm", Class: UnitConst, Latency: 1, NDest: 1,
		HasImm: true, Size: Size42,
		Exec: func(c *ExecContext) { c.Dest[0] = c.Imm }})

	register(OpIADD, rr("iadd", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] + c.Src[1]
	}))
	register(OpISUB, rr("isub", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] - c.Src[1]
	}))
	register(OpIADDI, ri("iaddi", UnitALU, 1, Size34, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] + c.Imm
	}))
	register(OpIMIN, rr("imin", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(min(int32(c.Src[0]), int32(c.Src[1])))
	}))
	register(OpIMAX, rr("imax", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(max(int32(c.Src[0]), int32(c.Src[1])))
	}))
	register(OpIAVGONEP, rr("iavgonep", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32((int64(int32(c.Src[0])) + int64(int32(c.Src[1])) + 1) >> 1)
	}))
	register(OpBITAND, rr("bitand", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] & c.Src[1]
	}))
	register(OpBITOR, rr("bitor", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] | c.Src[1]
	}))
	register(OpBITXOR, rr("bitxor", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] ^ c.Src[1]
	}))
	register(OpBITANDINV, rr("bitandinv", UnitALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] &^ c.Src[1]
	}))
	register(OpBITINV, rr("bitinv", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = ^c.Src[0]
	}))
	register(OpSEX8, rr("sex8", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(int32(int8(c.Src[0])))
	}))
	register(OpSEX16, rr("sex16", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(int32(int16(c.Src[0])))
	}))
	register(OpZEX8, rr("zex8", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] & 0xff
	}))
	register(OpZEX16, rr("zex16", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] & 0xffff
	}))

	cmp := func(name string, op Opcode, f func(a, b uint32) bool) {
		register(op, rr(name, UnitALU, 1, 2, Size26, func(c *ExecContext) {
			c.Dest[0] = b2u(f(c.Src[0], c.Src[1]))
		}))
	}
	cmp("ieql", OpIEQL, func(a, b uint32) bool { return a == b })
	cmp("ineq", OpINEQ, func(a, b uint32) bool { return a != b })
	cmp("igtr", OpIGTR, func(a, b uint32) bool { return int32(a) > int32(b) })
	cmp("igeq", OpIGEQ, func(a, b uint32) bool { return int32(a) >= int32(b) })
	cmp("iles", OpILES, func(a, b uint32) bool { return int32(a) < int32(b) })
	cmp("ileq", OpILEQ, func(a, b uint32) bool { return int32(a) <= int32(b) })
	cmp("ugtr", OpUGTR, func(a, b uint32) bool { return a > b })
	cmp("ugeq", OpUGEQ, func(a, b uint32) bool { return a >= b })
	cmp("ules", OpULES, func(a, b uint32) bool { return a < b })
	cmp("uleq", OpULEQ, func(a, b uint32) bool { return a <= b })

	cmpi := func(name string, op Opcode, f func(a, imm uint32) bool) {
		register(op, ri(name, UnitALU, 1, Size34, func(c *ExecContext) {
			c.Dest[0] = b2u(f(c.Src[0], c.Imm))
		}))
	}
	cmpi("ieqli", OpIEQLI, func(a, i uint32) bool { return a == i })
	cmpi("ineqi", OpINEQI, func(a, i uint32) bool { return a != i })
	cmpi("igtri", OpIGTRI, func(a, i uint32) bool { return int32(a) > int32(i) })
	cmpi("ilesi", OpILESI, func(a, i uint32) bool { return int32(a) < int32(i) })

	register(OpIZERO, rr("izero", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = b2u(c.Src[0] == 0)
	}))
	register(OpINONZERO, rr("inonzero", UnitALU, 1, 1, Size26, func(c *ExecContext) {
		c.Dest[0] = b2u(c.Src[0] != 0)
	}))
}

func registerShiftOps() {
	register(OpASL, rr("asl", UnitShifter, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] << (c.Src[1] & 31)
	}))
	register(OpASR, rr("asr", UnitShifter, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(int32(c.Src[0]) >> (c.Src[1] & 31))
	}))
	register(OpLSR, rr("lsr", UnitShifter, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] >> (c.Src[1] & 31)
	}))
	register(OpROL, rr("rol", UnitShifter, 1, 2, Size26, func(c *ExecContext) {
		n := c.Src[1] & 31
		if n == 0 {
			c.Dest[0] = c.Src[0]
			return
		}
		c.Dest[0] = c.Src[0]<<n | c.Src[0]>>(32-n)
	}))
	register(OpASLI, ri("asli", UnitShifter, 1, Size34, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] << (c.Imm & 31)
	}))
	register(OpASRI, ri("asri", UnitShifter, 1, Size34, func(c *ExecContext) {
		c.Dest[0] = uint32(int32(c.Src[0]) >> (c.Imm & 31))
	}))
	register(OpLSRI, ri("lsri", UnitShifter, 1, Size34, func(c *ExecContext) {
		c.Dest[0] = c.Src[0] >> (c.Imm & 31)
	}))
	register(OpROLI, ri("roli", UnitShifter, 1, Size34, func(c *ExecContext) {
		n := c.Imm & 31
		if n == 0 {
			c.Dest[0] = c.Src[0]
			return
		}
		c.Dest[0] = c.Src[0]<<n | c.Src[0]>>(32-n)
	}))
	register(OpICLZ, rr("iclz", UnitShifter, 1, 1, Size26, func(c *ExecContext) {
		n := uint32(0)
		v := c.Src[0]
		if v == 0 {
			c.Dest[0] = 32
			return
		}
		for v&0x80000000 == 0 {
			v <<= 1
			n++
		}
		c.Dest[0] = n
	}))

	funshift := func(name string, op Opcode, n uint) {
		register(op, rr(name, UnitShifter, 1, 2, Size26, func(c *ExecContext) {
			c.Dest[0] = c.Src[0]<<(8*n) | c.Src[1]>>(32-8*n)
		}))
	}
	funshift("funshift1", OpFUNSHIFT1, 1)
	funshift("funshift2", OpFUNSHIFT2, 2)
	funshift("funshift3", OpFUNSHIFT3, 3)
}

func registerMulOps() {
	register(OpIMUL, rr("imul", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(int32(c.Src[0]) * int32(c.Src[1]))
	}))
	register(OpIMULM, rr("imulm", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32((int64(int32(c.Src[0])) * int64(int32(c.Src[1]))) >> 32)
	}))
	register(OpUMULM, rr("umulm", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32((uint64(c.Src[0]) * uint64(c.Src[1])) >> 32)
	}))
	register(OpDSPIMUL, rr("dspimul", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = clip32(int64(int32(c.Src[0])) * int64(int32(c.Src[1])))
	}))
	register(OpIFIR16, rr("ifir16", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(hi16(c.Src[0])*hi16(c.Src[1]) + lo16(c.Src[0])*lo16(c.Src[1]))
	}))
	register(OpUFIR16, rr("ufir16", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(uhi16(c.Src[0])*uhi16(c.Src[1]) + ulo16(c.Src[0])*ulo16(c.Src[1]))
	}))
	register(OpIFIR8UI, rr("ifir8ui", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		var s int32
		for i := 0; i < 4; i++ {
			s += int32(byteOf(c.Src[0], i)) * sbyteOf(c.Src[1], i)
		}
		c.Dest[0] = uint32(s)
	}))
	register(OpUME8UU, rr("ume8uu", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = sad4(c.Src[0], c.Src[1])
	}))
	register(OpUME8II, rr("ume8ii", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		var s uint32
		for i := 0; i < 4; i++ {
			d := sbyteOf(c.Src[0], i) - sbyteOf(c.Src[1], i)
			if d < 0 {
				d = -d
			}
			s += uint32(d)
		}
		c.Dest[0] = s
	}))
}

// sad4 sums the absolute differences of the four unsigned byte lanes.
func sad4(a, b uint32) uint32 {
	var s uint32
	for i := 0; i < 4; i++ {
		x, y := byteOf(a, i), byteOf(b, i)
		if x >= y {
			s += x - y
		} else {
			s += y - x
		}
	}
	return s
}
