package isa

func registerDSPOps() {
	register(OpDSPIADD, rr("dspiadd", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = clip32(int64(int32(c.Src[0])) + int64(int32(c.Src[1])))
	}))
	register(OpDSPISUB, rr("dspisub", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = clip32(int64(int32(c.Src[0])) - int64(int32(c.Src[1])))
	}))
	register(OpDSPIABS, rr("dspiabs", UnitDSPALU, 2, 1, Size26, func(c *ExecContext) {
		v := int64(int32(c.Src[0]))
		if v < 0 {
			v = -v
		}
		c.Dest[0] = clip32(v)
	}))
	register(OpDSPIDUALADD, rr("dspidualadd", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		h := clip16(hi16(c.Src[0]) + hi16(c.Src[1]))
		l := clip16(lo16(c.Src[0]) + lo16(c.Src[1]))
		c.Dest[0] = dual16(uint32(h), uint32(l))
	}))
	register(OpDSPIDUALSUB, rr("dspidualsub", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		h := clip16(hi16(c.Src[0]) - hi16(c.Src[1]))
		l := clip16(lo16(c.Src[0]) - lo16(c.Src[1]))
		c.Dest[0] = dual16(uint32(h), uint32(l))
	}))
	register(OpDSPIDUALMUL, rr("dspidualmul", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		ph := int64(hi16(c.Src[0])) * int64(hi16(c.Src[1]))
		pl := int64(lo16(c.Src[0])) * int64(lo16(c.Src[1]))
		c.Dest[0] = dual16(uint32(clip16s64(ph)), uint32(clip16s64(pl)))
	}))
	register(OpDSPUQUADADDUI, rr("dspuquadaddui", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		var b [4]uint32
		for i := 0; i < 4; i++ {
			b[i] = uint32(clipU8(int32(byteOf(c.Src[0], i)) + sbyteOf(c.Src[1], i)))
		}
		c.Dest[0] = packBytes(b[0], b[1], b[2], b[3])
	}))
	register(OpQUADAVG, rr("quadavg", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		var b [4]uint32
		for i := 0; i < 4; i++ {
			b[i] = (byteOf(c.Src[0], i) + byteOf(c.Src[1], i) + 1) >> 1
		}
		c.Dest[0] = packBytes(b[0], b[1], b[2], b[3])
	}))
	register(OpQUADUMIN, rr("quadumin", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		var b [4]uint32
		for i := 0; i < 4; i++ {
			b[i] = min(byteOf(c.Src[0], i), byteOf(c.Src[1], i))
		}
		c.Dest[0] = packBytes(b[0], b[1], b[2], b[3])
	}))
	register(OpQUADUMAX, rr("quadumax", UnitDSPALU, 2, 2, Size26, func(c *ExecContext) {
		var b [4]uint32
		for i := 0; i < 4; i++ {
			b[i] = max(byteOf(c.Src[0], i), byteOf(c.Src[1], i))
		}
		c.Dest[0] = packBytes(b[0], b[1], b[2], b[3])
	}))
	register(OpQUADUMULMSB, rr("quadumulmsb", UnitDSPMul, 3, 2, Size26, func(c *ExecContext) {
		var b [4]uint32
		for i := 0; i < 4; i++ {
			b[i] = (byteOf(c.Src[0], i) * byteOf(c.Src[1], i)) >> 8
		}
		c.Dest[0] = packBytes(b[0], b[1], b[2], b[3])
	}))
	register(OpICLIPI, ri("iclipi", UnitDSPALU, 2, Size34, func(c *ExecContext) {
		c.Dest[0] = clipSigned(int32(c.Src[0]), c.Imm)
	}))
	register(OpUCLIPI, ri("uclipi", UnitDSPALU, 2, Size34, func(c *ExecContext) {
		c.Dest[0] = clipUnsigned(int32(c.Src[0]), c.Imm)
	}))
	register(OpDUALICLIPI, ri("dualiclipi", UnitDSPALU, 2, Size34, func(c *ExecContext) {
		h := clipSigned(hi16(c.Src[0]), c.Imm)
		l := clipSigned(lo16(c.Src[0]), c.Imm)
		c.Dest[0] = dual16(h, l)
	}))
	register(OpDUALUCLIPI, ri("dualuclipi", UnitDSPALU, 2, Size34, func(c *ExecContext) {
		h := clipUnsigned(hi16(c.Src[0]), c.Imm)
		l := clipUnsigned(lo16(c.Src[0]), c.Imm)
		c.Dest[0] = dual16(h, l)
	}))
	register(OpPACK16LSB, rr("pack16lsb", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = dual16(c.Src[0]&0xffff, c.Src[1]&0xffff)
	}))
	register(OpPACK16MSB, rr("pack16msb", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = dual16(c.Src[0]>>16, c.Src[1]>>16)
	}))
	register(OpPACKBYTES, rr("packbytes", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = (c.Src[0]&0xff)<<8 | c.Src[1]&0xff
	}))
	register(OpMERGELSB, rr("mergelsb", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = packBytes(byteOf(c.Src[0], 2), byteOf(c.Src[1], 2), byteOf(c.Src[0], 3), byteOf(c.Src[1], 3))
	}))
	register(OpMERGEMSB, rr("mergemsb", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = packBytes(byteOf(c.Src[0], 0), byteOf(c.Src[1], 0), byteOf(c.Src[0], 1), byteOf(c.Src[1], 1))
	}))
	register(OpMERGEDUAL16LSB, rr("mergedual16lsb", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = dual16(c.Src[1]&0xffff, c.Src[0]&0xffff)
	}))
	register(OpUBYTESEL, rr("ubytesel", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		// Byte index 0 selects the least significant byte.
		c.Dest[0] = byteOf(c.Src[0], 3-int(c.Src[1]&3))
	}))
	register(OpIBYTESEL, rr("ibytesel", UnitDSPALU, 1, 2, Size26, func(c *ExecContext) {
		c.Dest[0] = uint32(int32(int8(byteOf(c.Src[0], 3-int(c.Src[1]&3)))))
	}))
}

func clip16s64(v int64) uint16 {
	if v > 0x7fff {
		return 0x7fff
	}
	if v < -0x8000 {
		return 0x8000
	}
	return uint16(v)
}
