package isa

// load builds the OpInfo of a load operation. Load latency listed here
// is the TM3270 value (4 cycles); the scheduler substitutes the target
// configuration's load latency (the TM3260 has 3-cycle loads).
func load(name string, nsrc, bytes int, hasImm bool, exec ExecFunc) OpInfo {
	return OpInfo{Name: name, Class: UnitLoad, Latency: 4, NSrc: nsrc, NDest: 1,
		HasImm: hasImm, Size: Size34, IsLoad: true, MemBytes: bytes, Exec: exec}
}

func store(name string, bytes int, exec ExecFunc) OpInfo {
	return OpInfo{Name: name, Class: UnitStore, Latency: 1, NSrc: 2, NDest: 0,
		HasImm: true, Size: Size34, IsStore: true, MemBytes: bytes, Exec: exec}
}

func sext(v uint64, bits uint) uint32 {
	shift := 64 - bits
	return uint32(int64(v<<shift) >> shift)
}

func registerMemOps() {
	// Displacement loads: address = rsrc1 + signed immediate.
	register(OpLD32D, load("ld32d", 1, 4, true, func(c *ExecContext) {
		c.Dest[0] = uint32(c.Mem.Load(c.Src[0]+c.Imm, 4))
	}))
	register(OpLD16D, load("ld16d", 1, 2, true, func(c *ExecContext) {
		c.Dest[0] = sext(c.Mem.Load(c.Src[0]+c.Imm, 2), 16)
	}))
	register(OpULD16D, load("uld16d", 1, 2, true, func(c *ExecContext) {
		c.Dest[0] = uint32(c.Mem.Load(c.Src[0]+c.Imm, 2))
	}))
	register(OpLD8D, load("ld8d", 1, 1, true, func(c *ExecContext) {
		c.Dest[0] = sext(c.Mem.Load(c.Src[0]+c.Imm, 1), 8)
	}))
	register(OpULD8D, load("uld8d", 1, 1, true, func(c *ExecContext) {
		c.Dest[0] = uint32(c.Mem.Load(c.Src[0]+c.Imm, 1))
	}))

	// Indexed loads: address = rsrc1 + rsrc2.
	register(OpLD32R, load("ld32r", 2, 4, false, func(c *ExecContext) {
		c.Dest[0] = uint32(c.Mem.Load(c.Src[0]+c.Src[1], 4))
	}))
	register(OpLD16R, load("ld16r", 2, 2, false, func(c *ExecContext) {
		c.Dest[0] = sext(c.Mem.Load(c.Src[0]+c.Src[1], 2), 16)
	}))
	register(OpULD16R, load("uld16r", 2, 2, false, func(c *ExecContext) {
		c.Dest[0] = uint32(c.Mem.Load(c.Src[0]+c.Src[1], 2))
	}))
	register(OpLD8R, load("ld8r", 2, 1, false, func(c *ExecContext) {
		c.Dest[0] = sext(c.Mem.Load(c.Src[0]+c.Src[1], 1), 8)
	}))
	register(OpULD8R, load("uld8r", 2, 1, false, func(c *ExecContext) {
		c.Dest[0] = uint32(c.Mem.Load(c.Src[0]+c.Src[1], 1))
	}))

	// Stores: address = rsrc1 + signed immediate, value = rsrc2.
	register(OpST32D, store("st32d", 4, func(c *ExecContext) {
		c.Mem.Store(c.Src[0]+c.Imm, 4, uint64(c.Src[1]))
	}))
	register(OpST16D, store("st16d", 2, func(c *ExecContext) {
		c.Mem.Store(c.Src[0]+c.Imm, 2, uint64(c.Src[1]&0xffff))
	}))
	register(OpST8D, store("st8d", 1, func(c *ExecContext) {
		c.Mem.Store(c.Src[0]+c.Imm, 1, uint64(c.Src[1]&0xff))
	}))

	// ALLOCD allocates (validates) the cache line containing
	// rsrc1 + imm without fetching it from memory. Functionally a no-op;
	// the data cache model gives it its timing meaning.
	register(OpALLOCD, OpInfo{Name: "allocd", Class: UnitStore, Latency: 1,
		NSrc: 1, HasImm: true, Size: Size34, IsStore: true, MemBytes: 0,
		Exec: func(*ExecContext) {}})

	// Collapsed load with interpolation (Table 2, LD_FRAC8): five bytes
	// at rsrc1, pairwise interpolated at fraction rsrc2[3:0] sixteenths.
	register(OpLDFRAC8, OpInfo{Name: "ld_frac8", Class: UnitFracLoad, Latency: 6,
		NSrc: 2, NDest: 1, Size: Size34, IsLoad: true, MemBytes: 5,
		Exec: func(c *ExecContext) {
			f := c.Src[1] & 0xf
			data := c.Mem.Load(c.Src[0], 5) // 5 bytes, big-endian, bits [39:0]
			b := func(i uint) uint32 { return uint32(data>>(32-8*i)) & 0xff }
			var out [4]uint32
			for i := uint(0); i < 4; i++ {
				out[i] = (b(i)*(16-f) + b(i+1)*f + 8) / 16
			}
			c.Dest[0] = packBytes(out[0], out[1], out[2], out[3])
		}})
}
