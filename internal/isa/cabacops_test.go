package isa_test

import (
	"math/rand"
	"testing"

	"tm3270/internal/cabac"
	"tm3270/internal/isa"
)

// TestCabacOpsDecodeStream decodes a real CABAC bitstream using only the
// SUPER_CABAC_CTX / SUPER_CABAC_STR operation semantics and the window
// discipline of the paper, and checks that the decoded bits match what
// was encoded. This pins the Table 2 semantics end to end.
func TestCabacOpsDecodeStream(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const nBits = 5000
	const nCtx = 8

	encCtx := make([]cabac.Context, nCtx)
	enc := cabac.NewEncoder()
	bits := make([]uint8, nBits)
	ctxOf := make([]int, nBits)
	for i := range bits {
		// A skewed source so contexts adapt away from equiprobability.
		b := uint8(0)
		if rng.Intn(10) == 0 {
			b = 1
		}
		ci := rng.Intn(nCtx)
		bits[i] = b
		ctxOf[i] = ci
		enc.EncodeBit(&encCtx[ci], b)
	}
	stream := enc.Flush()

	// Software-visible decoder state, as the kernels keep it.
	window := func(pos int) uint32 {
		b := func(i int) uint32 {
			if i < len(stream) {
				return uint32(stream[i])
			}
			return 0
		}
		return b(pos)<<24 | b(pos+1)<<16 | b(pos+2)<<8 | b(pos+3)
	}
	bytePos := 0
	streamData := window(0)
	valueRange := (streamData >> (32 - 9) << 16) | 510 // DUAL16(value, range)
	bitPos := uint32(9)

	decCtx := make([]cabac.Context, nCtx)
	ctxOp := isa.Info(isa.OpSUPERCABACCTX)
	strOp := isa.Info(isa.OpSUPERCABACSTR)

	for i := range bits {
		ci := ctxOf[i]
		packed := decCtx[ci].Pack()

		var strc isa.ExecContext
		strc.Src = [4]uint32{valueRange, bitPos, 0, packed}
		strOp.Exec(&strc)

		var ctxc isa.ExecContext
		ctxc.Src = [4]uint32{valueRange, bitPos, streamData, packed}
		ctxOp.Exec(&ctxc)

		bit := strc.Dest[1]
		if uint8(bit) != bits[i] {
			t.Fatalf("bit %d: decoded %d, want %d", i, bit, bits[i])
		}
		bitPos = strc.Dest[0]
		valueRange = ctxc.Dest[0]
		decCtx[ci] = cabac.UnpackContext(ctxc.Dest[1])

		// Guarded window refill, as in the kernels: keep bitPos < 16.
		for bitPos >= 16 {
			bytePos += 2
			bitPos -= 16
			streamData = window(bytePos)
		}
	}
}

// TestCabacStrMatchesCtx verifies that the bitstream-consumption count
// of SUPER_CABAC_STR agrees with the range evolution of SUPER_CABAC_CTX
// for random inputs (the two halves of the split must stay consistent).
func TestCabacStrMatchesCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctxOp := isa.Info(isa.OpSUPERCABACCTX)
	strOp := isa.Info(isa.OpSUPERCABACSTR)
	for i := 0; i < 10000; i++ {
		rrange := uint32(rng.Intn(255)) + 256 // [256, 510]
		value := uint32(rng.Intn(int(rrange)))
		state := uint32(rng.Intn(64))
		mps := uint32(rng.Intn(2))
		pos := uint32(rng.Intn(16))
		data := rng.Uint32()

		vr := value<<16 | rrange
		sm := state<<16 | mps

		var sc, cc isa.ExecContext
		sc.Src = [4]uint32{vr, pos, 0, sm}
		strOp.Exec(&sc)
		cc.Src = [4]uint32{vr, pos, data, sm}
		ctxOp.Exec(&cc)

		newRange := cc.Dest[0] & 0xffff
		if newRange < 256 || newRange > 510 {
			t.Fatalf("range %d not renormalized", newRange)
		}
		consumed := sc.Dest[0] - pos
		if consumed > 8 {
			t.Fatalf("consumed %d bits, max is 8", consumed)
		}
		// The new value must stay below the new range.
		if v := cc.Dest[0] >> 16; v >= 1024 {
			t.Fatalf("value %d exceeds 10 bits", v)
		}
	}
}

// TestSuperUME8UU checks the 8-byte SAD extension.
func TestSuperUME8UU(t *testing.T) {
	ctx := run(t, isa.OpSUPERUME8UU,
		[]uint32{0x10203040, 0x50607080, 0x11223344, 0x55667788}, 0, nil)
	want := uint32(1 + 2 + 3 + 4 + 5 + 6 + 7 + 8)
	if ctx.Dest[0] != want {
		t.Errorf("super_ume8uu = %d, want %d", ctx.Dest[0], want)
	}
}
