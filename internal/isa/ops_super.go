package isa

import "tm3270/internal/cabac"

func registerSuperOps() {
	// SUPER_DUALIMIX (Table 2): two pairwise 16-bit multiply-accumulates,
	// each clipped to the signed 32-bit range.
	register(OpSUPERDUALIMIX, OpInfo{Name: "super_dualimix", Class: UnitSuper,
		Latency: 4, NSrc: 4, NDest: 2, Size: Size34, TwoSlot: true,
		Exec: func(c *ExecContext) {
			hi := int64(hi16(c.Src[0]))*int64(hi16(c.Src[1])) +
				int64(hi16(c.Src[2]))*int64(hi16(c.Src[3]))
			lo := int64(lo16(c.Src[0]))*int64(lo16(c.Src[1])) +
				int64(lo16(c.Src[2]))*int64(lo16(c.Src[3]))
			c.Dest[0] = clip32(hi)
			c.Dest[1] = clip32(lo)
		}})

	// SUPER_LD32R (Table 2): two consecutive big-endian 32-bit words
	// from address rsrc3 + rsrc4 (passed as Src[0] and Src[1]).
	register(OpSUPERLD32R, OpInfo{Name: "super_ld32r", Class: UnitSuperLS,
		Latency: 4, NSrc: 2, NDest: 2, Size: Size34, TwoSlot: true,
		IsLoad: true, MemBytes: 8,
		Exec: func(c *ExecContext) {
			v := c.Mem.Load(c.Src[0]+c.Src[1], 8)
			c.Dest[0] = uint32(v >> 32)
			c.Dest[1] = uint32(v)
		}})

	// SUPER_CABAC_STR (Table 2): the bitstream half of a CABAC decode
	// step. rsrc1 = DUAL16(value, range), rsrc2 = stream_bit_position,
	// rsrc3 unused, rsrc4 = DUAL16(state, mps).
	// rdest1 = new stream_bit_position, rdest2 = decoded bit.
	register(OpSUPERCABACSTR, OpInfo{Name: "super_cabac_str", Class: UnitCABAC,
		Latency: 4, NSrc: 4, NDest: 2, Size: Size34, TwoSlot: true,
		Exec: func(c *ExecContext) {
			value, rng := c.Src[0]>>16, c.Src[0]&0xffff
			state, mps := c.Src[3]>>16&63, c.Src[3]&1
			// The consumed-bit count and the decoded bit do not depend
			// on the stream data itself, only on range and the compare.
			res := cabac.Step(value, rng, 0, state, mps)
			c.Dest[0] = c.Src[1] + uint32(res.Consumed)
			c.Dest[1] = res.Bit
		}})

	// SUPER_CABAC_CTX (Table 2): the context half of a CABAC decode
	// step. rsrc1 = DUAL16(value, range), rsrc2 = stream_bit_position,
	// rsrc3 = stream_data, rsrc4 = DUAL16(state, mps).
	// rdest1 = DUAL16(value', range'), rdest2 = DUAL16(state', mps').
	register(OpSUPERCABACCTX, OpInfo{Name: "super_cabac_ctx", Class: UnitCABAC,
		Latency: 4, NSrc: 4, NDest: 2, Size: Size34, TwoSlot: true,
		Exec: func(c *ExecContext) {
			value, rng := c.Src[0]>>16, c.Src[0]&0xffff
			state, mps := c.Src[3]>>16&63, c.Src[3]&1
			aligned := c.Src[2] << (c.Src[1] & 31)
			res := cabac.Step(value, rng, aligned, state, mps)
			c.Dest[0] = dual16(res.Value, res.Range)
			c.Dest[1] = dual16(res.State, res.MPS)
		}})

	// SUPER_UME8UU: eight-byte sum of absolute differences, the
	// motion-estimation companion of the collapsed loads ([12]): SAD of
	// the byte pairs of (rsrc1:rsrc2) against (rsrc3:rsrc4).
	register(OpSUPERUME8UU, OpInfo{Name: "super_ume8uu", Class: UnitSuper,
		Latency: 4, NSrc: 4, NDest: 1, Size: Size34, TwoSlot: true,
		Exec: func(c *ExecContext) {
			c.Dest[0] = sad4(c.Src[0], c.Src[2]) + sad4(c.Src[1], c.Src[3])
		}})
}
