package isa

// Helpers shared by operation semantics. SIMD byte lanes are numbered
// 0..3 from the most significant byte, matching the big-endian memory
// semantics of Table 2.

func clip32(v int64) uint32 {
	if v > 0x7fffffff {
		return 0x7fffffff
	}
	if v < -0x80000000 {
		return 0x80000000
	}
	return uint32(v)
}

func clip16(v int32) uint16 {
	if v > 0x7fff {
		return 0x7fff
	}
	if v < -0x8000 {
		return 0x8000
	}
	return uint16(v)
}

func clipU8(v int32) uint8 {
	if v > 0xff {
		return 0xff
	}
	if v < 0 {
		return 0
	}
	return uint8(v)
}

// clipSigned clips v to [-2^n, 2^n-1].
func clipSigned(v int32, n uint32) uint32 {
	if n > 30 {
		n = 30
	}
	hi := int32(1)<<n - 1
	lo := -(int32(1) << n)
	if v > hi {
		v = hi
	}
	if v < lo {
		v = lo
	}
	return uint32(v)
}

// clipUnsigned clips signed v to [0, 2^n-1].
func clipUnsigned(v int32, n uint32) uint32 {
	if n > 31 {
		n = 31
	}
	hi := int32(1)<<n - 1
	if n == 31 {
		hi = 0x7fffffff
	}
	if v > hi {
		v = hi
	}
	if v < 0 {
		v = 0
	}
	return uint32(v)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// byteOf extracts byte lane i (0 = most significant) of v.
func byteOf(v uint32, i int) uint32 { return (v >> (24 - 8*i)) & 0xff }

// sbyteOf extracts byte lane i of v as a signed value.
func sbyteOf(v uint32, i int) int32 { return int32(int8(byteOf(v, i))) }

// packBytes packs four byte lanes (lane 0 most significant).
func packBytes(b0, b1, b2, b3 uint32) uint32 {
	return b0<<24 | b1<<16 | b2<<8 | b3
}

func hi16(v uint32) int32  { return int32(int16(v >> 16)) }
func lo16(v uint32) int32  { return int32(int16(v)) }
func uhi16(v uint32) int32 { return int32(v >> 16) }
func ulo16(v uint32) int32 { return int32(v & 0xffff) }

func dual16(hi, lo uint32) uint32 { return hi<<16 | lo&0xffff }
