package isa

func registerCtlOps() {
	// Jumps have five architectural delay slots on the TM3270 (three on
	// the TM3260); the delay-slot count lives in the target
	// configuration, not here. The immediate operand is the target.
	//
	// Guarding: jmpt jumps when its guard is true, jmpf when its guard
	// is false (GuardInverted), jmpi is the unguarded spelling used with
	// the default r1 guard.
	jump := func(name string, inverted bool) OpInfo {
		return OpInfo{Name: name, Class: UnitBranch, Latency: 1, HasImm: true,
			Size: Size42, IsJump: true, GuardInverted: inverted,
			Exec: func(c *ExecContext) { c.Taken = true }}
	}
	register(OpJMPI, jump("jmpi", false))
	register(OpJMPT, jump("jmpt", false))
	register(OpJMPF, jump("jmpf", true))
}
