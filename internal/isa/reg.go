// Package isa defines the TM3270 instruction set architecture: the register
// model, the functional-unit inventory, the operation catalogue with per-
// operation metadata (issue slots, latency, encoding size class) and the
// executable semantics of every operation.
//
// The operation set recreates the documented properties of the TriMedia
// TM3270 ISA (van de Waerdt et al., MICRO 2005): guarded RISC-like
// operations, 1x32/2x16/4x8-bit SIMD, two-slot "super" operations with up
// to four sources and two destinations, collapsed loads with interpolation
// (LD_FRAC8) and the CABAC entropy-decoding operations.
package isa

import "fmt"

// Reg names one of the 128 registers of the unified register file.
//
// Two registers have hardwired values, as in all TriMedia processors:
// R0 always reads 0 and R1 always reads 1. Writes to them are ignored.
// R1 doubles as the default "always true" guard of unguarded operations.
type Reg uint8

const (
	// NumRegs is the size of the unified register file.
	NumRegs = 128

	// R0 always reads as 0.
	R0 Reg = 0
	// R1 always reads as 1; it is the default guard register.
	R1 Reg = 1
)

// Valid reports whether r names an architectural register.
func (r Reg) Valid() bool { return r < NumRegs }

// Hardwired reports whether r is one of the two constant registers.
func (r Reg) Hardwired() bool { return r == R0 || r == R1 }

// String returns the assembler name of the register ("r42").
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// RegFile is the unified 128x32-bit register file.
//
// The zero value is ready to use: r0 and r1 read as their hardwired
// values from the first access.
type RegFile struct {
	v [NumRegs]uint32
}

// Read returns the current value of register r.
func (f *RegFile) Read(r Reg) uint32 {
	switch r {
	case R0:
		return 0
	case R1:
		return 1
	default:
		return f.v[r]
	}
}

// Write sets register r to v. Writes to the hardwired registers r0 and
// r1 are silently dropped, as on the real machine.
func (f *RegFile) Write(r Reg, v uint32) {
	if r.Hardwired() {
		return
	}
	f.v[r] = v
}

// Raw exposes the backing array for engines that index registers
// directly. The hardwired slots are primed with their constant values;
// callers must never write to a register ≤ R1 through the array (the
// fast-path engine guards its writes, and Read/Snapshot special-case
// the two slots regardless).
func (f *RegFile) Raw() *[NumRegs]uint32 {
	f.v[R0] = 0
	f.v[R1] = 1
	return &f.v
}

// Reset clears every writable register to zero.
func (f *RegFile) Reset() {
	f.v = [NumRegs]uint32{}
}

// Snapshot returns a copy of the architectural register state with the
// hardwired values materialized. Intended for debugging and tests.
func (f *RegFile) Snapshot() [NumRegs]uint32 {
	s := f.v
	s[R0] = 0
	s[R1] = 1
	return s
}
