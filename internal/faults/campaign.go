package faults

import (
	"context"
	"fmt"
	"io"
	"time"

	"tm3270/internal/config"
	"tm3270/internal/mem"
	"tm3270/internal/prefetch"
	"tm3270/internal/prog"
	"tm3270/internal/regalloc"
	"tm3270/internal/sched"
	"tm3270/internal/tmsim"
	"tm3270/internal/workloads"
)

// Outcome classifies one fault-injected run.
type Outcome int

const (
	// Masked: the run completed, the output check passed and memory
	// matches the fault-free reference everywhere outside the injection
	// sites — the fault never propagated.
	Masked Outcome = iota
	// DetectedTrap: the machine raised a structured trap (or another
	// execution error) instead of running on with corrupted state.
	DetectedTrap
	// DetectedDivergence: the run completed but its outputs diverge —
	// the workload's own check failed, or memory differs from the
	// sequential reference beyond the injection sites.
	DetectedDivergence
)

// String names the outcome for campaign reports.
func (o Outcome) String() string {
	switch o {
	case DetectedTrap:
		return "detected-trap"
	case DetectedDivergence:
		return "detected-divergence"
	}
	return "masked"
}

// RunReport is the classification of one seeded run.
type RunReport struct {
	Workload string
	Spec     Spec
	Seed     int64
	Outcome  Outcome
	Detail   string // trap summary or divergence description
	Injected int    // number of fault events the injector fired
}

// CampaignConfig parameterizes a fault campaign. Zero fields take the
// documented defaults.
type CampaignConfig struct {
	// Workloads are registry names (default: memset, memcpy, filter,
	// blockwalk_pf — the last so prefetch-path injectors have traffic).
	Workloads []string
	// Specs are the injectors to sweep (default: bitflip, loadflip,
	// lineflip, droppf).
	Specs []Spec
	// Seeds is the number of seeds per (workload, injector) pair
	// (default 13: 4 workloads x 4 injectors x 13 seeds = 208 runs).
	Seeds int
	// Params sizes the workloads (default workloads.Small()).
	Params *workloads.Params
	// Target is the processor configuration (default config.TM3270()).
	Target *config.Target
	// MaxInstrs is the per-run instruction watchdog (default 200M).
	MaxInstrs int64
	// Deadline is the per-run wall-clock bound (default 30s).
	Deadline time.Duration
}

func (c *CampaignConfig) fill() {
	if len(c.Workloads) == 0 {
		c.Workloads = []string{"memset", "memcpy", "filter", "blockwalk_pf"}
	}
	if len(c.Specs) == 0 {
		c.Specs = []Spec{
			{Kind: BitFlip},
			{Kind: LoadFlip, Rate: 0.002},
			{Kind: LineFlip, Rate: 0.05},
			{Kind: DropPrefetch, Rate: 0.25},
		}
	}
	if c.Seeds <= 0 {
		c.Seeds = 13
	}
	if c.Params == nil {
		p := workloads.Small()
		c.Params = &p
	}
	if c.Target == nil {
		t := config.TM3270()
		c.Target = &t
	}
	if c.MaxInstrs <= 0 {
		c.MaxInstrs = 200_000_000
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
}

// CampaignResult aggregates a full campaign.
type CampaignResult struct {
	Reports []RunReport
	Counts  map[Outcome]int
}

// Runs returns the total number of classified runs.
func (r *CampaignResult) Runs() int { return len(r.Reports) }

// RunCampaign executes Seeds seeded runs of every (workload, injector)
// pair and classifies each as detected (trap or divergence against the
// sequential reference) or masked. Every run is bounded by the
// instruction watchdog and the wall-clock deadline, and internal panics
// surface as traps — a campaign never hangs and never panics. When w is
// non-nil, one classification line per run is printed.
func RunCampaign(cfg CampaignConfig, w io.Writer) (*CampaignResult, error) {
	cfg.fill()
	res := &CampaignResult{Counts: map[Outcome]int{}}
	for _, name := range cfg.Workloads {
		ref, err := referenceImage(name, *cfg.Params)
		if err != nil {
			return nil, fmt.Errorf("faults: reference %s: %w", name, err)
		}
		for _, spec := range cfg.Specs {
			for s := 0; s < cfg.Seeds; s++ {
				seed := int64(s + 1)
				rep, err := runOne(name, cfg, spec, seed, ref)
				if err != nil {
					return nil, fmt.Errorf("faults: %s/%s seed %d: %w", name, spec.Kind, seed, err)
				}
				res.Reports = append(res.Reports, *rep)
				res.Counts[rep.Outcome]++
				if w != nil {
					fmt.Fprintf(w, "%-14s %-22s seed %-3d %-19s events=%-3d %s\n",
						rep.Workload, rep.Spec, rep.Seed, rep.Outcome, rep.Injected, rep.Detail)
				}
			}
		}
	}
	return res, nil
}

// PrintSummary renders the aggregate counts.
func (r *CampaignResult) PrintSummary(w io.Writer) {
	fmt.Fprintf(w, "fault campaign: %d runs, %d detected-trap, %d detected-divergence, %d masked\n",
		r.Runs(), r.Counts[DetectedTrap], r.Counts[DetectedDivergence], r.Counts[Masked])
}

// referenceImage runs the workload on the sequential reference
// interpreter and returns its final (fault-free) memory image.
func referenceImage(name string, p workloads.Params) (*mem.Func, error) {
	w, err := workloads.ByName(name, p)
	if err != nil {
		return nil, err
	}
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return nil, err
		}
	}
	in := prog.NewInterp(w.Prog, image)
	in.MaxOps = 2_000_000_000
	for v, val := range w.Args {
		in.SetReg(v, val)
	}
	if err := in.Run(); err != nil {
		return nil, err
	}
	if w.Check != nil {
		if err := w.Check(image); err != nil {
			return nil, fmt.Errorf("fault-free reference fails its own check: %w", err)
		}
	}
	return image, nil
}

// runOne executes one seeded fault-injected run and classifies it.
func runOne(name string, cfg CampaignConfig, spec Spec, seed int64, ref *mem.Func) (*RunReport, error) {
	// A fresh workload instance per run: Init/Check closures carry
	// per-image state.
	w, err := workloads.ByName(name, *cfg.Params)
	if err != nil {
		return nil, err
	}
	code, err := sched.Schedule(w.Prog, *cfg.Target)
	if err != nil {
		return nil, err
	}
	rm, err := regalloc.Allocate(w.Prog)
	if err != nil {
		return nil, err
	}
	image := mem.NewFunc()
	if w.Init != nil {
		if err := w.Init(image); err != nil {
			return nil, err
		}
	}
	m, err := tmsim.New(code, rm, image)
	if err != nil {
		return nil, err
	}
	m.MaxInstrs = cfg.MaxInstrs
	m.Deadline = cfg.Deadline
	for v, val := range w.Args {
		m.SetReg(v, val)
	}

	inj := New(spec, seed)
	inj.Arm(m)
	runErr := m.RunContext(context.Background())
	inj.Disarm(m)

	rep := &RunReport{Workload: name, Spec: spec, Seed: seed, Injected: len(inj.Events)}
	if runErr != nil {
		rep.Outcome = DetectedTrap
		rep.Detail = runErr.Error()
		return rep, nil
	}
	if w.Check != nil {
		if cerr := w.Check(image); cerr != nil {
			rep.Outcome = DetectedDivergence
			rep.Detail = "output check: " + cerr.Error()
			return rep, nil
		}
	}
	// The output check passed; any remaining difference against the
	// fault-free reference beyond the injection sites (and the MMIO
	// register block, which the reference interpreter stores to as
	// plain memory) still counts as a detected divergence.
	corrupted := inj.CorruptedAddrs()
	ignore := func(addr uint32) bool {
		if corrupted[addr] {
			return true
		}
		return addr >= prefetch.MMIOBase && addr < prefetch.MMIOBase+prefetch.MMIOSize
	}
	if addr, diff := mem.DiffIgnore(image, ref, ignore); diff {
		rep.Outcome = DetectedDivergence
		rep.Detail = fmt.Sprintf("memory diverges from reference at %#x", addr)
		return rep, nil
	}
	rep.Outcome = Masked
	return rep, nil
}
