package faults_test

import (
	"strings"
	"testing"
	"time"

	"tm3270/internal/faults"
	"tm3270/internal/workloads"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in    string
		want  faults.Spec
		isErr bool
	}{
		{in: "bitflip", want: faults.Spec{Kind: faults.BitFlip, Rate: 0.01, Delay: 200}},
		{in: "droppf:0.5", want: faults.Spec{Kind: faults.DropPrefetch, Rate: 0.5, Delay: 200}},
		{in: "busdelay:0.1:400", want: faults.Spec{Kind: faults.BusDelay, Rate: 0.1, Delay: 400}},
		{in: "loadflip::321", want: faults.Spec{Kind: faults.LoadFlip, Rate: 0.01, Delay: 321}},
		{in: "nosuch", isErr: true},
		{in: "bitflip:2", isErr: true},
		{in: "bitflip:0.5:-1", isErr: true},
		{in: "bitflip:0.5:10:extra", isErr: true},
	}
	for _, c := range cases {
		got, err := faults.ParseSpec(c.in)
		if c.isErr {
			if err == nil {
				t.Errorf("ParseSpec(%q) accepted, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestCampaignSmall runs a reduced campaign: every run must classify
// without a hang or panic, and the memcpy bit-flip runs must detect at
// least one fault (a flipped source byte propagates to the output).
func TestCampaignSmall(t *testing.T) {
	p := workloads.Small()
	cfg := faults.CampaignConfig{
		Workloads: []string{"memcpy", "blockwalk_pf"},
		Specs: []faults.Spec{
			{Kind: faults.BitFlip},
			{Kind: faults.DropPrefetch, Rate: 0.5},
		},
		Seeds:    4,
		Params:   &p,
		Deadline: time.Minute,
	}
	var sb strings.Builder
	res, err := faults.RunCampaign(cfg, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs() != 2*2*4 {
		t.Fatalf("campaign ran %d runs, want 16", res.Runs())
	}
	total := res.Counts[faults.Masked] + res.Counts[faults.DetectedTrap] + res.Counts[faults.DetectedDivergence]
	if total != res.Runs() {
		t.Errorf("outcome counts sum to %d, want %d", total, res.Runs())
	}
	if lines := strings.Count(sb.String(), "\n"); lines != res.Runs() {
		t.Errorf("campaign printed %d classification lines, want %d", lines, res.Runs())
	}

	// memcpy copies every source byte: a bit flip inside the source
	// region must surface as a divergence for at least one seed.
	detected := 0
	for _, r := range res.Reports {
		if r.Workload == "memcpy" && r.Spec.Kind == faults.BitFlip && r.Outcome != faults.Masked {
			detected++
		}
	}
	if detected == 0 {
		t.Error("no memcpy bitflip run detected its fault")
	}

	// Dropped prefetches are performance faults: they must never
	// corrupt functional state.
	for _, r := range res.Reports {
		if r.Spec.Kind == faults.DropPrefetch && r.Outcome != faults.Masked {
			t.Errorf("%s droppf seed %d classified %s: a dropped prefetch must be functionally invisible (%s)",
				r.Workload, r.Seed, r.Outcome, r.Detail)
		}
	}
}

// TestCampaignDeterminism: the same configuration must reproduce the
// same classifications and the same injection counts.
func TestCampaignDeterminism(t *testing.T) {
	p := workloads.Small()
	cfg := faults.CampaignConfig{
		Workloads: []string{"memcpy"},
		Specs:     []faults.Spec{{Kind: faults.BitFlip}, {Kind: faults.LoadFlip, Rate: 0.001}},
		Seeds:     3,
		Params:    &p,
	}
	a, err := faults.RunCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.RunCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Reports) != len(b.Reports) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Reports), len(b.Reports))
	}
	for i := range a.Reports {
		if a.Reports[i] != b.Reports[i] {
			t.Errorf("run %d differs:\n  %+v\n  %+v", i, a.Reports[i], b.Reports[i])
		}
	}
}

// TestBusDelayIsTimingOnly: bus-latency spikes slow the run down but
// must never change functional state.
func TestBusDelayIsTimingOnly(t *testing.T) {
	p := workloads.Small()
	cfg := faults.CampaignConfig{
		Workloads: []string{"filter"},
		Specs:     []faults.Spec{{Kind: faults.BusDelay, Rate: 0.2, Delay: 300}},
		Seeds:     3,
		Params:    &p,
	}
	res, err := faults.RunCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Reports {
		if r.Outcome != faults.Masked {
			t.Errorf("busdelay seed %d: %s (%s), want masked", r.Seed, r.Outcome, r.Detail)
		}
	}
}
