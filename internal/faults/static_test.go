package faults_test

import (
	"strings"
	"testing"

	"tm3270/internal/faults"
)

// TestStaticCampaignFlagsMutants runs a reduced static mutation
// campaign and asserts the acceptance property: some still-decodable
// mutants change the instruction stream, and the verifier flags a
// nonzero fraction of them before execution.
func TestStaticCampaignFlagsMutants(t *testing.T) {
	cfg := faults.StaticConfig{
		Workloads: []string{"memcpy", "filter"},
		Mutants:   48,
	}
	res, err := faults.RunStaticCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	total := 0
	for _, o := range []faults.StaticOutcome{faults.StaticRejected,
		faults.StaticMasked, faults.StaticFlagged, faults.StaticMissed} {
		total += res.Count(o)
	}
	if total != 2*48 {
		t.Errorf("classified %d mutants, want %d", total, 2*48)
	}
	if res.Count(faults.StaticFlagged) == 0 {
		t.Errorf("no mutant was flagged statically: %+v", res.Rows)
	}
	if r := res.DetectionRate(); r <= 0 || r > 1 {
		t.Errorf("detection rate %v outside (0, 1]", r)
	}

	var b strings.Builder
	res.PrintSummary(&b)
	if !strings.Contains(b.String(), "static detection rate") {
		t.Errorf("summary missing rate line:\n%s", b.String())
	}
}

// TestStaticCampaignIsDeterministic: same seeds, same classification.
func TestStaticCampaignIsDeterministic(t *testing.T) {
	cfg := faults.StaticConfig{Workloads: []string{"memset"}, Mutants: 32}
	a, err := faults.RunStaticCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := faults.RunStaticCampaign(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("row %d differs:\n  %+v\n  %+v", i, a.Rows[i], b.Rows[i])
		}
	}
}
