package faults

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"

	"tm3270/internal/campaign"
)

// KindMutant is the campaign unit kind of the mutant matrix: one
// seeded single-bit image flip, classified statically and — if it
// survives the static gates — executed differentially under one
// machine seed.
const KindMutant = "mutant"

// Status values recorded for mutant units. The first four mirror
// StaticOutcome; detected/silent are the differential fates of
// statically-missed mutants.
const (
	StatusDetected = "detected"
	StatusSilent   = "silent"
)

// MatrixConfig scales a mutant × machine-seed matrix campaign.
type MatrixConfig struct {
	// Static supplies the workloads, mutant count, params and target.
	Static StaticConfig
	// MSeeds is the number of machine seeds per mutant, including the
	// unperturbed baseline seed 0 (default 5: baseline + 4 perturbed).
	MSeeds int
	// Workers bounds the worker pool (<=0 = GOMAXPROCS).
	Workers int
	// Store persists unit results for resume and sharding (optional).
	Store *campaign.Store
	// Shard selects this process's slice of the matrix (zero = all).
	Shard campaign.Shard
	// Counters receives campaign.* telemetry (optional).
	Counters *campaign.Counters
	// Progress is forwarded to the engine (optional).
	Progress func(done, total, cached int)
}

func (c *MatrixConfig) fill() {
	c.Static.fill()
	if c.MSeeds <= 0 {
		c.MSeeds = 5
	}
}

// Spec is the matrix campaign's store fingerprint. Workloads, mutant
// counts and machine seeds live in the unit specs, so a stored
// campaign grows to more mutants or seeds by pure cache extension;
// the params and target shape unit results without appearing in them,
// so they bind the store.
func (c *MatrixConfig) Spec() string {
	c.fill()
	ph := sha256.Sum256([]byte(fmt.Sprintf("%+v|%+v", *c.Static.Params, *c.Static.Target)))
	return fmt.Sprintf("mutmatrix params=%s", hex.EncodeToString(ph[:6]))
}

// UnitMatrix enumerates the deterministic matrix: workload × mutant
// seed × machine seed, machine seeds innermost so one mutant's fates
// under every seed are adjacent in the aggregate.
func (c *MatrixConfig) UnitMatrix() []campaign.Unit {
	c.fill()
	var units []campaign.Unit
	for _, name := range c.Static.Workloads {
		for mut := int64(1); mut <= int64(c.Static.Mutants); mut++ {
			for ms := int64(0); ms < int64(c.MSeeds); ms++ {
				units = append(units, campaign.Unit{
					Kind: KindMutant, Name: name, Target: c.Static.Target.Name,
					Mutant: mut, MSeed: ms,
				})
			}
		}
	}
	return units
}

// matrixRunner executes mutant units. Compiled targets and golden
// runs are cached per workload and per (workload, machine seed) under
// a mutex; the cached values are immutable afterwards, so concurrent
// unit runs share them safely.
type matrixRunner struct {
	cfg     *MatrixConfig
	mu      sync.Mutex
	targets map[string]*mutTarget
	goldens map[string]*golden
}

func newMatrixRunner(cfg *MatrixConfig) *matrixRunner {
	return &matrixRunner{
		cfg:     cfg,
		targets: map[string]*mutTarget{},
		goldens: map[string]*golden{},
	}
}

func (r *matrixRunner) target(name string) (*mutTarget, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if mt, ok := r.targets[name]; ok {
		return mt, nil
	}
	mt, err := newMutTarget(name, &r.cfg.Static)
	if err != nil {
		return nil, err
	}
	r.targets[name] = mt
	return mt, nil
}

func (r *matrixRunner) golden(mt *mutTarget, name string, mseed int64) (*golden, error) {
	key := fmt.Sprintf("%s|%d", name, mseed)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.goldens[key]; ok {
		return g, nil
	}
	g, err := mt.goldenRun(r.cfg.Static.Target, mseed)
	if err != nil {
		return nil, err
	}
	r.goldens[key] = g
	return g, nil
}

// Run executes one (workload, mutant, machine-seed) unit: static
// classification first, then — for statically-missed mutants — a
// differential run against the golden run under the same machine
// seed. Silent results are the campaign's findings.
func (r *matrixRunner) Run(ctx context.Context, u campaign.Unit) (campaign.Result, error) {
	mt, err := r.target(u.Name)
	if err != nil {
		return campaign.Result{}, err
	}
	img := make([]byte, len(mt.enc))
	mt.mutate(u.Mutant, img)
	o, dec := mt.classify(img, r.cfg.Static.Target)
	if o != StaticMissed {
		return campaign.Result{Status: o.String()}, nil
	}
	gold, err := r.golden(mt, u.Name, u.MSeed)
	if err != nil {
		return campaign.Result{}, err
	}
	mut := mt.newRef(dec, r.cfg.Static.Target, u.MSeed)
	mut.MaxInstrs = gold.budget()
	detected := diffDetects(mut, gold)
	res := campaign.Result{Status: StatusDetected, Instrs: mut.Issue()}
	if !detected {
		res.Status = StatusSilent
		res.Bad = true
		res.Detail = fmt.Sprintf("indistinguishable from golden under machine seed %d", u.MSeed)
	}
	return res, nil
}

// SeedRow is one machine seed's differential outcome over the
// statically-missed mutants.
type SeedRow struct {
	MSeed    int64
	Detected int
	Silent   int
}

// MatrixResult aggregates a mutant × machine-seed campaign.
type MatrixResult struct {
	Workloads int
	Mutants   int // per workload
	MSeeds    int
	Static    [4]int // per-mutant static classification (seed-independent)
	Seeds     []SeedRow
	// Combined is the number of statically-missed mutants detected
	// under at least one machine seed.
	Combined int
	// Silent lists mutants ("workload#mutant") silent under every seed.
	Silent []string

	// Aggregate is the engine's deterministic reduction; Stats the
	// run-dependent totals.
	Aggregate *campaign.Aggregate
	Stats     campaign.Stats
}

// CombinedRate is the fraction of decodable stream-changing mutants
// caught by the static verifier or by the differential harness under
// any machine seed: (flagged + combined) / (flagged + missed). The
// denominator matches StaticResult.DetectionRate and
// DiffResult.CombinedRate, so all three rates are comparable.
func (r *MatrixResult) CombinedRate() float64 {
	flagged, missed := r.Static[StaticFlagged], r.Static[StaticMissed]
	if flagged+missed == 0 {
		return 0
	}
	return float64(flagged+r.Combined) / float64(flagged+missed)
}

// PrintSummary renders the matrix outcome: static totals, the
// per-seed differential breakdown, and the combined multi-seed rate.
func (r *MatrixResult) PrintSummary(w io.Writer) {
	fmt.Fprintf(w, "mutant matrix: %d workloads x %d mutants x %d machine seeds (%d units)\n",
		r.Workloads, r.Mutants, r.MSeeds, r.Workloads*r.Mutants*r.MSeeds)
	fmt.Fprintf(w, "static (per mutant): %d rejected, %d masked, %d flagged, %d missed\n",
		r.Static[StaticRejected], r.Static[StaticMasked],
		r.Static[StaticFlagged], r.Static[StaticMissed])
	for _, s := range r.Seeds {
		label := "baseline"
		if s.MSeed != 0 {
			label = "perturbed"
		}
		fmt.Fprintf(w, "  machine seed %d (%s): %d detected, %d silent of %d missed\n",
			s.MSeed, label, s.Detected, s.Silent, s.Detected+s.Silent)
	}
	fmt.Fprintf(w, "combined: %d of %d missed mutants detected under >=1 seed; combined detection %.1f%% of decodable stream-changing mutants\n",
		r.Combined, r.Static[StaticMissed], 100*r.CombinedRate())
	if len(r.Silent) == 0 {
		fmt.Fprintf(w, "silent under all seeds: none\n")
		return
	}
	fmt.Fprintf(w, "silent under all seeds: %d mutants\n", len(r.Silent))
	for _, s := range r.Silent {
		fmt.Fprintf(w, "  %s\n", s)
	}
}

// RunMatrixCampaign executes the mutant × machine-seed matrix on the
// campaign engine.
func RunMatrixCampaign(cfg MatrixConfig) (*MatrixResult, error) {
	return RunMatrixCampaignContext(context.Background(), cfg)
}

// RunMatrixCampaignContext is RunMatrixCampaign with cooperative
// cancellation; a canceled campaign leaves any store resumable.
func RunMatrixCampaignContext(ctx context.Context, cfg MatrixConfig) (*MatrixResult, error) {
	cfg.fill()
	units := cfg.UnitMatrix()
	r := newMatrixRunner(&cfg)
	out := &MatrixResult{
		Workloads: len(cfg.Static.Workloads),
		Mutants:   cfg.Static.Mutants,
		MSeeds:    cfg.MSeeds,
	}
	out.Seeds = make([]SeedRow, cfg.MSeeds)
	seeds := make(map[int64]*SeedRow, cfg.MSeeds)
	for ms := range out.Seeds {
		out.Seeds[ms].MSeed = int64(ms)
		seeds[int64(ms)] = &out.Seeds[ms]
	}
	// Reduce arrives in matrix order with machine seeds innermost, so
	// each mutant's fates are contiguous: track the current mutant and
	// flush its combined fate when the next one starts.
	var curKey string
	var curMissed, curDetected bool
	flush := func() {
		if curKey == "" || !curMissed {
			return
		}
		if curDetected {
			out.Combined++
		} else {
			out.Silent = append(out.Silent, curKey)
		}
	}
	o, err := campaign.Run(ctx, campaign.Config{
		Workers:  cfg.Workers,
		Store:    cfg.Store,
		Shard:    cfg.Shard,
		Counters: cfg.Counters,
		Progress: cfg.Progress,
		Reduce: func(i int, u campaign.Unit, res campaign.Result) {
			key := fmt.Sprintf("%s#%d", u.Name, u.Mutant)
			if key != curKey {
				flush()
				curKey, curMissed, curDetected = key, false, false
			}
			switch res.Status {
			case StatusDetected:
				curMissed = true
				curDetected = true
				seeds[u.MSeed].Detected++
			case StatusSilent:
				curMissed = true
				seeds[u.MSeed].Silent++
			default:
				// Static classification is machine-seed independent;
				// count each mutant once, at its baseline unit.
				if u.MSeed == 0 {
					for o := StaticRejected; o <= StaticMissed; o++ {
						if res.Status == o.String() {
							out.Static[o]++
						}
					}
				}
				return
			}
			if u.MSeed == 0 {
				out.Static[StaticMissed]++
			}
		},
	}, units, r.Run)
	if err != nil {
		return nil, err
	}
	flush()
	sort.Strings(out.Silent)
	out.Aggregate = o.Aggregate
	out.Stats = o.Stats
	return out, nil
}
