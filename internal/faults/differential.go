package faults

import (
	"fmt"
	"io"

	"tm3270/internal/isa"
	"tm3270/internal/prefetch"
	"tm3270/internal/refmodel"
)

// DiffRow aggregates one workload's mutants: the static classification
// plus the differential fate of the statically-missed survivors. The
// reference model executes each missed mutant and its final state is
// diffed against the golden (unmutated) run — a trap, a register, a
// memory byte or an instruction-count difference all count as detected.
type DiffRow struct {
	Workload string
	Bytes    int
	Mutants  int
	Static   [4]int // indexed by StaticOutcome
	Detected int    // statically-missed mutants the differential run catches
	Silent   int    // statically-missed mutants indistinguishable from golden
}

// DiffResult is the outcome of a combined static+differential campaign.
type DiffResult struct {
	Rows []DiffRow
}

func (r *DiffResult) count(f func(*DiffRow) int) int {
	n := 0
	for i := range r.Rows {
		n += f(&r.Rows[i])
	}
	return n
}

// CombinedRate is the fraction of decodable stream-changing mutants
// caught by either gate: (flagged + detected) / (flagged + missed).
// The denominator matches StaticResult.DetectionRate, so the two rates
// are directly comparable.
func (r *DiffResult) CombinedRate() float64 {
	flagged := r.count(func(d *DiffRow) int { return d.Static[StaticFlagged] })
	missed := r.count(func(d *DiffRow) int { return d.Static[StaticMissed] })
	if flagged+missed == 0 {
		return 0
	}
	det := r.count(func(d *DiffRow) int { return d.Detected })
	return float64(flagged+det) / float64(flagged+missed)
}

// StaticRate is the static-only detection rate over the same mutants.
func (r *DiffResult) StaticRate() float64 {
	flagged := r.count(func(d *DiffRow) int { return d.Static[StaticFlagged] })
	missed := r.count(func(d *DiffRow) int { return d.Static[StaticMissed] })
	if flagged+missed == 0 {
		return 0
	}
	return float64(flagged) / float64(flagged+missed)
}

// PrintSummary renders per-workload rows and both detection rates.
func (r *DiffResult) PrintSummary(w io.Writer) {
	fmt.Fprintf(w, "%-14s %8s %9s %8s %8s %8s %9s %8s\n",
		"workload", "mutants", "rejected", "masked", "flagged", "missed", "detected", "silent")
	for i := range r.Rows {
		row := &r.Rows[i]
		fmt.Fprintf(w, "%-14s %8d %9d %8d %8d %8d %9d %8d\n", row.Workload, row.Mutants,
			row.Static[StaticRejected], row.Static[StaticMasked],
			row.Static[StaticFlagged], row.Static[StaticMissed],
			row.Detected, row.Silent)
	}
	fmt.Fprintf(w, "differential campaign: static detection %.1f%%, combined static+differential detection %.1f%% of decodable stream-changing mutants\n",
		100*r.StaticRate(), 100*r.CombinedRate())
}

// RunDifferentialCampaign reruns the static mutation campaign and
// additionally executes every statically-missed mutant on the
// architectural reference model, diffing its final state against the
// golden run of the pristine binary. It measures what the differential
// harness adds on top of the static verifier.
func RunDifferentialCampaign(cfg StaticConfig, w io.Writer) (*DiffResult, error) {
	cfg.fill()
	res := &DiffResult{}
	for _, name := range cfg.Workloads {
		row, err := diffOne(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("faults: differential %s: %w", name, err)
		}
		res.Rows = append(res.Rows, *row)
		if w != nil {
			fmt.Fprintf(w, "%-14s %d mutants: %d flagged statically, %d missed -> %d detected differentially, %d silent\n",
				row.Workload, row.Mutants, row.Static[StaticFlagged],
				row.Static[StaticMissed], row.Detected, row.Silent)
		}
	}
	return res, nil
}

// golden is the reference-model outcome of the pristine binary. The
// prefetch MMIO bank is architected state (software reads it back), so
// it is part of the diffed outcome — mutants that misconfigure the
// prefetcher are corruptions even though no load or store moves.
type golden struct {
	issue int64
	regs  [isa.NumRegs]uint32
	mem   *refmodel.Mem
	mmio  [prefetch.NumRegions][3]uint32
}

// budget bounds a mutant run well past the golden instruction count;
// hitting it is itself a detectable difference, since the golden run
// terminates without tripping the watchdog.
func (g *golden) budget() int64 {
	return 4*g.issue + 10_000
}

func diffOne(name string, cfg StaticConfig) (*DiffRow, error) {
	mt, err := newMutTarget(name, &cfg)
	if err != nil {
		return nil, err
	}
	gold, err := mt.goldenRun(cfg.Target, 0)
	if err != nil {
		return nil, err
	}

	row := &DiffRow{Workload: name, Bytes: len(mt.enc), Mutants: cfg.Mutants}
	img := make([]byte, len(mt.enc))
	for seed := int64(1); seed <= int64(cfg.Mutants); seed++ {
		mt.mutate(seed, img)
		o, dec := mt.classify(img, cfg.Target)
		row.Static[o]++
		if o != StaticMissed {
			continue
		}
		mut := mt.newRef(dec, cfg.Target, 0)
		mut.MaxInstrs = gold.budget()
		if diffDetects(mut, gold) {
			row.Detected++
		} else {
			row.Silent++
		}
	}
	return row, nil
}

// diffDetects runs the mutant and reports whether its outcome differs
// from the golden run in any architecturally visible way.
func diffDetects(mut *refmodel.Machine, gold *golden) bool {
	if t := mut.Run(); t != nil {
		return true // golden run is trap-free
	}
	if mut.Issue() != gold.issue {
		return true
	}
	if mut.Regs() != gold.regs {
		return true
	}
	if mut.MMIORegs() != gold.mmio {
		return true
	}
	return !memEqual(mut.Mem, gold.mem)
}

// memEqual compares two reference-model images over the union of their
// touched pages.
func memEqual(a, b *refmodel.Mem) bool {
	pages := map[uint32]bool{}
	for _, pa := range a.PageAddrs() {
		pages[pa] = true
	}
	for _, pa := range b.PageAddrs() {
		pages[pa] = true
	}
	for pa := range pages {
		for i := uint32(0); i < 1<<12; i++ {
			if a.ByteAt(pa+i) != b.ByteAt(pa+i) {
				return false
			}
		}
	}
	return true
}
